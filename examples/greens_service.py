"""Serving Green's functions: submit, coalesce, cache, observe.

A measurement pipeline rarely needs *one* Green's function — it needs a
stream of them, with substantial duplication (two spin sectors per
field, re-analysis passes, parameter sweeps that revisit
configurations).  This example runs that stream through
:class:`repro.service.GreensService` and shows the serving layer doing
its job: one FSI execution per unique request, duplicates served from
the cache, and the whole thing verified against a direct ``fsi()``
call.

Run: ``python examples/greens_service.py``
"""

import numpy as np

from repro import GreensJob, GreensService, HSField, ModelSpec, Pattern, fsi
from repro.service import ServiceConfig

# 1. The physics: a 4x4 Hubbard lattice, L = 16 slices, c = 4.  A job is
#    the model parameters + one Hubbard-Stratonovich field + (c, pattern,
#    q) — nothing else, so identical physics means identical fingerprint.
spec = ModelSpec(nx=4, ny=4, L=16, t=1.0, U=2.0, beta=1.0)
rng = np.random.default_rng(0)
fields = [HSField.random(spec.L, spec.N, rng) for _ in range(6)]
jobs = [
    GreensJob.from_field(spec, f, c=4, pattern=Pattern.DIAGONAL, q=i % 4)
    for i, f in enumerate(fields)
]
print(f"{len(jobs)} unique jobs, e.g. {jobs[0]!r}")

# 2. A stream with duplicates: every job requested twice.
stream = jobs + jobs

with GreensService(
    ServiceConfig(workers=2, batch_max=4, fleet_ranks=1)
) as svc:
    # 3. Submit is non-blocking; tickets resolve as work completes.
    tickets = [svc.submit(job) for job in stream]
    results = [t.result(timeout=300.0) for t in tickets]
    stats = svc.stats()
    print(svc.report())

# 4. Exactly one execution per unique fingerprint: the 6 duplicates were
#    coalesced onto in-flight computations or served from the cache.
assert stats["executions"] == len(jobs), stats["executions"]
assert stats["completed"] == len(stream)
dedup = stats["coalesced"] + stats["cache"]["hits"]
assert dedup == len(jobs), dedup
print(
    f"{stats['executions']} executions for {len(stream)} requests"
    f" ({stats['coalesced']} coalesced, {stats['cache']['hits']} cache hits)"
)

# 5. Both copies of a duplicate pair got literally the same result, and
#    it matches a direct fsi() call bit for bit in every selected block.
first, second = results[0], results[len(jobs)]
assert first is second or first.fingerprint == second.fingerprint
job = jobs[0]
model = spec.build_model()
direct = fsi(
    model.build_matrix(job.field(), spec.sigma),
    job.c,
    pattern=job.pattern,
    q=job.q,
)
for kl, blk in direct.selected.items():
    np.testing.assert_allclose(first.blocks[kl], blk, rtol=1e-12, atol=1e-12)
print(f"served blocks match direct fsi() on {len(first.blocks)} blocks")

# 6. The flop accounting flowed back from the worker processes: the
#    service attributes work to CLS/BSOFI/WRP exactly like the offline
#    harness does.
stages = stats["flops"]["stages"]
assert {"cls", "bsofi", "wrp"} <= set(stages)
print(
    "stage flops: "
    + ", ".join(f"{k} {v:.2e}" for k, v in sorted(stages.items()))
)
