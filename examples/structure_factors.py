"""Momentum-space magnetism: the AFM structure factor from DQMC.

The classic half-filled-Hubbard result: as the temperature drops, the
spin structure factor develops a peak at the antiferromagnetic wave
vector ``q = (pi, pi)``.  This example

1. runs DQMC with the *extended* measurement set (charge/pairing
   correlators, ``S(pi, pi)``, ``G_loc(tau)`` and ``szz(tau, d)``);
2. lifts the distance-binned ``szz`` to momentum space over the full
   Brillouin-zone grid and prints the ``S(q)`` landscape;
3. demonstrates the temperature dependence of the AFM peak.

Run: ``python examples/structure_factors.py`` (~1 min serial)
"""

import numpy as np

from repro import DQMC, DQMCConfig, HubbardModel, RectangularLattice
from repro.dqmc.fourier import from_distance_classes, structure_factor_grid

LAT = RectangularLattice(4, 4)


def run_at_beta(beta: float, L: int, seed: int = 7):
    model = HubbardModel(LAT, L=L, t=1.0, U=4.0, beta=beta)
    sim = DQMC(
        model,
        DQMCConfig(
            warmup_sweeps=6,
            measurement_sweeps=12,
            c=4,
            nwrap=4,
            bin_size=3,
            seed=seed,
            num_threads=1,
            measure_extended=True,
        ),
    )
    return model, sim.run()


model, res = run_at_beta(beta=3.0, L=24)
szz, szz_err = res.observable("szz")
s_afm, s_afm_err = res.observable("s_afm")
g_loc, _ = res.observable("g_loc_tau")

print("extended observables at beta = 3, U = 4 (4x4 lattice):")
print(f"  S(pi, pi)          = {float(s_afm):.4f} +- {float(s_afm_err):.4f}")
charge, _ = res.observable("charge_corr")
pairing, _ = res.observable("pairing_corr")
print(f"  charge corr (r=0)  = {charge[0]:+.4f}   (r=1) {charge[1]:+.4f}")
print(f"  pairing corr (r=0) = {pairing[0]:+.4f}   (r=1) {pairing[1]:+.4f}")
print(f"  G_loc(tau):   {'  '.join(f'{g:.3f}' for g in np.asarray(g_loc)[::4])}")

# Momentum-space landscape from the distance-binned szz.
C = from_distance_classes(np.asarray(szz), LAT)
momenta, S = structure_factor_grid(C, LAT)
print("\nS(q) over the 4x4 Brillouin-zone grid (rows: qy, cols: qx):")
grid = S.reshape(LAT.ny, LAT.nx)
for row in grid:
    print("  " + "  ".join(f"{v:6.3f}" for v in row))
pi_idx = next(i for i, q in enumerate(momenta) if np.allclose(q, [np.pi, np.pi]))
assert S[pi_idx] == S.max(), "AFM point should dominate at half filling"
print(f"\npeak at q = (pi, pi): S = {S[pi_idx]:.3f} (grid maximum)")

print("\ncooling the system strengthens the AFM peak:")
for beta, L in ((1.0, 8), (2.0, 16), (3.0, 24)):
    _, r = run_at_beta(beta, L)
    m, e = r.observable("s_afm")
    print(f"  beta = {beta:3.1f}: S(pi, pi) = {float(m):.4f} +- {float(e):.4f}")
print("\nOK — antiferromagnetic correlations grow toward low temperature.")
