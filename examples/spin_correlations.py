"""Time-dependent spin correlations from selected block rows and columns.

The paper's Sec. IV example: the SPXX measurement needs entries of
``G_kl`` *and* ``G_lk`` simultaneously, so the selected inversion must
produce block rows and block columns.  This example does that by hand —
one CLS+BSOFI per spin, then three wraps reusing the same seed grid —
and assembles the ``L x d_max`` SPXX matrix, showing how the
correlation decays in imaginary time and space.

It also demonstrates the temperature dependence: cooling the system
(raising beta) strengthens the spin correlations.

Run: ``python examples/spin_correlations.py``
"""

import numpy as np

from repro import HubbardModel, HSField, Pattern, RectangularLattice, Selection, fsi, wrap
from repro.dqmc.spxx import spxx

LATTICE = RectangularLattice(4, 4)
L, C, Q = 16, 4, 1


def spxx_for_beta(beta: float, seed: int = 3):
    model = HubbardModel(LATTICE, L=L, t=1.0, U=4.0, beta=beta)
    field = HSField.random(L, model.N, np.random.default_rng(seed))
    bundles = {}
    for sigma in (+1, -1):
        pc = model.build_matrix(field, sigma)
        # One expensive CLS+BSOFI ...
        res = fsi(pc, C, pattern=Pattern.ROWS, q=Q, num_threads=1)
        # ... then extra patterns wrapped from the same seeds for free-ish.
        cols = wrap(
            pc,
            res.seeds,
            Selection(Pattern.COLUMNS, L=L, c=C, q=Q),
            num_threads=1,
            ops=res.ops,
        )
        bundles[sigma] = (res.selected, cols)
    return (
        spxx(
            bundles[+1][0],
            bundles[+1][1],
            bundles[-1][0],
            bundles[-1][1],
            LATTICE,
        ),
        model,
    )


result, model = spxx_for_beta(beta=2.0)
radii = LATTICE.distance_classes[1]

print(f"SPXX matrix: {result.values.shape} (tau x distance classes)")
print(f"contributing block pairs per tau: C(tau) = {result.c_tau[0]}\n")

print("SPXX(tau, d) for the first distance classes (beta = 2):")
header = "tau\\r " + "  ".join(f"{r:6.2f}" for r in radii[:5])
print(header)
for tau in range(0, L, 4):
    row = "  ".join(f"{result.values[tau, d]:+.3f}" for d in range(5))
    print(f"{tau:4d}  {row}")

# Imaginary-time decay: the on-site correlation is maximal at tau = 0.
onsite = result.values[:, 0]
print(f"\non-site SPXX: tau=0 -> {onsite[0]:+.4f},"
      f" tau=L/2 -> {onsite[L // 2]:+.4f} (decays into the bulk)")
assert onsite[0] > abs(onsite[L // 2])

# Temperature dependence of the equal-tau structure factor.
print("\nequal-tau SPXX structure factor vs temperature:")
for beta in (1.0, 2.0, 4.0):
    r, _ = spxx_for_beta(beta)
    sf = float(r.structure_factor()[0])
    print(f"  beta = {beta:3.1f}: sum_d SPXX(0, d) = {sf:+.4f}")
print("\n(single HS configuration — a production run averages over the"
      " Markov chain as in examples/dqmc_hubbard.py)")
