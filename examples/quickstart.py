"""Quickstart: selected inversion of a Hubbard matrix in ten lines.

Builds a block p-cyclic Hubbard matrix, computes ``b`` selected block
columns of its inverse (the Green's function) with FSI, and verifies
them against a dense inversion — the same validation the paper runs in
Sec. V-A, at friendly size.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import Pattern, build_hubbard_matrix, fsi, full_lu_inverse

# 1. A Hubbard matrix: 6x6 periodic lattice (N = 36 sites), L = 32 time
#    slices, hopping t = 1, repulsion U = 2, inverse temperature beta = 1.
M, model, field = build_hubbard_matrix(6, 6, L=32, t=1.0, U=2.0, beta=1.0, rng=0)
print(f"Hubbard matrix: {M!r}")

# 2. Fast selected inversion: cluster size c = sqrt(L), block columns.
result = fsi(M, c=8, pattern=Pattern.COLUMNS, rng=0)
sel = result.selected
print(
    f"selected {len(sel)} blocks of G = M^-1"
    f" ({sel.selection.pattern.value}, q = {sel.selection.q});"
    f" memory reduction {sel.selection.reduction_factor():.0f}x"
)

# 3. Use a block: G_{k,l} is the propagator from time slice l to k.
l = sel.selection.seeds[0]
G_block = sel[(5, l)]
print(f"G[5, {l}] has shape {G_block.shape}, trace {np.trace(G_block):+.6f}")

# 4. Verify against the dense LAPACK inverse (the paper's oracle).
G_dense = full_lu_inverse(M)
err = sel.max_relative_error(G_dense)
print(f"max blockwise relative error vs dense inverse: {err:.2e}")
assert err < 1e-10, "selected inversion disagrees with the dense oracle"
print("OK — matches the dense inverse to better than 1e-10 (Sec. V-A)")
