"""A full DQMC simulation of the half-filled Hubbard model.

Runs Alg. 4 end to end on a 4x4 lattice — warmup sweeps, measurement
sweeps with FSI-computed Green's functions, equal-time observables with
jackknife error bars, and the time-dependent SPXX spin correlation —
then prints a small physics report.

Expected physics at half filling (mu = 0), U = 4, beta = 2:

* density exactly 1 (particle-hole symmetry, no sign problem);
* double occupancy well below the uncorrelated 0.25;
* local moment enhanced above the free-fermion 0.5;
* antiferromagnetic tendency: S^zz changes sign between distance
  classes 0 and 1 (opposite sublattices anti-align).

Run: ``python examples/dqmc_hubbard.py`` (~20 s serial)
"""


from repro import DQMC, DQMCConfig, HubbardModel, RectangularLattice

model = HubbardModel(
    RectangularLattice(4, 4), L=16, t=1.0, U=4.0, beta=2.0, mu=0.0
)
print(f"model: 4x4 lattice, L={model.L}, U={model.U}, beta={model.beta}")
print(f"dtau = {model.dtau:.4f}, HS coupling nu = {model.nu:.4f}")

sim = DQMC(
    model,
    DQMCConfig(
        warmup_sweeps=10,
        measurement_sweeps=20,
        c=4,            # cluster size for the measurement FSI
        nwrap=4,        # stabilised rebuild cadence
        bin_size=4,
        seed=2016,
        num_threads=1,
    ),
)
result = sim.run()

print(f"\nacceptance rate: {result.acceptance_rate:.3f}")
print(f"average sign:    {result.average_sign:.3f}  (half filling: +1)")
print(f"max wrap drift:  {result.max_wrap_drift:.2e}  (stability check)")
print(
    f"timings: sweeps {result.sweep_seconds:.2f}s,"
    f" Green's functions {result.greens_seconds:.2f}s,"
    f" measurements {result.measurement_seconds:.2f}s"
)

print("\nequal-time observables (jackknife errors):")
for name in ("density", "double_occupancy", "kinetic_energy", "local_moment"):
    mean, err = result.observable(name)
    print(f"  {name:18s} = {float(mean):+.4f} +- {float(err):.4f}")

szz, szz_err = result.observable("szz")
print("\nequal-time spin correlation S^zz by distance class:")
radii = model.lattice.distance_classes[1]
for d in range(min(4, len(radii))):
    print(
        f"  r = {radii[d]:4.2f}: {szz[d]:+.4f} +- {szz_err[d]:.4f}"
    )
assert szz[0] > 0 > szz[1], "expected antiferromagnetic nearest-neighbor sign"

print("\ntime-dependent SPXX (tau = 0 row, first distance classes):")
assert result.spxx_mean is not None
print("  " + "  ".join(f"{v:+.4f}" for v in result.spxx_mean[0, :4]))
print("\nOK — half-filled Hubbard physics reproduced.")
