"""Twist-averaged boundary conditions — complex Green's functions.

Finite periodic clusters suffer "shell effects": the discrete momentum
grid makes small-lattice observables jump around the thermodynamic
limit.  The standard cure is to thread a boundary twist ``theta``
(Peierls phases on the hopping), turning the Hubbard matrix complex,
and average observables over twists — the momentum grid sweeps the
Brillouin zone.

This example exercises the library's complex code path end to end:

1. build twisted Hubbard matrices and run FSI on them (complex BSOFI
   panels are unitary instead of orthogonal);
2. verify the ``theta -> -theta`` conjugation symmetry that keeps
   twist-averaged observables real;
3. show the physics payoff in the exactly solvable ``U = 0`` limit:
   the twist-averaged kinetic energy of a tiny 4x4 lattice lands far
   closer to the thermodynamic limit than the untwisted cluster.

Run: ``python examples/twisted_boundaries.py``
"""

import numpy as np

from repro import HSField, Pattern, RectangularLattice, fsi
from repro.hubbard.twisted import TwistedHubbardModel, twisted_adjacency

LAT = RectangularLattice(4, 4)
L, BETA, T = 16, 2.0, 1.0


def kinetic_energy_free(theta: tuple[float, float], nk: int = 1) -> float:
    """Exact U = 0 kinetic energy per site at twist ``theta``."""
    K = twisted_adjacency(LAT, theta)
    eps = np.linalg.eigvalsh(-T * K)
    f = 1.0 / (1.0 + np.exp(BETA * eps))
    return float(2.0 * np.sum(eps * f) / LAT.nsites)


def kinetic_energy_bulk(grid: int = 64) -> float:
    """Thermodynamic-limit kinetic energy (dense momentum integration)."""
    kx = 2 * np.pi * (np.arange(grid) + 0.5) / grid
    eps = -2 * T * (np.cos(kx)[:, None] + np.cos(kx)[None, :])
    f = 1.0 / (1.0 + np.exp(BETA * eps))
    return float(2.0 * np.mean(eps * f))


# --- 1. FSI on a complex (twisted, interacting) Hubbard matrix ----------
theta = (0.9, 0.4)
model = TwistedHubbardModel(LAT, L=L, theta=theta, U=4.0, beta=BETA)
field = HSField.random(L, LAT.nsites, np.random.default_rng(0))
M = model.build_matrix(field, +1)
print(f"twisted Hubbard matrix: complex dtype = {M.dtype}")
G_dense = np.linalg.inv(M.to_dense())
res = fsi(M, 4, pattern=Pattern.COLUMNS, q=1)
print(f"FSI on the complex matrix: rel err {res.selected.max_relative_error(G_dense):.2e}")

# --- 2. conjugation symmetry ------------------------------------------
neg = TwistedHubbardModel(LAT, L=L, theta=(-theta[0], -theta[1]), U=4.0, beta=BETA)
M_neg = neg.build_matrix(field, +1)
res_neg = fsi(M_neg, 4, pattern=Pattern.DIAGONAL, q=0)
res_pos = fsi(M, 4, pattern=Pattern.DIAGONAL, q=0)
k = res_pos.selection.seeds[0]
tr_sum = np.trace(res_pos.selected[(k, k)]) + np.trace(res_neg.selected[(k, k)])
print(f"tr G(+theta) + tr G(-theta) imag part: {abs(tr_sum.imag):.2e} (exactly real)")

# --- 3. twist averaging kills shell effects (U = 0, exact) --------------
bulk = kinetic_energy_bulk()
untwisted = kinetic_energy_free((0.0, 0.0))
grid = np.linspace(-np.pi, np.pi, 5, endpoint=False)
avg = float(np.mean([kinetic_energy_free((tx, ty)) for tx in grid for ty in grid]))
print("\nU = 0 kinetic energy per site (4x4 lattice, beta = 2):")
print(f"  thermodynamic limit : {bulk:+.5f}")
print(f"  untwisted cluster   : {untwisted:+.5f}  (error {abs(untwisted - bulk):.5f})")
print(f"  twist-averaged (25) : {avg:+.5f}  (error {abs(avg - bulk):.5f})")
assert abs(avg - bulk) < 0.5 * abs(untwisted - bulk)
print("\nOK — twist averaging brings the 4x4 cluster within "
      f"{abs(avg - bulk) / abs(bulk):.2%} of the bulk value.")
