"""Frequency-domain Green's functions: the DOS of a Hubbard chain.

The equal-time Green's function answers "who overlaps with whom"; the
*resolvent* ``G(omega + i eta) = (zI - M)^{-1}`` answers "at which
energies".  This example

1. builds the p-cyclic DQMC matrix of a small Hubbard lattice for one
   Hubbard-Stratonovich field configuration;
2. factors it **once** (:class:`repro.spectral.ResolventFactor`) and
   sweeps a 97-point frequency grid — the omega-independent CLS stage
   and the per-block LU factors are shared by every shift, which is
   what makes dense grids affordable (see ``benchmarks/
   bench_spectral.py`` for the measured speedup gate);
3. prints the density of states ``rho(omega) = tr A(omega) / (N L)``
   averaged over all time-diagonal blocks as an ASCII profile, plus the
   momentum-resolved ``A(q, omega)`` peak positions;
4. self-checks the answer against the dense resolvent oracle at three
   shifts.

Run: ``python examples/spectral_function.py`` (~10 s serial)
"""

import numpy as np

from repro import HubbardModel, RectangularLattice
from repro.bench.ascii_chart import sparkline
from repro.core.patterns import Pattern
from repro.hubbard.hs_field import HSField
from repro.spectral import (
    OmegaGrid,
    ResolventFactor,
    density_of_states,
    momentum_spectral_function,
    spectral_function,
)


def main() -> None:
    lattice = RectangularLattice(4, 4)
    model = HubbardModel(lattice, L=8, t=1.0, U=4.0, beta=2.0)
    field = HSField.random(model.L, lattice.nsites, np.random.default_rng(11))
    pc = model.build_matrix(field, +1)
    N, L = pc.N, pc.L

    grid = OmegaGrid.linear(-6.0, 6.0, 97, 0.25)
    factor = ResolventFactor(pc, c=4, pattern=Pattern.FULL_DIAGONAL)
    swept = factor.sweep(grid)
    assert swept.rungs == ["factored"] * grid.n

    # DOS averaged over every time slice: rho(w) = sum_k tr A_kk / (N L).
    rho = np.zeros(grid.n)
    for k in range(1, L + 1):
        rho += density_of_states(spectral_function(swept.block(k, k)))
    rho /= L

    print(f"Hubbard {lattice.nx}x{lattice.ny}, L={L}, U={model.U},"
          f" beta={model.beta}: DOS over {grid.n} frequencies")
    print(f"  omega in [{grid.omegas[0]:+.1f}, {grid.omegas[-1]:+.1f}],"
          f" eta={grid.etas[0]:g}")
    print(f"  rho: {sparkline(rho)}")
    peak = grid.omegas[int(np.argmax(rho))]
    mass = np.trapezoid(rho, grid.omegas)
    print(f"  peak at omega={peak:+.2f}, grid mass {mass:.3f}"
          " (spectral weight near the real axis)")

    # Momentum-resolved A(q, omega) of one time slice: where the
    # spectral weight sits in the Brillouin zone.
    A1 = spectral_function(swept.block(1, 1))
    momenta, Aq = momentum_spectral_function(A1, lattice)
    print("  A(q, omega) band peaks (one time slice):")
    for qi in (0, 5, 10, 15):
        qx, qy = momenta[qi]
        j = int(np.argmax(Aq[:, qi]))
        print(f"    q=({qx:4.2f},{qy:4.2f})  peak omega={grid.omegas[j]:+5.2f}"
              f"  {sparkline(Aq[:, qi])}")

    # -- self-checks ---------------------------------------------------
    # The DQMC matrix is NOT Hermitian: its eigenvalues live on circles
    # around 1 in the complex plane, so a Lorentzian of width eta on the
    # real line only weighs the spectrum within ~eta of the axis — the
    # grid mass is well below one state per orbital.  The hard
    # correctness check is the dense resolvent oracle below.
    assert 0.01 < mass < 1.3, mass
    dense = pc.to_dense()
    eye = np.eye(dense.shape[0])
    worst = 0.0
    for j in (0, grid.n // 2, grid.n - 1):
        ref = np.linalg.inv(grid.z[j] * eye - dense)
        scale = np.abs(ref).max()
        for k in range(1, L + 1):
            refb = ref[(k - 1) * N:k * N, (k - 1) * N:k * N]
            worst = max(worst,
                        np.abs(swept.block(k, k)[j] - refb).max() / scale)
    print(f"  dense-oracle check over 3 shifts: max err {worst:.2e}")
    assert worst < 1e-10, worst


if __name__ == "__main__":
    main()
