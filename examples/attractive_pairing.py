"""The attractive Hubbard model: s-wave pairing without a sign problem.

Negative-U DQMC decouples the interaction in the *charge* channel: both
spins share one Green's function and the configuration weight
``e^{-nu sum(h)} det(M)^2`` is non-negative at **any** filling — the
workhorse model for s-wave superconductivity studies.

This example

1. runs attractive-U DQMC and validates density/double occupancy
   against exact diagonalisation on a 2x2 plaquette;
2. shows pairing enhancement: <n_up n_dn> far above the uncorrelated
   value, strengthening as the temperature drops;
3. dopes the system (mu != 0) and confirms the average sign stays
   exactly +1.

Run: ``python examples/attractive_pairing.py`` (~30 s serial)
"""


from repro import DQMC, DQMCConfig, HubbardModel, RectangularLattice
from repro.dqmc.ed import ExactDiagonalization


def run(beta: float, L: int, mu: float = 0.0, sweeps=(20, 120), seed=4):
    model = HubbardModel(RectangularLattice(2, 2), L=L, t=1.0, U=-4.0,
                         beta=beta, mu=mu)
    sim = DQMC(
        model,
        DQMCConfig(
            warmup_sweeps=sweeps[0],
            measurement_sweeps=sweeps[1],
            c=4,
            nwrap=4,
            bin_size=10,
            seed=seed,
            num_threads=1,
            measure_time_dependent=False,
        ),
    )
    return model, sim.run()


# 1. ED validation at half filling.
model, res = run(beta=2.0, L=16)
ed = ExactDiagonalization(model)
print("attractive U = -4, 2x2 plaquette, beta = 2 (half filling):")
for name, ref in (
    ("density", ed.density(2.0)),
    ("double_occupancy", ed.double_occupancy(2.0)),
):
    mean, err = res.observable(name)
    print(f"  {name:18s} DQMC {float(mean):+.4f} +- {float(err):.4f}"
          f"   ED {ref:+.4f}")
    assert abs(float(mean) - ref) < max(4 * float(err), 0.03)

# 2. Pairing enhancement with cooling.
print("\npair binding strengthens as T drops (uncorrelated value 0.25):")
for beta, L in ((0.5, 4), (1.0, 8), (2.0, 16)):
    _, r = run(beta=beta, L=L, sweeps=(10, 60))
    docc, err = r.observable("double_occupancy")
    print(f"  beta = {beta:3.1f}: <n_up n_dn> = {float(docc):.4f} +- {float(err):.4f}")

# 3. Doped: no sign problem.
_, r = run(beta=2.0, L=16, mu=0.6, sweeps=(10, 40))
dens, _ = r.observable("density")
print(f"\ndoped (mu = 0.6): density {float(dens):.4f},"
      f" average sign {r.average_sign:.4f} (exactly +1: sign-free)")
assert r.average_sign == 1.0
assert float(dens) > 1.0
print("\nOK — attractive-model physics reproduced without a sign problem.")
