"""Parallel application of FSI to many Green's functions (Alg. 3).

Demonstrates the paper's hybrid execution model on the SimMPI runtime:

1. the root rank generates Hubbard-Stratonovich parameter buffers for a
   fleet of matrices and *scatters the parameters, not the matrices*;
2. every rank rebuilds its matrices locally and runs FSI with an
   OpenMP-style thread team;
3. local measurement quantities are reduced to the root.

The same workload is then pushed through several (ranks x threads)
decompositions to show (a) bit-identical global reductions and (b) the
per-rank memory footprint that drives the paper's Fig. 9 OOM analysis,
evaluated against the Edison machine model.

Run: ``python examples/hybrid_cluster.py``
"""

from repro import HubbardModel, HybridConfig, Pattern, RectangularLattice, run_fsi_fleet
from repro.perf.machine import EDISON, fsi_rank_memory_bytes

model = HubbardModel(RectangularLattice(4, 4), L=16, t=1.0, U=2.0, beta=1.0)
N_MATRICES = 8
C = 4

print(f"fleet: {N_MATRICES} Hubbard matrices, (N, L, c) = (16, 16, {C})\n")
print(f"{'ranks x threads':>16s} {'trace_sum':>12s} {'frobenius^2':>12s} "
      f"{'seconds':>8s} {'msgs':>5s}")
for ranks, threads in ((1, 4), (2, 2), (4, 1), (8, 1)):
    report = run_fsi_fleet(
        model,
        HybridConfig(
            n_matrices=N_MATRICES,
            n_ranks=ranks,
            threads_per_rank=threads,
            c=C,
            pattern=Pattern.COLUMNS,
            seed=7,
        ),
    )
    g = report.global_measurements
    print(
        f"{f'{ranks}x{threads}':>16s} {g['trace_sum']:12.6f}"
        f" {g['frobenius_sq']:12.6f} {report.elapsed_seconds:8.3f}"
        f" {report.comm.total_messages:5d}"
    )

print("\nthe global reductions above are identical for every decomposition —")
print("the q offsets are keyed by global matrix index, as Alg. 3 requires.\n")

# The Fig. 9 story at paper scale: which Edison configurations fit?
print("Edison memory feasibility for (L, c) = (100, 10) block columns:")
print(f"{'N':>6s} {'mem/rank':>10s}  " + "  ".join(
    f"{r}x{t}" for r, t in ((200, 12), (400, 6), (800, 3), (1200, 2), (2400, 1))
))
for N in (400, 576, 784, 1024):
    mem = fsi_rank_memory_bytes(N, 100, 10, Pattern.COLUMNS)
    cells = []
    for ranks, _threads in ((200, 12), (400, 6), (800, 3), (1200, 2), (2400, 1)):
        ranks_per_socket = ranks // 100 // 2 or 1
        ok = EDISON.fits_on_socket(ranks_per_socket, mem)
        cells.append(" fits " if ok else " OOM  ")
    print(f"{N:>6d} {mem / 2**30:>8.2f}GB  " + "  ".join(cells))
print("\npure MPI (2400x1) only fits N = 400 — the paper's hybrid motivation.")
