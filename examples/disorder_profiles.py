"""The disordered Hubbard model: site-resolved physics.

Random site potentials break translation invariance, so the interesting
observables become *profiles*: where does the density pool, where do
local moments survive?  This example runs DQMC on a 4x4 lattice with a
box-disordered potential, prints the site-resolved density and moment
profiles as sparklines next to the potential landscape, and checks the
density–potential correlation.

Run: ``python examples/disorder_profiles.py`` (~30 s serial)
"""

import numpy as np

from repro import DQMC, DQMCConfig, HubbardModel, RectangularLattice
from repro.bench.ascii_chart import sparkline
from repro.dqmc import density_profile, moment_profile

rng = np.random.default_rng(2024)
LAT = RectangularLattice(4, 4)
W = 2.0
mu_i = rng.uniform(-W / 2, W / 2, LAT.nsites)

model = HubbardModel(LAT, L=16, t=1.0, U=4.0, beta=2.0, mu=mu_i)
print(f"4x4 disordered Hubbard: U = 4, beta = 2, box disorder W = {W}")

sim = DQMC(
    model,
    DQMCConfig(
        warmup_sweeps=10,
        measurement_sweeps=30,
        c=4,
        nwrap=4,
        bin_size=5,
        seed=7,
        num_threads=1,
        measure_time_dependent=False,
        sign_resync_every=10,
    ),
)
res = sim.run()
print(f"acceptance {res.acceptance_rate:.3f}, average sign {res.average_sign:.3f}")

# Site-resolved profiles, averaged over slices of the final bundle and
# a handful of configurations along the tail of the chain.
profiles_n, profiles_m = [], []
for _ in range(5):
    sim.sweep()
    bundles = sim.compute_greens(q=0)
    for l in range(1, model.L + 1):
        gu = bundles[+1].full_diagonal[(l, l)]
        gd = bundles[-1].full_diagonal[(l, l)]
        profiles_n.append(density_profile(gu, gd))
        profiles_m.append(moment_profile(gu, gd))
n_i = np.mean(profiles_n, axis=0)
m_i = np.mean(profiles_m, axis=0)

print("\nsite-resolved landscape (16 sites, row-major):")
print(f"  potential mu_i : {sparkline(mu_i)}   [{mu_i.min():+.2f} .. {mu_i.max():+.2f}]")
print(f"  density  <n_i> : {sparkline(n_i)}   [{n_i.min():.3f} .. {n_i.max():.3f}]")
print(f"  moment <m_i^2> : {sparkline(m_i)}   [{m_i.min():.3f} .. {m_i.max():.3f}]")

corr_n = float(np.corrcoef(n_i, mu_i)[0, 1])
corr_m = float(np.corrcoef(m_i, np.abs(mu_i))[0, 1])
print(f"\ncorr(density, potential)      = {corr_n:+.3f}  (deep wells fill up)")
print(f"corr(moment, |potential|)     = {corr_m:+.3f}  (moments die on extreme sites)")
assert corr_n > 0.7, "density must track the potential"
assert corr_m < 0.0, "local moments are largest near half-filled (mu ~ 0) sites"

total_density = float(res.observable("density")[0])
print(f"\nmean density {total_density:.4f} (clean half filling would be 1)")
print("OK — disordered profiles behave as the physics demands.")
