"""Selected inversion beyond QMC: a p-cyclic Markov chain.

Sec. II-A of the paper lists Markov chain modelling (Stewart) among the
classic applications of p-cyclic matrices.  This example builds a
periodic Markov chain — think of a job flowing through ``L`` pipeline
stages, each with ``N`` internal states — and uses the FSI machinery to
answer resolvent queries:

    ``R(z) = (I - z P)^{-1}``,  ``R[(k,l)][i,j]`` = expected discounted
    number of visits to state ``j`` of stage ``l``, starting from state
    ``i`` of stage ``k``.

Only a few stages are ever queried, so *selected block columns* are
exactly the right primitive — the full resolvent is never formed.

Run: ``python examples/markov_resolvent.py``
"""

import numpy as np

from repro.apps.markov import CyclicMarkovChain, resolvent_columns
from repro.core.solve import PCyclicSolver

L_STAGES, N_STATES = 12, 16
rng = np.random.default_rng(42)
chain = CyclicMarkovChain.random(L_STAGES, N_STATES, rng=rng)
print(f"cyclic Markov chain: {L_STAGES} stages x {N_STATES} states"
      f" = {L_STAGES * N_STATES} states total")

z = 0.95
cols = resolvent_columns(chain, z, c=4, q=1)
queried = sorted({l for _, l in cols})
print(f"discount z = {z}; selected resolvent columns for stages {queried}"
      f" ({len(cols)} blocks, {len(cols) * N_STATES**2 * 8 / 1024:.0f} KiB"
      f" vs {(L_STAGES * N_STATES)**2 * 8 / 1024:.0f} KiB for the full R)\n")

# Query: starting from state 0 of stage 1, where does the walk spend
# its (discounted) time within the queried stages?
start_stage, start_state = 1, 0
print(f"expected discounted visits from stage {start_stage}, state {start_state}:")
for l in queried:
    visits = cols[(start_stage, l)][start_state]
    lag = (l - start_stage) % L_STAGES
    print(
        f"  stage {l:2d} (lag {lag:2d}): total {visits.sum():7.4f},"
        f" top state {int(np.argmax(visits))} ({visits.max():.4f})"
    )

# Cross-check one block against a structured solve (no dense inverse).
# The library works on G = ((I - zP)^T)^{-1} = R^T, so the resolvent
# block R_{k,l} equals (G_{l,k})^T: solve for G's block column k and
# read off block row l.
pc = chain.resolvent_pcyclic(z)
solver = PCyclicSolver(pc)
l = queried[0]
rhs = np.zeros((L_STAGES * N_STATES, N_STATES))
rhs[(start_stage - 1) * N_STATES : start_stage * N_STATES] = np.eye(N_STATES)
col_via_solve = solver.solve(rhs)  # G[:, start-block]
blk = col_via_solve[(l - 1) * N_STATES : l * N_STATES].T  # (G_{l,k})^T
err = np.abs(blk - cols[(start_stage, l)]).max()
print(f"\nconsistency vs structured solve: max err {err:.2e}")
assert err < 1e-10

# Geometric identity: total discounted visits over ALL stages = 1/(1-z).
total_all = sum(
    cols[(start_stage, l)][start_state].sum() for l in queried
)
print(f"visits within queried stages: {total_all:.3f}"
      f" (all stages would sum to {1 / (1 - z):.1f})")
print("\nOK — resolvent queries served from selected block columns only.")
