"""Legacy setup shim.

Kept so ``pip install -e .`` works on offline environments whose
setuptools predates native ``bdist_wheel`` support (the PEP 517
editable path needs the ``wheel`` package; the legacy
``setup.py develop`` path does not).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
