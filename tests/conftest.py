"""Shared fixtures: small matrices with dense oracles, Hubbard models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pcyclic import BlockPCyclic, random_pcyclic
from repro.hubbard import HSField, HubbardModel, RectangularLattice


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_pc(rng) -> BlockPCyclic:
    """A well-conditioned 6-block random p-cyclic matrix (N=4)."""
    return random_pcyclic(6, 4, rng, scale=0.7)


@pytest.fixture
def small_dense_inverse(small_pc) -> np.ndarray:
    return np.linalg.inv(small_pc.to_dense())


@pytest.fixture
def hubbard_model() -> HubbardModel:
    """3x3 lattice, 8 slices — small enough for dense oracles."""
    return HubbardModel(RectangularLattice(3, 3), L=8, t=1.0, U=4.0, beta=2.0)


@pytest.fixture
def hubbard_field(hubbard_model, rng) -> HSField:
    return HSField.random(hubbard_model.L, hubbard_model.N, rng)


@pytest.fixture
def hubbard_pc(hubbard_model, hubbard_field) -> BlockPCyclic:
    return hubbard_model.build_matrix(hubbard_field, +1)


def dense_block(G: np.ndarray, k: int, l: int, N: int) -> np.ndarray:
    """1-based block extraction from a dense matrix (test helper)."""
    return G[(k - 1) * N : k * N, (l - 1) * N : l * N]


@pytest.fixture
def block_of():
    return dense_block
