"""Parallel independent DQMC chains over SimMPI."""

import numpy as np
import pytest

from repro.dqmc import DQMCConfig
from repro.dqmc.parallel_chains import ChainResult, gelman_rubin, run_parallel_chains
from repro.hubbard import HubbardModel, RectangularLattice


class TestGelmanRubin:
    def test_identical_chains_unity(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(50)
        chains = np.stack([x, x, x])
        assert gelman_rubin(chains) == pytest.approx(
            np.sqrt((len(x) - 1) / len(x)), rel=1e-10
        )

    def test_same_distribution_near_one(self):
        rng = np.random.default_rng(1)
        chains = rng.standard_normal((4, 200))
        assert 0.9 < gelman_rubin(chains) < 1.1

    def test_shifted_chains_flagged(self):
        rng = np.random.default_rng(2)
        chains = rng.standard_normal((4, 200))
        chains[0] += 5.0  # one chain stuck elsewhere
        assert gelman_rubin(chains) > 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            gelman_rubin(np.zeros((1, 10)))
        with pytest.raises(ValueError):
            gelman_rubin(np.zeros((3, 1)))


class TestParallelChains:
    @pytest.fixture(scope="class")
    def result(self):
        model = HubbardModel(RectangularLattice(2, 2), L=8, U=4.0, beta=2.0)
        cfg = DQMCConfig(
            warmup_sweeps=5,
            measurement_sweeps=20,
            c=4,
            nwrap=4,
            bin_size=4,
            seed=1,
            num_threads=1,
            measure_time_dependent=False,
        )
        return run_parallel_chains(model, cfg, n_chains=4)

    def test_structure(self, result):
        assert isinstance(result, ChainResult)
        assert result.n_chains == 4
        assert result.bins_per_chain >= 2
        assert len(result.acceptance_rates) == 4

    def test_chains_are_independent(self, result):
        """Different seeds -> different trajectories."""
        assert len(set(result.acceptance_rates)) > 1

    def test_pooled_density_exact_half_filling(self, result):
        mean, err = result.observable("density")
        assert float(mean) == pytest.approx(1.0, abs=1e-9)

    def test_rhat_near_one(self, result):
        for name, value in result.r_hat.items():
            assert 0.8 < value < 1.3, (name, value)

    def test_sign_reported(self, result):
        sign, _ = result.observable("sign")
        assert float(sign) == pytest.approx(1.0)

    def test_requires_two_chains(self):
        model = HubbardModel(RectangularLattice(2, 2), L=4, U=2.0, beta=1.0)
        with pytest.raises(ValueError, match="chains"):
            run_parallel_chains(model, DQMCConfig(c=2, seed=0), n_chains=1)

    def test_error_shrinks_with_more_chains(self):
        """Pooling 4 chains tightens the error vs a single chain's worth
        of bins (1/sqrt(R) scaling, up to noise)."""
        model = HubbardModel(RectangularLattice(2, 2), L=8, U=4.0, beta=2.0)
        cfg = DQMCConfig(
            warmup_sweeps=5, measurement_sweeps=24, c=4, nwrap=4,
            bin_size=4, seed=3, num_threads=1, measure_time_dependent=False,
        )
        r2 = run_parallel_chains(model, cfg, n_chains=2)
        r6 = run_parallel_chains(model, cfg, n_chains=6)
        _, e2 = r2.observable("double_occupancy")
        _, e6 = r6.observable("double_occupancy")
        assert float(e6) < float(e2) * 1.2  # generous: noise on the error
