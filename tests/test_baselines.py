"""The dense-LU and explicit baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    dense_block,
    full_lu_flops,
    full_lu_inverse,
    lu_selected_inversion,
)
from repro.core.fsi import fsi
from repro.core.patterns import Pattern, Selection
from repro.core.pcyclic import random_pcyclic
from repro.perf.tracer import FlopTracer


class TestFullLU:
    def test_matches_numpy_inverse(self, small_pc):
        np.testing.assert_allclose(
            full_lu_inverse(small_pc),
            np.linalg.inv(small_pc.to_dense()),
            atol=1e-11,
        )

    def test_records_lu_stage(self, small_pc):
        with FlopTracer() as tr:
            full_lu_inverse(small_pc)
        assert tr.flops("lu") > 0
        assert tr.flops("cls") == 0

    def test_flop_count_cubic(self, small_pc):
        with FlopTracer() as tr:
            full_lu_inverse(small_pc)
        n = small_pc.shape[0]
        # getrf (2/3 n^3) + n-rhs solve (2 n^3).
        assert tr.total_flops == pytest.approx(2 / 3 * n**3 + 2 * n**3)

    def test_formula(self):
        assert full_lu_flops(100, 64) == 2.0 * 6400**3


class TestDenseBlock:
    def test_extraction(self, small_pc):
        G = full_lu_inverse(small_pc)
        N = small_pc.N
        np.testing.assert_array_equal(
            dense_block(G, 2, 3, N), G[N : 2 * N, 2 * N : 3 * N]
        )


class TestLUSelected:
    @pytest.mark.parametrize("pattern", list(Pattern))
    def test_agrees_with_fsi(self, small_pc, pattern):
        sel = Selection(pattern, L=small_pc.L, c=3, q=1)
        via_lu = lu_selected_inversion(small_pc, sel)
        via_fsi = fsi(small_pc, 3, pattern=pattern, q=1, num_threads=1).selected
        for kl in via_lu:
            np.testing.assert_allclose(via_lu[kl], via_fsi[kl], atol=1e-8)

    def test_block_set_matches_pattern(self, small_pc):
        sel = Selection(Pattern.COLUMNS, L=small_pc.L, c=2, q=0)
        out = lu_selected_inversion(small_pc, sel)
        assert set(out) == set(sel.block_indices())

    def test_blocks_contiguous(self, small_pc):
        sel = Selection(Pattern.DIAGONAL, L=small_pc.L, c=3, q=2)
        out = lu_selected_inversion(small_pc, sel)
        for _, blk in out.items():
            assert blk.flags["C_CONTIGUOUS"]


class TestCostComparison:
    def test_fsi_uses_far_fewer_flops_than_lu(self):
        """The headline claim, on real measured counts."""
        pc = random_pcyclic(16, 8, np.random.default_rng(0), scale=0.6)
        sel = Selection(Pattern.COLUMNS, L=16, c=4, q=1)
        with FlopTracer() as t_lu:
            lu_selected_inversion(pc, sel)
        with FlopTracer() as t_fsi:
            fsi(pc, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        assert t_fsi.total_flops < 0.25 * t_lu.total_flops
