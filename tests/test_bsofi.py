"""BSOFI structured orthogonal inversion: factors and full inverse."""

import numpy as np
import pytest

from repro.core.bsofi import bsofi, bsofi_flops, bsofi_qr
from repro.core.pcyclic import BlockPCyclic, random_pcyclic
from repro.perf.tracer import FlopTracer


def stitch(G):
    b = G.shape[0]
    return np.block([[G[i, j] for j in range(b)] for i in range(b)])


class TestFactorisation:
    @pytest.mark.parametrize("b,N", [(2, 3), (3, 4), (4, 2), (7, 5)])
    def test_qr_reproduces_m(self, b, N):
        pc = random_pcyclic(b, N, np.random.default_rng(b * 10 + N), scale=0.8)
        f = bsofi_qr(pc)
        np.testing.assert_allclose(
            f.to_dense_q() @ f.to_dense_r(), pc.to_dense(), atol=1e-12
        )

    @pytest.mark.parametrize("b,N", [(2, 3), (4, 3), (6, 2)])
    def test_q_is_orthogonal(self, b, N):
        pc = random_pcyclic(b, N, np.random.default_rng(b), scale=0.8)
        Q = bsofi_qr(pc).to_dense_q()
        np.testing.assert_allclose(Q.T @ Q, np.eye(b * N), atol=1e-12)

    def test_r_diagonal_blocks_triangular(self):
        pc = random_pcyclic(5, 4, np.random.default_rng(1), scale=0.8)
        f = bsofi_qr(pc)
        for i in range(5):
            lower = np.tril(f.Rd[i], k=-1)
            np.testing.assert_allclose(lower, 0.0, atol=1e-14)

    def test_r_structure_sparsity(self):
        """R has only diagonal, superdiagonal and last-column blocks."""
        b, N = 5, 3
        pc = random_pcyclic(b, N, np.random.default_rng(2), scale=0.8)
        R = bsofi_qr(pc).to_dense_r()
        for i in range(b):
            for j in range(b):
                if j in (i, i + 1, b - 1) and j >= i:
                    continue
                blk = R[i * N : (i + 1) * N, j * N : (j + 1) * N]
                np.testing.assert_allclose(blk, 0.0, atol=1e-14)

    def test_rejects_single_block(self):
        pc = random_pcyclic(1, 3, np.random.default_rng(0))
        with pytest.raises(ValueError, match="at least 2"):
            bsofi_qr(pc)

    def test_factor_shapes(self):
        b, N = 6, 3
        f = bsofi_qr(random_pcyclic(b, N, np.random.default_rng(0), scale=0.8))
        assert f.Rd.shape == (b, N, N)
        assert f.Ru.shape == (b - 1, N, N)
        assert f.Rc.shape == (b - 2, N, N)
        assert f.Q.shape == (b - 1, 2 * N, 2 * N)
        assert f.Qf.shape == (N, N)
        assert f.b == b and f.N == N


class TestInverse:
    @pytest.mark.parametrize("b,N", [(1, 4), (2, 3), (3, 5), (5, 4), (8, 3)])
    def test_matches_dense_inverse(self, b, N):
        pc = random_pcyclic(b, N, np.random.default_rng(b + N), scale=0.7)
        G = bsofi(pc)
        np.testing.assert_allclose(
            stitch(G), np.linalg.inv(pc.to_dense()), atol=1e-10
        )

    def test_hubbard_matrix(self, hubbard_pc):
        G = bsofi(hubbard_pc)
        np.testing.assert_allclose(
            stitch(G), np.linalg.inv(hubbard_pc.to_dense()), atol=1e-9
        )

    def test_residual_mg_is_identity(self):
        pc = random_pcyclic(4, 6, np.random.default_rng(9), scale=0.7)
        G = stitch(bsofi(pc))
        np.testing.assert_allclose(
            pc.to_dense() @ G, np.eye(24), atol=1e-11
        )

    def test_output_shape(self):
        pc = random_pcyclic(3, 4, np.random.default_rng(0), scale=0.5)
        assert bsofi(pc).shape == (3, 3, 4, 4)


class TestStability:
    def test_graded_blocks_no_blowup(self):
        """Blocks with widely spread singular values (what CLS produces at
        low temperature) — the orthogonal factorisation must stay accurate
        when a naive LU of the *product form* would not."""
        rng = np.random.default_rng(4)
        b, N = 4, 6
        B = np.empty((b, N, N))
        for i in range(b):
            U, _ = np.linalg.qr(rng.standard_normal((N, N)))
            V, _ = np.linalg.qr(rng.standard_normal((N, N)))
            s = np.logspace(3, -3, N)  # condition 1e6 per block
            B[i] = (U * s) @ V.T
        pc = BlockPCyclic(B)
        G = stitch(bsofi(pc))
        resid = np.abs(pc.to_dense() @ G - np.eye(b * N)).max()
        assert resid < 1e-8

    def test_near_singular_diagonal_survives(self):
        """The final diagonal X_b may be ill-conditioned; QR handles it."""
        rng = np.random.default_rng(5)
        pc = random_pcyclic(3, 5, rng, scale=0.99)
        G = stitch(bsofi(pc))
        resid = np.abs(pc.to_dense() @ G - np.eye(15)).max()
        assert resid < 1e-9


class TestFlops:
    def test_formula(self):
        assert bsofi_flops(10, 100) == 7.0 * 100 * 100**3

    def test_formula_rejects_bad_b(self):
        with pytest.raises(ValueError):
            bsofi_flops(0, 10)

    def test_measured_scales_quadratically_in_b(self):
        rng = np.random.default_rng(0)
        counts = {}
        for b in (4, 8):
            pc = random_pcyclic(b, 8, rng, scale=0.5)
            with FlopTracer() as tr:
                bsofi(pc)
            counts[b] = tr.total_flops
        ratio = counts[8] / counts[4]
        # 7 b^2 N^3 dominant term: doubling b should ~4x the flops.
        assert 2.5 < ratio < 5.5
