"""Hubbard substrate: kinetic propagator, HS fields, matrix assembly."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.pcyclic import BlockPCyclic
from repro.hubbard.hs_field import HSField
from repro.hubbard.kinetic import KineticPropagator
from repro.hubbard.lattice import RectangularLattice
from repro.hubbard.matrix import HubbardModel, build_hubbard_matrix, hs_coupling


class TestKineticPropagator:
    @pytest.fixture
    def kin(self):
        return KineticPropagator(RectangularLattice(3, 3).adjacency, t=1.0, dtau=0.125)

    def test_matches_scipy_expm(self, kin):
        expected = sla.expm(1.0 * 0.125 * RectangularLattice(3, 3).adjacency)
        np.testing.assert_allclose(kin.forward, expected, atol=1e-12)

    def test_backward_is_exact_inverse(self, kin):
        np.testing.assert_allclose(
            kin.forward @ kin.backward, np.eye(kin.N), atol=1e-12
        )

    def test_forward_symmetric(self, kin):
        np.testing.assert_allclose(kin.forward, kin.forward.T, atol=1e-13)

    def test_forward_positive_definite(self, kin):
        assert np.all(np.linalg.eigvalsh(kin.forward) > 0)

    def test_rejects_asymmetric(self):
        K = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            KineticPropagator(K, 1.0, 0.1)

    def test_rejects_bad_dtau(self):
        with pytest.raises(ValueError, match="dtau"):
            KineticPropagator(np.zeros((2, 2)), 1.0, 0.0)

    def test_cached(self, kin):
        assert kin.forward is kin.forward


class TestHSField:
    def test_random_is_pm_one(self, rng):
        f = HSField.random(6, 9, rng)
        assert set(np.unique(f.h)) <= {-1, 1}
        assert f.L == 6 and f.N == 9

    def test_ordered(self):
        f = HSField.ordered(3, 4, -1)
        assert np.all(f.h == -1)

    def test_ordered_invalid_value(self):
        with pytest.raises(ValueError):
            HSField.ordered(2, 2, 0)

    def test_flip(self):
        f = HSField.ordered(2, 2)
        f.flip(1, 0)
        assert f.h[1, 0] == -1 and f.h[0, 0] == 1

    def test_rejects_non_spin_values(self):
        with pytest.raises(ValueError, match="\\+1 or -1"):
            HSField(np.zeros((2, 2)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            HSField(np.ones(4))

    def test_buffer_roundtrip(self, rng):
        f = HSField.random(5, 7, rng)
        g = HSField.from_buffer(f.to_buffer(), 5, 7)
        assert f == g

    def test_buffer_wrong_size(self):
        with pytest.raises(ValueError, match="entries"):
            HSField.from_buffer(np.ones(5, dtype=np.int8), 2, 3)

    def test_copy_is_independent(self, rng):
        f = HSField.random(3, 3, rng)
        g = f.copy()
        g.flip(0, 0)
        assert f != g

    def test_equality(self, rng):
        f = HSField.random(3, 3, np.random.default_rng(1))
        g = HSField.random(3, 3, np.random.default_rng(1))
        assert f == g
        assert f != "not a field"  # NotImplemented path -> False


class TestHSCoupling:
    def test_defining_identity(self):
        """cosh(nu) = exp(dtau U / 2)."""
        nu = hs_coupling(4.0, 0.125)
        assert np.cosh(nu) == pytest.approx(np.exp(0.125 * 4.0 / 2))

    def test_zero_U(self):
        assert hs_coupling(0.0, 0.1) == 0.0

    def test_attractive_uses_magnitude(self):
        assert hs_coupling(-4.0, 0.125) == hs_coupling(4.0, 0.125)


class TestHubbardModel:
    def test_properties(self, hubbard_model):
        assert hubbard_model.N == 9
        assert hubbard_model.dtau == pytest.approx(0.25)
        assert hubbard_model.nu > 0

    def test_validation(self):
        lat = RectangularLattice(2, 2)
        with pytest.raises(ValueError):
            HubbardModel(lat, L=0)
        with pytest.raises(ValueError):
            HubbardModel(lat, L=4, beta=-1.0)

    def test_slice_matrix_structure(self, hubbard_model):
        """B_l = e^{t dtau K} e^{sigma nu V_l}: column scaling."""
        h = np.ones(9, dtype=np.int8)
        B = hubbard_model.slice_matrix(h, +1)
        expected = hubbard_model.kinetic.forward * np.exp(hubbard_model.nu)
        np.testing.assert_allclose(B, expected, atol=1e-12)

    def test_slice_matrix_inverse_exact(self, hubbard_model, rng):
        h = np.sign(rng.standard_normal(9)).astype(np.int8)
        B = hubbard_model.slice_matrix(h, +1)
        Binv = hubbard_model.slice_matrix_inv(h, +1)
        np.testing.assert_allclose(B @ Binv, np.eye(9), atol=1e-11)

    def test_sigma_validation(self, hubbard_model):
        with pytest.raises(ValueError, match="sigma"):
            hubbard_model.slice_matrix(np.ones(9), 0)
        with pytest.raises(ValueError, match="sigma"):
            hubbard_model.slice_matrix_inv(np.ones(9), 2)

    def test_slice_shape_validation(self, hubbard_model):
        with pytest.raises(ValueError, match="h_slice"):
            hubbard_model.slice_matrix(np.ones(4), +1)

    def test_build_matrix(self, hubbard_model, hubbard_field):
        pc = hubbard_model.build_matrix(hubbard_field, +1)
        assert isinstance(pc, BlockPCyclic)
        assert pc.L == 8 and pc.N == 9
        np.testing.assert_allclose(
            pc.block(3),
            hubbard_model.slice_matrix(hubbard_field.slice(2), +1),
        )

    def test_build_matrix_field_mismatch(self, hubbard_model, rng):
        bad = HSField.random(4, 9, rng)
        with pytest.raises(ValueError, match="does not match"):
            hubbard_model.build_matrix(bad)

    def test_spin_symmetry_under_field_flip(self, hubbard_model, hubbard_field):
        """B^down(h) == B^up(-h): the particle-hole-like HS symmetry."""
        flipped = HSField(-hubbard_field.h)
        down = hubbard_model.build_matrix(hubbard_field, -1)
        up_flipped = hubbard_model.build_matrix(flipped, +1)
        np.testing.assert_allclose(down.B, up_flipped.B, atol=1e-13)

    def test_mu_enters_as_scalar_factor(self, hubbard_field):
        lat = RectangularLattice(3, 3)
        m0 = HubbardModel(lat, L=8, U=4.0, beta=2.0, mu=0.0)
        m1 = HubbardModel(lat, L=8, U=4.0, beta=2.0, mu=0.3)
        B0 = m0.build_matrix(hubbard_field).block(1)
        B1 = m1.build_matrix(hubbard_field).block(1)
        np.testing.assert_allclose(B1, B0 * np.exp(0.25 * 0.3), atol=1e-12)


class TestConvenienceBuilder:
    def test_returns_consistent_triple(self):
        M, model, field = build_hubbard_matrix(3, 3, L=6, U=2.0, beta=1.0, rng=4)
        assert M.L == 6 and M.N == 9
        np.testing.assert_allclose(
            M.B, model.build_matrix(field, +1).B
        )

    def test_reuse_field_for_other_spin(self):
        M_up, model, field = build_hubbard_matrix(2, 2, L=4, rng=0)
        M_dn = model.build_matrix(field, -1)
        assert not np.allclose(M_up.B, M_dn.B)

    def test_deterministic_with_seed(self):
        a, _, _ = build_hubbard_matrix(2, 2, L=4, rng=9)
        b, _, _ = build_hubbard_matrix(2, 2, L=4, rng=9)
        np.testing.assert_array_equal(a.B, b.B)
