"""Sherman–Morrison/Woodbury delta updates (``repro.core.smw``).

Property-based coverage of the incremental serving core:

* :class:`FactorPairs` reproduces eager rank-1 accumulation exactly
  (entry reconstruction and the BLAS-3 flush);
* :func:`diag_flips` recovers exactly the flipped positions with the
  multiplicative Hubbard scale;
* :func:`transpose_pcyclic` realises ``P M^T P`` in normal form;
* ``PCyclicWoodbury.update_blocks`` after ``k`` random flips agrees
  with a *fresh* FSI solve of the flipped field to tight tolerance,
  across patterns, ranks and geometries (the tentpole property).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.core.pcyclic import BlockPCyclic, random_pcyclic
from repro.core.smw import (
    DeltaReport,
    FactorPairs,
    PCyclicWoodbury,
    RankOneFlip,
    diag_flips,
    transpose_pcyclic,
)
from repro.hubbard.hs_field import HSField
from repro.hubbard.lattice import RectangularLattice
from repro.hubbard.matrix import HubbardModel


def hubbard_setup(L: int = 8, nx: int = 2, ny: int = 3, seed: int = 0,
                  U: float = 3.0, beta: float = 2.0):
    model = HubbardModel(RectangularLattice(nx, ny), L=L, U=U, beta=beta)
    field = HSField.random(L, model.N, np.random.default_rng(seed))
    return model, field, model.build_matrix(field, +1)


def random_distinct_flips(rng, L: int, N: int, k: int) -> list[tuple[int, int]]:
    positions: set[tuple[int, int]] = set()
    while len(positions) < k:
        positions.add((int(rng.integers(L)), int(rng.integers(N))))
    return sorted(positions)


# ----------------------------------------------------------------------
# FactorPairs
# ----------------------------------------------------------------------

class TestFactorPairs:
    def test_matches_eager_rank1_updates(self):
        rng = np.random.default_rng(0)
        n, k = 7, 5
        A_eager = rng.standard_normal((n, n))
        pairs = FactorPairs(n, capacity=k)
        A_delayed = A_eager.copy()
        for _ in range(k):
            u = rng.standard_normal(n)
            w = rng.standard_normal(n)
            A_eager += np.outer(u, w)
            pairs.append(u, w)
            # reconstruction of current entries mid-accumulation
            i = int(rng.integers(n))
            assert pairs.diag_correction(i) == pytest.approx(
                A_eager[i, i] - A_delayed[i, i], rel=1e-12, abs=1e-12
            )
            np.testing.assert_allclose(
                A_delayed[:, i] + pairs.col_correction(i), A_eager[:, i],
                atol=1e-12,
            )
            np.testing.assert_allclose(
                A_delayed[i, :] + pairs.row_correction(i), A_eager[i, :],
                atol=1e-12,
            )
        assert pairs.is_full
        pairs.flush_into(A_delayed)
        np.testing.assert_allclose(A_delayed, A_eager, atol=1e-12)
        assert pairs.pending == 0

    def test_empty_corrections_are_zero(self):
        pairs = FactorPairs(4, capacity=2)
        assert pairs.diag_correction(1) == 0.0
        assert pairs.col_correction(1) == 0.0
        assert pairs.row_correction(1) == 0.0
        A = np.ones((4, 4))
        pairs.flush_into(A)  # no-op
        np.testing.assert_array_equal(A, np.ones((4, 4)))

    def test_append_past_capacity_raises(self):
        pairs = FactorPairs(3, capacity=1)
        pairs.append(np.ones(3), np.ones(3))
        with pytest.raises(ValueError, match="full"):
            pairs.append(np.ones(3), np.ones(3))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FactorPairs(3, capacity=0)


# ----------------------------------------------------------------------
# diag_flips / transpose_pcyclic
# ----------------------------------------------------------------------

class TestFlipDiff:
    def test_recovers_flipped_positions_and_scales(self):
        model, field, _ = hubbard_setup(seed=5)
        rng = np.random.default_rng(7)
        flipped = field.copy()
        positions = random_distinct_flips(rng, field.L, field.N, 4)
        for sl, site in positions:
            flipped.flip(sl, site)
        coupling = model.spin_factor(+1) * model.nu
        flips = diag_flips(field.h, flipped.h, coupling)
        assert sorted((f.slice_index - 1, f.site) for f in flips) == positions
        for f in flips:
            dh = float(
                flipped.h[f.slice_index - 1, f.site]
                - field.h[f.slice_index - 1, f.site]
            )
            assert f.scale == pytest.approx(np.exp(coupling * dh))

    def test_identical_fields_no_flips(self):
        _, field, _ = hubbard_setup()
        assert diag_flips(field.h, field.h, 0.5) == []

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shapes"):
            diag_flips(np.ones((2, 3)), np.ones((3, 2)), 0.5)

    def test_transpose_pcyclic_realises_reversed_transpose(self):
        pc = random_pcyclic(6, 4, np.random.default_rng(2), scale=0.5)
        Mt = transpose_pcyclic(pc).to_dense()
        n = pc.L * pc.N
        P = np.zeros((n, n))
        for i in range(pc.L):
            j = pc.L - 1 - i
            P[i * pc.N:(i + 1) * pc.N, j * pc.N:(j + 1) * pc.N] = np.eye(pc.N)
        np.testing.assert_allclose(Mt, P @ pc.to_dense().T @ P, atol=1e-13)

    def test_transpose_solve_solves_mt(self):
        pc = random_pcyclic(5, 3, np.random.default_rng(4), scale=0.4)
        wb = PCyclicWoodbury(pc)
        rng = np.random.default_rng(9)
        rhs = rng.standard_normal((pc.L, pc.N, 2))
        y = wb.solve_transpose(rhs)
        lhs = pc.to_dense().T @ y.reshape(pc.L * pc.N, -1)
        np.testing.assert_allclose(
            lhs, rhs.reshape(pc.L * pc.N, -1), atol=1e-10
        )


# ----------------------------------------------------------------------
# the tentpole property: k flips via Woodbury == fresh FSI solve
# ----------------------------------------------------------------------

class TestWoodburyAgainstFreshSolve:
    @pytest.mark.parametrize("pattern", [
        Pattern.DIAGONAL, Pattern.FULL_DIAGONAL, Pattern.COLUMNS,
        Pattern.SUBDIAGONAL,
    ])
    @pytest.mark.parametrize("k", [1, 3])
    def test_flips_match_fresh_fsi(self, pattern, k):
        model, field, pc = hubbard_setup(L=8, seed=11)
        base = fsi(pc, 4, pattern=pattern, q=1)
        blocks = dict(base.selected.items())

        rng = np.random.default_rng(100 * k + 17)
        flipped = field.copy()
        for sl, site in random_distinct_flips(rng, field.L, field.N, k):
            flipped.flip(sl, site)
        coupling = model.spin_factor(+1) * model.nu
        flips = diag_flips(field.h, flipped.h, coupling)
        assert len(flips) == k

        updated, report = PCyclicWoodbury(pc).update_blocks(blocks, flips)
        assert report.rank == k
        assert report.healthy(residual_tol=1e-8, cond_limit=1e10)

        fresh = fsi(model.build_matrix(flipped, +1), 4, pattern=pattern, q=1)
        assert sorted(updated) == sorted(dict(fresh.selected.items()))
        for kl, blk in updated.items():
            np.testing.assert_allclose(
                blk, fresh.selected[kl], atol=1e-10,
                err_msg=f"block {kl} diverged after {k} flips",
            )

    def test_degenerate_single_slice(self):
        """L=1: the corner block is the whole matrix (M = I + B_1)."""
        model, field, pc = hubbard_setup(L=1, seed=3)
        base = fsi(pc, 1, pattern=Pattern.FULL_DIAGONAL, q=0)
        flipped = field.copy()
        flipped.flip(0, 2)
        flips = diag_flips(
            field.h, flipped.h, model.spin_factor(+1) * model.nu
        )
        updated, report = PCyclicWoodbury(pc).update_blocks(
            dict(base.selected.items()), flips
        )
        fresh = fsi(
            model.build_matrix(flipped, +1), 1,
            pattern=Pattern.FULL_DIAGONAL, q=0,
        )
        np.testing.assert_allclose(
            updated[(1, 1)], fresh.selected[(1, 1)], atol=1e-10
        )
        assert report.rank == 1

    def test_spin_down_sector(self):
        """The sigma=-1 sector flips the sign of the HS coupling."""
        model, field, _ = hubbard_setup(L=6, seed=21)
        pc = model.build_matrix(field, -1)
        base = fsi(pc, 2, pattern=Pattern.DIAGONAL, q=0)
        flipped = field.copy()
        flipped.flip(4, 1)
        coupling = model.spin_factor(-1) * model.nu
        flips = diag_flips(field.h, flipped.h, coupling)
        updated, _ = PCyclicWoodbury(pc).update_blocks(
            dict(base.selected.items()), flips
        )
        fresh = fsi(
            model.build_matrix(flipped, -1), 2,
            pattern=Pattern.DIAGONAL, q=0,
        )
        for kl, blk in updated.items():
            np.testing.assert_allclose(blk, fresh.selected[kl], atol=1e-10)

    def test_empty_flip_list_returns_copies(self):
        _, _, pc = hubbard_setup(L=4)
        base = fsi(pc, 2, pattern=Pattern.DIAGONAL, q=0)
        blocks = dict(base.selected.items())
        updated, report = PCyclicWoodbury(pc).update_blocks(blocks, [])
        assert report.rank == 0
        for kl, blk in updated.items():
            assert blk is not blocks[kl]
            np.testing.assert_array_equal(blk, blocks[kl])

    def test_bad_site_raises(self):
        _, _, pc = hubbard_setup(L=4)
        wb = PCyclicWoodbury(pc)
        with pytest.raises(ValueError, match="site"):
            wb.update_blocks(
                {}, [RankOneFlip(slice_index=1, site=pc.N + 5, scale=2.0)]
            )

    def test_report_health_thresholds(self):
        healthy = DeltaReport(rank=1, solve_residual=1e-14,
                              capacitance_cond=10.0)
        assert healthy.healthy(1e-8, 1e10)
        assert not healthy.healthy(1e-16, 1e10)
        assert not DeltaReport(1, np.inf, 1.0).healthy(1e-8, 1e10)
        assert not DeltaReport(1, 1e-14, np.inf).healthy(1e-8, 1e10)

    def test_flops_are_recorded(self):
        from repro.perf.tracer import FlopTracer

        model, field, pc = hubbard_setup(L=4, seed=2)
        base = fsi(pc, 2, pattern=Pattern.FULL_DIAGONAL, q=0)
        flipped = field.copy()
        flipped.flip(1, 0)
        flips = diag_flips(
            field.h, flipped.h, model.spin_factor(+1) * model.nu
        )
        wb = PCyclicWoodbury(pc)
        with FlopTracer() as tracer:
            wb.update_blocks(dict(base.selected.items()), flips)
        assert tracer.total_flops > 0


# ----------------------------------------------------------------------
# the near-singular guard
# ----------------------------------------------------------------------

def test_near_singular_capacitance_reported():
    """A flip batch that (nearly) annihilates ``M'`` must surface as a
    huge capacitance condition number, not as silently wrong blocks."""
    L, N = 2, 3
    rng = np.random.default_rng(8)
    pc = BlockPCyclic(np.eye(N)[None] + 0.2 * rng.standard_normal((L, N, N)))
    base = fsi(pc, 1, pattern=Pattern.FULL_DIAGONAL, q=0)
    wb = PCyclicWoodbury(pc)
    # Scale chosen so C = 1 + v^T M^{-1} u ~ 0: solve for the scale that
    # zeroes the capacitance for this (slice, site).
    X = wb.solve(wb._factors([RankOneFlip(2, 0, 2.0)])[0])
    from repro.core.pcyclic import torus_index

    g = float(X[torus_index(1, L) - 1, 0, 0])  # gather as update_blocks does
    # C(delta) = 1 + delta * g / (2 - 1); pick scale with delta = -1/g'
    # where g' is the gather for unit delta.
    gather = g / (2.0 - 1.0)
    bad_scale = 1.0 - 1.0 / gather
    _, report = wb.update_blocks(
        dict(base.selected.items()), [RankOneFlip(2, 0, bad_scale)]
    )
    assert report.capacitance_cond > 1e8 or not np.isfinite(
        report.capacitance_cond
    )
    assert not report.healthy(residual_tol=1e-6, cond_limit=1e8)
