"""Cross-module integration tests, including the paper-scale validation.

The Sec. V-A validation runs at the paper's exact geometry
(N, L) = (100, 64) with the explicit-formula oracle (cheap per block)
instead of the dense 6400^2 inverse — ``benchmarks/exp_v1_validation.py``
runs the full dense-oracle version.
"""

import numpy as np
import pytest

from repro import (
    DQMC,
    DQMCConfig,
    HubbardModel,
    HybridConfig,
    Pattern,
    RectangularLattice,
    build_hubbard_matrix,
    fsi,
    run_fsi_fleet,
)
from repro.core.greens_explicit import greens_block
from repro.core.stability import recommend_c


class TestPaperScaleValidation:
    """Sec. V-A at (N, L) = (100, 64), (t, beta, U) = (1, 1, 2), c = 8."""

    @pytest.fixture(scope="class")
    def paper_problem(self):
        M, model, field = build_hubbard_matrix(
            10, 10, L=64, t=1.0, U=2.0, beta=1.0, rng=2016
        )
        return M

    def test_selected_columns_below_1e10(self, paper_problem):
        M = paper_problem
        c = recommend_c(64)
        assert c == 8
        res = fsi(M, c, pattern=Pattern.COLUMNS, q=3, num_threads=2)
        # Spot-check a spread of blocks against the explicit formula
        # (exact oracle, cheap per block at N=100).
        rng = np.random.default_rng(0)
        worst = 0.0
        keys = list(res.selected)
        for idx in rng.choice(len(keys), size=24, replace=False):
            k, l = keys[idx]
            ref = greens_block(M, k, l)
            err = np.linalg.norm(res.selected[(k, l)] - ref) / np.linalg.norm(ref)
            worst = max(worst, float(err))
        assert worst < 1e-10  # the paper's validation threshold

    def test_seed_grid_matches_oracle(self, paper_problem):
        M = paper_problem
        res = fsi(M, 8, pattern=Pattern.DIAGONAL, q=5, num_threads=2)
        for k0 in (1, 4, 8):
            k = 8 * k0 - 5
            ref = greens_block(M, k, k)
            err = np.abs(res.seeds[k0 - 1, k0 - 1] - ref).max()
            assert err < 1e-12


class TestEngineHybridConsistency:
    def test_engine_greens_agree_with_standalone_fsi(self):
        model = HubbardModel(RectangularLattice(3, 3), L=8, U=4.0, beta=2.0)
        sim = DQMC(
            model,
            DQMCConfig(warmup_sweeps=1, measurement_sweeps=0, c=4, seed=1,
                       num_threads=1),
        )
        sim.sweep()
        bundles = sim.compute_greens(q=2)
        pc = model.build_matrix(sim.field, +1)
        res = fsi(pc, 4, pattern=Pattern.FULL_DIAGONAL, q=2, num_threads=1)
        for l in (1, 4, 8):
            np.testing.assert_allclose(
                bundles[+1].full_diagonal[(l, l)],
                res.selected[(l, l)],
                atol=1e-12,
            )

    def test_fleet_runs_all_patterns(self):
        model = HubbardModel(RectangularLattice(2, 2), L=8, U=2.0, beta=1.0)
        for pattern in (Pattern.DIAGONAL, Pattern.ROWS, Pattern.FULL_DIAGONAL):
            rep = run_fsi_fleet(
                model,
                HybridConfig(
                    n_matrices=2,
                    n_ranks=2,
                    threads_per_rank=1,
                    c=4,
                    pattern=pattern,
                    seed=1,
                ),
            )
            assert rep.global_measurements["count"] == 2.0


class TestExperimentScriptsImportAndRun:
    """Every benchmarks/exp_* module runs at reduced scale."""

    @pytest.fixture(autouse=True)
    def _benchdir(self, monkeypatch):
        from pathlib import Path

        bench = Path(__file__).resolve().parent.parent / "benchmarks"
        monkeypatch.syspath_prepend(str(bench))

    def test_exp_t1(self):
        import exp_t1_patterns as exp

        table = exp.run(L=20, c=4, q=1)
        assert len(table.rows) == 4
        assert "90%" in exp.memory_example()

    def test_exp_t2(self):
        import exp_t2_complexity as exp

        assert len(exp.formula_table().rows) == 4
        measured = exp.measured_table(L=8, N=6, c=2, seed=0)
        assert len(measured.rows) == 3

    def test_exp_v1_scaled(self):
        import exp_v1_validation as exp

        table = exp.run(nx=4, ny=4, L=16, seed=1)
        values = {str(r[0]): r[1] for r in table.rows}
        assert values["validation PASS"] is True

    def test_exp_f8(self):
        import exp_f8_single_node as exp

        assert len(exp.fig8_top().rows) == 5
        assert "openmp" in exp.fig8_bottom().lines
        assert len(exp.real_stage_split().rows) == 4

    def test_exp_f9(self):
        import exp_f9_hybrid as exp

        table = exp.modeled_sweep()
        assert len(table.rows) == 4
        # N=576 must OOM at pure MPI, run at 200x12.
        row576 = [r for r in table.rows if r[0] == 576][0]
        assert row576[-1] == "OOM"
        assert isinstance(row576[2], float)

    def test_exp_f10(self):
        import exp_f10_profile as exp

        table = exp.modeled_profile()
        assert len(table.rows) == 3

    def test_exp_f11(self):
        import exp_f11_dqmc as exp

        table = exp.modeled_runtime(N=128, L=20, c=4, w=2, m=4)
        assert len(table.rows) == 5

    def test_exp_a1(self):
        import exp_a1_cluster_size as exp

        table = exp.run(beta=1.0, L=8, nx=2, ny=2)
        assert len(table.rows) >= 2

    def test_exp_a2(self):
        import exp_a2_bsofi_stability as exp

        table = exp.run(L=8, c=4, nx=2, ny=2)
        assert len(table.rows) == 5


class TestValidationModule:
    def test_dense_oracle_passes_on_hubbard(self, ):
        from repro import Pattern, build_hubbard_matrix, fsi
        from repro.core.validate import validate_selected

        M, _, _ = build_hubbard_matrix(3, 3, L=8, U=2.0, beta=1.0, rng=0)
        res = fsi(M, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        report = validate_selected(M, res.selected, oracle="dense")
        assert report.passed
        assert report.blocks_checked == len(res.selected)
        assert report.max_relative_error < 1e-12

    def test_explicit_oracle_with_sampling(self):
        from repro import Pattern, build_hubbard_matrix, fsi
        from repro.core.validate import validate_selected

        M, _, _ = build_hubbard_matrix(3, 3, L=8, U=2.0, beta=1.0, rng=1)
        res = fsi(M, 4, pattern=Pattern.ROWS, q=0, num_threads=1)
        report = validate_selected(
            M, res.selected, oracle="explicit", sample=5, rng=2
        )
        assert report.passed
        assert report.blocks_checked == 5

    def test_detects_corruption(self):
        from repro import Pattern, build_hubbard_matrix, fsi
        from repro.core.validate import validate_selected

        M, _, _ = build_hubbard_matrix(2, 2, L=8, U=2.0, beta=1.0, rng=2)
        res = fsi(M, 4, pattern=Pattern.DIAGONAL, q=1, num_threads=1)
        key = next(iter(res.selected))
        res.selected[key][0, 0] += 1.0  # corrupt one entry
        report = validate_selected(M, res.selected, oracle="dense")
        assert not report.passed

    def test_bad_arguments(self):
        from repro import Pattern, build_hubbard_matrix, fsi
        from repro.core.validate import validate_selected

        M, _, _ = build_hubbard_matrix(2, 2, L=4, U=2.0, beta=1.0, rng=3)
        res = fsi(M, 2, pattern=Pattern.DIAGONAL, q=0, num_threads=1)
        import pytest as _pytest

        with _pytest.raises(ValueError, match="oracle"):
            validate_selected(M, res.selected, oracle="magic")
        with _pytest.raises(ValueError, match="sample"):
            validate_selected(M, res.selected, sample=0)
