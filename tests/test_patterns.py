"""Selection patterns S1-S4 and the SelectedInversion container."""

import numpy as np
import pytest

from repro.core.patterns import (
    Pattern,
    SelectedInversion,
    Selection,
    seed_indices,
)


class TestSeedIndices:
    def test_basic(self):
        assert seed_indices(12, 4, 0) == [4, 8, 12]
        assert seed_indices(12, 4, 1) == [3, 7, 11]
        assert seed_indices(12, 4, 3) == [1, 5, 9]

    def test_paper_example(self):
        # (L, c) = (100, 10): indices 10-q, 20-q, ..., 100-q.
        idx = seed_indices(100, 10, 3)
        assert len(idx) == 10
        assert idx[0] == 7 and idx[-1] == 97

    def test_all_indices_in_range(self):
        for q in range(8):
            idx = seed_indices(64, 8, q)
            assert all(1 <= k <= 64 for k in idx)

    def test_spacing_is_c(self):
        idx = seed_indices(20, 5, 2)
        assert all(b - a == 5 for a, b in zip(idx, idx[1:]))

    def test_rejects_non_divisor(self):
        with pytest.raises(ValueError, match="divisor"):
            seed_indices(10, 3, 0)

    def test_rejects_q_out_of_range(self):
        with pytest.raises(ValueError, match="q="):
            seed_indices(12, 4, 4)


class TestSelection:
    def test_b_property(self):
        sel = Selection(Pattern.COLUMNS, L=100, c=10, q=0)
        assert sel.b == 10

    def test_counts_match_paper_table(self):
        """Sec. II-B: S1 -> b, S2 -> b or b-1, S3/S4 -> bL."""
        L, c = 100, 10
        b = 10
        assert Selection(Pattern.DIAGONAL, L, c, 1).count() == b
        assert Selection(Pattern.SUBDIAGONAL, L, c, 1).count() == b
        assert Selection(Pattern.SUBDIAGONAL, L, c, 0).count() == b - 1
        assert Selection(Pattern.COLUMNS, L, c, 1).count() == b * L
        assert Selection(Pattern.ROWS, L, c, 1).count() == b * L

    def test_reduction_factors_match_paper_table(self):
        """Sec. II-B: cL for S1, c for S3/S4."""
        L, c = 100, 10
        assert Selection(Pattern.DIAGONAL, L, c, 1).reduction_factor() == c * L
        assert Selection(Pattern.COLUMNS, L, c, 1).reduction_factor() == c
        assert Selection(Pattern.ROWS, L, c, 1).reduction_factor() == c

    def test_memory_saving_example(self):
        """Paper: (N, L) = (1000, 100), c = 10 -> 90% memory saved."""
        sel = Selection(Pattern.COLUMNS, L=100, c=10, q=0)
        saved = 1.0 - 1.0 / sel.reduction_factor()
        assert saved == pytest.approx(0.9)

    def test_block_indices_columns(self):
        sel = Selection(Pattern.COLUMNS, L=8, c=4, q=1)
        idx = sel.block_indices()
        assert len(idx) == 16
        assert {l for _, l in idx} == {3, 7}
        assert {k for k, _ in idx} == set(range(1, 9))

    def test_block_indices_full_diagonal(self):
        sel = Selection(Pattern.FULL_DIAGONAL, L=8, c=4, q=0)
        assert sel.block_indices() == [(k, k) for k in range(1, 9)]

    def test_subdiagonal_indices_skip_L(self):
        sel = Selection(Pattern.SUBDIAGONAL, L=8, c=4, q=0)
        assert sel.block_indices() == [(4, 5)]  # k=8 skipped

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            Selection(Pattern.COLUMNS, L=10, c=3, q=0)


class TestSelectedInversion:
    @pytest.fixture
    def sel_inv(self):
        sel = Selection(Pattern.DIAGONAL, L=8, c=4, q=1)
        blocks = {(k, k): np.full((2, 2), float(k)) for k in (3, 7)}
        return SelectedInversion(sel, blocks, N=2)

    def test_getitem_torus(self, sel_inv):
        np.testing.assert_array_equal(sel_inv[(3, 3)], np.full((2, 2), 3.0))
        np.testing.assert_array_equal(sel_inv[(11, 11)], sel_inv[(3, 3)])

    def test_contains(self, sel_inv):
        assert (7, 7) in sel_inv
        assert (4, 4) not in sel_inv

    def test_len_iter(self, sel_inv):
        assert len(sel_inv) == 2
        assert set(sel_inv) == {(3, 3), (7, 7)}

    def test_diagonal_blocks(self, sel_inv):
        assert set(sel_inv.diagonal_blocks()) == {3, 7}

    def test_memory_bytes(self, sel_inv):
        assert sel_inv.memory_bytes() == 2 * 4 * 8

    def test_rejects_missing_blocks(self):
        sel = Selection(Pattern.DIAGONAL, L=8, c=4, q=1)
        with pytest.raises(ValueError, match="missing"):
            SelectedInversion(sel, {(3, 3): np.eye(2)}, N=2)

    def test_rejects_extra_blocks(self):
        sel = Selection(Pattern.DIAGONAL, L=8, c=4, q=1)
        blocks = {
            (3, 3): np.eye(2),
            (7, 7): np.eye(2),
            (1, 1): np.eye(2),
        }
        with pytest.raises(ValueError, match="unexpected"):
            SelectedInversion(sel, blocks, N=2)

    def test_max_relative_error_zero_for_exact(self, sel_inv):
        G = np.zeros((16, 16))
        for k in (3, 7):
            G[(k - 1) * 2 : k * 2, (k - 1) * 2 : k * 2] = float(k)
        assert sel_inv.max_relative_error(G) == 0.0

    def test_row_column_accessors_require_pattern(self):
        sel = Selection(Pattern.ROWS, L=4, c=2, q=0)
        blocks = {
            (k, l): np.eye(2) for k in (2, 4) for l in range(1, 5)
        }
        si = SelectedInversion(sel, blocks, N=2)
        assert si.row(2).shape == (4, 2, 2)
        with pytest.raises(KeyError):
            si.column(1)  # rows pattern has no full column 1


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.core.fsi import fsi
        from repro.core.pcyclic import random_pcyclic

        pc = random_pcyclic(8, 3, np.random.default_rng(0), scale=0.6)
        res = fsi(pc, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        path = tmp_path / "sel.npz"
        res.selected.save(path)
        loaded = SelectedInversion.load(path)
        assert loaded.selection == res.selection
        assert len(loaded) == len(res.selected)
        for kl in res.selected:
            np.testing.assert_array_equal(loaded[kl], res.selected[kl])

    def test_roundtrip_all_patterns(self, tmp_path):
        from repro.core.fsi import fsi
        from repro.core.pcyclic import random_pcyclic

        pc = random_pcyclic(8, 3, np.random.default_rng(1), scale=0.6)
        for pattern in Pattern:
            res = fsi(pc, 4, pattern=pattern, q=0, num_threads=1)
            path = tmp_path / f"{pattern.value}.npz"
            res.selected.save(path)
            loaded = SelectedInversion.load(path)
            assert loaded.selection.pattern is pattern
            assert loaded.max_relative_error(
                np.linalg.inv(pc.to_dense())
            ) < 1e-9
