"""3-D cubic lattice substrate and DQMC checkpoint/restart."""

import numpy as np
import pytest

from repro.dqmc import DQMC, DQMCConfig
from repro.dqmc.checkpoint import load_checkpoint, save_checkpoint
from repro.hubbard import HubbardModel
from repro.hubbard.cubic import CubicLattice


class TestCubicLattice:
    @pytest.fixture(scope="class")
    def lat(self):
        return CubicLattice(3, 3, 3)

    def test_indexing_roundtrip(self, lat):
        for i in range(lat.nsites):
            assert lat.site_index(*lat.coordinates(i)) == i

    def test_periodic_indexing(self, lat):
        assert lat.site_index(3, 0, 0) == lat.site_index(0, 0, 0)
        assert lat.site_index(0, -1, 0) == lat.site_index(0, 2, 0)

    def test_neighbors_bulk_count(self):
        lat = CubicLattice(4, 4, 4)
        assert all(len(lat.neighbors(i)) == 6 for i in range(lat.nsites))

    def test_degenerate_extent(self):
        lat = CubicLattice(2, 3, 3)
        # x-direction neighbors coincide -> 5 distinct.
        assert len(lat.neighbors(0)) == 5

    def test_reduces_to_2d(self):
        """nz = 1: adjacency must match the 2-D rectangular lattice."""
        from repro.hubbard.lattice import RectangularLattice

        lat3 = CubicLattice(4, 3, 1)
        lat2 = RectangularLattice(4, 3)
        np.testing.assert_array_equal(lat3.adjacency, lat2.adjacency)

    def test_adjacency_symmetric(self, lat):
        K = lat.adjacency
        np.testing.assert_array_equal(K, K.T)
        np.testing.assert_array_equal(np.diag(K), 0.0)

    def test_distance_classes_partition(self, lat):
        total = sum(len(lat.pairs_in_class(d)) for d in range(lat.d_max))
        assert total == lat.nsites**2

    def test_nearest_class_matches_adjacency(self, lat):
        D, radii = lat.distance_classes
        assert radii[1] == 1.0
        np.testing.assert_array_equal((D == 1).astype(float), lat.adjacency)

    def test_validation(self):
        with pytest.raises(ValueError):
            CubicLattice(0, 2, 2)


class TestDQMCOn3DLattice:
    """The whole engine runs unchanged on the 3-D substrate."""

    def test_full_simulation(self):
        lat = CubicLattice(2, 2, 2)
        model = HubbardModel(lat, L=8, t=1.0, U=4.0, beta=2.0)
        sim = DQMC(
            model,
            DQMCConfig(warmup_sweeps=2, measurement_sweeps=4, c=4,
                       bin_size=2, seed=3, num_threads=1),
        )
        res = sim.run()
        density, _ = res.observable("density")
        docc, _ = res.observable("double_occupancy")
        # 2x2x2 periodic cube is bipartite: density exactly 1.
        assert float(density) == pytest.approx(1.0, abs=1e-9)
        assert float(docc) < 0.25
        assert res.spxx_mean.shape == (8, lat.d_max)

    def test_fsi_correctness_3d(self):
        from repro.core import Pattern, fsi
        from repro.hubbard import HSField

        lat = CubicLattice(2, 2, 2)
        model = HubbardModel(lat, L=8, U=4.0, beta=2.0)
        field = HSField.random(8, 8, np.random.default_rng(1))
        pc = model.build_matrix(field, +1)
        G = np.linalg.inv(pc.to_dense())
        res = fsi(pc, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        assert res.selected.max_relative_error(G) < 1e-11


class TestCheckpoint:
    def make_sim(self, seed=9):
        model = HubbardModel(
            __import__("repro.hubbard", fromlist=["RectangularLattice"])
            .RectangularLattice(3, 3),
            L=8,
            U=4.0,
            beta=2.0,
        )
        return DQMC(
            model,
            DQMCConfig(warmup_sweeps=0, measurement_sweeps=0, c=4,
                       nwrap=4, seed=seed, num_threads=1),
        )

    def test_resume_reproduces_trajectory(self, tmp_path):
        """2 sweeps + checkpoint + 2 sweeps == 4 uninterrupted sweeps."""
        path = tmp_path / "ckpt.npz"
        a = self.make_sim()
        for _ in range(2):
            a.sweep()
        save_checkpoint(a, path)
        for _ in range(2):
            a.sweep()

        b = self.make_sim()
        load_checkpoint(b, path)
        for _ in range(2):
            b.sweep()
        np.testing.assert_array_equal(a.field.h, b.field.h)
        assert a.stats.proposed == b.stats.proposed
        assert a.stats.accepted == b.stats.accepted

    def test_state_fields_restored(self, tmp_path):
        path = tmp_path / "c.npz"
        a = self.make_sim()
        a.sweep()
        save_checkpoint(a, path)
        b = self.make_sim(seed=1234)  # different seed; state overwritten
        load_checkpoint(b, path)
        np.testing.assert_array_equal(a.field.h, b.field.h)
        assert b.config_sign == a.config_sign
        assert b.max_wrap_drift == a.max_wrap_drift
        # RNG streams now aligned:
        assert a.rng.random() == b.rng.random()

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        a = self.make_sim()
        save_checkpoint(a, path)
        data = dict(np.load(path))
        data["version"] = np.array(999)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(self.make_sim(), path)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(self.make_sim(), path)
        model = HubbardModel(
            __import__("repro.hubbard", fromlist=["RectangularLattice"])
            .RectangularLattice(2, 2),
            L=8,
            U=4.0,
            beta=2.0,
        )
        other = DQMC(model, DQMCConfig(c=4, seed=0))
        with pytest.raises(ValueError, match="does not match"):
            load_checkpoint(other, path)
