"""Frequency-domain Green's functions: grids, resolvent sweeps, A(omega).

Acceptance scenarios of the spectral subsystem:

* the factor-once resolvent sweep matches the dense oracle
  ``inv(z I - M)`` to <= 1e-10 (globally normalised) across a 33-point
  grid, for several patterns, two broadenings, and both real and
  complex base chains;
* physics identities on a Hermitian operator: ``A(omega)`` Hermitian
  and PSD, per-orbital sum rule ``integral A_ii d omega ~ 1``, DOS
  integral ~ 1;
* momentum projection through the shared lattice Fourier transform
  (batched == per-slice, Parseval, real non-negative ``A(q, omega)``);
* the guard battery + fallback ladder serving a pathologically
  near-singular shift on a finer rung;
* the service workload: v3 fingerprints, chunked fan-out, stitched
  results matching a direct sweep, chunk-level cache hits, and one
  stitched trace per request.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.core.pcyclic import BlockPCyclic, random_pcyclic
from repro.dqmc.fourier import momentum_transform, structure_factor_grid
from repro.hubbard.hs_field import HSField
from repro.hubbard.lattice import RectangularLattice
from repro.resilience.guards import GuardConfig
from repro.service import (
    GreensJob,
    GreensService,
    ModelSpec,
    ServiceConfig,
)
from repro.spectral import (
    OmegaGrid,
    ResolventFactor,
    SpectralResult,
    SpectralSpec,
    density_of_states,
    momentum_spectral_function,
    shift_scale,
    shifted_pcyclic,
    spectral_function,
    spectral_sweep_flops,
    sum_rule,
)


def random_complex_pc(L, N, seed, scale=0.5):
    rng = np.random.default_rng(seed)
    B = (rng.standard_normal((L, N, N)) + 1j * rng.standard_normal((L, N, N)))
    return BlockPCyclic(B * (scale / np.sqrt(N)))


def dense_resolvent(pc: BlockPCyclic, z: complex) -> np.ndarray:
    dense = pc.to_dense()
    return np.linalg.inv(z * np.eye(dense.shape[0]) - dense)


def oracle_error(pc: BlockPCyclic, selected, z: complex) -> float:
    """Worst block error, normalised by the resolvent's global scale.

    Far-off-diagonal blocks of G(z) can be orders of magnitude below
    the dominant ones; absolute error relative to ``max |G|`` is the
    meaningful accuracy measure for a selected inversion.
    """
    ref = dense_resolvent(pc, z)
    N = pc.N
    scale = float(np.abs(ref).max())
    worst = 0.0
    for (k, l), blk in selected.items():
        refb = ref[(k - 1) * N:k * N, (l - 1) * N:l * N]
        worst = max(worst, float(np.abs(blk - refb).max()) / scale)
    return worst


# ----------------------------------------------------------------------
# grids + wire specs
# ----------------------------------------------------------------------

class TestOmegaGrid:
    def test_linear(self):
        g = OmegaGrid.linear(-2.0, 2.0, 5, 0.1)
        np.testing.assert_allclose(g.omegas, [-2, -1, 0, 1, 2])
        np.testing.assert_allclose(g.etas, 0.1)
        assert g.kind == "linear" and g.n == 5
        np.testing.assert_allclose(g.z, g.omegas + 0.1j)

    def test_logarithmic(self):
        g = OmegaGrid.logarithmic(0.01, 1.0, 3, 0.05)
        np.testing.assert_allclose(g.omegas, [0.01, 0.1, 1.0])
        assert g.kind == "log"

    def test_eta_schedule(self):
        g = OmegaGrid.linear(-1.0, 1.0, 3, [0.1, 0.2, 0.3])
        np.testing.assert_allclose(g.etas, [0.1, 0.2, 0.3])

    def test_single_point(self):
        assert OmegaGrid.linear(0.5, 0.5, 1, 0.1).n == 1

    @pytest.mark.parametrize("bad", [
        lambda: OmegaGrid.linear(2.0, -2.0, 5, 0.1),
        lambda: OmegaGrid.linear(-1.0, 1.0, 0, 0.1),
        lambda: OmegaGrid.linear(-np.inf, 1.0, 5, 0.1),
        lambda: OmegaGrid.linear(-1.0, 1.0, 5, 0.0),
        lambda: OmegaGrid.linear(-1.0, 1.0, 5, -0.1),
        lambda: OmegaGrid.linear(-1.0, 1.0, 5, np.nan),
        lambda: OmegaGrid.logarithmic(-1.0, 1.0, 5, 0.1),
        lambda: OmegaGrid.logarithmic(0.0, 1.0, 5, 0.1),
        lambda: OmegaGrid.linear(-1.0, 1.0, 3, [0.1, 0.2]),
        lambda: OmegaGrid(np.array([[1.0]]), np.array([[0.1]])),
        lambda: OmegaGrid(np.array([1.0]), np.array([0.1]), kind="spline"),
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_chunks_cover_in_order(self):
        g = OmegaGrid.linear(-3.0, 3.0, 10, [0.1 * (j + 1) for j in range(10)])
        chunks = g.chunks(4)
        assert [c.n for c in chunks] == [4, 4, 2]
        np.testing.assert_array_equal(
            np.concatenate([c.omegas for c in chunks]), g.omegas
        )
        np.testing.assert_array_equal(
            np.concatenate([c.etas for c in chunks]), g.etas
        )
        with pytest.raises(ValueError):
            g.chunks(0)


class TestSpectralSpec:
    def test_round_trip(self):
        g = OmegaGrid.linear(-2.0, 2.0, 7, [0.1 + 0.01 * j for j in range(7)])
        spec = SpectralSpec.from_grid(g)
        back = spec.grid()
        assert spec.n_omega == 7
        np.testing.assert_array_equal(back.omegas, g.omegas)
        np.testing.assert_array_equal(back.etas, g.etas)

    def test_equality_is_byte_equality(self):
        a = SpectralSpec.linear(-1.0, 1.0, 5, 0.1)
        b = SpectralSpec.from_grid(OmegaGrid.linear(-1.0, 1.0, 5, 0.1))
        # A "custom" grid with the same values is the same physics.
        c = SpectralSpec.from_grid(
            OmegaGrid(np.linspace(-1, 1, 5), np.full(5, 0.1))
        )
        assert a == b == c
        assert hash(a) == hash(c)
        assert a != SpectralSpec.linear(-1.0, 1.0, 5, 0.2)

    def test_encode_is_stable_and_distinct(self):
        a = SpectralSpec.linear(-1.0, 1.0, 5, 0.1)
        assert a.encode() == a.encode()
        assert a.encode() != SpectralSpec.linear(-1.0, 1.0, 5, 0.11).encode()
        assert a.encode() != SpectralSpec.linear(-1.0, 1.0, 6, 0.1).encode()

    def test_chunk_specs_concatenate_back(self):
        spec = SpectralSpec.linear(-3.0, 3.0, 9, 0.2)
        chunks = spec.chunk_specs(4)
        assert [c.n_omega for c in chunks] == [4, 4, 1]
        omegas = np.concatenate([c.grid().omegas for c in chunks])
        np.testing.assert_array_equal(omegas, spec.grid().omegas)

    @pytest.mark.parametrize("bad", [
        lambda: SpectralSpec(b"", b""),
        lambda: SpectralSpec(b"12345678", b""),
        lambda: SpectralSpec(b"123", b"123"),
        lambda: SpectralSpec(
            np.array([np.nan]).tobytes(), np.array([0.1]).tobytes()
        ),
        lambda: SpectralSpec(
            np.array([0.0]).tobytes(), np.array([-0.1]).tobytes()
        ),
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            bad()


# ----------------------------------------------------------------------
# the resolvent engine vs the dense oracle
# ----------------------------------------------------------------------

class TestShiftScale:
    def test_factorisation_identity(self):
        pc = random_pcyclic(6, 4, np.random.default_rng(0), scale=0.7)
        z = 0.3 + 0.2j
        shifted, d = shifted_pcyclic(pc, z)
        np.testing.assert_allclose(
            d * shifted.to_dense(),
            z * np.eye(24) - pc.to_dense(),
            atol=1e-12,
        )

    def test_z_equal_one_rejected(self):
        with pytest.raises(ValueError):
            shift_scale(1.0)


GRID33 = OmegaGrid.linear(-3.0, 3.0, 33, 0.05)


class TestResolventOracle:
    @pytest.mark.parametrize("pattern", list(Pattern))
    @pytest.mark.parametrize("eta", [0.05, 0.6])
    @pytest.mark.parametrize("dtype", ["real", "complex"])
    def test_sweep_matches_dense_oracle(self, pattern, eta, dtype):
        if dtype == "real":
            pc = random_pcyclic(8, 6, np.random.default_rng(3), scale=0.7)
        else:
            pc = random_complex_pc(8, 6, seed=3)
        grid = OmegaGrid.linear(-3.0, 3.0, 33, eta)
        factor = ResolventFactor(pc, c=4, pattern=pattern, q=1)
        swept = factor.sweep(grid)
        assert swept.rungs == ["factored"] * 33
        for j in (0, 9, 16, 25, 32):
            selected = {
                kl: swept.blocks[kl][j] for kl in swept.blocks
            }
            err = oracle_error(pc, selected, grid.z[j])
            assert err <= 1e-10, (pattern, eta, dtype, j, err)

    def test_sweep_matches_solve_shift(self):
        pc = random_pcyclic(8, 6, np.random.default_rng(5), scale=0.7)
        factor = ResolventFactor(pc, c=4, pattern=Pattern.COLUMNS, q=2)
        grid = OmegaGrid.linear(-1.0, 1.0, 5, 0.3)
        swept = factor.sweep(grid)
        for j, z in enumerate(grid.z):
            selected, rung = factor.solve_shift(z)
            assert rung == "factored"
            for kl, blk in selected.items():
                np.testing.assert_array_equal(swept.blocks[kl][j], blk)

    def test_factored_equals_naive_per_shift(self):
        """The shared factorisation is *algebraically* the same pipeline
        as refactoring the shifted chain per shift."""
        pc = random_pcyclic(8, 5, np.random.default_rng(11), scale=0.7)
        z = -0.7 + 0.2j
        factor = ResolventFactor(pc, c=4, pattern=Pattern.SUBDIAGONAL)
        fast, _ = factor.solve_shift(z)
        pc_z, d = shifted_pcyclic(pc, z)
        naive = fsi(pc_z, 4, pattern=Pattern.SUBDIAGONAL, q=0).selected
        for kl, blk in fast.items():
            np.testing.assert_allclose(
                blk, naive[kl] / d, rtol=0, atol=1e-12 * abs(1.0 / d)
            )

    def test_degenerate_single_slice(self):
        pc = random_pcyclic(1, 5, np.random.default_rng(7), scale=0.6)
        factor = ResolventFactor(pc, c=1, pattern=Pattern.DIAGONAL)
        grid = OmegaGrid.linear(-2.0, 2.0, 9, 0.2)
        swept = factor.sweep(grid)
        for j in (0, 4, 8):
            selected = {kl: swept.blocks[kl][j] for kl in swept.blocks}
            assert oracle_error(pc, selected, grid.z[j]) <= 1e-12

    def test_c_equals_one(self):
        pc = random_pcyclic(6, 4, np.random.default_rng(9), scale=0.7)
        factor = ResolventFactor(pc, c=1, pattern=Pattern.FULL_DIAGONAL)
        z = 0.4 + 0.1j
        selected, rung = factor.solve_shift(z)
        assert rung == "factored"
        assert oracle_error(pc, selected, z) <= 1e-12

    def test_validation(self):
        pc = random_pcyclic(6, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ResolventFactor(pc, c=4)  # 4 does not divide 6
        with pytest.raises(ValueError):
            ResolventFactor(pc, c=3, q=3)

    def test_sweep_flops_amortise_cls(self):
        single = spectral_sweep_flops(64, 100, 8, Pattern.DIAGONAL, 1)
        many = spectral_sweep_flops(64, 100, 8, Pattern.DIAGONAL, 33)
        per_extra = (many - single) / 32
        from repro.core.cls import cls_flops
        assert per_extra < single  # CLS is paid once
        assert many == pytest.approx(
            cls_flops(64, 100, 8) + 33 * (single - cls_flops(64, 100, 8))
        )

    def test_result_accessors(self):
        pc = random_pcyclic(4, 3, np.random.default_rng(1), scale=0.7)
        factor = ResolventFactor(pc, c=2, pattern=Pattern.DIAGONAL)
        grid = OmegaGrid.linear(-1.0, 1.0, 3, 0.2)
        swept = factor.sweep(grid)
        assert isinstance(swept, SpectralResult)
        assert swept.n_omega == 3
        kl = next(iter(swept.blocks))
        assert swept.block(*kl).shape == (3, 3, 3)
        assert swept.block(*kl).dtype == np.complex128


# ----------------------------------------------------------------------
# spectral functions: physics identities on a Hermitian operator
# ----------------------------------------------------------------------

def hermitian_pc(N: int, seed: int) -> BlockPCyclic:
    """L=2 chain whose dense form is Hermitian: M = [[I, C], [C^H, I]].

    Normal form places ``+B_1`` in the corner and ``-B_2`` on the
    sub-diagonal, so ``B_1 = C`` and ``B_2 = -C^H`` give eigenvalues
    ``1 +- sigma_i(C)`` — a genuine spectrum for the physics tests.
    """
    rng = np.random.default_rng(seed)
    C = rng.standard_normal((N, N)) + 1j * rng.standard_normal((N, N))
    C *= 0.5 / np.linalg.norm(C, 2)
    return BlockPCyclic(np.stack([C, -C.conj().T]))


class TestSpectralFunctions:
    @pytest.fixture(scope="class")
    def hermitian_sweep(self):
        pc = hermitian_pc(6, seed=21)
        grid = OmegaGrid.linear(-9.0, 11.0, 801, 0.1)
        factor = ResolventFactor(pc, c=1, pattern=Pattern.FULL_DIAGONAL)
        return pc, grid, factor.sweep(grid)

    def test_spectral_function_hermitian_psd(self, hermitian_sweep):
        _, grid, swept = hermitian_sweep
        for k in (1, 2):
            A = spectral_function(swept.block(k, k))
            np.testing.assert_allclose(
                A, np.conjugate(np.swapaxes(A, -1, -2)), atol=1e-14
            )
            eigs = np.linalg.eigvalsh(A)
            assert eigs.min() >= -1e-10

    def test_sum_rule(self, hermitian_sweep):
        _, grid, swept = hermitian_sweep
        weights = np.concatenate([
            sum_rule(spectral_function(swept.block(k, k)), grid)
            for k in (1, 2)
        ])
        # Each orbital holds one state; the window truncates the
        # Lorentzian tails at the percent level.
        np.testing.assert_allclose(weights, 1.0, atol=0.02)

    def test_dos_integral(self, hermitian_sweep):
        _, grid, swept = hermitian_sweep
        A = spectral_function(swept.block(1, 1))
        rho = density_of_states(A)
        assert rho.min() >= -1e-12
        assert np.trapezoid(rho, grid.omegas) == pytest.approx(1.0, abs=0.02)

    def test_dos_peaks_at_eigenvalues(self, hermitian_sweep):
        pc, grid, swept = hermitian_sweep
        eigs = np.linalg.eigvalsh(pc.to_dense())
        A1 = spectral_function(swept.block(1, 1))
        A2 = spectral_function(swept.block(2, 2))
        rho = (density_of_states(A1) + density_of_states(A2)) / 2.0
        # Exact Lorentzian sum evaluated on the same grid.
        lorentz = (
            (grid.etas[:, None] / np.pi)
            / ((grid.omegas[:, None] - eigs[None, :]) ** 2
               + grid.etas[:, None] ** 2)
        ).sum(axis=1) / len(eigs)
        np.testing.assert_allclose(rho, lorentz, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            spectral_function(np.zeros((3, 4, 5)))
        with pytest.raises(ValueError):
            density_of_states(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            sum_rule(np.zeros((3, 4, 4)), OmegaGrid.linear(-1, 1, 5, 0.1))


# ----------------------------------------------------------------------
# momentum projection
# ----------------------------------------------------------------------

class TestMomentum:
    def test_batched_equals_per_slice(self):
        lattice = RectangularLattice(3, 2)
        rng = np.random.default_rng(2)
        C = rng.standard_normal((5, 6, 6)) + 1j * rng.standard_normal((5, 6, 6))
        momenta, batched = momentum_transform(C, lattice)
        assert batched.shape == (5, 6)
        for j in range(5):
            mj, vj = momentum_transform(C[j], lattice)
            np.testing.assert_array_equal(mj, momenta)
            np.testing.assert_allclose(batched[j], vj, atol=1e-13)

    def test_structure_factor_grid_unchanged(self):
        lattice = RectangularLattice(3, 3)
        rng = np.random.default_rng(4)
        C = rng.standard_normal((9, 9))
        C = (C + C.T) / 2.0
        momenta, S = structure_factor_grid(C, lattice)
        # Parseval: sum_q S(q) = tr C.
        assert S.sum() == pytest.approx(np.trace(C), rel=1e-12)

    def test_momentum_spectral_function(self):
        lattice = RectangularLattice(2, 2)
        pc = hermitian_pc(4, seed=8)
        grid = OmegaGrid.linear(-2.0, 4.0, 21, 0.2)
        swept = ResolventFactor(pc, c=1, pattern=Pattern.DIAGONAL).sweep(grid)
        A = spectral_function(swept.block(2, 2))
        momenta, Aq = momentum_spectral_function(A, lattice)
        assert momenta.shape == (4, 2) and Aq.shape == (21, 4)
        # Hermitian PSD A: every quadratic form is real non-negative.
        assert Aq.min() >= -1e-12
        # Parseval per frequency: sum_q A(q, w) = tr A(w).
        np.testing.assert_allclose(
            Aq.sum(axis=1), np.einsum("wii->w", A).real, atol=1e-12
        )


# ----------------------------------------------------------------------
# guards + the fallback ladder
# ----------------------------------------------------------------------

class TestSpectralResilience:
    def test_guarded_sweep_matches_unguarded(self):
        pc = random_pcyclic(8, 6, np.random.default_rng(13), scale=0.7)
        grid = OmegaGrid.linear(-2.0, 2.0, 7, 0.3)
        plain = ResolventFactor(pc, c=4, pattern=Pattern.COLUMNS).sweep(grid)
        guarded = ResolventFactor(
            pc, c=4, pattern=Pattern.COLUMNS, guards=GuardConfig()
        ).sweep(grid)
        assert guarded.rungs == ["factored"] * 7
        for kl in plain.blocks:
            np.testing.assert_array_equal(plain.blocks[kl], guarded.blocks[kl])

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_fallback_drill_near_singular_shift(self):
        """A shift pathologically close to z=1 overflows ``s(z)^c`` on
        the fast path; the ladder serves it on a finer rung, and the
        answer still matches the dense oracle."""
        telemetry.reset()
        try:
            pc = random_pcyclic(8, 6, np.random.default_rng(3), scale=0.7)
            factor = ResolventFactor(
                pc, c=4, pattern=Pattern.COLUMNS, q=1, guards=GuardConfig()
            )
            z = 1.0 + 1e-90j
            grid = OmegaGrid(np.array([1.0]), np.array([1e-90]))
            swept = factor.sweep(grid)
            (rung,) = swept.rungs
            assert rung != "factored"  # the fast path tripped
            assert rung == "c=2"  # ... and the first finer rung served
            selected = {kl: swept.blocks[kl][0] for kl in swept.blocks}
            assert oracle_error(pc, selected, z) <= 1e-10
            counts = {
                values[0]: child.value
                for values, child in telemetry.registry().counter(
                    "repro_spectral_shifts_total",
                    "Resolvent shifts solved, by serving rung",
                    labels=("rung",),
                ).samples()
            }
            assert counts.get("c=2") == 1.0
        finally:
            telemetry.reset()

    def test_shift_rung_counter(self):
        telemetry.reset()
        try:
            pc = random_pcyclic(4, 3, np.random.default_rng(1), scale=0.7)
            factor = ResolventFactor(pc, c=2, guards=GuardConfig())
            factor.sweep(OmegaGrid.linear(-1.0, 1.0, 3, 0.4))
            counts = {
                values[0]: child.value
                for values, child in telemetry.registry().counter(
                    "repro_spectral_shifts_total",
                    "Resolvent shifts solved, by serving rung",
                    labels=("rung",),
                ).samples()
            }
            assert counts == {"factored": 3.0}
        finally:
            telemetry.reset()


# ----------------------------------------------------------------------
# service workload: fingerprints, fan-out, stitching, caching, tracing
# ----------------------------------------------------------------------

SPEC = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=2.0, beta=1.0)


def make_spectral_job(seed: int, sspec: SpectralSpec | None,
                      pattern: Pattern = Pattern.DIAGONAL) -> GreensJob:
    field = HSField.random(SPEC.L, SPEC.N, np.random.default_rng(seed))
    return GreensJob.from_field(
        SPEC, field, c=4, pattern=pattern, q=1, spectral=sspec
    )


class TestSpectralJobs:
    def test_workload_discriminator(self):
        sspec = SpectralSpec.linear(-2.0, 2.0, 5, 0.1)
        equal_time = make_spectral_job(0, None)
        spectral = make_spectral_job(0, sspec)
        assert equal_time.workload == "equal_time"
        assert spectral.workload == "spectral"
        assert equal_time.fingerprint != spectral.fingerprint
        assert equal_time.compat_key != spectral.compat_key

    def test_grid_is_part_of_identity(self):
        a = make_spectral_job(0, SpectralSpec.linear(-2.0, 2.0, 5, 0.1))
        b = make_spectral_job(0, SpectralSpec.linear(-2.0, 2.0, 5, 0.2))
        c = make_spectral_job(0, SpectralSpec.linear(-2.0, 2.0, 6, 0.1))
        assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3
        same = make_spectral_job(0, SpectralSpec.linear(-2.0, 2.0, 5, 0.1))
        assert same == a and same.fingerprint == a.fingerprint

    def test_chunk_fingerprints_distinct(self):
        sspec = SpectralSpec.linear(-2.0, 2.0, 9, 0.1)
        parent = make_spectral_job(0, sspec)
        fps = set()
        import dataclasses
        for chunk in sspec.chunk_specs(4):
            fps.add(dataclasses.replace(parent, spectral=chunk).fingerprint)
        assert len(fps) == 3
        assert parent.fingerprint not in fps

    def test_spectral_type_checked(self):
        with pytest.raises(TypeError):
            make_spectral_job(0, "not a spec")  # type: ignore[arg-type]


class TestSpectralService:
    @pytest.fixture(scope="class")
    def svc(self):
        with GreensService(ServiceConfig(
            workers=2, fleet_ranks=1, spectral_chunk=4
        )) as service:
            yield service

    def test_fanned_out_sweep_matches_direct(self, svc):
        sspec = SpectralSpec.linear(-2.0, 2.0, 9, 0.2)
        job = make_spectral_job(7, sspec)
        result = svc.submit(job).result(timeout=120)
        assert result.rung == "spectral(9)"
        # Direct local sweep over the same chain.
        field = job.field()
        pc = SPEC.build_model().build_matrix(field, SPEC.sigma)
        swept = ResolventFactor(pc, c=4, pattern=Pattern.DIAGONAL, q=1).sweep(
            sspec.grid()
        )
        assert set(result.blocks) == set(swept.blocks)
        for kl, blk in result.blocks.items():
            assert blk.shape == (9, SPEC.N, SPEC.N)
            np.testing.assert_allclose(blk, swept.blocks[kl], atol=1e-8)

    def test_resubmit_hits_chunk_cache(self, svc):
        sspec = SpectralSpec.linear(-1.0, 1.0, 9, 0.3)
        job = make_spectral_job(8, sspec)
        first = svc.submit(job).result(timeout=120)
        hits_before = svc.stats()["cache"]["hits"]
        second = svc.submit(job).result(timeout=120)
        assert svc.stats()["cache"]["hits"] >= hits_before + 3
        for kl, blk in first.blocks.items():
            np.testing.assert_array_equal(blk, second.blocks[kl])

    def test_single_chunk_job_is_cached(self, svc):
        job = make_spectral_job(9, SpectralSpec.linear(-1.0, 1.0, 3, 0.3))
        svc.submit(job).result(timeout=120)
        again = svc.submit(job)
        again.result(timeout=120)
        assert again.cache_hit

    def test_spectral_metrics(self, svc):
        stats = svc.stats()["spectral"]
        assert stats["requests"] >= 1
        assert stats["chunks"] >= 3

    def test_overlapping_grid_reuses_chunks(self, svc):
        # Same leading chunk as a 9-point grid over the same window.
        base = SpectralSpec.linear(-2.0, 2.0, 9, 0.2)
        job9 = make_spectral_job(11, base)
        svc.submit(job9).result(timeout=120)
        lead = base.chunk_specs(4)[0]
        hits_before = svc.stats()["cache"]["hits"]
        again = svc.submit(make_spectral_job(11, lead))
        again.result(timeout=120)
        assert again.cache_hit
        assert svc.stats()["cache"]["hits"] == hits_before + 1

    def test_equal_time_jobs_unaffected(self, svc):
        job = make_spectral_job(10, None)
        result = svc.submit(job).result(timeout=120)
        assert result.rung == "direct"
        ref = fsi(
            SPEC.build_model().build_matrix(job.field(), SPEC.sigma),
            4, pattern=Pattern.DIAGONAL, q=1,
        ).selected
        for kl, blk in result.blocks.items():
            np.testing.assert_allclose(blk, ref[kl], atol=1e-10)


class TestSpectralTracing:
    def test_one_stitched_trace(self):
        telemetry.reset()
        try:
            telemetry.configure(sample_rate=1.0)
            job = make_spectral_job(3, SpectralSpec.linear(-2.0, 2.0, 9, 0.2))
            with GreensService(ServiceConfig(
                workers=2, fleet_ranks=1, spectral_chunk=4
            )) as svc:
                svc.submit(job).result(timeout=120)
            spans = telemetry.collector().drain()
            by_trace: dict[str, list] = {}
            for span in spans:
                by_trace.setdefault(span["trace_id"], []).append(span)
            assert len(by_trace) == 1
            names = {span["name"] for span in next(iter(by_trace.values()))}
            assert {
                "service.request", "service.spectral", "service.dispatch",
                "spectral.factor", "spectral.sweep", "worker.job",
            } <= names
            spectral_spans = [
                s for s in spans if s["name"] == "service.spectral"
            ]
            assert len(spectral_spans) == 1
            assert spectral_spans[0]["attributes"]["chunks"] == 3
        finally:
            telemetry.reset()
