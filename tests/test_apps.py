"""Applications: trace estimation and p-cyclic Markov chains."""

import numpy as np
import pytest

from repro.apps.markov import CyclicMarkovChain, resolvent_columns
from repro.apps.trace import (
    HutchinsonResult,
    exact_diagonal,
    exact_trace,
    hutchinson_trace,
)
from repro.core.pcyclic import random_pcyclic
from repro.core.solve import PCyclicSolver


@pytest.fixture(scope="module")
def problem():
    pc = random_pcyclic(12, 6, np.random.default_rng(0), scale=0.6)
    G = np.linalg.inv(pc.to_dense())
    return pc, G


class TestExactTrace:
    def test_diagonal_matches_dense(self, problem):
        pc, G = problem
        np.testing.assert_allclose(
            exact_diagonal(pc, c=4), np.diag(G), atol=1e-11
        )

    def test_trace_matches_dense(self, problem):
        pc, G = problem
        assert exact_trace(pc, c=4) == pytest.approx(np.trace(G), rel=1e-12)

    def test_default_c(self, problem):
        pc, G = problem
        assert exact_trace(pc) == pytest.approx(np.trace(G), rel=1e-12)


class TestHutchinson:
    def test_unbiased_within_stderr(self, problem):
        pc, G = problem
        r = hutchinson_trace(pc, n_probes=512, rng=1)
        assert isinstance(r, HutchinsonResult)
        assert r.error_vs(np.trace(G)) < 5 * r.stderr

    def test_error_shrinks_with_probes(self, problem):
        pc, G = problem
        exact = np.trace(G)
        errs = []
        for n in (16, 256):
            # Average over seeds to beat luck.
            errs.append(
                np.mean(
                    [
                        hutchinson_trace(pc, n_probes=n, rng=s).error_vs(exact)
                        for s in range(8)
                    ]
                )
            )
        assert errs[1] < 0.7 * errs[0]

    def test_shared_solver(self, problem):
        pc, _ = problem
        solver = PCyclicSolver(pc)
        a = hutchinson_trace(pc, n_probes=8, rng=2, solver=solver)
        b = hutchinson_trace(pc, n_probes=8, rng=2, solver=solver)
        assert a.estimate == pytest.approx(b.estimate)

    def test_validation(self, problem):
        pc, _ = problem
        with pytest.raises(ValueError):
            hutchinson_trace(pc, n_probes=0)

    def test_samples_recorded(self, problem):
        pc, _ = problem
        r = hutchinson_trace(pc, n_probes=7, rng=3)
        assert r.samples.shape == (7,)
        assert r.estimate == pytest.approx(float(r.samples.mean()))


class TestMarkovChain:
    @pytest.fixture(scope="class")
    def chain(self):
        return CyclicMarkovChain.random(6, 4, rng=7)

    def test_random_blocks_stochastic(self, chain):
        np.testing.assert_allclose(chain.P.sum(axis=2), 1.0, atol=1e-12)

    def test_transition_matrix_structure(self, chain):
        T = chain.transition_matrix()
        N = chain.N
        # Only class l -> l+1 transitions exist.
        np.testing.assert_array_equal(T[:N, :N], 0.0)
        assert T[:N, N : 2 * N].sum() > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            CyclicMarkovChain(-np.ones((2, 2, 2)) / 2)
        with pytest.raises(ValueError, match="stochastic"):
            CyclicMarkovChain(np.ones((2, 2, 2)))

    def test_resolvent_pcyclic_matches_dense(self, chain):
        z = 0.8
        pc = chain.resolvent_pcyclic(z)
        lhs = pc.to_dense()
        rhs = (np.eye(chain.L * chain.N) - z * chain.transition_matrix()).T
        np.testing.assert_allclose(lhs, rhs, atol=1e-13)

    def test_z_range_validated(self, chain):
        with pytest.raises(ValueError, match="discount"):
            chain.resolvent_pcyclic(1.5)

    @pytest.mark.parametrize("z", [0.5, 0.95])
    def test_resolvent_columns_match_dense(self, chain, z):
        R = np.linalg.inv(
            np.eye(chain.L * chain.N) - z * chain.transition_matrix()
        )
        cols = resolvent_columns(chain, z, c=2, q=0)
        N = chain.N
        for (k, l), blk in cols.items():
            ref = R[(k - 1) * N : k * N, (l - 1) * N : l * N]
            np.testing.assert_allclose(blk, ref, atol=1e-10)

    def test_expected_visits_properties(self, chain):
        """Resolvent entries are non-negative and row sums equal the
        geometric total 1/(1-z) when summed over all columns."""
        z = 0.9
        R = np.linalg.inv(
            np.eye(chain.L * chain.N) - z * chain.transition_matrix()
        )
        assert np.all(R > -1e-12)
        np.testing.assert_allclose(R.sum(axis=1), 1.0 / (1.0 - z), atol=1e-9)

    def test_discounted_visits_localise_by_class(self, chain):
        """Starting in class k, visits to class l at lag t require
        t = l - k (mod L): the leading contribution scales like z^lag."""
        z = 0.3
        cols = resolvent_columns(chain, z, c=2, q=0)
        # From class 1 to the two selected classes: nearer class gets
        # larger total weight at small z.
        totals = {
            l: blk.sum() for (k, l), blk in cols.items() if k == 1
        }
        ls = sorted(totals)
        lags = {l: (l - 1) % chain.L for l in ls}
        near = min(ls, key=lambda l: lags[l])
        far = max(ls, key=lambda l: lags[l])
        assert totals[near] > totals[far]
