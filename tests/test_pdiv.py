"""PDIV distributed selected inversion vs. the serial FSI reference.

The acceptance bar from the issue: ``fsi_distributed`` matches ``fsi``
to 1e-10 on random p-cyclic chains with L >= 32 and 4 partitions, for
every selection pattern, over the real transport backends.
"""

import numpy as np
import pytest

from repro.core import (
    Pattern,
    fsi,
    fsi_distributed,
    partition_bounds,
    random_pcyclic,
)
from repro.core.pdiv import PDIVResult
from repro.telemetry import runtime as _telemetry


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    _telemetry.reset()
    yield
    _telemetry.reset()


def _max_err(result: PDIVResult, ref) -> float:
    return max(
        float(np.max(np.abs(result.selected[kl] - ref.selected[kl])))
        for kl in ref.selection.block_indices()
    )


class TestPartitionBounds:
    def test_even_split(self):
        assert partition_bounds(32, 4) == [(1, 8), (9, 16), (17, 24), (25, 32)]

    def test_remainder_goes_to_low_partitions(self):
        assert partition_bounds(10, 3) == [(1, 4), (5, 7), (8, 10)]

    def test_covers_chain_exactly(self):
        for L in (7, 16, 33):
            for P in (1, 2, 5, 7):
                bounds = partition_bounds(L, P)
                slices = [g for lo, hi in bounds for g in range(lo, hi + 1)]
                assert slices == list(range(1, L + 1))

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            partition_bounds(8, 0)
        with pytest.raises(ValueError):
            partition_bounds(8, 9)


class TestInlineAgreement:
    """ranks=1 exercises the full Woodbury stitch without a world."""

    @pytest.mark.parametrize("pattern", list(Pattern))
    def test_matches_fsi_four_partitions(self, pattern):
        pc = random_pcyclic(32, 3, rng=np.random.default_rng(7), scale=0.4)
        ref = fsi(pc, 4, pattern=pattern, q=1)
        got = fsi_distributed(
            pc, 4, pattern=pattern, q=1, partitions=4, ranks=1
        )
        assert _max_err(got, ref) < 1e-10
        assert got.selection == ref.selection

    def test_single_partition_degenerates_exactly(self):
        # P=1: the bridge coupling and its cancellation collapse, the
        # capacitance is the identity, and the correction vanishes.
        pc = random_pcyclic(32, 2, rng=np.random.default_rng(3), scale=0.4)
        ref = fsi(pc, 8, pattern=Pattern.COLUMNS, q=0)
        got = fsi_distributed(
            pc, 8, pattern=Pattern.COLUMNS, q=0, partitions=1, ranks=1
        )
        assert got.report.capacitance_cond == 1.0
        assert _max_err(got, ref) < 1e-10

    def test_uneven_chain_length(self):
        pc = random_pcyclic(33, 2, rng=np.random.default_rng(5), scale=0.4)
        ref = fsi(pc, 3, pattern=Pattern.ROWS, q=2)
        got = fsi_distributed(
            pc, 3, pattern=Pattern.ROWS, q=2, partitions=4, ranks=1
        )
        assert got.report.bounds == [(1, 9), (10, 17), (18, 25), (26, 33)]
        assert _max_err(got, ref) < 1e-10

    def test_one_slice_partitions(self):
        # Degenerate L_p = 1 partitions hit the solver's L==1 LU path.
        pc = random_pcyclic(8, 2, rng=np.random.default_rng(9), scale=0.3)
        ref = fsi(pc, 2, pattern=Pattern.FULL_DIAGONAL, q=0)
        got = fsi_distributed(
            pc, 2, pattern=Pattern.FULL_DIAGONAL, q=0, partitions=8, ranks=1
        )
        assert _max_err(got, ref) < 1e-10

    def test_partitions_clamped_to_L(self):
        pc = random_pcyclic(4, 2, rng=np.random.default_rng(11), scale=0.3)
        got = fsi_distributed(
            pc, 2, pattern=Pattern.DIAGONAL, q=0, partitions=16, ranks=1
        )
        assert got.report.partitions == 4

    def test_q_drawn_when_none(self):
        pc = random_pcyclic(8, 2, rng=np.random.default_rng(1), scale=0.3)
        got = fsi_distributed(
            pc, 4, pattern=Pattern.DIAGONAL, rng=123, partitions=2, ranks=1
        )
        ref = fsi(pc, 4, pattern=Pattern.DIAGONAL, rng=123)
        assert got.selection == ref.selection

    def test_rejects_bad_c(self):
        pc = random_pcyclic(8, 2, rng=np.random.default_rng(1), scale=0.3)
        with pytest.raises(ValueError, match="divisor"):
            fsi_distributed(pc, 3, partitions=2, ranks=1)


class TestDistributed:
    """The same math through real transport worlds."""

    @pytest.mark.parametrize("backend", ["threads", "mp-shm"])
    def test_matches_fsi_over_world(self, backend):
        pc = random_pcyclic(32, 3, rng=np.random.default_rng(7), scale=0.4)
        ref = fsi(pc, 4, pattern=Pattern.COLUMNS, q=2)
        got = fsi_distributed(
            pc, 4, pattern=Pattern.COLUMNS, q=2,
            partitions=4, ranks=4, transport=backend,
        )
        assert _max_err(got, ref) < 1e-10
        assert got.report.backend == backend
        assert got.report.ranks == 4
        # The scatter/gather really went over the wire.
        assert got.report.comm is not None
        assert got.report.comm.messages["send"] > 0

    def test_fewer_ranks_than_partitions(self):
        pc = random_pcyclic(32, 2, rng=np.random.default_rng(13), scale=0.4)
        ref = fsi(pc, 4, pattern=Pattern.ROWS, q=0)
        got = fsi_distributed(
            pc, 4, pattern=Pattern.ROWS, q=0,
            partitions=4, ranks=3, transport="threads",
        )
        assert _max_err(got, ref) < 1e-10

    def test_inline_report_has_no_comm(self):
        pc = random_pcyclic(8, 2, rng=np.random.default_rng(2), scale=0.3)
        got = fsi_distributed(
            pc, 4, pattern=Pattern.DIAGONAL, q=0, partitions=2, ranks=1
        )
        assert got.report.backend == "inline"
        assert got.report.comm is None

    def test_emits_pdiv_spans(self):
        pc = random_pcyclic(16, 2, rng=np.random.default_rng(4), scale=0.4)
        _telemetry.configure(enabled=True)
        fsi_distributed(
            pc, 4, pattern=Pattern.DIAGONAL, q=0, partitions=2, ranks=2,
            transport="threads",
        )
        names = [s["name"] for s in _telemetry.collector().snapshot()]
        assert "pdiv" in names
        assert "pdiv.stitch" in names
        assert names.count("pdiv.partition") == 2
