"""Equal-time measurements: Wick identities and known limits."""

import numpy as np
import pytest

from repro.core.greens_explicit import equal_time_greens
from repro.dqmc.measurements import (
    EqualTimeAccumulator,
    measure_slice,
)
from repro.hubbard import HSField, HubbardModel, RectangularLattice


@pytest.fixture
def measured(hubbard_model, hubbard_field):
    G_up = equal_time_greens(hubbard_model.build_matrix(hubbard_field, +1), 1)
    G_dn = equal_time_greens(hubbard_model.build_matrix(hubbard_field, -1), 1)
    return measure_slice(G_up, G_dn, hubbard_model), G_up, G_dn


class TestMeasureSlice:
    def test_density_from_diagonals(self, measured, hubbard_model):
        m, G_up, G_dn = measured
        expected = np.mean((1 - np.diag(G_up)) + (1 - np.diag(G_dn)))
        assert m.density == pytest.approx(expected)

    def test_half_filling_density_one_bipartite(self):
        """On a *bipartite* lattice at mu = 0, particle-hole symmetry
        pins the density to exactly 1 per HS configuration
        (n_up(i) + n_dn(i) = 1 site by site)."""
        model = HubbardModel(RectangularLattice(4, 4), L=8, U=4.0, beta=2.0)
        field = HSField.random(8, 16, np.random.default_rng(0))
        G_up = equal_time_greens(model.build_matrix(field, +1), 1)
        G_dn = equal_time_greens(model.build_matrix(field, -1), 1)
        m = measure_slice(G_up, G_dn, model)
        assert m.density == pytest.approx(1.0, abs=1e-10)
        # Site-resolved version of the same symmetry.
        n_site = (1 - np.diag(G_up)) + (1 - np.diag(G_dn))
        np.testing.assert_allclose(n_site, 1.0, atol=1e-10)

    def test_non_bipartite_density_near_one(self, hubbard_model, hubbard_field):
        """A 3x3 periodic lattice is NOT bipartite: per-configuration
        density deviates from 1 (only the MC average restores it)."""
        G_up = equal_time_greens(hubbard_model.build_matrix(hubbard_field, +1), 1)
        G_dn = equal_time_greens(hubbard_model.build_matrix(hubbard_field, -1), 1)
        m = measure_slice(G_up, G_dn, hubbard_model)
        assert m.density == pytest.approx(1.0, abs=0.2)
        assert abs(m.density - 1.0) > 1e-12

    def test_local_moment_identity(self, measured):
        """<m_z^2> = <n> - 2 <n_up n_dn> by definition."""
        m, _, _ = measured
        assert m.local_moment == pytest.approx(
            m.density - 2 * m.double_occupancy
        )

    def test_double_occupancy_bounds(self, measured):
        m, _, _ = measured
        assert 0.0 <= m.double_occupancy <= 1.0

    def test_kinetic_energy_negative(self, measured):
        """Hopping lowers the energy for the half-filled ground sector."""
        m, _, _ = measured
        assert m.kinetic_energy < 0

    def test_szz_onsite_is_quarter_moment(self, measured):
        """S^z_i S^z_i = m_z^2 / 4 exactly (distance class 0)."""
        m, _, _ = measured
        assert m.szz[0] == pytest.approx(m.local_moment / 4.0)

    def test_szz_shape(self, measured, hubbard_model):
        m, _, _ = measured
        assert m.szz.shape == (hubbard_model.lattice.d_max,)

    def test_free_fermion_limit(self):
        """U=0: G is the free Green's function; double occupancy equals
        n_up * n_dn exactly and szz has no interaction enhancement."""
        model = HubbardModel(RectangularLattice(3, 3), L=8, U=0.0, beta=2.0)
        field = HSField.ordered(8, 9)
        G = equal_time_greens(model.build_matrix(field, +1), 1)
        m = measure_slice(G, G, model)
        n_half = m.density / 2
        assert m.double_occupancy == pytest.approx(n_half**2, rel=1e-10)

    def test_as_dict(self, measured):
        d = measured[0].as_dict()
        assert set(d) == {
            "density",
            "double_occupancy",
            "kinetic_energy",
            "local_moment",
            "szz",
        }


class TestAccumulator:
    def test_mean_over_slices(self, hubbard_model, hubbard_field):
        pc_up = hubbard_model.build_matrix(hubbard_field, +1)
        pc_dn = hubbard_model.build_matrix(hubbard_field, -1)
        acc = EqualTimeAccumulator()
        singles = []
        for l in (1, 2, 3):
            m = measure_slice(
                equal_time_greens(pc_up, l),
                equal_time_greens(pc_dn, l),
                hubbard_model,
            )
            singles.append(m.density)
            acc.add(m)
        out = acc.mean()
        assert out["density"] == pytest.approx(np.mean(singles))
        assert acc.count == 3

    def test_merge_matches_sequential(self, hubbard_model, hubbard_field):
        pc_up = hubbard_model.build_matrix(hubbard_field, +1)
        pc_dn = hubbard_model.build_matrix(hubbard_field, -1)
        ms = [
            measure_slice(
                equal_time_greens(pc_up, l),
                equal_time_greens(pc_dn, l),
                hubbard_model,
            )
            for l in (1, 2, 3, 4)
        ]
        seq = EqualTimeAccumulator()
        for m in ms:
            seq.add(m)
        a, b = EqualTimeAccumulator(), EqualTimeAccumulator()
        a.add(ms[0]); a.add(ms[1])
        b.add(ms[2]); b.add(ms[3])
        a.merge(b)
        np.testing.assert_allclose(a.mean()["szz"], seq.mean()["szz"])
        assert a.mean()["kinetic_energy"] == pytest.approx(
            seq.mean()["kinetic_energy"]
        )

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError, match="no measurements"):
            EqualTimeAccumulator().mean()

    def test_merge_into_empty(self, measured):
        a, b = EqualTimeAccumulator(), EqualTimeAccumulator()
        b.add(measured[0])
        a.merge(b)
        assert a.count == 1
