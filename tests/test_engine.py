"""The DQMC engine: sweeps, Green's bundles, full runs."""

import numpy as np
import pytest

from repro.dqmc.engine import DQMC, DQMCConfig
from repro.hubbard import HubbardModel, RectangularLattice


@pytest.fixture
def model():
    return HubbardModel(RectangularLattice(3, 3), L=8, t=1.0, U=4.0, beta=2.0)


def make_sim(model, **kw):
    defaults = dict(
        warmup_sweeps=1,
        measurement_sweeps=2,
        c=4,
        nwrap=4,
        bin_size=1,
        seed=3,
        num_threads=1,
    )
    defaults.update(kw)
    return DQMC(model, DQMCConfig(**defaults))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DQMCConfig(warmup_sweeps=-1)
        with pytest.raises(ValueError):
            DQMCConfig(nwrap=0)

    def test_default_c_rule(self, model):
        sim = DQMC(model, DQMCConfig(c=None, seed=0))
        assert sim.c == 2  # recommend_c(8)

    def test_c_must_divide_L(self, model):
        with pytest.raises(ValueError, match="divide"):
            DQMC(model, DQMCConfig(c=3, seed=0))


class TestSweep:
    def test_field_stays_ising(self, model):
        sim = make_sim(model)
        sim.sweep()
        assert set(np.unique(sim.field.h)) <= {-1, 1}

    def test_acceptance_reasonable(self, model):
        sim = make_sim(model)
        for _ in range(3):
            sim.sweep()
        assert 0.05 < sim.stats.acceptance_rate < 0.95
        assert sim.stats.proposed == 3 * model.L * model.N

    def test_wrap_drift_small(self, model):
        sim = make_sim(model)
        for _ in range(2):
            sim.sweep()
        assert sim.max_wrap_drift < 1e-7

    def test_no_negative_ratios_at_half_filling(self, model):
        sim = make_sim(model)
        for _ in range(2):
            sim.sweep()
        assert sim.stats.negative_ratios == 0

    def test_deterministic_given_seed(self, model):
        a, b = make_sim(model), make_sim(model)
        a.sweep()
        b.sweep()
        np.testing.assert_array_equal(a.field.h, b.field.h)


class TestComputeGreens:
    def test_bundle_contents(self, model):
        sim = make_sim(model)
        bundles = sim.compute_greens(q=1)
        for sigma in (+1, -1):
            gb = bundles[sigma]
            assert len(gb.full_diagonal) == model.L
            assert gb.rows is not None and gb.cols is not None
            assert gb.rows.selection.q == 1
            assert gb.cols.selection.q == 1

    def test_accuracy_vs_dense(self, model):
        sim = make_sim(model)
        bundles = sim.compute_greens(q=2)
        for sigma in (+1, -1):
            pc = model.build_matrix(sim.field, sigma)
            G = np.linalg.inv(pc.to_dense())
            assert bundles[sigma].full_diagonal.max_relative_error(G) < 1e-10
            assert bundles[sigma].rows.max_relative_error(G) < 1e-10

    def test_time_dependent_off(self, model):
        sim = make_sim(model, measure_time_dependent=False)
        bundles = sim.compute_greens()
        assert bundles[+1].rows is None and bundles[+1].cols is None


class TestRun:
    def test_full_run_outputs(self, model):
        res = make_sim(model, warmup_sweeps=2, measurement_sweeps=4).run()
        assert res.sweeps == 6
        assert "density" in res.estimates
        assert res.spxx_mean is not None
        assert res.spxx_mean.shape == (model.L, model.lattice.d_max)
        assert res.greens_seconds > 0
        assert res.measurement_seconds > 0
        assert res.average_sign == 1.0

    def test_physics_sanity(self, model):
        """Half filling: density ~1 (3x3 is non-bipartite, so only up to
        MC noise), repulsion suppresses double occupancy, local moment
        enhanced over the free value 0.5."""
        res = make_sim(model, warmup_sweeps=3, measurement_sweeps=8).run()
        density, _ = res.observable("density")
        docc, _ = res.observable("double_occupancy")
        moment, _ = res.observable("local_moment")
        assert float(density) == pytest.approx(1.0, abs=0.05)
        assert float(docc) < 0.25
        assert float(moment) > 0.5

    def test_density_exact_on_bipartite_lattice(self):
        """On 4x4 (bipartite) the density is exactly 1, configuration by
        configuration — a strong end-to-end check of the whole engine."""
        model = HubbardModel(RectangularLattice(4, 4), L=8, U=4.0, beta=2.0)
        res = make_sim(model, warmup_sweeps=1, measurement_sweeps=3).run()
        density, err = res.observable("density")
        assert float(density) == pytest.approx(1.0, abs=1e-9)
        assert float(err) == pytest.approx(0.0, abs=1e-9)

    def test_equal_time_only_run(self, model):
        res = make_sim(model, measure_time_dependent=False).run()
        assert res.spxx_mean is None
        assert "density" in res.estimates

    def test_no_measurement_sweeps(self, model):
        res = make_sim(model, warmup_sweeps=1, measurement_sweeps=0).run()
        assert res.estimates == {}

    def test_deterministic_estimates(self, model):
        r1 = make_sim(model).run()
        r2 = make_sim(model).run()
        np.testing.assert_allclose(
            r1.observable("density")[0], r2.observable("density")[0]
        )
        np.testing.assert_allclose(r1.spxx_mean, r2.spxx_mean)

    def test_threads_do_not_change_estimates(self, model):
        r1 = make_sim(model, num_threads=1).run()
        r2 = make_sim(model, num_threads=4).run()
        np.testing.assert_allclose(
            float(r1.observable("kinetic_energy")[0]),
            float(r2.observable("kinetic_energy")[0]),
            rtol=1e-10,
        )
