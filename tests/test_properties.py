"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adjacency import AdjacencyOps
from repro.core.bsofi import bsofi
from repro.core.cls import cls
from repro.core.patterns import Pattern, Selection, seed_indices
from repro.core.pcyclic import random_pcyclic, torus_index
from repro.dqmc.stats import jackknife
from repro.hubbard.hs_field import HSField
from repro.parallel.openmp import chunk_ranges

# Geometry strategy: (L, c) with c | L, both small.
geometries = st.integers(1, 6).flatmap(
    lambda b: st.integers(1, 6).map(lambda c: (b * c, c))
)


class TestTorusProperties:
    @given(st.integers(-100, 100), st.integers(1, 50))
    def test_result_in_range(self, k, L):
        assert 1 <= torus_index(k, L) <= L

    @given(st.integers(-100, 100), st.integers(1, 50))
    def test_idempotent(self, k, L):
        assert torus_index(torus_index(k, L), L) == torus_index(k, L)

    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(1, 20))
    def test_translation_consistency(self, k, d, L):
        """Shifting before or after wrapping commutes."""
        assert torus_index(k + d, L) == torus_index(torus_index(k, L) + d, L)


class TestChunkProperties:
    @given(st.integers(0, 500), st.integers(1, 32))
    def test_partition(self, n, parts):
        chunks = chunk_ranges(n, parts)
        flat = [i for c in chunks for i in c]
        assert flat == list(range(n))

    @given(st.integers(0, 500), st.integers(1, 32))
    def test_balanced(self, n, parts):
        sizes = [len(c) for c in chunk_ranges(n, parts)]
        if sizes:
            assert max(sizes) - min(sizes) <= 1

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_chunk_count(self, n, parts):
        assert len(chunk_ranges(n, parts)) == min(n, parts)


class TestSeedIndexProperties:
    @given(geometries, st.integers(0, 5))
    def test_indices_valid_and_spaced(self, geom, q_raw):
        L, c = geom
        q = q_raw % c
        idx = seed_indices(L, c, q)
        assert len(idx) == L // c
        assert all(1 <= k <= L for k in idx)
        assert all(b - a == c for a, b in zip(idx, idx[1:]))

    @given(geometries)
    def test_union_over_q_covers_everything(self, geom):
        L, c = geom
        union = set()
        for q in range(c):
            union.update(seed_indices(L, c, q))
        assert union == set(range(1, L + 1))

    @given(geometries, st.integers(0, 5))
    def test_counts_consistent_with_indices(self, geom, q_raw):
        L, c = geom
        q = q_raw % c
        for pattern in (Pattern.COLUMNS, Pattern.DIAGONAL):
            sel = Selection(pattern, L=L, c=c, q=q)
            assert sel.count() == len(sel.block_indices())

    @given(geometries, st.integers(0, 5))
    def test_subdiagonal_count_rule(self, geom, q_raw):
        L, c = geom
        q = q_raw % c
        sel = Selection(Pattern.SUBDIAGONAL, L=L, c=c, q=q)
        b = L // c
        expected = b - 1 if q == 0 else b
        assert sel.count() == len(sel.block_indices()) == expected


class TestJackknifeProperties:
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=40),
    )
    def test_mean_matches_numpy(self, xs):
        mean, _ = jackknife(np.array(xs))
        assert mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-9)

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=40),
        st.floats(-100, 100),
    )
    def test_shift_invariance_of_error(self, xs, shift):
        _, e0 = jackknife(np.array(xs))
        _, e1 = jackknife(np.array(xs) + shift)
        assert e1 == pytest.approx(e0, rel=1e-6, abs=1e-9)

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=40),
        st.floats(0.1, 10),
    )
    def test_scale_equivariance_of_error(self, xs, scale):
        _, e0 = jackknife(np.array(xs))
        _, e1 = jackknife(scale * np.array(xs))
        assert e1 == pytest.approx(scale * e0, rel=1e-6, abs=1e-9)


class TestHSFieldProperties:
    @given(st.integers(1, 8), st.integers(1, 12), st.integers(0, 2**32 - 1))
    def test_buffer_roundtrip(self, L, N, seed):
        f = HSField.random(L, N, np.random.default_rng(seed))
        assert HSField.from_buffer(f.to_buffer(), L, N) == f

    @given(
        st.integers(1, 6),
        st.integers(1, 8),
        st.integers(0, 2**16),
        st.data(),
    )
    def test_double_flip_is_identity(self, L, N, seed, data):
        f = HSField.random(L, N, np.random.default_rng(seed))
        g = f.copy()
        l = data.draw(st.integers(0, L - 1))
        i = data.draw(st.integers(0, N - 1))
        g.flip(l, i)
        g.flip(l, i)
        assert f == g


class TestLinearAlgebraProperties:
    @given(st.integers(2, 5), st.integers(2, 4), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_bsofi_inverts(self, L, N, seed):
        pc = random_pcyclic(L, N, np.random.default_rng(seed), scale=0.5)
        G = bsofi(pc)
        dense = np.block([[G[i, j] for j in range(L)] for i in range(L)])
        resid = np.abs(pc.to_dense() @ dense - np.eye(L * N)).max()
        assert resid < 1e-8

    @given(st.integers(2, 4), st.integers(1, 3), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_cls_preserves_full_cycle(self, b, c, seed):
        """The product of clustered blocks equals the product of all
        original blocks (cyclic order preserved, q = 0)."""
        L = b * c
        pc = random_pcyclic(L, 3, np.random.default_rng(seed), scale=0.6)
        red = cls(pc, c, 0, num_threads=1)
        full = np.eye(3)
        for j in range(L, 0, -1):
            full = full @ pc.block(j)
        clustered = np.eye(3)
        for i in range(red.L, 0, -1):
            clustered = clustered @ red.block(i)
        np.testing.assert_allclose(clustered, full, atol=1e-10)

    @given(
        st.integers(2, 5),
        st.integers(0, 2**16),
        st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_adjacency_roundtrips(self, L, seed, data):
        """down(up(G)) == G and left(right(G)) == G at any position."""
        N = 3
        pc = random_pcyclic(L, N, np.random.default_rng(seed), scale=0.5)
        Gd = np.linalg.inv(pc.to_dense())
        ops = AdjacencyOps(pc)
        k = data.draw(st.integers(1, L))
        l = data.draw(st.integers(1, L))
        g = Gd[(k - 1) * N : k * N, (l - 1) * N : l * N]
        km = torus_index(k - 1, L)
        np.testing.assert_allclose(
            ops.down(ops.up(g, k, l), km, l), g, atol=1e-7
        )
        lp = torus_index(l + 1, L)
        np.testing.assert_allclose(
            ops.left(ops.right(g, k, l), k, lp), g, atol=1e-7
        )


class TestMatvecProperty:
    @given(st.integers(1, 5), st.integers(1, 4), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_matvec_linear(self, L, N, seed):
        rng = np.random.default_rng(seed)
        pc = random_pcyclic(L, N, rng, scale=0.8)
        x = rng.standard_normal(L * N)
        y = rng.standard_normal(L * N)
        a, b = 2.5, -1.25
        np.testing.assert_allclose(
            pc.matvec(a * x + b * y),
            a * pc.matvec(x) + b * pc.matvec(y),
            atol=1e-9,
        )
