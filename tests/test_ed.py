"""Exact diagonalisation oracle + DQMC-vs-ED physics validation."""

import numpy as np
import pytest

from repro.dqmc import DQMC, DQMCConfig
from repro.dqmc.ed import ExactDiagonalization
from repro.hubbard import HubbardModel, RectangularLattice


def free_density(model: HubbardModel, beta: float) -> float:
    """Grand-canonical free-fermion density from the hopping spectrum."""
    eps = np.linalg.eigvalsh(-model.t * model.lattice.adjacency)
    f = 1.0 / (1.0 + np.exp(beta * (eps - model.mu)))
    return float(2.0 * f.sum() / model.N)


class TestEDInternals:
    def test_hilbert_dimension(self):
        ed = ExactDiagonalization(
            HubbardModel(RectangularLattice(2, 1), L=4, U=2.0, beta=1.0)
        )
        assert ed.dim == 16

    def test_size_guard(self):
        with pytest.raises(ValueError, match="too large"):
            ExactDiagonalization(
                HubbardModel(RectangularLattice(3, 3), L=4, U=2.0, beta=1.0)
            )

    def test_dimer_spectrum_vs_kron_construction(self):
        """Independent construction: build the dimer Hamiltonian with
        Jordan-Wigner kron products and compare the full spectrum."""
        t, U, mu = 1.0, 4.0, 0.3
        model = HubbardModel(RectangularLattice(2, 1), L=4, t=t, U=U, mu=mu, beta=1.0)
        ed = ExactDiagonalization(model)
        w_ed = ed._spectrum[0]

        # Jordan-Wigner: 4 fermionic modes ordered (up0, up1, dn0, dn1).
        I2 = np.eye(2)
        a = np.array([[0.0, 1.0], [0.0, 0.0]])  # annihilation
        Z = np.diag([1.0, -1.0])

        def mode_op(op, k, n=4):
            mats = [Z] * k + [op] + [I2] * (n - k - 1)
            out = mats[0]
            for m in mats[1:]:
                out = np.kron(out, m)
            return out

        c = [mode_op(a, k) for k in range(4)]
        n_ops = [ci.T @ ci for ci in c]
        # ED mode order is idx = up + 4*dn with site bit i -> map modes:
        # up0, up1 = modes 0,1; dn0, dn1 = modes 2,3.
        # The 2x1 periodic lattice has a single bond 0-1 (deduplicated).
        H = -t * (c[0].T @ c[1] + c[1].T @ c[0])
        H += -t * (c[2].T @ c[3] + c[3].T @ c[2])
        for i in range(2):
            H += U * (n_ops[i] - 0.5 * np.eye(16)) @ (n_ops[i + 2] - 0.5 * np.eye(16))
            H -= mu * (n_ops[i] + n_ops[i + 2])
        w_ref = np.linalg.eigvalsh(H)
        np.testing.assert_allclose(np.sort(w_ed), np.sort(w_ref), atol=1e-10)

    def test_free_limit_matches_fermi_function(self):
        for mu in (0.0, 0.5, -0.7):
            model = HubbardModel(
                RectangularLattice(2, 2), L=4, U=0.0, beta=1.5, mu=mu
            )
            ed = ExactDiagonalization(model)
            assert ed.density(1.5) == pytest.approx(
                free_density(model, 1.5), abs=1e-10
            )

    def test_half_filling_density_one(self):
        """mu = 0 with the PH-symmetric interaction pins <n> = 1."""
        for U in (0.0, 2.0, 8.0):
            model = HubbardModel(RectangularLattice(2, 2), L=4, U=U, beta=2.0)
            ed = ExactDiagonalization(model)
            assert ed.density(2.0) == pytest.approx(1.0, abs=1e-10)

    def test_docc_decreases_with_U(self):
        vals = []
        for U in (0.0, 2.0, 6.0):
            model = HubbardModel(RectangularLattice(2, 2), L=4, U=U, beta=2.0)
            vals.append(ExactDiagonalization(model).double_occupancy(2.0))
        assert vals[0] > vals[1] > vals[2]
        assert vals[0] == pytest.approx(0.25, abs=1e-10)  # uncorrelated

    def test_moment_identity(self):
        model = HubbardModel(RectangularLattice(2, 2), L=4, U=4.0, beta=2.0)
        ed = ExactDiagonalization(model)
        assert ed.local_moment(2.0) == pytest.approx(
            ed.density(2.0) - 2 * ed.double_occupancy(2.0)
        )

    def test_energy_monotone_in_beta(self):
        """<H> decreases toward the ground-state energy as beta grows."""
        model = HubbardModel(RectangularLattice(2, 2), L=4, U=4.0, beta=2.0)
        ed = ExactDiagonalization(model)
        assert ed.energy(4.0) < ed.energy(1.0)
        w = ed._spectrum[0]
        assert ed.energy(50.0) == pytest.approx(w.min(), abs=1e-6)


class TestDQMCAgainstED:
    """The end-to-end physics validation: DQMC must reproduce ED within
    statistical error + O(dtau^2) Trotter bias."""

    def run_dqmc(self, model, sweeps=(20, 120), seed=3, **kw):
        cfg = DQMCConfig(
            warmup_sweeps=sweeps[0],
            measurement_sweeps=sweeps[1],
            c=4,
            nwrap=4,
            bin_size=10,
            seed=seed,
            num_threads=1,
            measure_time_dependent=False,
            **kw,
        )
        return DQMC(model, cfg).run()

    def test_half_filled_plaquette(self):
        model = HubbardModel(RectangularLattice(2, 2), L=16, U=4.0, beta=2.0)
        ed = ExactDiagonalization(model)
        res = self.run_dqmc(model)
        for name, ref in (
            ("density", ed.density(2.0)),
            ("double_occupancy", ed.double_occupancy(2.0)),
            ("local_moment", ed.local_moment(2.0)),
        ):
            mean, err = res.observable(name)
            tol = max(4.0 * float(err), 0.012)  # 4 sigma + Trotter allowance
            assert abs(float(mean) - ref) < tol, (name, float(mean), ref)

    def test_doped_plaquette_reweighted(self):
        """mu != 0: the sign-reweighted estimator still matches ED."""
        model = HubbardModel(
            RectangularLattice(2, 2), L=32, U=4.0, beta=2.0, mu=0.6
        )
        ed = ExactDiagonalization(model)
        res = self.run_dqmc(model, sweeps=(30, 200), seed=9, sign_resync_every=20)
        mean, err = res.observable("density")
        assert abs(float(mean) - ed.density(2.0)) < max(4.0 * float(err), 0.015)
        assert 0.0 < res.average_sign <= 1.0

    def test_sign_machinery_at_half_filling(self):
        model = HubbardModel(RectangularLattice(2, 2), L=8, U=4.0, beta=2.0)
        sim = DQMC(model, DQMCConfig(warmup_sweeps=2, measurement_sweeps=0,
                                     c=4, seed=0, num_threads=1))
        sim.sweep()
        assert sim.config_sign == 1.0
        assert sim.resync_sign() == 0.0  # tracked sign was exact

    def test_sign_observable_reported(self):
        model = HubbardModel(RectangularLattice(2, 2), L=8, U=4.0, beta=2.0)
        res = self.run_dqmc(model, sweeps=(2, 6))
        sign_mean, _ = res.observable("sign")
        assert float(sign_mean) == pytest.approx(1.0)
        assert res.average_sign == pytest.approx(1.0)
