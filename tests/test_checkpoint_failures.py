"""Checkpoint failure paths: corruption, truncation, and kill-mid-save.

The happy path (bit-exact resume) lives in ``test_cubic_checkpoint``;
this file asserts the *unhappy* contract of
:mod:`repro.dqmc.checkpoint`:

* unreadable, truncated, or doctored checkpoints surface as the typed
  :class:`CheckpointError` (a ``ValueError``) with a pointed message —
  never a raw ``zipfile``/``KeyError`` traceback;
* a save that dies at any point — including between writing the temp
  file and the atomic rename — leaves the previous checkpoint intact
  and no temp-file droppings.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dqmc import DQMC, DQMCConfig
from repro.dqmc.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.hubbard import HubbardModel, RectangularLattice


def make_sim(seed: int = 9, nx: int = 3) -> DQMC:
    model = HubbardModel(RectangularLattice(nx, 3), L=8, U=4.0, beta=2.0)
    return DQMC(
        model,
        DQMCConfig(warmup_sweeps=0, measurement_sweeps=0, c=4, nwrap=4,
                   seed=seed, num_threads=1),
    )


class TestSavePath:
    def test_appends_npz_suffix_and_returns_real_path(self, tmp_path):
        returned = save_checkpoint(make_sim(), tmp_path / "ckpt")
        assert returned == tmp_path / "ckpt.npz"
        assert returned.exists()
        load_checkpoint(make_sim(), returned)  # round-trips

    def test_keeps_explicit_npz_suffix(self, tmp_path):
        returned = save_checkpoint(make_sim(), tmp_path / "ckpt.npz")
        assert returned == tmp_path / "ckpt.npz"
        assert returned.exists()

    def test_no_temp_droppings_after_save(self, tmp_path):
        save_checkpoint(make_sim(), tmp_path / "ckpt.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]


class TestLoadFailures:
    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(make_sim(), tmp_path / "nope.npz")

    def test_garbage_bytes_are_typed(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(make_sim(), path)

    def test_truncated_archive_is_typed(self, tmp_path):
        path = save_checkpoint(make_sim(), tmp_path / "ckpt.npz")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(make_sim(), path)

    def test_missing_entry_is_typed(self, tmp_path):
        path = save_checkpoint(make_sim(), tmp_path / "ckpt.npz")
        data = dict(np.load(path))
        del data["field"]
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="missing entry 'field'"):
            load_checkpoint(make_sim(), path)

    def test_version_mismatch_is_typed(self, tmp_path):
        path = save_checkpoint(make_sim(), tmp_path / "ckpt.npz")
        data = dict(np.load(path))
        data["version"] = np.array(999)
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="version 999 not supported"):
            load_checkpoint(make_sim(), path)

    def test_shape_mismatch_is_typed(self, tmp_path):
        path = save_checkpoint(make_sim(), tmp_path / "ckpt.npz")
        with pytest.raises(CheckpointError, match="does not match"):
            load_checkpoint(make_sim(nx=2), path)

    def test_corrupted_rng_state_is_typed(self, tmp_path):
        path = save_checkpoint(make_sim(), tmp_path / "ckpt.npz")
        data = dict(np.load(path))
        data["rng_state"] = np.frombuffer(b"{not json", dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="RNG state"):
            load_checkpoint(make_sim(), path)

    def test_checkpoint_error_is_a_value_error(self):
        # Callers that matched ValueError before the typed error existed
        # keep working.
        assert issubclass(CheckpointError, ValueError)


class TestCrashSafety:
    def stamp(self, sim: DQMC) -> np.ndarray:
        return sim.field.h.copy()

    def test_failure_before_rename_preserves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        a.sweep()
        save_checkpoint(a, path)
        old_field = self.stamp(a)

        a.sweep()  # state has moved on; the second save will die

        def exploding_replace(src, dst):
            raise OSError("simulated preemption at the rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated preemption"):
            save_checkpoint(a, path)
        monkeypatch.undo()

        # The old checkpoint is byte-for-byte usable and no temp file
        # litters the directory.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]
        b = make_sim(seed=1234)
        load_checkpoint(b, path)
        np.testing.assert_array_equal(b.field.h, old_field)

    def test_failure_during_write_preserves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "ckpt.npz"
        a = make_sim()
        save_checkpoint(a, path)
        old_field = self.stamp(a)

        a.sweep()

        def exploding_fsync(fd):
            # BaseException: even a KeyboardInterrupt mid-save must not
            # eat the previous checkpoint.
            raise KeyboardInterrupt

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(KeyboardInterrupt):
            save_checkpoint(a, path)
        monkeypatch.undo()

        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]
        b = make_sim(seed=7)
        load_checkpoint(b, path)
        np.testing.assert_array_equal(b.field.h, old_field)
