"""Sharded result cache + PDIV/transport service wiring.

Covers the fleet-serving additions:

* consistent-hash routing (stability, spread, minimal remap on grow);
* count-once hit/miss accounting at the routing layer (the shards'
  own counters stay silent) with a ``shard`` label;
* delta-base probes landing on the owning shard by construction;
* the scheduler solving through PDIV (``pdiv_partitions >= 2``) and
  over a named transport backend, verified against the FSI oracle;
* one serve request through an mp-shm fleet producing a single
  stitched trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.hubbard.hs_field import HSField
from repro.service import (
    GreensJob,
    GreensService,
    JobResult,
    ModelSpec,
    ServiceConfig,
    ShardedResultCache,
)
from repro.telemetry import runtime as _telemetry

SPEC = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=2.0, beta=1.0)


def make_job(seed: int, c: int = 4, pattern: Pattern = Pattern.DIAGONAL,
             q: int = 0, spec: ModelSpec = SPEC) -> GreensJob:
    field = HSField.random(spec.L, spec.N, np.random.default_rng(seed))
    return GreensJob.from_field(spec, field, c=c, pattern=pattern, q=q)


def oracle_blocks(job: GreensJob) -> dict:
    model = job.spec.build_model()
    pc = model.build_matrix(job.field(), job.spec.sigma)
    res = fsi(pc, job.c, pattern=job.pattern, q=job.q, num_threads=1)
    return dict(res.selected.items())


def result_of_bytes(fp: str, n: int) -> JobResult:
    job = make_job(seed=0)
    return JobResult(
        fingerprint=fp,
        selection=job.selection,
        blocks={(1, 1): np.zeros(n // 8, dtype=np.float64)},
    )


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    _telemetry.reset()
    yield
    _telemetry.reset()


# ----------------------------------------------------------------------
class TestShardedCacheRouting:
    def test_routing_is_stable_and_total(self):
        cache = ShardedResultCache(1 << 20, shards=4)
        keys = [f"fp-{i}" for i in range(200)]
        owners = [cache.shard_for(k) for k in keys]
        assert owners == [cache.shard_for(k) for k in keys]
        assert all(0 <= s < 4 for s in owners)
        # 200 keys over 4 shards: every shard owns some of the keyspace.
        assert len(set(owners)) == 4

    def test_consistent_hashing_minimal_remap(self):
        # Growing the fleet n -> n+1 must remap only a minority of
        # keys — the property that distinguishes ring hashing from
        # ``hash(key) % n`` (which remaps ~n/(n+1) of them).
        keys = [f"fp-{i}" for i in range(1000)]
        before = ShardedResultCache(1 << 20, shards=4)
        after = ShardedResultCache(1 << 20, shards=5)
        moved = sum(
            before.shard_for(k) != after.shard_for(k) for k in keys
        )
        assert moved / len(keys) < 0.5

    def test_put_lands_on_owning_shard(self):
        cache = ShardedResultCache(1 << 20, shards=4)
        res = result_of_bytes("some-fingerprint", 128)
        cache.put(res)
        owner = cache.shard_for("some-fingerprint")
        assert "some-fingerprint" in cache.shards[owner]
        for s, shard in enumerate(cache.shards):
            if s != owner:
                assert "some-fingerprint" not in shard

    def test_delta_base_probe_finds_owning_shard(self):
        # The whole point of fingerprint sharding: a peek for a base
        # fingerprint routes to the shard that stored it — no scan.
        cache = ShardedResultCache(1 << 20, shards=8)
        for i in range(20):
            cache.put(result_of_bytes(f"base-{i}", 128))
        for i in range(20):
            assert cache.peek(f"base-{i}") is not None

    def test_budget_split_across_shards(self):
        cache = ShardedResultCache(1001, shards=4)
        assert sum(s.max_bytes for s in cache.shards) == 1001
        assert cache.stats().bytes_budget == 1001

    def test_single_shard_degenerates(self):
        cache = ShardedResultCache(1 << 20, shards=1)
        cache.put(result_of_bytes("a", 128))
        assert cache.get("a") is not None
        assert cache.shard_for("anything") == 0

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedResultCache(1 << 20, shards=0)


class TestShardedCacheCounting:
    """Satellite: lookups counted exactly once, at the routing layer."""

    def test_count_once_with_shard_label(self):
        seen: list[tuple[int, bool]] = []
        cache = ShardedResultCache(
            1 << 20, shards=4, on_lookup=lambda s, hit: seen.append((s, hit))
        )
        assert cache.get("k") is None
        cache.put(result_of_bytes("k", 128))
        assert cache.get("k") is not None
        owner = cache.shard_for("k")
        assert seen == [(owner, False), (owner, True)]
        # Aggregate counts exactly one hit and one miss...
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        # ...attributed to the owning shard...
        per = cache.shard_stats()
        assert (per[owner].hits, per[owner].misses) == (1, 1)
        # ...and the shard caches themselves counted NOTHING (their
        # internal get() was bypassed) — no double counting possible.
        for shard in cache.shards:
            internal = (shard._hits, shard._misses)
            assert internal == (0, 0)

    def test_peek_is_uncounted(self):
        cache = ShardedResultCache(1 << 20, shards=2)
        cache.put(result_of_bytes("k", 128))
        assert cache.peek("k") is not None
        assert cache.peek("missing") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_recheck_miss_not_double_counted(self):
        cache = ShardedResultCache(1 << 20, shards=2)
        assert cache.get("k") is None                       # counted
        assert cache.get("k", count_misses=False) is None   # not counted
        assert cache.stats().misses == 1
        cache.put(result_of_bytes("k", 128))
        assert cache.get("k", count_misses=False) is not None  # hits count
        assert cache.stats().hits == 1

    def test_clear_resets_router_counters(self):
        cache = ShardedResultCache(1 << 20, shards=2)
        cache.put(result_of_bytes("k", 128))
        cache.get("k")
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)


# ----------------------------------------------------------------------
class TestShardedService:
    def test_sharded_service_counts_hits_once(self):
        cfg = ServiceConfig(workers=1, cache_shards=4, fleet_ranks=1)
        job = make_job(seed=7)
        with GreensService(cfg) as svc:
            first = svc.submit(job)
            first.result(timeout=60.0)
            second = svc.submit(job)
            second.result(timeout=60.0)
            assert second.cache_hit
            stats = svc.stats()
        assert stats["cache"]["hits"] == 1
        # Shard-labelled family agrees with the aggregate exactly.
        lookups = {
            values: child.value
            for values, child in svc.metrics.cache_lookups.samples()
        }
        owner = str(svc.cache.shard_for(job.fingerprint))
        assert lookups.get((owner, "hit")) == 1
        total = stats["cache"]["hits"] + stats["cache"]["misses"]
        assert sum(lookups.values()) == total
        # Per-shard breakdown is exposed in stats().
        shard_rows = stats["cache"]["shards"]
        assert len(shard_rows) == 4
        assert sum(r["hits"] for r in shard_rows) == 1

    def test_pdiv_serving_matches_oracle(self):
        spec = ModelSpec(nx=2, ny=2, L=16, t=1.0, U=2.0, beta=1.0)
        job = make_job(seed=11, c=4, pattern=Pattern.COLUMNS, q=1, spec=spec)
        cfg = ServiceConfig(
            workers=1, fleet_ranks=1, pdiv_partitions=2, transport="threads"
        )
        with GreensService(cfg) as svc:
            res = svc.submit(job).result(timeout=120.0)
        assert res.rung == "pdiv(2)"
        expect = oracle_blocks(job)
        assert set(res.blocks) == set(expect)
        for kl, blk in expect.items():
            np.testing.assert_allclose(res.blocks[kl], blk, atol=1e-10)

    def test_mpshm_fleet_produces_single_stitched_trace(self):
        # The tentpole acceptance: one serve request through an mp-shm
        # fleet yields ONE trace spanning scheduler -> pool worker ->
        # transport world -> every rank.
        telemetry.configure(sample_rate=1.0)
        jobs = [make_job(seed=100 + i) for i in range(2)]
        cfg = ServiceConfig(
            workers=1, fleet_ranks=2, batch_max=2, batch_window=0.25,
            transport="mp-shm",
        )
        with GreensService(cfg) as svc:
            tickets = [svc.submit(j) for j in jobs]
            results = [t.result(timeout=120.0) for t in tickets]
        for job, res in zip(jobs, results):
            expect = oracle_blocks(job)
            for kl, blk in expect.items():
                np.testing.assert_allclose(res.blocks[kl], blk, atol=1e-10)
        # Find the trace holding the transport spans; it must also hold
        # the request-side spans — i.e. everything stitched together.
        traces = _telemetry.collector().traces()
        fleet_traces = [
            spans for spans in traces.values()
            if any(s["name"] == "transport.world" for s in spans)
        ]
        assert len(fleet_traces) == 1
        names = {s["name"] for s in fleet_traces[0]}
        assert {
            "service.request", "service.dispatch", "worker.batch",
            "fleet.selected", "transport.world", "transport.rank",
        } <= names
        ranks = [s for s in fleet_traces[0] if s["name"] == "transport.rank"]
        assert len(ranks) == 2
        assert all(s["attributes"]["backend"] == "mp-shm" for s in ranks)
