"""Flop tracer: stages, nesting, thread attachment."""

import threading

import numpy as np
import pytest

from repro.core import _kernels as kr
from repro.perf.tracer import FlopTracer, current_tracers, record_flops


class TestBasicAccounting:
    def test_records_into_default_stage(self):
        with FlopTracer() as tr:
            record_flops(100.0, 8.0)
        assert tr.total_flops == 100.0
        assert tr.flops("default") == 100.0
        assert tr.mem_bytes() == 8.0

    def test_stage_attribution(self):
        with FlopTracer() as tr:
            with tr.stage("a"):
                record_flops(10.0)
            with tr.stage("b"):
                record_flops(20.0)
        assert tr.flops("a") == 10.0
        assert tr.flops("b") == 20.0
        assert tr.total_flops == 30.0

    def test_innermost_stage_wins(self):
        with FlopTracer() as tr:
            with tr.stage("outer"):
                with tr.stage("inner"):
                    record_flops(5.0)
        assert tr.flops("inner") == 5.0
        assert tr.flops("outer") == 0.0

    def test_unknown_stage_is_zero(self):
        tr = FlopTracer()
        assert tr.flops("nope") == 0.0
        assert tr.calls("nope") == 0

    def test_elapsed_positive(self):
        with FlopTracer() as tr:
            with tr.stage("work"):
                np.ones(10000).sum()
        assert tr.elapsed("work") > 0

    def test_summary_structure(self):
        with FlopTracer() as tr:
            with tr.stage("x"):
                record_flops(1.0, 2.0)
        s = tr.summary()
        assert s["x"]["flops"] == 1.0
        assert s["x"]["mem_bytes"] == 2.0
        assert s["x"]["calls"] == 1.0


class TestNesting:
    def test_no_tracer_is_noop(self):
        record_flops(1e9)  # must not raise
        assert current_tracers() == ()

    def test_nested_tracers_both_record(self):
        with FlopTracer() as outer:
            with FlopTracer() as inner:
                record_flops(7.0)
        assert outer.total_flops == 7.0
        assert inner.total_flops == 7.0

    def test_stack_restored_after_exit(self):
        with FlopTracer():
            assert len(current_tracers()) == 1
        assert current_tracers() == ()


class TestThreadAttachment:
    def test_worker_thread_invisible_without_attach(self):
        with FlopTracer() as tr:
            t = threading.Thread(target=lambda: record_flops(50.0))
            t.start()
            t.join()
        assert tr.total_flops == 0.0

    def test_attach_thread_records(self):
        with FlopTracer() as tr:

            def work():
                with tr.attach_thread():
                    record_flops(50.0)

            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert tr.total_flops == 50.0

    def test_concurrent_attach_is_safe(self):
        with FlopTracer() as tr:

            def work():
                with tr.attach_thread():
                    for _ in range(100):
                        record_flops(1.0)

            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert tr.total_flops == 400.0


class TestThreadLocalStages:
    """Stage labels are per-thread: concurrent stage() contexts on the
    same tracer must not clobber each other's attribution."""

    def test_concurrent_stages_attribute_correctly(self):
        barrier = threading.Barrier(4)
        with FlopTracer() as tr:

            def work(name, amount):
                with tr.attach_thread():
                    with tr.stage(name):
                        barrier.wait()  # all threads inside their stage
                        for _ in range(100):
                            record_flops(amount)

            threads = [
                threading.Thread(target=work, args=(f"s{i}", float(i + 1)))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i in range(4):
            assert tr.flops(f"s{i}") == 100.0 * (i + 1)
        assert tr.total_flops == 100.0 * (1 + 2 + 3 + 4)

    def test_attach_thread_inherits_stage_label(self):
        """parallel_for-style fan-out: workers inherit the caller's
        stage via attach_thread(stage=...)."""
        with FlopTracer() as tr:
            with tr.stage("wrp"):
                caller_stage = tr.current_stage

                def work():
                    with tr.attach_thread(stage=caller_stage):
                        record_flops(30.0)

                t = threading.Thread(target=work)
                t.start()
                t.join()
        assert tr.flops("wrp") == 30.0

    def test_stage_restored_per_thread(self):
        with FlopTracer() as tr:
            with tr.stage("outer"):
                with tr.stage("inner"):
                    pass
                assert tr.current_stage == "outer"
            assert tr.current_stage == "default"

    def test_main_thread_stage_unaffected_by_worker(self):
        with FlopTracer() as tr:
            with tr.stage("main"):

                def work():
                    with tr.attach_thread():
                        with tr.stage("worker"):
                            record_flops(1.0)

                t = threading.Thread(target=work)
                t.start()
                t.join()
                record_flops(2.0)
        assert tr.flops("worker") == 1.0
        assert tr.flops("main") == 2.0


class TestKernelIntegration:
    def test_gemm_count(self, rng):
        A = rng.standard_normal((3, 4))
        B = rng.standard_normal((4, 5))
        with FlopTracer() as tr:
            kr.gemm(A, B)
        assert tr.total_flops == 2 * 3 * 4 * 5

    def test_batched_gemm_count(self, rng):
        A = rng.standard_normal((6, 3, 4))
        B = rng.standard_normal((4, 5))
        with FlopTracer() as tr:
            kr.batched_gemm(A, B)
        assert tr.total_flops == 6 * 2 * 3 * 4 * 5

    def test_lu_factor_and_solve_counts(self, rng):
        A = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        B = rng.standard_normal((8, 3))
        with FlopTracer() as tr:
            f = kr.lu_factor(A)
            f.solve(B)
        assert tr.total_flops == pytest.approx(2 / 3 * 8**3 + 2 * 3 * 8**2)

    def test_solve_right_correct_and_counted(self, rng):
        A = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        B = rng.standard_normal((3, 5))
        with FlopTracer() as tr:
            X = kr.solve_right(B, A)
        np.testing.assert_allclose(X @ A, B, atol=1e-10)
        assert tr.total_flops > 0

    def test_qr_full_counted(self, rng):
        A = rng.standard_normal((8, 4))
        with FlopTracer() as tr:
            Q, R = kr.qr_full(A)
        np.testing.assert_allclose(Q @ R, A, atol=1e-12)
        assert tr.total_flops > 0

    def test_triangular_inverse(self, rng):
        R = np.triu(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        with FlopTracer() as tr:
            Rinv = kr.triangular_inverse(R)
        np.testing.assert_allclose(R @ Rinv, np.eye(6), atol=1e-10)
        assert tr.total_flops == pytest.approx(6**3 / 3)

    def test_gemm_into_no_allocation_semantics(self, rng):
        A = rng.standard_normal((4, 4))
        B = rng.standard_normal((4, 4))
        out = np.empty((4, 4))
        res = kr.gemm_into(out, A, B)
        assert res is out
        np.testing.assert_allclose(out, A @ B)

    def test_add_identity(self):
        A = np.zeros((3, 3))
        kr.add_identity(A, 2.5)
        np.testing.assert_array_equal(A, 2.5 * np.eye(3))
