"""The telemetry subsystem: spans, metrics, exporters, propagation.

Covers the acceptance scenarios of :mod:`repro.telemetry`:

* span context propagation across thread fan-out (``parallel_for``)
  and SimMPI rank threads — one trace id end to end;
* cross-process propagation: ``inject`` → carrier → ``activate_remote``
  round-trips the scheduler's dispatch context into a worker;
* head-based sampling is all-or-nothing per trace;
* the metric registry's get-or-create semantics and label handling;
* torn-read safety: concurrent ``Histogram.observe`` vs ``snapshot``;
* exporters: Chrome trace events, Prometheus text, the HTTP endpoint;
* the end-to-end service round trip — one ``GreensService`` request
  produces a single stitched trace containing scheduler, worker-process
  and CLS/BSOFI/WRP stage spans.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro import telemetry
from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.hubbard.hs_field import HSField
from repro.parallel.openmp import parallel_for
from repro.parallel.simmpi import SimMPI
from repro.perf.tracer import FlopTracer
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_SPAN,
    SpanContext,
    TraceCollector,
    Tracer,
    chrome_trace_events,
    current_context,
    prometheus_text,
    spans_to_jsonl,
    use_context,
)
from repro.telemetry.exporters import MetricsServer


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts from (and leaves behind) pristine global state."""
    telemetry.reset()
    yield
    telemetry.reset()


# ----------------------------------------------------------------------
# context + spans
# ----------------------------------------------------------------------

class TestSpanContext:
    def test_dict_round_trip(self):
        ctx = SpanContext("a" * 32, "b" * 16, sampled=False)
        again = SpanContext.from_dict(ctx.to_dict())
        assert again == ctx

    def test_no_ambient_context_by_default(self):
        assert current_context() is None

    def test_use_context_nests_and_restores(self):
        a = SpanContext("a" * 32, "1" * 16)
        b = SpanContext("a" * 32, "2" * 16)
        with use_context(a):
            assert current_context() is a
            with use_context(b):
                assert current_context() is b
            assert current_context() is a
        assert current_context() is None


class TestTracer:
    def test_child_shares_trace_id(self):
        tr = Tracer(TraceCollector())
        with tr.span("parent") as parent:
            with tr.span("child") as child:
                assert child.context.trace_id == parent.context.trace_id
                assert child.parent_id == parent.context.span_id

    def test_parent_none_forces_new_trace(self):
        tr = Tracer(TraceCollector())
        with tr.span("a") as a:
            root = tr.start_span("b", parent=None)
            assert root.context.trace_id != a.context.trace_id
            assert root.parent_id is None
            root.end()

    def test_records_land_in_collector(self):
        coll = TraceCollector()
        tr = Tracer(coll)
        with tr.span("work", stage="cls"):
            pass
        (rec,) = coll.snapshot()
        assert rec["name"] == "work"
        assert rec["attributes"] == {"stage": "cls"}
        assert rec["end_time"] >= rec["start_time"]

    def test_sampling_is_all_or_nothing(self):
        coll = TraceCollector()
        tr = Tracer(coll, sample_rate=0.5, seed=7)
        for _ in range(50):
            with tr.span("root"):
                with tr.span("child"):
                    pass
        traces = coll.traces()
        assert traces  # seed 7 samples at least one of 50 at rate 0.5
        for records in traces.values():
            assert {r["name"] for r in records} == {"root", "child"}

    def test_rate_zero_records_nothing(self):
        coll = TraceCollector()
        tr = Tracer(coll, sample_rate=0.0)
        with tr.span("root"):
            with tr.span("child"):
                pass
        assert len(coll) == 0

    def test_end_is_idempotent(self):
        coll = TraceCollector()
        sp = Tracer(coll).start_span("once")
        sp.end()
        sp.end()
        assert len(coll) == 1

    def test_collector_bounded(self):
        coll = TraceCollector(capacity=3)
        for i in range(5):
            coll.add({"trace_id": "t", "n": i})
        assert len(coll) == 3
        assert coll.dropped == 2


class TestRuntime:
    def test_disabled_span_is_shared_null(self):
        assert telemetry.span("anything") is NULL_SPAN
        assert telemetry.start_span("anything") is NULL_SPAN
        assert telemetry.inject() is None

    def test_null_span_accepts_full_span_api(self):
        with NULL_SPAN as sp:
            sp.set_attribute("k", 1)
            sp.end()
        assert sp.context is None

    def test_configure_enables_and_reset_disables(self):
        telemetry.configure(sample_rate=1.0)
        assert telemetry.enabled()
        with telemetry.span("on"):
            pass
        assert len(telemetry.collector()) == 1
        telemetry.reset()
        assert not telemetry.enabled()
        assert len(telemetry.collector()) == 0

    def test_inject_activate_round_trip(self):
        telemetry.configure()
        with telemetry.span("origin") as origin:
            carrier = telemetry.inject(origin.context)
        with telemetry.activate_remote(carrier) as local:
            with telemetry.span("remote"):
                pass
            records = local.drain()
        (rec,) = [r for r in records if r["name"] == "remote"]
        assert rec["trace_id"] == origin.context.trace_id
        assert rec["parent_id"] == origin.context.span_id

    def test_activate_remote_none_carrier_is_noop(self):
        with telemetry.activate_remote(None) as local:
            assert local is None
            assert telemetry.span("x") is NULL_SPAN

    def test_activate_remote_unsampled_is_noop(self):
        carrier = {"trace_id": "t" * 32, "span_id": "s" * 16, "sampled": False}
        with telemetry.activate_remote(carrier) as local:
            assert local is None

    def test_activate_remote_restores_prior_state(self):
        telemetry.configure()
        global_collector = telemetry.collector()
        carrier = {"trace_id": "t" * 32, "span_id": "s" * 16, "sampled": True}
        with telemetry.activate_remote(carrier):
            assert telemetry.collector() is not global_collector
        assert telemetry.collector() is global_collector
        assert telemetry.enabled()


# ----------------------------------------------------------------------
# propagation through the parallel layers
# ----------------------------------------------------------------------

class TestPropagation:
    def test_parallel_for_inherits_ambient_context(self):
        telemetry.configure()
        with telemetry.span("outer") as outer:

            def body(i):
                with telemetry.span("iter", i=i):
                    pass

            parallel_for(body, 8, num_threads=4)
        records = telemetry.collector().snapshot()
        iters = [r for r in records if r["name"] == "iter"]
        assert len(iters) == 8
        for r in iters:
            assert r["trace_id"] == outer.context.trace_id
            assert r["parent_id"] == outer.context.span_id

    def test_simmpi_ranks_share_trace(self):
        telemetry.configure()

        def main(comm):
            comm.barrier()
            return comm.rank

        with telemetry.span("driver") as driver:
            SimMPI(4).run(main)
        records = telemetry.collector().snapshot()
        ranks = [r for r in records if r["name"] == "simmpi.rank"]
        assert len(ranks) == 4
        assert {r["attributes"]["rank"] for r in ranks} == {0, 1, 2, 3}
        assert {r["trace_id"] for r in ranks} == {driver.context.trace_id}

    def test_fsi_emits_stage_spans_under_one_trace(self):
        telemetry.configure()
        model = pytest.importorskip("repro.hubbard.matrix").HubbardModel
        from repro.hubbard.lattice import RectangularLattice

        m = model(RectangularLattice(2, 2), L=8, U=2.0, beta=1.0)
        field = HSField.random(8, 4, np.random.default_rng(0))
        pc = m.build_matrix(field, +1)
        fsi(pc, 4, pattern=Pattern.DIAGONAL)
        traces = telemetry.collector().traces()
        assert len(traces) == 1
        names = {r["name"] for r in next(iter(traces.values()))}
        assert {"fsi", "cls", "cls.reduce", "bsofi", "wrp"} <= names

    def test_disabled_fsi_records_nothing(self):
        from repro.hubbard.lattice import RectangularLattice
        from repro.hubbard.matrix import HubbardModel

        m = HubbardModel(RectangularLattice(2, 2), L=8, U=2.0, beta=1.0)
        field = HSField.random(8, 4, np.random.default_rng(0))
        pc = m.build_matrix(field, +1)
        fsi(pc, 4)
        assert len(telemetry.collector()) == 0


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

class TestMetricRegistry:
    def test_get_or_create_returns_same_family(self):
        r = MetricRegistry()
        a = r.counter("repro_x_total", "help")
        b = r.counter("repro_x_total")
        assert a is b

    def test_kind_mismatch_raises(self):
        r = MetricRegistry()
        r.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("repro_x_total")

    def test_label_mismatch_raises(self):
        r = MetricRegistry()
        r.counter("repro_x_total", labels=("stage",))
        with pytest.raises(ValueError, match="labels"):
            r.counter("repro_x_total", labels=("op",))

    def test_labeled_children_are_get_or_create(self):
        r = MetricRegistry()
        fam = r.counter("repro_x_total", labels=("stage",))
        fam.labels(stage="cls").inc(3)
        fam.labels(stage="cls").inc(4)
        fam.labels(stage="wrp").inc(1)
        assert fam.labels(stage="cls").value == 7
        assert dict(
            (values, child.value) for values, child in fam.samples()
        ) == {("cls",): 7, ("wrp",): 1}

    def test_wrong_label_names_raise(self):
        r = MetricRegistry()
        fam = r.counter("repro_x_total", labels=("stage",))
        with pytest.raises(ValueError, match="expects labels"):
            fam.labels(op="send")

    def test_labelless_family_delegates(self):
        r = MetricRegistry()
        c = r.counter("repro_plain_total")
        c.inc()
        c.inc(2)
        assert c.value == 3
        h = r.histogram("repro_lat_seconds")
        h.observe(1.0)
        h.observe(3.0)
        assert h.mean == 2.0
        assert h.snapshot()["count"] == 2.0

    def test_labelled_family_rejects_bare_use(self):
        r = MetricRegistry()
        fam = r.counter("repro_x_total", labels=("stage",))
        with pytest.raises(ValueError, match="use .labels"):
            fam.inc()

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_callback_gauge_reads_live_and_rejects_set(self):
        depth = [5]
        g = Gauge(callback=lambda: depth[0])
        assert g.value == 5.0
        depth[0] = 9
        assert g.value == 9.0
        with pytest.raises(RuntimeError):
            g.set(1.0)


class TestHistogramConcurrency:
    def test_concurrent_observe_and_snapshot_never_torn(self):
        """Snapshots taken during a storm of observes must be internally
        consistent: percentiles bounded by min/max, mean = sum/count."""
        h = Histogram(capacity=512)
        stop = threading.Event()
        errors: list[str] = []

        def writer(offset):
            i = 0
            while not stop.is_set():
                h.observe(float(offset + i % 100))
                i += 1

        def reader():
            while not stop.is_set():
                s = h.snapshot()
                if s["count"] == 0:
                    continue
                if not (s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]):
                    errors.append(f"torn percentiles: {s}")
                if not (s["min"] <= s["mean"] <= s["max"]):
                    errors.append(f"torn mean: {s}")

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        timer = threading.Timer(0.3, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()
        assert not errors, errors[:3]

    def test_ring_keeps_recent_window(self):
        h = Histogram(capacity=4)
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            h.observe(v)
        assert h.count == 5  # exact running count over all observations
        assert h.max == 100.0
        assert h.percentile(100.0) == 100.0  # 100 is inside the window


class TestFlopTracerRegistry:
    def test_stage_flops_flushed_when_enabled(self):
        telemetry.configure()
        with FlopTracer() as tr:
            with tr.stage("cls"):
                from repro.perf.tracer import record_flops
                record_flops(123.0)
        fam = telemetry.registry().get("repro_stage_flops_total")
        assert fam is not None
        assert fam.labels(stage="cls").value == 123.0

    def test_no_registry_writes_when_disabled(self):
        with FlopTracer() as tr:
            with tr.stage("cls"):
                from repro.perf.tracer import record_flops
                record_flops(123.0)
        assert telemetry.registry().get("repro_stage_flops_total") is None
        assert tr.flops("cls") == 123.0  # legacy accounting unaffected

    def test_shim_import_path_still_works(self):
        from repro.perf.tracer import FlopTracer as Shimmed
        from repro.telemetry.flops import FlopTracer as Canonical
        assert Shimmed is Canonical


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------

def _sample_records():
    coll = TraceCollector()
    tr = Tracer(coll)
    with tr.span("root", stage="fsi"):
        with tr.span("leaf"):
            pass
    return coll.snapshot()


class TestExporters:
    def test_chrome_events_structure(self):
        events = chrome_trace_events(_sample_records())
        slices = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in slices} == {"root", "leaf"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in slices)
        assert len({e["args"]["trace_id"] for e in slices}) == 1
        assert metas and metas[0]["name"] == "thread_name"

    def test_chrome_trace_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        n = telemetry.write_chrome_trace(str(path), _sample_records())
        assert n == 2
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len([e for e in data["traceEvents"] if e["ph"] == "X"]) == 2

    def test_jsonl_one_object_per_span(self, tmp_path):
        records = _sample_records()
        lines = spans_to_jsonl(records).splitlines()
        assert len(lines) == len(records)
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {"root", "leaf"}
        path = tmp_path / "spans.jsonl"
        telemetry.write_jsonl(str(path), records)
        telemetry.write_jsonl(str(path), records)  # append mode
        assert len(path.read_text().splitlines()) == 2 * len(records)

    def test_prometheus_text_renders_all_kinds(self):
        r = MetricRegistry()
        r.counter("repro_jobs_total", "jobs").inc(4)
        r.gauge("repro_depth", "queue depth", callback=lambda: 7)
        h = r.histogram("repro_lat_seconds", "latency")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        fam = r.counter("repro_stage_flops_total", labels=("stage",))
        fam.labels(stage="cls").inc(10)
        text = prometheus_text(r)
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 4" in text
        assert "repro_depth 7" in text
        assert "# TYPE repro_lat_seconds summary" in text
        assert 'repro_lat_seconds{quantile="0.5"} 0.2' in text
        assert "repro_lat_seconds_count 3" in text
        assert 'repro_stage_flops_total{stage="cls"} 10' in text

    def test_prometheus_untouched_metric_exposes_zero(self):
        r = MetricRegistry()
        r.counter("repro_never_touched_total", "declared only")
        assert "repro_never_touched_total 0" in prometheus_text(r)

    def test_prometheus_later_registry_wins(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("repro_x_total").inc(1)
        b.counter("repro_x_total").inc(5)
        assert "repro_x_total 5" in prometheus_text(a, b)

    def test_metrics_server_scrape(self):
        r = MetricRegistry()
        r.counter("repro_scraped_total", "via http").inc(2)
        server = MetricsServer((r,), port=0)
        try:
            port = server.start()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as resp:
                body = resp.read().decode()
                assert resp.status == 200
            assert "repro_scraped_total 2" in body
        finally:
            server.stop()


# ----------------------------------------------------------------------
# end-to-end: one service request, one stitched trace
# ----------------------------------------------------------------------

class TestServiceRoundTrip:
    def test_request_stitches_one_trace_across_processes(self):
        from repro.service import (
            GreensJob,
            GreensService,
            ModelSpec,
            ServiceConfig,
        )

        telemetry.configure(sample_rate=1.0)
        spec = ModelSpec(nx=2, ny=2, L=8)
        field = HSField.random(spec.L, spec.N, np.random.default_rng(3))
        job = GreensJob.from_field(spec, field, c=4, q=0)
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            ticket = svc.submit(job)
            ticket.result(timeout=120.0)
            prom = prometheus_text(
                telemetry.registry(), svc.metrics.registry
            )

        traces = telemetry.collector().traces()
        stitched = [
            records
            for records in traces.values()
            if {r["name"] for r in records}
            >= {"service.request", "service.dispatch", "worker.job",
                "fsi", "cls", "bsofi", "wrp"}
        ]
        assert len(stitched) == 1, sorted(traces)
        records = stitched[0]
        # worker spans really come from another process
        assert len({r["pid"] for r in records}) >= 2
        # metrics from both registries in one exposition
        assert "repro_queue_depth" in prom
        assert "repro_cache_hit_rate" in prom
        assert 'repro_stage_flops_total{stage="cls"}' in prom
        assert "repro_jobs_submitted_total 1" in prom

    def test_cache_hit_records_request_span_only(self):
        from repro.service import (
            GreensJob,
            GreensService,
            ModelSpec,
            ServiceConfig,
        )

        telemetry.configure(sample_rate=1.0)
        spec = ModelSpec(nx=2, ny=2, L=8)
        field = HSField.random(spec.L, spec.N, np.random.default_rng(4))
        job = GreensJob.from_field(spec, field, c=4, q=0)
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            svc.submit(job).result(timeout=120.0)
            first_traces = len(telemetry.collector().traces())
            hit = svc.submit(job)
            hit.result(timeout=120.0)
            assert hit.cache_hit
        traces = telemetry.collector().traces()
        assert len(traces) == first_traces + 1
        hit_trace = max(
            traces.values(), key=lambda rs: min(r["start_time"] for r in rs)
        )
        names = {r["name"] for r in hit_trace}
        assert names == {"service.request"}
        (req,) = hit_trace
        assert req["attributes"]["cache_hit"] is True
