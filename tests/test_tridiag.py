"""Block tridiagonal FSI extension: container, Schur relations, pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import Pattern, seed_indices
from repro.tridiag import (
    BlockTridiagonal,
    SchurFactors,
    TridiagAdjacency,
    btd_determinant,
    btd_full_inverse,
    btd_solve,
    fsi_tridiagonal,
    laplacian_chain,
    random_btd,
    rgf_diagonal,
    run_bounds,
    schur_reduce,
)

L, N = 8, 3


@pytest.fixture(scope="module")
def setup():
    J = random_btd(L, N, np.random.default_rng(5))
    G = np.linalg.inv(J.to_dense())

    def blk(i, j):
        return G[(i - 1) * N : i * N, (j - 1) * N : j * N]

    return J, G, blk


class TestContainer:
    def test_shapes_and_access(self, setup):
        J, _, _ = setup
        assert J.L == L and J.N == N and J.shape == (L * N, L * N)
        np.testing.assert_array_equal(J.diag(1), J.A[0])
        np.testing.assert_array_equal(J.sub(2), J.E[1])
        np.testing.assert_array_equal(J.sup(L - 1), J.F[L - 2])

    def test_index_bounds(self, setup):
        J, _, _ = setup
        with pytest.raises(IndexError):
            J.diag(0)
        with pytest.raises(IndexError):
            J.sub(L)
        with pytest.raises(IndexError):
            J.sup(0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="E and F"):
            BlockTridiagonal(np.zeros((3, 2, 2)), np.zeros((1, 2, 2)), np.zeros((2, 2, 2)))
        with pytest.raises(ValueError, match=r"\(L, N, N\)"):
            BlockTridiagonal(np.zeros((2, 2)), np.zeros((1, 2, 2)), np.zeros((1, 2, 2)))

    def test_to_dense_structure(self, setup):
        J, _, _ = setup
        D = J.to_dense()
        # Block (3, 1) must be zero (tridiagonal).
        np.testing.assert_array_equal(D[2 * N : 3 * N, 0:N], 0.0)

    def test_matvec_matches_dense(self, setup):
        J, _, _ = setup
        x = np.random.default_rng(0).standard_normal((L * N, 2))
        np.testing.assert_allclose(J.matvec(x), J.to_dense() @ x, atol=1e-12)

    def test_single_block(self):
        J = BlockTridiagonal(np.eye(3)[None] * 2.0, np.zeros((0, 3, 3)), np.zeros((0, 3, 3)))
        x = np.ones(3)
        np.testing.assert_allclose(J.matvec(x), 2.0 * x)

    def test_laplacian_is_spd(self):
        J = laplacian_chain(6, 4)
        assert np.all(np.linalg.eigvalsh(J.to_dense()) > 0)

    def test_laplacian_validation(self):
        with pytest.raises(ValueError):
            laplacian_chain(4, 4, coupling=-1.0)


class TestSchurFactors:
    def test_diagonal_blocks(self, setup):
        J, _, blk = setup
        f = SchurFactors(J)
        for i in (1, 4, L):
            np.testing.assert_allclose(f.diagonal_block(i), blk(i, i), atol=1e-12)

    def test_boundary_identities(self, setup):
        """S_1 = A_1 and T_L = A_L; G_11 = T_1^{-1}, G_LL = S_L^{-1}."""
        J, _, blk = setup
        f = SchurFactors(J)
        np.testing.assert_array_equal(f.s(1), J.diag(1))
        np.testing.assert_array_equal(f.t(L), J.diag(L))
        np.testing.assert_allclose(np.linalg.inv(f.t(1)), blk(1, 1), atol=1e-12)
        np.testing.assert_allclose(np.linalg.inv(f.s(L)), blk(L, L), atol=1e-12)

    def test_rgf_diagonal(self, setup):
        J, _, blk = setup
        D = rgf_diagonal(J)
        for i in range(1, L + 1):
            np.testing.assert_allclose(D[i - 1], blk(i, i), atol=1e-12)


class TestAdjacency:
    @pytest.mark.parametrize("i", range(1, L + 1))
    @pytest.mark.parametrize("j", range(1, L + 1))
    def test_all_moves(self, setup, i, j):
        J, _, blk = setup
        ops = TridiagAdjacency(SchurFactors(J))
        g = blk(i, j)
        if i < L:
            np.testing.assert_allclose(ops.down(g, i, j), blk(i + 1, j), atol=1e-10)
        if i > 1:
            np.testing.assert_allclose(ops.up(g, i, j), blk(i - 1, j), atol=1e-10)
        if j < L:
            np.testing.assert_allclose(ops.right(g, i, j), blk(i, j + 1), atol=1e-10)
        if j > 1:
            np.testing.assert_allclose(ops.left(g, i, j), blk(i, j - 1), atol=1e-10)

    def test_move_off_chain_raises(self, setup):
        J, _, blk = setup
        ops = TridiagAdjacency(SchurFactors(J))
        with pytest.raises(IndexError):
            ops.down(blk(L, 1), L, 1)
        with pytest.raises(IndexError):
            ops.up(blk(1, 1), 1, 1)
        with pytest.raises(IndexError):
            ops.right(blk(1, L), 1, L)
        with pytest.raises(IndexError):
            ops.left(blk(1, 1), 1, 1)


class TestSolveAndDeterminant:
    def test_solve(self, setup):
        J, _, _ = setup
        rhs = np.random.default_rng(2).standard_normal((L * N, 3))
        x = btd_solve(J, rhs)
        np.testing.assert_allclose(J.matvec(x), rhs, atol=1e-10)

    def test_solve_vector(self, setup):
        J, _, _ = setup
        rhs = np.ones(L * N)
        x = btd_solve(J, rhs)
        assert x.shape == (L * N,)

    def test_solve_bad_shape(self, setup):
        J, _, _ = setup
        with pytest.raises(ValueError, match="leading dim"):
            btd_solve(J, np.ones(5))

    def test_determinant(self, setup):
        J, _, _ = setup
        sign, logabs = btd_determinant(J)
        ref_sign, ref_log = np.linalg.slogdet(J.to_dense())
        assert sign == pytest.approx(ref_sign)
        assert logabs == pytest.approx(ref_log, rel=1e-10)


class TestReduction:
    def test_run_bounds_cover_complement(self):
        for q in range(4):
            runs = run_bounds(12, 4, q)
            eliminated = set()
            for lo, hi, _, _ in runs:
                eliminated.update(range(lo, hi + 1))
            kept = set(seed_indices(12, 4, q))
            assert eliminated | kept == set(range(1, 13))
            assert not (eliminated & kept)

    @pytest.mark.parametrize("q", [0, 1, 3])
    def test_seed_property(self, setup, q):
        J, _, blk = setup
        c = 4
        red = schur_reduce(J, c, q, num_threads=1)
        Gt = btd_full_inverse(red)
        kept = seed_indices(L, c, q)
        for m, k in enumerate(kept):
            for mp, kp in enumerate(kept):
                np.testing.assert_allclose(
                    Gt[m, mp], blk(k, kp), atol=1e-11
                )

    def test_c_one_passthrough(self, setup):
        J, _, _ = setup
        assert schur_reduce(J, 1, 0) is J

    def test_threaded_matches_serial(self, setup):
        J, _, _ = setup
        a = schur_reduce(J, 4, 1, num_threads=1)
        b = schur_reduce(J, 4, 1, num_threads=4)
        np.testing.assert_allclose(a.A, b.A, atol=1e-14)
        np.testing.assert_allclose(a.E, b.E, atol=1e-14)

    def test_reduced_is_tridiagonal_of_right_size(self, setup):
        J, _, _ = setup
        red = schur_reduce(J, 2, 0, num_threads=1)
        assert red.L == L // 2 and red.N == N


class TestFullInverse:
    def test_matches_dense(self, setup):
        J, G, _ = setup
        GF = btd_full_inverse(J)
        stitched = np.block([[GF[i, j] for j in range(L)] for i in range(L)])
        np.testing.assert_allclose(stitched, G, atol=1e-10)


class TestFSITridiagonal:
    @pytest.mark.parametrize("pattern", list(Pattern))
    @pytest.mark.parametrize("q", [0, 2])
    def test_all_patterns(self, setup, pattern, q):
        J, G, _ = setup
        sel = fsi_tridiagonal(J, 4, pattern=pattern, q=q, num_threads=1)
        assert sel.max_relative_error(G) < 1e-9
        assert len(sel) == sel.selection.count()

    def test_threads_match_serial(self, setup):
        J, _, _ = setup
        a = fsi_tridiagonal(J, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        b = fsi_tridiagonal(J, 4, pattern=Pattern.COLUMNS, q=1, num_threads=4)
        for kl in a:
            np.testing.assert_array_equal(a[kl], b[kl])

    def test_random_q(self, setup):
        J, G, _ = setup
        sel = fsi_tridiagonal(J, 2, pattern=Pattern.DIAGONAL, rng=3)
        assert sel.max_relative_error(G) < 1e-10

    def test_rejects_bad_c(self, setup):
        J, _, _ = setup
        with pytest.raises(ValueError, match="divisor"):
            fsi_tridiagonal(J, 3)

    def test_laplacian_workload(self):
        J = laplacian_chain(12, 4)
        G = np.linalg.inv(J.to_dense())
        sel = fsi_tridiagonal(J, 4, pattern=Pattern.FULL_DIAGONAL, q=1)
        assert sel.max_relative_error(G) < 1e-12


class TestProperties:
    @given(
        st.integers(2, 4),
        st.integers(1, 3),
        st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_reduce_then_invert_matches_dense(self, b, c, seed):
        Lp = b * c
        J = random_btd(Lp, 2, np.random.default_rng(seed))
        G = np.linalg.inv(J.to_dense())
        red = schur_reduce(J, c, 0, num_threads=1)
        Gt = btd_full_inverse(red)
        kept = seed_indices(Lp, c, 0)
        for m, k in enumerate(kept):
            ref = G[(k - 1) * 2 : k * 2, (k - 1) * 2 : k * 2]
            np.testing.assert_allclose(Gt[m, m], ref, atol=1e-8)

    @given(st.integers(1, 6), st.integers(1, 4), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_solve_property(self, Lp, Np, seed):
        rng = np.random.default_rng(seed)
        J = random_btd(Lp, Np, rng)
        rhs = rng.standard_normal(Lp * Np)
        x = btd_solve(J, rhs)
        np.testing.assert_allclose(J.matvec(x), rhs, atol=1e-8)
