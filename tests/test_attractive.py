"""The attractive (negative-U) Hubbard model: charge-channel HS."""

import numpy as np
import pytest

from repro.core.greens_explicit import equal_time_greens
from repro.dqmc import DQMC, DQMCConfig
from repro.dqmc.correlations import pairing_correlation
from repro.dqmc.ed import ExactDiagonalization
from repro.dqmc.updates import gamma_factor, init_wrapped, metropolis_ratio
from repro.hubbard import HSField, HubbardModel, RectangularLattice


@pytest.fixture(scope="module")
def model():
    return HubbardModel(RectangularLattice(2, 2), L=8, t=1.0, U=-4.0, beta=2.0)


@pytest.fixture(scope="module")
def field():
    return HSField.random(8, 4, np.random.default_rng(1))


def weight(model, field):
    """Brute-force configuration weight ``e^{-nu sum h} det(M)^2``."""
    M = model.build_matrix(field, +1).to_dense()
    return np.exp(-model.nu * field.h.sum()) * np.linalg.det(M) ** 2


class TestChargeChannel:
    def test_flags(self, model):
        assert model.is_attractive
        assert model.spin_factor(+1) == 1
        assert model.spin_factor(-1) == 1
        assert model.nu > 0

    def test_both_spins_same_matrix(self, model, field):
        up = model.build_matrix(field, +1)
        dn = model.build_matrix(field, -1)
        np.testing.assert_array_equal(up.B, dn.B)

    def test_repulsive_unchanged(self):
        rep = HubbardModel(RectangularLattice(2, 2), L=4, U=4.0, beta=1.0)
        assert not rep.is_attractive
        assert rep.spin_factor(-1) == -1

    def test_weight_nonnegative(self, model):
        rng = np.random.default_rng(0)
        for seed in range(5):
            f = HSField.random(8, 4, np.random.default_rng(seed))
            assert weight(model, f) > 0

    def test_metropolis_ratio_matches_weight_ratio(self, model, field):
        l, i = 3, 2
        pc = model.build_matrix(field, +1)
        Gw = init_wrapped(equal_time_greens(pc, l), model)
        h = int(field.h[l - 1, i])
        g = gamma_factor(model, h, +1)
        r_b = metropolis_ratio(Gw, i, g)
        r = np.exp(2 * model.nu * h) * r_b**2
        flipped = field.copy()
        flipped.flip(l - 1, i)
        assert r == pytest.approx(
            weight(model, flipped) / weight(model, field), rel=1e-9
        )

    def test_slice_inverse_exact(self, model, field):
        B = model.slice_matrix(field.slice(0), +1)
        Binv = model.slice_matrix_inv(field.slice(0), +1)
        np.testing.assert_allclose(B @ Binv, np.eye(4), atol=1e-12)


class TestAttractivePhysics:
    def run_sim(self, model, sweeps=(20, 120), seed=4, **kw):
        return DQMC(
            model,
            DQMCConfig(
                warmup_sweeps=sweeps[0],
                measurement_sweeps=sweeps[1],
                c=4,
                nwrap=4,
                bin_size=10,
                seed=seed,
                num_threads=1,
                measure_time_dependent=False,
                **kw,
            ),
        ).run()

    def test_matches_ed(self, model):
        ed = ExactDiagonalization(model)
        res = self.run_sim(model, sweeps=(20, 150))
        for name, ref in (
            ("density", ed.density(2.0)),
            ("double_occupancy", ed.double_occupancy(2.0)),
        ):
            mean, err = res.observable(name)
            assert abs(float(mean) - ref) < max(4.0 * float(err), 0.02), name

    def test_pairing_enhanced_docc(self, model):
        """Attraction binds pairs: <n_up n_dn> far above the
        uncorrelated n_up * n_dn ~ 0.25."""
        res = self.run_sim(model)
        docc, _ = res.observable("double_occupancy")
        assert float(docc) > 0.3

    def test_no_sign_problem_doped(self):
        """Away from half filling the attractive model stays sign-free."""
        doped = HubbardModel(
            RectangularLattice(2, 2), L=8, U=-4.0, beta=2.0, mu=0.5
        )
        res = self.run_sim(doped, sweeps=(5, 10))
        assert res.average_sign == 1.0
        assert float(res.observable("density")[0]) > 1.0  # mu > 0 dopes up

    def test_wrap_drift_small(self, model):
        sim = DQMC(
            model,
            DQMCConfig(warmup_sweeps=0, measurement_sweeps=0, c=4, nwrap=4,
                       seed=1, num_threads=1),
        )
        for _ in range(2):
            sim.sweep()
        assert sim.max_wrap_drift < 1e-7

    def test_bundles_alias_both_spins(self, model):
        sim = DQMC(
            model,
            DQMCConfig(warmup_sweeps=1, measurement_sweeps=0, c=4, seed=2,
                       num_threads=1),
        )
        sim.sweep()
        bundles = sim.compute_greens(q=1)
        assert bundles[+1] is bundles[-1]

    def test_pairing_nonnegative_per_configuration(self, model):
        """With G_up == G_dn the pair correlation is G(i,j)^2 — exactly
        non-negative entrywise, configuration by configuration."""
        sim = DQMC(
            model,
            DQMCConfig(warmup_sweeps=2, measurement_sweeps=0, c=4, seed=3,
                       num_threads=1),
        )
        sim.sweep()
        b = sim.compute_greens(q=0)
        g = b[+1].full_diagonal[(1, 1)]
        pc = pairing_correlation(g, g, model.lattice)
        assert np.all(pc >= 0)
        assert pc[0] > 0
