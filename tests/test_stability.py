"""Cluster-size stability analysis (the c ~ sqrt(L) rule)."""

import numpy as np
import pytest

from repro.core.stability import (
    AccuracyPoint,
    cluster_condition_growth,
    divisors,
    fsi_accuracy_sweep,
    recommend_c,
)
from repro.hubbard import HSField, HubbardModel, RectangularLattice


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(64) == [1, 2, 4, 8, 16, 32, 64]

    def test_prime(self):
        assert divisors(13) == [1, 13]

    def test_one(self):
        assert divisors(1) == [1]

    def test_square(self):
        assert divisors(16) == [1, 2, 4, 8, 16]

    def test_invalid(self):
        with pytest.raises(ValueError):
            divisors(0)


class TestRecommendC:
    def test_paper_choice_L100(self):
        assert recommend_c(100) == 10

    def test_paper_choice_L64(self):
        assert recommend_c(64) == 8

    def test_never_exceeds_sqrt(self):
        for L in (12, 36, 48, 100, 144):
            c = recommend_c(L)
            assert c * c <= L
            assert L % c == 0

    def test_prime_L(self):
        assert recommend_c(17) == 1


@pytest.fixture(scope="module")
def low_temp_pc():
    """beta=6 Hubbard matrix: block products degrade visibly with c."""
    model = HubbardModel(RectangularLattice(2, 2), L=24, U=4.0, beta=6.0)
    field = HSField.random(24, 4, np.random.default_rng(11))
    return model.build_matrix(field, +1)


class TestConditionGrowth:
    def test_condition_grows_with_c(self, low_temp_pc):
        growth = cluster_condition_growth(low_temp_pc, [1, 2, 4, 8])
        assert growth[2] > growth[1]
        assert growth[8] > growth[2]

    def test_growth_is_roughly_exponential(self, low_temp_pc):
        growth = cluster_condition_growth(low_temp_pc, [2, 4, 8])
        # cond(c=8) should far exceed cond(c=2) squared-ish behaviour:
        assert growth[8] > growth[2] ** 1.5

    def test_validates_c(self, low_temp_pc):
        with pytest.raises(ValueError):
            cluster_condition_growth(low_temp_pc, [5])


class TestAccuracySweep:
    def test_points_and_monotone_flops(self, low_temp_pc):
        pts = fsi_accuracy_sweep(low_temp_pc, [2, 4, 8])
        assert [p.c for p in pts] == [2, 4, 8]
        assert all(isinstance(p, AccuracyPoint) for p in pts)
        # Fewer flops with larger c for the column pattern:
        assert pts[2].fsi_flops < pts[0].fsi_flops

    def test_all_accurate_at_moderate_beta(self, hubbard_pc):
        pts = fsi_accuracy_sweep(hubbard_pc, [2, 4])
        assert all(p.max_rel_error < 1e-10 for p in pts)

    def test_error_grows_with_c_at_low_temperature(self, low_temp_pc):
        pts = {p.c: p for p in fsi_accuracy_sweep(low_temp_pc, [2, 8])}
        # At beta = 6, clustering 8 slices loses digits vs clustering 2.
        assert pts[8].max_rel_error > pts[2].max_rel_error
