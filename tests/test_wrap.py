"""Wrapping (Alg. 2): every pattern grown from seeds vs. the dense oracle."""

import numpy as np
import pytest

from repro.core.bsofi import bsofi
from repro.core.cls import cls
from repro.core.patterns import Pattern, Selection
from repro.core.pcyclic import random_pcyclic
from repro.core.wrap import _up_down_steps, wrap, wrap_flops

L, N, C = 12, 3, 4


@pytest.fixture(scope="module")
def setup():
    pc = random_pcyclic(L, N, np.random.default_rng(21), scale=0.65)
    G = np.linalg.inv(pc.to_dense())
    seeds_by_q = {}
    for q in range(C):
        seeds_by_q[q] = bsofi(cls(pc, C, q, num_threads=1))
    return pc, G, seeds_by_q


class TestUpDownSplit:
    @pytest.mark.parametrize(
        "c,expected", [(2, (1, 0)), (3, (1, 1)), (4, (2, 1)), (5, (2, 2)), (10, (5, 4))]
    )
    def test_split(self, c, expected):
        assert _up_down_steps(c) == expected

    def test_split_covers_window(self):
        for c in range(2, 20):
            up, down = _up_down_steps(c)
            assert up + down == c - 1
            assert abs(up - down) <= 1


@pytest.mark.parametrize("q", range(C))
@pytest.mark.parametrize(
    "pattern",
    [
        Pattern.DIAGONAL,
        Pattern.SUBDIAGONAL,
        Pattern.COLUMNS,
        Pattern.ROWS,
        Pattern.FULL_DIAGONAL,
    ],
)
class TestAllPatterns:
    def test_matches_dense(self, setup, pattern, q):
        pc, G, seeds_by_q = setup
        sel = Selection(pattern, L=L, c=C, q=q)
        out = wrap(pc, seeds_by_q[q], sel, num_threads=1)
        assert len(out) == sel.count()
        assert out.max_relative_error(G) < 1e-8

    def test_threaded_matches_serial(self, setup, pattern, q):
        pc, _, seeds_by_q = setup
        sel = Selection(pattern, L=L, c=C, q=q)
        serial = wrap(pc, seeds_by_q[q], sel, num_threads=1)
        threaded = wrap(pc, seeds_by_q[q], sel, num_threads=4)
        for kl in serial:
            np.testing.assert_array_equal(serial[kl], threaded[kl])


class TestColumnsDetail:
    def test_every_row_present(self, setup):
        pc, _, seeds_by_q = setup
        sel = Selection(Pattern.COLUMNS, L=L, c=C, q=1)
        out = wrap(pc, seeds_by_q[1], sel, num_threads=1)
        for l in sel.seeds:
            for k in range(1, L + 1):
                assert (k, l) in out

    def test_column_accessor_stacks(self, setup):
        pc, G, seeds_by_q = setup
        sel = Selection(Pattern.COLUMNS, L=L, c=C, q=0)
        out = wrap(pc, seeds_by_q[0], sel, num_threads=1)
        col = out.column(sel.seeds[0])
        assert col.shape == (L, N, N)

    def test_error_radius_bounded(self, setup):
        """The split walk keeps every block within ~c/2 applications of a
        seed: worst error across the column stays near seed accuracy."""
        pc, G, seeds_by_q = setup
        sel = Selection(Pattern.COLUMNS, L=L, c=C, q=2)
        out = wrap(pc, seeds_by_q[2], sel, num_threads=1)
        assert out.max_relative_error(G) < 1e-9


class TestValidation:
    def test_wrong_seed_shape(self, setup):
        pc, _, seeds_by_q = setup
        sel = Selection(Pattern.COLUMNS, L=L, c=C, q=0)
        bad = seeds_by_q[0][:2, :2]
        with pytest.raises(ValueError, match="seed grid"):
            wrap(pc, bad, sel)

    def test_wrong_selection_L(self, setup):
        pc, _, seeds_by_q = setup
        sel = Selection(Pattern.COLUMNS, L=24, c=C, q=0)
        with pytest.raises(ValueError, match="selection L"):
            wrap(pc, seeds_by_q[0], sel)


class TestSubdiagonal:
    def test_q_zero_skips_L(self, setup):
        pc, _, seeds_by_q = setup
        sel = Selection(Pattern.SUBDIAGONAL, L=L, c=C, q=0)
        out = wrap(pc, seeds_by_q[0], sel, num_threads=1)
        assert len(out) == L // C - 1
        assert all(k != L for (k, _) in out)

    def test_q_nonzero_has_b_blocks(self, setup):
        pc, _, seeds_by_q = setup
        sel = Selection(Pattern.SUBDIAGONAL, L=L, c=C, q=1)
        out = wrap(pc, seeds_by_q[1], sel, num_threads=1)
        assert len(out) == L // C


class TestWrapFlops:
    def test_columns_formula(self):
        b = 100 // 10
        assert wrap_flops(100, 64, 10, Pattern.COLUMNS) == 3.0 * (
            b * 100 - b * b
        ) * 64**3

    def test_diagonal_free(self):
        assert wrap_flops(100, 64, 10, Pattern.DIAGONAL) == 0.0

    def test_rows_equals_columns(self):
        assert wrap_flops(48, 32, 6, Pattern.ROWS) == wrap_flops(
            48, 32, 6, Pattern.COLUMNS
        )

    def test_validates_c(self):
        with pytest.raises(ValueError):
            wrap_flops(10, 4, 3, Pattern.COLUMNS)
