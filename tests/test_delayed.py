"""Delayed Green's-function updates: equivalence with eager rank-1 kicks."""

import numpy as np
import pytest

from repro.core.greens_explicit import equal_time_greens
from repro.dqmc.delayed import DelayedGreens
from repro.dqmc.engine import DQMC, DQMCConfig
from repro.dqmc.updates import apply_flip, gamma_factor, init_wrapped, metropolis_ratio
from repro.hubbard import HubbardModel, RectangularLattice


@pytest.fixture
def Gw(hubbard_model, hubbard_field):
    pc = hubbard_model.build_matrix(hubbard_field, +1)
    return init_wrapped(equal_time_greens(pc, 2), hubbard_model)


class TestAccessors:
    def test_diag_col_row_no_pending(self, Gw):
        dg = DelayedGreens(Gw.copy(), delay=4)
        assert dg.diag(3) == pytest.approx(Gw[3, 3])
        np.testing.assert_allclose(dg.col(3), Gw[:, 3])
        np.testing.assert_allclose(dg.row(3), Gw[3, :])

    def test_pending_accessors_match_eager(self, Gw, hubbard_model):
        eager = Gw.copy()
        dg = DelayedGreens(Gw.copy(), delay=8)
        gamma = gamma_factor(hubbard_model, 1, +1)
        for i in (0, 4):
            r = metropolis_ratio(eager, i, gamma)
            rd = dg.ratio(i, gamma)
            assert rd == pytest.approx(r, rel=1e-12)
            apply_flip(eager, i, gamma, r)
            dg.accept(i, gamma, rd)
        assert dg.pending == 2
        # Entries read through the pending buffers must match eager.
        for i in range(Gw.shape[0]):
            assert dg.diag(i) == pytest.approx(eager[i, i], abs=1e-12)
        np.testing.assert_allclose(dg.col(2), eager[:, 2], atol=1e-12)
        np.testing.assert_allclose(dg.row(5), eager[5, :], atol=1e-12)

    def test_flush_matches_eager(self, Gw, hubbard_model):
        eager = Gw.copy()
        dg = DelayedGreens(Gw.copy(), delay=16)
        gamma = gamma_factor(hubbard_model, -1, +1)
        for i in (1, 3, 7):
            r = metropolis_ratio(eager, i, gamma)
            apply_flip(eager, i, gamma, r)
            dg.accept(i, gamma, dg.ratio(i, gamma))
        np.testing.assert_allclose(dg.matrix, eager, atol=1e-11)
        assert dg.pending == 0

    def test_auto_flush_at_capacity(self, Gw, hubbard_model):
        dg = DelayedGreens(Gw.copy(), delay=2)
        gamma = gamma_factor(hubbard_model, 1, +1)
        dg.accept(0, gamma, dg.ratio(0, gamma))
        assert dg.pending == 1
        dg.accept(1, gamma, dg.ratio(1, gamma))
        assert dg.pending == 0  # flushed automatically

    def test_validation(self, Gw):
        with pytest.raises(ValueError, match="delay"):
            DelayedGreens(Gw, delay=0)

    def test_flush_idempotent(self, Gw):
        dg = DelayedGreens(Gw.copy(), delay=4)
        before = dg.G.copy()
        dg.flush()
        dg.flush()
        np.testing.assert_array_equal(dg.G, before)


class TestEngineIntegration:
    @pytest.fixture
    def model(self):
        return HubbardModel(RectangularLattice(3, 3), L=8, U=4.0, beta=2.0)

    def make(self, model, delay):
        return DQMC(
            model,
            DQMCConfig(
                warmup_sweeps=1,
                measurement_sweeps=3,
                c=4,
                nwrap=4,
                bin_size=1,
                seed=11,
                num_threads=1,
                delay=delay,
            ),
        )

    def test_delayed_trajectory_matches_eager(self, model):
        """Same RNG stream, same accept/reject decisions, same field."""
        eager = self.make(model, delay=1)
        delayed = self.make(model, delay=8)
        eager.sweep()
        delayed.sweep()
        np.testing.assert_array_equal(eager.field.h, delayed.field.h)
        assert eager.stats.accepted == delayed.stats.accepted

    def test_delayed_observables_match(self, model):
        r1 = self.make(model, delay=1).run()
        r8 = self.make(model, delay=8).run()
        np.testing.assert_allclose(
            float(r1.observable("kinetic_energy")[0]),
            float(r8.observable("kinetic_energy")[0]),
            rtol=1e-8,
        )
        np.testing.assert_allclose(r1.spxx_mean, r8.spxx_mean, atol=1e-8)

    def test_delayed_wrap_drift_stays_small(self, model):
        sim = self.make(model, delay=4)
        for _ in range(2):
            sim.sweep()
        assert sim.max_wrap_drift < 1e-7

    def test_config_validation(self, model):
        with pytest.raises(ValueError, match="delay"):
            DQMCConfig(delay=0)
