"""Momentum-space utilities and Trotter extrapolation."""

import numpy as np
import pytest

from repro.core.greens_explicit import equal_time_greens
from repro.dqmc.autocorr import geweke_z
from repro.dqmc.correlations import afm_structure_factor
from repro.dqmc.fourier import (
    from_distance_classes,
    lattice_momenta,
    structure_factor_grid,
)
from repro.dqmc.trotter import ExtrapolationResult, extrapolate, richardson
from repro.hubbard import HSField, HubbardModel, RectangularLattice


class TestLatticeMomenta:
    def test_count_and_range(self):
        lat = RectangularLattice(4, 3)
        q = lattice_momenta(lat)
        assert q.shape == (12, 2)
        assert np.all(q >= 0) and np.all(q < 2 * np.pi)

    def test_contains_gamma_and_pi_point(self):
        q = lattice_momenta(RectangularLattice(4, 4))
        assert any(np.allclose(row, [0, 0]) for row in q)
        assert any(np.allclose(row, [np.pi, np.pi]) for row in q)


class TestStructureFactorGrid:
    @pytest.fixture
    def lattice(self):
        return RectangularLattice(4, 4)

    def test_parseval(self, lattice, rng):
        C = rng.standard_normal((16, 16))
        C = C + C.T
        _, S = structure_factor_grid(C, lattice)
        assert S.sum() == pytest.approx(np.trace(C), rel=1e-10)

    def test_identity_correlation_flat(self, lattice):
        _, S = structure_factor_grid(np.eye(16), lattice)
        np.testing.assert_allclose(S, 1.0 / 16 * 16, atol=1e-12)  # all 1

    def test_afm_point_matches_correlations_module(self, lattice):
        model = HubbardModel(lattice, L=8, U=4.0, beta=2.0)
        field = HSField.random(8, 16, np.random.default_rng(3))
        G_up = equal_time_greens(model.build_matrix(field, +1), 1)
        G_dn = equal_time_greens(model.build_matrix(field, -1), 1)
        # Build the pairwise szz matrix and transform.
        N = 16
        eye = np.eye(N)
        n_up = 1 - np.diag(G_up)
        n_dn = 1 - np.diag(G_dn)
        pair = 0.25 * (
            np.multiply.outer(n_up, n_up) + (eye - G_up.T) * G_up
            + np.multiply.outer(n_dn, n_dn) + (eye - G_dn.T) * G_dn
            - np.multiply.outer(n_up, n_dn) - np.multiply.outer(n_dn, n_up)
        )
        q, S = structure_factor_grid(pair, lattice)
        pi_idx = next(
            i for i, row in enumerate(q) if np.allclose(row, [np.pi, np.pi])
        )
        assert S[pi_idx] == pytest.approx(
            afm_structure_factor(G_up, G_dn, lattice), rel=1e-10
        )

    def test_shape_validation(self, lattice):
        with pytest.raises(ValueError, match="must be"):
            structure_factor_grid(np.eye(5), lattice)


class TestFromDistanceClasses:
    def test_roundtrip_class_constant(self):
        lat = RectangularLattice(3, 3)
        D, radii = lat.distance_classes
        vals = np.arange(len(radii), dtype=float)
        C = from_distance_classes(vals, lat)
        assert C.shape == (9, 9)
        for d in range(len(radii)):
            assert np.all(C[D == d] == d)

    def test_validation(self):
        with pytest.raises(ValueError, match="class values"):
            from_distance_classes(np.ones(2), RectangularLattice(3, 3))


class TestExtrapolation:
    def test_recovers_intercept(self):
        dt = np.array([0.25, 0.125, 0.0625, 0.03125])
        vals = 1.7 + 0.8 * dt**2
        r = extrapolate(dt, vals)
        assert isinstance(r, ExtrapolationResult)
        assert r.value == pytest.approx(1.7, abs=1e-10)
        assert r.coefficients[1] == pytest.approx(0.8, abs=1e-8)

    def test_weighted_errors_propagate(self):
        dt = np.array([0.2, 0.1, 0.05])
        vals = 2.0 + 3.0 * dt**2
        r = extrapolate(dt, vals, errors=np.full(3, 0.01))
        assert r.value == pytest.approx(2.0, abs=1e-8)
        assert 0 < r.error < 0.05

    def test_within_helper(self):
        r = extrapolate(
            np.array([0.2, 0.1, 0.05]),
            2.0 + 3.0 * np.array([0.2, 0.1, 0.05]) ** 2,
            errors=np.full(3, 0.01),
        )
        assert r.within(2.0)
        assert not r.within(5.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least"):
            extrapolate(np.array([0.1]), np.array([1.0]))
        with pytest.raises(ValueError, match="positive"):
            extrapolate(
                np.array([0.2, 0.1]), np.array([1.0, 1.0]), errors=np.array([0.1, 0.0])
            )

    def test_richardson_exact_for_pure_quadratic(self):
        f = lambda d: 5.0 - 2.0 * d**2
        assert richardson(0.2, f(0.2), 0.1, f(0.1)) == pytest.approx(5.0)

    def test_richardson_validation(self):
        with pytest.raises(ValueError):
            richardson(0.1, 1.0, 0.2, 1.0)


class TestGeweke:
    def test_equilibrated_small_z(self):
        rng = np.random.default_rng(1)
        zs = [geweke_z(rng.standard_normal(4000)) for _ in range(5)]
        assert np.mean(np.abs(zs)) < 2.5

    def test_drifting_large_z(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(4000) + np.linspace(3, 0, 4000)
        assert abs(geweke_z(x)) > 5

    def test_validation(self):
        with pytest.raises(ValueError):
            geweke_z(np.ones(100), first=0.7, last=0.7)
