"""Transport conformance suite — one contract, three backends.

Every test in :class:`TestConformance` runs identically over
``threads``, ``mp-shm``, and ``sockets``: the backends must agree on
values, on :class:`CommStats` tallies (collectives are implemented once
on the backend primitives, so fan-in/fan-out message counts are
identical by construction), and on failure semantics (typed timeouts,
abort propagation, merged partial stats).  The chaos-marker test at the
bottom SIGKILLs a rank mid-exchange through the ``mp-shm`` backend —
the process-transport equivalent of the ``worker.task`` crash site.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.resilience.chaos import FaultKind, FaultPlan, FaultRule
from repro.telemetry import runtime as telemetry
from repro.transport import (
    ANY_SOURCE,
    ANY_TAG,
    CommStats,
    RankError,
    SimMPI,
    TransportTimeoutError,
    available_backends,
    create_world,
    default_backend,
    get_transport,
)
from repro.transport.base import _payload_bytes
from repro.transport.mpshm import SHM_MIN_BYTES, MpShmTransport
from repro.transport.sockets import SocketTransport

BACKENDS = ["threads", "mp-shm", "sockets"]

# Generous world timeouts: process backends fork + handshake, and CI
# machines can be slow; a healthy run finishes in well under a second.
RUN_TIMEOUT = 120.0


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    return request.param


def world(backend: str, size: int):
    return create_world(size, backend=backend)


class TestRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {"threads", "mp-shm", "sockets"}

    def test_lookup_and_aliases(self):
        assert get_transport("threads") is SimMPI
        assert get_transport("simmpi") is SimMPI
        assert get_transport("mp-shm") is MpShmTransport
        assert get_transport("mpshm") is MpShmTransport
        assert get_transport("tcp") is SocketTransport

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown transport"):
            get_transport("carrier-pigeon")

    def test_env_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "mp-shm")
        assert default_backend() == "mp-shm"
        assert isinstance(create_world(2), MpShmTransport)
        monkeypatch.delenv("REPRO_TRANSPORT")
        assert default_backend() == "threads"

    def test_world_size_validated(self, backend):
        with pytest.raises(ValueError, match="world size"):
            world(backend, 0)


class TestConformance:
    def test_identity(self, backend):
        out = world(backend, 3).run(
            lambda c: (c.rank, c.size, c.Get_rank(), c.Get_size()),
            timeout=RUN_TIMEOUT,
        )
        assert out == [(r, 3, r, 3) for r in range(3)]

    def test_send_recv_ring(self, backend):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send({"from": comm.rank, "x": np.arange(4.0)}, dest=right, tag=5)
            msg = comm.recv(source=left, tag=5, timeout=30.0)
            assert np.allclose(msg["x"], np.arange(4.0))
            return msg["from"]

        out = world(backend, 3).run(main, timeout=RUN_TIMEOUT)
        assert out == [2, 0, 1]

    def test_numpy_send_decouples_from_sender(self, backend):
        def main(comm):
            if comm.rank == 0:
                a = np.ones(8)
                comm.send(a, dest=1, tag=1)
                a[:] = -1.0  # mutate after send: receiver must not see it
                return None
            got = comm.recv(source=0, tag=1, timeout=30.0)
            return float(got.sum())

        assert world(backend, 2).run(main, timeout=RUN_TIMEOUT)[1] == 8.0

    def test_Send_Recv_buffer(self, backend):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(12.0).reshape(3, 4), dest=1, tag=2)
                return None
            buf = np.empty((3, 4))
            comm.Recv(buf, source=0, tag=2, timeout=30.0)
            return buf.tolist()

        out = world(backend, 2).run(main, timeout=RUN_TIMEOUT)
        assert out[1] == np.arange(12.0).reshape(3, 4).tolist()

    def test_Send_strided_view_tallies_contiguous_bytes(self, backend):
        """A strided view must move (and tally) its materialized size."""
        base = np.arange(64.0).reshape(8, 8)
        view = base[:, ::2]  # non-contiguous, 32 elements

        def main(comm):
            if comm.rank == 0:
                comm.Send(view, dest=1, tag=3)
                return None
            buf = np.empty((8, 4))
            comm.Recv(buf, source=0, tag=3, timeout=30.0)
            return buf.tolist()

        w = world(backend, 2)
        out = w.run(main, timeout=RUN_TIMEOUT)
        assert out[1] == base[:, ::2].tolist()
        assert w.stats.bytes["Send"] == np.ascontiguousarray(view).nbytes

    def test_barrier(self, backend):
        def main(comm):
            for _ in range(3):
                comm.barrier()
            return comm.rank

        w = world(backend, 3)
        assert w.run(main, timeout=RUN_TIMEOUT) == [0, 1, 2]
        assert w.stats.messages["barrier"] == 9  # 3 calls x 3 ranks

    def test_bcast_gather_allreduce(self, backend):
        def main(comm):
            word = comm.bcast("hello" if comm.rank == 0 else None, root=0)
            everyone = comm.gather(comm.rank * 10, root=0)
            total = comm.allreduce(1)
            return word, everyone, total

        w = world(backend, 3)
        out = w.run(main, timeout=RUN_TIMEOUT)
        assert [o[0] for o in out] == ["hello"] * 3
        assert out[0][1] == [0, 10, 20]
        assert out[1][1] is None and out[2][1] is None
        assert [o[2] for o in out] == [3, 3, 3]
        # Tally contract shared with the threads baseline: one gather
        # record per rank per gather (the allreduce gathers once more).
        assert w.stats.messages["bcast"] == 2  # explicit + allreduce's
        assert w.stats.messages["gather"] == 6

    def test_scatter_reduce(self, backend):
        def main(comm):
            parts = [float(i) for i in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(parts, root=0)
            return comm.reduce(mine, root=0)

        out = world(backend, 4).run(main, timeout=RUN_TIMEOUT)
        assert out[0] == 6.0
        assert out[1:] == [None, None, None]

    def test_buffer_scatter_and_reduce(self, backend):
        def main(comm):
            send = (
                np.arange(comm.size * 4.0).reshape(comm.size, 4)
                if comm.rank == 0
                else None
            )
            recv = np.empty(4)
            comm.Scatter(send, recv, root=0)
            total = np.empty(4)
            comm.Reduce(recv, total if comm.rank == 0 else None, root=0)
            return total.tolist() if comm.rank == 0 else recv.tolist()

        out = world(backend, 3).run(main, timeout=RUN_TIMEOUT)
        assert out[1] == [4.0, 5.0, 6.0, 7.0]
        assert out[0] == [12.0, 15.0, 18.0, 21.0]  # column sums

    def test_any_source_any_tag(self, backend):
        def main(comm):
            if comm.rank == 0:
                seen = set()
                for _ in range(2):
                    msg = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, timeout=30.0)
                    seen.add(msg)
                return sorted(seen)
            comm.send(f"from-{comm.rank}", dest=0, tag=comm.rank * 7)
            return None

        out = world(backend, 3).run(main, timeout=RUN_TIMEOUT)
        assert out[0] == ["from-1", "from-2"]

    def test_isend_irecv_requests(self, backend):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend(np.full(4, 2.5), dest=1, tag=9)
                assert req.wait() is None
                return None
            req = comm.irecv(source=0, tag=9)
            value = req.wait(timeout=30.0)
            done, again = req.test()
            assert done and again is value
            return float(np.sum(value))

        assert world(backend, 2).run(main, timeout=RUN_TIMEOUT)[1] == 10.0

    def test_recv_timeout_is_typed(self, backend):
        def main(comm):
            if comm.rank == 0:
                try:
                    comm.recv(source=1, tag=42, timeout=0.05)
                except TransportTimeoutError:
                    return "typed"
                return "untyped"
            return None

        assert world(backend, 2).run(main, timeout=RUN_TIMEOUT)[0] == "typed"

    def test_request_wait_timeout_is_typed(self, backend):
        def main(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=42)
                try:
                    req.wait(timeout=0.05)
                except TransportTimeoutError as exc:
                    # TimeoutError subclass: old except-clauses still match.
                    assert isinstance(exc, TimeoutError)
                    return "typed"
                return "untyped"
            return None

        assert world(backend, 2).run(main, timeout=RUN_TIMEOUT)[0] == "typed"

    def test_abort_propagation(self, backend):
        """A raising rank unblocks peers waiting on it; merged partial
        stats from *all* ranks ride on the RankError."""

        def main(comm):
            comm.send(comm.rank, dest=(comm.rank + 1) % comm.size, tag=1)
            comm.recv(tag=1, timeout=30.0)
            if comm.rank == 1:
                raise ValueError("kapow")
            comm.recv(source=1, tag=99, timeout=30.0)  # never arrives

        w = world(backend, 3)
        with pytest.raises(RankError, match=r"rank 1 .*kapow.*partial comm") as ei:
            w.run(main, timeout=RUN_TIMEOUT)
        assert ei.value.rank == 1
        assert isinstance(ei.value.original, ValueError)
        # Every rank's warmup send survived into the merged tallies.
        assert ei.value.stats is not None
        assert ei.value.stats.messages["send"] == 3

    def test_ranks_share_one_trace(self, backend):
        telemetry.configure()

        def main(comm):
            comm.barrier()
            with telemetry.span("rank.work", rank=comm.rank):
                pass
            return comm.rank

        with telemetry.span("driver") as driver:
            world(backend, 3).run(main, timeout=RUN_TIMEOUT)
        records = telemetry.collector().snapshot()
        work = [r for r in records if r["name"] == "rank.work"]
        assert len(work) == 3
        assert {r["trace_id"] for r in work} == {driver.context.trace_id}


class TestPayloadBytes:
    def test_strided_view_matches_contiguous_copy(self):
        a = np.arange(100.0).reshape(10, 10)
        view = a[::2, 1::3]
        assert _payload_bytes(view) == np.ascontiguousarray(view).nbytes

    def test_transposed_view(self):
        a = np.arange(12.0).reshape(3, 4)
        assert _payload_bytes(a.T) == a.nbytes

    def test_broadcast_view_counts_materialized_extent(self):
        row = np.zeros(4)
        fat = np.broadcast_to(row, (8, 4))
        assert _payload_bytes(fat) == 8 * 4 * 8

    def test_object_dtype_recurses(self):
        arr = np.empty(2, dtype=object)
        arr[0] = np.zeros(10)
        arr[1] = b"xyz"
        assert _payload_bytes(arr) == 80 + 3

    def test_containers_and_scalars(self):
        assert _payload_bytes([np.zeros(2), b"ab"]) == 18
        assert _payload_bytes({"k": memoryview(b"abcd")}) == 4
        assert _payload_bytes(123) == 64


class TestExceptionPickling:
    """Typed errors must survive the result pipe of process backends —
    a degraded ``RuntimeError("RankError: ...")`` loses the rank, the
    original exception, and the partial stats callers key off."""

    def test_rank_error_round_trips(self):
        stats = CommStats()
        stats.record("send", 128)
        err = RankError(2, ValueError("kapow"), stats=stats)
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, RankError)
        assert back.rank == 2
        assert isinstance(back.original, ValueError)
        assert back.stats.messages == {"send": 1}
        assert back.stats.bytes == {"send": 128}
        # The regrown lock is live, not a pickled husk.
        back.stats.record("send", 64)
        assert back.stats.messages["send"] == 2

    def test_fleet_matrix_error_round_trips(self):
        from repro.parallel.hybrid import FleetMatrixError

        err = FleetMatrixError(5, ValueError("bad pivot"))
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, FleetMatrixError)
        assert back.matrix_index == 5
        assert isinstance(back.original, ValueError)

    def test_nested_rank_error_round_trips(self):
        # A fleet failing inside a process worker ships RankError(
        # FleetMatrixError(original)) through two pickle layers.
        from repro.parallel.hybrid import FleetMatrixError

        inner = FleetMatrixError(3, ValueError("inner"))
        back = pickle.loads(pickle.dumps(RankError(1, inner)))
        assert isinstance(back.original, FleetMatrixError)
        assert back.original.matrix_index == 3


class TestProcessBackends:
    """Behaviour specific to the out-of-process transports."""

    @pytest.mark.parametrize("backend", ["mp-shm", "sockets"])
    def test_large_buffer_roundtrip(self, backend):
        """Above SHM_MIN_BYTES the mp-shm path goes through shared
        memory; both backends must deliver bit-identical payloads and
        leak no segments."""
        shape = (200, 200)  # 320 kB > SHM_MIN_BYTES
        assert np.prod(shape) * 8 > SHM_MIN_BYTES
        before = {n for n in os.listdir("/dev/shm")} if os.path.isdir("/dev/shm") else set()

        def main(comm):
            rng = np.random.default_rng(7)
            data = rng.standard_normal(shape)
            if comm.rank == 0:
                comm.Send(data, dest=1, tag=11)
                return None
            buf = np.empty(shape)
            comm.Recv(buf, source=0, tag=11, timeout=60.0)
            return float(np.abs(buf - data).max())

        out = world(backend, 2).run(main, timeout=RUN_TIMEOUT)
        assert out[1] == 0.0
        if os.path.isdir("/dev/shm"):
            leaked = {
                n for n in os.listdir("/dev/shm") if n.startswith("psm_")
            } - before
            assert not leaked

    def test_sockets_rank_map_published_and_pinnable(self):
        w = world("sockets", 2)
        assert w.run(lambda c: c.rank, timeout=RUN_TIMEOUT) == [0, 1]
        assert w.rank_map is not None and set(w.rank_map) == {0, 1}
        for host, port in w.rank_map.values():
            assert host == "127.0.0.1" and port > 0
        # An explicit rank map pins the ports (the multi-machine config
        # surface); reuse the just-released ports.
        pinned = SocketTransport(2, rank_map=w.rank_map)
        assert pinned.run(lambda c: c.size, timeout=RUN_TIMEOUT) == [2, 2]
        assert pinned.rank_map == w.rank_map

    @pytest.mark.parametrize("backend", ["mp-shm", "sockets"])
    def test_rank_spans_ship_back_across_processes(self, backend):
        telemetry.configure()

        def main(comm):
            with telemetry.span("child.step", rank=comm.rank):
                pass
            return comm.rank

        with telemetry.span("driver") as driver:
            world(backend, 2).run(main, timeout=RUN_TIMEOUT)
        records = telemetry.collector().snapshot()
        ranks = [r for r in records if r["name"] == "transport.rank"]
        steps = [r for r in records if r["name"] == "child.step"]
        assert len(ranks) == 2 and len(steps) == 2
        trace_ids = {r["trace_id"] for r in ranks + steps}
        assert trace_ids == {driver.context.trace_id}


@pytest.mark.chaos
class TestChaosRankCrash:
    def test_fault_plan_crash_at_worker_task_through_mpshm(self, tmp_path):
        """A FaultPlan CRASH at the ``worker.task`` site fires inside an
        mp-shm rank process: SIGKILL mid-exchange.  The world must
        surface a RankError naming the dead rank, unblock the survivors
        quickly, and merge the survivors' partial CommStats."""
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(site="worker.task", kind=FaultKind.CRASH,
                          probability=0.5),
            ),
            state_dir=str(tmp_path / "chaos"),
        )
        size = 4
        doomed = sorted(
            r for r in range(size)
            if plan.decide("worker.task", f"rank-{r}") is not None
        )
        assert doomed and len(doomed) < size  # crash some, not all

        def main(comm):
            comm.send(np.ones(16), dest=(comm.rank + 1) % comm.size, tag=1)
            comm.recv(tag=1, timeout=30.0)
            rule = plan.decide("worker.task", f"rank-{comm.rank}")
            if rule is not None and rule.kind is FaultKind.CRASH:
                os.kill(os.getpid(), 9)
            comm.barrier()  # survivors block on the dead rank
            return comm.rank

        w = world("mp-shm", size)
        with pytest.raises(RankError, match="died with exit code -9") as ei:
            w.run(main, timeout=RUN_TIMEOUT)
        assert ei.value.rank in doomed
        # Survivors shipped their partial tallies before exiting: every
        # rank completed the warmup send, only survivors could report.
        assert ei.value.stats is not None
        assert ei.value.stats.messages["send"] >= size - len(doomed)
