"""Checkerboard split-operator propagator."""

import numpy as np
import pytest

from repro.hubbard.checkerboard import CheckerboardPropagator, bond_groups
from repro.hubbard.lattice import RectangularLattice


class TestBondGroups:
    def test_groups_are_matchings(self):
        for nx, ny in ((4, 4), (6, 6), (3, 5), (2, 3)):
            for group in bond_groups(RectangularLattice(nx, ny)):
                sites = [s for bond in group for s in bond]
                assert len(sites) == len(set(sites))

    def test_groups_cover_all_bonds(self):
        lat = RectangularLattice(4, 4)
        groups = bond_groups(lat)
        covered = {b for g in groups for b in g}
        assert len(covered) == int(lat.adjacency.sum()) // 2

    def test_even_square_needs_four_groups(self):
        assert len(bond_groups(RectangularLattice(4, 4))) == 4
        assert len(bond_groups(RectangularLattice(6, 6))) == 4


class TestPropagator:
    @pytest.fixture(scope="class")
    def cb(self):
        return CheckerboardPropagator(RectangularLattice(6, 6), t=1.0, dtau=0.1)

    def test_determinant_one(self, cb):
        """Each bond factor has unit determinant (tr K_g = 0)."""
        assert np.linalg.det(cb.matrix()) == pytest.approx(1.0, rel=1e-10)

    def test_symmetric_positive(self, cb):
        # Product of symmetric matrices isn't symmetric in general, but
        # must stay close to the symmetric exact exponential.
        B = cb.matrix()
        assert np.abs(B - B.T).max() < 0.05

    def test_inverse_roundtrip(self, cb):
        X = np.random.default_rng(0).standard_normal((36, 4))
        back = cb.apply_left(cb.apply_left(X), inverse=True)
        np.testing.assert_allclose(back, X, atol=1e-12)

    def test_apply_right_matches_matrix(self, cb):
        X = np.random.default_rng(1).standard_normal((3, 36))
        np.testing.assert_allclose(
            cb.apply_right(X), X @ cb.matrix(), atol=1e-12
        )

    def test_vector_input(self, cb):
        x = np.ones(36)
        assert cb.apply_left(x).shape == (36,)

    def test_validation(self):
        with pytest.raises(ValueError, match="dtau"):
            CheckerboardPropagator(RectangularLattice(2, 2), 1.0, 0.0)


class TestSplittingError:
    def test_first_order_scaling(self):
        """Plain splitting: error ~ O(dtau^2) (ratio ~4 on halving)."""
        lat = RectangularLattice(6, 6)
        e1 = CheckerboardPropagator(lat, 1.0, 0.2).splitting_error()
        e2 = CheckerboardPropagator(lat, 1.0, 0.1).splitting_error()
        assert 3.0 < e1 / e2 < 5.5

    def test_symmetric_scaling(self):
        """Symmetric splitting: error ~ O(dtau^3) (ratio ~8)."""
        lat = RectangularLattice(6, 6)
        e1 = CheckerboardPropagator(lat, 1.0, 0.2, symmetric=True).splitting_error()
        e2 = CheckerboardPropagator(lat, 1.0, 0.1, symmetric=True).splitting_error()
        assert 6.0 < e1 / e2 < 11.0

    def test_symmetric_beats_plain(self):
        lat = RectangularLattice(6, 6)
        plain = CheckerboardPropagator(lat, 1.0, 0.1).splitting_error()
        sym = CheckerboardPropagator(lat, 1.0, 0.1, symmetric=True).splitting_error()
        assert sym < 0.2 * plain

    def test_commuting_special_case_exact(self):
        """Period-4 rings: the bond groups commute and the splitting is
        exact (a fun lattice accident worth pinning down)."""
        err = CheckerboardPropagator(
            RectangularLattice(4, 4), 1.0, 0.2
        ).splitting_error()
        assert err < 1e-12

    def test_error_small_at_dqmc_dtau(self):
        """At a production dtau = 1/8 the splitting error is ~1e-3 —
        the same order as the Trotter error DQMC already accepts."""
        err = CheckerboardPropagator(
            RectangularLattice(6, 6), 1.0, 0.125
        ).splitting_error()
        assert err < 2e-2
