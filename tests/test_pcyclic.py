"""Unit tests for the block p-cyclic matrix container."""

import numpy as np
import pytest

from repro.core.pcyclic import (
    BlockPCyclic,
    pcyclic_from_general,
    random_pcyclic,
    torus_index,
)


class TestTorusIndex:
    def test_identity_in_range(self):
        for k in range(1, 9):
            assert torus_index(k, 8) == k

    def test_zero_wraps_to_L(self):
        assert torus_index(0, 8) == 8

    def test_L_plus_one_wraps_to_one(self):
        assert torus_index(9, 8) == 1

    def test_negative_indices(self):
        assert torus_index(-1, 8) == 7
        assert torus_index(-8, 8) == 8

    def test_far_out_of_range(self):
        assert torus_index(8 + 3 * 8, 8) == 8
        assert torus_index(25, 8) == 1

    def test_L_one(self):
        assert torus_index(0, 1) == 1
        assert torus_index(5, 1) == 1

    def test_invalid_L(self):
        with pytest.raises(ValueError, match="positive"):
            torus_index(1, 0)


class TestConstruction:
    def test_shape_properties(self, small_pc):
        assert small_pc.L == 6
        assert small_pc.N == 4
        assert small_pc.shape == (24, 24)

    def test_rejects_non_square_blocks(self):
        with pytest.raises(ValueError, match=r"\(L, N, N\)"):
            BlockPCyclic(np.zeros((3, 4, 5)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match=r"\(L, N, N\)"):
            BlockPCyclic(np.zeros((4, 4)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one block"):
            BlockPCyclic(np.zeros((0, 3, 3)))

    def test_integer_input_promoted_to_float(self):
        pc = BlockPCyclic(np.ones((2, 3, 3), dtype=np.int64))
        assert np.issubdtype(pc.dtype, np.floating)

    def test_storage_contiguous(self, small_pc):
        assert small_pc.B.flags["C_CONTIGUOUS"]


class TestBlockAccess:
    def test_block_one_based(self, small_pc):
        np.testing.assert_array_equal(small_pc.block(1), small_pc.B[0])
        np.testing.assert_array_equal(small_pc.block(6), small_pc.B[5])

    def test_block_torus_wrap(self, small_pc):
        np.testing.assert_array_equal(small_pc.block(0), small_pc.B[5])
        np.testing.assert_array_equal(small_pc.block(7), small_pc.B[0])

    def test_blocks_list(self, small_pc):
        blocks = small_pc.blocks([1, 3, 0])
        np.testing.assert_array_equal(blocks[2], small_pc.B[5])

    def test_block_is_view(self, small_pc):
        assert small_pc.block(2).base is small_pc.B


class TestToDense:
    def test_diagonal_is_identity(self, small_pc):
        M = small_pc.to_dense()
        N = small_pc.N
        for i in range(small_pc.L):
            np.testing.assert_array_equal(
                M[i * N : (i + 1) * N, i * N : (i + 1) * N], np.eye(N)
            )

    def test_subdiagonal_blocks(self, small_pc):
        M = small_pc.to_dense()
        N = small_pc.N
        for i in range(2, small_pc.L + 1):
            got = M[(i - 1) * N : i * N, (i - 2) * N : (i - 1) * N]
            np.testing.assert_array_equal(got, -small_pc.block(i))

    def test_corner_block(self, small_pc):
        M = small_pc.to_dense()
        N = small_pc.N
        got = M[:N, (small_pc.L - 1) * N :]
        np.testing.assert_array_equal(got, small_pc.block(1))

    def test_everything_else_zero(self):
        pc = random_pcyclic(4, 2, np.random.default_rng(0))
        M = pc.to_dense()
        N = 2
        for i in range(4):
            for j in range(4):
                if i == j or i == j + 1 or (i, j) == (0, 3):
                    continue
                blk = M[i * N : (i + 1) * N, j * N : (j + 1) * N]
                np.testing.assert_array_equal(blk, 0.0)

    def test_single_block_degenerate(self):
        B = np.array([[[0.5, 0.1], [0.0, 0.5]]])
        pc = BlockPCyclic(B)
        np.testing.assert_allclose(pc.to_dense(), np.eye(2) + B[0])


class TestMatvec:
    def test_matches_dense(self, small_pc, rng):
        x = rng.standard_normal(small_pc.shape[0])
        np.testing.assert_allclose(
            small_pc.matvec(x), small_pc.to_dense() @ x, atol=1e-12
        )

    def test_block_of_vectors(self, small_pc, rng):
        X = rng.standard_normal((small_pc.shape[0], 3))
        np.testing.assert_allclose(
            small_pc.matvec(X), small_pc.to_dense() @ X, atol=1e-12
        )

    def test_single_block(self, rng):
        pc = random_pcyclic(1, 5, rng)
        x = rng.standard_normal(5)
        np.testing.assert_allclose(pc.matvec(x), pc.to_dense() @ x, atol=1e-12)


class TestFromGeneral:
    def test_normalization_identity(self, rng):
        """A^{-1} = M^{-1} D^{-1} blockwise for a random general matrix."""
        L, N = 4, 3
        diag = [np.eye(N) + 0.3 * rng.standard_normal((N, N)) for _ in range(L)]
        sub = [rng.standard_normal((N, N)) * 0.4 for _ in range(L - 1)]
        corner = rng.standard_normal((N, N)) * 0.4
        pc, D = pcyclic_from_general(diag, sub, corner)

        # Assemble A densely.
        A = np.zeros((N * L, N * L))
        for i in range(L):
            A[i * N : (i + 1) * N, i * N : (i + 1) * N] = diag[i]
        for i in range(1, L):
            A[i * N : (i + 1) * N, (i - 1) * N : i * N] = sub[i - 1]
        A[:N, (L - 1) * N :] = corner

        G = np.linalg.inv(pc.to_dense())
        A_inv = np.zeros_like(A)
        for j in range(L):
            Dinv = np.linalg.inv(D[j])
            A_inv[:, j * N : (j + 1) * N] = G[:, j * N : (j + 1) * N] @ Dinv
        np.testing.assert_allclose(A_inv, np.linalg.inv(A), atol=1e-10)

    def test_wrong_sub_count(self, rng):
        diag = [np.eye(2)] * 3
        with pytest.raises(ValueError, match="sub-diagonal"):
            pcyclic_from_general(diag, [np.eye(2)] * 3, np.eye(2))


class TestRandomPCyclic:
    def test_deterministic_with_seed(self):
        a = random_pcyclic(3, 4, np.random.default_rng(7))
        b = random_pcyclic(3, 4, np.random.default_rng(7))
        np.testing.assert_array_equal(a.B, b.B)

    def test_scale_controls_norm(self, rng):
        small = random_pcyclic(3, 32, np.random.default_rng(1), scale=0.1)
        big = random_pcyclic(3, 32, np.random.default_rng(1), scale=1.0)
        assert np.all(small.norm_blocks() < big.norm_blocks())

    def test_invertible_at_moderate_scale(self, rng):
        pc = random_pcyclic(5, 8, rng, scale=0.5)
        M = pc.to_dense()
        assert np.linalg.cond(M) < 1e6


class TestDiagnostics:
    def test_norm_blocks_shape(self, small_pc):
        assert small_pc.norm_blocks().shape == (6,)

    def test_memory_bytes(self, small_pc):
        assert small_pc.memory_bytes() == 6 * 4 * 4 * 8
