"""Rectangular lattice: geometry, adjacency, distance classes."""

import numpy as np
import pytest

from repro.hubbard.lattice import RectangularLattice


class TestIndexing:
    def test_site_index_roundtrip(self):
        lat = RectangularLattice(4, 3)
        for i in range(lat.nsites):
            x, y = lat.coordinates(i)
            assert lat.site_index(x, y) == i

    def test_periodic_site_index(self):
        lat = RectangularLattice(4, 3)
        assert lat.site_index(4, 0) == lat.site_index(0, 0)
        assert lat.site_index(-1, 0) == lat.site_index(3, 0)
        assert lat.site_index(0, 3) == lat.site_index(0, 0)

    def test_coordinates_out_of_range(self):
        with pytest.raises(IndexError):
            RectangularLattice(2, 2).coordinates(4)

    def test_coords_table(self):
        lat = RectangularLattice(3, 2)
        assert lat.coords.shape == (6, 2)
        np.testing.assert_array_equal(lat.coords[4], [1, 1])

    def test_invalid_extents(self):
        with pytest.raises(ValueError):
            RectangularLattice(0, 3)


class TestNeighbors:
    def test_bulk_site_has_four(self):
        lat = RectangularLattice(4, 4)
        assert len(lat.neighbors(5)) == 4

    def test_neighbors_are_mutual(self):
        lat = RectangularLattice(4, 3)
        for i in range(lat.nsites):
            for j in lat.neighbors(i):
                assert i in lat.neighbors(j)

    def test_degenerate_extent_two(self):
        """nx=2: left and right neighbor coincide; deduplicated."""
        lat = RectangularLattice(2, 4)
        for i in range(lat.nsites):
            assert len(lat.neighbors(i)) == 3  # 1 horizontal + 2 vertical

    def test_chain_lattice(self):
        lat = RectangularLattice(5, 1)
        for i in range(5):
            assert len(lat.neighbors(i)) == 2

    def test_single_site(self):
        assert RectangularLattice(1, 1).neighbors(0) == []


class TestAdjacency:
    def test_symmetric_zero_diagonal(self):
        K = RectangularLattice(4, 4).adjacency
        np.testing.assert_array_equal(K, K.T)
        np.testing.assert_array_equal(np.diag(K), 0.0)

    def test_row_sums_bulk(self):
        K = RectangularLattice(4, 4).adjacency
        np.testing.assert_array_equal(K.sum(axis=1), 4.0)

    def test_binary_entries(self):
        K = RectangularLattice(3, 5).adjacency
        assert set(np.unique(K)) <= {0.0, 1.0}

    def test_4x4_edge_count(self):
        # 2D periodic square lattice: 2N edges.
        K = RectangularLattice(4, 4).adjacency
        assert K.sum() == 2 * 2 * 16


class TestDisplacement:
    def test_minimum_image_bounds(self):
        lat = RectangularLattice(5, 4)
        d = lat.displacement_table
        assert d[..., 0].min() >= -2 and d[..., 0].max() <= 2
        assert d[..., 1].min() >= -2 and d[..., 1].max() <= 2

    def test_self_displacement_zero(self):
        lat = RectangularLattice(3, 3)
        d = lat.displacement_table
        for i in range(9):
            np.testing.assert_array_equal(d[i, i], [0, 0])

    def test_antisymmetric_odd_extent(self):
        lat = RectangularLattice(5, 5)
        d = lat.displacement_table
        np.testing.assert_array_equal(d, -d.transpose(1, 0, 2))


class TestDistanceClasses:
    def test_class_zero_is_onsite(self):
        lat = RectangularLattice(4, 4)
        D, radii = lat.distance_classes
        assert radii[0] == 0.0
        np.testing.assert_array_equal(np.diag(D), 0)

    def test_radii_sorted_unique(self):
        _, radii = RectangularLattice(4, 4).distance_classes
        assert np.all(np.diff(radii) > 0)

    def test_symmetric(self):
        D, _ = RectangularLattice(4, 3).distance_classes
        np.testing.assert_array_equal(D, D.T)

    def test_d_max_order_N(self):
        lat = RectangularLattice(6, 6)
        assert 1 < lat.d_max <= lat.nsites

    def test_pairs_in_class_partition(self):
        lat = RectangularLattice(3, 3)
        total = sum(len(lat.pairs_in_class(d)) for d in range(lat.d_max))
        assert total == lat.nsites**2

    def test_pairs_in_class_consistent(self):
        lat = RectangularLattice(4, 4)
        D, _ = lat.distance_classes
        pairs = lat.pairs_in_class(1)
        assert all(D[i, j] == 1 for i, j in pairs)

    def test_pairs_out_of_range(self):
        with pytest.raises(IndexError):
            RectangularLattice(2, 2).pairs_in_class(99)

    def test_nearest_neighbor_class_matches_adjacency(self):
        lat = RectangularLattice(4, 4)
        D, radii = lat.distance_classes
        assert radii[1] == 1.0
        nn_mask = (D == 1).astype(float)
        np.testing.assert_array_equal(nn_mask, lat.adjacency)
