"""Every example script runs to completion (each self-asserts its
physics claims), executed as subprocesses against the installed package."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "dqmc_hubbard",
        "spin_correlations",
        "hybrid_cluster",
        "markov_resolvent",
        "twisted_boundaries",
        "structure_factors",
        "disorder_profiles",
        "attractive_pairing",
        "greens_service",
    } <= names
