"""Complex arithmetic through the whole pipeline + twisted boundaries."""

import numpy as np
import pytest

from repro.core.bsofi import bsofi, bsofi_qr
from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.core.pcyclic import BlockPCyclic
from repro.core.solve import PCyclicSolver, determinant
from repro.hubbard import HSField, RectangularLattice
from repro.hubbard.twisted import TwistedHubbardModel, twisted_adjacency
from repro.resilience import guards
from repro.resilience.guards import GuardConfig, NumericalHealthError


def random_complex_pc(L, N, seed, scale=0.5):
    rng = np.random.default_rng(seed)
    B = (rng.standard_normal((L, N, N)) + 1j * rng.standard_normal((L, N, N)))
    return BlockPCyclic(B * (scale / np.sqrt(N)))


@pytest.fixture(scope="module")
def twisted_setup():
    lattice = RectangularLattice(3, 3)
    model = TwistedHubbardModel(lattice, L=8, theta=(0.7, 0.3), U=4.0, beta=2.0)
    field = HSField.random(8, 9, np.random.default_rng(5))
    return model, field, model.build_matrix(field, +1)


class TestComplexCore:
    def test_bsofi_inverts_complex(self):
        pc = random_complex_pc(6, 4, seed=0)
        G = bsofi(pc)
        dense = np.block([[G[i, j] for j in range(6)] for i in range(6)])
        np.testing.assert_allclose(
            pc.to_dense() @ dense, np.eye(24), atol=1e-11
        )

    def test_panel_q_unitary(self):
        pc = random_complex_pc(4, 3, seed=1)
        f = bsofi_qr(pc)
        for i in range(3):
            np.testing.assert_allclose(
                f.Q[i].conj().T @ f.Q[i], np.eye(6), atol=1e-12
            )

    @pytest.mark.parametrize("pattern", [Pattern.COLUMNS, Pattern.FULL_DIAGONAL])
    def test_fsi_complex(self, pattern):
        pc = random_complex_pc(8, 4, seed=2)
        G = np.linalg.inv(pc.to_dense())
        res = fsi(pc, 4, pattern=pattern, q=1, num_threads=1)
        assert res.selected.max_relative_error(G) < 1e-10

    def test_solver_complex(self):
        pc = random_complex_pc(6, 5, seed=3)
        rng = np.random.default_rng(4)
        rhs = rng.standard_normal((30, 2)) + 1j * rng.standard_normal((30, 2))
        x = PCyclicSolver(pc).solve(rhs)
        np.testing.assert_allclose(pc.matvec(x), rhs, atol=1e-11)

    def test_real_rhs_complex_matrix(self):
        pc = random_complex_pc(4, 3, seed=5)
        x = PCyclicSolver(pc).solve(np.ones(12))
        assert np.iscomplexobj(x)
        np.testing.assert_allclose(pc.matvec(x), np.ones(12), atol=1e-11)

    def test_slogdet_complex_phase(self):
        pc = random_complex_pc(5, 4, seed=6)
        phase, logabs = determinant(pc)
        ref_phase, ref_log = np.linalg.slogdet(pc.to_dense())
        assert complex(phase) == pytest.approx(complex(ref_phase), abs=1e-10)
        assert logabs == pytest.approx(ref_log, rel=1e-10)
        assert abs(abs(complex(phase)) - 1.0) < 1e-10

    def test_real_matrix_still_returns_real_sign(self, small_pc):
        sign, _ = determinant(small_pc)
        assert isinstance(sign, float)


class TestTwistedBoundaries:
    def test_twisted_hopping_hermitian(self):
        lat = RectangularLattice(4, 4)
        Kt = twisted_adjacency(lat, (1.1, -0.4))
        np.testing.assert_allclose(Kt, Kt.conj().T, atol=1e-13)
        # Magnitudes unchanged — only phases attach.
        np.testing.assert_allclose(np.abs(Kt), lat.adjacency, atol=1e-13)

    def test_zero_twist_reduces_to_real(self, twisted_setup):
        model, field, _ = twisted_setup
        zero = TwistedHubbardModel(
            model.lattice, L=model.L, theta=(0.0, 0.0), U=model.U, beta=model.beta
        )
        pc_twisted = zero.build_matrix(field, +1)
        pc_real = zero.untwisted().build_matrix(field, +1)
        np.testing.assert_allclose(pc_twisted.B, pc_real.B, atol=1e-12)
        assert np.abs(pc_twisted.B.imag).max() < 1e-14

    def test_fsi_on_twisted_matrix(self, twisted_setup):
        _, _, pc = twisted_setup
        G = np.linalg.inv(pc.to_dense())
        res = fsi(pc, 4, pattern=Pattern.COLUMNS, q=2, num_threads=1)
        assert res.selected.max_relative_error(G) < 1e-11

    def test_equal_time_greens_hermitian_spectrum(self, twisted_setup):
        """G_kk of a twisted Hubbard matrix has eigenvalues in [0, 1]
        (fermionic occupation structure survives the twist)."""
        _, _, pc = twisted_setup
        res = fsi(pc, 4, pattern=Pattern.FULL_DIAGONAL, q=0, num_threads=1)
        for l in (1, 4, 8):
            ev = np.linalg.eigvals(res.selected[(l, l)])
            assert np.all(ev.real > -1e-9) and np.all(ev.real < 1 + 1e-9)

    def test_opposite_twist_conjugates_weight(self, twisted_setup):
        """theta -> -theta conjugates the matrix (only the Peierls
        phases are complex), hence conjugates det M — the symmetry that
        twist-averaged QMC exploits to keep averaged weights real."""
        model, field, pc_up = twisted_setup
        neg = TwistedHubbardModel(
            model.lattice, L=model.L,
            theta=(-model.theta[0], -model.theta[1]),
            U=model.U, beta=model.beta,
        )
        pc_neg = neg.build_matrix(field, +1)
        np.testing.assert_allclose(pc_neg.B, pc_up.B.conj(), atol=1e-13)
        ph_pos, log_pos = determinant(pc_up)
        ph_neg, log_neg = determinant(pc_neg)
        assert complex(ph_neg) == pytest.approx(
            np.conj(complex(ph_pos)), abs=1e-10
        )
        assert log_neg == pytest.approx(log_pos, rel=1e-12)

    def test_twist_averaged_density_real(self, twisted_setup):
        """Averaging over +-theta makes the density exactly real:
        G(-theta) = G(theta)^*."""
        model, field, pc_pos = twisted_setup
        neg = TwistedHubbardModel(
            model.lattice, L=model.L,
            theta=(-model.theta[0], -model.theta[1]),
            U=model.U, beta=model.beta,
        )
        pc_neg = neg.build_matrix(field, +1)
        res_pos = fsi(pc_pos, 4, pattern=Pattern.DIAGONAL, q=0, num_threads=1)
        res_neg = fsi(pc_neg, 4, pattern=Pattern.DIAGONAL, q=0, num_threads=1)
        k = res_pos.selection.seeds[0]
        tr = np.trace(res_pos.selected[(k, k)]) + np.trace(
            res_neg.selected[(k, k)]
        )
        assert abs(np.imag(tr)) < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            TwistedHubbardModel(RectangularLattice(2, 2), L=0, theta=(0, 0))


class TestComplexGuards:
    """The guard battery on complex data (the spectral serving path)."""

    def test_screen_finite_catches_either_component(self):
        clean = (np.ones((4, 4)) + 1j * np.ones((4, 4)))
        guards.screen_finite("test", clean)  # must not raise
        for poison in (np.nan, np.inf, -np.inf, 1j * np.nan, 1j * np.inf):
            bad = clean.copy()
            bad[2, 1] += poison
            with pytest.raises(NumericalHealthError) as err:
                guards.screen_finite("test", bad)
            assert err.value.check == "finite"

    def test_screen_finite_complex_no_sign_cancellation(self):
        """Magnitude screening: opposite-signed infinities in the two
        components cannot cancel to a finite quick-scan value."""
        bad = np.zeros((2, 2), dtype=np.complex128)
        bad[0, 0] = np.inf
        bad[1, 1] = -np.inf
        bad[0, 1] = 1j * np.inf
        bad[1, 0] = -1j * np.inf
        with pytest.raises(NumericalHealthError):
            guards.screen_finite("test", bad)

    def test_estimate_condition_complex_large_block(self):
        """The Hager/Higham path (N > 128) must probe the *conjugate*
        transpose for complex blocks; the estimate then lands within a
        modest factor of the exact 1-norm condition number."""
        n = 160
        rng = np.random.default_rng(17)
        A = (rng.standard_normal((n, n))
             + 1j * rng.standard_normal((n, n))) / np.sqrt(n)
        A += np.eye(n)  # keep it comfortably invertible
        est = guards.estimate_condition(A)
        exact = float(np.linalg.cond(A, 1))
        assert np.isfinite(est)
        assert 0.1 * exact <= est <= 10.0 * exact

    def test_estimate_condition_complex_nonfinite(self):
        A = np.eye(200, dtype=np.complex128)
        A[3, 3] = 1j * np.nan
        assert guards.estimate_condition(A) == np.inf

    def test_guarded_solve_and_inv_complex(self):
        rng = np.random.default_rng(23)
        A = (rng.standard_normal((8, 8))
             + 1j * rng.standard_normal((8, 8)) + 4.0 * np.eye(8))
        b = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        x = guards.guarded_solve(A, b)
        np.testing.assert_allclose(A @ x, b, atol=1e-12)
        inv = guards.guarded_inv(A)
        np.testing.assert_allclose(A @ inv, np.eye(8), atol=1e-12)
        A[0, 0] = np.inf * 1j
        with pytest.raises(NumericalHealthError):
            guards.guarded_solve(A, b)

    def test_cluster_conditions_complex(self):
        pc = random_complex_pc(6, 4, seed=31)
        config = GuardConfig(condition_samples=6)
        worst = guards.check_cluster_conditions(pc.B, config)
        assert np.isfinite(worst) and worst >= 1.0
        tight = GuardConfig(condition_samples=6, condition_limit=1.0)
        with pytest.raises(NumericalHealthError) as err:
            guards.check_cluster_conditions(pc.B, tight)
        assert err.value.check == "condition"

    def test_seed_residual_complex(self):
        pc = random_complex_pc(4, 3, seed=37)
        seeds = bsofi(pc)
        config = GuardConfig(residual_samples=4)
        residual = guards.check_seed_residual(pc.B, seeds, config)
        assert residual < 1e-12
        corrupted = seeds.copy()
        corrupted[0, 0] += 0.5
        with pytest.raises(NumericalHealthError) as err:
            guards.check_seed_residual(pc.B, corrupted, config)
        assert err.value.check == "residual"
