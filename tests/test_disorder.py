"""Site-dependent chemical potential (the disordered Hubbard model)."""

import numpy as np
import pytest

from repro.core.greens_explicit import equal_time_greens
from repro.dqmc import DQMC, DQMCConfig, density_profile, moment_profile
from repro.dqmc.ed import ExactDiagonalization
from repro.hubbard import HSField, HubbardModel, RectangularLattice


@pytest.fixture(scope="module")
def disordered_model():
    rng = np.random.default_rng(0)
    mu_i = rng.normal(0.0, 0.5, 4)
    return HubbardModel(RectangularLattice(2, 2), L=8, U=4.0, beta=2.0, mu=mu_i)


class TestConstruction:
    def test_array_mu_stored(self, disordered_model):
        assert np.ndim(disordered_model.mu) == 1
        assert disordered_model.mu.shape == (4,)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="site-dependent mu"):
            HubbardModel(RectangularLattice(2, 2), L=4, mu=np.ones(3))

    def test_scalar_still_works(self):
        m = HubbardModel(RectangularLattice(2, 2), L=4, mu=0.3)
        assert np.ndim(m.mu) == 0

    def test_slice_inverse_exact(self, disordered_model):
        field = HSField.random(8, 4, np.random.default_rng(1))
        B = disordered_model.slice_matrix(field.slice(0), +1)
        Binv = disordered_model.slice_matrix_inv(field.slice(0), +1)
        np.testing.assert_allclose(B @ Binv, np.eye(4), atol=1e-12)

    def test_uniform_array_equals_scalar(self):
        lat = RectangularLattice(2, 2)
        field = HSField.random(4, 4, np.random.default_rng(2))
        m_arr = HubbardModel(lat, L=4, U=4.0, beta=2.0, mu=np.full(4, 0.3))
        m_sc = HubbardModel(lat, L=4, U=4.0, beta=2.0, mu=0.3)
        np.testing.assert_allclose(
            m_arr.build_matrix(field).B, m_sc.build_matrix(field).B, atol=1e-14
        )


class TestUpdateAlgebra:
    def test_ratio_matches_determinant(self, disordered_model):
        from repro.dqmc.updates import gamma_factor, init_wrapped, metropolis_ratio

        field = HSField.random(8, 4, np.random.default_rng(3))
        pc = disordered_model.build_matrix(field, +1)
        Gw = init_wrapped(equal_time_greens(pc, 2), disordered_model)
        g = gamma_factor(disordered_model, int(field.h[1, 2]), +1)
        r = metropolis_ratio(Gw, 2, g)
        flipped = field.copy()
        flipped.flip(1, 2)
        d0 = np.linalg.det(pc.to_dense())
        d1 = np.linalg.det(disordered_model.build_matrix(flipped, +1).to_dense())
        assert r == pytest.approx(d1 / d0, rel=1e-9)


class TestPhysics:
    def test_dqmc_matches_ed(self, disordered_model):
        ed = ExactDiagonalization(disordered_model)
        sim = DQMC(
            disordered_model,
            DQMCConfig(warmup_sweeps=20, measurement_sweeps=120, c=4, nwrap=4,
                       bin_size=10, seed=5, num_threads=1,
                       measure_time_dependent=False, sign_resync_every=20),
        )
        res = sim.run()
        mean, err = res.observable("density")
        tol = max(4.0 * float(err), 0.02)
        assert abs(float(mean) - ed.density(2.0)) < tol

    def test_density_profile_tracks_potential(self, disordered_model):
        """Deeper wells (larger mu_i) attract more density, averaged
        over HS configurations."""
        profiles = []
        for seed in range(6):
            field = HSField.random(8, 4, np.random.default_rng(seed))
            gu = equal_time_greens(disordered_model.build_matrix(field, +1), 1)
            gd = equal_time_greens(disordered_model.build_matrix(field, -1), 1)
            profiles.append(density_profile(gu, gd))
        profile = np.mean(profiles, axis=0)
        mu = disordered_model.mu
        corr = np.corrcoef(profile, mu)[0, 1]
        assert corr > 0.9

    def test_moment_profile_identity(self, disordered_model):
        field = HSField.random(8, 4, np.random.default_rng(7))
        gu = equal_time_greens(disordered_model.build_matrix(field, +1), 1)
        gd = equal_time_greens(disordered_model.build_matrix(field, -1), 1)
        n = density_profile(gu, gd)
        m = moment_profile(gu, gd)
        n_up = 1 - np.diag(gu)
        n_dn = 1 - np.diag(gd)
        np.testing.assert_allclose(m, n - 2 * n_up * n_dn, atol=1e-12)
        assert np.all(m >= -1e-12)
