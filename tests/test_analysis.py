"""The invariant linter itself: engine, rules, baseline, CLI.

Every rule gets at least one *firing* fixture and one *clean* fixture
(including the deliberately-excluded near-misses: ``dict.get`` under a
lock, ``" ".join``, dynamic metric names, ``np.histogram``).  The
engine-level contracts — suppressions must carry reasons, unused
suppressions are findings, baselines round-trip and expire — are
covered separately, as is the CLI surface (``repro lint`` exit codes,
formats, ``--rule`` filtering).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    ENGINE_RULE_ID,
    Finding,
    analyze_file,
    analyze_paths,
    default_rules,
    finding_key,
    rule_classes,
)
from repro.analysis.rules import (
    GuardedSolversOnly,
    MetricNameContract,
    MonotonicClocks,
    NoBlockingUnderLock,
    NoSilentExcept,
    PicklableExceptions,
    SharedMemoryLifecycle,
    SpanPropagation,
)

REPO = Path(__file__).resolve().parent.parent


def lint(tmp_path: Path, relpath: str, code: str, rules=None) -> list[Finding]:
    """Write ``code`` at ``relpath`` under a scratch tree and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(code)
    return analyze_file(
        target,
        rules if rules is not None else default_rules(),
        display_path=relpath,
    )


def rule_ids(findings) -> list[str]:
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# RPR001 picklable exceptions
# ----------------------------------------------------------------------

class TestRPR001:
    def test_fires_on_multiarg_exception_without_reduce(self, tmp_path):
        findings = lint(tmp_path, "transport/errs.py", (
            "class ShardError(RuntimeError):\n"
            "    def __init__(self, shard, cause):\n"
            "        super().__init__(f'{shard}: {cause}')\n"
        ), [PicklableExceptions()])
        assert rule_ids(findings) == ["RPR001"]

    def test_clean_with_reduce(self, tmp_path):
        findings = lint(tmp_path, "transport/errs.py", (
            "class ShardError(RuntimeError):\n"
            "    def __init__(self, shard, cause):\n"
            "        super().__init__(f'{shard}: {cause}')\n"
            "        self.shard, self.cause = shard, cause\n"
            "    def __reduce__(self):\n"
            "        return (type(self), (self.shard, self.cause))\n"
        ), [PicklableExceptions()])
        assert findings == []

    def test_clean_single_arg_and_out_of_scope(self, tmp_path):
        code = (
            "class SimpleError(RuntimeError):\n"
            "    def __init__(self, message):\n"
            "        super().__init__(message)\n"
        )
        assert lint(tmp_path, "transport/errs.py", code,
                    [PicklableExceptions()]) == []
        multi = (
            "class RichError(RuntimeError):\n"
            "    def __init__(self, a, b):\n"
            "        super().__init__(a)\n"
        )
        # service/errors.py is outside the transported-exception scope.
        assert lint(tmp_path, "service/errors.py", multi,
                    [PicklableExceptions()]) == []


# ----------------------------------------------------------------------
# RPR002 monotonic clocks
# ----------------------------------------------------------------------

class TestRPR002:
    def test_fires_on_wall_clock(self, tmp_path):
        findings = lint(tmp_path, "service/thing.py", (
            "import time\n"
            "def elapsed(t0):\n"
            "    return time.time() - t0\n"
        ), [MonotonicClocks()])
        assert rule_ids(findings) == ["RPR002"]

    def test_fires_on_bare_imported_time(self, tmp_path):
        findings = lint(tmp_path, "bench/thing.py", (
            "from time import time\n"
            "start = time()\n"
        ), [MonotonicClocks()])
        assert rule_ids(findings) == ["RPR002"]

    def test_clean_monotonic(self, tmp_path):
        findings = lint(tmp_path, "service/thing.py", (
            "import time\n"
            "def elapsed(t0):\n"
            "    return time.perf_counter() - t0\n"
        ), [MonotonicClocks()])
        assert findings == []

    def test_allowlisted_sites(self, tmp_path):
        spans = lint(tmp_path, "telemetry/spans.py", (
            "import time\n"
            "stamp = time.time()\n"
        ), [MonotonicClocks()])
        assert spans == []
        metrics_ok = lint(tmp_path, "service/metrics.py", (
            "import time\n"
            "class ServiceMetrics:\n"
            "    def __init__(self):\n"
            "        self.started_at_epoch = time.time()\n"
        ), [MonotonicClocks()])
        assert metrics_ok == []
        # ...but only inside __init__: elsewhere in the same file fires.
        metrics_bad = lint(tmp_path, "service/metrics.py", (
            "import time\n"
            "class ServiceMetrics:\n"
            "    def stats(self):\n"
            "        return time.time()\n"
        ), [MonotonicClocks()])
        assert rule_ids(metrics_bad) == ["RPR002"]


# ----------------------------------------------------------------------
# RPR003 blocking under lock
# ----------------------------------------------------------------------

class TestRPR003:
    def test_fires_on_sleep_under_lock(self, tmp_path):
        findings = lint(tmp_path, "transport/x.py", (
            "import threading, time\n"
            "lock = threading.Lock()\n"
            "def f(conn):\n"
            "    with lock:\n"
            "        time.sleep(1)\n"
            "        data = conn.recv()\n"
            "    return data\n"
        ), [NoBlockingUnderLock()])
        assert rule_ids(findings) == ["RPR003", "RPR003"]

    def test_fires_on_queue_get_and_future_result(self, tmp_path):
        findings = lint(tmp_path, "service/x.py", (
            "def f(self):\n"
            "    with self._lock:\n"
            "        item = self.queue.get(timeout=5)\n"
            "        out = future.result()\n"
        ), [NoBlockingUnderLock()])
        assert rule_ids(findings) == ["RPR003", "RPR003"]

    def test_clean_outside_lock_and_near_misses(self, tmp_path):
        findings = lint(tmp_path, "transport/x.py", (
            "def f(self, d, parts):\n"
            "    with self._lock:\n"
            "        v = d.get('key')\n"          # dict.get: fine
            "        s = ' '.join(parts)\n"        # str join: fine
            "        def later():\n"
            "            time.sleep(1)\n"          # deferred: fine
            "        return v, s, later\n"
        ), [NoBlockingUnderLock()])
        assert findings == []

    def test_clean_blocking_after_release(self, tmp_path):
        findings = lint(tmp_path, "transport/x.py", (
            "def f(self, conn):\n"
            "    with self._lock:\n"
            "        state = self._state\n"
            "    return conn.recv()\n"
        ), [NoBlockingUnderLock()])
        assert findings == []


# ----------------------------------------------------------------------
# RPR004 guarded solvers
# ----------------------------------------------------------------------

class TestRPR004:
    def test_fires_outside_core(self, tmp_path):
        findings = lint(tmp_path, "dqmc/fit.py", (
            "import numpy as np\n"
            "def f(A, b):\n"
            "    return np.linalg.solve(A, b), np.linalg.inv(A)\n"
        ), [GuardedSolversOnly()])
        assert rule_ids(findings) == ["RPR004", "RPR004"]

    def test_clean_in_core_and_guarded(self, tmp_path):
        raw = (
            "import numpy as np\n"
            "def f(A, b):\n"
            "    return np.linalg.solve(A, b)\n"
        )
        assert lint(tmp_path, "core/bsofi.py", raw,
                    [GuardedSolversOnly()]) == []
        guarded = (
            "from repro.resilience.guards import guarded_solve\n"
            "def f(A, b):\n"
            "    return guarded_solve(A, b, site='fit')\n"
        )
        assert lint(tmp_path, "dqmc/fit.py", guarded,
                    [GuardedSolversOnly()]) == []


# ----------------------------------------------------------------------
# RPR005 metric names
# ----------------------------------------------------------------------

class TestRPR005:
    def test_fires_on_bad_name_and_double_registration(self, tmp_path):
        findings = lint(tmp_path, "service/m.py", (
            "c1 = registry.counter('jobs_total', 'no prefix')\n"
            "c2 = registry.counter('repro_jobs_total', 'ok')\n"
            "c3 = registry.counter('repro_jobs_total', 'again')\n"
        ), [MetricNameContract()])
        assert rule_ids(findings) == ["RPR005", "RPR005"]
        assert "must match" in findings[0].message
        assert "already registered" in findings[1].message

    def test_clean_names_and_near_misses(self, tmp_path):
        findings = lint(tmp_path, "service/m.py", (
            "import numpy as np\n"
            "c = registry.counter('repro_jobs_total', 'ok', labels=('a',))\n"
            "h = registry.histogram('repro_latency_seconds', 'ok')\n"
            "def helper(name):\n"
            "    return registry.counter(name, 'dynamic')\n"  # non-literal
            "hist, edges = np.histogram([1.0], bins=4)\n"      # not a metric
        ), [MetricNameContract()])
        assert findings == []


# ----------------------------------------------------------------------
# RPR006 span propagation
# ----------------------------------------------------------------------

class TestRPR006:
    def test_fires_on_unpropagated_spawn(self, tmp_path):
        findings = lint(tmp_path, "service/pool.py", (
            "import threading\n"
            "def start(fn):\n"
            "    t = threading.Thread(target=fn, daemon=True)\n"
            "    t.start()\n"
        ), [SpanPropagation()])
        assert rule_ids(findings) == ["RPR006"]

    def test_clean_with_propagation_vocabulary(self, tmp_path):
        findings = lint(tmp_path, "service/pool.py", (
            "import threading\n"
            "from repro.telemetry import runtime as _telemetry\n"
            "def start(fn):\n"
            "    carrier = _telemetry.inject()\n"
            "    t = threading.Thread(target=fn, args=(carrier,), daemon=True)\n"
            "    t.start()\n"
        ), [SpanPropagation()])
        assert findings == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        findings = lint(tmp_path, "bench/pool.py", (
            "import threading\n"
            "t = threading.Thread(target=print)\n"
        ), [SpanPropagation()])
        assert findings == []


# ----------------------------------------------------------------------
# RPR007 shared-memory lifecycle
# ----------------------------------------------------------------------

class TestRPR007:
    def test_fires_without_teardown(self, tmp_path):
        findings = lint(tmp_path, "transport/shm.py", (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def ship(buf):\n"
            "    shm = SharedMemory(create=True, size=buf.nbytes)\n"
            "    return shm.name\n"
        ), [SharedMemoryLifecycle()])
        assert rule_ids(findings) == ["RPR007"]

    def test_clean_with_finally_close(self, tmp_path):
        findings = lint(tmp_path, "transport/shm.py", (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def ship(buf):\n"
            "    shm = SharedMemory(create=True, size=buf.nbytes)\n"
            "    try:\n"
            "        return shm.name\n"
            "    finally:\n"
            "        shm.close()\n"
        ), [SharedMemoryLifecycle()])
        assert findings == []

    def test_clean_attach_to_existing(self, tmp_path):
        findings = lint(tmp_path, "transport/shm.py", (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def read(name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    return bytes(shm.buf)\n"
        ), [SharedMemoryLifecycle()])
        assert findings == []


# ----------------------------------------------------------------------
# RPR008 silent broad excepts
# ----------------------------------------------------------------------

class TestRPR008:
    def test_fires_on_silent_swallow(self, tmp_path):
        findings = lint(tmp_path, "transport/x.py", (
            "def f():\n"
            "    try:\n"
            "        go()\n"
            "    except Exception:\n"
            "        pass\n"
        ), [NoSilentExcept()])
        assert rule_ids(findings) == ["RPR008"]

    def test_fires_on_bare_except_and_tuple(self, tmp_path):
        findings = lint(tmp_path, "service/x.py", (
            "def f():\n"
            "    try:\n"
            "        go()\n"
            "    except (ValueError, Exception):\n"
            "        failed = True\n"
            "    try:\n"
            "        go()\n"
            "    except:\n"
            "        failed = True\n"
        ), [NoSilentExcept()])
        assert rule_ids(findings) == ["RPR008", "RPR008"]

    def test_clean_reraise_convert_record_narrow(self, tmp_path):
        findings = lint(tmp_path, "service/x.py", (
            "def a():\n"
            "    try:\n"
            "        go()\n"
            "    except Exception as exc:\n"
            "        raise JobFailedError('x', exc) from exc\n"
            "def b():\n"
            "    try:\n"
            "        go()\n"
            "    except Exception as exc:\n"
            "        out = RuntimeError(str(exc))\n"
            "def c(span):\n"
            "    try:\n"
            "        go()\n"
            "    except Exception as exc:\n"
            "        span.set_attribute('error', repr(exc))\n"
            "def d():\n"
            "    try:\n"
            "        go()\n"
            "    except (OSError, ValueError):\n"
            "        pass\n"
        ), [NoSilentExcept()])
        assert findings == []

    def test_out_of_scope_layer_ignored(self, tmp_path):
        findings = lint(tmp_path, "dqmc/x.py", (
            "def f():\n"
            "    try:\n"
            "        go()\n"
            "    except Exception:\n"
            "        pass\n"
        ), [NoSilentExcept()])
        assert findings == []


# ----------------------------------------------------------------------
# engine: suppressions
# ----------------------------------------------------------------------

class TestSuppressions:
    CODE = (
        "import time\n"
        "t = time.time()  # repro: ignore[RPR002]: epoch stamp for the log line\n"
    )

    def test_suppression_with_reason_applies(self, tmp_path):
        findings = lint(tmp_path, "service/x.py", self.CODE,
                        [MonotonicClocks()])
        assert len(findings) == 1
        assert findings[0].suppressed and not findings[0].active

    def test_own_line_suppression_covers_next_code_line(self, tmp_path):
        findings = lint(tmp_path, "service/x.py", (
            "import time\n"
            "# repro: ignore[RPR002]: epoch stamp for the log line\n"
            "t = time.time()\n"
        ), [MonotonicClocks()])
        assert [f.active for f in findings] == [False]

    def test_reason_is_mandatory(self, tmp_path):
        findings = lint(tmp_path, "service/x.py", (
            "import time\n"
            "t = time.time()  # repro: ignore[RPR002]\n"
        ), [MonotonicClocks()])
        ids = rule_ids(findings)
        assert ENGINE_RULE_ID in ids       # the reasonless suppression
        assert "RPR002" in ids             # ...does not suppress
        assert all(f.active for f in findings)

    def test_unused_suppression_is_a_finding(self, tmp_path):
        findings = lint(tmp_path, "service/x.py", (
            "import time\n"
            "t = time.monotonic()  # repro: ignore[RPR002]: stale comment\n"
        ), [MonotonicClocks()])
        assert rule_ids(findings) == [ENGINE_RULE_ID]
        assert "unused suppression" in findings[0].message

    def test_syntax_error_is_engine_finding(self, tmp_path):
        findings = lint(tmp_path, "service/x.py", "def broken(:\n")
        assert rule_ids(findings) == [ENGINE_RULE_ID]
        assert "syntax error" in findings[0].message


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------

class TestBaseline:
    def _findings(self, tmp_path) -> list[Finding]:
        return lint(tmp_path, "service/x.py", (
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        ), [MonotonicClocks()])

    def test_round_trip_neutralises_known_findings(self, tmp_path):
        findings = self._findings(tmp_path)
        assert len(findings) == 2
        bl = Baseline.from_findings(findings, note="grandfathered")
        path = tmp_path / "baseline.json"
        bl.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 2
        marked, stale = loaded.apply(findings)
        assert all(f.baselined for f in marked)
        assert not any(f.active for f in marked)
        assert stale == []

    def test_multiset_matching_one_entry_per_instance(self, tmp_path):
        findings = self._findings(tmp_path)
        # Identical snippets on two lines -> identical keys; one entry
        # must cover exactly one instance.
        same = lint(tmp_path, "service/y.py", (
            "import time\n"
            "a = time.time()\n"
            "a = time.time()\n"
        ), [MonotonicClocks()])
        assert finding_key(same[0]) == finding_key(same[1])
        one = Baseline(Baseline.from_findings(same).entries[:1])
        marked, _ = one.apply(same)
        assert [f.baselined for f in marked] == [True, False]
        del findings

    def test_stale_entries_reported_not_fatal(self, tmp_path):
        findings = self._findings(tmp_path)
        bl = Baseline.from_findings(findings)
        clean = lint(tmp_path, "service/x.py", "import time\n",
                     [MonotonicClocks()])
        marked, stale = bl.apply(clean)
        assert marked == []
        assert len(stale) == 2

    def test_line_shift_does_not_expire_entry(self, tmp_path):
        findings = self._findings(tmp_path)
        bl = Baseline.from_findings(findings)
        shifted = lint(tmp_path, "service/x.py", (
            "import time\n"
            "# a new comment shifts every line number\n"
            "a = time.time()\n"
            "b = time.time()\n"
        ), [MonotonicClocks()])
        marked, stale = bl.apply(shifted)
        assert not any(f.active for f in marked)
        assert stale == []


# ----------------------------------------------------------------------
# the repo itself is clean, and every rule is registered
# ----------------------------------------------------------------------

class TestRepoInvariants:
    def test_rule_registry_complete(self):
        ids = sorted(rule_classes())
        assert ids == [f"RPR00{i}" for i in range(1, 9)]
        for cls in rule_classes().values():
            assert cls.title and cls.invariant

    def test_src_tree_is_clean(self):
        findings = analyze_paths([str(REPO / "src")], default_rules())
        active = [f for f in findings if f.active]
        assert active == [], "\n".join(
            f"{f.location()}: {f.rule} {f.message}" for f in active
        )

    def test_committed_baseline_is_empty(self):
        bl = Baseline.load(REPO / "analysis-baseline.json")
        assert len(bl) == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def run_cli(*args: str, cwd: Path | None = None):
    env_src = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=str(cwd) if cwd else str(REPO),
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_findings_exit_one_and_report(self, tmp_path):
        bad = tmp_path / "service" / "x.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert "RPR002" in proc.stdout

    def test_rule_filter_and_unknown_rule(self, tmp_path):
        bad = tmp_path / "service" / "x.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n")
        ok = run_cli(str(tmp_path), "--rule", "RPR004")
        assert ok.returncode == 0
        bad_rule = run_cli(str(tmp_path), "--rule", "RPR999")
        assert bad_rule.returncode == 2

    def test_json_and_github_formats(self, tmp_path):
        bad = tmp_path / "service" / "x.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n")
        js = run_cli(str(tmp_path), "--format", "json")
        payload = json.loads(js.stdout)
        assert payload["active_count"] == 1
        assert payload["findings"][0]["rule"] == "RPR002"
        gh = run_cli(str(tmp_path), "--format", "github")
        assert gh.stdout.startswith("::error file=")
        assert "title=RPR002" in gh.stdout

    def test_write_and_apply_baseline(self, tmp_path):
        bad = tmp_path / "service" / "x.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "bl.json"
        wrote = run_cli(str(tmp_path), "--write-baseline",
                        "--baseline", str(baseline))
        assert wrote.returncode == 0
        with_bl = run_cli(str(tmp_path), "--baseline", str(baseline))
        assert with_bl.returncode == 0
        assert "[baselined]" in with_bl.stdout
        missing = run_cli(str(tmp_path), "--baseline",
                          str(tmp_path / "nope.json"))
        assert missing.returncode == 2

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for i in range(1, 9):
            assert f"RPR00{i}" in proc.stdout

    def test_repo_gate_matches_ci_invocation(self):
        """The exact command CI runs must pass on the committed tree."""
        proc = run_cli("src", "--baseline", "--format", "github", "--check")
        assert proc.returncode == 0, proc.stdout + proc.stderr
