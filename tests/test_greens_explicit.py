"""The explicit Eq. (3) formulas versus dense linear algebra."""

import numpy as np
import pytest

from repro.core.greens_explicit import (
    chain_product,
    cyclic_down_product,
    equal_time_greens,
    explicit_full_inverse,
    explicit_selected_columns,
    greens_block,
    w_matrix,
    z_matrix,
)


class TestChainProduct:
    def test_empty_chain_is_identity(self, small_pc):
        np.testing.assert_array_equal(
            chain_product(small_pc, 3, 3), np.eye(small_pc.N)
        )

    def test_single_step(self, small_pc):
        np.testing.assert_allclose(
            chain_product(small_pc, 4, 3), small_pc.block(4)
        )

    def test_descending_chain(self, small_pc):
        # B_5 B_4 B_3
        expected = small_pc.block(5) @ small_pc.block(4) @ small_pc.block(3)
        np.testing.assert_allclose(chain_product(small_pc, 5, 2), expected)

    def test_wrapping_chain(self, small_pc):
        # k < l wraps through the seam: B_2 B_1 B_6 B_5
        expected = (
            small_pc.block(2)
            @ small_pc.block(1)
            @ small_pc.block(6)
            @ small_pc.block(5)
        )
        np.testing.assert_allclose(chain_product(small_pc, 2, 4), expected)


class TestCyclicProduct:
    def test_full_cycle_from_L(self, small_pc):
        expected = np.eye(small_pc.N)
        for j in range(small_pc.L, 0, -1):
            expected = expected @ small_pc.block(j)
        np.testing.assert_allclose(
            cyclic_down_product(small_pc, small_pc.L), expected
        )

    def test_cycles_are_similar(self, small_pc):
        """All cyclic rotations share eigenvalues (similar matrices)."""
        e1 = np.sort(np.linalg.eigvals(cyclic_down_product(small_pc, 1)))
        e4 = np.sort(np.linalg.eigvals(cyclic_down_product(small_pc, 4)))
        np.testing.assert_allclose(e1, e4, atol=1e-10)


class TestWZFormulas:
    def test_w_is_identity_plus_cycle(self, small_pc):
        W = w_matrix(small_pc, 3)
        np.testing.assert_allclose(
            W, np.eye(small_pc.N) + cyclic_down_product(small_pc, 3)
        )

    def test_z_diagonal_is_identity(self, small_pc):
        np.testing.assert_array_equal(
            z_matrix(small_pc, 2, 2), np.eye(small_pc.N)
        )

    def test_z_below_diagonal_positive_chain(self, small_pc):
        np.testing.assert_allclose(
            z_matrix(small_pc, 5, 3), chain_product(small_pc, 5, 3)
        )

    def test_z_above_diagonal_negative(self, small_pc):
        np.testing.assert_allclose(
            z_matrix(small_pc, 2, 5), -chain_product(small_pc, 2, 5)
        )

    def test_z_last_column(self, small_pc):
        # k < l = L: Z = -B_k ... B_1
        expected = -(small_pc.block(2) @ small_pc.block(1))
        np.testing.assert_allclose(z_matrix(small_pc, 2, 6), expected)


class TestGreensBlock:
    @pytest.mark.parametrize("k", [1, 2, 4, 6])
    @pytest.mark.parametrize("l", [1, 3, 6])
    def test_matches_dense_inverse(
        self, small_pc, small_dense_inverse, block_of, k, l
    ):
        np.testing.assert_allclose(
            greens_block(small_pc, k, l),
            block_of(small_dense_inverse, k, l, small_pc.N),
            atol=1e-10,
        )

    def test_equal_time_is_diagonal_block(
        self, small_pc, small_dense_inverse, block_of
    ):
        for k in (1, 3, 6):
            np.testing.assert_allclose(
                equal_time_greens(small_pc, k),
                block_of(small_dense_inverse, k, k, small_pc.N),
                atol=1e-10,
            )

    def test_hubbard_matrix(self, hubbard_pc, block_of):
        G = np.linalg.inv(hubbard_pc.to_dense())
        np.testing.assert_allclose(
            greens_block(hubbard_pc, 5, 2),
            block_of(G, 5, 2, hubbard_pc.N),
            atol=1e-10,
        )


class TestExplicitSelectedColumns:
    def test_all_columns_match_dense(
        self, small_pc, small_dense_inverse, block_of
    ):
        cols = [2, 5]
        out = explicit_selected_columns(small_pc, cols)
        assert len(out) == 2 * small_pc.L
        for (k, l), blk in out.items():
            assert l in cols
            np.testing.assert_allclose(
                blk, block_of(small_dense_inverse, k, l, small_pc.N), atol=1e-9
            )

    def test_column_L_wrap_sign(self, small_pc, small_dense_inverse, block_of):
        out = explicit_selected_columns(small_pc, [small_pc.L])
        for k in range(1, small_pc.L + 1):
            np.testing.assert_allclose(
                out[(k, small_pc.L)],
                block_of(small_dense_inverse, k, small_pc.L, small_pc.N),
                atol=1e-9,
            )

    def test_torus_column_index(self, small_pc):
        out = explicit_selected_columns(small_pc, [0])  # wraps to L
        assert (1, small_pc.L) in out


class TestExplicitFullInverse:
    def test_matches_dense(self, small_pc, small_dense_inverse):
        G = explicit_full_inverse(small_pc)
        L, N = small_pc.L, small_pc.N
        stitched = np.block(
            [[G[k, l] for l in range(L)] for k in range(L)]
        )
        np.testing.assert_allclose(stitched, small_dense_inverse, atol=1e-9)

    def test_residual_against_matvec(self, small_pc, rng):
        """M @ (G columns) == I columns, via matvec only."""
        G = explicit_full_inverse(small_pc)
        L, N = small_pc.L, small_pc.N
        col = np.concatenate([G[k, 1] for k in range(L)], axis=0)
        res = small_pc.matvec(col)
        expected = np.zeros_like(res)
        expected[N : 2 * N] = np.eye(N)
        np.testing.assert_allclose(res, expected, atol=1e-10)
