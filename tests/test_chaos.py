"""Chaos drills: the full service under a deterministic fault plan.

The acceptance contract for the resilience layer, exercised end to end:
every submitted job either returns a result matching the direct-FSI
oracle or fails with a *typed* :class:`ServiceError`; the scheduler
never wedges (every ticket resolves within a bounded timeout); and the
circuit breaker recovers to HEALTHY once the fault stream stops.

Everything here is seeded: :class:`FaultPlan` decisions are pure
functions of ``(seed, site, fingerprint)``, so each drill replays the
exact same crashes, hangs, and corruptions on every machine — run via
the ``chaos`` marker in CI (``pytest -m chaos``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.hubbard.hs_field import HSField
from repro.resilience import (
    BreakerState,
    FaultKind,
    FaultPlan,
    FaultRule,
    GuardConfig,
    NumericalHealthError,
    ServiceState,
)
from repro.service import (
    GreensJob,
    GreensService,
    JobFailedError,
    JobTimeoutError,
    ModelSpec,
    ServiceConfig,
    ServiceDegradedError,
    ServiceError,
)

pytestmark = pytest.mark.chaos

SPEC = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=2.0, beta=1.0)


def make_job(seed: int) -> GreensJob:
    field = HSField.random(SPEC.L, SPEC.N, np.random.default_rng(seed))
    return GreensJob.from_field(SPEC, field, c=4, pattern=Pattern.DIAGONAL,
                                q=0)


def oracle_blocks(job: GreensJob) -> dict:
    model = job.spec.build_model()
    pc = model.build_matrix(job.field(), job.spec.sigma)
    res = fsi(pc, job.c, pattern=job.pattern, q=job.q, num_threads=1)
    return dict(res.selected.items())


#: The drill's rules; seed 18 partitions the 16 drill jobs cleanly
#: under v3 fingerprints (verified below by replaying the plan's own
#: rolls): 3 crash-once, 1 hang, 1 CLS corruption, 1 cache-store
#: corruption, 10 untouched.
DRILL_SEED = 18
DRILL_RULES = (
    FaultRule(site="worker.task", kind=FaultKind.CRASH, probability=0.25,
              once=True),
    FaultRule(site="worker.task", kind=FaultKind.HANG, probability=0.10,
              hang_seconds=30.0),
    FaultRule(site="cls.output", kind=FaultKind.CORRUPT, probability=0.20),
    FaultRule(site="cache.store", kind=FaultKind.CORRUPT, probability=0.12,
              once=True),
)


def expected_faults(plan: FaultPlan, jobs: list[GreensJob]):
    """Replay the plan's deterministic rolls without claiming markers."""
    crash, hang, cls_corrupt, cache_corrupt = set(), set(), set(), set()
    for i, job in enumerate(jobs):
        fp = job.fingerprint
        if plan._roll("worker.task", fp, 0) < DRILL_RULES[0].probability:
            crash.add(i)
        if plan._roll("worker.task", fp, 1) < DRILL_RULES[1].probability:
            hang.add(i)
        if plan._roll("cls.output", fp, 2) < DRILL_RULES[2].probability:
            cls_corrupt.add(i)
        if plan._roll("cache.store", fp, 3) < DRILL_RULES[3].probability:
            cache_corrupt.add(i)
    return crash, hang, cls_corrupt, cache_corrupt


class TestChaosDrill:
    def test_every_job_golden_or_typed_error(self, tmp_path):
        """16 jobs through crashes, hangs, and corruption at three sites."""
        plan = FaultPlan(seed=DRILL_SEED, rules=DRILL_RULES,
                         state_dir=str(tmp_path / "chaos"))
        jobs = [make_job(seed) for seed in range(16)]
        crash, hang, cls_corrupt, cache_corrupt = expected_faults(plan, jobs)
        # The drill must actually exercise every fault site.
        assert crash and hang and cls_corrupt and cache_corrupt
        assert not hang & (crash | cls_corrupt | cache_corrupt)
        assert not cache_corrupt & (crash | cls_corrupt)

        config = ServiceConfig(
            workers=1, fleet_ranks=1, batch_max=1,
            job_timeout=3.0, max_retries=2, retry_backoff=0.02,
            guards=GuardConfig(), chaos_plan=plan,
        )
        with GreensService(config) as svc:
            tickets = [svc.submit(job) for job in jobs]
            outcomes = []
            for ticket in tickets:
                try:
                    outcomes.append(ticket.result(timeout=120.0))
                except ServiceError as exc:
                    outcomes.append(exc)

            for i, (job, outcome) in enumerate(zip(jobs, outcomes)):
                if i in hang:
                    assert isinstance(outcome, JobTimeoutError), i
                elif i in cache_corrupt:
                    # The store-side screen caught the poison before it
                    # could be cached or served.
                    assert isinstance(outcome, JobFailedError), i
                    assert isinstance(outcome.__cause__,
                                      NumericalHealthError)
                else:
                    assert not isinstance(outcome, BaseException), (
                        f"job {i}: {outcome!r}"
                    )
                    # Crash-once jobs recovered by retry; CLS-corrupted
                    # jobs were rescued by the UDT rung (corruption
                    # refires at every ladder rung, same fingerprint).
                    expected_rung = "udt" if i in cls_corrupt else "direct"
                    assert outcome.rung == expected_rung, i
                    for kl, block in oracle_blocks(job).items():
                        np.testing.assert_allclose(
                            outcome.blocks[kl], block, atol=1e-8,
                        )

            # Each crash-once rule really fired (marker files persist),
            # plus the single cache.store poisoning.
            assert plan.fired() == len(crash) + len(cache_corrupt)
            # Nothing wedged: the queue fully drained.
            assert svc.queue_depth == 0
            assert len(svc._inflight) == 0
            # One hang -> one timeout: far below the breaker threshold.
            assert svc.state is ServiceState.HEALTHY

            # The cache-poisoned job was never cached; resubmitting it
            # (once-rule already claimed) now computes and serves clean.
            for i in sorted(cache_corrupt):
                retry_ticket = svc.submit(jobs[i])
                assert not retry_ticket.cache_hit  # poison was never cached
                retry = retry_ticket.result(timeout=120.0)
                for kl, block in oracle_blocks(jobs[i]).items():
                    np.testing.assert_allclose(retry.blocks[kl], block,
                                               atol=1e-8)

    def test_breaker_opens_sheds_and_recovers(self, tmp_path):
        """Timeout storm trips the breaker; clean traffic closes it."""
        plan = FaultPlan(
            seed=5,
            rules=(
                FaultRule(site="worker.task", kind=FaultKind.HANG,
                          probability=0.5, hang_seconds=30.0),
            ),
        )
        # The plan is pure: pick three hanging jobs and one clean one.
        hang_seeds: list[int] = []
        clean_seed = None
        for seed in range(100, 300):
            fp = make_job(seed).fingerprint
            if plan._roll("worker.task", fp, 0) < 0.5:
                if len(hang_seeds) < 3:
                    hang_seeds.append(seed)
            elif clean_seed is None:
                clean_seed = seed
            if len(hang_seeds) == 3 and clean_seed is not None:
                break
        assert len(hang_seeds) == 3 and clean_seed is not None

        config = ServiceConfig(
            workers=1, fleet_ranks=1, batch_max=1,
            job_timeout=1.0, max_retries=0, retry_backoff=0.01,
            breaker_threshold=3, breaker_reset=0.4,
            guards=GuardConfig(), chaos_plan=plan,
        )
        with GreensService(config) as svc:
            tickets = [svc.submit(make_job(seed)) for seed in hang_seeds]
            for ticket in tickets:
                with pytest.raises(JobTimeoutError):
                    ticket.result(timeout=60.0)
            assert svc.breaker.state is BreakerState.OPEN
            assert svc.state is ServiceState.DEGRADED
            with pytest.raises(ServiceDegradedError) as ei:
                svc.submit(make_job(clean_seed))
            assert ei.value.retry_after > 0

            # After reset_timeout the clean job is admitted as the
            # half-open probe; its success closes the breaker.
            deadline = time.monotonic() + 60.0
            result = None
            while result is None and time.monotonic() < deadline:
                try:
                    result = svc.submit(make_job(clean_seed)).result(
                        timeout=60.0
                    )
                except ServiceDegradedError:
                    time.sleep(0.05)
            assert result is not None
            for kl, block in oracle_blocks(make_job(clean_seed)).items():
                np.testing.assert_allclose(result.blocks[kl], block,
                                           atol=1e-10)
            assert svc.breaker.state is BreakerState.CLOSED
            assert svc.state is ServiceState.HEALTHY
