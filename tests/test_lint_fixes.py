"""Regression tests for the violations the invariant linter surfaced.

The first `repro lint src` run (see docs/static-analysis.md) flagged
real pre-existing problems; each fix here gets a behavioural test so
the bug class stays dead even if the rule is ever relaxed:

* RPR004 — ``dqmc.trotter.extrapolate`` solved its normal equations
  with raw ``np.linalg.solve``/``inv``: a singular design matrix
  (duplicate ``dtau`` points) surfaced as a raw ``LinAlgError`` (or
  silently garbage covariance).  Now routed through the guarded
  solvers, which raise the typed ``NumericalHealthError``.
* RPR008 — silent ``except Exception`` swallows: the bench load
  generator swallowed *any* exception from ``ticket.result`` (harness
  bugs counted as "failed jobs"); the scheduler's delta fast path
  dropped the exception on the floor before falling back; the process
  transport's teardown helpers caught everything including
  ``KeyboardInterrupt``-adjacent programming errors.
* Satellite: ``ServiceMetrics`` splits the wall-clock birth timestamp
  (reporting) from the monotonic uptime clock (measurement).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.bench.workloads import run_job_stream
from repro.dqmc.trotter import extrapolate
from repro.resilience.guards import (
    NumericalHealthError,
    guarded_inv,
    guarded_solve,
)
from repro.service.errors import JobSheddedError
from repro.service.metrics import ServiceMetrics
from repro.telemetry import TraceCollector


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


# ----------------------------------------------------------------------
# guarded dense solvers (RPR004)
# ----------------------------------------------------------------------

class TestGuardedSolvers:
    def test_matches_raw_numpy_on_healthy_input(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(6, 6)) + 6 * np.eye(6)
        b = rng.normal(size=6)
        np.testing.assert_allclose(guarded_solve(A, b), np.linalg.solve(A, b))
        np.testing.assert_allclose(guarded_inv(A), np.linalg.inv(A))

    def test_singular_system_raises_typed_error(self):
        A = np.ones((3, 3))
        with pytest.raises(NumericalHealthError) as err:
            guarded_solve(A, np.ones(3), site="unit")
        assert err.value.check == "condition"
        assert err.value.site == "unit"
        with pytest.raises(NumericalHealthError):
            guarded_inv(A, site="unit")

    def test_nonfinite_input_trips_finite_screen(self):
        A = np.eye(3)
        A[1, 1] = np.nan
        with pytest.raises(NumericalHealthError) as err:
            guarded_inv(A, site="unit")
        assert err.value.check == "finite"

    def test_condition_limit_enforced(self):
        A = np.diag([1.0, 1e-9])
        with pytest.raises(NumericalHealthError) as err:
            guarded_solve(A, np.ones(2), condition_limit=1e6)
        assert err.value.value > err.value.limit

    def test_guard_telemetry_counted(self):
        telemetry.configure()
        guarded_solve(np.eye(2), np.ones(2))
        reg = telemetry.registry()
        counts = {
            values[0]: child.value
            for values, child in reg.counter(
                "repro_guard_checks_total", "", labels=("check",)
            ).samples()
        }
        assert counts.get("dense", 0) >= 1


class TestTrotterGuarded:
    def test_duplicate_dtaus_raise_typed_error(self):
        """The normal equations go singular; pre-fix this was a raw
        LinAlgError (or worse, finite garbage)."""
        dtaus = np.array([0.1, 0.1, 0.1])
        values = np.array([1.0, 1.0, 1.0])
        with pytest.raises(NumericalHealthError):
            extrapolate(dtaus, values, order=2)

    def test_healthy_fit_unchanged(self):
        dtaus = np.array([0.05, 0.1, 0.2])
        truth = 2.0 + 3.0 * dtaus**2
        res = extrapolate(dtaus, truth, order=1)
        assert res.value == pytest.approx(2.0, abs=1e-10)


# ----------------------------------------------------------------------
# bench load generator (RPR008: bench/workloads.py)
# ----------------------------------------------------------------------

class _StubTicket:
    def __init__(self, error: BaseException | None = None):
        self._error = error
        self.fingerprint = "f" * 64

    def result(self, timeout=None):
        if self._error is not None:
            raise self._error
        return object()


class _StubService:
    """Just enough service surface for run_job_stream."""

    def __init__(self, tickets):
        self._tickets = list(tickets)

    def submit(self, job):
        return self._tickets.pop(0)

    def stats(self):
        return {
            "latency_seconds": {"p50": 0.0, "p95": 0.0, "p99": 0.0},
            "cache": {"hit_rate": 0.0},
            "executions": 0,
            "coalesced": 0,
        }


class _StubJob:
    fingerprint = "a" * 64


class TestJobStreamFailureHandling:
    def test_service_errors_counted_not_raised(self):
        svc = _StubService([
            _StubTicket(),
            _StubTicket(JobSheddedError("overload")),
            _StubTicket(TimeoutError("slow")),
        ])
        report = run_job_stream(svc, [_StubJob()] * 3, time_scale=0.0)
        assert report.completed == 1
        assert report.failed == 2

    def test_unexpected_exception_propagates(self):
        """Pre-fix: a KeyError from a harness bug was silently counted
        as a failed job, corrupting the benchmark numbers."""
        svc = _StubService([_StubTicket(KeyError("harness bug"))])
        with pytest.raises(KeyError):
            run_job_stream(svc, [_StubJob()], time_scale=0.0)


# ----------------------------------------------------------------------
# transport teardown handlers (RPR008: transport/process.py, mpshm.py)
# ----------------------------------------------------------------------

class _ExplodingChannels:
    """ChannelSet whose sends fail with a configurable exception."""

    def __init__(self, exc: BaseException):
        from repro.transport.process import ChannelSet

        class _Set(ChannelSet):
            def _send_obj(self, peer, frame):
                raise exc

            def _close_peer(self, peer):
                raise exc

            def _decode_buffer(self, descriptor):
                raise NotImplementedError

        self.channels = _Set(rank=0, size=2)


class TestTransportTeardown:
    def test_peer_gone_is_swallowed(self):
        ch = _ExplodingChannels(BrokenPipeError("peer died")).channels
        ch.say_bye()
        ch.broadcast_abort("going down")
        ch.close()

    def test_unexpected_error_propagates(self):
        """Pre-fix: `except Exception: pass` hid programming errors in
        the frame encoder behind 'peer may already be gone'."""
        ch = _ExplodingChannels(KeyError("bug in frame encoding")).channels
        with pytest.raises(KeyError):
            ch.say_bye()
        with pytest.raises(KeyError):
            ch.broadcast_abort("going down")
        with pytest.raises(KeyError):
            ch.close()

    def test_tracker_unregister_tolerates_api_failures(self, monkeypatch):
        from multiprocessing import resource_tracker

        from repro.transport.mpshm import _unregister_from_tracker

        def refuse(name, rtype):
            raise ValueError(f"unknown segment {name}")

        monkeypatch.setattr(resource_tracker, "unregister", refuse)
        _unregister_from_tracker("repro-test-nonexistent-segment")


# ----------------------------------------------------------------------
# scheduler delta fast path records its failure (RPR008: scheduler.py)
# ----------------------------------------------------------------------

class TestDeltaErrorRecorded:
    def test_delta_failure_lands_on_span_and_counter(self, monkeypatch):
        from repro.core.patterns import Pattern
        from repro.hubbard.hs_field import HSField
        from repro.service import (
            GreensJob,
            GreensService,
            ModelSpec,
            ServiceConfig,
        )
        from repro.service.scheduler import GreensService as _GS

        collector = TraceCollector()
        telemetry.configure(collector=collector)

        spec = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=2.0, beta=1.0)
        field = HSField.random(spec.L, spec.N, np.random.default_rng(7))
        base = GreensJob.from_field(
            spec, field, c=4, pattern=Pattern.FULL_DIAGONAL, q=0
        )
        flip = field.copy()
        flip.flip(3, 1)
        delta = GreensJob.from_field(
            spec, flip, c=4, pattern=Pattern.FULL_DIAGONAL, q=0
        ).with_base(base.fingerprint)

        monkeypatch.setattr(
            _GS,
            "_delta_state",
            lambda self, b, j: (_ for _ in ()).throw(
                RuntimeError("woodbury exploded")
            ),
        )
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            svc.compute(base, timeout=60)
            result = svc.compute(delta, timeout=60)
            reasons = svc.stats()["delta"]["fallbacks"]
        # Served correctly by the full solve...
        assert not result.rung.startswith("delta")
        # ...with the failure counted and the exception on the span.
        assert reasons.get("error") == 1
        recorded = [
            s for s in collector.snapshot()
            if "woodbury exploded" in str(s.get("attributes", {}).get(
                "delta_error", ""
            ))
        ]
        assert recorded, "delta failure must be recorded on the request span"


# ----------------------------------------------------------------------
# ServiceMetrics clock split (satellite: service/metrics.py)
# ----------------------------------------------------------------------

class TestMetricsClockSplit:
    def test_epoch_start_reported_and_uptime_monotonic(self):
        import time as _time

        before = _time.time()
        m = ServiceMetrics()
        after = _time.time()
        stats = m.stats()
        assert before <= stats["started_at_epoch"] <= after
        assert stats["uptime_seconds"] >= 0.0
        # Uptime is computed on the monotonic clock: shoving the epoch
        # start into the future must not drag uptime negative.
        m.started_at_epoch = _time.time() + 3600
        assert m.stats()["uptime_seconds"] >= 0.0
