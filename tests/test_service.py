"""The Green's-function service: jobs, queue, cache, workers, scheduler.

Covers the acceptance scenarios of the service subsystem:

* fingerprint determinism, including across processes;
* request coalescing (N identical submissions, one computation);
* LRU cache eviction under a byte budget;
* worker-crash retry and per-batch timeout (chaos tasks);
* graceful shutdown drain and forced shutdown;
* an end-to-end 100-job burst with >= 30% duplicates verified
  against the direct :func:`repro.core.fsi.fsi` oracle.
"""

from __future__ import annotations

import functools
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.hubbard.hs_field import HSField
from repro.service import (
    BackpressurePolicy,
    BoundedPriorityQueue,
    GreensJob,
    GreensService,
    Histogram,
    JobResult,
    JobSheddedError,
    JobTimeoutError,
    LRUResultCache,
    ModelSpec,
    QueueEntry,
    QueueFullError,
    ServiceClosedError,
    ServiceConfig,
    WorkerCrashError,
    WorkerPool,
    execute_batch,
)
from repro.resilience import FaultKind, FaultPlan, FaultRule
from repro.service.workers import chaos_batch_task

#: Small enough that one FSI run takes ~a millisecond.
SPEC = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=2.0, beta=1.0)


def make_job(seed: int, c: int = 4, pattern: Pattern = Pattern.DIAGONAL,
             q: int = 0, spec: ModelSpec = SPEC) -> GreensJob:
    field = HSField.random(spec.L, spec.N, np.random.default_rng(seed))
    return GreensJob.from_field(spec, field, c=c, pattern=pattern, q=q)


def oracle_blocks(job: GreensJob) -> dict:
    """Direct (unserved) FSI on the same job — the ground truth."""
    model = job.spec.build_model()
    pc = model.build_matrix(job.field(), job.spec.sigma)
    res = fsi(pc, job.c, pattern=job.pattern, q=job.q, num_threads=1)
    return dict(res.selected.items())


# ----------------------------------------------------------------------
# picklable chaos tasks (module level so the fork-based pool finds them)
# ----------------------------------------------------------------------

def _sleep_task(jobs, fleet_ranks=1, threads_per_rank=1):
    time.sleep(60.0)
    return []


def _always_crash_task(jobs, fleet_ranks=1, threads_per_rank=1):
    os.kill(os.getpid(), 9)


def _gated_task(jobs, fleet_ranks=1, threads_per_rank=1, gate_path=None):
    """Block until ``gate_path`` exists, then compute normally."""
    while not os.path.exists(gate_path):
        time.sleep(0.005)
    return execute_batch(jobs, fleet_ranks, threads_per_rank)


def _wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
class TestFingerprint:
    def test_deterministic_rebuild(self):
        assert make_job(seed=1).fingerprint == make_job(seed=1).fingerprint

    def test_sensitive_to_every_input(self):
        base = make_job(seed=1)
        assert base.fingerprint != make_job(seed=2).fingerprint
        assert base.fingerprint != make_job(seed=1, c=2).fingerprint
        assert base.fingerprint != make_job(seed=1, q=1).fingerprint
        assert (
            base.fingerprint
            != make_job(seed=1, pattern=Pattern.COLUMNS).fingerprint
        )
        other_spec = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=3.0, beta=1.0)
        assert base.fingerprint != make_job(seed=1, spec=other_spec).fingerprint

    def test_stable_across_processes(self):
        """SHA-256 over the canonical encoding, never Python hash():
        a fresh interpreter (fresh PYTHONHASHSEED) must agree."""
        script = (
            "import numpy as np\n"
            "from repro.hubbard.hs_field import HSField\n"
            "from repro.service import GreensJob, ModelSpec\n"
            "spec = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=2.0, beta=1.0)\n"
            "f = HSField.random(spec.L, spec.N, np.random.default_rng(7))\n"
            "print(GreensJob.from_field(spec, f, c=4, q=0).fingerprint)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONHASHSEED": "0"},
            check=True,
        )
        assert out.stdout.strip() == make_job(seed=7).fingerprint

    def test_compat_key_ignores_field_and_q(self):
        a, b = make_job(seed=1, q=0), make_job(seed=2, q=3)
        assert a.compat_key == b.compat_key
        assert a.compat_key != make_job(seed=1, c=2).compat_key

    def test_field_roundtrip(self):
        job = make_job(seed=3)
        np.testing.assert_array_equal(
            job.field().h, HSField.random(SPEC.L, SPEC.N,
                                          np.random.default_rng(3)).h
        )

    def test_validation(self):
        field = HSField.random(SPEC.L, SPEC.N, np.random.default_rng(0))
        with pytest.raises(ValueError, match="divisor"):
            GreensJob.from_field(SPEC, field, c=3, q=0)
        with pytest.raises(ValueError, match="q="):
            GreensJob.from_field(SPEC, field, c=4, q=4)
        with pytest.raises(ValueError, match="entries"):
            GreensJob(spec=SPEC, h=b"\x01\x02", c=4, q=0)
        with pytest.raises(ValueError, match="sigma"):
            ModelSpec(nx=2, ny=2, L=8, sigma=0)


# ----------------------------------------------------------------------
class TestCache:
    @staticmethod
    def result_of_bytes(fp: str, n: int) -> JobResult:
        job = make_job(seed=0)
        return JobResult(
            fingerprint=fp,
            selection=job.selection,
            blocks={(1, 1): np.zeros(n // 8, dtype=np.float64)},
        )

    def test_hit_miss_accounting(self):
        cache = LRUResultCache(max_bytes=1 << 20)
        assert cache.get("a") is None
        cache.put(self.result_of_bytes("a", 128))
        assert cache.get("a") is not None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_evicts_lru_under_byte_budget(self):
        cache = LRUResultCache(max_bytes=256)
        cache.put(self.result_of_bytes("a", 128))
        cache.put(self.result_of_bytes("b", 128))
        assert cache.get("a") is not None  # refresh a: b becomes LRU
        cache.put(self.result_of_bytes("c", 128))
        assert "b" not in cache and "a" in cache and "c" in cache
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.bytes_used <= 256

    def test_oversized_result_not_stored(self):
        cache = LRUResultCache(max_bytes=64)
        assert not cache.put(self.result_of_bytes("big", 128))
        assert len(cache) == 0

    def test_zero_budget_disables(self):
        cache = LRUResultCache(max_bytes=0)
        assert not cache.put(self.result_of_bytes("a", 64))
        assert cache.get("a") is None

    def test_replacement_updates_bytes(self):
        cache = LRUResultCache(max_bytes=512)
        cache.put(self.result_of_bytes("a", 128))
        cache.put(self.result_of_bytes("a", 256))
        assert cache.stats().bytes_used == 256


# ----------------------------------------------------------------------
class TestQueue:
    @staticmethod
    def entry(queue, priority=0, job=None):
        return QueueEntry(
            priority=priority, seq=queue.next_seq(),
            job=job if job is not None else make_job(seed=priority),
        )

    def test_priority_then_fifo(self):
        q = BoundedPriorityQueue(8)
        first_low = self.entry(q, priority=0)
        high = self.entry(q, priority=5)
        second_low = self.entry(q, priority=0)
        for e in (first_low, high, second_low):
            q.put(e)
        popped = [q.get_batch()[0] for _ in range(3)]
        assert popped == [high, first_low, second_low]

    def test_reject_policy(self):
        q = BoundedPriorityQueue(1, BackpressurePolicy.REJECT)
        q.put(self.entry(q))
        with pytest.raises(QueueFullError):
            q.put(self.entry(q))

    def test_block_policy_timeout(self):
        q = BoundedPriorityQueue(1, BackpressurePolicy.BLOCK)
        q.put(self.entry(q))
        with pytest.raises(QueueFullError, match="after"):
            q.put(self.entry(q), timeout=0.05)

    def test_shed_lowest_returns_victim(self):
        q = BoundedPriorityQueue(2, BackpressurePolicy.SHED_LOWEST)
        low = self.entry(q, priority=0)
        mid = self.entry(q, priority=1)
        q.put(low)
        q.put(mid)
        victim = q.put(self.entry(q, priority=2))
        assert victim is low
        # A newcomer that does not beat the worst queued entry is refused.
        with pytest.raises(QueueFullError, match="does not beat"):
            q.put(self.entry(q, priority=0))

    def test_get_batch_groups_compatible(self):
        q = BoundedPriorityQueue(8)
        a = self.entry(q, job=make_job(seed=1, c=4))
        b = self.entry(q, job=make_job(seed=2, c=2))   # different compat
        c = self.entry(q, job=make_job(seed=3, c=4))
        for e in (a, b, c):
            q.put(e)
        batch = q.get_batch(max_batch=4, compat_key=lambda j: j.compat_key)
        assert batch == [a, c]
        assert q.get_batch()[0] is b

    def test_closed_and_drained_returns_none(self):
        q = BoundedPriorityQueue(4)
        q.close()
        assert q.get_batch() is None
        with pytest.raises(ServiceClosedError):
            q.put(QueueEntry(priority=0, seq=1, job=make_job(seed=0)))


# ----------------------------------------------------------------------
class TestHistogram:
    def test_percentiles_exact(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.mean == pytest.approx(50.5)

    def test_reservoir_keeps_recent(self):
        h = Histogram(capacity=4)
        for v in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
            h.observe(v)
        assert h.percentile(50) == 9.0   # old 1.0s rotated out
        assert h.count == 8 and h.min == 1.0  # exact over all observations

    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0 and snap["p99"] == 0.0


# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_batch_matches_oracle(self):
        jobs = [make_job(seed=s, q=s % 4) for s in range(3)]
        pool = WorkerPool(workers=1)
        try:
            results = pool.run_batch(jobs)
        finally:
            pool.shutdown()
        assert [r.fingerprint for r in results] == [j.fingerprint for j in jobs]
        for job, res in zip(jobs, results):
            expect = oracle_blocks(job)
            assert set(res.blocks) == set(expect)
            for kl, blk in expect.items():
                np.testing.assert_allclose(res.blocks[kl], blk,
                                           rtol=1e-12, atol=1e-12)
            assert res.flops > 0
            assert set(res.stage_flops) >= {"cls", "bsofi", "wrp"}

    def test_fleet_batch_matches_inline(self):
        jobs = [make_job(seed=s, q=s % 4) for s in range(4)]
        inline = execute_batch(jobs, fleet_ranks=1)
        fleet = execute_batch(jobs, fleet_ranks=2)
        for a, b in zip(inline, fleet):
            assert a.fingerprint == b.fingerprint
            for kl, blk in a.blocks.items():
                np.testing.assert_allclose(b.blocks[kl], blk,
                                           rtol=1e-12, atol=1e-12)

    def test_batch_requires_compatible_jobs(self):
        with pytest.raises(ValueError, match="compat_key"):
            execute_batch([make_job(seed=1, c=4), make_job(seed=2, c=2)])

    def test_crash_retry_recovers(self, tmp_path):
        plan = FaultPlan(
            seed=0,
            rules=(
                FaultRule(site="worker.task", kind=FaultKind.CRASH, once=True),
            ),
            state_dir=str(tmp_path / "chaos"),
        )
        retries = []
        pool = WorkerPool(
            workers=1,
            max_retries=2,
            retry_backoff=0.01,
            task_fn=functools.partial(chaos_batch_task, plan=plan),
            on_retry=retries.append,
        )
        job = make_job(seed=5)
        try:
            results = pool.run_batch([job])
        finally:
            pool.shutdown()
        assert plan.fired() == 1             # the crash really happened
        assert retries == [1]
        expect = oracle_blocks(job)
        for kl, blk in expect.items():
            np.testing.assert_allclose(results[0].blocks[kl], blk,
                                       rtol=1e-12, atol=1e-12)

    def test_persistent_crash_raises_typed_error(self):
        pool = WorkerPool(
            workers=1, max_retries=1, retry_backoff=0.01,
            task_fn=_always_crash_task,
        )
        try:
            with pytest.raises(WorkerCrashError, match="after 1 retries"):
                pool.run_batch([make_job(seed=0)])
        finally:
            pool.shutdown()

    def test_timeout_is_typed_not_a_hang(self):
        pool = WorkerPool(workers=1, job_timeout=0.3, task_fn=_sleep_task)
        t0 = time.monotonic()
        try:
            with pytest.raises(JobTimeoutError, match="exceeded"):
                pool.run_batch([make_job(seed=0)])
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        assert time.monotonic() - t0 < 5.0

    def test_closed_pool_refuses(self):
        pool = WorkerPool(workers=1)
        pool.shutdown()
        with pytest.raises(ServiceClosedError):
            pool.run_batch([make_job(seed=0)])


# ----------------------------------------------------------------------
class TestServiceCoalescing:
    def test_n_identical_submissions_one_computation(self, tmp_path):
        gate = str(tmp_path / "gate")
        cfg = ServiceConfig(
            workers=1, fleet_ranks=1, batch_max=1,
            task_fn=functools.partial(_gated_task, gate_path=gate),
        )
        job = make_job(seed=11)
        with GreensService(cfg) as svc:
            tickets = [svc.submit(job) for _ in range(5)]
            # All five are pending on one in-flight computation.
            assert svc.metrics.coalesced.value == 4
            assert svc.stats()["inflight"] == 1
            assert not any(t.done() for t in tickets)
            open(gate, "w").close()
            results = [t.result(timeout=30.0) for t in tickets]
        assert svc.metrics.executions.value == 1
        assert svc.metrics.completed.value == 5
        assert len({id(r) for r in results}) == 1  # literally one result
        assert sum(t.coalesced for t in tickets) == 4
        expect = oracle_blocks(job)
        for kl, blk in expect.items():
            np.testing.assert_allclose(results[0].blocks[kl], blk,
                                       rtol=1e-12, atol=1e-12)

    def test_post_completion_duplicate_is_cache_hit(self):
        job = make_job(seed=12)
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            first = svc.submit(job)
            first.result(timeout=60.0)
            again = svc.submit(job)
            assert again.cache_hit and again.done()
            assert again.result() is first.result()
        assert svc.metrics.executions.value == 1
        assert svc.metrics.cache_hits.value == 1


class TestServiceCacheEviction:
    def test_budget_forces_recompute(self):
        a, b = make_job(seed=1), make_job(seed=2)
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as probe:
            nbytes = probe.submit(a).result(timeout=60.0).nbytes
        cfg = ServiceConfig(
            workers=1, fleet_ranks=1, cache_bytes=int(1.5 * nbytes)
        )
        with GreensService(cfg) as svc:
            svc.submit(a).result(timeout=60.0)
            svc.submit(b).result(timeout=60.0)   # evicts a (budget < 2x)
            assert svc.cache_stats().evictions == 1
            resubmit = svc.submit(a)
            resubmit.result(timeout=60.0)
            assert not resubmit.cache_hit
        assert svc.metrics.executions.value == 3


class TestServiceChaos:
    def test_worker_crash_retried_with_correct_result(self, tmp_path):
        plan = FaultPlan(
            seed=0,
            rules=(
                FaultRule(site="worker.task", kind=FaultKind.CRASH, once=True),
            ),
            state_dir=str(tmp_path / "chaos"),
        )
        cfg = ServiceConfig(
            workers=1, fleet_ranks=1, max_retries=2, retry_backoff=0.01,
            chaos_plan=plan,
        )
        job = make_job(seed=21)
        with GreensService(cfg) as svc:
            result = svc.submit(job).result(timeout=60.0)
        assert plan.fired() == 1
        assert svc.metrics.retries.value == 1
        assert svc.metrics.failed.value == 0
        expect = oracle_blocks(job)
        for kl, blk in expect.items():
            np.testing.assert_allclose(result.blocks[kl], blk,
                                       rtol=1e-12, atol=1e-12)

    def test_timeout_surfaces_as_typed_error(self):
        cfg = ServiceConfig(
            workers=1, fleet_ranks=1, job_timeout=0.3, task_fn=_sleep_task
        )
        t0 = time.monotonic()
        svc = GreensService(cfg)
        try:
            ticket = svc.submit(make_job(seed=22))
            with pytest.raises(JobTimeoutError):
                ticket.result(timeout=30.0)
            assert svc.metrics.timeouts.value == 1
            assert svc.metrics.failed.value == 1
        finally:
            svc.shutdown(drain=False)
        assert time.monotonic() - t0 < 10.0


class TestServiceShutdown:
    def test_graceful_drain_completes_queued_work(self):
        jobs = [make_job(seed=s, q=s % 4) for s in range(6)]
        svc = GreensService(ServiceConfig(workers=2, fleet_ranks=1))
        tickets = [svc.submit(j) for j in jobs]
        svc.shutdown(drain=True)
        assert all(t.done() for t in tickets)
        for job, ticket in zip(jobs, tickets):
            assert ticket.result().fingerprint == job.fingerprint
        assert svc.metrics.completed.value == len(jobs)
        with pytest.raises(ServiceClosedError):
            svc.submit(make_job(seed=99))

    def test_forced_shutdown_fails_queued_tickets(self, tmp_path):
        gate = str(tmp_path / "gate-never-opened")
        cfg = ServiceConfig(
            workers=1, fleet_ranks=1, batch_max=1, max_retries=0,
            retry_backoff=0.01,
            task_fn=functools.partial(_gated_task, gate_path=gate),
        )
        svc = GreensService(cfg)
        tickets = [svc.submit(make_job(seed=s)) for s in range(3)]
        # Wait for the first entry to be dispatched (stuck on the gate).
        assert _wait_until(lambda: svc.queue_depth == 2)
        svc.shutdown(drain=False, timeout=20.0)
        for ticket in tickets:
            assert _wait_until(ticket.done, timeout=20.0)
            assert isinstance(
                ticket.exception(), (ServiceClosedError, WorkerCrashError)
            )

    def test_context_manager_drains(self):
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            ticket = svc.submit(make_job(seed=31))
        assert ticket.done() and ticket.result().flops > 0


class TestServiceBackpressure:
    def test_reject_policy_raises_and_counts(self, tmp_path):
        gate = str(tmp_path / "gate")
        cfg = ServiceConfig(
            workers=1, fleet_ranks=1, batch_max=1, queue_capacity=1,
            backpressure=BackpressurePolicy.REJECT,
            task_fn=functools.partial(_gated_task, gate_path=gate),
        )
        with GreensService(cfg) as svc:
            blocker = svc.submit(make_job(seed=41))
            # Wait until the blocker is dispatched and the queue is empty.
            assert _wait_until(lambda: svc.queue_depth == 0)
            queued = svc.submit(make_job(seed=42))
            with pytest.raises(QueueFullError):
                svc.submit(make_job(seed=43))
            assert svc.metrics.rejected.value == 1
            open(gate, "w").close()
            blocker.result(timeout=30.0)
            queued.result(timeout=30.0)

    def test_shed_lowest_fails_victim_ticket(self, tmp_path):
        gate = str(tmp_path / "gate")
        cfg = ServiceConfig(
            workers=1, fleet_ranks=1, batch_max=1, queue_capacity=1,
            backpressure=BackpressurePolicy.SHED_LOWEST,
            task_fn=functools.partial(_gated_task, gate_path=gate),
        )
        with GreensService(cfg) as svc:
            blocker = svc.submit(make_job(seed=44), priority=5)
            assert _wait_until(lambda: svc.queue_depth == 0)
            victim = svc.submit(make_job(seed=45), priority=0)
            winner = svc.submit(make_job(seed=46), priority=2)
            with pytest.raises(JobSheddedError):
                victim.result(timeout=30.0)
            assert svc.metrics.shed.value == 1
            open(gate, "w").close()
            blocker.result(timeout=30.0)
            winner.result(timeout=30.0)


# ----------------------------------------------------------------------
class TestEndToEndBurst:
    """The acceptance scenario: 100 jobs, >= 30% duplicates."""

    N_JOBS = 100
    DUPLICATE_FRACTION = 0.3

    def test_burst_exactly_one_execution_per_fingerprint(self):
        n_dup = int(self.N_JOBS * self.DUPLICATE_FRACTION)
        n_unique = self.N_JOBS - n_dup
        uniques = [make_job(seed=1000 + s, q=s % 4) for s in range(n_unique)]
        rng = np.random.default_rng(0)
        duplicates = [uniques[i] for i in
                      rng.integers(0, n_unique, size=n_dup)]
        assert len({j.fingerprint for j in uniques}) == n_unique

        cfg = ServiceConfig(workers=2, fleet_ranks=2, batch_max=4)
        with GreensService(cfg) as svc:
            # Phase 1: the unique jobs, submitted as one burst.
            tickets = [svc.submit(j) for j in uniques]
            results = [t.result(timeout=120.0) for t in tickets]
            # Phase 2: the duplicates — all must be served from cache.
            dup_tickets = [svc.submit(j) for j in duplicates]
            dup_results = [t.result(timeout=120.0) for t in dup_tickets]

        stats = svc.stats()
        # Exactly one FSI execution per unique fingerprint.
        assert stats["executions"] == n_unique
        assert stats["completed"] == self.N_JOBS
        assert stats["failed"] == 0
        # Cache hit rate >= the duplicate fraction of the stream.
        assert all(t.cache_hit for t in dup_tickets)
        assert stats["cache"]["hit_rate"] >= self.DUPLICATE_FRACTION
        # Every result equals the direct fsi() oracle, block for block.
        for job, res in zip(uniques, results):
            assert res.fingerprint == job.fingerprint
            expect = oracle_blocks(job)
            assert set(res.blocks) == set(expect)
            for kl, blk in expect.items():
                np.testing.assert_allclose(res.blocks[kl], blk,
                                           rtol=1e-12, atol=1e-12)
        for job, res in zip(duplicates, dup_results):
            assert res.fingerprint == job.fingerprint
        # Flop accounting flowed back from the workers.
        assert stats["flops"]["total"] > 0
        assert set(stats["flops"]["stages"]) >= {"cls", "bsofi", "wrp"}
        # Batching actually batched.
        assert stats["batches"] <= stats["executions"]
