"""The OpenMP-style threading layer."""

import threading

import numpy as np
import pytest

from repro.parallel.openmp import (
    ThreadTeam,
    chunk_ranges,
    get_max_threads,
    parallel_for,
    parallel_map,
    set_max_threads,
)
from repro.perf.tracer import FlopTracer, record_flops


class TestChunkRanges:
    def test_even_split(self):
        assert chunk_ranges(8, 4) == [range(0, 2), range(2, 4), range(4, 6), range(6, 8)]

    def test_uneven_split_bigger_first(self):
        chunks = chunk_ranges(7, 3)
        assert [len(c) for c in chunks] == [3, 2, 2]

    def test_more_parts_than_items(self):
        chunks = chunk_ranges(2, 5)
        assert [len(c) for c in chunks] == [1, 1]

    def test_covers_everything_once(self):
        for n, parts in [(10, 3), (1, 1), (13, 5), (100, 7)]:
            seen = [i for c in chunk_ranges(n, parts) for i in c]
            assert seen == list(range(n))

    def test_zero_items(self):
        assert chunk_ranges(0, 3) == []

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)


class TestParallelFor:
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    @pytest.mark.parametrize("threads", [1, 2, 5])
    def test_every_index_once(self, schedule, threads):
        hits = np.zeros(37, dtype=np.int64)
        lock = threading.Lock()

        def body(i):
            with lock:
                hits[i] += 1

        parallel_for(body, 37, num_threads=threads, schedule=schedule)
        assert np.all(hits == 1)

    def test_zero_iterations(self):
        parallel_for(lambda i: 1 / 0, 0, num_threads=2)  # body never runs

    def test_exception_propagates(self):
        def body(i):
            if i == 3:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            parallel_for(body, 8, num_threads=2)

    def test_invalid_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            parallel_for(lambda i: None, 4, num_threads=2, schedule="guided")

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            parallel_for(lambda i: None, 4, num_threads=0)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            parallel_for(lambda i: None, -1)

    def test_tracer_flows_into_workers(self):
        """Flops recorded inside parallel bodies reach the outer tracer."""
        with FlopTracer() as tr:
            parallel_for(lambda i: record_flops(10.0), 12, num_threads=3)
        assert tr.total_flops == 120.0

    def test_results_independent_of_thread_count(self):
        out1 = np.zeros(20)
        out4 = np.zeros(20)
        parallel_for(lambda i: out1.__setitem__(i, i * i), 20, num_threads=1)
        parallel_for(lambda i: out4.__setitem__(i, i * i), 20, num_threads=4)
        np.testing.assert_array_equal(out1, out4)


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(lambda x: x * 2, range(10), num_threads=3) == [
            2 * i for i in range(10)
        ]

    def test_empty(self):
        assert parallel_map(lambda x: x, [], num_threads=2) == []


class TestThreadConfig:
    def test_set_get(self):
        old = get_max_threads()
        try:
            set_max_threads(3)
            assert get_max_threads() == 3
        finally:
            set_max_threads(old)

    def test_set_invalid(self):
        with pytest.raises(ValueError):
            set_max_threads(0)


class TestThreadTeam:
    def test_team_runs(self):
        team = ThreadTeam(num_threads=2)
        acc = []
        lock = threading.Lock()

        def body(i):
            with lock:
                acc.append(i)

        team.parallel_for(body, 5)
        assert sorted(acc) == list(range(5))

    def test_team_map(self):
        team = ThreadTeam(num_threads=2)
        assert team.map(lambda x: -x, [1, 2, 3]) == [-1, -2, -3]

    def test_invalid_team(self):
        with pytest.raises(ValueError):
            ThreadTeam(num_threads=0)


class TestThreadLocalReduce:
    def test_sums_match_serial(self):
        from repro.parallel.openmp import thread_local_reduce

        def body(i, acc):
            acc.append(i * i)

        for nt in (1, 4):
            out = thread_local_reduce(
                body, 50, list, lambda a, b: a + b, num_threads=nt
            )
            assert sorted(out) == [i * i for i in range(50)]

    def test_empty_returns_none(self):
        from repro.parallel.openmp import thread_local_reduce

        assert thread_local_reduce(
            lambda i, a: None, 0, list, lambda a, b: a + b
        ) is None

    def test_array_accumulators(self):
        import numpy as np

        from repro.parallel.openmp import thread_local_reduce

        out = thread_local_reduce(
            lambda i, a: a.__iadd__(i),
            10,
            lambda: np.zeros(1),
            lambda a, b: a + b,
            num_threads=3,
        )
        assert float(out[0]) == 45.0
