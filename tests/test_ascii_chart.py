"""ASCII chart rendering for the experiment figures."""

import pytest

from repro.bench.ascii_chart import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_monotone(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_peak_fills_width(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5
        assert "2" in lines[1]

    def test_label_alignment(self):
        out = bar_chart(["x", "longer"], [1, 1], width=4)
        # Labels padded to the longest ("longer", 6 chars) + one space.
        assert all(line.index("|") == 7 for line in out.splitlines())

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])


class TestLineChart:
    def test_contains_markers_and_legend(self):
        out = line_chart(
            [1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]}, height=6, width=20
        )
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_axis_labels(self):
        out = line_chart([0, 10], {"s": [5.0, 15.0]}, height=5, width=10)
        assert "15" in out and "5" in out
        assert "0" in out and "10" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            line_chart([1, 2], {"s": [1.0]})

    def test_empty(self):
        assert line_chart([], {}) == ""
