"""Honeycomb lattice substrate + the full pipeline on it."""

import numpy as np
import pytest

from repro.core import Pattern, fsi
from repro.dqmc import DQMC, DQMCConfig
from repro.hubbard import HSField, HubbardModel
from repro.hubbard.honeycomb import HoneycombLattice


class TestGeometry:
    @pytest.fixture(scope="class")
    def lat(self):
        return HoneycombLattice(3, 3)

    def test_site_count(self, lat):
        assert lat.nsites == 18
        assert lat.ncells == 9

    def test_indexing_roundtrip(self, lat):
        for i in range(lat.nsites):
            cx, cy, s = lat.cell_of(i)
            assert lat.site_index(cx, cy, s) == i

    def test_coordination_three(self, lat):
        assert all(len(lat.neighbors(i)) == 3 for i in range(lat.nsites))

    def test_bipartite_bonds(self, lat):
        """Every bond connects A to B (the honeycomb is bipartite)."""
        K = lat.adjacency
        for i in range(lat.nsites):
            for j in np.nonzero(K[i])[0]:
                assert lat.sublattice(i) != lat.sublattice(int(j))

    def test_adjacency_symmetric(self, lat):
        K = lat.adjacency
        np.testing.assert_array_equal(K, K.T)
        assert K.sum() == 3 * lat.nsites  # 3N/2 bonds, counted twice

    def test_bond_length_unity(self, lat):
        """Nearest-neighbor distance class has radius 1."""
        D, radii = lat.distance_classes
        K = lat.adjacency
        nn_class = D[K > 0]
        assert np.all(nn_class == nn_class[0])
        assert radii[nn_class[0]] == pytest.approx(1.0)

    def test_displacement_distance_symmetric(self, lat):
        """|d(i,j)| == |d(j,i)| always; exact antisymmetry can break on
        minimum-image *ties* in the non-orthogonal cell, so the class
        map (which only sees distances) must still be symmetric."""
        d = lat.displacement_table
        r = np.sqrt(np.sum(d**2, axis=-1))
        np.testing.assert_allclose(r, r.T, atol=1e-10)
        D, _ = lat.distance_classes
        np.testing.assert_array_equal(D, D.T)

    def test_distance_classes_partition(self, lat):
        total = sum(len(lat.pairs_in_class(d)) for d in range(lat.d_max))
        assert total == lat.nsites**2

    def test_dirac_spectrum_at_u0(self):
        """U = 0 honeycomb bands: energies in [-3, 3], symmetric spectrum
        (bipartite), with the K-point zero modes on commensurate cells."""
        lat = HoneycombLattice(3, 3)  # 3x3 cells include the Dirac points
        eps = np.linalg.eigvalsh(-lat.adjacency)
        np.testing.assert_allclose(np.sort(eps), -np.sort(-eps)[::-1] * 1.0)
        assert eps.min() == pytest.approx(-3.0)
        assert np.sum(np.abs(eps) < 1e-9) >= 4  # Dirac zero modes

    def test_validation(self):
        with pytest.raises(ValueError):
            HoneycombLattice(0, 2)
        with pytest.raises(ValueError):
            HoneycombLattice(2, 2).site_index(0, 0, 2)


class TestPipelineOnHoneycomb:
    @pytest.fixture(scope="class")
    def model(self):
        return HubbardModel(HoneycombLattice(2, 2), L=8, t=1.0, U=4.0, beta=2.0)

    def test_fsi_correctness(self, model):
        field = HSField.random(8, model.N, np.random.default_rng(2))
        pc = model.build_matrix(field, +1)
        G = np.linalg.inv(pc.to_dense())
        res = fsi(pc, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        assert res.selected.max_relative_error(G) < 1e-11

    def test_dqmc_physics(self, model):
        """Bipartite half filling: density exactly 1; U suppresses docc."""
        sim = DQMC(
            model,
            DQMCConfig(warmup_sweeps=2, measurement_sweeps=4, c=4,
                       bin_size=2, seed=5, num_threads=1),
        )
        res = sim.run()
        density, _ = res.observable("density")
        assert float(density) == pytest.approx(1.0, abs=1e-9)
        assert float(res.observable("double_occupancy")[0]) < 0.25
        assert res.spxx_mean.shape == (8, model.lattice.d_max)

    def test_afm_means_opposite_sublattices(self, model):
        """Nearest-neighbor szz is negative (A/B anti-alignment)."""
        sim = DQMC(
            model,
            DQMCConfig(warmup_sweeps=3, measurement_sweeps=6, c=4,
                       bin_size=2, seed=8, num_threads=1),
        )
        res = sim.run()
        szz, _ = res.observable("szz")
        D, radii = model.lattice.distance_classes
        nn_class = int(D[model.lattice.adjacency > 0][0])
        assert szz[0] > 0 > szz[nn_class]
