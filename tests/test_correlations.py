"""Extended correlations: Wick identities, free limits, structure factors."""

import numpy as np
import pytest

from repro.core.greens_explicit import equal_time_greens
from repro.dqmc.correlations import (
    afm_structure_factor,
    charge_correlation,
    density_density,
    pairing_correlation,
    structure_factor,
)
from repro.dqmc.measurements import measure_slice
from repro.hubbard import HSField, HubbardModel, RectangularLattice


@pytest.fixture(scope="module")
def greens():
    model = HubbardModel(RectangularLattice(4, 4), L=8, U=4.0, beta=2.0)
    field = HSField.random(8, 16, np.random.default_rng(4))
    G_up = equal_time_greens(model.build_matrix(field, +1), 1)
    G_dn = equal_time_greens(model.build_matrix(field, -1), 1)
    return model, G_up, G_dn


class TestDensityDensity:
    def test_onsite_identity(self, greens):
        """<n_i n_i> = <n_i> + 2 <n_up n_dn> (since n_s^2 = n_s)."""
        _, G_up, G_dn = greens
        nn = density_density(G_up, G_dn)
        n_up = 1 - np.diag(G_up)
        n_dn = 1 - np.diag(G_dn)
        expected = n_up + n_dn + 2 * n_up * n_dn
        np.testing.assert_allclose(np.diag(nn), expected, atol=1e-12)

    def test_symmetric(self, greens):
        _, G_up, G_dn = greens
        nn = density_density(G_up, G_dn)
        np.testing.assert_allclose(nn, nn.T, atol=1e-12)

    def test_brute_force_contraction(self, greens):
        """Explicit Wick for one same-spin pair."""
        _, G_up, G_dn = greens
        nn = density_density(G_up, G_dn)
        i, j = 2, 7
        n_up = 1 - np.diag(G_up)
        n_dn = 1 - np.diag(G_dn)
        same_up = n_up[i] * n_up[j] + (0.0 - G_up[j, i]) * G_up[i, j]
        same_dn = n_dn[i] * n_dn[j] + (0.0 - G_dn[j, i]) * G_dn[i, j]
        cross = n_up[i] * n_dn[j] + n_dn[i] * n_up[j]
        assert nn[i, j] == pytest.approx(same_up + same_dn + cross, abs=1e-12)


class TestChargeCorrelation:
    def test_connected_sums_near_zero(self, greens):
        """Particle number is conserved per configuration, so the
        connected correlation summed over j is O(fluctuations) small."""
        model, G_up, G_dn = greens
        cc = charge_correlation(G_up, G_dn, model.lattice)
        assert cc.shape == (model.lattice.d_max,)

    def test_onsite_positive(self, greens):
        model, G_up, G_dn = greens
        cc = charge_correlation(G_up, G_dn, model.lattice)
        assert cc[0] > 0  # <n^2> - <n>^2 > 0


class TestPairing:
    def test_free_fermion_factorisation(self):
        """U = 0: G_up == G_dn and the pair correlation is G(i,j)^2."""
        model = HubbardModel(RectangularLattice(3, 3), L=8, U=0.0, beta=2.0)
        field = HSField.ordered(8, 9)
        G = equal_time_greens(model.build_matrix(field, +1), 1)
        pc = pairing_correlation(G, G, model.lattice)
        D, radii = model.lattice.distance_classes
        ref = np.bincount(
            D.ravel(), weights=(G * G).ravel(), minlength=len(radii)
        ) / np.bincount(D.ravel(), minlength=len(radii))
        np.testing.assert_allclose(pc, ref, atol=1e-12)

    def test_onsite_dominates(self, greens):
        model, G_up, G_dn = greens
        pc = pairing_correlation(G_up, G_dn, model.lattice)
        assert pc[0] == np.max(np.abs(pc))


class TestStructureFactor:
    def test_q_zero_is_total_sum(self, greens):
        model, G_up, G_dn = greens
        nn = density_density(G_up, G_dn)
        s0 = structure_factor(nn, model.lattice, (0.0, 0.0))
        assert s0 == pytest.approx(float(nn.sum()) / model.N)

    def test_afm_grows_with_beta(self):
        """Cooling the half-filled model strengthens (pi, pi) order.

        Averaged over a few HS configurations to suppress noise.
        """
        lattice = RectangularLattice(4, 4)

        def mean_safm(beta, L):
            model = HubbardModel(lattice, L=L, U=4.0, beta=beta)
            vals = []
            for seed in range(4):
                field = HSField.random(L, 16, np.random.default_rng(seed))
                gu = equal_time_greens(model.build_matrix(field, +1), 1)
                gd = equal_time_greens(model.build_matrix(field, -1), 1)
                vals.append(afm_structure_factor(gu, gd, lattice))
            return float(np.mean(vals))

        assert mean_safm(4.0, 16) > mean_safm(0.5, 4)

    def test_afm_consistent_with_szz_sum(self, greens):
        """S(pi,pi) equals the (-1)^{dx+dy}-weighted sum of pairwise szz."""
        model, G_up, G_dn = greens
        s = afm_structure_factor(G_up, G_dn, model.lattice)
        # Recompute from the distance-resolved szz of measure_slice via
        # the displacement table.
        m = measure_slice(G_up, G_dn, model)
        disp = model.lattice.displacement_table
        signs = (-1.0) ** (np.abs(disp[..., 0]) + np.abs(disp[..., 1]))
        D, _ = model.lattice.distance_classes
        szz_by_class = m.szz
        # szz per pair is constant per class only on average; rebuild the
        # exact pair matrix instead for the check.
        N = model.N
        eye = np.eye(N)
        n_up = 1 - np.diag(G_up)
        n_dn = 1 - np.diag(G_dn)
        pair = 0.25 * (
            np.multiply.outer(n_up, n_up) + (eye - G_up.T) * G_up
            + np.multiply.outer(n_dn, n_dn) + (eye - G_dn.T) * G_dn
            - np.multiply.outer(n_up, n_dn) - np.multiply.outer(n_dn, n_up)
        )
        ref = float((signs * pair).sum()) / N
        assert s == pytest.approx(ref, rel=1e-10)
