"""The resilience layer: guards, fallback ladder, chaos plans, health.

Covers the robustness acceptance scenarios:

* numerical guards catch NaN/Inf, condition blow-up, and wrong
  inverses, as typed :class:`NumericalHealthError`\\ s;
* the fallback ladder rescues an ill-conditioned low-temperature case
  the direct solve gets wrong (checked against both the explicit
  formula and the UDT-stabilised oracle);
* :class:`FaultPlan` decisions are deterministic and JSON-stable;
* the circuit breaker trips, probes, and recovers; the service sheds
  new compute with :class:`ServiceDegradedError` while OPEN and still
  serves cache hits;
* admission validation rejects unusable jobs with
  :class:`InvalidJobError` before they become cache keys;
* ``/healthz`` rides next to ``/metrics``.
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.core.cls import cls
from repro.core.fsi import fallback_rungs, fsi, fsi_resilient
from repro.core.greens_explicit import equal_time_greens
from repro.core.patterns import Pattern
from repro.core.pcyclic import BlockPCyclic
from repro.dqmc.stabilize import stable_equal_time
from repro.hubbard.hs_field import HSField
from repro.hubbard.lattice import RectangularLattice
from repro.hubbard.matrix import HubbardModel
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    FaultKind,
    FaultPlan,
    FaultRule,
    GuardConfig,
    NumericalHealthError,
    ServiceState,
    estimate_condition,
    screen_finite,
)
from repro.resilience import chaos
from repro.resilience.guards import (
    check_cluster_conditions,
    check_seed_residual,
    sample_indices,
)
from repro.service import (
    GreensJob,
    GreensService,
    InvalidJobError,
    ModelSpec,
    ServiceConfig,
    ServiceDegradedError,
)
from repro.telemetry.exporters import MetricsServer
from repro.telemetry.metrics import MetricRegistry


def toy_pcyclic(L: int = 12, N: int = 6, seed: int = 3) -> BlockPCyclic:
    rng = np.random.default_rng(seed)
    return BlockPCyclic(np.eye(N)[None] + 0.3 * rng.standard_normal((L, N, N)))


def cold_hubbard() -> BlockPCyclic:
    """beta=8, U=4: cluster products at c=16 span >1e13 in condition."""
    model = HubbardModel(RectangularLattice(2, 2), L=32, U=4.0, beta=8.0)
    field = HSField.random(32, 4, np.random.default_rng(3))
    return model.build_matrix(field, +1)


# ----------------------------------------------------------------------
# guards
# ----------------------------------------------------------------------

class TestGuards:
    def test_screen_finite_passes_clean_arrays(self):
        screen_finite("input", np.ones((3, 3)), np.zeros(5))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_screen_finite_trips(self, bad):
        arr = np.ones((4, 4))
        arr[1, 2] = bad
        with pytest.raises(NumericalHealthError, match="non-finite") as ei:
            screen_finite("cls", np.ones(3), arr)
        assert ei.value.check == "finite"
        assert ei.value.site == "cls"

    def test_estimate_condition_matches_exact_1norm(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 8, 20):
            A = rng.standard_normal((n, n)) + 3 * np.eye(n)
            est = estimate_condition(A)
            exact = np.linalg.cond(A, 1)
            # Hager/Higham estimates are exact for these sizes in
            # practice; allow slack for the estimator's lower-bound bias.
            assert exact * 0.3 <= est <= exact * 1.01

    def test_estimate_condition_singular_is_inf(self):
        A = np.ones((4, 4))  # rank 1
        assert estimate_condition(A) == np.inf
        assert estimate_condition(np.zeros((3, 3))) == np.inf
        bad = np.eye(3)
        bad[0, 0] = np.nan
        assert estimate_condition(bad) == np.inf

    def test_sample_indices_deterministic_spread(self):
        assert sample_indices(10, 0) == []
        assert sample_indices(0, 3) == []
        assert sample_indices(5, 10) == [0, 1, 2, 3, 4]
        picked = sample_indices(100, 3)
        assert picked == [0, 49, 99]

    def test_cluster_condition_guard_trips_on_tight_limit(self):
        pc = toy_pcyclic()
        reduced = cls(pc, 4, 0)
        config = GuardConfig(condition_limit=1.5, condition_samples=8)
        with pytest.raises(NumericalHealthError, match="condition") as ei:
            check_cluster_conditions(reduced.B, config)
        assert ei.value.check == "condition"
        assert ei.value.value > ei.value.limit
        # A generous limit passes and returns the worst estimate.
        worst = check_cluster_conditions(
            reduced.B, GuardConfig(condition_samples=8)
        )
        assert 1.0 < worst < 1e12

    def test_seed_residual_accepts_correct_inverse(self):
        from repro.core.bsofi import bsofi

        pc = toy_pcyclic()
        reduced = cls(pc, 4, 1)
        seeds = bsofi(reduced)
        config = GuardConfig(residual_samples=3)
        worst = check_seed_residual(reduced.B, seeds, config)
        assert worst < 1e-12

    def test_seed_residual_rejects_wrong_inverse(self):
        from repro.core.bsofi import bsofi

        pc = toy_pcyclic()
        reduced = cls(pc, 4, 1)
        seeds = bsofi(reduced) * 1.01  # 1% wrong everywhere
        with pytest.raises(NumericalHealthError, match="residual"):
            check_seed_residual(
                reduced.B, seeds, GuardConfig(residual_samples=3)
            )

    def test_guard_config_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(condition_limit=0.0)
        with pytest.raises(ValueError):
            GuardConfig(residual_limit=-1.0)
        with pytest.raises(ValueError):
            GuardConfig(condition_samples=-1)

    def test_guarded_fsi_matches_unguarded(self):
        pc = toy_pcyclic()
        plain = fsi(pc, 4, Pattern.COLUMNS, q=1)
        guarded = fsi(pc, 4, Pattern.COLUMNS, q=1, guards=GuardConfig())
        assert guarded.health is not None
        assert guarded.health.checks_run > 0
        assert guarded.health.tripped is None
        for kl in plain.selected:
            np.testing.assert_array_equal(
                guarded.selected[kl], plain.selected[kl]
            )

    def test_guarded_fsi_trips_on_nan_input(self):
        pc = toy_pcyclic()
        B = pc.B.copy()
        B[2, 0, 0] = np.nan
        with pytest.raises(NumericalHealthError, match="input"):
            fsi(BlockPCyclic(B), 4, Pattern.DIAGONAL, q=0,
                guards=GuardConfig())


# ----------------------------------------------------------------------
# fallback ladder
# ----------------------------------------------------------------------

class TestFallbackLadder:
    def test_fallback_rungs_are_divisor_chains(self):
        assert fallback_rungs(8) == [8, 4, 2, 1]
        assert fallback_rungs(6) == [6, 3, 1]
        assert fallback_rungs(5) == [5, 1]
        assert fallback_rungs(1) == [1]
        with pytest.raises(ValueError):
            fallback_rungs(0)

    def test_healthy_solve_serves_direct(self):
        pc = toy_pcyclic()
        res = fsi_resilient(pc, 4, Pattern.COLUMNS, q=1)
        assert res.rung == "direct"
        plain = fsi(pc, 4, Pattern.COLUMNS, q=1)
        for kl in plain.selected:
            np.testing.assert_array_equal(res.selected[kl], plain.selected[kl])

    def test_fallback_serves_requested_selection(self):
        """Force the direct rung to trip; c=2 must serve the *same*
        block set the caller asked for, filtered from the finer run."""
        pc = toy_pcyclic()
        reduced = cls(pc, 4, 3)
        direct_cond = max(
            estimate_condition(reduced.B[i]) for i in range(reduced.B.shape[0])
        )
        half = cls(pc, 2, 1)
        half_cond = max(
            estimate_condition(half.B[i]) for i in range(half.B.shape[0])
        )
        assert half_cond < direct_cond
        limit = float(np.sqrt(half_cond * direct_cond))
        guards = GuardConfig(condition_limit=limit, condition_samples=64)
        res = fsi_resilient(pc, 4, Pattern.COLUMNS, q=3, guards=guards)
        assert res.rung == "c=2"
        oracle = fsi(pc, 4, Pattern.COLUMNS, q=3)
        assert sorted(res.selected) == sorted(oracle.selected)
        for kl in oracle.selected:
            np.testing.assert_allclose(
                res.selected[kl], oracle.selected[kl], atol=1e-8
            )

    def test_fallback_seeds_match_served_selection(self):
        """Regression: fallback rungs used to ship the *finer* rung's
        seed grid (``b' = L/cur`` blocks) under a selection reporting
        the requested ``c`` — indexing seeds by the served selection
        then hit the wrong entries.  Seeds must now be the exact
        requested-``c`` grid."""
        pc = toy_pcyclic()
        reduced = cls(pc, 4, 3)
        direct_cond = max(
            estimate_condition(reduced.B[i]) for i in range(reduced.B.shape[0])
        )
        half = cls(pc, 2, 1)
        half_cond = max(
            estimate_condition(half.B[i]) for i in range(half.B.shape[0])
        )
        limit = float(np.sqrt(half_cond * direct_cond))
        guards = GuardConfig(condition_limit=limit, condition_samples=64)
        res = fsi_resilient(pc, 4, Pattern.COLUMNS, q=3, guards=guards)
        assert res.rung == "c=2"
        oracle = fsi(pc, 4, Pattern.COLUMNS, q=3)
        b = pc.L // 4
        assert res.seeds.shape == (b, b, pc.N, pc.N)
        assert res.selection.seeds == oracle.selection.seeds
        np.testing.assert_allclose(res.seeds, oracle.seeds, atol=1e-8)

    def test_udt_rung_is_last_resort(self):
        pc = toy_pcyclic()
        guards = GuardConfig(condition_limit=1.0 + 1e-12)  # trips every c
        res = fsi_resilient(pc, 4, Pattern.FULL_DIAGONAL, q=0, guards=guards)
        assert res.rung == "udt"
        assert res.seeds.shape[0] == 0  # the UDT rung has no seeds
        for k in range(1, pc.L + 1):
            np.testing.assert_allclose(
                res.selected[k, k], stable_equal_time(pc, k), atol=1e-10
            )

    def test_non_diagonal_pattern_reraises_when_ladder_exhausts(self):
        pc = toy_pcyclic()
        guards = GuardConfig(condition_limit=1.0 + 1e-12)
        with pytest.raises(NumericalHealthError):
            fsi_resilient(pc, 4, Pattern.COLUMNS, q=0, guards=guards)

    def test_rescues_cold_hubbard_acceptance(self):
        """The headline acceptance case: at beta=8, U=4, c=16 the CLS
        clustered products reach condition ~3e13 and the *default*
        condition guard trips; the c=8 rung serves a result that
        matches both the explicit formula (to its own accuracy floor)
        and the UDT-stabilised oracle — 4 orders of magnitude closer
        than what the unguarded direct solve returns.
        """
        pc = cold_hubbard()
        res = fsi_resilient(pc, 16, Pattern.FULL_DIAGONAL, q=0)
        assert res.rung == "c=8"
        direct = fsi(pc, 16, Pattern.FULL_DIAGONAL, q=0)
        worst_resilient = 0.0
        worst_direct = 0.0
        for k in range(1, pc.L + 1):
            oracle = stable_equal_time(pc, k)
            worst_resilient = max(
                worst_resilient, np.abs(res.selected[k, k] - oracle).max()
            )
            worst_direct = max(
                worst_direct, np.abs(direct.selected[k, k] - oracle).max()
            )
            np.testing.assert_allclose(
                res.selected[k, k], equal_time_greens(pc, k), atol=1e-3
            )
        assert worst_resilient < 1e-9
        assert worst_direct > 1e-8  # the rescue was real


# ----------------------------------------------------------------------
# chaos plans
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule(site="worker.task", kind=FaultKind.CRASH,
                          probability=0.5),
            ),
        )
        keys = [f"job-{i}" for i in range(64)]
        first = [plan.decide("worker.task", k) is not None for k in keys]
        second = [plan.decide("worker.task", k) is not None for k in keys]
        assert first == second
        assert any(first) and not all(first)  # p=0.5 actually splits

    def test_different_seeds_differ(self):
        keys = [f"job-{i}" for i in range(64)]

        def fires(seed: int) -> list[bool]:
            plan = FaultPlan(
                seed=seed,
                rules=(
                    FaultRule(site="s", kind=FaultKind.HANG, probability=0.5),
                ),
            )
            return [plan.decide("s", k) is not None for k in keys]

        assert fires(1) != fires(2)

    def test_json_round_trip_preserves_decisions(self):
        plan = FaultPlan(
            seed=11,
            rules=(
                FaultRule(site="cls.output", kind=FaultKind.CORRUPT,
                          probability=0.3),
                FaultRule(site="worker.task", kind=FaultKind.HANG,
                          probability=0.2, hang_seconds=1.5),
            ),
        )
        clone = FaultPlan.from_json(plan.to_json())
        # NaN corrupt_value defeats dataclass ==; JSON form is canonical.
        assert clone.to_json() == plan.to_json()
        assert (clone.seed, clone.state_dir) == (plan.seed, plan.state_dir)
        for i in range(32):
            key = f"k{i}"
            for site in ("cls.output", "worker.task"):
                mine = plan.decide(site, key)
                theirs = clone.decide(site, key)
                assert (mine is None) == (theirs is None)
                if mine is not None:
                    assert (mine.site, mine.kind) == (theirs.site, theirs.kind)
        # NaN corrupt_value survives the JSON detour as a string.
        parsed = json.loads(plan.to_json())
        assert parsed["rules"][0]["corrupt_value"] == "nan"
        assert np.isnan(clone.rules[0].corrupt_value)

    def test_once_rule_fires_exactly_once(self, tmp_path):
        plan = FaultPlan(
            seed=0,
            rules=(
                FaultRule(site="worker.task", kind=FaultKind.CRASH,
                          once=True),
            ),
            state_dir=str(tmp_path / "chaos"),
        )
        assert plan.decide("worker.task", "job-a") is not None
        assert plan.decide("worker.task", "job-a") is None  # claimed
        assert plan.fired() == 1
        # A different key gets its own single firing.
        assert plan.decide("worker.task", "job-b") is not None
        assert plan.fired() == 2

    def test_once_requires_state_dir(self):
        with pytest.raises(ValueError, match="state_dir"):
            FaultPlan(
                seed=0,
                rules=(FaultRule(site="s", kind=FaultKind.CRASH, once=True),),
            )

    def test_corrupt_array_only_under_active_plan(self):
        arr = np.ones((3, 4, 4))
        assert chaos.corrupt_array("cls.output", arr) is None
        plan = FaultPlan(
            seed=1,
            rules=(FaultRule(site="cls.output", kind=FaultKind.CORRUPT),),
        )
        with chaos.activate(plan), chaos.job_key("k"):
            assert chaos.is_active()
            out = chaos.corrupt_array("cls.output", arr)
        assert out is not None
        assert not np.isfinite(out).all()
        assert np.isfinite(arr).all()  # original untouched
        assert not chaos.is_active()

    def test_illcond_corruption_blows_up_condition(self):
        rng = np.random.default_rng(0)
        arr = np.eye(5) + 0.1 * rng.standard_normal((5, 5))
        plan = FaultPlan(
            seed=1,
            rules=(FaultRule(site="cls.output", kind=FaultKind.ILLCOND),),
        )
        with chaos.activate(plan), chaos.job_key("k"):
            out = chaos.corrupt_array("cls.output", arr)
        assert out is not None
        assert estimate_condition(out) > 1e10


# ----------------------------------------------------------------------
# circuit breaker + service states
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers(self):
        t = [0.0]
        br = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                            clock=lambda: t[0])
        assert br.state is BreakerState.CLOSED
        br.record_failure()
        br.record_failure()
        assert br.state is BreakerState.CLOSED  # below threshold
        br.record_failure()
        assert br.state is BreakerState.OPEN
        assert br.trips == 1
        assert not br.allow()
        assert br.retry_after() == pytest.approx(10.0)
        t[0] = 10.1
        assert br.state is BreakerState.HALF_OPEN
        assert br.allow()          # the probe slot
        assert not br.allow()      # rationed to half_open_probes=1
        br.record_success()
        assert br.state is BreakerState.CLOSED
        assert br.allow()

    def test_failed_probe_reopens_and_restarts_clock(self):
        t = [0.0]
        br = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                            clock=lambda: t[0])
        br.record_failure()
        assert br.state is BreakerState.OPEN
        t[0] = 5.0
        assert br.allow()
        br.record_failure()
        assert br.state is BreakerState.OPEN
        assert br.retry_after() == pytest.approx(5.0)
        assert br.trips == 2

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state is BreakerState.CLOSED

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


SPEC = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=2.0, beta=1.0)


def make_job(seed: int, c: int = 4, spec: ModelSpec = SPEC) -> GreensJob:
    field = HSField.random(spec.L, spec.N, np.random.default_rng(seed))
    return GreensJob.from_field(spec, field, c=c, pattern=Pattern.DIAGONAL,
                                q=0)


class TestServiceHealth:
    def test_admission_rejects_nonfinite_params(self):
        spec = ModelSpec(nx=2, ny=2, L=8, U=float("nan"))
        job = make_job(seed=0, spec=spec)
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            with pytest.raises(InvalidJobError, match="U"):
                svc.submit(job)
            # Rejected before any accounting or fingerprint registration.
            assert svc.metrics.submitted.value == 0
            assert len(svc._inflight) == 0

    def test_admission_rejects_corrupt_field_buffer(self):
        good = make_job(seed=1)
        bad = GreensJob(
            spec=good.spec,
            h=bytes(len(good.h)),  # all zeros: not a +-1 spin field
            c=good.c, pattern=good.pattern, q=good.q,
        )
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            with pytest.raises(InvalidJobError, match="HS field"):
                svc.submit(bad)
            svc.submit(good).result(timeout=60.0)  # sanity: good job runs

    def test_degraded_sheds_new_compute_serves_cache(self):
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            job = make_job(seed=2)
            result = svc.submit(job).result(timeout=60.0)
            assert svc.state is ServiceState.HEALTHY
            # Trip the breaker by hand (unit-level: the chaos suite
            # trips it end-to-end through real crashes).
            for _ in range(svc.config.breaker_threshold):
                svc.breaker.record_failure()
            assert svc.state is ServiceState.DEGRADED
            with pytest.raises(ServiceDegradedError) as ei:
                svc.submit(make_job(seed=3))
            assert ei.value.retry_after > 0
            # Cache hits still flow while degraded.
            again = svc.submit(job)
            assert again.cache_hit
            assert again.result(timeout=5.0).fingerprint == result.fingerprint
            svc.breaker.reset()
            assert svc.state is ServiceState.HEALTHY
        assert svc.state is ServiceState.FAILED

    def test_health_payload_shape(self):
        with GreensService(ServiceConfig(workers=1, fleet_ranks=1)) as svc:
            payload = svc.health()
            assert payload["state"] == "healthy"
            assert payload["breaker"] == "closed"
            assert payload["retry_after"] == 0.0
            assert {"queue_depth", "inflight", "breaker_trips",
                    "consecutive_failures"} <= set(payload)

    def test_healthz_endpoint(self):
        registry = MetricRegistry()
        states = iter([
            {"state": "healthy", "breaker": "closed"},
            {"state": "degraded", "breaker": "open"},
            {"state": "failed", "breaker": "open"},
        ])
        server = MetricsServer(
            (registry,), port=0, health=lambda: next(states)
        )
        port = server.start()
        try:
            base = f"http://127.0.0.1:{port}"
            with urllib.request.urlopen(f"{base}/healthz") as rsp:
                assert rsp.status == 200
                assert json.loads(rsp.read())["state"] == "healthy"
            with urllib.request.urlopen(f"{base}/healthz") as rsp:
                assert rsp.status == 200  # degraded still routes scrapes
                assert json.loads(rsp.read())["state"] == "degraded"
            with pytest.raises(urllib.error.HTTPError) as ei:
                urllib.request.urlopen(f"{base}/healthz")
            assert ei.value.code == 503
            with urllib.request.urlopen(f"{base}/metrics") as rsp:
                assert rsp.status == 200  # /metrics unaffected
        finally:
            server.stop()

    def test_healthz_404_without_callback(self):
        server = MetricsServer((MetricRegistry(),), port=0)
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as ei:
                urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz")
            assert ei.value.code == 404
        finally:
            server.stop()
