"""End-to-end FSI driver tests (Alg. 1)."""

import numpy as np
import pytest

from repro.core.fsi import FSIResult, fsi, fsi_flops
from repro.core.patterns import Pattern, Selection
from repro.core.pcyclic import random_pcyclic
from repro.perf.tracer import FlopTracer


@pytest.fixture(scope="module")
def problem():
    pc = random_pcyclic(12, 4, np.random.default_rng(8), scale=0.65)
    return pc, np.linalg.inv(pc.to_dense())


class TestEndToEnd:
    @pytest.mark.parametrize("pattern", list(Pattern))
    def test_all_patterns_accurate(self, problem, pattern):
        pc, G = problem
        res = fsi(pc, 4, pattern=pattern, q=2, num_threads=1)
        assert res.selected.max_relative_error(G) < 1e-8

    @pytest.mark.parametrize("c", [2, 3, 4, 6])
    def test_cluster_sizes(self, problem, c):
        pc, G = problem
        res = fsi(pc, c, pattern=Pattern.COLUMNS, q=c - 1, num_threads=1)
        assert res.selected.max_relative_error(G) < 1e-7

    def test_hubbard_validation_small(self, hubbard_pc):
        """The Sec. V-A check at test scale: rel err far below 1e-10."""
        G = np.linalg.inv(hubbard_pc.to_dense())
        res = fsi(hubbard_pc, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        assert res.selected.max_relative_error(G) < 1e-12


class TestQHandling:
    def test_explicit_q_respected(self, problem):
        pc, _ = problem
        res = fsi(pc, 4, q=3, num_threads=1)
        assert res.selection.q == 3

    def test_random_q_deterministic_with_seed(self, problem):
        pc, _ = problem
        a = fsi(pc, 4, rng=77, num_threads=1)
        b = fsi(pc, 4, rng=77, num_threads=1)
        assert a.selection.q == b.selection.q

    def test_random_q_in_range(self, problem):
        pc, _ = problem
        qs = {fsi(pc, 4, rng=i, num_threads=1).selection.q for i in range(20)}
        assert qs <= set(range(4))
        assert len(qs) > 1  # actually randomised

    def test_rejects_bad_c(self, problem):
        pc, _ = problem
        with pytest.raises(ValueError, match="divisor"):
            fsi(pc, 5)


class TestResultObject:
    def test_fields(self, problem):
        pc, _ = problem
        res = fsi(pc, 3, pattern=Pattern.ROWS, q=0, num_threads=1)
        assert isinstance(res, FSIResult)
        assert res.seeds.shape == (4, 4, pc.N, pc.N)
        assert res.selection == Selection(Pattern.ROWS, L=12, c=3, q=0)
        assert res.ops.pc is pc

    def test_seeds_are_exact_blocks(self, problem, block_of):
        pc, G = problem
        res = fsi(pc, 4, pattern=Pattern.DIAGONAL, q=1, num_threads=1)
        b, c, q = 3, 4, 1
        for k0 in range(1, b + 1):
            for l0 in range(1, b + 1):
                np.testing.assert_allclose(
                    res.seeds[k0 - 1, l0 - 1],
                    block_of(G, c * k0 - q, c * l0 - q, pc.N),
                    atol=1e-9,
                )

    def test_ops_reusable_for_other_patterns(self, problem):
        """The engine wraps ROWS/COLUMNS/FULL_DIAGONAL from one seed grid."""
        from repro.core.wrap import wrap

        pc, G = problem
        res = fsi(pc, 4, pattern=Pattern.FULL_DIAGONAL, q=2, num_threads=1)
        rows = wrap(
            pc,
            res.seeds,
            Selection(Pattern.ROWS, L=12, c=4, q=2),
            num_threads=1,
            ops=res.ops,
        )
        assert rows.max_relative_error(G) < 1e-8


class TestTracerIntegration:
    def test_stage_labels_present(self, problem):
        pc, _ = problem
        with FlopTracer() as tr:
            fsi(pc, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        assert set(tr.stages) >= {"cls", "bsofi", "wrp"}
        assert tr.flops("cls") > 0
        assert tr.flops("bsofi") > 0
        assert tr.flops("wrp") > 0

    def test_stage_flops_near_formulas(self, problem):
        """Measured stage flops within 2x of the paper's leading terms
        (measured counts include lower-order factorisation work)."""
        from repro.core.bsofi import bsofi_flops
        from repro.core.cls import cls_flops
        from repro.core.wrap import wrap_flops

        pc, _ = problem
        with FlopTracer() as tr:
            fsi(pc, 4, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        assert tr.flops("cls") == cls_flops(12, 4, 4)
        assert (
            0.5 * bsofi_flops(3, 4)
            < tr.flops("bsofi")
            < 3.0 * bsofi_flops(3, 4)
        )
        assert (
            0.5 * wrap_flops(12, 4, 4, Pattern.COLUMNS)
            < tr.flops("wrp")
            < 3.0 * wrap_flops(12, 4, 4, Pattern.COLUMNS)
        )


class TestFlopsFormula:
    def test_columns_total(self):
        total = fsi_flops(100, 64, 10, Pattern.COLUMNS)
        from repro.core.bsofi import bsofi_flops
        from repro.core.cls import cls_flops
        from repro.core.wrap import wrap_flops

        assert total == cls_flops(100, 64, 10) + bsofi_flops(
            10, 64
        ) + wrap_flops(100, 64, 10, Pattern.COLUMNS)

    def test_fsi_beats_explicit_for_columns(self):
        from repro.core.flops import explicit_form_flops

        N, L, c = 100, 100, 10
        assert fsi_flops(L, N, c, Pattern.COLUMNS) < 0.1 * explicit_form_flops(
            L, N, c, Pattern.COLUMNS
        )

    def test_fsi_beats_full_lu(self):
        from repro.core.baselines import full_lu_flops

        N, L, c = 100, 100, 10
        assert fsi_flops(L, N, c, Pattern.COLUMNS) < 0.05 * full_lu_flops(L, N)
