"""Property-based tests, second wave: solver, custom wrap, tridiag,
statistics, checkerboard, charts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.ascii_chart import bar_chart, sparkline
from repro.core.custom_wrap import torus_distance, wrap_blocks
from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.core.pcyclic import random_pcyclic, torus_index
from repro.core.solve import PCyclicSolver
from repro.dqmc.stats import jackknife, jackknife_ratio
from repro.hubbard.checkerboard import CheckerboardPropagator
from repro.hubbard.lattice import RectangularLattice
from repro.tridiag import TridiagAdjacency, SchurFactors, random_btd

geometries = st.integers(2, 4).flatmap(
    lambda b: st.integers(2, 4).map(lambda c: (b * c, c))
)


class TestSolverProperties:
    @given(st.integers(1, 6), st.integers(2, 5), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_solve_residual(self, L, N, seed):
        rng = np.random.default_rng(seed)
        pc = random_pcyclic(L, N, rng, scale=0.6)
        rhs = rng.standard_normal(L * N)
        x = PCyclicSolver(pc).solve(rhs)
        np.testing.assert_allclose(pc.matvec(x), rhs, atol=1e-8)

    @given(st.integers(2, 5), st.integers(2, 4), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_slogdet_matches_dense(self, L, N, seed):
        pc = random_pcyclic(L, N, np.random.default_rng(seed), scale=0.7)
        sign, logabs = PCyclicSolver(pc).slogdet()
        ref_sign, ref_log = np.linalg.slogdet(pc.to_dense())
        assert sign == pytest.approx(ref_sign)
        assert logabs == pytest.approx(ref_log, rel=1e-8, abs=1e-8)


class TestCustomWrapProperties:
    @given(geometries, st.data())
    @settings(max_examples=15, deadline=None)
    def test_any_block_from_any_geometry(self, geom, data):
        L, c = geom
        q = data.draw(st.integers(0, c - 1))
        k = data.draw(st.integers(1, L))
        l = data.draw(st.integers(1, L))
        pc = random_pcyclic(L, 3, np.random.default_rng(L * 31 + c), scale=0.55)
        res = fsi(pc, c, pattern=Pattern.DIAGONAL, q=q, num_threads=1)
        out = wrap_blocks(pc, res.seeds, c, q, [(k, l)])
        G = np.linalg.inv(pc.to_dense())
        ref = G[(k - 1) * 3 : k * 3, (l - 1) * 3 : l * 3]
        np.testing.assert_allclose(out[(k, l)], ref, atol=1e-6)

    @given(st.integers(1, 40), st.integers(1, 40), st.integers(2, 40))
    def test_torus_distance_is_metric_like(self, a_raw, b_raw, L):
        a, b = torus_index(a_raw, L), torus_index(b_raw, L)
        dab = torus_distance(a, b, L)
        dba = torus_distance(b, a, L)
        assert abs(dab) == abs(dba) or abs(dab) + abs(dba) == L
        assert abs(dab) <= L // 2


class TestTridiagProperties:
    @given(st.integers(2, 6), st.integers(0, 2**16), st.data())
    @settings(max_examples=15, deadline=None)
    def test_adjacency_moves_anywhere(self, L, seed, data):
        N = 3
        J = random_btd(L, N, np.random.default_rng(seed))
        G = np.linalg.inv(J.to_dense())
        ops = TridiagAdjacency(SchurFactors(J))
        i = data.draw(st.integers(1, L))
        j = data.draw(st.integers(1, L))
        g = G[(i - 1) * N : i * N, (j - 1) * N : j * N]
        if i < L:
            ref = G[i * N : (i + 1) * N, (j - 1) * N : j * N]
            np.testing.assert_allclose(ops.down(g, i, j), ref, atol=1e-7)
        if j > 1:
            ref = G[(i - 1) * N : i * N, (j - 2) * N : (j - 1) * N]
            np.testing.assert_allclose(ops.left(g, i, j), ref, atol=1e-7)


class TestStatsProperties:
    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=30),
    )
    def test_ratio_with_unit_denominator_is_mean(self, xs):
        num = np.array(xs)
        den = np.ones(len(xs))
        r_mean, r_err = jackknife_ratio(num, den)
        j_mean, j_err = jackknife(num)
        assert r_mean == pytest.approx(j_mean, rel=1e-9, abs=1e-9)
        assert r_err == pytest.approx(j_err, rel=1e-6, abs=1e-9)

    @given(
        st.lists(st.floats(0.5, 100), min_size=3, max_size=30),
        st.floats(0.2, 5.0),
    )
    def test_ratio_scale_invariance(self, xs, scale):
        """Scaling numerator and denominator together leaves the ratio."""
        num = np.array(xs)
        den = np.array(xs[::-1])
        a, _ = jackknife_ratio(num, den)
        b, _ = jackknife_ratio(scale * num, scale * den)
        assert b == pytest.approx(a, rel=1e-9)


class TestCheckerboardProperties:
    @given(st.floats(0.01, 0.3), st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_inverse_roundtrip(self, dtau, seed):
        cb = CheckerboardPropagator(RectangularLattice(4, 4), 1.0, dtau)
        X = np.random.default_rng(seed).standard_normal((16, 2))
        np.testing.assert_allclose(
            cb.apply_left(cb.apply_left(X), inverse=True), X, atol=1e-10
        )

    @given(st.floats(0.01, 0.3))
    @settings(max_examples=10, deadline=None)
    def test_unit_determinant(self, dtau):
        cb = CheckerboardPropagator(RectangularLattice(4, 4), 1.0, dtau)
        assert np.linalg.det(cb.matrix()) == pytest.approx(1.0, rel=1e-9)


class TestChartProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_sparkline_length(self, xs):
        assert len(sparkline(xs)) == len(xs)

    @given(
        st.lists(st.floats(0, 1e6), min_size=1, max_size=12),
    )
    def test_bar_chart_peak_full(self, xs):
        out = bar_chart([str(i) for i in range(len(xs))], xs, width=20)
        if max(xs) > 0:
            assert max(line.count("█") for line in out.splitlines()) == 20
