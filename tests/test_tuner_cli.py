"""The hybrid auto-tuner and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.perf.machine import EDISON
from repro.perf.tuner import enumerate_configs, tune_hybrid


class TestEnumerate:
    def test_divisor_configs(self):
        configs = enumerate_configs(100)
        assert (2400, 1) in configs
        assert (200, 12) in configs
        assert (100, 24) in configs
        # All saturate 2400 cores.
        assert all(r * t == 2400 for r, t in configs)

    def test_threads_divide_cores(self):
        for _, t in enumerate_configs(10):
            assert EDISON.cores_per_node % t == 0


class TestTuner:
    def test_small_n_prefers_pure_mpi(self):
        """N = 400 fits everywhere -> pure MPI wins (paper's Fig. 9)."""
        result = tune_hybrid(400, 100, 10, 2400)
        assert result.best is not None
        assert result.best.threads_per_rank == 1

    def test_n576_needs_two_threads(self):
        """N = 576 OOMs at 12 ranks/socket; tuner picks 2 threads/rank."""
        result = tune_hybrid(576, 100, 10, 2400)
        assert result.best is not None
        assert result.best.threads_per_rank == 2

    def test_large_n_needs_more_threads(self):
        result = tune_hybrid(1024, 100, 10, 2400)
        assert result.best is not None
        assert result.best.threads_per_rank >= 4

    def test_feasible_subset(self):
        result = tune_hybrid(1024, 100, 10, 2400)
        assert 0 < len(result.feasible) < len(result.candidates)

    def test_summary_rows_shape(self):
        result = tune_hybrid(400, 100, 10, 2400)
        rows = result.summary_rows()
        assert len(rows) == len(result.candidates)
        assert all(len(r) == 3 for r in rows)


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["validate", "--nx", "4"])
        assert args.command == "validate"

    def test_validate_command_passes(self, capsys):
        rc = main(["validate", "--nx", "3", "--slices", "8", "--c", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_tune_command(self, capsys):
        rc = main(["tune", "--N", "576", "--matrices", "2400"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best:" in out
        assert "OOM" in out  # pure MPI infeasible at N=576

    def test_fsi_command(self, capsys):
        rc = main(["fsi", "--nx", "3", "--slices", "8", "--c", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fsi" in out and "explicit" in out

    def test_dqmc_command(self, capsys):
        rc = main(
            [
                "dqmc",
                "--nx", "3",
                "--slices", "8",
                "--c", "4",
                "--warmup", "1",
                "--measure", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "density" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tridiag_command(self, capsys):
        rc = main(["tridiag", "--N", "6", "--slices", "16", "--c", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FSI - RGF" in out

    def test_trace_command(self, capsys):
        rc = main(["trace", "--nx", "3", "--slices", "8", "--c", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Hutchinson" in out and "exact" in out

    def test_serve_command(self, capsys):
        rc = main(
            [
                "serve",
                "--nx", "2",
                "--slices", "8",
                "--c", "4",
                "--jobs", "10",
                "--duplicates", "0.3",
                "--workers", "1",
                "--arrival", "closed",
                "--report-every", "60",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "jobs/s" in out and "cache" in out

    def test_submit_command(self, capsys):
        rc = main(["submit", "--nx", "2", "--slices", "8", "--c", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cache_hit=True" in out


class TestCLIExitCodes:
    """Internal validation failures must surface as non-zero exits."""

    def test_dqmc_nonfinite_observables_exit_1(self, monkeypatch, capsys):
        class _BadResult:
            sweeps = 1
            acceptance_rate = float("nan")

            def observable(self, name):
                return float("nan"), float("nan")

        class _FakeDQMC:
            def __init__(self, *args, **kwargs):
                pass

            def run(self):
                return _BadResult()

        monkeypatch.setattr("repro.DQMC", _FakeDQMC)
        rc = main(
            ["dqmc", "--nx", "3", "--slices", "8", "--c", "4",
             "--warmup", "0", "--measure", "1"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAIL" in captured.err

    def test_fsi_oracle_mismatch_exit_1(self, monkeypatch, capsys):
        import dataclasses

        import repro.bench.harness as harness

        real = harness.run_explicit_baseline

        def corrupted(pc, columns, **kwargs):
            run = real(pc, columns, **kwargs)
            bad = {kl: blk + 1.0 for kl, blk in run.result.items()}
            return dataclasses.replace(run, result=bad)

        monkeypatch.setattr(harness, "run_explicit_baseline", corrupted)
        rc = main(["fsi", "--nx", "3", "--slices", "8", "--c", "4",
                   "--repeats", "1", "--warmup", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAIL" in captured.err
        assert "explicit" in captured.err

    def test_tridiag_oracle_mismatch_exit_1(self, monkeypatch, capsys):
        import repro.tridiag as tridiag

        real = tridiag.rgf_diagonal

        def corrupted(J):
            return [blk + 1.0 for blk in real(J)]

        monkeypatch.setattr(tridiag, "rgf_diagonal", corrupted)
        rc = main(["tridiag", "--N", "4", "--slices", "8", "--c", "4"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAIL" in captured.err
        assert "RGF" in captured.err

    def test_fsi_command_reports_repeats(self, capsys):
        rc = main(["fsi", "--nx", "3", "--slices", "8", "--c", "4",
                   "--repeats", "2", "--warmup", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "median" in out and "min of 2" in out
