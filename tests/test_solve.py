"""Structured p-cyclic solves and determinants."""

import numpy as np
import pytest

from repro.core.pcyclic import random_pcyclic
from repro.core.solve import PCyclicSolver, determinant
from repro.perf.tracer import FlopTracer


class TestSolve:
    @pytest.mark.parametrize("L,N", [(1, 4), (2, 3), (6, 4), (10, 5)])
    def test_residual(self, L, N):
        rng = np.random.default_rng(L * 10 + N)
        pc = random_pcyclic(L, N, rng, scale=0.6)
        rhs = rng.standard_normal((L * N, 3))
        x = PCyclicSolver(pc).solve(rhs)
        np.testing.assert_allclose(pc.matvec(x), rhs, atol=1e-11)

    def test_vector_rhs_shape_preserved(self, small_pc):
        rhs = np.ones(small_pc.shape[0])
        x = PCyclicSolver(small_pc).solve(rhs)
        assert x.shape == rhs.shape

    def test_matches_dense_solve(self, small_pc, rng):
        rhs = rng.standard_normal(small_pc.shape[0])
        x = PCyclicSolver(small_pc).solve(rhs)
        ref = np.linalg.solve(small_pc.to_dense(), rhs)
        np.testing.assert_allclose(x, ref, atol=1e-10)

    def test_factor_once_solve_many(self, small_pc, rng):
        solver = PCyclicSolver(small_pc)
        for _ in range(3):
            rhs = rng.standard_normal(small_pc.shape[0])
            x = solver.solve(rhs)
            np.testing.assert_allclose(small_pc.matvec(x), rhs, atol=1e-10)

    def test_wrong_rhs_size(self, small_pc):
        with pytest.raises(ValueError, match="leading dimension"):
            PCyclicSolver(small_pc).solve(np.ones(7))

    def test_hubbard_matrix(self, hubbard_pc, rng):
        rhs = rng.standard_normal((hubbard_pc.shape[0], 2))
        x = PCyclicSolver(hubbard_pc).solve(rhs)
        np.testing.assert_allclose(hubbard_pc.matvec(x), rhs, atol=1e-9)

    def test_solve_cheaper_than_inverse(self, hubbard_pc):
        from repro.core.baselines import full_lu_inverse

        with FlopTracer() as t_solve:
            PCyclicSolver(hubbard_pc).solve(np.ones(hubbard_pc.shape[0]))
        with FlopTracer() as t_inv:
            full_lu_inverse(hubbard_pc)
        assert t_solve.total_flops < 0.2 * t_inv.total_flops


class TestDeterminant:
    @pytest.mark.parametrize("L,N", [(1, 3), (2, 4), (5, 3), (8, 4)])
    def test_matches_dense_slogdet(self, L, N):
        pc = random_pcyclic(L, N, np.random.default_rng(L + N), scale=0.7)
        sign, logabs = determinant(pc)
        ref_sign, ref_log = np.linalg.slogdet(pc.to_dense())
        assert sign == pytest.approx(ref_sign)
        assert logabs == pytest.approx(ref_log, rel=1e-10)

    def test_negative_determinant_detected(self):
        """Build a matrix with det < 0 by flipping one block's sign
        structure until the sign flips."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            pc = random_pcyclic(3, 3, rng, scale=1.2)
            ref_sign, _ = np.linalg.slogdet(pc.to_dense())
            if ref_sign < 0:
                sign, _ = determinant(pc)
                assert sign == pytest.approx(-1.0)
                return
        pytest.skip("no negative-determinant sample drawn")

    def test_dqmc_weight_identity(self, hubbard_pc):
        """det M = det(I + B_L ... B_1) — the DQMC configuration weight."""
        from repro.core.greens_explicit import cyclic_down_product

        sign, logabs = determinant(hubbard_pc)
        A = cyclic_down_product(hubbard_pc, hubbard_pc.L)
        ref_sign, ref_log = np.linalg.slogdet(np.eye(hubbard_pc.N) + A)
        assert sign == pytest.approx(ref_sign)
        assert logabs == pytest.approx(ref_log, rel=1e-9)
