"""Golden regression test: a fixed seeded DQMC run must reproduce
previously recorded values bit-for-bit (up to float associativity).

Guards against silent behavioural drift anywhere in the pipeline —
matrix assembly, sweep RNG consumption, FSI, measurements, statistics.
If an *intentional* change alters these values, re-record them with::

    python - <<'PY'
    ... (see the docstring of record_golden below)
    PY
"""

import pytest

from repro.dqmc import DQMC, DQMCConfig
from repro.hubbard import HubbardModel, RectangularLattice

GOLDEN = {
    "acceptance": 0.6785714285714286,
    "density": 1.0139415047889107,
    "double_occupancy": 0.15252081117013294,
    "kinetic_energy": -1.5284636085631607,
    "local_moment": 0.7088998824486447,
    "szz0": 0.1772249706121612,
    "spxx00": 0.3007511905387623,
    "field_sum": 2,
}


def record_golden():
    """Recompute the golden values (run manually after intended changes)."""
    model = HubbardModel(RectangularLattice(3, 3), L=8, U=4.0, beta=2.0)
    sim = DQMC(
        model,
        DQMCConfig(
            warmup_sweeps=2,
            measurement_sweeps=5,
            c=4,
            nwrap=4,
            bin_size=1,
            seed=20160523,
            num_threads=1,
        ),
    )
    res = sim.run()
    return sim, res


class TestGoldenRun:
    @pytest.fixture(scope="class")
    def run(self):
        return record_golden()

    def test_acceptance(self, run):
        sim, _ = run
        assert sim.stats.acceptance_rate == pytest.approx(
            GOLDEN["acceptance"], rel=1e-12
        )

    @pytest.mark.parametrize(
        "name", ["density", "double_occupancy", "kinetic_energy", "local_moment"]
    )
    def test_scalar_observables(self, run, name):
        _, res = run
        mean, _ = res.observable(name)
        assert float(mean) == pytest.approx(GOLDEN[name], rel=1e-10)

    def test_szz_first_class(self, run):
        _, res = run
        szz, _ = res.observable("szz")
        assert float(szz[0]) == pytest.approx(GOLDEN["szz0"], rel=1e-10)

    def test_spxx_corner(self, run):
        _, res = run
        assert float(res.spxx_mean[0, 0]) == pytest.approx(
            GOLDEN["spxx00"], rel=1e-10
        )

    def test_final_field(self, run):
        sim, _ = run
        assert int(sim.field.h.sum()) == GOLDEN["field_sum"]
