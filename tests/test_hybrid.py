"""Alg. 3 on SimMPI: distribution, reduction, decomposition invariance."""

import numpy as np
import pytest

from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.hubbard import HSField, HubbardModel, RectangularLattice
from repro.parallel.hybrid import (
    FleetMatrixError,
    HybridConfig,
    HybridReport,
    run_fsi_fleet,
    run_selected_fleet,
)
from repro.parallel.simmpi import RankError


@pytest.fixture(scope="module")
def model():
    return HubbardModel(RectangularLattice(3, 3), L=8, U=2.0, beta=1.0)


class TestConfig:
    def test_idle_ranks_rejected(self):
        with pytest.raises(ValueError, match="idle"):
            HybridConfig(n_matrices=2, n_ranks=3, threads_per_rank=1, c=4)

    def test_batch_bounds_partition(self):
        cfg = HybridConfig(n_matrices=7, n_ranks=3, threads_per_rank=1, c=4)
        bounds = [cfg.batch_bounds(r) for r in range(3)]
        assert bounds == [(0, 3), (3, 5), (5, 7)]

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            HybridConfig(n_matrices=0, n_ranks=1, threads_per_rank=1, c=4)
        with pytest.raises(ValueError):
            HybridConfig(n_matrices=4, n_ranks=2, threads_per_rank=0, c=4)


class TestFleet:
    def test_report_fields(self, model):
        rep = run_fsi_fleet(
            model,
            HybridConfig(n_matrices=4, n_ranks=2, threads_per_rank=1, c=4, seed=1),
        )
        assert isinstance(rep, HybridReport)
        assert rep.matrices_done == 4
        assert rep.global_measurements["count"] == 4.0
        assert rep.per_rank_peak_bytes > 0
        assert rep.elapsed_seconds > 0
        assert rep.comm.messages["scatter"] == 1

    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_decomposition_invariance(self, model, ranks):
        """Global sums identical for any rank decomposition (same seed)."""
        rep = run_fsi_fleet(
            model,
            HybridConfig(
                n_matrices=5, n_ranks=ranks, threads_per_rank=1, c=4, seed=9
            ),
        )
        ref = run_fsi_fleet(
            model,
            HybridConfig(n_matrices=5, n_ranks=1, threads_per_rank=1, c=4, seed=9),
        )
        for key in ("trace_sum", "frobenius_sq"):
            assert rep.global_measurements[key] == pytest.approx(
                ref.global_measurements[key], rel=1e-12
            )

    def test_threads_do_not_change_results(self, model):
        a = run_fsi_fleet(
            model,
            HybridConfig(n_matrices=2, n_ranks=2, threads_per_rank=1, c=4, seed=5),
        )
        b = run_fsi_fleet(
            model,
            HybridConfig(n_matrices=2, n_ranks=2, threads_per_rank=3, c=4, seed=5),
        )
        assert a.global_measurements["trace_sum"] == pytest.approx(
            b.global_measurements["trace_sum"], rel=1e-12
        )

    def test_trace_sum_matches_direct_fsi(self, model):
        """The reduced quantity equals a serial recomputation."""
        cfg = HybridConfig(
            n_matrices=2, n_ranks=2, threads_per_rank=1, c=4, seed=2
        )
        rep = run_fsi_fleet(model, cfg)
        L, N = model.L, model.N
        rng = np.random.default_rng(cfg.seed)
        all_h = rng.choice(
            np.array([-1, 1], dtype=np.int8), size=(2, 1 * L * N)
        )
        expected = 0.0
        for g in range(2):
            field = HSField.from_buffer(all_h[g], L, N)
            pc = model.build_matrix(field, +1)
            res = fsi(
                pc,
                cfg.c,
                pattern=Pattern.COLUMNS,
                rng=np.random.default_rng((cfg.seed, g)),
                num_threads=1,
            )
            for (k, l), blk in res.selected.items():
                if k == l:
                    expected += float(np.trace(blk))
        assert rep.global_measurements["trace_sum"] == pytest.approx(
            expected, rel=1e-12
        )

    def test_diagonal_pattern_trace_q_invariant(self, model):
        """tr G_kk is the same for every k (cyclic products are similar
        matrices) — so the diagonal-pattern trace sum is independent of
        the random q draws."""
        a = run_fsi_fleet(
            model,
            HybridConfig(
                n_matrices=2,
                n_ranks=1,
                threads_per_rank=1,
                c=4,
                pattern=Pattern.DIAGONAL,
                seed=3,
            ),
        )
        b = run_fsi_fleet(
            model,
            HybridConfig(
                n_matrices=2,
                n_ranks=1,
                threads_per_rank=1,
                c=4,
                pattern=Pattern.DIAGONAL,
                seed=3,
            ),
        )
        assert a.global_measurements["trace_sum"] == pytest.approx(
            b.global_measurements["trace_sum"]
        )

class TestSelectedFleet:
    @staticmethod
    def jobs_for(model, qs, c=4, pattern=Pattern.DIAGONAL, seed=4):
        rng = np.random.default_rng(seed)
        return [
            (HSField.random(model.L, model.N, rng).h, c, pattern, q)
            for q in qs
        ]

    def test_matches_direct_fsi(self, model):
        jobs = self.jobs_for(model, qs=(0, 1, 2))
        outs = run_selected_fleet(model, jobs, n_ranks=2)
        assert len(outs) == len(jobs)
        for (buf, c, pattern, q), out in zip(jobs, outs):
            field = HSField.from_buffer(
                np.asarray(buf).reshape(-1), model.L, model.N
            )
            res = fsi(
                model.build_matrix(field, +1), c, pattern=pattern, q=q,
                num_threads=1,
            )
            assert set(out.blocks) == set(dict(res.selected.items()))
            for kl, blk in res.selected.items():
                np.testing.assert_allclose(
                    out.blocks[kl], blk, rtol=1e-12, atol=1e-12
                )
            assert out.flops > 0
            assert out.seconds > 0

    def test_rank_invariance(self, model):
        jobs = self.jobs_for(model, qs=(0, 1, 2, 3), seed=6)
        serial = run_selected_fleet(model, jobs, n_ranks=1)
        fleet = run_selected_fleet(model, jobs, n_ranks=3)
        for a, b in zip(serial, fleet):
            for kl, blk in a.blocks.items():
                np.testing.assert_allclose(
                    b.blocks[kl], blk, rtol=1e-12, atol=1e-12
                )

    def test_failure_reports_global_matrix_index(self, model, monkeypatch):
        """Regression: a per-matrix failure inside a fleet names the
        *global* index of the failing matrix, not just the rank."""
        import importlib

        # `repro.core.fsi` the *submodule* — the package re-exports the
        # function under the same name, shadowing attribute access.
        fsi_module = importlib.import_module("repro.core.fsi")
        real_fsi = fsi_module.fsi
        poison_q = 3

        def failing_fsi(pc, c, **kwargs):
            if kwargs.get("q") == poison_q:
                raise ValueError("injected per-matrix failure")
            return real_fsi(pc, c, **kwargs)

        monkeypatch.setattr(fsi_module, "fsi", failing_fsi)
        jobs = self.jobs_for(model, qs=(0, 1, poison_q, 0), seed=7)
        with pytest.raises(RankError, match="fleet matrix 2") as exc_info:
            run_selected_fleet(model, jobs, n_ranks=2)
        err = exc_info.value.original
        assert isinstance(err, FleetMatrixError)
        assert err.matrix_index == 2
        assert isinstance(err.original, ValueError)

    def test_empty_jobs(self, model):
        assert run_selected_fleet(model, [], n_ranks=2) == []


class TestMemory:
    def test_peak_memory_plausible(self, model):
        from repro.perf.machine import fsi_rank_memory_bytes

        rep = run_fsi_fleet(
            model,
            HybridConfig(n_matrices=2, n_ranks=1, threads_per_rank=1, c=4, seed=0),
        )
        modeled = fsi_rank_memory_bytes(
            model.N, model.L, 4, Pattern.COLUMNS, include_workspace=False
        )
        # Measured peak counts matrix + seeds + selection; must be within
        # the workspace-free model and its workspace-padded envelope.
        assert rep.per_rank_peak_bytes <= modeled * 1.05
        assert rep.per_rank_peak_bytes >= 0.5 * modeled
