"""Metropolis update algebra against dense determinants and inverses."""

import numpy as np
import pytest

from repro.core.greens_explicit import equal_time_greens
from repro.dqmc.updates import (
    UpdateStats,
    advance_slice,
    apply_flip,
    gamma_factor,
    init_wrapped,
    metropolis_ratio,
)


@pytest.fixture
def wrapped_setup(hubbard_model, hubbard_field):
    """Wrapped Green's functions at slice 3 for both spins."""
    out = {}
    for sigma in (+1, -1):
        pc = hubbard_model.build_matrix(hubbard_field, sigma)
        out[sigma] = init_wrapped(equal_time_greens(pc, 3), hubbard_model)
    return out


class TestGammaFactor:
    def test_definition(self, hubbard_model):
        nu = hubbard_model.nu
        assert gamma_factor(hubbard_model, +1, +1) == pytest.approx(
            np.exp(-2 * nu) - 1
        )
        assert gamma_factor(hubbard_model, -1, +1) == pytest.approx(
            np.exp(2 * nu) - 1
        )

    def test_spin_field_symmetry(self, hubbard_model):
        assert gamma_factor(hubbard_model, +1, -1) == pytest.approx(
            gamma_factor(hubbard_model, -1, +1)
        )

    def test_double_flip_cancels(self, hubbard_model):
        """gamma(h) then gamma(-h) composes to no change: (1+g1)(1+g2)=1."""
        g1 = gamma_factor(hubbard_model, +1, +1)
        g2 = gamma_factor(hubbard_model, -1, +1)
        assert (1 + g1) * (1 + g2) == pytest.approx(1.0)


class TestMetropolisRatio:
    @pytest.mark.parametrize("site", [0, 4, 8])
    @pytest.mark.parametrize("sigma", [+1, -1])
    def test_matches_determinant_ratio(
        self, hubbard_model, hubbard_field, wrapped_setup, site, sigma
    ):
        l = 3  # 1-based slice of the fixture
        g = gamma_factor(hubbard_model, int(hubbard_field.h[l - 1, site]), sigma)
        r = metropolis_ratio(wrapped_setup[sigma], site, g)
        d0 = np.linalg.det(hubbard_model.build_matrix(hubbard_field, sigma).to_dense())
        flipped = hubbard_field.copy()
        flipped.flip(l - 1, site)
        d1 = np.linalg.det(hubbard_model.build_matrix(flipped, sigma).to_dense())
        assert r == pytest.approx(d1 / d0, rel=1e-8)

    def test_half_filling_product_positive(
        self, hubbard_model, hubbard_field, wrapped_setup
    ):
        """r_up * r_dn > 0 at half filling (no sign problem)."""
        for i in range(hubbard_model.N):
            h = int(hubbard_field.h[2, i])
            r_up = metropolis_ratio(
                wrapped_setup[+1], i, gamma_factor(hubbard_model, h, +1)
            )
            r_dn = metropolis_ratio(
                wrapped_setup[-1], i, gamma_factor(hubbard_model, h, -1)
            )
            assert r_up * r_dn > 0


class TestApplyFlip:
    def test_matches_rebuilt_inverse(
        self, hubbard_model, hubbard_field, wrapped_setup
    ):
        l, i, sigma = 3, 4, +1
        g = gamma_factor(hubbard_model, int(hubbard_field.h[l - 1, i]), sigma)
        Gw = wrapped_setup[sigma].copy()
        r = metropolis_ratio(Gw, i, g)
        apply_flip(Gw, i, g, r)
        flipped = hubbard_field.copy()
        flipped.flip(l - 1, i)
        pc2 = hubbard_model.build_matrix(flipped, sigma)
        expected = init_wrapped(equal_time_greens(pc2, l), hubbard_model)
        np.testing.assert_allclose(Gw, expected, atol=1e-9)

    def test_two_flips_same_site_restore(self, hubbard_model, hubbard_field, wrapped_setup):
        """Flip twice at the same site: Gw returns to the original."""
        i, sigma = 2, -1
        h0 = int(hubbard_field.h[2, i])
        Gw = wrapped_setup[sigma].copy()
        g1 = gamma_factor(hubbard_model, h0, sigma)
        r1 = metropolis_ratio(Gw, i, g1)
        apply_flip(Gw, i, g1, r1)
        g2 = gamma_factor(hubbard_model, -h0, sigma)
        r2 = metropolis_ratio(Gw, i, g2)
        apply_flip(Gw, i, g2, r2)
        np.testing.assert_allclose(Gw, wrapped_setup[sigma], atol=1e-9)


class TestAdvanceSlice:
    @pytest.mark.parametrize("sigma", [+1, -1])
    def test_matches_rebuilt_next_slice(
        self, hubbard_model, hubbard_field, wrapped_setup, sigma
    ):
        l = 3
        Gw_next = advance_slice(
            wrapped_setup[sigma], hubbard_model, hubbard_field, l, sigma
        )
        pc = hubbard_model.build_matrix(hubbard_field, sigma)
        expected = init_wrapped(equal_time_greens(pc, l + 1), hubbard_model)
        np.testing.assert_allclose(Gw_next, expected, atol=1e-9)

    def test_full_cycle_returns(self, hubbard_model, hubbard_field, wrapped_setup):
        """Advancing L times returns to the starting slice.

        Each advance is a similarity transform with condition ~e^{2 nu},
        so error grows along the cycle — exactly the drift that nwrap
        rebuilds bound in the engine.  Tolerance sized accordingly.
        """
        sigma, L = +1, hubbard_model.L
        Gw = wrapped_setup[sigma]
        for step in range(L):
            l_next = (3 + step) % L  # 0-based next slice
            Gw = advance_slice(Gw, hubbard_model, hubbard_field, l_next, sigma)
        np.testing.assert_allclose(Gw, wrapped_setup[sigma], atol=1e-6)


class TestUpdateStats:
    def test_acceptance_rate(self):
        s = UpdateStats(proposed=10, accepted=4)
        assert s.acceptance_rate == 0.4

    def test_empty(self):
        assert UpdateStats().acceptance_rate == 0.0

    def test_merge(self):
        s = UpdateStats(5, 2, 1).merge(UpdateStats(5, 3, 0))
        assert (s.proposed, s.accepted, s.negative_ratios) == (10, 5, 1)
