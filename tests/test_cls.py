"""CLS block cyclic reduction: clustering products and the seed property."""

import numpy as np
import pytest

from repro.core.bsofi import bsofi
from repro.core.cls import cls, cls_flops, cluster_product
from repro.core.pcyclic import torus_index
from repro.perf.tracer import FlopTracer


class TestClusterProduct:
    def test_definition(self, small_pc):
        # c=3, q=1, i=2: j0 = 5 -> B_5 B_4 B_3
        expected = small_pc.block(5) @ small_pc.block(4) @ small_pc.block(3)
        np.testing.assert_allclose(
            cluster_product(small_pc, 2, 3, 1), expected
        )

    def test_wraps_through_seam(self, small_pc):
        # c=3, q=2, i=1: j0 = 1 -> B_1 B_0 B_-1 = B_1 B_6 B_5
        expected = small_pc.block(1) @ small_pc.block(6) @ small_pc.block(5)
        np.testing.assert_allclose(
            cluster_product(small_pc, 1, 3, 2), expected
        )

    def test_c_equals_one(self, small_pc):
        np.testing.assert_allclose(
            cluster_product(small_pc, 4, 1, 0), small_pc.block(4)
        )


class TestCLS:
    def test_reduced_shape(self, small_pc):
        red = cls(small_pc, 3, 0, num_threads=1)
        assert red.L == 2 and red.N == small_pc.N

    def test_c_one_is_passthrough(self, small_pc):
        assert cls(small_pc, 1, 0) is small_pc

    def test_blocks_cover_all_factors(self, small_pc):
        """Product of all clustered blocks equals the product of all B's
        (up to cyclic rotation)."""
        red = cls(small_pc, 2, 0, num_threads=1)
        full = np.eye(small_pc.N)
        for j in range(small_pc.L, 0, -1):
            full = full @ small_pc.block(j)
        clustered = np.eye(small_pc.N)
        for i in range(red.L, 0, -1):
            clustered = clustered @ red.block(i)
        np.testing.assert_allclose(clustered, full, atol=1e-12)

    @pytest.mark.parametrize("c,q", [(2, 0), (2, 1), (3, 0), (3, 2), (6, 3)])
    def test_seed_property(self, small_pc, small_dense_inverse, block_of, c, q):
        """Eq. (8): G~_{k0,l0} = G_{c k0 - q, c l0 - q}."""
        red = cls(small_pc, c, q, num_threads=1)
        Gt = bsofi(red)
        b = small_pc.L // c
        for k0 in range(1, b + 1):
            for l0 in range(1, b + 1):
                k = torus_index(c * k0 - q, small_pc.L)
                l = torus_index(c * l0 - q, small_pc.L)
                np.testing.assert_allclose(
                    Gt[k0 - 1, l0 - 1],
                    block_of(small_dense_inverse, k, l, small_pc.N),
                    atol=1e-9,
                )

    def test_threaded_equals_serial(self, small_pc):
        a = cls(small_pc, 3, 1, num_threads=1)
        b = cls(small_pc, 3, 1, num_threads=4)
        np.testing.assert_array_equal(a.B, b.B)

    def test_rejects_non_divisor(self, small_pc):
        with pytest.raises(ValueError, match="divisor"):
            cls(small_pc, 4, 0)

    def test_rejects_bad_q(self, small_pc):
        with pytest.raises(ValueError, match="q="):
            cls(small_pc, 3, 3)
        with pytest.raises(ValueError, match="q="):
            cls(small_pc, 3, -1)

    def test_c_one_requires_q_zero(self, small_pc):
        with pytest.raises(ValueError):
            cls(small_pc, 1, 1)


class TestFlops:
    def test_formula(self):
        assert cls_flops(100, 64, 10) == 2.0 * 10 * 9 * 64**3

    def test_formula_validates(self):
        with pytest.raises(ValueError):
            cls_flops(100, 64, 7)

    def test_measured_matches_formula_exactly(self, small_pc):
        """CLS is pure gemms: the tracer count equals 2 b (c-1) N^3."""
        with FlopTracer() as tr:
            cls(small_pc, 3, 0, num_threads=1)
        assert tr.total_flops == cls_flops(small_pc.L, small_pc.N, 3)

    def test_measured_matches_formula_threaded(self, small_pc):
        with FlopTracer() as tr:
            cls(small_pc, 2, 1, num_threads=3)
        assert tr.total_flops == cls_flops(small_pc.L, small_pc.N, 2)
