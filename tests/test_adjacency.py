"""Every adjacency relation (Eqs. (4)-(7)) against the dense inverse.

The parametrised sweep covers every (k, l) position of a 6-block
matrix, hence every boundary case: diagonal starts, seam crossings
(row/column 1 <-> L), the corner, and generic interior moves.
"""

import numpy as np
import pytest

from repro.core.adjacency import AdjacencyOps
from repro.core.pcyclic import random_pcyclic, torus_index

L, N = 6, 4


@pytest.fixture(scope="module")
def setup():
    pc = random_pcyclic(L, N, np.random.default_rng(3), scale=0.7)
    G = np.linalg.inv(pc.to_dense())
    ops = AdjacencyOps(pc)

    def blk(k, l):
        k, l = torus_index(k, L), torus_index(l, L)
        return G[(k - 1) * N : k * N, (l - 1) * N : l * N]

    return pc, ops, blk


ALL_KL = [(k, l) for k in range(1, L + 1) for l in range(1, L + 1)]


@pytest.mark.parametrize("k,l", ALL_KL)
class TestMoves:
    def test_up(self, setup, k, l):
        _, ops, blk = setup
        np.testing.assert_allclose(
            ops.up(blk(k, l), k, l), blk(k - 1, l), atol=1e-9
        )

    def test_down(self, setup, k, l):
        _, ops, blk = setup
        np.testing.assert_allclose(
            ops.down(blk(k, l), k, l), blk(k + 1, l), atol=1e-9
        )

    def test_left(self, setup, k, l):
        _, ops, blk = setup
        np.testing.assert_allclose(
            ops.left(blk(k, l), k, l), blk(k, l - 1), atol=1e-9
        )

    def test_right(self, setup, k, l):
        _, ops, blk = setup
        np.testing.assert_allclose(
            ops.right(blk(k, l), k, l), blk(k, l + 1), atol=1e-9
        )

    def test_down_right_diagonal_move(self, setup, k, l):
        _, ops, blk = setup
        np.testing.assert_allclose(
            ops.down_right(blk(k, l), k, l), blk(k + 1, l + 1), atol=1e-9
        )

    def test_up_left_diagonal_move(self, setup, k, l):
        _, ops, blk = setup
        np.testing.assert_allclose(
            ops.up_left(blk(k, l), k, l), blk(k - 1, l - 1), atol=1e-9
        )


class TestInverseMoves:
    """up and down (left and right) are mutually inverse."""

    @pytest.mark.parametrize("k,l", [(1, 1), (3, 5), (6, 1), (1, 6), (6, 6)])
    def test_down_undoes_up(self, setup, k, l):
        _, ops, blk = setup
        g = blk(k, l)
        up = ops.up(g, k, l)
        back = ops.down(up, k - 1, l)
        np.testing.assert_allclose(back, g, atol=1e-9)

    @pytest.mark.parametrize("k,l", [(1, 1), (3, 5), (6, 1), (1, 6), (2, 2)])
    def test_left_undoes_right(self, setup, k, l):
        _, ops, blk = setup
        g = blk(k, l)
        right = ops.right(g, k, l)
        back = ops.left(right, k, l + 1)
        np.testing.assert_allclose(back, g, atol=1e-9)


class TestFactorCache:
    def test_lu_cache_reused(self, setup):
        pc, _, blk = setup
        ops = AdjacencyOps(pc)
        ops.up(blk(3, 1), 3, 1)
        f1 = ops._lu[3]
        ops.up(blk(3, 2), 3, 2)
        assert ops._lu[3] is f1

    def test_transpose_cache_separate(self, setup):
        pc, _, blk = setup
        ops = AdjacencyOps(pc)
        ops.right(blk(2, 3), 2, 3)
        assert 4 in ops._lu_t and 4 not in ops._lu


class TestColumnWalk:
    """Walking a full column via repeated moves stays accurate."""

    def test_full_column_walk_down(self, setup):
        _, ops, blk = setup
        l = 4
        g = blk(l, l)
        k = l
        for _ in range(L - 1):
            g = ops.down(g, k, l)
            k = torus_index(k + 1, L)
            np.testing.assert_allclose(g, blk(k, l), atol=1e-8)

    def test_full_row_walk_left(self, setup):
        _, ops, blk = setup
        k = 2
        g = blk(k, k)
        l = k
        for _ in range(L - 1):
            g = ops.left(g, k, l)
            l = torus_index(l - 1, L)
            np.testing.assert_allclose(g, blk(k, l), atol=1e-8)


class TestHubbardBoundaries:
    """Same relations on a physical Hubbard matrix (better conditioning)."""

    def test_all_moves_hubbard(self, hubbard_pc):
        Lh, Nh = hubbard_pc.L, hubbard_pc.N
        G = np.linalg.inv(hubbard_pc.to_dense())
        ops = AdjacencyOps(hubbard_pc)

        def blk(k, l):
            k, l = torus_index(k, Lh), torus_index(l, Lh)
            return G[(k - 1) * Nh : k * Nh, (l - 1) * Nh : l * Nh]

        worst = 0.0
        for k in range(1, Lh + 1):
            for l in range(1, Lh + 1):
                g = blk(k, l)
                worst = max(
                    worst,
                    np.abs(ops.up(g, k, l) - blk(k - 1, l)).max(),
                    np.abs(ops.down(g, k, l) - blk(k + 1, l)).max(),
                    np.abs(ops.left(g, k, l) - blk(k, l - 1)).max(),
                    np.abs(ops.right(g, k, l) - blk(k, l + 1)).max(),
                )
        assert worst < 1e-10
