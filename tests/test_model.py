"""The analytic performance model: mechanisms and paper anchors.

These tests pin the *shape claims* of every figure: who wins, by what
factor, and where the feasibility boundary falls.  The paper's exact
numbers are recorded in EXPERIMENTS.md; here we assert the bands.
"""

import pytest

from repro.perf.model import (
    DQMCBreakdown,
    dqmc_runtime,
    fsi_profile,
    gemm_efficiency,
    greens_time,
    hybrid_performance,
    measurement_time,
    scaling_curve,
    thread_speedup,
)


class TestRatePrimitives:
    def test_gemm_efficiency_monotone_saturating(self):
        effs = [gemm_efficiency(N) for N in (64, 256, 1024, 4096)]
        assert all(b > a for a, b in zip(effs, effs[1:]))
        assert effs[-1] < 0.95

    def test_thread_speedup_modes(self):
        assert thread_speedup(1, "openmp") == 1.0
        assert thread_speedup(12, "openmp") > 10.5  # near-ideal
        assert thread_speedup(12, "mkl") < 7.0  # Amdahl-limited
        assert thread_speedup(12, "serial") == 1.0

    def test_thread_speedup_validation(self):
        with pytest.raises(ValueError):
            thread_speedup(0, "openmp")
        with pytest.raises(ValueError, match="mode"):
            thread_speedup(4, "cuda")


class TestFig8Top:
    """FSI reaches ~180 Gflop/s on 12 Ivy Bridge cores; the MKL-threaded
    baseline sits near 100 (abstract: '80% improvement to 180 Gflops')."""

    def test_fsi_rate_anchor(self):
        rate = fsi_profile(1024, 100, 10, 12, "openmp")["total"].gflops
        assert 160 < rate < 200

    def test_mkl_rate_anchor(self):
        rate = fsi_profile(1024, 100, 10, 12, "mkl")["total"].gflops
        assert 85 < rate < 115

    def test_fsi_beats_mkl_by_about_80_percent(self):
        f = fsi_profile(576, 100, 10, 12, "openmp")["total"].gflops
        m = fsi_profile(576, 100, 10, 12, "mkl")["total"].gflops
        assert 1.5 < f / m < 2.2

    def test_bsofi_is_the_slow_stage(self):
        """Fig. 8 top: BSOFI's rate is below CLS and WRP ('the lower
        performance rate of the dense matrix inversions is compensated
        by DGEMM-rich operations')."""
        prof = fsi_profile(576, 100, 10, 12, "openmp")
        assert prof["bsofi"].gflops < prof["cls"].gflops
        assert prof["bsofi"].gflops < prof["wrp"].gflops

    def test_rate_grows_with_block_size(self):
        rates = [
            fsi_profile(N, 100, 10, 12, "openmp")["total"].gflops
            for N in (256, 576, 1024)
        ]
        assert rates[0] < rates[1] < rates[2]


class TestFig8Bottom:
    def test_curve_structure(self):
        sc = scaling_curve(576, 100, 10)
        assert set(sc) == {"threads", "ideal", "openmp", "mkl"}
        assert len(sc["openmp"]) == 12

    def test_openmp_close_to_ideal(self):
        sc = scaling_curve(576, 100, 10)
        assert sc["openmp"][-1] > 0.85 * sc["ideal"][-1]

    def test_mkl_flattens(self):
        sc = scaling_curve(576, 100, 10)
        assert sc["mkl"][-1] < 0.6 * sc["ideal"][-1]

    def test_negligible_overhead_at_few_threads(self):
        """Paper: 'OpenMP overhead is negligible when the number of
        threads per process is small'."""
        sc = scaling_curve(576, 100, 10)
        assert sc["openmp"][1] > 0.97 * sc["ideal"][1]


class TestFig9:
    def test_pure_mpi_fastest_when_feasible(self):
        pts = [
            hybrid_performance(400, 100, 10, r, t, 2400)
            for r, t in ((200, 12), (2400, 1))
        ]
        assert all(p.feasible for p in pts)
        assert pts[1].tflops > pts[0].tflops

    def test_oom_pattern_matches_paper(self):
        """N=400 runs everywhere; N=576 OOMs only at pure MPI; larger N
        lose more configurations."""
        feasible = {}
        for N in (400, 576, 784, 1024):
            feasible[N] = [
                hybrid_performance(N, 100, 10, r, t, 2400).feasible
                for r, t in ((200, 12), (400, 6), (800, 3), (1200, 2), (2400, 1))
            ]
        assert all(feasible[400])
        assert feasible[576] == [True, True, True, True, False]
        assert feasible[1024][0] and not feasible[1024][-1]
        # Monotone: once infeasible, stays infeasible with more ranks.
        for _N, flags in feasible.items():
            seen_false = False
            for f in flags:
                seen_false = seen_false or not f
                if seen_false:
                    assert not f or flags.index(f) < flags.index(False)

    def test_aggregate_rate_in_paper_band(self):
        """'reach to 20-30 Tflops on 100 compute nodes'."""
        pts = [
            hybrid_performance(N, 100, 10, r, t, 2400)
            for N in (400, 576, 784, 1024)
            for r, t in ((200, 12), (400, 6), (800, 3), (1200, 2), (2400, 1))
        ]
        rates = [p.tflops for p in pts if p.feasible]
        assert min(rates) > 18
        assert max(rates) < 36

    def test_oom_point_reports_memory(self):
        pt = hybrid_performance(1024, 100, 10, 2400, 1, 2400)
        assert not pt.feasible
        assert pt.tflops is None
        assert pt.mem_per_rank_gb > 8

    def test_comm_negligible(self):
        pt = hybrid_performance(400, 100, 10, 2400, 1, 2400)
        assert pt.comm_seconds < 0.05 * pt.compute_seconds


class TestFig10:
    def test_serial_profile(self):
        g = greens_time(400, 100, 10, 1, "serial")
        m = measurement_time(400, 100, 10, 1, "serial")
        assert 30 < g < 90
        assert 5 < m < 25

    def test_mkl_helps_greens_hurts_measurement(self):
        g_s = greens_time(400, 100, 10, 1, "serial")
        m_s = measurement_time(400, 100, 10, 1, "serial")
        g_m = greens_time(400, 100, 10, 12, "mkl")
        m_m = measurement_time(400, 100, 10, 12, "mkl")
        assert g_m < 0.3 * g_s  # library threading cuts BLAS-3 time
        assert m_m > m_s  # sequential measurements slow down

    def test_openmp_87_percent_reduction(self):
        """Paper: 'FSI with OpenMP uses 87% less CPU time for the
        computation of Green's functions and physical measurements'."""
        serial = greens_time(400, 100, 10, 1, "serial") + measurement_time(
            400, 100, 10, 1, "serial"
        )
        omp = greens_time(400, 100, 10, 12, "openmp") + measurement_time(
            400, 100, 10, 12, "openmp"
        )
        reduction = 1 - omp / serial
        assert 0.80 < reduction < 0.92


class TestFig11:
    def test_serial_total_hours(self):
        """'a modest size DQMC simulation ... takes three and a half
        hours' — model lands in the 3-5.5 h band."""
        r = dqmc_runtime(400, 100, 10, 100, 200, 1, "serial")
        assert 3.0 < r.total_seconds / 3600 < 5.5

    def test_eighty_percent_in_greens_and_measurements(self):
        r = dqmc_runtime(400, 100, 10, 100, 200, 1, "serial")
        assert 0.7 < r.greens_and_meas_fraction < 0.92

    def test_openmp_speedup_band(self):
        """Paper: 6.9x kernel speedup, 3.5 h -> 40 min overall (5.25x)."""
        base = dqmc_runtime(400, 100, 10, 100, 200, 1, "serial")
        omp = dqmc_runtime(400, 100, 10, 100, 200, 12, "openmp")
        speedup = base.total_seconds / omp.total_seconds
        assert 5.0 < speedup < 9.5
        assert omp.total_seconds / 60 < 50  # 'forty minutes' ballpark

    def test_mkl_speedup_modest(self):
        """MKL helps far less than OpenMP (paper: 1.3x vs 6.9x)."""
        base = dqmc_runtime(400, 100, 10, 100, 200, 1, "serial")
        mkl = dqmc_runtime(400, 100, 10, 100, 200, 12, "mkl")
        omp = dqmc_runtime(400, 100, 10, 100, 200, 12, "openmp")
        mkl_speedup = base.total_seconds / mkl.total_seconds
        assert mkl_speedup < 3.5
        assert omp.total_seconds < 0.5 * mkl.total_seconds

    def test_breakdown_type(self):
        r = dqmc_runtime(64, 16, 4, 2, 3, 2, "openmp")
        assert isinstance(r, DQMCBreakdown)
        assert r.total_seconds == pytest.approx(
            r.sweep_seconds + r.greens_seconds + r.measurement_seconds
        )
