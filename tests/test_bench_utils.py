"""Bench harness utilities: workloads, reporting, timed runs."""

import numpy as np
import pytest

from repro.bench.harness import run_explicit_baseline, run_fsi, run_lu_baseline
from repro.bench.report import Series, Table, banner, format_quantity
from repro.bench.workloads import (
    BENCH_SMALL,
    VALIDATION,
    Workload,
    make_hubbard,
    square_lattice_for,
)
from repro.core.patterns import Pattern, Selection


class TestWorkloads:
    def test_validation_matches_paper(self):
        assert VALIDATION.N == 100
        assert VALIDATION.L == 64
        assert VALIDATION.c == 8
        assert (VALIDATION.t, VALIDATION.beta, VALIDATION.U) == (1.0, 1.0, 2.0)

    def test_b_property(self):
        assert Workload("w", 4, 4, L=24, c=4).b == 6

    def test_make_hubbard_deterministic(self):
        a, _, _ = make_hubbard(BENCH_SMALL, seed=5)
        b, _, _ = make_hubbard(BENCH_SMALL, seed=5)
        np.testing.assert_array_equal(a.B, b.B)

    def test_square_lattice_for(self):
        lat = square_lattice_for(576)
        assert lat.nx == lat.ny == 24

    def test_square_lattice_rejects_non_square(self):
        with pytest.raises(ValueError, match="perfect square"):
            square_lattice_for(500)


class TestReport:
    def test_table_renders(self):
        t = Table("title", ["a", "b"], note="n")
        t.add_row(1, 2.5)
        t.add_row("x", None)
        out = t.render()
        assert "title" in out and "2.5" in out and "note: n" in out
        assert "-" in out  # None formatting

    def test_table_row_arity_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError, match="entries"):
            t.add_row(1)

    def test_series_renders(self):
        s = Series("fig", "x", [1, 2, 3])
        s.add_line("y", [10, 20, 30])
        out = s.render()
        assert "fig" in out and "30" in out

    def test_series_length_checked(self):
        s = Series("fig", "x", [1, 2])
        with pytest.raises(ValueError, match="points"):
            s.add_line("y", [1])

    def test_format_quantity(self):
        assert format_quantity(None) == "-"
        assert format_quantity(True) == "yes"
        assert format_quantity(0.0) == "0"
        assert format_quantity(123456.0) == "1.23e+05"
        assert format_quantity("s") == "s"

    def test_banner(self):
        out = banner("hello", width=10)
        assert out.splitlines()[0] == "=" * 10


class TestTimedRuns:
    @pytest.fixture(scope="class")
    def pc(self):
        pc, _, _ = make_hubbard(
            Workload("tiny", 2, 2, L=8, c=4, U=2.0, beta=1.0), seed=0
        )
        return pc

    def test_run_fsi_collects_stages(self, pc):
        run = run_fsi(pc, 4, Pattern.COLUMNS, q=1)
        assert run.seconds > 0
        assert run.flops > 0
        assert set(run.stage_flops) >= {"cls", "bsofi", "wrp"}
        assert run.gflops > 0

    def test_run_lu_baseline(self, pc):
        sel = Selection(Pattern.COLUMNS, L=pc.L, c=4, q=1)
        run = run_lu_baseline(pc, sel)
        assert run.label == "lu"
        assert run.stage_flops.get("lu", 0) > 0

    def test_run_explicit_baseline(self, pc):
        run = run_explicit_baseline(pc, [3, 7])
        assert run.label == "explicit"
        assert len(run.result) == 2 * pc.L

    def test_fsi_cheaper_than_lu(self, pc):
        sel = Selection(Pattern.COLUMNS, L=pc.L, c=4, q=1)
        f = run_fsi(pc, 4, Pattern.COLUMNS, q=1)
        l = run_lu_baseline(pc, sel)
        assert f.flops < l.flops


class TestRepeats:
    @pytest.fixture(scope="class")
    def pc(self):
        pc, _, _ = make_hubbard(
            Workload("tiny", 2, 2, L=8, c=4, U=2.0, beta=1.0), seed=0
        )
        return pc

    def test_repeats_collect_all_timings(self, pc):
        run = run_fsi(pc, 4, Pattern.COLUMNS, q=1, repeats=5, warmup=1)
        assert run.repeats == 5
        assert len(run.all_seconds) == 5
        # seconds is the min (noise-resistant), median lies between.
        assert run.seconds == min(run.all_seconds)
        assert min(run.all_seconds) <= run.seconds_median <= max(run.all_seconds)

    def test_single_run_defaults(self, pc):
        run = run_fsi(pc, 4, Pattern.COLUMNS, q=1)
        assert run.repeats == 1
        assert run.all_seconds == (run.seconds,)
        assert run.seconds_median == run.seconds

    def test_flops_counted_once(self, pc):
        """Repeats must not inflate the flop count: tracing covers
        exactly one execution."""
        once = run_fsi(pc, 4, Pattern.COLUMNS, q=1)
        many = run_fsi(pc, 4, Pattern.COLUMNS, q=1, repeats=3, warmup=2)
        assert many.flops == once.flops
        assert many.stage_flops == once.stage_flops

    def test_baselines_accept_repeats(self, pc):
        sel = Selection(Pattern.COLUMNS, L=pc.L, c=4, q=1)
        lu = run_lu_baseline(pc, sel, repeats=2, warmup=1)
        ex = run_explicit_baseline(pc, [1, 2], repeats=2)
        assert lu.repeats == 2 and ex.repeats == 2

    def test_invalid_repeats_rejected(self, pc):
        with pytest.raises(ValueError, match="repeats"):
            run_fsi(pc, 4, Pattern.COLUMNS, q=1, repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            run_fsi(pc, 4, Pattern.COLUMNS, q=1, warmup=-1)
