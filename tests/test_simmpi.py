"""SimMPI: point-to-point, collectives, errors, accounting."""

import numpy as np
import pytest

from repro.parallel.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    RankError,
    SimMPI,
)


class TestWorld:
    def test_single_rank(self):
        assert SimMPI(1).run(lambda c: c.rank) == [0]

    def test_sizes_and_ranks(self):
        out = SimMPI(4).run(lambda c: (c.Get_rank(), c.Get_size()))
        assert out == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimMPI(0)

    def test_rank_exception_wrapped(self):
        def main(comm):
            if comm.rank == 2:
                raise ValueError("bad rank")

        with pytest.raises(RankError, match="rank 2"):
            SimMPI(3).run(main)

    def test_rank_error_keeps_original(self):
        def main(comm):
            if comm.rank == 1:
                raise KeyError("x")

        with pytest.raises(RankError) as exc_info:
            SimMPI(2).run(main)
        assert isinstance(exc_info.value.original, KeyError)


class TestPointToPoint:
    def test_object_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": [1, 2]}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        out = SimMPI(2).run(main)
        assert out[1] == {"a": 7, "b": [1, 2]}

    def test_numpy_send_copies(self):
        def main(comm):
            if comm.rank == 0:
                arr = np.arange(4.0)
                comm.send(arr, dest=1)
                arr[:] = -1  # mutation must not reach the receiver
                return None
            got = comm.recv(source=0)
            return got.tolist()

        assert SimMPI(2).run(main)[1] == [0.0, 1.0, 2.0, 3.0]

    def test_buffer_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype=np.float64), dest=1, tag=5)
                return None
            buf = np.empty(10)
            comm.Recv(buf, source=0, tag=5)
            return buf.sum()

        assert SimMPI(2).run(main)[1] == 45.0

    def test_recv_buffer_size_mismatch(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(4), dest=1)
                return None
            buf = np.empty(5)
            comm.Recv(buf, source=0)

        with pytest.raises(RankError, match="rank 1"):
            SimMPI(2).run(main)

    def test_tag_matching(self):
        """A receive for tag 2 skips an earlier tag-1 message."""

        def main(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            got2 = comm.recv(source=0, tag=2)
            got1 = comm.recv(source=0, tag=1)
            return (got1, got2)

        assert SimMPI(2).run(main)[1] == ("first", "second")

    def test_any_source_any_tag(self):
        def main(comm):
            if comm.rank != 0:
                comm.send(comm.rank, dest=0, tag=comm.rank)
                return None
            got = sorted(comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(2))
            return got

        assert SimMPI(3).run(main)[0] == [1, 2]

    def test_send_to_invalid_rank(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, dest=5)

        with pytest.raises(RankError):
            SimMPI(2).run(main)

    def test_recv_timeout(self):
        def main(comm):
            if comm.rank == 1:
                comm.recv(source=0, timeout=0.05)

        with pytest.raises(RankError) as exc_info:
            SimMPI(2).run(main)
        assert isinstance(exc_info.value.original, TimeoutError)


class TestCollectives:
    def test_barrier_completes(self):
        def main(comm):
            comm.barrier()
            return comm.rank

        assert SimMPI(5).run(main) == [0, 1, 2, 3, 4]

    def test_bcast(self):
        def main(comm):
            data = {"k": [1, 2]} if comm.rank == 0 else None
            return comm.bcast(data)

        out = SimMPI(3).run(main)
        assert all(o == {"k": [1, 2]} for o in out)

    def test_bcast_nonzero_root(self):
        def main(comm):
            data = "hello" if comm.rank == 2 else None
            return comm.bcast(data, root=2)

        assert SimMPI(3).run(main) == ["hello"] * 3

    def test_scatter(self):
        def main(comm):
            data = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data)

        assert SimMPI(4).run(main) == [0, 10, 20, 30]

    def test_scatter_wrong_length(self):
        def main(comm):
            data = [1, 2] if comm.rank == 0 else None
            comm.scatter(data)

        with pytest.raises(RankError, match="rank 0"):
            SimMPI(3).run(main)

    def test_gather(self):
        def main(comm):
            return comm.gather(comm.rank**2)

        out = SimMPI(4).run(main)
        assert out[0] == [0, 1, 4, 9]
        assert out[1] is None

    def test_allgather(self):
        out = SimMPI(3).run(lambda c: c.allgather(c.rank + 1))
        assert out == [[1, 2, 3]] * 3

    def test_reduce_sum_scalars(self):
        out = SimMPI(4).run(lambda c: c.reduce(c.rank))
        assert out[0] == 6 and out[1] is None

    def test_reduce_arrays(self):
        def main(comm):
            tot = comm.reduce(np.full(3, float(comm.rank)))
            return None if tot is None else tot.tolist()

        assert SimMPI(3).run(main)[0] == [3.0, 3.0, 3.0]

    def test_reduce_dicts_recursive(self):
        def main(comm):
            return comm.reduce({"a": 1.0, "b": np.ones(2)})

        out = SimMPI(3).run(main)[0]
        assert out["a"] == 3.0
        np.testing.assert_array_equal(out["b"], 3.0 * np.ones(2))

    def test_reduce_custom_op(self):
        out = SimMPI(4).run(lambda c: c.reduce(c.rank, op=max))
        assert out[0] == 3

    def test_allreduce(self):
        assert SimMPI(4).run(lambda c: c.allreduce(1)) == [4, 4, 4, 4]

    def test_buffer_scatter(self):
        def main(comm):
            send = (
                np.arange(comm.size * 3, dtype=np.float64).reshape(comm.size, 3)
                if comm.rank == 0
                else None
            )
            recv = np.empty(3)
            comm.Scatter(send, recv)
            return recv.tolist()

        out = SimMPI(3).run(main)
        assert out == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_buffer_reduce(self):
        def main(comm):
            recv = np.empty(2) if comm.rank == 0 else None
            comm.Reduce(np.full(2, float(comm.rank + 1)), recv)
            return None if recv is None else recv.tolist()

        assert SimMPI(3).run(main)[0] == [6.0, 6.0]

    def test_successive_collectives_do_not_cross(self):
        """Regression: generation tags keep back-to-back reduces separate
        even when a fast rank races ahead."""

        def main(comm):
            a = comm.reduce({"x": float(comm.rank)})
            b = comm.reduce(float(comm.rank * 10), op=max)
            comm.barrier()
            c = comm.allreduce(1)
            return (a, b, c)

        out = SimMPI(6).run(main)
        assert out[0][0] == {"x": 15.0}
        assert out[0][1] == 50.0
        assert all(o[2] == 6 for o in out)


class TestStats:
    def test_rank_error_carries_partial_comm_stats(self):
        """A failed run reports the communication done up to the crash,
        so operators can see how far the fleet got."""
        world = SimMPI(3)

        def main(comm):
            comm.bcast("payload" if comm.rank == 0 else None)
            if comm.rank == 2:
                raise ValueError("mid-run failure")

        with pytest.raises(RankError, match="partial comm") as exc_info:
            world.run(main)
        err = exc_info.value
        assert err.stats is not None
        assert err.stats.total_messages > 0
        assert err.stats.messages["bcast"] == 1

    def test_message_accounting(self):
        world = SimMPI(3)

        def main(comm):
            comm.bcast("x" if comm.rank == 0 else None)
            comm.gather(comm.rank)

        world.run(main)
        assert world.stats.messages["bcast"] == 1
        assert world.stats.messages["gather"] == 3
        assert world.stats.total_messages > 0

    def test_byte_accounting_buffer(self):
        world = SimMPI(2)

        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(100), dest=1)
            else:
                buf = np.empty(100)
                comm.Recv(buf, source=0)

        world.run(main)
        assert world.stats.bytes["Send"] == 800


class TestNonBlocking:
    def test_isend_completes_immediately(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend("x", dest=1)
                done, val = req.test()
                assert done and val is None
                return req.wait()
            return comm.recv(source=0)

        out = SimMPI(2).run(main)
        assert out == [None, "x"]

    def test_irecv_out_of_order_tags(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.isend(i * 10, dest=1, tag=i)
                return None
            r2 = comm.irecv(source=0, tag=2)
            r0 = comm.irecv(source=0, tag=0)
            return (r2.wait(timeout=5), r0.wait(timeout=5),
                    comm.recv(source=0, tag=1))

        assert SimMPI(2).run(main)[1] == (20, 0, 10)

    def test_irecv_test_before_message(self):
        def main(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=7)
                done, _ = req.test()  # nothing sent yet (probably)
                comm.send("go", dest=0, tag=1)
                val = req.wait(timeout=5)
                return val
            comm.recv(source=1, tag=1)  # wait until peer has posted irecv
            comm.send(99, dest=1, tag=7)
            return None

        assert SimMPI(2).run(main)[1] == 99

    def test_wait_idempotent(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(5, dest=1)
                return None
            req = comm.irecv(source=0)
            a = req.wait(timeout=5)
            b = req.wait()  # cached, returns the same value
            return (a, b)

        assert SimMPI(2).run(main)[1] == (5, 5)
