"""Arbitrary-block wrapping, BTD solver, extended engine measurements,
and the strong-scaling model curve."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.custom_wrap import nearest_seed, torus_distance, wrap_blocks
from repro.core.fsi import fsi
from repro.core.patterns import Pattern, seed_indices
from repro.core.pcyclic import random_pcyclic, torus_index
from repro.dqmc import DQMC, DQMCConfig
from repro.hubbard import HubbardModel, RectangularLattice
from repro.perf.model import strong_scaling_curve
from repro.tridiag import random_btd
from repro.tridiag.solve import BTDSolver


class TestTorusDistance:
    @given(st.integers(1, 30), st.integers(1, 30), st.integers(2, 30))
    def test_roundtrip_and_bound(self, a_raw, b_raw, L):
        a, b = torus_index(a_raw, L), torus_index(b_raw, L)
        d = torus_distance(a, b, L)
        assert torus_index(b + d, L) == a
        assert -L // 2 <= d <= L // 2

    def test_seam_cases(self):
        assert torus_distance(1, 12, 12) == 1
        assert torus_distance(12, 1, 12) == -1
        assert torus_distance(1, 7, 12) == 6  # tie -> positive


class TestNearestSeed:
    def test_seed_maps_to_itself(self):
        L, c, q = 12, 4, 1
        for i0, k in enumerate(seed_indices(L, c, q), start=1):
            assert nearest_seed(k, k, L, c, q) == (i0, i0)

    def test_neighbour_maps_to_adjacent_seed(self):
        L, c, q = 12, 4, 0  # seeds 4, 8, 12
        k0, _ = nearest_seed(5, 4, L, c, q)
        assert k0 == 1  # row 5 nearest to seed row 4


class TestWrapBlocks:
    @pytest.fixture(scope="class")
    def problem(self):
        L, N, c, q = 12, 4, 4, 1
        pc = random_pcyclic(L, N, np.random.default_rng(3), scale=0.65)
        Gd = np.linalg.inv(pc.to_dense())
        res = fsi(pc, c, pattern=Pattern.DIAGONAL, q=q, num_threads=1)
        return pc, Gd, res, c, q

    def test_every_position_accurate(self, problem):
        pc, Gd, res, c, q = problem
        L, N = pc.L, pc.N
        blocks = [(k, l) for k in range(1, L + 1) for l in range(1, L + 1)]
        out = wrap_blocks(pc, res.seeds, c, q, blocks)
        for k, l in blocks:
            ref = Gd[(k - 1) * N : k * N, (l - 1) * N : l * N]
            np.testing.assert_allclose(out[(k, l)], ref, atol=1e-9)

    def test_sparse_query(self, problem):
        pc, Gd, res, c, q = problem
        N = pc.N
        out = wrap_blocks(pc, res.seeds, c, q, [(2, 9), (11, 1)])
        assert set(out) == {(2, 9), (11, 1)}
        np.testing.assert_allclose(
            out[(11, 1)], Gd[10 * N : 11 * N, :N], atol=1e-9
        )

    def test_torus_wrapped_request(self, problem):
        pc, _, res, c, q = problem
        out = wrap_blocks(pc, res.seeds, c, q, [(0, 13)])
        assert (pc.L, 1) in out

    def test_seed_positions_returned_directly(self, problem):
        pc, _, res, c, q = problem
        seeds = seed_indices(pc.L, c, q)
        out = wrap_blocks(pc, res.seeds, c, q, [(seeds[0], seeds[1])])
        np.testing.assert_array_equal(out[(seeds[0], seeds[1])], res.seeds[0, 1])

    def test_bad_seed_shape(self, problem):
        pc, _, res, c, q = problem
        with pytest.raises(ValueError, match="seed grid"):
            wrap_blocks(pc, res.seeds[:1], c, q, [(1, 1)])


class TestBTDSolver:
    @pytest.fixture(scope="class")
    def J(self):
        return random_btd(9, 4, np.random.default_rng(1))

    def test_solve_residual(self, J):
        s = BTDSolver(J)
        rhs = np.random.default_rng(2).standard_normal((36, 3))
        np.testing.assert_allclose(J.matvec(s.solve(rhs)), rhs, atol=1e-10)

    def test_factor_once_solve_many(self, J):
        s = BTDSolver(J)
        for seed in (3, 4):
            rhs = np.random.default_rng(seed).standard_normal(36)
            np.testing.assert_allclose(J.matvec(s.solve(rhs)), rhs, atol=1e-10)

    def test_matches_oneshot(self, J):
        from repro.tridiag.rgf import btd_solve

        rhs = np.ones(36)
        np.testing.assert_allclose(
            BTDSolver(J).solve(rhs), btd_solve(J, rhs), atol=1e-12
        )

    def test_slogdet(self, J):
        sign, logabs = BTDSolver(J).slogdet()
        rs, rl = np.linalg.slogdet(J.to_dense())
        assert sign == pytest.approx(rs)
        assert logabs == pytest.approx(rl, rel=1e-10)

    def test_bad_rhs(self, J):
        with pytest.raises(ValueError, match="leading dim"):
            BTDSolver(J).solve(np.ones(7))


class TestExtendedEngineMeasurements:
    def test_extended_observables_present(self):
        model = HubbardModel(RectangularLattice(3, 3), L=8, U=4.0, beta=2.0)
        sim = DQMC(
            model,
            DQMCConfig(
                warmup_sweeps=1,
                measurement_sweeps=2,
                c=4,
                bin_size=1,
                seed=4,
                num_threads=1,
                measure_extended=True,
            ),
        )
        res = sim.run()
        for name in ("charge_corr", "pairing_corr", "s_afm", "g_loc_tau", "szz_tau"):
            mean, err = res.observable(name)
            assert np.all(np.isfinite(mean))
        g_loc, _ = res.observable("g_loc_tau")
        assert g_loc.shape == (model.L,)
        assert np.all(np.asarray(g_loc) > -1e-8)
        szz_t, _ = res.observable("szz_tau")
        assert szz_t.shape == (model.L, model.lattice.d_max)

    def test_extended_off_by_default(self):
        model = HubbardModel(RectangularLattice(2, 2), L=8, U=4.0, beta=2.0)
        sim = DQMC(
            model,
            DQMCConfig(warmup_sweeps=0, measurement_sweeps=1, c=4,
                       bin_size=1, seed=1, num_threads=1),
        )
        res = sim.run()
        assert "charge_corr" not in res.estimates


class TestStrongScaling:
    def test_near_linear_until_starved(self):
        sc = strong_scaling_curve(576, 100, 10, 2400, threads_per_rank=2)
        assert sc["efficiency"][0] == pytest.approx(1.0)
        # Up to 100 nodes (1200 ranks, 2 matrices each) efficiency ~1.
        idx100 = sc["nodes"].index(100.0)
        assert sc["efficiency"][idx100] > 0.95

    def test_starvation_plateaus(self):
        """Past one matrix per rank the rate stops growing."""
        sc = strong_scaling_curve(
            400, 100, 10, 240, node_counts=[10, 20, 40], threads_per_rank=1
        )
        # 10 nodes = 240 ranks = exactly one matrix per rank; doubling
        # nodes cannot speed up a 1-matrix critical path.
        assert sc["tflops"][1] == pytest.approx(sc["tflops"][0], rel=0.05)
        assert sc["efficiency"][-1] < 0.5
