"""UDT stratification and stable equal-time Green's functions."""

import numpy as np
import pytest

from repro.core.greens_explicit import equal_time_greens
from repro.dqmc.stabilize import (
    UDT,
    stable_equal_time,
    stable_inverse_plus,
    udt_chain,
)
from repro.hubbard import HSField, HubbardModel, RectangularLattice


class TestUDT:
    def test_identity(self):
        u = UDT.identity(4)
        np.testing.assert_allclose(u.to_matrix(), np.eye(4))

    def test_from_matrix_reconstructs(self, rng):
        A = rng.standard_normal((6, 6))
        u = UDT.from_matrix(A)
        np.testing.assert_allclose(u.to_matrix(), A, atol=1e-12)

    def test_u_orthogonal(self, rng):
        u = UDT.from_matrix(rng.standard_normal((5, 5)))
        np.testing.assert_allclose(u.U.T @ u.U, np.eye(5), atol=1e-12)

    def test_d_positive(self, rng):
        u = UDT.from_matrix(rng.standard_normal((5, 5)))
        assert np.all(u.d > 0)

    def test_left_multiply(self, rng):
        A = rng.standard_normal((4, 4))
        B = rng.standard_normal((4, 4))
        u = UDT.from_matrix(A).left_multiply(B)
        np.testing.assert_allclose(u.to_matrix(), B @ A, atol=1e-11)


class TestUDTChain:
    def test_matches_naive_product(self, rng):
        mats = [rng.standard_normal((4, 4)) for _ in range(6)]
        u = udt_chain(mats, order=list(range(6)))
        naive = np.eye(4)
        for m in mats:
            naive = m @ naive
        np.testing.assert_allclose(u.to_matrix(), naive, atol=1e-10)

    def test_callable_blocks(self, rng):
        mats = [rng.standard_normal((3, 3)) for _ in range(4)]
        u = udt_chain(lambda i: mats[i], order=[0, 1, 2, 3])
        naive = mats[3] @ mats[2] @ mats[1] @ mats[0]
        np.testing.assert_allclose(u.to_matrix(), naive, atol=1e-11)

    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_stride_equivalent(self, rng, stride):
        mats = [rng.standard_normal((4, 4)) * 0.9 for _ in range(7)]
        u = udt_chain(mats, order=list(range(7)), stride=stride)
        naive = np.eye(4)
        for m in mats:
            naive = m @ naive
        np.testing.assert_allclose(u.to_matrix(), naive, atol=1e-9)

    def test_empty_order_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            udt_chain([np.eye(2)], order=[])


class TestStableInverse:
    def test_well_conditioned_matches_direct(self, rng):
        A = 0.5 * rng.standard_normal((6, 6))
        u = UDT.from_matrix(A)
        np.testing.assert_allclose(
            stable_inverse_plus(u), np.linalg.inv(np.eye(6) + A), atol=1e-10
        )

    def test_graded_scales(self, rng):
        """(I + A)^{-1} with A spanning 12 orders of magnitude."""
        Q1, _ = np.linalg.qr(rng.standard_normal((6, 6)))
        Q2, _ = np.linalg.qr(rng.standard_normal((6, 6)))
        s = np.logspace(6, -6, 6)
        A = (Q1 * s) @ Q2.T
        G = stable_inverse_plus(UDT.from_matrix(A))
        resid = np.abs((np.eye(6) + A) @ G - np.eye(6)).max()
        assert resid < 1e-7


class TestStableEqualTime:
    def test_matches_explicit_moderate_beta(self, hubbard_pc):
        for l in (1, 3, 8):
            np.testing.assert_allclose(
                stable_equal_time(hubbard_pc, l),
                equal_time_greens(hubbard_pc, l),
                atol=1e-9,
            )

    def test_torus_slice_index(self, hubbard_pc):
        np.testing.assert_allclose(
            stable_equal_time(hubbard_pc, 0),
            stable_equal_time(hubbard_pc, hubbard_pc.L),
            atol=1e-12,
        )

    def test_low_temperature_stays_accurate(self):
        """At beta = 8 the chain of 32 blocks spans ~12 decades of
        singular values.  Stability checks that do not rely on forming
        the ill-conditioned product naively:

        * all eigenvalues of G stay strictly inside [0, 1] (fermionic
          Green's function);
        * slice-consistency: G_{l+1} = B_{l+1} G_l B_{l+1}^{-1} holds
          between two *independently* UDT-stabilised computations.
        """
        model = HubbardModel(RectangularLattice(2, 2), L=32, U=4.0, beta=8.0)
        field = HSField.random(32, 4, np.random.default_rng(3))
        pc = model.build_matrix(field, +1)
        G1 = stable_equal_time(pc, 1)
        ev = np.linalg.eigvals(G1)
        assert np.all(ev.real > -1e-10) and np.all(ev.real < 1 + 1e-10)
        assert np.abs(ev.imag).max() < 1e-8
        G2 = stable_equal_time(pc, 2)
        B2 = pc.block(2)
        wrapped = B2 @ G1 @ np.linalg.inv(B2)
        np.testing.assert_allclose(wrapped, G2, atol=1e-9)

    def test_matches_bsofi_diagonal(self, hubbard_pc):
        from repro.core.bsofi import bsofi

        G = bsofi(hubbard_pc)
        np.testing.assert_allclose(
            stable_equal_time(hubbard_pc, 2), G[1, 1], atol=1e-9
        )
