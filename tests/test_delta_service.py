"""The incremental serving path: scheduler fast path + cache + metrics.

Covers the delta-serving acceptance scenarios:

* a single-flip request with a ``--base`` hint is served by the delta
  path (``rung == "delta(1)"``) and matches the direct FSI solve to
  1e-8;
* delta results are cached and chain as bases for further deltas;
* every fallback condition routes to the full solve with the right
  counter: base evicted, incompatible base, rank budget exceeded,
  depth budget exhausted, residual guard trip;
* the fingerprint version is part of the canonical encoding (a bump
  invalidates all stale fingerprints at once) and pre-v2 results
  (no stored field) never serve as bases;
* satellite fixes: ``LRUResultCache.clear()`` resets counters,
  disabled-cache ``put`` counts as a drop, ``peek`` is stat-neutral,
  and ``ServiceMetrics`` uptime is monotonic.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.fsi import fsi
from repro.core.patterns import Pattern, Selection
from repro.hubbard.hs_field import HSField
from repro.service import (
    GreensJob,
    GreensService,
    JobResult,
    LRUResultCache,
    ModelSpec,
    ServiceConfig,
    ServiceMetrics,
)

SPEC = ModelSpec(nx=2, ny=2, L=8, t=1.0, U=2.0, beta=1.0)
PATTERN = Pattern.FULL_DIAGONAL


def make_field(seed: int) -> HSField:
    return HSField.random(SPEC.L, SPEC.N, np.random.default_rng(seed))


def make_job(field: HSField, q: int = 0) -> GreensJob:
    return GreensJob.from_field(SPEC, field, c=4, pattern=PATTERN, q=q)


def flipped(field: HSField, *positions: tuple[int, int]) -> HSField:
    out = field.copy()
    for sl, site in positions:
        out.flip(sl, site)
    return out


def oracle_blocks(job: GreensJob) -> dict:
    pc = job.spec.build_model().build_matrix(job.field(), job.spec.sigma)
    return dict(fsi(pc, job.c, pattern=job.pattern, q=job.q).selected.items())


def service(**overrides) -> GreensService:
    kwargs = dict(workers=1, fleet_ranks=1)
    kwargs.update(overrides)
    return GreensService(ServiceConfig(**kwargs))


def delta_fallback_reasons(svc: GreensService) -> dict[str, float]:
    return svc.stats()["delta"]["fallbacks"]


# ----------------------------------------------------------------------
# the fast path
# ----------------------------------------------------------------------

class TestDeltaServing:
    def test_single_flip_served_by_delta(self):
        field = make_field(1)
        base_job = make_job(field)
        delta_job = make_job(flipped(field, (3, 1))).with_base(
            base_job.fingerprint
        )
        with service() as svc:
            svc.compute(base_job, timeout=60)
            ticket = svc.submit(delta_job)
            result = ticket.result(timeout=60)
        assert ticket.delta_hit
        assert not ticket.cache_hit
        assert result.rung == "delta(1)"
        assert result.delta_depth == 1
        assert result.fingerprint == delta_job.fingerprint
        ref = oracle_blocks(delta_job)
        assert sorted(result.blocks) == sorted(ref)
        for kl, blk in result.blocks.items():
            scale = float(np.linalg.norm(ref[kl])) or 1.0
            assert float(np.linalg.norm(blk - ref[kl])) / scale < 1e-8

    def test_delta_result_is_cached_and_chains_as_base(self):
        field = make_field(2)
        base_job = make_job(field)
        j1 = make_job(flipped(field, (0, 2))).with_base(base_job.fingerprint)
        j2 = make_job(flipped(field, (0, 2), (5, 3))).with_base(
            j1.fingerprint
        )
        with service() as svc:
            svc.compute(base_job, timeout=60)
            r1 = svc.compute(j1, timeout=60)
            again = svc.submit(j1)
            assert again.result(timeout=60).fingerprint == r1.fingerprint
            assert again.cache_hit
            r2 = svc.compute(j2, timeout=60)
            assert svc.stats()["delta"]["hits"] == 2
        assert r1.rung == "delta(1)"
        assert r2.rung == "delta(1)"  # diff vs j1's field is one flip
        assert r2.delta_depth == 2
        ref = oracle_blocks(j2)
        for kl, blk in r2.blocks.items():
            np.testing.assert_allclose(blk, ref[kl], atol=1e-8)

    def test_hint_does_not_change_identity(self):
        field = make_field(3)
        job = make_job(field)
        hinted = job.with_base("f" * 64)
        assert hinted.fingerprint == job.fingerprint
        assert hinted == job

    def test_rank_counts_field_diff_not_hint_order(self):
        """A 3-flip diff under a rank budget of 16 serves delta(3)."""
        field = make_field(4)
        base_job = make_job(field)
        delta_job = make_job(
            flipped(field, (0, 0), (2, 3), (7, 1))
        ).with_base(base_job.fingerprint)
        with service() as svc:
            svc.compute(base_job, timeout=60)
            result = svc.compute(delta_job, timeout=60)
        assert result.rung == "delta(3)"
        ref = oracle_blocks(delta_job)
        for kl, blk in result.blocks.items():
            np.testing.assert_allclose(blk, ref[kl], atol=1e-8)


# ----------------------------------------------------------------------
# fallback conditions
# ----------------------------------------------------------------------

class TestDeltaFallbacks:
    def test_base_evicted_falls_back_to_full_solve(self):
        field = make_field(5)
        job = make_job(field).with_base("0" * 64)
        with service() as svc:
            ticket = svc.submit(job)
            result = ticket.result(timeout=60)
            stats = svc.stats()["delta"]
            reasons = delta_fallback_reasons(svc)
        assert not ticket.delta_hit
        assert result.rung == "direct"
        assert stats["misses"] == 1
        assert reasons.get("base-evicted") == 1
        np.testing.assert_allclose(
            result.blocks[(1, 1)], oracle_blocks(job)[(1, 1)], atol=1e-8
        )

    def test_rank_budget_exceeded_falls_back(self):
        field = make_field(6)
        base_job = make_job(field)
        delta_job = make_job(
            flipped(field, (0, 0), (1, 1), (2, 2))
        ).with_base(base_job.fingerprint)
        with service(delta_rank_budget=2) as svc:
            svc.compute(base_job, timeout=60)
            result = svc.compute(delta_job, timeout=60)
            reasons = delta_fallback_reasons(svc)
        assert result.rung == "direct"
        assert reasons.get("rank") == 1

    def test_depth_budget_forces_restabilising_solve(self):
        field = make_field(7)
        base_job = make_job(field)
        j1 = make_job(flipped(field, (1, 0))).with_base(base_job.fingerprint)
        j2 = make_job(flipped(field, (1, 0), (6, 2))).with_base(
            j1.fingerprint
        )
        with service(delta_max_depth=1) as svc:
            svc.compute(base_job, timeout=60)
            r1 = svc.compute(j1, timeout=60)
            r2 = svc.compute(j2, timeout=60)
            reasons = delta_fallback_reasons(svc)
        assert r1.rung == "delta(1)" and r1.delta_depth == 1
        assert r2.rung == "direct" and r2.delta_depth == 0
        assert reasons.get("depth") == 1

    def test_residual_guard_trips_to_full_solve(self):
        field = make_field(8)
        base_job = make_job(field)
        delta_job = make_job(flipped(field, (2, 1))).with_base(
            base_job.fingerprint
        )
        with service(delta_residual_tol=0.0) as svc:
            svc.compute(base_job, timeout=60)
            result = svc.compute(delta_job, timeout=60)
            reasons = delta_fallback_reasons(svc)
        assert result.rung == "direct"
        assert reasons.get("residual") == 1

    def test_incompatible_base_selection_falls_back(self):
        """A base cached under a different ``q`` cannot serve: the
        reconstructed fingerprint does not match the hint."""
        field = make_field(9)
        base_job = make_job(field, q=0)
        delta_job = make_job(flipped(field, (4, 0)), q=1).with_base(
            base_job.fingerprint
        )
        with service() as svc:
            svc.compute(base_job, timeout=60)
            result = svc.compute(delta_job, timeout=60)
            reasons = delta_fallback_reasons(svc)
        assert result.rung == "direct"
        assert reasons.get("incompatible") == 1

    def test_pre_v2_base_without_field_is_incompatible(self):
        """Cached results lacking the stored field (older producers)
        must never be diffed against."""
        field = make_field(10)
        base_job = make_job(field)
        legacy = JobResult(
            fingerprint=base_job.fingerprint,
            selection=Selection(PATTERN, L=SPEC.L, c=4, q=0),
            blocks={(1, 1): np.eye(SPEC.N)},
            h=None,
        )
        delta_job = make_job(flipped(field, (0, 1))).with_base(
            base_job.fingerprint
        )
        with service() as svc:
            svc.cache.put(legacy)
            result = svc.compute(delta_job, timeout=60)
            reasons = delta_fallback_reasons(svc)
        assert result.rung == "direct"
        assert reasons.get("incompatible") == 1

    def test_delta_updates_disabled(self):
        field = make_field(11)
        base_job = make_job(field)
        delta_job = make_job(flipped(field, (3, 3))).with_base(
            base_job.fingerprint
        )
        with service(delta_updates=False) as svc:
            svc.compute(base_job, timeout=60)
            ticket = svc.submit(delta_job)
            result = ticket.result(timeout=60)
            stats = svc.stats()["delta"]
        assert not ticket.delta_hit
        assert result.rung == "direct"
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(delta_rank_budget=0)
        with pytest.raises(ValueError):
            ServiceConfig(delta_max_depth=0)
        with pytest.raises(ValueError):
            ServiceConfig(delta_solver_states=0)


# ----------------------------------------------------------------------
# fingerprint versioning
# ----------------------------------------------------------------------

class TestFingerprintVersion:
    def test_version_bump_invalidates_fingerprints(self, monkeypatch):
        from repro.service import job as job_module

        field = make_field(12)
        before = make_job(field).fingerprint
        monkeypatch.setattr(
            job_module, "_FINGERPRINT_VERSION",
            job_module._FINGERPRINT_VERSION + 1,
        )
        after = make_job(field).fingerprint
        assert before != after

    def test_current_version_is_three(self):
        # v2 added JobResult.h for delta bases; v3 added the
        # equal_time/spectral workload marker to the digest.
        from repro.service.job import _FINGERPRINT_VERSION

        assert _FINGERPRINT_VERSION == 3


# ----------------------------------------------------------------------
# satellite fixes: cache counters + monotonic uptime
# ----------------------------------------------------------------------

def _result(fp: str, n: int = 4) -> JobResult:
    return JobResult(
        fingerprint=fp,
        selection=Selection(Pattern.DIAGONAL, L=4, c=2, q=0),
        blocks={(1, 1): np.zeros((n, n))},
    )


class TestCacheCounters:
    def test_clear_resets_counters(self):
        cache = LRUResultCache(max_bytes=1 << 20)
        cache.put(_result("a"))
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        cache.clear()
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.evictions == 0
        assert stats.drops == 0
        assert stats.entries == 0
        assert stats.bytes_used == 0
        assert stats.hit_rate == 0.0

    def test_disabled_cache_put_counts_drop(self):
        cache = LRUResultCache(max_bytes=0)
        assert not cache.put(_result("a"))
        assert cache.stats().drops == 1

    def test_oversized_put_counts_drop(self):
        cache = LRUResultCache(max_bytes=8)
        assert not cache.put(_result("a", n=64))
        assert cache.stats().drops == 1

    def test_peek_does_not_touch_counters_but_refreshes_recency(self):
        one, two = _result("one"), _result("two")
        cache = LRUResultCache(max_bytes=one.nbytes + two.nbytes)
        cache.put(one)
        cache.put(two)
        assert cache.peek("one") is one
        assert cache.peek("missing") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0
        # "one" was refreshed by peek: inserting a third evicts "two".
        cache.put(_result("three"))
        assert "one" in cache and "two" not in cache


class TestMonotonicUptime:
    def test_uptime_survives_wall_clock_step(self, monkeypatch):
        metrics = ServiceMetrics()
        # Step the wall clock a day backwards: uptime must not care.
        monkeypatch.setattr(time, "time", lambda: -86400.0)
        uptime = metrics.stats()["uptime_seconds"]
        assert uptime >= 0.0
        assert uptime < 60.0
