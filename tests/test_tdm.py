"""Time-displaced measurements: G_loc(tau) and szz(tau, d)."""

import numpy as np
import pytest

from repro.dqmc import DQMC, DQMCConfig
from repro.dqmc.measurements import measure_slice
from repro.dqmc.tdm import BlockPairAccumulator, local_greens_tau, szz_tau
from repro.hubbard import HubbardModel, RectangularLattice


@pytest.fixture(scope="module")
def setup():
    model = HubbardModel(RectangularLattice(3, 3), L=8, U=4.0, beta=2.0)
    sim = DQMC(
        model,
        DQMCConfig(warmup_sweeps=1, measurement_sweeps=0, c=4, seed=2,
                   num_threads=1),
    )
    sim.sweep()
    bundles = sim.compute_greens(q=1)
    return model, sim, bundles


def dense_blocks(model, field):
    out = {}
    N = model.N
    for s in (+1, -1):
        G = np.linalg.inv(model.build_matrix(field, s).to_dense())
        out[s] = lambda k, l, G=G: G[(k - 1) * N : k * N, (l - 1) * N : l * N]
    return out


class TestAccumulator:
    def test_c_tau_uniform(self, setup):
        model, _, bundles = setup
        sel = bundles[+1].rows.selection
        acc = BlockPairAccumulator(model.lattice, sel.L, sel.seeds)
        np.testing.assert_array_equal(acc.c_tau, sel.b)

    def test_threaded_matches_serial(self, setup):
        model, _, bundles = setup
        sel = bundles[+1].rows.selection
        acc = BlockPairAccumulator(model.lattice, sel.L, sel.seeds)
        kernel = lambda k, l: bundles[+1].rows[(k, l)] ** 2
        a = acc.accumulate(kernel, num_threads=1)
        b = acc.accumulate(kernel, num_threads=4)
        np.testing.assert_allclose(a, b, atol=1e-14)

    def test_scalar_accumulation_constant(self, setup):
        model, _, bundles = setup
        sel = bundles[+1].rows.selection
        acc = BlockPairAccumulator(model.lattice, sel.L, sel.seeds)
        vals = acc.accumulate_scalar(lambda k, l: 3.0)
        np.testing.assert_allclose(vals, 3.0)


class TestLocalGreens:
    def test_tau0_is_one_minus_half_density(self, setup):
        model, sim, bundles = setup
        g = local_greens_tau(bundles[+1].rows, bundles[-1].rows, model.lattice)
        seeds = bundles[+1].rows.selection.seeds
        expected = np.mean(
            [
                0.5
                * (
                    np.trace(bundles[+1].full_diagonal[(k, k)])
                    + np.trace(bundles[-1].full_diagonal[(k, k)])
                )
                / model.N
                for k in seeds
            ]
        )
        assert g[0] == pytest.approx(expected, abs=1e-12)

    def test_positive_spectral_weight(self, setup):
        """G_loc(tau) >= 0 for 0 <= tau < beta (fermionic positivity),
        once the antiperiodic wrap sign is applied."""
        model, _, bundles = setup
        g = local_greens_tau(bundles[+1].rows, bundles[-1].rows, model.lattice)
        assert np.all(g > -1e-10)

    def test_interior_decay(self, setup):
        """G_loc decays from both ends toward the middle of [0, beta]."""
        model, _, bundles = setup
        g = local_greens_tau(bundles[+1].rows, bundles[-1].rows, model.lattice)
        assert g[0] == np.max(g)
        assert np.min(g) == np.min(g[2:-1])  # interior minimum


class TestSzzTau:
    def test_matches_brute_force(self, setup):
        model, sim, bundles = setup
        sz = szz_tau(
            bundles[+1].rows,
            bundles[+1].cols,
            bundles[-1].rows,
            bundles[-1].cols,
            bundles[+1].full_diagonal,
            bundles[-1].full_diagonal,
            model.lattice,
        )
        blk = dense_blocks(model, sim.field)
        N, L = model.N, model.L
        seeds = bundles[+1].rows.selection.seeds
        D, radii = model.lattice.distance_classes
        cls_counts = np.bincount(D.ravel(), minlength=len(radii))
        expected = np.zeros((L, len(radii)))
        counts = np.zeros(L)
        for k in seeds:
            for l in range(1, L + 1):
                tau = (k - l) % L
                counts[tau] += 1
                out = np.zeros((N, N))
                for s in (+1, -1):
                    nk = 1 - np.diag(blk[s](k, k))
                    for sp in (+1, -1):
                        nl = 1 - np.diag(blk[sp](l, l))
                        term = np.multiply.outer(nk, nl)
                        if s == sp:
                            if k == l:
                                Gkk = blk[s](k, k)
                                term += (np.eye(N) - Gkk.T) * Gkk
                            else:
                                term -= blk[s](l, k).T * blk[s](k, l)
                        out += s * sp * term
                E = 0.25 * out
                expected[tau] += np.bincount(
                    D.ravel(), weights=E.ravel(), minlength=len(radii)
                )
        expected /= counts[:, None]
        expected /= cls_counts[None, :]
        np.testing.assert_allclose(sz, expected, atol=1e-12)

    def test_tau0_equals_equal_time(self, setup):
        """The tau = 0 bin reproduces the equal-time szz exactly."""
        model, _, bundles = setup
        sz = szz_tau(
            bundles[+1].rows,
            bundles[+1].cols,
            bundles[-1].rows,
            bundles[-1].cols,
            bundles[+1].full_diagonal,
            bundles[-1].full_diagonal,
            model.lattice,
        )
        seeds = bundles[+1].rows.selection.seeds
        eq = np.mean(
            [
                measure_slice(
                    bundles[+1].full_diagonal[(k, k)],
                    bundles[-1].full_diagonal[(k, k)],
                    model,
                ).szz
                for k in seeds
            ],
            axis=0,
        )
        np.testing.assert_allclose(sz[0], eq, atol=1e-12)

    def test_geometry_mismatch_rejected(self, setup):
        model, sim, bundles = setup
        other = sim.compute_greens(q=2)
        with pytest.raises(ValueError, match="geometries differ"):
            szz_tau(
                bundles[+1].rows,
                other[+1].cols,
                bundles[-1].rows,
                bundles[-1].cols,
                bundles[+1].full_diagonal,
                bundles[-1].full_diagonal,
                model.lattice,
            )

    def test_onsite_decays_in_tau(self, setup):
        """The on-site moment correlation is largest at tau = 0."""
        model, _, bundles = setup
        sz = szz_tau(
            bundles[+1].rows,
            bundles[+1].cols,
            bundles[-1].rows,
            bundles[-1].cols,
            bundles[+1].full_diagonal,
            bundles[-1].full_diagonal,
            model.lattice,
        )
        assert sz[0, 0] == np.max(sz[:, 0])
