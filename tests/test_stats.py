"""Binning and jackknife statistics."""

import numpy as np
import pytest

from repro.dqmc.stats import BinnedSeries, BinningAnalysis, jackknife


class TestJackknife:
    def test_mean_exact(self):
        mean, err = jackknife(np.array([1.0, 2.0, 3.0, 4.0]))
        assert mean == pytest.approx(2.5)

    def test_error_matches_standard_formula(self):
        """For the plain mean, jackknife error == sqrt(var / n)."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(50)
        _, err = jackknife(x)
        expected = np.sqrt(np.var(x, ddof=1) / len(x))
        assert err == pytest.approx(expected, rel=1e-10)

    def test_constant_series_zero_error(self):
        mean, err = jackknife(np.full(10, 3.3))
        assert mean == pytest.approx(3.3)
        assert err == pytest.approx(0.0, abs=1e-12)

    def test_single_bin(self):
        mean, err = jackknife(np.array([5.0]))
        assert mean == 5.0 and err == 0.0

    def test_array_observables(self):
        bins = np.arange(12.0).reshape(4, 3)
        mean, err = jackknife(bins)
        np.testing.assert_allclose(mean, bins.mean(axis=0))
        assert err.shape == (3,)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jackknife(np.empty((0, 2)))


class TestBinnedSeries:
    def test_binning(self):
        s = BinnedSeries(bin_size=2)
        for v in (1.0, 3.0, 5.0, 7.0):
            s.add(v)
        np.testing.assert_array_equal(s.bin_means(), [2.0, 6.0])
        assert s.n_bins == 2 and s.n_samples == 4

    def test_partial_bin_excluded_by_default(self):
        s = BinnedSeries(bin_size=2)
        for v in (1.0, 3.0, 10.0):
            s.add(v)
        assert s.bin_means().shape == (1,)
        assert s.bin_means(include_partial=True).shape == (2,)

    def test_no_complete_bins_raises(self):
        s = BinnedSeries(bin_size=5)
        s.add(1.0)
        with pytest.raises(ValueError, match="no complete bins"):
            s.bin_means()

    def test_estimate(self):
        s = BinnedSeries(bin_size=1)
        for v in (2.0, 4.0):
            s.add(v)
        mean, err = s.estimate()
        assert mean == pytest.approx(3.0)
        assert err == pytest.approx(1.0)

    def test_array_samples(self):
        s = BinnedSeries(bin_size=2)
        s.add(np.array([1.0, 0.0]))
        s.add(np.array([3.0, 2.0]))
        np.testing.assert_array_equal(s.bin_means()[0], [2.0, 1.0])

    def test_invalid_bin_size(self):
        with pytest.raises(ValueError):
            BinnedSeries(bin_size=0)


class TestBinningAnalysis:
    def test_multiple_observables(self):
        a = BinningAnalysis(bin_size=1)
        a.add({"x": 1.0, "v": np.array([1.0, 2.0])})
        a.add({"x": 3.0, "v": np.array([3.0, 4.0])})
        est = a.estimate()
        assert est["x"][0] == pytest.approx(2.0)
        np.testing.assert_allclose(est["v"][0], [2.0, 3.0])
        assert set(a.observables) == {"x", "v"}

    def test_bin_size_respected(self):
        a = BinningAnalysis(bin_size=3)
        for i in range(9):
            a.add({"x": float(i)})
        assert a._series["x"].n_bins == 3

    def test_estimate_with_partial(self):
        a = BinningAnalysis(bin_size=4)
        for i in range(2):
            a.add({"x": float(i)})
        est = a.estimate(include_partial=True)
        assert est["x"][0] == pytest.approx(0.5)
