"""Autocorrelation analysis utilities."""

import numpy as np
import pytest

from repro.dqmc.autocorr import (
    autocorrelation_function,
    binning_scan,
    effective_sample_size,
    integrated_autocorrelation_time,
)


def ar1(n: int, phi: float, seed: int = 0) -> np.ndarray:
    """An AR(1) chain with known tau_int = (1 + phi) / (2 (1 - phi))."""
    rng = np.random.default_rng(seed)
    x = np.empty(n)
    x[0] = rng.standard_normal()
    for i in range(1, n):
        x[i] = phi * x[i - 1] + rng.standard_normal()
    return x


class TestAutocorrelationFunction:
    def test_rho0_is_one(self):
        rho = autocorrelation_function(np.random.default_rng(0).standard_normal(100))
        assert rho[0] == 1.0

    def test_white_noise_decorrelates(self):
        rho = autocorrelation_function(
            np.random.default_rng(1).standard_normal(20000), max_lag=5
        )
        assert np.all(np.abs(rho[1:]) < 0.05)

    def test_ar1_matches_theory(self):
        phi = 0.8
        rho = autocorrelation_function(ar1(200000, phi, seed=2), max_lag=5)
        for t in range(1, 6):
            assert rho[t] == pytest.approx(phi**t, abs=0.03)

    def test_constant_series(self):
        rho = autocorrelation_function(np.full(50, 2.0), max_lag=3)
        assert rho[0] == 1.0
        np.testing.assert_array_equal(rho[1:], 0.0)

    def test_too_short(self):
        with pytest.raises(ValueError):
            autocorrelation_function(np.array([1.0]))


class TestTauInt:
    def test_white_noise_is_half(self):
        tau = integrated_autocorrelation_time(
            np.random.default_rng(3).standard_normal(50000)
        )
        assert tau == pytest.approx(0.5, abs=0.1)

    def test_ar1_matches_theory(self):
        phi = 0.7
        expected = (1 + phi) / (2 * (1 - phi))  # ~2.83
        tau = integrated_autocorrelation_time(ar1(200000, phi, seed=4))
        assert tau == pytest.approx(expected, rel=0.2)

    def test_never_below_half(self):
        # Anti-correlated series: tau clipped at 0.5.
        x = np.array([1.0, -1.0] * 500)
        assert integrated_autocorrelation_time(x) == 0.5


class TestEffectiveSampleSize:
    def test_white_noise_full_size(self):
        n = 20000
        ess = effective_sample_size(np.random.default_rng(5).standard_normal(n))
        assert ess == pytest.approx(n, rel=0.15)

    def test_correlated_shrinks(self):
        x = ar1(50000, 0.9, seed=6)
        assert effective_sample_size(x) < 0.3 * len(x)


class TestBinningScan:
    def test_white_noise_flat(self):
        scan = binning_scan(np.random.default_rng(7).standard_normal(16384))
        errs = [e for _, e in scan]
        assert errs[-1] == pytest.approx(errs[0], rel=0.5)

    def test_correlated_error_grows_then_plateaus(self):
        scan = binning_scan(ar1(65536, 0.9, seed=8))
        errs = [e for _, e in scan]
        # The bin-1 naive error underestimates; large bins reveal the truth.
        assert errs[-1] > 2.0 * errs[0]

    def test_bin_sizes_double(self):
        scan = binning_scan(np.arange(64, dtype=float))
        sizes = [s for s, _ in scan]
        assert sizes == [1, 2, 4, 8, 16]
