"""The Edison machine model and the FSI memory footprint."""

import pytest

from repro.core.patterns import Pattern
from repro.perf.machine import EDISON, MachineSpec, fsi_rank_memory_bytes


class TestEdisonSpec:
    def test_core_counts(self):
        assert EDISON.cores_per_node == 24
        assert EDISON.nodes == 5576
        assert EDISON.nodes * EDISON.cores_per_node == 133824  # Sec. III-A

    def test_peak_rates(self):
        """2.4 GHz x 8 DP flops/cycle = 19.2 Gflop/s per core."""
        assert EDISON.peak_core_gflops == pytest.approx(19.2)
        assert EDISON.peak_socket_gflops == pytest.approx(230.4)

    def test_usable_memory(self):
        """~2.5 GB usable per core (Sec. V-B) -> 60 GB per node."""
        assert EDISON.mem_avail_per_node_gb == pytest.approx(60.0)
        per_core = EDISON.mem_avail_per_node_gb / EDISON.cores_per_node
        assert per_core == pytest.approx(2.5)


class TestMemoryFootprint:
    def test_paper_quoted_selection_size(self):
        """Sec. V-B: at (N, L, c) = (576, 100, 10) the selected inversion
        alone is ~2.65 GB (b L N^2 doubles)."""
        b, L, N = 10, 100, 576
        selection_only = b * L * N * N * 8
        assert selection_only / 2**30 == pytest.approx(2.47, abs=0.3)
        total = fsi_rank_memory_bytes(N, L, 10, Pattern.COLUMNS)
        assert total > selection_only  # matrix + seeds + workspace on top

    def test_oom_boundary_matches_paper(self):
        """12 ranks/socket at N=576 exceeds socket memory; N=400 fits."""
        m576 = fsi_rank_memory_bytes(576, 100, 10, Pattern.COLUMNS)
        m400 = fsi_rank_memory_bytes(400, 100, 10, Pattern.COLUMNS)
        assert not EDISON.fits_on_socket(12, m576)
        assert EDISON.fits_on_socket(12, m400)

    def test_larger_n_needs_fewer_ranks(self):
        m1024 = fsi_rank_memory_bytes(1024, 100, 10, Pattern.COLUMNS)
        assert not EDISON.fits_on_socket(4, m1024)
        assert EDISON.fits_on_socket(2, m1024)

    def test_pattern_dependence(self):
        cols = fsi_rank_memory_bytes(256, 100, 10, Pattern.COLUMNS)
        diag = fsi_rank_memory_bytes(256, 100, 10, Pattern.DIAGONAL)
        assert diag < cols

    def test_validates_c(self):
        with pytest.raises(ValueError):
            fsi_rank_memory_bytes(100, 100, 7)

    def test_workspace_toggle(self):
        with_ws = fsi_rank_memory_bytes(128, 40, 8, include_workspace=True)
        without = fsi_rank_memory_bytes(128, 40, 8, include_workspace=False)
        assert with_ws > without


class TestCustomMachine:
    def test_derived_quantities(self):
        m = MachineSpec(
            name="toy",
            sockets_per_node=1,
            cores_per_socket=4,
            ghz=2.0,
            flops_per_cycle=4.0,
            mem_per_node_gb=16.0,
            mem_reserved_per_node_gb=2.0,
            stream_bw_per_socket_gbs=20.0,
            mpi_latency_us=1.0,
            mpi_bw_gbs=5.0,
            nodes=2,
        )
        assert m.peak_core_gflops == 8.0
        assert m.mem_avail_per_socket_gb == 14.0
        assert m.fits_on_socket(2, 6 * 2**30)
        assert not m.fits_on_socket(3, 6 * 2**30)
