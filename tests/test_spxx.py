"""SPXX time-dependent measurement: maps, counts, and a brute-force oracle."""

import numpy as np
import pytest

from repro.core.fsi import fsi
from repro.core.patterns import Pattern, Selection
from repro.core.wrap import wrap
from repro.dqmc.spxx import SPXXResult, spxx, spxx_pairs, temporal_distance
from repro.hubbard import HSField, HubbardModel, RectangularLattice

L, C, Q = 8, 4, 1


class TestTemporalDistance:
    def test_definition(self):
        """T(k,l) = k-l for k>l, else k-l+L (Sec. IV)."""
        assert temporal_distance(5, 2, 8) == 3
        assert temporal_distance(2, 5, 8) == 5
        assert temporal_distance(4, 4, 8) == 0

    def test_range(self):
        for k in range(1, 9):
            for l in range(1, 9):
                assert 0 <= temporal_distance(k, l, 8) < 8


class TestSpxxPairs:
    def test_counts(self):
        pairs = spxx_pairs([3, 7], 8)
        assert len(pairs) == 16  # b seeds x L columns

    def test_c_tau_uniform_for_full_rows(self):
        """Each row contributes one pair per tau; C(tau) = b everywhere."""
        pairs = spxx_pairs([3, 7], 8)
        c_tau = np.zeros(8, int)
        for _, _, tau in pairs:
            c_tau[tau] += 1
        np.testing.assert_array_equal(c_tau, 2)


@pytest.fixture(scope="module")
def greens_setup():
    model = HubbardModel(RectangularLattice(2, 2), L=L, U=4.0, beta=2.0)
    field = HSField.random(L, 4, np.random.default_rng(17))
    bundles = {}
    for sigma in (+1, -1):
        pc = model.build_matrix(field, sigma)
        res = fsi(pc, C, pattern=Pattern.ROWS, q=Q, num_threads=1)
        cols = wrap(
            pc,
            res.seeds,
            Selection(Pattern.COLUMNS, L=L, c=C, q=Q),
            num_threads=1,
            ops=res.ops,
        )
        bundles[sigma] = (res.selected, cols, pc)
    return model, bundles


class TestSpxxAccumulation:
    def test_result_shape(self, greens_setup):
        model, b = greens_setup
        r = spxx(b[1][0], b[1][1], b[-1][0], b[-1][1], model.lattice)
        assert isinstance(r, SPXXResult)
        assert r.values.shape == (L, model.lattice.d_max)
        assert r.L == L and r.d_max == model.lattice.d_max

    def test_c_tau_counts(self, greens_setup):
        model, b = greens_setup
        r = spxx(b[1][0], b[1][1], b[-1][0], b[-1][1], model.lattice)
        np.testing.assert_array_equal(r.c_tau, L // C)

    def test_threaded_matches_serial(self, greens_setup):
        model, b = greens_setup
        r1 = spxx(b[1][0], b[1][1], b[-1][0], b[-1][1], model.lattice, num_threads=1)
        r4 = spxx(b[1][0], b[1][1], b[-1][0], b[-1][1], model.lattice, num_threads=4)
        np.testing.assert_allclose(r1.values, r4.values, atol=1e-13)

    def test_against_brute_force(self, greens_setup):
        """Recompute from the full dense inverses with explicit loops."""
        model, b = greens_setup
        r = spxx(b[1][0], b[1][1], b[-1][0], b[-1][1], model.lattice)
        N = 4
        G = {
            s: np.linalg.inv(b[s][2].to_dense()) for s in (+1, -1)
        }

        def blk(s, k, l):
            return G[s][(k - 1) * N : k * N, (l - 1) * N : l * N]

        D, radii = model.lattice.distance_classes
        seeds = Selection(Pattern.ROWS, L=L, c=C, q=Q).seeds
        expected = np.zeros((L, len(radii)))
        counts = np.zeros(L)
        class_sizes = np.bincount(D.ravel(), minlength=len(radii))
        for k in seeds:
            for l in range(1, L + 1):
                tau = temporal_distance(k, l, L)
                counts[tau] += 1
                up_kl, dn_lk = blk(+1, k, l), blk(-1, l, k)
                dn_kl, up_lk = blk(-1, k, l), blk(+1, l, k)
                for i in range(N):
                    for j in range(N):
                        e = 0.5 * (
                            up_kl[i, j] * dn_lk[j, i]
                            + dn_kl[i, j] * up_lk[j, i]
                        )
                        expected[tau, D[i, j]] += e
        expected *= (2.0 / counts)[:, None]
        expected /= class_sizes[None, :]
        np.testing.assert_allclose(r.values, expected, atol=1e-10)

    def test_geometry_mismatch_rejected(self, greens_setup):
        model, b = greens_setup
        pc = b[1][2]
        res2 = fsi(pc, C, pattern=Pattern.ROWS, q=(Q + 1) % C, num_threads=1)
        cols2 = wrap(
            pc,
            res2.seeds,
            Selection(Pattern.COLUMNS, L=L, c=C, q=(Q + 1) % C),
            num_threads=1,
        )
        with pytest.raises(ValueError, match="geometries differ"):
            spxx(b[1][0], cols2, b[-1][0], b[-1][1], model.lattice)

    def test_structure_factor(self, greens_setup):
        model, b = greens_setup
        r = spxx(b[1][0], b[1][1], b[-1][0], b[-1][1], model.lattice)
        assert r.structure_factor().shape == (L,)
