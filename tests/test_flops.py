"""The two Sec. II complexity tables, as formulas and against reality."""

import numpy as np
import pytest

from repro.core.flops import (
    ComplexityRow,
    complexity_table,
    explicit_form_flops,
    fsi_table_flops,
    pattern_count_table,
)
from repro.core.fsi import fsi
from repro.core.greens_explicit import explicit_selected_columns
from repro.core.patterns import Pattern
from repro.core.pcyclic import random_pcyclic
from repro.perf.tracer import FlopTracer


class TestSecIICTable:
    """The printed flop formulas of the Sec. II-C comparison table."""

    L, N, c = 100, 64, 10

    def _b(self):
        return self.L // self.c

    def test_explicit_diagonal(self):
        assert explicit_form_flops(self.L, self.N, self.c, Pattern.DIAGONAL) == (
            2 * self._b() ** 2 * self.c * self.N**3
        )

    def test_explicit_subdiagonal(self):
        assert explicit_form_flops(
            self.L, self.N, self.c, Pattern.SUBDIAGONAL
        ) == (4 * self._b() ** 2 * self.c * self.N**3)

    def test_explicit_columns(self):
        assert explicit_form_flops(self.L, self.N, self.c, Pattern.COLUMNS) == (
            self._b() ** 3 * self.c**2 * self.N**3
        )

    def test_fsi_diagonal(self):
        b = self._b()
        assert fsi_table_flops(self.L, self.N, self.c, Pattern.DIAGONAL) == (
            (2 * (self.c - 1) + 7 * b) * b * self.N**3
        )

    def test_fsi_subdiagonal(self):
        b = self._b()
        assert fsi_table_flops(self.L, self.N, self.c, Pattern.SUBDIAGONAL) == (
            (2 * self.c + 7 * b) * b * self.N**3
        )

    def test_fsi_columns(self):
        b = self._b()
        assert fsi_table_flops(self.L, self.N, self.c, Pattern.COLUMNS) == (
            3 * b * b * self.c * self.N**3
        )

    def test_speedup_factor_columns(self):
        """Paper: FSI is (1/3) b c times faster for b columns."""
        row = ComplexityRow(
            Pattern.COLUMNS,
            explicit_form_flops(self.L, self.N, self.c, Pattern.COLUMNS),
            fsi_table_flops(self.L, self.N, self.c, Pattern.COLUMNS),
        )
        assert row.speedup == pytest.approx(self._b() * self.c / 3.0)

    def test_full_table(self):
        rows = complexity_table(self.L, self.N, self.c)
        assert [r.pattern for r in rows] == [
            Pattern.DIAGONAL,
            Pattern.SUBDIAGONAL,
            Pattern.COLUMNS,
            Pattern.ROWS,
        ]
        assert all(r.speedup > 1 for r in rows)

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            explicit_form_flops(10, 4, 3, Pattern.COLUMNS)
        with pytest.raises(ValueError):
            fsi_table_flops(10, 4, 3, Pattern.COLUMNS)


class TestSecIIBTable:
    def test_rows(self):
        rows = pattern_count_table(100, 10, q=1)
        by_pattern = {r["pattern"]: r for r in rows}
        assert by_pattern["diagonal"]["blocks"] == 10
        assert by_pattern["diagonal"]["reduction"] == 1000
        assert by_pattern["columns"]["blocks"] == 1000
        assert by_pattern["columns"]["reduction"] == 10
        assert by_pattern["rows"]["reduction"] == 10


class TestMeasuredAgainstFormulas:
    """Measured kernel counts vs. the leading-order table entries."""

    def test_fsi_columns_measured(self):
        L, N, c = 16, 8, 4
        pc = random_pcyclic(L, N, np.random.default_rng(0), scale=0.6)
        with FlopTracer() as tr:
            fsi(pc, c, pattern=Pattern.COLUMNS, q=1, num_threads=1)
        formula = fsi_table_flops(L, N, c, Pattern.COLUMNS)
        # Measured includes CLS+BSOFI and solve factorisations the table
        # drops; it must bracket the leading term.
        assert 0.8 * formula < tr.total_flops < 4.0 * formula

    def test_explicit_columns_measured(self):
        L, N, c = 16, 8, 4
        pc = random_pcyclic(L, N, np.random.default_rng(1), scale=0.6)
        cols = [c * i - 1 for i in range(1, L // c + 1)]
        with FlopTracer() as tr:
            explicit_selected_columns(pc, cols)
        formula = explicit_form_flops(L, N, c, Pattern.COLUMNS)
        # Our explicit baseline reuses W factors and incremental chains,
        # so it beats the naive b^3 c^2 N^3 count but stays O(b L^2 N^3).
        assert tr.total_flops < 2.0 * formula
        assert tr.total_flops > fsi_table_flops(L, N, c, Pattern.COLUMNS)

    def test_fsi_vs_explicit_measured_ratio_grows_with_c(self):
        """Measured flop advantage of FSI grows with the cluster size.

        Our explicit baseline amortises the W_k products across columns,
        so its measured cost is ~(2L^2 + 4bL) N^3 and the FSI advantage
        scales like (2c + 4)/3 — growing with c, not L.
        """
        ratios = {}
        L = 32
        for c in (2, 8):
            pc = random_pcyclic(L, 6, np.random.default_rng(c), scale=0.6)
            cols = [c * i for i in range(1, L // c + 1)]
            with FlopTracer() as te:
                explicit_selected_columns(pc, cols)
            with FlopTracer() as tf:
                fsi(pc, c, pattern=Pattern.COLUMNS, q=0, num_threads=1)
            ratios[c] = te.total_flops / tf.total_flops
        assert ratios[8] > 2.0 * ratios[2]
