"""Guard overhead: the health battery must stay within 5% of a solve.

The resilience contract (``docs/robustness.md``) is that running FSI
through the :mod:`repro.resilience.guards` battery — NaN/Inf screens on
the input and every stage output, a sampled 1-norm condition estimate
of the CLS clustered blocks, and a sampled BSOFI identity residual —
costs at most a few percent of the solve it protects, because guarded
solves are the *default* in the service layer.  This file pins that
contract down twice:

* pytest-benchmark timings of guarded vs unguarded solves and of the
  individual guard primitives, so regressions show up next to the
  other wall-clock numbers;
* a standalone ``--check`` mode (run by CI) that measures the guarded
  slowdown on a real solve and **fails if it exceeds 5%**.

Run the gate locally with::

    PYTHONPATH=src python benchmarks/bench_resilience.py --check
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from repro.bench.workloads import BENCH_MEDIUM, BENCH_SMALL, make_hubbard
from repro.core.bsofi import bsofi
from repro.core.cls import cls
from repro.core.fsi import fsi, fsi_resilient
from repro.resilience.guards import (
    GuardConfig,
    check_cluster_conditions,
    check_seed_residual,
    estimate_condition,
    sample_indices,
    screen_finite,
)

#: Maximum tolerated guarded-solve slowdown relative to unguarded.
OVERHEAD_BUDGET = 0.05

GUARDS = GuardConfig()


# ----------------------------------------------------------------------
# pytest-benchmark timings
# ----------------------------------------------------------------------

@pytest.mark.benchmark(group="resilience")
def bench_fsi_unguarded(benchmark, small_problem):
    pc, _, _ = small_problem
    benchmark(lambda: fsi(pc, BENCH_SMALL.c, num_threads=1))


@pytest.mark.benchmark(group="resilience")
def bench_fsi_guarded(benchmark, small_problem):
    """The full battery on the solve it protects (the 5% contract)."""
    pc, _, _ = small_problem
    benchmark(lambda: fsi(pc, BENCH_SMALL.c, num_threads=1, guards=GUARDS))


@pytest.mark.benchmark(group="resilience")
def bench_fsi_resilient_healthy(benchmark, small_problem):
    """The ladder entry point when nothing trips (the common case)."""
    pc, _, _ = small_problem
    benchmark(
        lambda: fsi_resilient(pc, BENCH_SMALL.c, num_threads=1, guards=GUARDS)
    )


@pytest.mark.benchmark(group="resilience")
def bench_screen_finite(benchmark, small_problem):
    pc, _, _ = small_problem
    benchmark(lambda: screen_finite("input", pc.B))


@pytest.mark.benchmark(group="resilience")
def bench_estimate_condition(benchmark, small_problem):
    pc, _, _ = small_problem
    block = cls(pc, BENCH_SMALL.c, 0).B[0]
    benchmark(lambda: estimate_condition(block))


@pytest.mark.benchmark(group="resilience")
def bench_check_cluster_conditions(benchmark, small_problem):
    pc, _, _ = small_problem
    B = cls(pc, BENCH_SMALL.c, 0).B
    benchmark(lambda: check_cluster_conditions(B, GUARDS))


# ----------------------------------------------------------------------
# the CI gate
# ----------------------------------------------------------------------

def _best_of(fn, repeats: int = 7, calls: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / calls


def measure_overhead() -> dict:
    """Sum of per-check costs against a production-shaped solve.

    Same methodology as the ``bench_telemetry`` gate: every check the
    guarded path adds is timed directly on the *real* stage arrays of a
    medium-workload solve (N=36, L=40 — the guards carry a fixed Python
    cost of a few hundred microseconds, so the contract is stated
    against production-shaped solves, not the millisecond toy tier).
    The checks are strictly additive to the solve — none overlaps or
    replaces solver work — so their summed cost over the best-of solve
    time bounds the guarded slowdown.  Differencing two end-to-end
    timings instead would put a ~5% machine-drift noise floor on a 5%
    budget; the component costs are microseconds, measurable to a few
    percent with tight best-of loops.
    """
    pc, _, _ = make_hubbard(BENCH_MEDIUM, seed=1)
    c = BENCH_MEDIUM.c

    # the real arrays each check sees in a guarded solve
    reduced = cls(pc, c, 0, num_threads=1)
    seeds = bsofi(reduced)
    result = fsi(pc, c, q=0, num_threads=1)
    blocks = [result.selected[kl] for kl in result.selected]
    picked = sample_indices(len(blocks), GUARDS.result_screen_samples)
    sampled = [blocks[i] for i in picked]

    components = {
        "screen_input": lambda: screen_finite("input", pc.B),
        "screen_cls": lambda: screen_finite("cls", reduced.B),
        "screen_bsofi": lambda: screen_finite("bsofi", seeds),
        "screen_result": lambda: screen_finite("result", *sampled),
        "condition": lambda: check_cluster_conditions(reduced.B, GUARDS),
        "residual": lambda: check_seed_residual(reduced.B, seeds, GUARDS),
    }
    costs = {
        name: _best_of(fn, repeats=7, calls=50)
        for name, fn in components.items()
    }
    battery = sum(costs.values())

    fsi(pc, c, q=0, num_threads=1)  # warm caches
    solve = _best_of(lambda: fsi(pc, c, q=0, num_threads=1), repeats=7)

    return {
        "component_us": {k: v * 1e6 for k, v in costs.items()},
        "battery_us": battery * 1e6,
        "solve_ms": solve * 1e3,
        "overhead_fraction": battery / solve,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero if overhead exceeds {OVERHEAD_BUDGET:.0%}",
    )
    args = parser.parse_args(argv)

    stats = measure_overhead()
    for name, us in stats["component_us"].items():
        print(f"  {name:<16} {us:8.1f} us")
    print(
        f"numerical guards: {stats['battery_us']:.0f} us battery on a"
        f" {stats['solve_ms']:.2f} ms solve"
        f" = {stats['overhead_fraction']:.3%} overhead"
        f" (budget {OVERHEAD_BUDGET:.0%})"
    )
    if args.check and stats["overhead_fraction"] > OVERHEAD_BUDGET:
        print("FAIL: guard overhead exceeds budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
