"""EXP-A5 — ablation: the disordered Hubbard model through the pipeline.

The paper's motivation cites the DCA milestone on "disorder effects in
high-T_c superconductors" (ref. [3]); the DQMC counterpart is the
Hubbard model with a random site potential ``mu_i ~ U(-W/2, W/2)``.
This experiment sweeps the disorder strength ``W`` and reports

* density inhomogeneity (std of the site-resolved density profile),
* the correlation between the density profile and the local potential,
* the disorder-averaged local moment (disorder competes with moment
  formation on deep/empty sites).

All from real DQMC runs on a 2x2 plaquette with ED cross-checks at
each disorder realisation.

Run: ``python benchmarks/exp_a5_disorder.py``
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import Table, banner
from repro.dqmc import DQMC, DQMCConfig
from repro.dqmc.ed import ExactDiagonalization
from repro.hubbard import HubbardModel, RectangularLattice


def run(seed: int = 11) -> Table:
    rng = np.random.default_rng(seed)
    table = Table(
        "EXP-A5: disorder sweep, 2x2 plaquette, U = 4, beta = 2,"
        " mu_i ~ U(-W/2, W/2)",
        ["W", "density std", "corr(n_i, mu_i)", "local moment", "|DQMC-ED|"],
        note="profile tracks the potential; moments survive weak disorder",
    )
    for W in (0.0, 0.5, 1.0, 2.0):
        mu_i = rng.uniform(-W / 2, W / 2, 4) if W > 0 else 0.0
        model = HubbardModel(
            RectangularLattice(2, 2), L=16, U=4.0, beta=2.0, mu=mu_i
        )
        ed = ExactDiagonalization(model)
        sim = DQMC(
            model,
            DQMCConfig(
                warmup_sweeps=20,
                measurement_sweeps=80,
                c=4,
                nwrap=4,
                bin_size=8,
                seed=seed + int(10 * W),
                num_threads=1,
                measure_time_dependent=False,
                sign_resync_every=20,
            ),
        )
        res = sim.run()
        # Site-resolved profile from a fresh Green's bundle at the final
        # configuration (cheap proxy for the full profile average).
        bundles = sim.compute_greens(q=0)
        from repro.dqmc import density_profile

        prof = np.mean(
            [
                density_profile(
                    bundles[+1].full_diagonal[(l, l)],
                    bundles[-1].full_diagonal[(l, l)],
                )
                for l in range(1, model.L + 1)
            ],
            axis=0,
        )
        mu_vec = np.broadcast_to(np.asarray(model.mu, dtype=float), (4,))
        corr = (
            float(np.corrcoef(prof, mu_vec)[0, 1]) if W > 0 else float("nan")
        )
        dens, _ = res.observable("density")
        moment, _ = res.observable("local_moment")
        table.add_row(
            W,
            float(np.std(prof)),
            corr,
            float(moment),
            abs(float(dens) - ed.density(2.0)),
        )
    return table


if __name__ == "__main__":
    print(banner("EXP-A5: disordered Hubbard model"))
    run().print()
