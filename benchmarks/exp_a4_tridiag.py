"""EXP-A4 — the future-work extension: FSI for block tridiagonal matrices.

The paper's conclusion proposes extending FSI to block tridiagonal
matrices; :mod:`repro.tridiag` implements it.  This experiment checks
the extension end to end on the NEGF-style Laplacian-chain workload:

* correctness of every pattern against a dense oracle;
* the flop advantage of the three-stage pipeline over a dense LU
  inversion restricted to the same selection;
* the parallel structure (independent runs / independent seed walks),
  shown as identical results for 1 vs 4 threads.

Run: ``python benchmarks/exp_a4_tridiag.py``
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.report import Table, banner
from repro.core.patterns import Pattern
from repro.perf.tracer import FlopTracer
from repro.tridiag import fsi_tridiagonal, laplacian_chain, random_btd


def correctness_table(L: int = 32, N: int = 12, c: int = 8) -> Table:
    J = laplacian_chain(L, N)
    G = np.linalg.inv(J.to_dense())
    table = Table(
        f"EXP-A4: block tridiagonal FSI, Laplacian chain (N, L, c) ="
        f" ({N}, {L}, {c})",
        ["pattern", "blocks", "max rel err", "threads-consistent"],
    )
    for pattern in Pattern:
        sel1 = fsi_tridiagonal(J, c, pattern=pattern, q=1, num_threads=1)
        sel4 = fsi_tridiagonal(J, c, pattern=pattern, q=1, num_threads=4)
        consistent = all(
            np.array_equal(sel1[kl], sel4[kl]) for kl in sel1
        )
        table.add_row(
            pattern.value, len(sel1), sel1.max_relative_error(G), consistent
        )
    return table


def cost_table(L: int = 48, N: int = 24, c: int = 8, seed: int = 1) -> Table:
    J = random_btd(L, N, np.random.default_rng(seed))
    table = Table(
        f"EXP-A4 (cost): b block columns at (N, L, c) = ({N}, {L}, {c})",
        ["method", "flops", "seconds (host)"],
        note="dense LU scales as (NL)^3; the structured pipeline as"
        " O(L N^3) + O(b^2 N^3)",
    )
    t0 = time.perf_counter()
    with FlopTracer() as t_fsi:
        fsi_tridiagonal(J, c, pattern=Pattern.COLUMNS, q=1, num_threads=1)
    dt_fsi = time.perf_counter() - t0

    t0 = time.perf_counter()
    with FlopTracer() as t_lu:
        Jd = J.to_dense()
        n = Jd.shape[0]
        from repro.core import _kernels as kr

        kr.lu_factor(Jd).solve(np.eye(n))
    dt_lu = time.perf_counter() - t0
    table.add_row("tridiagonal FSI", t_fsi.total_flops, dt_fsi)
    table.add_row("dense LU inverse", t_lu.total_flops, dt_lu)
    table.add_row(
        "advantage", t_lu.total_flops / t_fsi.total_flops, dt_lu / dt_fsi
    )
    return table


if __name__ == "__main__":
    print(banner("EXP-A4: FSI extended to block tridiagonal matrices"))
    correctness_table().print()
    cost_table().print()
