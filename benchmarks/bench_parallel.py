"""Parallel substrate benchmarks: transport backends and threaded loops.

Two halves:

* pytest-benchmark timings of the SimMPI collectives, the OpenMP-style
  loop layer, and a small fleet on both the ``threads`` and ``mp-shm``
  transport backends;
* a standalone ``--check`` mode (run by CI) that times the 4-rank
  fleet solve on ``threads`` vs ``mp-shm`` at ``L in {32, 64}`` and
  writes ``BENCH_parallel.json``.  The ``threads`` backend shares one
  GIL across all ranks, so the Python-level block bookkeeping of the
  FSI stages serialises; ``mp-shm`` runs one OS process per rank and
  must show **real multi-core speedup (> 1.5x)** on the larger
  workload.  The gate is enforced only where it is physically possible
  — on hosts with at least 4 CPU cores (the GitHub runner shape); on
  smaller hosts the measurement is recorded and reported but cannot
  fail (``gate_enforced: false`` in the JSON says so explicitly).

Run the gate locally with::

    PYTHONPATH=src python benchmarks/bench_parallel.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.patterns import Pattern
from repro.hubbard import HubbardModel, RectangularLattice
from repro.parallel.hybrid import HybridConfig, run_fsi_fleet, run_selected_fleet
from repro.parallel.openmp import parallel_for
from repro.parallel.simmpi import SimMPI

#: Minimum mp-shm speedup over threads on the 4-rank fleet (CI gate,
#: enforced at L = GATE_L on hosts with >= GATE_MIN_CPUS cores).
SPEEDUP_FLOOR = 1.5
GATE_L = 64
GATE_MIN_CPUS = 4


@pytest.mark.benchmark(group="simmpi")
def bench_collective_roundtrip(benchmark):
    def world_once():
        def main(comm):
            x = comm.bcast(np.ones(1024) if comm.rank == 0 else None)
            return comm.reduce(float(x.sum()))

        return SimMPI(4).run(main)

    benchmark(world_once)


@pytest.mark.benchmark(group="simmpi")
def bench_buffer_scatter(benchmark):
    def world_once():
        def main(comm):
            send = (
                np.zeros((comm.size, 64 * 1024))
                if comm.rank == 0
                else None
            )
            recv = np.empty(64 * 1024)
            comm.Scatter(send, recv)

        return SimMPI(4).run(main)

    benchmark(world_once)


@pytest.mark.benchmark(group="openmp-layer")
def bench_parallel_for_gemm_bodies(benchmark):
    rng = np.random.default_rng(0)
    mats = rng.standard_normal((16, 64, 64))
    out = np.empty_like(mats)

    def run():
        parallel_for(
            lambda i: np.matmul(mats[i], mats[i], out=out[i]),
            16,
            num_threads=2,
        )

    benchmark(run)


@pytest.mark.benchmark(group="hybrid")
def bench_fleet_small(benchmark):
    model = HubbardModel(RectangularLattice(3, 3), L=8, U=2.0, beta=1.0)
    cfg = HybridConfig(
        n_matrices=4,
        n_ranks=2,
        threads_per_rank=1,
        c=4,
        pattern=Pattern.DIAGONAL,
        seed=0,
    )
    benchmark(run_fsi_fleet, model, cfg)


def _fleet_jobs(model: HubbardModel, L: int, n_jobs: int, seed: int):
    rng = np.random.default_rng(seed)
    signs = np.array([-1, 1], dtype=np.int8)
    return [
        (rng.choice(signs, size=L * model.N), 8, Pattern.COLUMNS, i % 8)
        for i in range(n_jobs)
    ]


@pytest.mark.benchmark(group="transport-fleet")
@pytest.mark.parametrize("backend", ["threads", "mp-shm"])
def bench_selected_fleet_backend(benchmark, backend):
    model = HubbardModel(RectangularLattice(3, 3), L=16, U=2.0, beta=1.0)
    jobs = _fleet_jobs(model, 16, n_jobs=4, seed=0)
    benchmark(
        run_selected_fleet, model, jobs, 2, 1, +1, backend
    )


# ----------------------------------------------------------------------
# the CI gate
# ----------------------------------------------------------------------

def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_fleet(L: int, n_ranks: int = 4, n_jobs: int = 8,
                  seed: int = 0, repeats: int = 3) -> dict:
    """Best-of fleet wall clock on ``threads`` vs ``mp-shm``.

    The workload is the service's execution engine
    (:func:`run_selected_fleet`): ``n_jobs`` independent FSI solves of
    a 4x4 Hubbard chain (N = 16, c = 8, COLUMNS) distributed blockwise
    over ``n_ranks`` ranks, selected blocks gathered back to the root.
    Both backends run the byte-identical rank body; a spot check
    verifies they return the same blocks before anything is timed.
    """
    model = HubbardModel(RectangularLattice(4, 4), L=L, U=2.0, beta=1.0)
    jobs = _fleet_jobs(model, L, n_jobs, seed)

    outs = {}
    times = {}
    for backend in ("threads", "mp-shm"):
        def run(backend: str = backend):
            return run_selected_fleet(
                model, jobs, n_ranks=n_ranks, threads_per_rank=1,
                transport=backend,
            )
        outs[backend] = run()  # warm-up (and the correctness probe)
        times[backend] = _best_of(run, repeats=repeats)

    worst = 0.0
    for a, b in zip(outs["threads"], outs["mp-shm"]):
        for kl, blk in a.blocks.items():
            worst = max(worst, float(np.max(np.abs(blk - b.blocks[kl]))))
    if worst > 1e-12:
        raise AssertionError(
            f"threads and mp-shm fleets disagree by {worst:.3e}"
        )

    return {
        "L": L,
        "N": model.N,
        "c": 8,
        "ranks": n_ranks,
        "jobs": n_jobs,
        "threads_ms": times["threads"] * 1e3,
        "mpshm_ms": times["mp-shm"] * 1e3,
        "speedup": times["threads"] / times["mp-shm"],
        "max_backend_diff": worst,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero when mp-shm is below {SPEEDUP_FLOOR}x threads"
             f" at L={GATE_L} (enforced on >= {GATE_MIN_CPUS}-core hosts)",
    )
    parser.add_argument(
        "--json-out",
        default=str(
            Path(__file__).resolve().parents[1] / "BENCH_parallel.json"
        ),
        help="where to write the measurement record",
    )
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    enforced = cpus >= GATE_MIN_CPUS
    points = [
        measure_fleet(
            L, n_ranks=args.ranks, n_jobs=args.jobs,
            seed=args.seed, repeats=args.repeats,
        )
        for L in (32, 64)
    ]
    record = {
        "benchmark": "transport-fleet",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpus,
        "speedup_floor": SPEEDUP_FLOOR,
        "gate_enforced": enforced,
        "points": points,
    }
    Path(args.json_out).write_text(json.dumps(record, indent=2) + "\n")
    for p in points:
        print(
            f"L={p['L']:3d}: {args.ranks}-rank fleet of {p['jobs']} solves —"
            f" threads {p['threads_ms']:8.1f} ms,"
            f" mp-shm {p['mpshm_ms']:8.1f} ms"
            f" = {p['speedup']:.2f}x"
        )
    print(
        f"  floor {SPEEDUP_FLOOR}x at L={GATE_L};"
        f" {cpus} CPU core(s) -> gate"
        f" {'ENFORCED' if enforced else 'recorded only (too few cores)'}"
    )
    print(f"  wrote {args.json_out}")
    if args.check and enforced:
        gate_point = next(p for p in points if p["L"] == GATE_L)
        if gate_point["speedup"] < SPEEDUP_FLOOR:
            print(
                f"FAIL: mp-shm speedup {gate_point['speedup']:.2f}x below"
                f" {SPEEDUP_FLOOR}x floor at L={GATE_L}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
