"""Parallel substrate benchmarks: SimMPI collectives and threaded loops."""

import numpy as np
import pytest

from repro.core.patterns import Pattern
from repro.hubbard import HubbardModel, RectangularLattice
from repro.parallel.hybrid import HybridConfig, run_fsi_fleet
from repro.parallel.openmp import parallel_for
from repro.parallel.simmpi import SimMPI


@pytest.mark.benchmark(group="simmpi")
def bench_collective_roundtrip(benchmark):
    def world_once():
        def main(comm):
            x = comm.bcast(np.ones(1024) if comm.rank == 0 else None)
            return comm.reduce(float(x.sum()))

        return SimMPI(4).run(main)

    benchmark(world_once)


@pytest.mark.benchmark(group="simmpi")
def bench_buffer_scatter(benchmark):
    def world_once():
        def main(comm):
            send = (
                np.zeros((comm.size, 64 * 1024))
                if comm.rank == 0
                else None
            )
            recv = np.empty(64 * 1024)
            comm.Scatter(send, recv)

        return SimMPI(4).run(main)

    benchmark(world_once)


@pytest.mark.benchmark(group="openmp-layer")
def bench_parallel_for_gemm_bodies(benchmark):
    rng = np.random.default_rng(0)
    mats = rng.standard_normal((16, 64, 64))
    out = np.empty_like(mats)

    def run():
        parallel_for(
            lambda i: np.matmul(mats[i], mats[i], out=out[i]),
            16,
            num_threads=2,
        )

    benchmark(run)


@pytest.mark.benchmark(group="hybrid")
def bench_fleet_small(benchmark):
    model = HubbardModel(RectangularLattice(3, 3), L=8, U=2.0, beta=1.0)
    cfg = HybridConfig(
        n_matrices=4,
        n_ranks=2,
        threads_per_rank=1,
        c=4,
        pattern=Pattern.DIAGONAL,
        seed=0,
    )
    benchmark(run_fsi_fleet, model, cfg)
