"""DQMC engine wall-clock benchmarks: sweeps, Green's bundles, measurements."""

import pytest

from repro.dqmc.engine import DQMC, DQMCConfig
from repro.dqmc.spxx import spxx
from repro.hubbard import HubbardModel, RectangularLattice


@pytest.fixture(scope="module")
def sim():
    model = HubbardModel(RectangularLattice(4, 4), L=16, U=4.0, beta=2.0)
    return DQMC(
        model,
        DQMCConfig(
            warmup_sweeps=0,
            measurement_sweeps=0,
            c=4,
            nwrap=4,
            seed=7,
            num_threads=1,
        ),
    )


@pytest.mark.benchmark(group="dqmc")
def bench_sweep(benchmark, sim):
    benchmark(sim.sweep)


@pytest.mark.benchmark(group="dqmc")
def bench_compute_greens(benchmark, sim):
    benchmark(sim.compute_greens, 1)


@pytest.mark.benchmark(group="dqmc")
def bench_measure(benchmark, sim):
    greens = sim.compute_greens(1)
    benchmark(sim.measure, greens)


@pytest.mark.benchmark(group="dqmc")
def bench_spxx_only(benchmark, sim):
    greens = sim.compute_greens(1)
    gu, gd = greens[+1], greens[-1]
    benchmark(
        spxx, gu.rows, gu.cols, gd.rows, gd.cols, sim.model.lattice, 1
    )


@pytest.mark.benchmark(group="dqmc")
def bench_stable_rebuild(benchmark, sim):
    from repro.dqmc.stabilize import stable_equal_time

    pc = sim.model.build_matrix(sim.field, +1)
    benchmark(stable_equal_time, pc, 1)
