"""Wall-clock benchmarks of the Green's-function service.

Measures the serving layer itself, not the FSI math: end-to-end
throughput of a duplicate-heavy job stream, submit-path latency on a
warm cache, and the overhead the scheduler adds over calling
:func:`repro.core.fsi.fsi` directly.

Each benchmark also prints the service-side percentiles and cache hit
rate so a run leaves a throughput + latency + cache record next to the
pytest-benchmark timing table.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    BENCH_SMALL,
    arrival_times,
    make_job_stream,
    run_job_stream,
)
from repro.service import GreensService, ServiceConfig

#: Stream sizes kept small enough that the whole file runs in well
#: under a minute; the service paths (queue, coalescing, cache, pool)
#: dominate at this scale, which is exactly what we want to measure.
N_JOBS = 32
DUPLICATE_FRACTION = 0.5


def _fresh_service(workers: int = 2) -> GreensService:
    return GreensService(
        ServiceConfig(workers=workers, batch_max=4, fleet_ranks=1)
    )


@pytest.mark.benchmark(group="service")
def bench_service_burst_throughput(benchmark):
    """Closed-loop burst: N jobs with 50% duplicates, 2 workers."""
    jobs = make_job_stream(
        BENCH_SMALL, N_JOBS, duplicate_fraction=DUPLICATE_FRACTION, seed=3
    )
    reports = []

    def run():
        with _fresh_service(workers=2) as svc:
            report = run_job_stream(svc, jobs, arrivals=None)
        reports.append(report)
        return report

    benchmark(run)
    last = reports[-1]
    assert last.failed == 0
    print(f"\n[bench_service_burst_throughput] {last.summary()}")


@pytest.mark.benchmark(group="service")
def bench_service_poisson_stream(benchmark):
    """Open-loop Poisson arrivals replayed at 20x speed."""
    jobs = make_job_stream(
        BENCH_SMALL, N_JOBS, duplicate_fraction=DUPLICATE_FRACTION, seed=4
    )
    arrivals = arrival_times(len(jobs), kind="poisson", rate=400.0, seed=4)
    reports = []

    def run():
        with _fresh_service(workers=2) as svc:
            report = run_job_stream(svc, jobs, arrivals=arrivals)
        reports.append(report)
        return report

    benchmark(run)
    last = reports[-1]
    assert last.failed == 0
    print(f"\n[bench_service_poisson_stream] {last.summary()}")


@pytest.mark.benchmark(group="service")
def bench_service_warm_cache_submit(benchmark):
    """Submit latency when every request is a cache hit.

    This is the pure serving overhead: fingerprint lookup + ticket
    resolution, no queueing and no FSI execution.
    """
    jobs = make_job_stream(BENCH_SMALL, 4, duplicate_fraction=0.0, seed=5)
    svc = _fresh_service(workers=1)
    try:
        for job in jobs:
            svc.submit(job).result(timeout=60.0)

        def warm_submit():
            for job in jobs:
                svc.submit(job).result(timeout=60.0)

        benchmark(warm_submit)
        stats = svc.stats()
        assert stats["executions"] == len(jobs)
        print(
            f"\n[bench_service_warm_cache_submit] cache hit rate"
            f" {stats['cache']['hit_rate'] * 100:.1f}% over"
            f" {stats['cache']['hits'] + stats['cache']['misses']} lookups"
        )
    finally:
        svc.shutdown()
