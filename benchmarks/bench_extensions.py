"""Wall-clock benchmarks for the extension modules."""

import numpy as np
import pytest

from repro.apps.trace import exact_trace, hutchinson_trace
from repro.core.patterns import Pattern
from repro.core.solve import PCyclicSolver
from repro.dqmc.engine import DQMC, DQMCConfig
from repro.hubbard import HubbardModel, RectangularLattice
from repro.hubbard.checkerboard import CheckerboardPropagator
from repro.tridiag import fsi_tridiagonal, random_btd, rgf_diagonal


@pytest.fixture(scope="module")
def btd():
    return random_btd(32, 16, np.random.default_rng(0))


@pytest.mark.benchmark(group="tridiag")
def bench_tridiag_fsi_columns(benchmark, btd):
    benchmark(fsi_tridiagonal, btd, 8, Pattern.COLUMNS, 1, None, 1)


@pytest.mark.benchmark(group="tridiag")
def bench_tridiag_rgf_diagonal(benchmark, btd):
    benchmark(rgf_diagonal, btd)


@pytest.fixture(scope="module")
def solver_problem():
    from repro.core.pcyclic import random_pcyclic

    pc = random_pcyclic(24, 24, np.random.default_rng(1), scale=0.6)
    return pc, PCyclicSolver(pc), np.ones((pc.shape[0], 4))


@pytest.mark.benchmark(group="solve")
def bench_pcyclic_factor(benchmark, solver_problem):
    pc, _, _ = solver_problem
    benchmark(PCyclicSolver, pc)


@pytest.mark.benchmark(group="solve")
def bench_pcyclic_solve(benchmark, solver_problem):
    _, solver, rhs = solver_problem
    benchmark(solver.solve, rhs)


@pytest.mark.benchmark(group="trace")
def bench_exact_trace(benchmark, solver_problem):
    pc, _, _ = solver_problem
    benchmark(exact_trace, pc, 4)


@pytest.mark.benchmark(group="trace")
def bench_hutchinson_32(benchmark, solver_problem):
    pc, solver, _ = solver_problem
    benchmark(hutchinson_trace, pc, 32, 0, solver)


@pytest.mark.benchmark(group="checkerboard")
def bench_checkerboard_apply(benchmark):
    cb = CheckerboardPropagator(RectangularLattice(8, 8), 1.0, 0.125)
    X = np.random.default_rng(0).standard_normal((64, 64))
    benchmark(cb.apply_left, X)


@pytest.mark.benchmark(group="checkerboard")
def bench_exact_kinetic_apply(benchmark):
    from repro.hubbard.kinetic import KineticPropagator

    kin = KineticPropagator(RectangularLattice(8, 8).adjacency, 1.0, 0.125)
    X = np.random.default_rng(0).standard_normal((64, 64))
    benchmark(lambda: kin.forward @ X)


@pytest.mark.benchmark(group="dqmc-delayed")
def bench_sweep_eager(benchmark):
    model = HubbardModel(RectangularLattice(4, 4), L=16, U=4.0, beta=2.0)
    sim = DQMC(model, DQMCConfig(c=4, nwrap=4, seed=0, delay=1))
    benchmark(sim.sweep)


@pytest.mark.benchmark(group="dqmc-delayed")
def bench_sweep_delayed_16(benchmark):
    model = HubbardModel(RectangularLattice(4, 4), L=16, U=4.0, beta=2.0)
    sim = DQMC(model, DQMCConfig(c=4, nwrap=4, seed=0, delay=16))
    benchmark(sim.sweep)


@pytest.mark.benchmark(group="complex")
def bench_fsi_real(benchmark):
    from repro.core.fsi import fsi
    from repro.core.pcyclic import random_pcyclic

    pc = random_pcyclic(24, 24, np.random.default_rng(3), scale=0.6)
    benchmark(fsi, pc, 4, Pattern.COLUMNS, 1, None, 1)


@pytest.mark.benchmark(group="complex")
def bench_fsi_complex(benchmark):
    from repro.core.fsi import fsi
    from repro.core.pcyclic import BlockPCyclic

    rng = np.random.default_rng(3)
    B = (rng.standard_normal((24, 24, 24)) + 1j * rng.standard_normal((24, 24, 24)))
    pc = BlockPCyclic(B * (0.6 / np.sqrt(24)))
    benchmark(fsi, pc, 4, Pattern.COLUMNS, 1, None, 1)


@pytest.mark.benchmark(group="tdm")
def bench_szz_tau(benchmark):
    from repro.dqmc.tdm import szz_tau

    model = HubbardModel(RectangularLattice(4, 4), L=16, U=4.0, beta=2.0)
    sim = DQMC(model, DQMCConfig(c=4, nwrap=4, seed=1, num_threads=1))
    b = sim.compute_greens(q=1)
    benchmark(
        szz_tau,
        b[1].rows, b[1].cols, b[-1].rows, b[-1].cols,
        b[1].full_diagonal, b[-1].full_diagonal,
        model.lattice, 1,
    )


@pytest.mark.benchmark(group="tdm")
def bench_local_greens_tau(benchmark):
    from repro.dqmc.tdm import local_greens_tau

    model = HubbardModel(RectangularLattice(4, 4), L=16, U=4.0, beta=2.0)
    sim = DQMC(model, DQMCConfig(c=4, nwrap=4, seed=1, num_threads=1))
    b = sim.compute_greens(q=1)
    benchmark(local_greens_tau, b[1].rows, b[-1].rows, model.lattice)
