"""EXP-F10 — Fig. 10: runtime profile on a single Hubbard matrix.

(L, N) = (100, 400), c = 10; both equal-time and time-dependent
measurements consume all diagonal blocks, b block rows and b block
columns of each spin's Green's function.

Paper anchors: MKL threading cuts the Green's-function time but
*increases* the measurement time (sequential code in a threaded
process); FSI + OpenMP uses ~87% less CPU time than serial for
Green's functions + measurements combined.

The modeled profile uses the Edison model; the scaled-down real run
exercises the same compute path (FSI bundle + SPXX + equal-time
measurements) through the DQMC engine's timers.

Run: ``python benchmarks/exp_f10_profile.py``
"""

from __future__ import annotations

from repro.bench.report import Table, banner
from repro.dqmc.engine import DQMC, DQMCConfig
from repro.hubbard import HubbardModel, RectangularLattice
from repro.perf.model import greens_time, measurement_time


def modeled_profile(N: int = 400, L: int = 100, c: int = 10) -> Table:
    table = Table(
        f"EXP-F10: modeled single-matrix profile, (L, N) = ({L}, {N}), c = {c}",
        ["execution", "greens s", "measurement s", "total s", "vs serial"],
        note="paper: MKL cuts greens but inflates measurement; OpenMP"
        " ~87% total reduction",
    )
    rows = [("serial", 1, "serial"), ("MKL 12t", 12, "mkl"), ("OpenMP 12t", 12, "openmp")]
    serial_total = None
    for label, t, mode in rows:
        g = greens_time(N, L, c, t, mode)
        m = measurement_time(N, L, c, t, mode)
        total = g + m
        if serial_total is None:
            serial_total = total
        table.add_row(label, g, m, total, f"{total / serial_total:.2f}x")
    return table


def real_profile(seed: int = 11) -> Table:
    """Measured greens/measurement split on this host (scaled)."""
    model = HubbardModel(RectangularLattice(4, 4), L=24, U=4.0, beta=2.0)
    sim = DQMC(
        model,
        DQMCConfig(
            warmup_sweeps=0,
            measurement_sweeps=3,
            c=4,
            nwrap=6,
            bin_size=1,
            seed=seed,
            num_threads=1,
        ),
    )
    res = sim.run()
    per_iter_g = res.greens_seconds / 3
    per_iter_m = res.measurement_seconds / 3
    table = Table(
        "EXP-F10 (real, this host): per-measurement-iteration profile,"
        " (N, L, c) = (16, 24, 4)",
        ["component", "seconds/iter", "share"],
    )
    total = per_iter_g + per_iter_m
    table.add_row("Green's function (FSI bundle)", per_iter_g, per_iter_g / total)
    table.add_row("physical measurements", per_iter_m, per_iter_m / total)
    table.add_row("total", total, 1.0)
    return table


if __name__ == "__main__":
    print(banner("EXP-F10: single-matrix runtime profile (Fig. 10)"))
    modeled_profile().print()
    real_profile().print()
