"""Wall-clock microbenchmarks of the three FSI stages.

Regenerates the *shape* of Fig. 8 top on the host machine: CLS and WRP
run at gemm-like rates, BSOFI lower — and the stage costs follow the
``2b(c-1) : 7b^2 : 3(bL-b^2)`` flop split.
"""

import pytest

from repro.core.bsofi import bsofi, bsofi_qr
from repro.core.cls import cls
from repro.core.fsi import fsi
from repro.core.patterns import Pattern, Selection
from repro.core.wrap import wrap

C_SMALL = 4
C_MEDIUM = 8


@pytest.mark.benchmark(group="cls")
def bench_cls_small(benchmark, small_problem):
    pc, _, _ = small_problem
    benchmark(cls, pc, C_SMALL, 1, num_threads=1)


@pytest.mark.benchmark(group="cls")
def bench_cls_medium(benchmark, medium_problem):
    pc, _, _ = medium_problem
    benchmark(cls, pc, C_MEDIUM, 1, num_threads=1)


@pytest.mark.benchmark(group="cls")
def bench_cls_large_blocks(benchmark, large_blocks_problem):
    benchmark(cls, large_blocks_problem, 4, 1, num_threads=1)


@pytest.mark.benchmark(group="bsofi")
def bench_bsofi_qr_only(benchmark, small_problem):
    pc, _, _ = small_problem
    reduced = cls(pc, C_SMALL, 1, num_threads=1)
    benchmark(bsofi_qr, reduced)


@pytest.mark.benchmark(group="bsofi")
def bench_bsofi_small(benchmark, small_problem):
    pc, _, _ = small_problem
    reduced = cls(pc, C_SMALL, 1, num_threads=1)
    benchmark(bsofi, reduced)


@pytest.mark.benchmark(group="bsofi")
def bench_bsofi_medium(benchmark, medium_problem):
    pc, _, _ = medium_problem
    reduced = cls(pc, C_MEDIUM, 1, num_threads=1)
    benchmark(bsofi, reduced)


@pytest.mark.benchmark(group="wrp")
def bench_wrap_columns(benchmark, small_problem):
    pc, _, _ = small_problem
    seeds = bsofi(cls(pc, C_SMALL, 1, num_threads=1))
    sel = Selection(Pattern.COLUMNS, L=pc.L, c=C_SMALL, q=1)
    benchmark(wrap, pc, seeds, sel, 1)


@pytest.mark.benchmark(group="wrp")
def bench_wrap_rows(benchmark, small_problem):
    pc, _, _ = small_problem
    seeds = bsofi(cls(pc, C_SMALL, 1, num_threads=1))
    sel = Selection(Pattern.ROWS, L=pc.L, c=C_SMALL, q=1)
    benchmark(wrap, pc, seeds, sel, 1)


@pytest.mark.benchmark(group="wrp")
def bench_wrap_full_diagonal(benchmark, small_problem):
    pc, _, _ = small_problem
    seeds = bsofi(cls(pc, C_SMALL, 1, num_threads=1))
    sel = Selection(Pattern.FULL_DIAGONAL, L=pc.L, c=C_SMALL, q=1)
    benchmark(wrap, pc, seeds, sel, 1)


@pytest.mark.benchmark(group="fsi-end-to-end")
def bench_fsi_columns_small(benchmark, small_problem):
    pc, _, _ = small_problem
    benchmark(fsi, pc, C_SMALL, Pattern.COLUMNS, 1, None, 1)


@pytest.mark.benchmark(group="fsi-end-to-end")
def bench_fsi_columns_medium(benchmark, medium_problem):
    pc, _, _ = medium_problem
    benchmark(fsi, pc, C_MEDIUM, Pattern.COLUMNS, 1, None, 1)


@pytest.mark.benchmark(group="fsi-end-to-end")
def bench_fsi_diagonal_medium(benchmark, medium_problem):
    pc, _, _ = medium_problem
    benchmark(fsi, pc, C_MEDIUM, Pattern.DIAGONAL, 1, None, 1)
