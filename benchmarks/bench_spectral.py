"""Spectral sweeps: the shared factorisation must crush per-shift FSI.

The resolvent path (``repro.spectral``, see ``docs/spectral.md``)
computes selected blocks of ``G(z) = (zI - M)^{-1}`` over an
omega-grid.  Its whole point is that the omega-independent work — the
``2b(c-1)N^3`` CLS clustering and the per-block wrapping LUs — is
factored **once** and shared by every shift, leaving only the
``~7b^2N^3`` reduced inversion plus wrapping per frequency.  The
naive alternative rebuilds the shifted p-cyclic matrix and runs the
full FSI pipeline per shift.  This file pins that contract down twice:

* pytest-benchmark timings of the factored sweep next to the naive
  per-shift loop at bench scale, so regressions show up with the other
  wall-clock numbers;
* a standalone ``--check`` mode (run by CI) that measures the factored
  sweep against naive per-shift refactorisation at tier-1 grid scale
  (``L = 64`` with the sweep-optimal cluster choice ``c = L``) and
  **fails below a 3x speedup**.  It cross-checks the swept blocks
  against the naive path to 1e-8 so the gate can never pass on a
  fast-but-wrong sweep,
  measures the complex guard battery's overhead on the sweep against
  the repo-wide 5% budget, and writes the measurement to
  ``BENCH_spectral.json`` — the committed perf-trajectory point for
  the spectral path.

Run the gate locally with::

    PYTHONPATH=src python benchmarks/bench_spectral.py --check
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.workloads import (
    BENCH_SMALL,
    VALIDATION,
    Workload,
    make_hubbard,
)
from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.resilience.guards import GuardConfig
from repro.spectral import OmegaGrid, ResolventFactor, shifted_pcyclic

#: Minimum factored-sweep speedup over naive per-shift FSI (the CI gate).
SPEEDUP_FLOOR = 3.0

#: Swept blocks must match the naive per-shift path to this error.
ACCURACY_FLOOR = 1e-8

#: Maximum tolerated guarded-sweep slowdown (the repo-wide guard budget).
GUARD_OVERHEAD_BUDGET = 0.05

#: The gate geometry: tier-1 time-slice count with ``c = L`` — for
#: *sweeps* the optimal cluster is larger than the equal-time
#: ``c ~ sqrt(L)`` rule, because the ``2b(c-1)N^3`` CLS stage is paid
#: once per grid rather than once per solve, so per-shift cost is
#: minimised by collapsing the reduced chain all the way to one block.
#: The naive path repays that whole stage at every shift.
SWEEP = Workload("spectral-sweep", nx=10, ny=10, L=64, c=64)


def _naive_sweep(pc, c: int, grid: OmegaGrid, pattern: Pattern):
    """Per-shift refactorisation: shift, full FSI, unscale.  The baseline."""
    out = []
    for z in grid.z:
        shifted, d = shifted_pcyclic(pc, z)
        res = fsi(shifted, c, pattern=pattern, q=0, num_threads=1)
        out.append({kl: blk / d for kl, blk in res.selected.items()})
    return out


# ----------------------------------------------------------------------
# pytest-benchmark timings
# ----------------------------------------------------------------------

GRID_SMALL = OmegaGrid.linear(-4.0, 4.0, 9, 0.5)


@pytest.mark.benchmark(group="spectral")
def bench_factored_sweep(benchmark, small_problem):
    pc, _, _ = small_problem
    benchmark(
        lambda: ResolventFactor(
            pc, BENCH_SMALL.c, pattern=Pattern.DIAGONAL, q=0
        ).sweep(GRID_SMALL, num_threads=1)
    )


@pytest.mark.benchmark(group="spectral")
def bench_naive_sweep(benchmark, small_problem):
    pc, _, _ = small_problem
    benchmark(
        lambda: _naive_sweep(pc, BENCH_SMALL.c, GRID_SMALL, Pattern.DIAGONAL)
    )


@pytest.mark.benchmark(group="spectral")
def bench_factor_only(benchmark, small_problem):
    """The shared setup the sweep amortises: CLS + wrapping LUs."""
    pc, _, _ = small_problem
    benchmark(
        lambda: ResolventFactor(
            pc, BENCH_SMALL.c, pattern=Pattern.DIAGONAL, q=0
        )
    )


@pytest.mark.benchmark(group="spectral")
def bench_guarded_sweep(benchmark, small_problem):
    """The complex guard battery on the path it protects."""
    pc, _, _ = small_problem
    factor = ResolventFactor(
        pc, BENCH_SMALL.c, pattern=Pattern.DIAGONAL, q=0,
        guards=GuardConfig(),
    )
    benchmark(lambda: factor.sweep(GRID_SMALL, num_threads=1))


# ----------------------------------------------------------------------
# the CI gate
# ----------------------------------------------------------------------

def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_of_calls(fn, repeats: int = 7, calls: int = 50) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / calls


def measure_sweep(seed: int = 1) -> dict:
    """Factored sweep vs naive per-shift FSI at tier-1 grid scale.

    ``(N, L, c) = (100, 64, 64)`` and a 33-point grid at ``eta = 0.5``.
    The factored side times everything a cold request pays —
    ``ResolventFactor`` construction (CLS + LUs) plus the grid sweep;
    the naive side re-runs the full FSI pipeline per shift.  Accuracy
    of the swept blocks against the naive path is measured alongside,
    globally normalised per shift, so the committed number can never
    come from a divergent fast path.
    """
    w = SWEEP
    pc, _, _ = make_hubbard(w, seed=seed)
    grid = OmegaGrid.linear(-4.0, 4.0, 33, 0.5)
    pattern = Pattern.DIAGONAL

    def factored():
        return ResolventFactor(pc, w.c, pattern=pattern, q=0).sweep(
            grid, num_threads=1
        )

    factored()  # warm BLAS
    factored_s = _best_of(factored)
    naive_s = _best_of(lambda: _naive_sweep(pc, w.c, grid, pattern))

    swept = factored()
    naive = _naive_sweep(pc, w.c, grid, pattern)
    worst = 0.0
    for j in range(grid.n):
        scale = max(np.abs(blk).max() for blk in naive[j].values()) or 1.0
        for kl, blk in naive[j].items():
            err = float(np.abs(swept.blocks[kl][j] - blk).max()) / scale
            worst = max(worst, err)

    return {
        "workload": {
            "N": w.N, "L": w.L, "c": w.c, "n_omega": grid.n,
            "eta": float(grid.etas[0]), "pattern": "diagonal",
        },
        "factored_ms": factored_s * 1e3,
        "naive_ms": naive_s * 1e3,
        "speedup": naive_s / factored_s,
        "max_rel_error": worst,
    }


def measure_guard_overhead(seed: int = 1) -> dict:
    """Per-shift guard battery cost on a paper-validation-scale sweep.

    The service runs spectral chunks under the guard battery by
    default, so the complex screens + condition estimates must fit the
    same 5% budget the equal-time path honours
    (``bench_resilience.py``).  Same methodology as that gate: the
    checks the guarded sweep adds per shift (complex finiteness
    screens on the shifted reduced chain, BSOFI seeds and sampled
    result blocks, a sampled 1-norm condition estimate, a sampled seed
    residual) are timed directly on the *real* per-shift arrays of a
    ``(N, L, c) = (100, 64, 8)`` sweep — differencing two end-to-end
    sweep timings would put a machine-drift noise floor right on top
    of the 5% budget, while the component costs are microseconds,
    measurable to a few percent with tight best-of loops.  The checks
    are strictly additive to the sweep, so their summed per-shift cost
    over the best-of unguarded per-shift time bounds the slowdown.
    """
    from repro.core.bsofi import bsofi
    from repro.resilience.guards import (
        check_cluster_conditions,
        check_seed_residual,
        sample_indices,
        screen_finite,
    )
    from repro.spectral.resolvent import shift_scale

    w = VALIDATION
    pc, _, _ = make_hubbard(w, seed=seed)
    grid = OmegaGrid.linear(-4.0, 4.0, 8, 0.5)
    guards = GuardConfig()
    factor = ResolventFactor(pc, w.c, pattern=Pattern.DIAGONAL, q=0)

    # the real arrays each per-shift check sees in a guarded sweep
    z = complex(grid.z[grid.n // 2])
    _, s = shift_scale(z)
    from repro.core.pcyclic import BlockPCyclic
    reduced_z = BlockPCyclic(factor._reduced_B * s**w.c)
    seeds = bsofi(reduced_z)
    selected, _ = factor.solve_shift(z, num_threads=1)
    blocks = [selected[kl] for kl in selected]
    picked = sample_indices(len(blocks), guards.result_screen_samples)
    sampled = [blocks[i] for i in picked]

    components = {
        "screen_cls": lambda: screen_finite("cls", reduced_z.B),
        "screen_bsofi": lambda: screen_finite("bsofi", seeds),
        "screen_result": lambda: screen_finite("result", *sampled),
        "condition": lambda: check_cluster_conditions(reduced_z.B, guards),
        "residual": lambda: check_seed_residual(reduced_z.B, seeds, guards),
    }
    costs = {
        name: _best_of_calls(fn, repeats=7, calls=50)
        for name, fn in components.items()
    }
    battery = sum(costs.values())

    factor.sweep(grid, num_threads=1)  # warm caches
    sweep_s = _best_of(lambda: factor.sweep(grid, num_threads=1), repeats=5)
    per_shift = sweep_s / grid.n
    return {
        "guard_workload": {"N": w.N, "L": w.L, "c": w.c, "n_omega": grid.n},
        "guard_component_us": {k: v * 1e6 for k, v in costs.items()},
        "guard_battery_us": battery * 1e6,
        "shift_ms": per_shift * 1e3,
        "guard_overhead": battery / per_shift,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero below a {SPEEDUP_FLOOR:.0f}x speedup, above"
             f" {ACCURACY_FLOOR:.0e} error, or above"
             f" {GUARD_OVERHEAD_BUDGET:.0%} guard overhead",
    )
    parser.add_argument(
        "--json-out",
        default=str(
            Path(__file__).resolve().parents[1] / "BENCH_spectral.json"
        ),
        help="where to write the measurement record",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    stats = {**measure_sweep(seed=args.seed),
             **measure_guard_overhead(seed=args.seed)}
    record = {
        "benchmark": "spectral-sweep",
        "python": platform.python_version(),
        "machine": platform.machine(),
        **stats,
    }
    Path(args.json_out).write_text(json.dumps(record, indent=2) + "\n")
    wl = stats["workload"]
    print(
        f"factored sweep: {stats['factored_ms']:.1f} ms vs"
        f" {stats['naive_ms']:.1f} ms naive per-shift"
        f" = {stats['speedup']:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)"
        f" at (N, L, c) = ({wl['N']}, {wl['L']}, {wl['c']}),"
        f" {wl['n_omega']} shifts"
    )
    print(
        f"  max error vs naive path: {stats['max_rel_error']:.3e}"
        f" (floor {ACCURACY_FLOOR:.0e})"
    )
    print(
        f"  guard battery: {stats['guard_battery_us']:.0f} us on a"
        f" {stats['shift_ms']:.2f} ms shift at (N, L, c) ="
        f" ({stats['guard_workload']['N']}, {stats['guard_workload']['L']},"
        f" {stats['guard_workload']['c']})"
        f" = {stats['guard_overhead']:.3%} overhead"
        f" (budget {GUARD_OVERHEAD_BUDGET:.0%})"
    )
    print(f"  wrote {args.json_out}")
    if args.check:
        if stats["speedup"] < SPEEDUP_FLOOR:
            print("FAIL: spectral sweep speedup below floor", file=sys.stderr)
            return 1
        if stats["max_rel_error"] > ACCURACY_FLOOR:
            print("FAIL: spectral sweep accuracy above floor",
                  file=sys.stderr)
            return 1
        if stats["guard_overhead"] > GUARD_OVERHEAD_BUDGET:
            print("FAIL: spectral guard overhead above budget",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
