"""EXP-F8 — Fig. 8: single-node FSI performance and thread scalability.

Top plot: per-stage and aggregate Gflop/s of the OpenMP FSI versus the
MKL-threaded execution, for N in {256, 400, 576, 784, 1024} at
(L, c) = (100, 10) on one 12-core Ivy Bridge socket.  Paper anchors:
FSI ~180 Gflop/s at large N (~80% above the ~100 Gflop/s baseline),
with BSOFI the slow stage compensated by the dgemm-rich CLS and WRP.

Bottom plot: Gflop/s vs thread count (1-12) for OpenMP, MKL and ideal
scaling at (N, L, c) = (576, 100, 10): OpenMP tracks ideal closely,
MKL flattens to ~half.

Modeled numbers come from :mod:`repro.perf.model` (Edison machine
model); a scaled-down *real* run on this host is printed alongside so
the stage-cost split can be checked against actual wall clock.

Run: ``python benchmarks/exp_f8_single_node.py``
"""

from __future__ import annotations

from repro.bench.harness import run_fsi
from repro.bench.report import Series, Table, banner
from repro.bench.workloads import FIG8_SIZES, make_hubbard, Workload
from repro.core.patterns import Pattern
from repro.perf.model import fsi_profile, scaling_curve


def fig8_top(L: int = 100, c: int = 10, threads: int = 12) -> Table:
    table = Table(
        f"EXP-F8 (top): modeled Gflop/s on 12-core Ivy Bridge,"
        f" (L, c) = ({L}, {c})",
        ["N", "CLS", "BSOFI", "WRP", "FSI total", "MKL total", "FSI/MKL"],
        note="paper anchors: FSI ~180, MKL ~100 at large N (80% gap)",
    )
    for N in FIG8_SIZES:
        omp = fsi_profile(N, L, c, threads, "openmp")
        mkl = fsi_profile(N, L, c, threads, "mkl")
        table.add_row(
            N,
            omp["cls"].gflops,
            omp["bsofi"].gflops,
            omp["wrp"].gflops,
            omp["total"].gflops,
            mkl["total"].gflops,
            omp["total"].gflops / mkl["total"].gflops,
        )
    return table


def fig8_bottom(N: int = 576, L: int = 100, c: int = 10) -> Series:
    sc = scaling_curve(N, L, c)
    series = Series(
        f"EXP-F8 (bottom): modeled scalability, (N, L, c) = ({N}, {L}, {c})",
        "threads",
        [int(t) for t in sc["threads"]],
    )
    for name in ("ideal", "openmp", "mkl"):
        series.add_line(name, [round(v, 1) for v in sc[name]])
    return series


def real_stage_split(seed: int = 3) -> Table:
    """Measured stage flops/time on this host (scaled problem)."""
    w = Workload("f8-real", nx=6, ny=6, L=40, c=8, U=2.0, beta=1.0)
    pc, _, _ = make_hubbard(w, seed=seed)
    run = run_fsi(pc, w.c, Pattern.COLUMNS, q=1, num_threads=1)
    table = Table(
        f"EXP-F8 (real, this host): stage split at (N, L, c) ="
        f" ({w.N}, {w.L}, {w.c})",
        ["stage", "flops", "seconds", "Gflop/s"],
        note="shape check: CLS/WRP run near gemm rate, BSOFI below",
    )
    for stage in ("cls", "bsofi", "wrp"):
        fl = run.stage_flops.get(stage, 0.0)
        se = run.stage_seconds.get(stage, 0.0)
        table.add_row(stage, fl, se, fl / se / 1e9 if se else 0.0)
    table.add_row("total", run.flops, run.seconds, run.gflops)
    return table


if __name__ == "__main__":
    from repro.bench.ascii_chart import line_chart
    from repro.perf.model import scaling_curve

    print(banner("EXP-F8: single-node performance & scalability (Fig. 8)"))
    fig8_top().print()
    fig8_bottom().print()
    sc = scaling_curve(576, 100, 10)
    print(line_chart(
        sc["threads"],
        {"ideal": sc["ideal"], "openmp": sc["openmp"], "mkl": sc["mkl"]},
        y_label="Gflop/s",
    ))
    print()
    real_stage_split().print()
