"""EXP-F11 — Fig. 11: full DQMC simulation runtime.

(N, L) = (400, 100), (w, m) = (100, 200), c = 10, MKL vs OpenMP at
1, 6, 12 threads on one Ivy Bridge socket.

Paper anchors: serial takes ~3.5 h with ~80% in Green's functions +
measurements; FSI/OpenMP gains 6.9x from 1 to 12 cores while MKL gains
only 1.3x; the full simulation drops to ~40 minutes.

The modeled table uses the Edison model.  A real scaled-down DQMC run
(the actual engine, Alg. 4 end to end) is executed afterwards and its
component split printed — that run also doubles as the physics sanity
check (half filling, suppressed double occupancy).

Run: ``python benchmarks/exp_f11_dqmc.py``
"""

from __future__ import annotations

from repro.bench.report import Table, banner
from repro.dqmc.engine import DQMC, DQMCConfig
from repro.hubbard import HubbardModel, RectangularLattice
from repro.perf.model import dqmc_runtime


def modeled_runtime(
    N: int = 400, L: int = 100, c: int = 10, w: int = 100, m: int = 200
) -> Table:
    table = Table(
        f"EXP-F11: modeled DQMC runtime, (N, L) = ({N}, {L}),"
        f" (w, m) = ({w}, {m}), c = {c}",
        [
            "execution",
            "sweeps s",
            "greens s",
            "meas s",
            "total min",
            "speedup",
            "G+M share",
        ],
        note="paper: 3.5 h serial (~80% in G+M) -> 40 min with"
        " OpenMP-12; MKL helps only marginally",
    )
    base = dqmc_runtime(N, L, c, w, m, 1, "serial")
    rows = [("serial 1t", 1, "serial")]
    rows += [(f"MKL {t}t", t, "mkl") for t in (6, 12)]
    rows += [(f"OpenMP {t}t", t, "openmp") for t in (6, 12)]
    for label, t, mode in rows:
        r = dqmc_runtime(N, L, c, w, m, t, mode)
        table.add_row(
            label,
            r.sweep_seconds,
            r.greens_seconds,
            r.measurement_seconds,
            r.total_seconds / 60,
            base.total_seconds / r.total_seconds,
            r.greens_and_meas_fraction,
        )
    return table


def real_run(seed: int = 5) -> Table:
    """A real full DQMC simulation at laptop scale."""
    model = HubbardModel(RectangularLattice(4, 4), L=16, U=4.0, beta=2.0)
    sim = DQMC(
        model,
        DQMCConfig(
            warmup_sweeps=4,
            measurement_sweeps=8,
            c=4,
            nwrap=4,
            bin_size=2,
            seed=seed,
            num_threads=1,
        ),
    )
    res = sim.run()
    table = Table(
        "EXP-F11 (real, this host): full DQMC, 4x4 lattice, L=16,"
        " U=4, beta=2, (w, m) = (4, 8)",
        ["quantity", "value"],
    )
    table.add_row("sweep seconds", res.sweep_seconds)
    table.add_row("greens seconds", res.greens_seconds)
    table.add_row("measurement seconds", res.measurement_seconds)
    gm = res.greens_seconds + res.measurement_seconds
    table.add_row("G+M share", gm / (gm + res.sweep_seconds))
    table.add_row("acceptance rate", res.acceptance_rate)
    table.add_row("max wrap drift", res.max_wrap_drift)
    table.add_row("density (should be 1)", float(res.observable("density")[0]))
    table.add_row(
        "double occupancy (< 0.25)",
        float(res.observable("double_occupancy")[0]),
    )
    table.add_row(
        "local moment (> 0.5)", float(res.observable("local_moment")[0])
    )
    return table


if __name__ == "__main__":
    print(banner("EXP-F11: full DQMC simulation runtime (Fig. 11)"))
    modeled_runtime().print()
    real_run().print()
