"""Shared fixtures for the wall-clock benchmarks.

Benchmark sizes are scaled down from paper scale so the whole
``pytest benchmarks/ --benchmark-only`` run finishes in minutes on a
laptop while still exercising every code path with BLAS-dominated
block sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import BENCH_MEDIUM, BENCH_SMALL, make_hubbard


@pytest.fixture(scope="session")
def small_problem():
    """(N, L, c) = (16, 24, 4) Hubbard matrix + model + field."""
    return make_hubbard(BENCH_SMALL, seed=1)


@pytest.fixture(scope="session")
def medium_problem():
    """(N, L, c) = (36, 40, 8) Hubbard matrix + model + field."""
    return make_hubbard(BENCH_MEDIUM, seed=1)


@pytest.fixture(scope="session")
def large_blocks_problem():
    """Fewer, larger blocks (N=96, L=12): BLAS-bound regime."""
    from repro.core.pcyclic import random_pcyclic

    return random_pcyclic(12, 96, np.random.default_rng(2), scale=0.6)
