"""FSI versus the paper's baselines, wall clock.

The headline comparison: for ``b`` selected block columns FSI must beat
both the dense DGETRF/DGETRI inversion and the explicit Eq. (3) form on
real hardware, not just in flop counts.
"""

import pytest

from repro.core.baselines import full_lu_inverse, lu_selected_inversion
from repro.core.fsi import fsi
from repro.core.greens_explicit import explicit_selected_columns
from repro.core.patterns import Pattern, Selection


@pytest.mark.benchmark(group="selected-columns")
def bench_fsi(benchmark, medium_problem):
    pc, _, _ = medium_problem
    benchmark(fsi, pc, 8, Pattern.COLUMNS, 1, None, 1)


@pytest.mark.benchmark(group="selected-columns")
def bench_explicit_form(benchmark, medium_problem):
    pc, _, _ = medium_problem
    cols = [8 * i - 1 for i in range(1, pc.L // 8 + 1)]
    benchmark(explicit_selected_columns, pc, cols)


@pytest.mark.benchmark(group="selected-columns")
def bench_full_lu(benchmark, medium_problem):
    pc, _, _ = medium_problem
    sel = Selection(Pattern.COLUMNS, L=pc.L, c=8, q=1)
    benchmark(lu_selected_inversion, pc, sel)


@pytest.mark.benchmark(group="full-inverse")
def bench_dense_lu_inverse(benchmark, small_problem):
    pc, _, _ = small_problem
    benchmark(full_lu_inverse, pc)


@pytest.mark.benchmark(group="full-inverse")
def bench_bsofi_full_inverse(benchmark, small_problem):
    from repro.core.bsofi import bsofi

    pc, _, _ = small_problem
    benchmark(bsofi, pc)
