"""Delta serving: a warm Sherman–Morrison update must crush a full solve.

The incremental path (``core/smw.py`` + the scheduler fast path, see
``docs/incremental.md``) answers a request that differs from a cached
base by ``k`` HS flips with one rank-``k`` Woodbury application —
O(L N^2 k) against the O(b L N^3) of a fresh FSI solve.  This file pins
that contract down twice:

* pytest-benchmark timings of warm single-flip and rank-8 updates next
  to the full solve, so regressions show up with the other wall-clock
  numbers;
* a standalone ``--check`` mode (run by CI) that measures the warm
  single-flip delta against the full solve at paper validation scale
  (``(N, L, c) = (100, 64, 8)`` — L >= 64) and **fails below a 5x
  speedup**.  It also re-verifies the updated blocks against a fresh
  solve to 1e-8, so the gate can never pass on a fast-but-wrong path,
  and writes the measurement to ``BENCH_delta.json`` — the repo's
  committed perf-trajectory point for the delta path.

Run the gate locally with::

    PYTHONPATH=src python benchmarks/bench_delta.py --check
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.workloads import BENCH_SMALL, VALIDATION, make_hubbard
from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.core.smw import PCyclicWoodbury, diag_flips

#: Minimum warm single-flip speedup over the full solve (the CI gate).
SPEEDUP_FLOOR = 5.0

#: Served blocks must match a fresh solve to this relative error.
ACCURACY_FLOOR = 1e-8


def _flips(field, model, n: int, seed: int = 3):
    """``n`` distinct random flips of ``field`` as (flip list, new field)."""
    rng = np.random.default_rng(seed)
    flipped = field.copy()
    positions: set[tuple[int, int]] = set()
    while len(positions) < n:
        positions.add(
            (int(rng.integers(field.L)), int(rng.integers(field.N)))
        )
    for sl, site in positions:
        flipped.flip(sl, site)
    coupling = model.spin_factor(+1) * model.nu
    return diag_flips(field.h, flipped.h, coupling), flipped


# ----------------------------------------------------------------------
# pytest-benchmark timings
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def warm_delta_small():
    pc, model, field = make_hubbard(BENCH_SMALL, seed=1)
    base = fsi(pc, BENCH_SMALL.c, pattern=Pattern.FULL_DIAGONAL, q=0)
    blocks = dict(base.selected.items())
    return PCyclicWoodbury(pc), blocks, model, field


@pytest.mark.benchmark(group="delta")
def bench_full_solve(benchmark, small_problem):
    pc, _, _ = small_problem
    benchmark(
        lambda: fsi(
            pc, BENCH_SMALL.c, pattern=Pattern.FULL_DIAGONAL, q=0,
            num_threads=1,
        )
    )


@pytest.mark.benchmark(group="delta")
def bench_delta_rank1_warm(benchmark, warm_delta_small):
    state, blocks, model, field = warm_delta_small
    flips, _ = _flips(field, model, 1)
    benchmark(lambda: state.update_blocks(blocks, flips))


@pytest.mark.benchmark(group="delta")
def bench_delta_rank8_warm(benchmark, warm_delta_small):
    state, blocks, model, field = warm_delta_small
    flips, _ = _flips(field, model, 8)
    benchmark(lambda: state.update_blocks(blocks, flips))


@pytest.mark.benchmark(group="delta")
def bench_delta_cold_factor(benchmark, small_problem):
    """Cold-base cost: the two structured QRs the LRU amortises away."""
    pc, _, _ = small_problem
    benchmark(lambda: PCyclicWoodbury(pc))


# ----------------------------------------------------------------------
# the CI gate
# ----------------------------------------------------------------------

def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_delta(seed: int = 1) -> dict:
    """Warm single-flip delta vs full solve at paper validation scale.

    ``(N, L, c) = (100, 64, 8)`` — the Sec. V-A geometry, satisfying the
    gate's L >= 64 requirement.  The Woodbury state is factored once
    (exactly what the scheduler's per-base LRU holds between sweep
    requests) and the timed region is one rank-1 ``update_blocks`` on
    the full diagonal; the baseline is the best-of full FSI solve for
    the flipped field.  Accuracy of the served blocks against that
    fresh solve is measured alongside, so the number this file commits
    can never come from a divergent update.
    """
    w = VALIDATION
    pc, model, field = make_hubbard(w, seed=seed)
    base = fsi(pc, w.c, pattern=Pattern.FULL_DIAGONAL, q=0, num_threads=1)
    blocks = dict(base.selected.items())
    flips, flipped = _flips(field, model, 1, seed=seed + 1)

    state = PCyclicWoodbury(pc)  # factor once: the warm-base state
    state.update_blocks(blocks, flips)  # warm caches
    delta_s = _best_of(lambda: state.update_blocks(blocks, flips))

    pc_new = model.build_matrix(flipped, +1)
    fsi(pc_new, w.c, pattern=Pattern.FULL_DIAGONAL, q=0, num_threads=1)
    solve_s = _best_of(
        lambda: fsi(
            pc_new, w.c, pattern=Pattern.FULL_DIAGONAL, q=0, num_threads=1
        )
    )

    updated, report = state.update_blocks(blocks, flips)
    ref = fsi(pc_new, w.c, pattern=Pattern.FULL_DIAGONAL, q=0, num_threads=1)
    worst = 0.0
    for kl, blk in updated.items():
        refb = ref.selected[kl]
        scale = float(np.linalg.norm(refb)) or 1.0
        worst = max(worst, float(np.linalg.norm(blk - refb)) / scale)

    return {
        "workload": {"N": w.N, "L": w.L, "c": w.c, "pattern": "full_diagonal"},
        "rank": 1,
        "delta_ms": delta_s * 1e3,
        "solve_ms": solve_s * 1e3,
        "speedup": solve_s / delta_s,
        "max_rel_error": worst,
        "solve_residual": report.solve_residual,
        "capacitance_cond": report.capacitance_cond,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero below a {SPEEDUP_FLOOR:.0f}x speedup or"
             f" above {ACCURACY_FLOOR:.0e} relative error",
    )
    parser.add_argument(
        "--json-out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_delta.json"),
        help="where to write the measurement record",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    stats = measure_delta(seed=args.seed)
    record = {
        "benchmark": "delta-serving",
        "python": platform.python_version(),
        "machine": platform.machine(),
        **stats,
    }
    Path(args.json_out).write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"warm rank-1 delta: {stats['delta_ms']:.2f} ms vs"
        f" {stats['solve_ms']:.2f} ms full solve"
        f" = {stats['speedup']:.1f}x"
        f" (floor {SPEEDUP_FLOOR:.0f}x) at (N, L, c) ="
        f" ({stats['workload']['N']}, {stats['workload']['L']},"
        f" {stats['workload']['c']})"
    )
    print(
        f"  max relative error vs fresh solve: {stats['max_rel_error']:.3e}"
        f" (floor {ACCURACY_FLOOR:.0e});"
        f" solve residual {stats['solve_residual']:.3e}"
    )
    print(f"  wrote {args.json_out}")
    if args.check:
        if stats["speedup"] < SPEEDUP_FLOOR:
            print("FAIL: delta speedup below floor", file=sys.stderr)
            return 1
        if stats["max_rel_error"] > ACCURACY_FLOOR:
            print("FAIL: delta accuracy above floor", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
