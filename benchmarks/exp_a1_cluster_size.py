"""EXP-A1 — ablation: accuracy vs cluster size (the ``c ~ sqrt(L)`` rule).

Sec. II-C notes that a larger ``c`` means more reduction but worse
round-off, recommending ``c ~ sqrt(L)`` (ref. [26]).  This experiment
sweeps ``c`` over divisors of ``L`` at two temperatures and reports the
clustered-block condition number, the end-to-end selected-inversion
error against a dense LU oracle, and the FSI flop count — exhibiting
the accuracy/flops trade-off that motivates the rule.

Run: ``python benchmarks/exp_a1_cluster_size.py``
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import Table, banner
from repro.core.stability import fsi_accuracy_sweep, recommend_c
from repro.hubbard import HSField, HubbardModel, RectangularLattice


def run(beta: float, L: int = 32, nx: int = 3, ny: int = 3, seed: int = 7) -> Table:
    model = HubbardModel(RectangularLattice(nx, ny), L=L, U=4.0, beta=beta)
    field = HSField.random(L, model.N, np.random.default_rng(seed))
    pc = model.build_matrix(field, +1)
    points = fsi_accuracy_sweep(pc)
    rec = recommend_c(L)
    table = Table(
        f"EXP-A1: cluster-size sweep, (N, L) = ({model.N}, {L}),"
        f" U = 4, beta = {beta}  [recommended c = {rec}]",
        ["c", "b", "cluster cond", "max rel err", "FSI flops (cols)"],
        note="error grows with the clustered-block conditioning; the"
        " sqrt(L) rule keeps it near oracle accuracy",
    )
    for p in points:
        table.add_row(p.c, p.b, p.worst_cluster_cond, p.max_rel_error, p.fsi_flops)
    return table


if __name__ == "__main__":
    print(banner("EXP-A1: cluster size vs accuracy ablation"))
    run(beta=1.0).print()
    run(beta=6.0).print()
