"""EXP-T1 — the Sec. II-B table: selected-block counts & reduction factors.

Regenerates::

    Patterns | No. of selected blocks | Reduction factor
    S1       | b                      | cL
    S2       | b or b-1               | cL
    S3       | bL                     | c
    S4       | bL                     | c

for the paper's canonical geometry (L, c) = (100, 10), plus the quoted
memory-saving example (N, L) = (1000, 100), c = 10 -> 90% saved.

Run: ``python benchmarks/exp_t1_patterns.py``
"""

from __future__ import annotations

from repro.bench.report import Table, banner
from repro.core.flops import pattern_count_table
from repro.core.patterns import Pattern, Selection


def run(L: int = 100, c: int = 10, q: int = 1) -> Table:
    table = Table(
        f"EXP-T1: selected-inversion patterns (L={L}, c={c}, q={q})",
        ["pattern", "blocks", "paper", "reduction", "paper reduction"],
        note="paper values from the Sec. II-B table",
    )
    b = L // c
    paper_blocks = {
        "diagonal": b,
        "subdiagonal": b if q != 0 else b - 1,
        "columns": b * L,
        "rows": b * L,
    }
    paper_reduction = {
        "diagonal": c * L,
        "subdiagonal": c * L,
        "columns": c,
        "rows": c,
    }
    for row in pattern_count_table(L, c, q):
        name = str(row["pattern"])
        table.add_row(
            name,
            row["blocks"],
            paper_blocks[name],
            row["reduction"],
            paper_reduction[name],
        )
    return table


def memory_example() -> str:
    """The Sec. II-B worked example: 90% memory saved for block columns."""
    sel = Selection(Pattern.COLUMNS, L=100, c=10, q=0)
    saved = 1.0 - 1.0 / sel.reduction_factor()
    n2 = 1000 * 1000 * 8
    full_gb = 100 * 100 * n2 / 2**30
    kept_gb = sel.count() * n2 / 2**30
    return (
        f"(N, L) = (1000, 100), c = 10: full inverse {full_gb:.0f} GiB,"
        f" b block columns {kept_gb:.0f} GiB -> {saved:.0%} memory saved"
        " (paper: 90%)"
    )


if __name__ == "__main__":
    print(banner("EXP-T1: Sec. II-B selected-block counts"))
    run().print()
    # The sub-diagonal count depends on q; show the q = 0 edge too.
    run(q=0).print()
    print(memory_example())
