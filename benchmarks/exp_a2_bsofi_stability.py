"""EXP-A2 — ablation: BSOFI vs dense-LU inversion of the reduced matrix.

Why does FSI pair CLS with a *structured orthogonal* factorisation
instead of just LU-inverting the reduced matrix?  Because the CLS
products are increasingly graded (singular values spreading like
``e^{c dtau U}``...), and the paper's design keeps the inversion
backward-stable via Householder panels.

This ablation sweeps ``beta`` (hence the grading of the clustered
blocks), inverts the reduced matrix with both BSOFI and LU, and
compares the residual ``||M~ G~ - I||_max`` — and then the end-to-end
selected-inversion error after wrapping, which inherits whichever
seeds it was given.

Run: ``python benchmarks/exp_a2_bsofi_stability.py``
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import Table, banner
from repro.core.baselines import full_lu_inverse
from repro.core.bsofi import bsofi
from repro.core.cls import cls
from repro.hubbard import HSField, HubbardModel, RectangularLattice


def residual(pc, G) -> float:
    b, N = G.shape[0], G.shape[2]
    dense = np.block([[G[i, j] for j in range(b)] for i in range(b)])
    return float(np.abs(pc.to_dense() @ dense - np.eye(b * N)).max())


def run(L: int = 32, c: int = 8, nx: int = 3, ny: int = 3, seed: int = 13) -> Table:
    table = Table(
        f"EXP-A2: reduced-matrix inversion stability, (N, L, c) ="
        f" ({nx * ny}, {L}, {c})",
        ["beta", "cluster cond", "BSOFI residual", "LU residual", "ratio LU/BSOFI"],
        note="residual = ||M~ G~ - I||_max on the reduced matrix;"
        " both are backward-stable here, BSOFI never worse and"
        " pivot-free (GPU-friendly, the paper's motivation)",
    )
    for beta in (1.0, 2.0, 4.0, 8.0, 12.0):
        model = HubbardModel(RectangularLattice(nx, ny), L=L, U=4.0, beta=beta)
        field = HSField.random(L, model.N, np.random.default_rng(seed))
        pc = model.build_matrix(field, +1)
        red = cls(pc, c, 0, num_threads=1)
        cond = max(np.linalg.cond(red.B[i]) for i in range(red.L))

        G_bsofi = bsofi(red)
        r_bsofi = residual(red, G_bsofi)

        G_lu = full_lu_inverse(red)
        b, N = red.L, red.N
        G_lu_blocks = np.array(
            [
                [G_lu[i * N : (i + 1) * N, j * N : (j + 1) * N] for j in range(b)]
                for i in range(b)
            ]
        )
        r_lu = residual(red, G_lu_blocks)
        table.add_row(beta, cond, r_bsofi, r_lu, r_lu / max(r_bsofi, 1e-300))
    return table


if __name__ == "__main__":
    print(banner("EXP-A2: BSOFI vs LU stability ablation"))
    run().print()
