"""EXP-F9 — Fig. 9: hybrid MPI x OpenMP sweep on 100 Edison nodes.

2400 Hubbard matrices, (L, c) = (100, 10), block sizes N in
{400, 576, 784, 1024}; configurations (ranks x threads) in
{200x12, 400x6, 800x3, 1200x2, 2400x1} saturating 2400 cores.

Paper anchors: pure MPI (2400x1) is fastest *but only fits in memory
for N = 400*; larger N are rescued by the hybrid model (more threads,
fewer ranks per node); aggregate rates 20-31 Tflop/s; the N = 576 pure-
MPI case needs 12 x ~2.65 GB per socket and OOMs.

The modeled sweep uses the Edison machine model; a functional
*scaled-down* SimMPI run (same Alg. 3 code path) is executed alongside
to demonstrate the decomposition-invariant reduction.

Run: ``python benchmarks/exp_f9_hybrid.py``
"""

from __future__ import annotations

from repro.bench.report import Table, banner
from repro.bench.workloads import FIG9_CONFIGS
from repro.core.patterns import Pattern
from repro.hubbard import HubbardModel, RectangularLattice
from repro.parallel.hybrid import HybridConfig, run_fsi_fleet
from repro.perf.model import hybrid_performance


def modeled_sweep(
    L: int = 100,
    c: int = 10,
    n_matrices: int = 2400,
    nodes: int = 100,
) -> Table:
    table = Table(
        f"EXP-F9: modeled Tflop/s on {nodes} Edison nodes,"
        f" {n_matrices} matrices, (L, c) = ({L}, {c})",
        ["N", "mem/rank GB"]
        + [f"{r}x{t}" for r, t in FIG9_CONFIGS],
        note="OOM = configuration exceeds socket memory (Sec. V-B);"
        " paper band 20-31 Tflop/s, pure MPI feasible only for N=400",
    )
    for N in (400, 576, 784, 1024):
        cells = []
        mem = None
        for ranks, threads in FIG9_CONFIGS:
            pt = hybrid_performance(
                N, L, c, ranks, threads, n_matrices, nodes=nodes
            )
            mem = pt.mem_per_rank_gb
            cells.append(round(pt.tflops, 1) if pt.feasible else "OOM")
        table.add_row(N, mem, *cells)
    return table


def functional_run() -> Table:
    """Scaled-down Alg. 3 on SimMPI: the real code path, real threads."""
    model = HubbardModel(RectangularLattice(3, 3), L=16, U=2.0, beta=1.0)
    table = Table(
        "EXP-F9 (functional, this host): Alg. 3 on SimMPI,"
        " 8 matrices, (N, L, c) = (9, 16, 4)",
        ["ranks x threads", "trace_sum", "frobenius^2", "seconds", "peak MB"],
        note="global reductions identical across decompositions",
    )
    for ranks, threads in ((1, 4), (2, 2), (4, 1), (8, 1)):
        rep = run_fsi_fleet(
            model,
            HybridConfig(
                n_matrices=8,
                n_ranks=ranks,
                threads_per_rank=threads,
                c=4,
                pattern=Pattern.COLUMNS,
                seed=42,
            ),
        )
        table.add_row(
            f"{ranks}x{threads}",
            rep.global_measurements["trace_sum"],
            rep.global_measurements["frobenius_sq"],
            rep.elapsed_seconds,
            rep.per_rank_peak_bytes / 2**20,
        )
    return table


def strong_scaling_table() -> Table:
    """Node-count scaling at fixed work (companion to the fixed-100-node
    sweep): near-ideal until one matrix per rank, then starved."""
    from repro.perf.model import strong_scaling_curve

    sc = strong_scaling_curve(576, 100, 10, 2400, threads_per_rank=2)
    table = Table(
        "EXP-F9 (companion): strong scaling, N=576, 2400 matrices,"
        " 2 threads/rank",
        ["nodes", "Tflop/s", "efficiency"],
        note="embarrassingly parallel until ranks outnumber matrices",
    )
    for n, t, e in zip(sc["nodes"], sc["tflops"], sc["efficiency"]):
        table.add_row(int(n), t, e)
    return table


if __name__ == "__main__":
    from repro.bench.ascii_chart import bar_chart

    print(banner("EXP-F9: hybrid MPI x OpenMP sweep (Fig. 9)"))
    modeled_sweep().print()
    pts = [
        hybrid_performance(576, 100, 10, r, t, 2400)
        for r, t in FIG9_CONFIGS
    ]
    print("N = 576 across configurations (OOM bars empty):")
    print(bar_chart(
        [f"{r}x{t}" for r, t in FIG9_CONFIGS],
        [p.tflops if p.feasible else 0.0 for p in pts],
        unit=" Tflop/s",
    ))
    print()
    strong_scaling_table().print()
    functional_run().print()
