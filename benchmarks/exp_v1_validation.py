"""EXP-V1 — the Sec. V-A correctness validation, at the paper's exact scale.

The paper: generate a random 6400 x 6400 block p-cyclic Hubbard matrix
with (N, L) = (100, 64), (t, beta, sigma, U) = (1, 1, 1, 2); compute b
selected block columns with FSI and the full inverse with LAPACK
DGETRF/DGETRI; verify the mean blockwise relative Frobenius error is
below 1e-10.

This experiment runs *at full paper scale* (the only one that does —
it is a numerics claim, not a performance claim).  Expect ~1 minute,
dominated by the dense 6400^2 oracle.

Run: ``python benchmarks/exp_v1_validation.py``
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.report import Table, banner
from repro.core.baselines import dense_block, full_lu_inverse
from repro.core.fsi import fsi
from repro.core.patterns import Pattern
from repro.core.stability import recommend_c
from repro.hubbard.matrix import build_hubbard_matrix


def run(
    nx: int = 10,
    ny: int = 10,
    L: int = 64,
    t: float = 1.0,
    beta: float = 1.0,
    U: float = 2.0,
    seed: int = 2016,
) -> Table:
    N = nx * ny
    c = recommend_c(L)
    M, model, field = build_hubbard_matrix(
        nx, ny, L=L, t=t, U=U, beta=beta, rng=seed
    )
    t0 = time.perf_counter()
    res = fsi(M, c, pattern=Pattern.COLUMNS, q=None, rng=seed, num_threads=1)
    t_fsi = time.perf_counter() - t0

    t0 = time.perf_counter()
    G = full_lu_inverse(M)  # the DGETRF/DGETRI oracle
    t_lu = time.perf_counter() - t0

    # The paper's metric: mean blockwise relative Frobenius error over
    # the b selected block columns.
    errs = []
    for (k, l), blk in res.selected.items():
        ref = dense_block(G, k, l, N)
        errs.append(np.linalg.norm(blk - ref) / np.linalg.norm(ref))
    mean_err = float(np.mean(errs))
    max_err = float(np.max(errs))
    cond = float(np.linalg.cond(M.to_dense())) if N * L <= 6400 else float("nan")

    table = Table(
        f"EXP-V1: correctness validation, (N, L) = ({N}, {L}),"
        f" (t, beta, U) = ({t}, {beta}, {U}), c = {c}, q = {res.selection.q}",
        ["quantity", "value", "paper"],
    )
    table.add_row("matrix dimension", N * L, 6400)
    table.add_row("condition number of M", cond, "~1e5")
    table.add_row("mean blockwise rel. error", mean_err, "< 1e-10")
    table.add_row("max blockwise rel. error", max_err, "-")
    table.add_row("FSI seconds (this host)", t_fsi, "-")
    table.add_row("dense LU oracle seconds", t_lu, "-")
    table.add_row("validation PASS", mean_err < 1e-10, True)
    return table


if __name__ == "__main__":
    print(banner("EXP-V1: Sec. V-A correctness validation at paper scale"))
    run().print()
