"""EXP-T2 — the Sec. II-C table: explicit-form vs FSI flop counts.

Regenerates::

    Selected inv.  | Explicit form | FSI
    b diagonals    | 2 b^2 c N^3   | [2(c-1)+7b] b N^3
    b-1 sub-diag.  | 4 b^2 c N^3   | [2c+7b] b N^3
    b cols/rows    | b^3 c^2 N^3   | 3 b^2 c N^3

at the paper geometry, and then *validates the formulas against
measured kernel flop counts* on a scaled-down problem (the tracer
counts every gemm/solve/QR the real code performs).

Run: ``python benchmarks/exp_t2_complexity.py``
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import Table, banner
from repro.core.flops import complexity_table, explicit_form_flops, fsi_table_flops
from repro.core.fsi import fsi
from repro.core.greens_explicit import explicit_selected_columns
from repro.core.patterns import Pattern
from repro.core.pcyclic import random_pcyclic
from repro.perf.tracer import FlopTracer


def formula_table(L: int = 100, N: int = 1000, c: int = 10) -> Table:
    table = Table(
        f"EXP-T2: Sec. II-C complexity table (N={N}, L={L}, c={c})",
        ["pattern", "explicit flops", "FSI flops", "speedup"],
        note="speedup = explicit / FSI; paper quotes bc/3 for columns",
    )
    for row in complexity_table(L, N, c):
        table.add_row(
            row.pattern.value, row.explicit_flops, row.fsi_flops, row.speedup
        )
    return table


def measured_table(L: int = 24, N: int = 24, c: int = 4, seed: int = 0) -> Table:
    """Measured kernel flops vs the leading-order formulas."""
    pc = random_pcyclic(L, N, np.random.default_rng(seed), scale=0.6)
    b = L // c
    cols = [c * i - 1 for i in range(1, b + 1)]

    with FlopTracer() as t_explicit:
        explicit_selected_columns(pc, cols)
    with FlopTracer() as t_fsi:
        fsi(pc, c, pattern=Pattern.COLUMNS, q=1, num_threads=1)

    table = Table(
        f"EXP-T2 (measured): b={b} block columns at (N, L, c)=({N}, {L}, {c})",
        ["method", "measured flops", "table formula", "measured/formula"],
        note="measured includes the lower-order LU/QR terms the table drops;"
        " our explicit baseline also reuses W factors (so it beats the"
        " naive b^3c^2 bound while staying O(bL^2 N^3))",
    )
    ef = explicit_form_flops(L, N, c, Pattern.COLUMNS)
    ff = fsi_table_flops(L, N, c, Pattern.COLUMNS)
    table.add_row(
        "explicit (Eq. 3)", t_explicit.total_flops, ef, t_explicit.total_flops / ef
    )
    table.add_row("FSI", t_fsi.total_flops, ff, t_fsi.total_flops / ff)
    table.add_row(
        "measured speedup",
        t_explicit.total_flops / t_fsi.total_flops,
        ef / ff,
        (t_explicit.total_flops / t_fsi.total_flops) / (ef / ff),
    )
    return table


if __name__ == "__main__":
    print(banner("EXP-T2: Sec. II-C flop complexity, formulas + measured"))
    formula_table().print()
    measured_table().print()
    measured_table(L=48, N=16, c=8, seed=1).print()
