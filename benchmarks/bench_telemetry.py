"""Telemetry overhead: the disabled path must be (nearly) free.

The contract of :mod:`repro.telemetry` is that instrumentation left in
hot paths costs a single attribute check when tracing is off.  This
file measures that contract twice over:

* pytest-benchmark timings of the disabled span path, the enabled span
  path, and the metric primitives, so regressions show up next to the
  other wall-clock numbers;
* a standalone ``--check`` mode (run by CI) that estimates the
  disabled-path overhead a traced FSI solve pays — spans per solve
  times per-call cost, relative to the solve itself — and **fails if
  it exceeds 5%**.

Run the gate locally with::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --check
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from repro import telemetry
from repro.bench.workloads import BENCH_SMALL, make_hubbard
from repro.core.fsi import fsi
from repro.telemetry.metrics import Counter, Histogram

#: Maximum tolerated disabled-path overhead on one FSI solve.
OVERHEAD_BUDGET = 0.05


def _fresh_disabled():
    telemetry.reset()


# ----------------------------------------------------------------------
# pytest-benchmark timings
# ----------------------------------------------------------------------

@pytest.mark.benchmark(group="telemetry")
def bench_disabled_span(benchmark):
    """The hot-path contract: span() with telemetry off."""
    _fresh_disabled()

    def run():
        for _ in range(1000):
            with telemetry.span("hot"):
                pass

    benchmark(run)


@pytest.mark.benchmark(group="telemetry")
def bench_enabled_span(benchmark):
    """Full recording path: id generation, clock reads, collection."""
    telemetry.reset()
    telemetry.configure(sample_rate=1.0)

    def run():
        for _ in range(1000):
            with telemetry.span("hot"):
                pass
        telemetry.collector().clear()

    benchmark(run)
    telemetry.reset()


@pytest.mark.benchmark(group="telemetry")
def bench_counter_inc(benchmark):
    c = Counter()
    benchmark(lambda: [c.inc() for _ in range(1000)])


@pytest.mark.benchmark(group="telemetry")
def bench_histogram_observe_snapshot(benchmark):
    h = Histogram()
    for i in range(4096):
        h.observe(float(i))

    def run():
        for i in range(100):
            h.observe(float(i))
        h.snapshot()

    benchmark(run)


@pytest.mark.benchmark(group="telemetry")
def bench_fsi_disabled_telemetry(benchmark, small_problem):
    """A full solve with instrumentation present but tracing off."""
    _fresh_disabled()
    pc, _, _ = small_problem
    benchmark(lambda: fsi(pc, BENCH_SMALL.c, num_threads=1))


# ----------------------------------------------------------------------
# the CI gate
# ----------------------------------------------------------------------

def _time_per_call(fn, calls: int, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best / calls


def measure_overhead() -> dict:
    """Estimate the disabled-path cost a traced FSI solve pays.

    ``spans_per_solve`` is counted on a real (enabled) solve; the
    per-call disabled cost and the solve time are both best-of-N, so
    the estimate is pessimistic for the budget (fast solve, slow
    spans) rather than flattering.
    """
    pc, _, _ = make_hubbard(BENCH_SMALL, seed=1)

    # count the spans one solve emits
    telemetry.reset()
    telemetry.configure(sample_rate=1.0)
    fsi(pc, BENCH_SMALL.c, num_threads=1)
    spans_per_solve = len(telemetry.collector())
    telemetry.reset()

    # disabled per-call cost (span entry + exit)
    calls = 100_000

    def disabled_spans():
        for _ in range(calls):
            with telemetry.span("hot"):
                pass

    per_call = _time_per_call(disabled_spans, calls)

    # the solve itself, telemetry off, warm caches
    fsi(pc, BENCH_SMALL.c, num_threads=1)
    solve_seconds = _time_per_call(
        lambda: fsi(pc, BENCH_SMALL.c, num_threads=1), 1
    )

    overhead = spans_per_solve * per_call / solve_seconds
    return {
        "spans_per_solve": spans_per_solve,
        "disabled_ns_per_span": per_call * 1e9,
        "solve_ms": solve_seconds * 1e3,
        "overhead_fraction": overhead,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero if overhead exceeds {OVERHEAD_BUDGET:.0%}",
    )
    args = parser.parse_args(argv)

    stats = measure_overhead()
    print(
        f"disabled-path telemetry: {stats['spans_per_solve']} spans/solve"
        f" x {stats['disabled_ns_per_span']:.0f} ns/span"
        f" over a {stats['solve_ms']:.2f} ms solve"
        f" = {stats['overhead_fraction']:.3%} overhead"
        f" (budget {OVERHEAD_BUDGET:.0%})"
    )
    if args.check and stats["overhead_fraction"] > OVERHEAD_BUDGET:
        print("FAIL: disabled-path overhead exceeds budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
