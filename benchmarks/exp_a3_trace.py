"""EXP-A3 — ablation: selected inversion vs probing for tr(G) / diag(G).

Sec. I relates FSI to the probing/sketching family (refs. [13]-[16]):
both produce functions of ``M^{-1}`` without full inversion.  This
ablation quantifies the trade on one Hubbard matrix:

* FSI FULL_DIAGONAL gives the *exact* trace and diagonal at a fixed
  ``O((2(c-1) + 7b) b N^3)`` cost;
* Hutchinson probing gives an *estimate* whose error decays like
  ``sigma / sqrt(n_probes)``, each probe one ``O(L N^2)`` structured
  solve after an ``O(L N^3)`` factorisation.

The printed table shows measured flops and errors as the probe budget
grows — probing wins for 1-2 digits, selected inversion wins when the
diagonal itself (or many digits) is needed.

Run: ``python benchmarks/exp_a3_trace.py``
"""

from __future__ import annotations


from repro.apps.trace import exact_trace, hutchinson_trace
from repro.bench.report import Table, banner
from repro.core.solve import PCyclicSolver
from repro.hubbard.matrix import build_hubbard_matrix
from repro.perf.tracer import FlopTracer


def run(nx: int = 6, L: int = 32, c: int = 8, seed: int = 0) -> Table:
    M, _, _ = build_hubbard_matrix(nx, nx, L=L, U=2.0, beta=1.0, rng=seed)

    with FlopTracer() as t_exact:
        exact = exact_trace(M, c=c)

    table = Table(
        f"EXP-A3: tr(G) on a (N, L) = ({M.N}, {L}) Hubbard matrix,"
        f" exact = {exact:.6f}",
        ["method", "flops", "estimate", "abs error", "rel error"],
        note="probing error ~ 1/sqrt(n); FSI is exact at fixed cost and"
        " also yields the full diagonal",
    )
    table.add_row("FSI full diagonal", t_exact.total_flops, exact, 0.0, 0.0)

    with FlopTracer() as t_factor:
        solver = PCyclicSolver(M)
    factor_flops = t_factor.total_flops
    for n_probes in (4, 16, 64, 256):
        with FlopTracer() as t_probe:
            r = hutchinson_trace(M, n_probes=n_probes, rng=seed + 1, solver=solver)
        err = r.error_vs(exact)
        table.add_row(
            f"Hutchinson n={n_probes}",
            factor_flops + t_probe.total_flops,
            r.estimate,
            err,
            err / abs(exact),
        )
    return table


if __name__ == "__main__":
    print(banner("EXP-A3: selected inversion vs probing for the trace"))
    run().print()
