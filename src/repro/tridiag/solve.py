"""Factor-once / solve-many interface for block tridiagonal systems.

:func:`repro.tridiag.rgf.btd_solve` refactors the forward Schur
complements on every call; :class:`BTDSolver` caches the LU factors of
the ``S_i`` once (``O(L N^3)``) and then solves each right-hand side in
``O(L N^2)`` — the block Thomas algorithm split into its factor and
solve phases, mirroring :class:`repro.core.solve.PCyclicSolver`.
"""

from __future__ import annotations

import numpy as np

from ..core import _kernels as kr
from .matrix import BlockTridiagonal

__all__ = ["BTDSolver"]


class BTDSolver:
    """Cached block-Thomas factorisation of a block tridiagonal matrix."""

    def __init__(self, J: BlockTridiagonal):
        self.J = J
        L, N = J.L, J.N
        self._S_lu: list[kr.LUFactors] = []
        # Pre-solved coupling blocks S_i^{-1} F_i, reused per solve.
        self._SF: list[np.ndarray] = []
        S = np.array(J.A[0], copy=True)
        self._S_lu.append(kr.lu_factor(S))
        for i in range(1, L):
            SF = self._S_lu[i - 1].solve(J.F[i - 1])
            self._SF.append(SF)
            S = J.A[i] - J.E[i - 1] @ SF
            kr.record_flops(2.0 * N**3)
            self._S_lu.append(kr.lu_factor(S))

    @property
    def L(self) -> int:
        return self.J.L

    @property
    def N(self) -> int:
        return self.J.N

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``J x = rhs`` (vector or block of vectors)."""
        L, N = self.L, self.N
        rhs = np.asarray(rhs, dtype=float)
        orig = rhs.shape
        if rhs.shape[0] != L * N:
            raise ValueError(f"rhs leading dim {rhs.shape[0]} != {L * N}")
        y = rhs.reshape(L, N, -1).copy()
        for i in range(1, L):
            y[i] -= self.J.E[i - 1] @ self._S_lu[i - 1].solve(y[i - 1])
            kr.record_flops(2.0 * N * N * y.shape[2])
        x = y
        x[L - 1] = self._S_lu[L - 1].solve(y[L - 1])
        for i in range(L - 2, -1, -1):
            x[i] = self._S_lu[i].solve(y[i] - self.J.F[i] @ x[i + 1])
            kr.record_flops(2.0 * N * N * x.shape[2])
        return x.reshape(orig)

    def slogdet(self) -> tuple[float, float]:
        """``(sign, log|det J|)`` from the cached forward factors."""
        sign, logabs = 1.0, 0.0
        for f in self._S_lu:
            diag = np.diag(f.lu)
            sign *= float(np.prod(np.sign(diag)))
            sign *= -1.0 if (f.piv != np.arange(len(f.piv))).sum() % 2 else 1.0
            logabs += float(np.sum(np.log(np.abs(diag))))
        return sign, logabs
