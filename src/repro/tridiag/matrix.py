"""Block tridiagonal matrices.

The paper's conclusion names "the extension of the basic idea of the
FSI algorithm to other types of structured matrices such as block
tridiagonal matrices" as future work — this subpackage implements that
extension (see :mod:`repro.tridiag.fsi`).

A block tridiagonal matrix ``J`` with ``L`` block rows of size ``N``::

    J = [ A_1  F_1                ]
        [ E_1  A_2  F_2           ]
        [      E_2  A_3  ...      ]
        [           ...      F_{L-1} ]
        [           E_{L-1}  A_L  ]

(``A_i`` diagonal, ``E_i`` sub-diagonal, ``F_i`` super-diagonal).
Unlike the p-cyclic case there is no corner block — the chain is open,
which changes the adjacency relations (they involve the forward and
backward Schur complements instead of cyclic products, see
:mod:`repro.tridiag.rgf`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockTridiagonal", "random_btd", "laplacian_chain"]


@dataclass(frozen=True)
class BlockTridiagonal:
    """Container for a block tridiagonal matrix.

    Parameters
    ----------
    A:
        Diagonal blocks, shape ``(L, N, N)``.
    E:
        Sub-diagonal blocks ``J[i+1, i]``, shape ``(L-1, N, N)``.
    F:
        Super-diagonal blocks ``J[i, i+1]``, shape ``(L-1, N, N)``.

    Block indices in the public API are 1-based like the p-cyclic
    container (``A_i`` for ``1 <= i <= L``); no torus wrapping — the
    chain is open.
    """

    A: np.ndarray
    E: np.ndarray
    F: np.ndarray

    def __post_init__(self) -> None:
        A = np.ascontiguousarray(np.asarray(self.A, dtype=float))
        E = np.ascontiguousarray(np.asarray(self.E, dtype=float))
        F = np.ascontiguousarray(np.asarray(self.F, dtype=float))
        if A.ndim != 3 or A.shape[1] != A.shape[2]:
            raise ValueError(f"A must be (L, N, N), got {A.shape!r}")
        L, N = A.shape[0], A.shape[1]
        if L < 1:
            raise ValueError("need at least one diagonal block")
        expected = (max(L - 1, 0), N, N)
        if E.shape != expected or F.shape != expected:
            raise ValueError(
                f"E and F must have shape {expected}, got {E.shape!r} / {F.shape!r}"
            )
        object.__setattr__(self, "A", A)
        object.__setattr__(self, "E", E)
        object.__setattr__(self, "F", F)

    # ------------------------------------------------------------------
    @property
    def L(self) -> int:
        return self.A.shape[0]

    @property
    def N(self) -> int:
        return self.A.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        n = self.L * self.N
        return (n, n)

    def diag(self, i: int) -> np.ndarray:
        """``A_i`` (1-based)."""
        if not 1 <= i <= self.L:
            raise IndexError(f"diagonal index {i} out of range 1..{self.L}")
        return self.A[i - 1]

    def sub(self, i: int) -> np.ndarray:
        """``E_i = J[i+1, i]`` (1-based, ``1 <= i <= L-1``)."""
        if not 1 <= i <= self.L - 1:
            raise IndexError(f"sub-diagonal index {i} out of range 1..{self.L - 1}")
        return self.E[i - 1]

    def sup(self, i: int) -> np.ndarray:
        """``F_i = J[i, i+1]`` (1-based, ``1 <= i <= L-1``)."""
        if not 1 <= i <= self.L - 1:
            raise IndexError(f"super-diagonal index {i} out of range 1..{self.L - 1}")
        return self.F[i - 1]

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise densely (oracles / small problems only)."""
        L, N = self.L, self.N
        J = np.zeros((L * N, L * N))
        for i in range(L):
            J[i * N : (i + 1) * N, i * N : (i + 1) * N] = self.A[i]
        for i in range(L - 1):
            J[(i + 1) * N : (i + 2) * N, i * N : (i + 1) * N] = self.E[i]
            J[i * N : (i + 1) * N, (i + 1) * N : (i + 2) * N] = self.F[i]
        return J

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``J x`` without forming ``J`` (x of shape ``(L*N,)`` or ``(L*N, k)``)."""
        L, N = self.L, self.N
        x = np.asarray(x)
        xb = x.reshape(L, N, -1)
        y = np.einsum("lij,ljk->lik", self.A, xb)
        if L > 1:
            y[1:] += np.einsum("lij,ljk->lik", self.E, xb[:-1])
            y[:-1] += np.einsum("lij,ljk->lik", self.F, xb[1:])
        return y.reshape(x.shape)

    def memory_bytes(self) -> int:
        return self.A.nbytes + self.E.nbytes + self.F.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockTridiagonal(L={self.L}, N={self.N})"


def random_btd(
    L: int,
    N: int,
    rng: np.random.Generator | int | None = None,
    dominance: float = 2.5,
) -> BlockTridiagonal:
    """A random, well-conditioned block tridiagonal matrix.

    Gaussian blocks with a block-diagonally dominant shift
    (``A_i += dominance * sqrt(N) * I``), which keeps every Schur
    complement and every off-diagonal block invertible with
    overwhelming probability — the regime the FSI-style wrapping
    relations require.
    """
    gen = np.random.default_rng(rng)
    A = gen.standard_normal((L, N, N)) / np.sqrt(N)
    idx = np.arange(N)
    A[:, idx, idx] += dominance
    E = gen.standard_normal((max(L - 1, 0), N, N)) / np.sqrt(N)
    F = gen.standard_normal((max(L - 1, 0), N, N)) / np.sqrt(N)
    return BlockTridiagonal(A, E, F)


def laplacian_chain(
    L: int, N: int, coupling: float = 1.0, shift: float = 0.1
) -> BlockTridiagonal:
    """A physics-flavoured workload: discretised 1-D chain of coupled
    ``N``-site cells (the shape NEGF/transport codes invert).

    ``A_i = (4*coupling + shift) I + tridiag(-coupling)`` within the
    cell (the 2-D five-point stencil restricted to a column),
    ``E_i = F_i = -coupling I`` between cells; symmetric positive
    definite for ``shift > 0`` by diagonal dominance.
    """
    if coupling <= 0 or shift <= 0:
        raise ValueError("coupling and shift must be positive")
    cell = (4 * coupling + shift) * np.eye(N)
    for k in range(N - 1):
        cell[k, k + 1] = cell[k + 1, k] = -coupling
    A = np.broadcast_to(cell, (L, N, N)).copy()
    hop = -coupling * np.eye(N)
    E = np.broadcast_to(hop, (max(L - 1, 0), N, N)).copy()
    return BlockTridiagonal(A, E, E.copy())
