"""Schur recursions and adjacency relations for block tridiagonal inverses.

The role the cyclic products ``W_k`` play for p-cyclic matrices is
played here by the *forward* and *backward Schur complements*

    ``S_1 = A_1``,  ``S_i = A_i - E_{i-1} S_{i-1}^{-1} F_{i-1}``
    ``T_L = A_L``,  ``T_i = A_i - F_i T_{i+1}^{-1} E_i``

(the "left/right-connected" Green's functions of the RGF — recursive
Green's function — literature, refs. [5], [6] of the paper).  With
``G = J^{-1}``:

* diagonal:      ``G_ii = (S_i + T_i - A_i)^{-1}``
* below diag.:   ``G_{i+1,j} = -T_{i+1}^{-1} E_i   G_{ij}``  (``i >= j``)
* above diag.:   ``G_{i-1,j} = -S_{i-1}^{-1} F_{i-1} G_{ij}``  (``i <= j``)
* onto diag.:    ``G_jj = T_j^{-1} (I - E_{j-1} G_{j-1,j})``
                 ``G_jj = S_j^{-1} (I - F_j G_{j+1,j})``
* away from diag. *against* the natural direction (needed when a walk
  starts above the diagonal and moves down, or below and moves up) the
  same identities are inverted, which additionally requires the
  off-diagonal blocks ``E_i`` / ``F_i`` to be invertible:
  ``G_{i+1,j} = -F_i^{-1} S_i G_{ij}`` (``i+1 < j``),
  ``G_{i-1,j} = -E_{i-1}^{-1} T_i G_{ij}`` (``i-1 > j``).

All identities are hypothesis-tested against dense inverses in
``tests/test_tridiag.py``.

:class:`SchurFactors` computes and caches the ``S_i``/``T_i`` with
their LU factors; :class:`TridiagAdjacency` packages the moves with all
the region/diagonal case handling, exactly mirroring
:class:`repro.core.adjacency.AdjacencyOps`.
"""

from __future__ import annotations

import numpy as np

from ..core import _kernels as kr
from .matrix import BlockTridiagonal

__all__ = ["SchurFactors", "TridiagAdjacency", "rgf_diagonal", "btd_solve", "btd_determinant"]


class SchurFactors:
    """Forward (``S``) and backward (``T``) Schur complements + LU caches."""

    def __init__(self, J: BlockTridiagonal):
        self.J = J
        L, N = J.L, J.N
        S = np.empty((L, N, N))
        T = np.empty((L, N, N))
        S_lu: list[kr.LUFactors] = [None] * L  # type: ignore[list-item]
        T_lu: list[kr.LUFactors] = [None] * L  # type: ignore[list-item]
        S[0] = J.A[0]
        S_lu[0] = kr.lu_factor(S[0])
        for i in range(1, L):
            S[i] = J.A[i] - J.E[i - 1] @ S_lu[i - 1].solve(J.F[i - 1])
            kr.record_flops(4.0 * N**3)
            S_lu[i] = kr.lu_factor(S[i])
        T[L - 1] = J.A[L - 1]
        T_lu[L - 1] = kr.lu_factor(T[L - 1])
        for i in range(L - 2, -1, -1):
            T[i] = J.A[i] - J.F[i] @ T_lu[i + 1].solve(J.E[i])
            kr.record_flops(4.0 * N**3)
            T_lu[i] = kr.lu_factor(T[i])
        self.S, self.T = S, T
        self._S_lu, self._T_lu = S_lu, T_lu
        self._E_lu: dict[int, kr.LUFactors] = {}
        self._F_lu: dict[int, kr.LUFactors] = {}

    # 1-based accessors ---------------------------------------------------
    def s(self, i: int) -> np.ndarray:
        return self.S[i - 1]

    def t(self, i: int) -> np.ndarray:
        return self.T[i - 1]

    def s_solve(self, i: int, X: np.ndarray) -> np.ndarray:
        """``S_i^{-1} X``."""
        return self._S_lu[i - 1].solve(X)

    def t_solve(self, i: int, X: np.ndarray) -> np.ndarray:
        """``T_i^{-1} X``."""
        return self._T_lu[i - 1].solve(X)

    def s_rsolve(self, i: int, X: np.ndarray) -> np.ndarray:
        """``X S_i^{-1}`` (right-solve via the transposed LU)."""
        return self._S_lu[i - 1].solve(np.ascontiguousarray(X.T), trans=1).T

    def t_rsolve(self, i: int, X: np.ndarray) -> np.ndarray:
        """``X T_i^{-1}``."""
        return self._T_lu[i - 1].solve(np.ascontiguousarray(X.T), trans=1).T

    def _e_lu(self, i: int) -> kr.LUFactors:
        f = self._E_lu.get(i)
        if f is None:
            f = self._E_lu[i] = kr.lu_factor(self.J.sub(i))
        return f

    def _f_lu(self, i: int) -> kr.LUFactors:
        f = self._F_lu.get(i)
        if f is None:
            f = self._F_lu[i] = kr.lu_factor(self.J.sup(i))
        return f

    def e_solve(self, i: int, X: np.ndarray) -> np.ndarray:
        """``E_i^{-1} X`` (requires invertible sub-diagonal blocks)."""
        return self._e_lu(i).solve(X)

    def f_solve(self, i: int, X: np.ndarray) -> np.ndarray:
        """``F_i^{-1} X`` (requires invertible super-diagonal blocks)."""
        return self._f_lu(i).solve(X)

    def e_rsolve(self, i: int, X: np.ndarray) -> np.ndarray:
        """``X E_i^{-1}``."""
        return self._e_lu(i).solve(np.ascontiguousarray(X.T), trans=1).T

    def f_rsolve(self, i: int, X: np.ndarray) -> np.ndarray:
        """``X F_i^{-1}``."""
        return self._f_lu(i).solve(np.ascontiguousarray(X.T), trans=1).T

    def diagonal_block(self, i: int) -> np.ndarray:
        """``G_ii = (S_i + T_i - A_i)^{-1}``."""
        N = self.J.N
        M = self.s(i) + self.t(i) - self.J.diag(i)
        return kr.solve(M, np.eye(N))


class TridiagAdjacency:
    """Boundary-aware neighbour moves on blocks of ``G = J^{-1}``."""

    def __init__(self, factors: SchurFactors):
        self.f = factors
        self.J = factors.J

    def down(self, G_ij: np.ndarray, i: int, j: int) -> np.ndarray:
        """``G_{i+1,j}`` from ``G_ij`` (any region; see module docstring)."""
        J, f = self.J, self.f
        if not 1 <= i <= J.L - 1:
            raise IndexError(f"cannot move down from row {i} of {J.L}")
        if i >= j:
            return -f.t_solve(i + 1, kr.gemm(J.sub(i), G_ij))
        if i + 1 == j:
            # Crossing onto the diagonal: G_jj = T_j^{-1}(I - E_{j-1} G_{j-1,j}).
            rhs = -kr.gemm(J.sub(j - 1), G_ij)
            kr.add_identity(rhs)
            return f.t_solve(j, rhs)
        # Strictly above the diagonal: inverted up-relation.
        return -f.f_solve(i, kr.gemm(f.s(i), G_ij))

    def up(self, G_ij: np.ndarray, i: int, j: int) -> np.ndarray:
        """``G_{i-1,j}`` from ``G_ij`` (any region)."""
        J, f = self.J, self.f
        if not 2 <= i <= J.L:
            raise IndexError(f"cannot move up from row {i}")
        if i <= j:
            return -f.s_solve(i - 1, kr.gemm(J.sup(i - 1), G_ij))
        if i - 1 == j:
            # Crossing onto the diagonal: G_jj = S_j^{-1}(I - F_j G_{j+1,j}).
            rhs = -kr.gemm(J.sup(j), G_ij)
            kr.add_identity(rhs)
            return f.s_solve(j, rhs)
        # Strictly below the diagonal: inverted down-relation.
        return -f.e_solve(i - 1, kr.gemm(f.t(i), G_ij))

    def right(self, G_ij: np.ndarray, i: int, j: int) -> np.ndarray:
        """``G_{i,j+1}`` from ``G_ij`` (column relations, from ``G J = I``;
        equivalently the row relations applied to ``J^T``)."""
        J, f = self.J, self.f
        if not 1 <= j <= J.L - 1:
            raise IndexError(f"cannot move right from column {j}")
        if j >= i:
            return -f.t_rsolve(j + 1, kr.gemm(G_ij, J.sup(j)))
        if j + 1 == i:
            # Crossing onto the diagonal: G_ii = (I - G_{i,i-1} F_{i-1}) T_i^{-1}.
            rhs = -kr.gemm(G_ij, J.sup(i - 1))
            kr.add_identity(rhs)
            return f.t_rsolve(i, rhs)
        # Strictly left of the diagonal (j+1 < i): inverted relation.
        return -f.e_rsolve(j, kr.gemm(G_ij, f.s(j)))

    def left(self, G_ij: np.ndarray, i: int, j: int) -> np.ndarray:
        """``G_{i,j-1}`` from ``G_ij``."""
        J, f = self.J, self.f
        if not 2 <= j <= J.L:
            raise IndexError(f"cannot move left from column {j}")
        if j <= i:
            return -f.s_rsolve(j - 1, kr.gemm(G_ij, J.sub(j - 1)))
        if j - 1 == i:
            # Crossing onto the diagonal: G_ii = (I - G_{i,i+1} E_i) S_i^{-1}.
            rhs = -kr.gemm(G_ij, J.sub(i))
            kr.add_identity(rhs)
            return f.s_rsolve(i, rhs)
        # Strictly right of the diagonal (j-1 > i): inverted relation.
        return -f.f_rsolve(j - 1, kr.gemm(G_ij, f.t(j)))


def rgf_diagonal(J: BlockTridiagonal) -> np.ndarray:
    """Every diagonal block of ``J^{-1}`` via the classic RGF sweep.

    Returns shape ``(L, N, N)``.  ``O(L N^3)`` — the standard selected
    inversion all NEGF codes use; the FSI-style pipeline in
    :mod:`repro.tridiag.fsi` matches it blockwise.
    """
    f = SchurFactors(J)
    return np.stack([f.diagonal_block(i) for i in range(1, J.L + 1)])


def btd_solve(J: BlockTridiagonal, rhs: np.ndarray) -> np.ndarray:
    """Solve ``J x = rhs`` by the block Thomas algorithm (LU sweep)."""
    L, N = J.L, J.N
    rhs = np.asarray(rhs, dtype=float)
    orig = rhs.shape
    if rhs.shape[0] != L * N:
        raise ValueError(f"rhs leading dim {rhs.shape[0]} != {L * N}")
    y = rhs.reshape(L, N, -1).copy()
    # Forward elimination with the forward Schur complements.
    S_lu: list[kr.LUFactors] = []
    S_prev = J.A[0]
    S_lu.append(kr.lu_factor(S_prev))
    for i in range(1, L):
        y[i] -= J.E[i - 1] @ S_lu[i - 1].solve(y[i - 1])
        S_i = J.A[i] - J.E[i - 1] @ S_lu[i - 1].solve(J.F[i - 1])
        kr.record_flops(4.0 * N**3)
        S_lu.append(kr.lu_factor(S_i))
    # Back substitution.
    x = y
    x[L - 1] = S_lu[L - 1].solve(y[L - 1])
    for i in range(L - 2, -1, -1):
        x[i] = S_lu[i].solve(y[i] - J.F[i] @ x[i + 1])
    return x.reshape(orig)


def btd_determinant(J: BlockTridiagonal) -> tuple[float, float]:
    """``(sign, log|det J|) = prod det(S_i)`` from the forward sweep."""
    f = SchurFactors(J)
    sign, logabs = 1.0, 0.0
    for i in range(J.L):
        s, l = np.linalg.slogdet(f.S[i])
        sign *= float(s)
        logabs += float(l)
    return sign, logabs
