"""FSI for block tridiagonal matrices — the paper's future-work extension.

The three-stage shape of Alg. 1 transfers directly:

1. **reduce** — :func:`repro.tridiag.reduction.schur_reduce` eliminates
   the interior of every length-``(c-1)`` run (parallel per run, like
   CLS clusters), leaving a ``b``-block tridiagonal ``J~`` whose
   inverse blocks are exact blocks of ``G = J^{-1}`` on the kept grid;
2. **invert** — the reduced inverse is built from the reduced Schur
   factors: diagonal blocks from ``(S~ + T~ - A~)^{-1}``, off-diagonals
   by walking each column with the adjacency relations (``O(b^2 N^3)``);
3. **wrap** — the seeds grow into the requested pattern with the
   *original* matrix's adjacency relations (parallel per seed, like
   WRP).  Unlike the p-cyclic torus, the chain is open, so the walk
   ranges are clamped: each row/column is assigned to its *nearest*
   seed and edge seeds absorb the leftovers.

Supported patterns (reusing :class:`repro.core.patterns.Selection`):
``DIAGONAL``, ``SUBDIAGONAL``, ``COLUMNS``, ``ROWS`` and
``FULL_DIAGONAL``.
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import Pattern, SelectedInversion, Selection
from ..parallel.openmp import parallel_for
from .matrix import BlockTridiagonal
from .reduction import schur_reduce
from .rgf import SchurFactors, TridiagAdjacency

__all__ = ["btd_full_inverse", "fsi_tridiagonal"]


def btd_full_inverse(J: BlockTridiagonal) -> np.ndarray:
    """All ``L x L`` blocks of ``J^{-1}`` as ``(L, L, N, N)``.

    ``O(L^2 N^3)`` via the Schur factors and one adjacency move per
    block — used on the *reduced* matrix (``L = b``) inside
    :func:`fsi_tridiagonal`, and as an oracle in tests.
    """
    L, N = J.L, J.N
    f = SchurFactors(J)
    ops = TridiagAdjacency(f)
    G = np.empty((L, L, N, N))
    for j in range(1, L + 1):
        G[j - 1, j - 1] = f.diagonal_block(j)
        g = G[j - 1, j - 1]
        for i in range(j, 1, -1):  # walk up the column
            g = ops.up(g, i, j)
            G[i - 2, j - 1] = g
        g = G[j - 1, j - 1]
        for i in range(j, L):  # walk down the column
            g = ops.down(g, i, j)
            G[i, j - 1] = g
    return G


def _nearest_seed_ranges(L: int, seeds: list[int]) -> list[tuple[int, int]]:
    """Partition rows ``1..L`` among seeds by nearest distance.

    Returns per-seed inclusive ``(lo, hi)`` ranges; ties go to the
    lower seed, edge seeds absorb the chain ends.
    """
    ranges = []
    for m, k in enumerate(seeds):
        lo = 1 if m == 0 else (seeds[m - 1] + k) // 2 + 1
        hi = L if m == len(seeds) - 1 else (k + seeds[m + 1]) // 2
        ranges.append((lo, hi))
    return ranges


def fsi_tridiagonal(
    J: BlockTridiagonal,
    c: int,
    pattern: Pattern = Pattern.COLUMNS,
    q: int | None = None,
    rng: np.random.Generator | int | None = None,
    num_threads: int | None = None,
) -> SelectedInversion:
    """Fast selected inversion of a block tridiagonal matrix.

    Mirrors :func:`repro.core.fsi.fsi`; see the module docstring for
    the three stages.  Requires ``c | L``; the off-diagonal walks of the
    COLUMNS/ROWS patterns additionally require invertible ``E``/``F``
    blocks whenever a walk moves *away* from the diagonal (satisfied by
    the workloads in :mod:`repro.tridiag.matrix`).
    """
    L, N = J.L, J.N
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    if q is None:
        q = int(np.random.default_rng(rng).integers(0, c))
    selection = Selection(pattern, L=L, c=c, q=q)
    seeds_idx = selection.seeds
    b = selection.b

    # Stage 1+2: reduced matrix and its full inverse (the seed grid).
    reduced = schur_reduce(J, c, q, num_threads=num_threads)
    G_seeds = btd_full_inverse(reduced)

    factors = SchurFactors(J)
    ops = TridiagAdjacency(factors)
    out: dict[tuple[int, int], np.ndarray] = {}

    if pattern is Pattern.DIAGONAL:
        for m, k in enumerate(seeds_idx):
            out[(k, k)] = np.array(G_seeds[m, m], copy=True)
        return SelectedInversion(selection, out, N)

    if pattern is Pattern.SUBDIAGONAL:
        todo = [(m, k) for m, k in enumerate(seeds_idx) if k != L]
        results: list[np.ndarray | None] = [None] * len(todo)

        def sub_body(t: int) -> None:
            m, k = todo[t]
            results[t] = ops.right(G_seeds[m, m], k, k)

        parallel_for(sub_body, len(todo), num_threads=num_threads)
        for t, (_m, k) in enumerate(todo):
            blk = results[t]
            assert blk is not None
            out[(k, k + 1)] = blk
        return SelectedInversion(selection, out, N)

    if pattern is Pattern.FULL_DIAGONAL:
        # The open-chain Schur factors give every diagonal block
        # directly — no walking needed.  Threads write into a pre-sized
        # list (no concurrent dict mutation).
        blocks: list[np.ndarray | None] = [None] * L

        def diag_body(i0: int) -> None:
            blocks[i0] = factors.diagonal_block(i0 + 1)

        parallel_for(diag_body, L, num_threads=num_threads)
        for i0, blk in enumerate(blocks):
            assert blk is not None
            out[(i0 + 1, i0 + 1)] = blk
        return SelectedInversion(selection, out, N)

    # COLUMNS / ROWS: per-seed walks with nearest-seed row assignment.
    ranges = _nearest_seed_ranges(L, seeds_idx)
    tasks = [(m, l0) for m in range(b) for l0 in range(b)]
    chunks: list[dict[tuple[int, int], np.ndarray]] = [{} for _ in tasks]

    def walk_body(t: int) -> None:
        m, l0 = tasks[t]
        local = chunks[t]
        k, l = seeds_idx[m], seeds_idx[l0]
        lo, hi = ranges[m]
        seed = G_seeds[m, l0]
        if pattern is Pattern.COLUMNS:
            local[(k, l)] = np.array(seed, copy=True)
            g, i = seed, k
            while i > lo:
                g = ops.up(g, i, l)
                i -= 1
                local[(i, l)] = g
            g, i = seed, k
            while i < hi:
                g = ops.down(g, i, l)
                i += 1
                local[(i, l)] = g
        else:  # ROWS: the seed row index is seeds_idx[m]; walk columns.
            k_row, l_col = seeds_idx[l0], seeds_idx[m]
            # For ROWS we reinterpret the task: row seed l0 walks its
            # columns over range(m); swap roles so every (row in I,
            # column 1..L) is produced exactly once.
            seed_rc = G_seeds[l0, m]
            local[(k_row, l_col)] = np.array(seed_rc, copy=True)
            g, j = seed_rc, l_col
            while j > lo:
                g = ops.left(g, k_row, j)
                j -= 1
                local[(k_row, j)] = g
            g, j = seed_rc, l_col
            while j < hi:
                g = ops.right(g, k_row, j)
                j += 1
                local[(k_row, j)] = g

    parallel_for(walk_body, len(tasks), num_threads=num_threads)
    for local in chunks:
        out.update(local)
    return SelectedInversion(selection, out, N)
