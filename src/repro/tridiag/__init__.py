"""FSI for block tridiagonal matrices (the paper's stated future work)."""

from .fsi import btd_full_inverse, fsi_tridiagonal
from .matrix import BlockTridiagonal, laplacian_chain, random_btd
from .reduction import run_bounds, schur_reduce
from .solve import BTDSolver
from .rgf import (
    SchurFactors,
    TridiagAdjacency,
    btd_determinant,
    btd_solve,
    rgf_diagonal,
)

__all__ = [
    "BTDSolver",
    "BlockTridiagonal",
    "SchurFactors",
    "TridiagAdjacency",
    "btd_determinant",
    "btd_full_inverse",
    "btd_solve",
    "fsi_tridiagonal",
    "laplacian_chain",
    "random_btd",
    "rgf_diagonal",
    "run_bounds",
    "schur_reduce",
]
