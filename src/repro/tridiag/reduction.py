"""Schur reduction of block tridiagonal matrices — the CLS analogue.

The p-cyclic CLS stage clusters ``c`` consecutive blocks into one; the
tridiagonal counterpart is the *Schur complement onto every c-th block
index* (block cyclic reduction for open chains): eliminating the
interior of each run of ``c - 1`` consecutive non-kept indices couples
only the two adjacent kept indices, so the reduced matrix ``J~`` is
again block tridiagonal with ``b = L / c`` blocks, and by the Schur
inverse identity

    ``(J~^{-1})_{m,m'} = (J^{-1})_{k_m, k_m'}``,   ``k_m = c*m - q``

— exactly the seed property (Eq. (8)) that powers FSI.

The runs are data-independent, so (like CLS clusters) they are handed
one-per-task to the OpenMP-style thread team.  Each run needs only the
four corner blocks of its local inverse, obtained from two block-Thomas
solves of size ``(c-1) N``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import _kernels as kr
from ..core.patterns import seed_indices
from ..parallel.openmp import parallel_for
from .matrix import BlockTridiagonal
from .rgf import btd_solve

__all__ = ["schur_reduce", "run_bounds"]


def run_bounds(L: int, c: int, q: int) -> list[tuple[int, int, int, int]]:
    """The eliminated runs as ``(lo, hi, left_kept, right_kept)`` tuples.

    ``lo..hi`` (1-based, inclusive) are eliminated; ``left_kept`` /
    ``right_kept`` are the adjacent kept indices (0 when the run touches
    the chain boundary).  Empty runs are omitted.
    """
    kept = seed_indices(L, c, q)
    out: list[tuple[int, int, int, int]] = []
    prev = 0
    for k in kept:
        if k - 1 >= prev + 1:
            out.append((prev + 1, k - 1, prev, k))
        prev = k
    if L >= prev + 1:
        out.append((prev + 1, L, prev, 0))
    return out


def _run_submatrix(J: BlockTridiagonal, lo: int, hi: int) -> BlockTridiagonal:
    """The run's own block tridiagonal ``J_RR`` (1-based inclusive)."""
    return BlockTridiagonal(
        J.A[lo - 1 : hi],
        J.E[lo - 1 : hi - 1],
        J.F[lo - 1 : hi - 1],
    )


@dataclass(frozen=True)
class _RunCorners:
    """Corner blocks of ``J_RR^{-1}`` for one eliminated run."""

    first_first: np.ndarray
    last_first: np.ndarray
    first_last: np.ndarray
    last_last: np.ndarray


def _run_corners(J: BlockTridiagonal, lo: int, hi: int) -> _RunCorners:
    sub = _run_submatrix(J, lo, hi)
    m, N = sub.L, sub.N
    rhs_first = np.zeros((m * N, N))
    rhs_first[:N] = np.eye(N)
    col_first = btd_solve(sub, rhs_first).reshape(m, N, N)
    if m == 1:
        return _RunCorners(
            col_first[0], col_first[-1], col_first[0], col_first[-1]
        )
    rhs_last = np.zeros((m * N, N))
    rhs_last[-N:] = np.eye(N)
    col_last = btd_solve(sub, rhs_last).reshape(m, N, N)
    return _RunCorners(
        first_first=col_first[0],
        last_first=col_first[-1],
        first_last=col_last[0],
        last_last=col_last[-1],
    )


def schur_reduce(
    J: BlockTridiagonal,
    c: int,
    q: int,
    num_threads: int | None = None,
) -> BlockTridiagonal:
    """Reduce ``J`` onto the kept indices ``{c-q, 2c-q, ..., bc-q}``.

    Returns the ``b``-block tridiagonal Schur complement whose inverse
    blocks are exact blocks of ``J^{-1}`` on the kept grid.  ``c`` must
    divide ``L``; ``c = 1`` returns ``J`` unchanged.
    """
    L, N = J.L, J.N
    kept = seed_indices(L, c, q)  # validates c | L and q range
    if c == 1:
        return J
    b = len(kept)
    A = np.stack([J.diag(k).copy() for k in kept])
    E = np.zeros((b - 1, N, N)) if b > 1 else np.zeros((0, N, N))
    F = np.zeros_like(E)
    runs = run_bounds(L, c, q)
    kept_pos = {k: m for m, k in enumerate(kept)}  # 0-based reduced index

    # Each run computes its deltas independently (the parallel part);
    # they are applied serially after the join because adjacent runs
    # both touch their shared kept diagonal block.
    deltas: list[dict[str, np.ndarray] | None] = [None] * len(runs)

    def body(ri: int) -> None:
        lo, hi, left, right = runs[ri]
        corners = _run_corners(J, lo, hi)
        out: dict[str, np.ndarray] = {}
        if left:
            # Delta(p, p) = -F_p (J_RR^{-1})_{1,1} E_p
            out["left_diag"] = kr.gemm(
                kr.gemm(J.sup(left), corners.first_first), J.sub(left)
            )
        if right:
            # Delta(s, s) = -E_{s-1} (J_RR^{-1})_{last,last} F_{s-1}
            out["right_diag"] = kr.gemm(
                kr.gemm(J.sub(right - 1), corners.last_last), J.sup(right - 1)
            )
        if left and right:
            # Sub-diagonal of the reduced matrix: Delta(s, p).
            out["sub"] = -kr.gemm(
                kr.gemm(J.sub(right - 1), corners.last_first), J.sub(left)
            )
            # Super-diagonal: Delta(p, s).
            out["sup"] = -kr.gemm(
                kr.gemm(J.sup(left), corners.first_last), J.sup(right - 1)
            )
        deltas[ri] = out

    parallel_for(body, len(runs), num_threads=num_threads)
    for ri, (_lo, _hi, left, right) in enumerate(runs):
        out = deltas[ri]
        assert out is not None
        if left:
            A[kept_pos[left]] -= out["left_diag"]
        if right:
            A[kept_pos[right]] -= out["right_diag"]
        if left and right:
            m = kept_pos[left]
            E[m] = out["sub"]
            F[m] = out["sup"]
    return BlockTridiagonal(A, E, F)
