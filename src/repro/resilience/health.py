"""Service health: circuit breaker and HEALTHY/DEGRADED/FAILED states.

A worker pool that is crashing or timing out on every batch should not
keep accepting new compute — each doomed dispatch burns a retry ladder
and a timeout before failing, so a backlog forms behind a dead pool
and the service *wedges* instead of failing fast.  The classic fix is
a circuit breaker:

* ``CLOSED`` — normal operation; consecutive infrastructure failures
  (worker crashes, batch timeouts) are counted, successes reset the
  count;
* ``OPEN`` — the consecutive-failure threshold was hit; compute is
  shed immediately (callers get a typed retry-after error) until
  ``reset_timeout`` has elapsed;
* ``HALF_OPEN`` — after the timeout a limited number of probe batches
  are let through; one success closes the breaker, one failure reopens
  it and restarts the clock.

The scheduler maps breaker state onto a coarse service state —
``HEALTHY`` (closed), ``DEGRADED`` (open/half-open: cache hits and
coalesced results are still served, new compute is shed), ``FAILED``
(service closed) — exported as a telemetry gauge and the ``/healthz``
endpoint.

This module is intentionally dependency-free (stdlib only): the typed
errors that carry breaker verdicts to callers live in
:mod:`repro.service.errors`, keeping ``resilience`` a leaf package.
"""

from __future__ import annotations

import threading
import time
from enum import Enum

__all__ = ["BreakerState", "CircuitBreaker", "ServiceState"]


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class ServiceState(Enum):
    """Coarse service health, gauge-encoded as its ``value``."""

    HEALTHY = 0
    DEGRADED = 1
    FAILED = 2


class CircuitBreaker:
    """Consecutive-failure circuit breaker (thread-safe).

    Parameters
    ----------
    failure_threshold:
        Consecutive infrastructure failures that trip the breaker.
    reset_timeout:
        Seconds to hold OPEN before allowing half-open probes.
    half_open_probes:
        Concurrent probes allowed while HALF_OPEN.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 5.0,
                 half_open_probes: int = 1, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._trips = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> BreakerState:
        if (self._state is BreakerState.OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a unit of compute proceed right now?

        CLOSED → always; OPEN → no; HALF_OPEN → yes while probe slots
        remain (the caller MUST report the outcome via
        :meth:`record_success` / :meth:`record_failure`, which releases
        the slot).
        """
        with self._lock:
            state = self._state_locked()
            if state is BreakerState.CLOSED:
                return True
            if state is BreakerState.OPEN:
                return False
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state is BreakerState.HALF_OPEN:
                # A failed probe reopens immediately and restarts the clock.
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
                self._trips += 1
                return
            self._consecutive_failures += 1
            if (state is BreakerState.CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
                self._trips += 1

    def retry_after(self) -> float:
        """Seconds until probes will next be allowed (0 when not OPEN)."""
        with self._lock:
            if self._state_locked() is not BreakerState.OPEN:
                return 0.0
            return max(
                0.0, self.reset_timeout - (self._clock() - self._opened_at)
            )

    def reset(self) -> None:
        """Force-close (administrative override / tests)."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._probes_in_flight = 0
