"""Deterministic fault injection: seeded plans, named sites.

Chaos testing a numerical service needs *reproducible* faults: a CI
run that crashes a worker on Tuesdays is worse than no chaos at all.
A :class:`FaultPlan` is a frozen, picklable, JSON-serialisable spec —
a seed plus a list of :class:`FaultRule`\\ s — whose every decision is
a pure function of ``(seed, site, key, rule index)`` via SHA-256, so
the same plan injects the same faults into the same jobs on any
machine, across process boundaries, with no shared counters.

Sites (the names the service layer pokes):

* ``worker.task`` — the worker-side batch entry point: ``CRASH``
  (SIGKILL, what an OOM kill looks like) and ``HANG`` (sleep past the
  batch timeout) fire here;
* ``cls.output`` — the CLS-stage output inside :func:`repro.core.fsi.
  fsi`: ``CORRUPT`` (NaN/Inf block entries) and ``ILLCOND``
  (artificially ill-conditioned blocks) fire here;
* ``cache.store`` — a result about to enter the scheduler's cache:
  ``CORRUPT`` fires here, which the scheduler's result screen must
  catch before the poison is served.

One-shot faults (``once=True``, e.g. crash-once-then-recover) record a
marker file under ``state_dir`` with ``O_EXCL`` so exactly one firing
happens per ``(rule, key)`` even across recycled worker processes —
this generalises the old ad-hoc ``crash_once_task``.

In-process activation is a module global (:func:`activate` /
:func:`is_active`): the cost to un-chaosed code is one ``None`` check.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import Iterator

import numpy as np

__all__ = [
    "FaultKind",
    "FaultRule",
    "FaultPlan",
    "activate",
    "is_active",
    "active_plan",
    "job_key",
    "current_key",
    "corrupt_array",
]


class FaultKind(Enum):
    """What a firing rule does."""

    CRASH = "crash"      # SIGKILL the current process
    HANG = "hang"        # sleep (trips batch timeouts)
    CORRUPT = "corrupt"  # overwrite entries with NaN/Inf
    ILLCOND = "illcond"  # scale a block to blow up its condition number


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, how often.

    ``probability`` is evaluated deterministically per ``(site, key)``;
    ``once`` limits the rule to a single firing per key (needs the
    plan's ``state_dir`` for cross-process memory).
    """

    site: str
    kind: FaultKind
    probability: float = 1.0
    once: bool = False
    hang_seconds: float = 30.0
    corrupt_value: float = float("nan")
    illcond_scale: float = 1e16

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must lie in [0, 1], got {self.probability}"
            )

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind.value,
            "probability": self.probability,
            "once": self.once,
            "hang_seconds": self.hang_seconds,
            "corrupt_value": (
                str(self.corrupt_value)
                if not np.isfinite(self.corrupt_value)
                else self.corrupt_value
            ),
            "illcond_scale": self.illcond_scale,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        data = dict(data)
        if isinstance(data.get("corrupt_value"), str):
            data["corrupt_value"] = float(data["corrupt_value"])
        data["kind"] = FaultKind(data["kind"])
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault rules.

    Picklable (ships to worker processes inside the task closure) and
    JSON round-trippable (the ``--chaos-plan`` CLI flag).
    """

    seed: int
    rules: tuple[FaultRule, ...] = ()
    state_dir: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        if any(r.once for r in self.rules) and self.state_dir is None:
            raise ValueError(
                "rules with once=True need a state_dir for their markers"
            )

    # ------------------------------------------------------------------
    def _roll(self, site: str, key: str, index: int) -> float:
        """Deterministic uniform draw in [0, 1) for one decision."""
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{key}|{index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    def _claim_once(self, rule_index: int, key: str) -> bool:
        """Atomically claim a once-rule's single firing for ``key``."""
        assert self.state_dir is not None
        os.makedirs(self.state_dir, exist_ok=True)
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        marker = os.path.join(self.state_dir, f"fired-{rule_index}-{digest}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(str(os.getpid()))
        return True

    def decide(self, site: str, key: str) -> FaultRule | None:
        """The rule firing at ``(site, key)``, or ``None``.

        Pure in ``(seed, site, key)`` except for ``once`` bookkeeping;
        the first matching rule that fires wins.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if self._roll(site, key, index) >= rule.probability:
                continue
            if rule.once and not self._claim_once(index, key):
                continue
            return rule
        return None

    def fired(self) -> int:
        """How many once-rules have fired so far (marker count)."""
        if self.state_dir is None or not os.path.isdir(self.state_dir):
            return 0
        return sum(
            1 for name in os.listdir(self.state_dir)
            if name.startswith("fired-")
        )

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "state_dir": self.state_dir,
                "rules": [rule.to_dict() for rule in self.rules],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            seed=int(data["seed"]),
            rules=tuple(
                FaultRule.from_dict(rule) for rule in data.get("rules", ())
            ),
            state_dir=data.get("state_dir"),
        )

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())


# ----------------------------------------------------------------------
# in-process activation (worker side)
# ----------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_CURRENT_KEY: str = ""


def is_active() -> bool:
    """One-attribute-check fast path for instrumented code."""
    return _ACTIVE is not None


def active_plan() -> FaultPlan | None:
    return _ACTIVE


@contextmanager
def activate(plan: FaultPlan | None) -> Iterator[None]:
    """Install ``plan`` as this process's active plan (restored on exit).

    Worker processes are recycled and reused across batches; scoping
    activation to the task body keeps plans from leaking between them.
    """
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = plan
    try:
        yield
    finally:
        _ACTIVE = prev


@contextmanager
def job_key(key: str) -> Iterator[None]:
    """Set the ambient job key that sited decisions are keyed on."""
    global _CURRENT_KEY
    prev = _CURRENT_KEY
    _CURRENT_KEY = key
    try:
        yield
    finally:
        _CURRENT_KEY = prev


def current_key() -> str:
    return _CURRENT_KEY


def corrupt_array(site: str, arr: np.ndarray,
                  key: str | None = None) -> np.ndarray | None:
    """Apply a CORRUPT/ILLCOND rule at ``site`` to a copy of ``arr``.

    Returns the corrupted copy when a rule fires, else ``None`` (the
    caller keeps its pristine array; no copy is made on the healthy
    path).  For ``(b, N, N)`` block stacks the fault lands in block 0;
    for plain matrices it lands in the top-left entry.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    rule = plan.decide(site, key if key is not None else _CURRENT_KEY)
    if rule is None or rule.kind not in (FaultKind.CORRUPT, FaultKind.ILLCOND):
        return None
    out = np.array(arr, copy=True)
    target = out[0] if out.ndim == 3 else out
    if rule.kind is FaultKind.CORRUPT:
        target.flat[0] = rule.corrupt_value
    else:  # ILLCOND: one tiny singular value via a near-rank-deficient row
        target *= rule.illcond_scale
        target[-1] = target[0] * (1.0 + 1.0 / rule.illcond_scale)
    return out
