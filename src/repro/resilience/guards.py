"""Numerical health guards for the FSI pipeline.

The CLS stage multiplies ``c`` slice matrices into clustered products
whose condition number grows like ``e^{~c dtau U}`` (Sec. II-A; worse
at low temperature), so a ``(c, L, beta)`` choice that looked fine on
paper can silently lose every significant digit.  These guards make
that failure *loud* and *cheap to detect*:

* :func:`screen_finite` — NaN/Inf screening of inputs and stage
  outputs (vectorised ``np.isfinite`` reductions, ``O(L N^2)`` against
  the solver's ``O(N^3)`` stages);
* :func:`estimate_condition` — a 1-norm condition estimate (one LU
  factorisation plus a Hager/Higham ``onenormest`` on the inverse
  operator, ~``2/3 N^3`` flops instead of a full SVD) applied to a
  deterministic sample of the clustered blocks;
* :func:`check_seed_residual` — a sampled identity residual
  ``||(M~ G~)_{k,l} - delta_{kl}||`` over the reduced matrix and its
  BSOFI inverse (a couple of gemms), catching a wrong inverse even
  when every entry is finite.

Verdicts flow into the process-global telemetry registry
(``repro_guard_checks_total`` / ``repro_guard_trips_total`` counter
families, condition/residual histograms) and a tripped guard raises
the typed :class:`NumericalHealthError` that
:func:`repro.core.fsi.fsi_resilient` turns into a fallback-ladder
retry and the service layer turns into a typed job failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla
import scipy.sparse.linalg as spla

from ..telemetry import runtime as _telemetry

__all__ = [
    "NumericalHealthError",
    "GuardConfig",
    "GuardReport",
    "screen_finite",
    "estimate_condition",
    "check_cluster_conditions",
    "check_seed_residual",
    "guarded_solve",
    "guarded_inv",
    "sample_indices",
]


class NumericalHealthError(ArithmeticError):
    """A numerical health guard tripped; the result is not trustworthy.

    Attributes
    ----------
    check:
        Which guard tripped (``"finite"``, ``"condition"``,
        ``"residual"``).
    site:
        Where in the pipeline (``"input"``, ``"cls"``, ``"bsofi"``,
        ``"wrp"``, ``"result"``).
    value / limit:
        The observed quantity and the configured threshold (``nan``
        for finiteness screens, which have no scalar threshold).
    """

    def __init__(self, message: str, *, check: str, site: str,
                 value: float = math.nan, limit: float = math.nan):
        super().__init__(message)
        self.check = check
        self.site = site
        self.value = value
        self.limit = limit


@dataclass(frozen=True)
class GuardConfig:
    """Which guards run, and their thresholds.

    The defaults keep the whole battery under a few percent of one
    solve (enforced by ``benchmarks/bench_resilience.py --check``):
    finiteness screens are vectorised reductions, and the expensive
    checks are *sampled* — ``condition_samples`` clustered blocks and
    ``residual_samples`` rows of the reduced identity.
    """

    screen_input: bool = True
    screen_stages: bool = True
    condition_limit: float = 1e12
    condition_samples: int = 1
    residual_limit: float = 1e-6
    residual_samples: int = 2
    #: How many *result* blocks the in-solve screen checks (evenly
    #: sampled).  Patterns like COLUMNS emit hundreds of blocks and the
    #: per-block dispatch would dominate small solves; the service
    #: layer still screens every block before a result enters the
    #: cache, so the in-solve cap costs no end-to-end coverage.
    result_screen_samples: int = 32

    def __post_init__(self) -> None:
        if self.condition_limit <= 0 or self.residual_limit <= 0:
            raise ValueError("guard limits must be positive")
        if (self.condition_samples < 0 or self.residual_samples < 0
                or self.result_screen_samples < 0):
            raise ValueError("guard sample counts must be >= 0")


@dataclass
class GuardReport:
    """What the guards saw on one solve attempt (attached to results)."""

    checks_run: int = 0
    worst_condition: float = 0.0
    worst_residual: float = 0.0
    tripped: str | None = None
    details: dict[str, float] = field(default_factory=dict)

    def merge_worst(self, other: "GuardReport") -> None:
        """Fold another attempt's observations into this report."""
        self.checks_run += other.checks_run
        self.worst_condition = max(self.worst_condition, other.worst_condition)
        self.worst_residual = max(self.worst_residual, other.worst_residual)


# ----------------------------------------------------------------------
# telemetry plumbing
# ----------------------------------------------------------------------

def _count(check: str, tripped: bool) -> None:
    r = _telemetry.registry()
    r.counter(
        "repro_guard_checks_total", "Numerical guard checks run",
        labels=("check",),
    ).labels(check=check).inc()
    if tripped:
        r.counter(
            "repro_guard_trips_total", "Numerical guard trips",
            labels=("check",),
        ).labels(check=check).inc()


def _observe(name: str, help_text: str, value: float) -> None:
    if np.isfinite(value):
        _telemetry.registry().histogram(name, help_text).observe(value)


# ----------------------------------------------------------------------
# the guards
# ----------------------------------------------------------------------

def _maybe_nonfinite(arr: np.ndarray) -> bool:
    """Cheap screen: a NaN/Inf entry poisons the sum (``inf - inf`` is
    NaN), so one C reduction — no boolean temporary — clears the common
    all-finite case.  A positive here may rarely be overflow of a
    genuinely finite array, so callers re-verify with an exact scan.

    Complex arrays are screened through ``|x|``: the magnitude maps a
    non-finite entry in *either* component to ``+inf``/NaN, and the
    resulting sum of non-negative reals cannot cancel back to a finite
    value the way signed real/imaginary parts can."""
    if np.issubdtype(arr.dtype, np.complexfloating):
        return not bool(np.isfinite(np.abs(arr).sum()))
    return not bool(np.isfinite(arr.sum()))


def screen_finite(site: str, *arrays: np.ndarray,
                  report: GuardReport | None = None) -> None:
    """Raise :class:`NumericalHealthError` if any array has NaN/Inf."""
    bad = None
    for arr in arrays:
        if _maybe_nonfinite(arr) and not np.isfinite(arr).all():
            bad = arr
            break
    if report is not None:
        report.checks_run += 1
    _count("finite", bad is not None)
    if bad is not None:
        n_bad = int(np.size(bad) - np.count_nonzero(np.isfinite(bad)))
        if report is not None:
            report.tripped = f"finite@{site}"
        raise NumericalHealthError(
            f"non-finite values at {site}: {n_bad} of {np.size(bad)} entries",
            check="finite", site=site,
        )


#: Below this size the exact inverse through the LU is cheaper than the
#: Python machinery of Hager/Higham estimation (which carries ~200 us of
#: fixed overhead per call — larger than a whole small-block solve).
_EXACT_INVERSE_MAX_N = 128


def estimate_condition(A: np.ndarray) -> float:
    """1-norm condition estimate ``||A||_1 * est(||A^-1||_1)``.

    One LU factorisation, then: for small blocks the exact inverse via
    triangular solves (exact 1-norm, negligible cost at these sizes);
    for large blocks Hager/Higham ``onenormest`` on the inverse
    operator — ``O(N^3)`` with a small constant either way, versus the
    full SVD ``np.linalg.cond`` would run.  Returns ``inf`` for
    singular (or non-finite) blocks.
    """
    if not np.isfinite(A).all():
        return float("inf")
    if A.shape[0] <= _EXACT_INVERSE_MAX_N:
        try:
            with np.errstate(all="ignore"):
                cond = float(np.linalg.cond(A, 1))
        except np.linalg.LinAlgError:
            return float("inf")
        return cond if not np.isnan(cond) else float("inf")
    norm_a = float(np.linalg.norm(A, 1))
    if norm_a == 0.0:
        return float("inf")
    try:
        lu, piv = sla.lu_factor(A, check_finite=False)
    except (sla.LinAlgError, ValueError):
        return float("inf")
    diag = np.abs(np.diag(lu))
    if not np.all(diag > 0.0) or not np.isfinite(diag).all():
        return float("inf")
    # onenormest probes the *adjoint* through rmatvec: for complex
    # blocks that is the conjugate transpose (lu_solve trans=2), not the
    # plain transpose — using trans=1 silently estimates the wrong norm.
    rtrans = 2 if np.iscomplexobj(A) else 1
    op = spla.LinearOperator(
        A.shape,
        matvec=lambda x: sla.lu_solve((lu, piv), x, check_finite=False),
        rmatvec=lambda x: sla.lu_solve((lu, piv), x, trans=rtrans,
                                       check_finite=False),
        dtype=A.dtype,
    )
    try:
        norm_inv = float(spla.onenormest(op))
    except (ValueError, FloatingPointError):  # pragma: no cover - scipy guts
        return float("inf")
    return norm_a * norm_inv


def _check_dense_inputs(A: np.ndarray, site: str,
                        condition_limit: float,
                        *extra: np.ndarray) -> None:
    screen_finite(site, A, *extra)
    cond = estimate_condition(A)
    _observe(
        "repro_guard_dense_condition",
        "1-norm condition estimates of guarded dense solves",
        cond,
    )
    tripped = not np.isfinite(cond) or cond > condition_limit
    _count("dense", tripped)
    if tripped:
        raise NumericalHealthError(
            f"dense system at {site} has condition estimate {cond:.3e}"
            f" (limit {condition_limit:.3e})",
            check="condition", site=site, value=cond, limit=condition_limit,
        )


def guarded_solve(A: np.ndarray, b: np.ndarray, *, site: str = "solve",
                  condition_limit: float = 1e12) -> np.ndarray:
    """``np.linalg.solve`` behind the guard battery.

    The linter (rule RPR004) requires every dense solve outside the
    ``core/`` stage kernels to come through here: inputs are screened
    for NaN/Inf, the system's condition is estimated against
    ``condition_limit``, and singular systems surface as the typed
    :class:`NumericalHealthError` (``check="condition"``) rather than a
    raw ``LinAlgError`` — so callers degrade the way the service layer
    expects.
    """
    A = np.asarray(A)
    b = np.asarray(b)
    _check_dense_inputs(A, site, condition_limit, b)
    try:
        x = np.linalg.solve(A, b)
    except np.linalg.LinAlgError as exc:
        raise NumericalHealthError(
            f"dense solve at {site} failed: {exc}",
            check="condition", site=site,
        ) from exc
    screen_finite(site, x)
    return x


def guarded_inv(A: np.ndarray, *, site: str = "inv",
                condition_limit: float = 1e12) -> np.ndarray:
    """``np.linalg.inv`` behind the guard battery (see :func:`guarded_solve`)."""
    A = np.asarray(A)
    _check_dense_inputs(A, site, condition_limit)
    try:
        inv = np.linalg.inv(A)
    except np.linalg.LinAlgError as exc:
        raise NumericalHealthError(
            f"dense inversion at {site} failed: {exc}",
            check="condition", site=site,
        ) from exc
    screen_finite(site, inv)
    return inv


def sample_indices(n: int, samples: int) -> list[int]:
    """``samples`` deterministic indices spread evenly over ``range(n)``."""
    if samples <= 0 or n <= 0:
        return []
    if samples >= n:
        return list(range(n))
    return sorted({int(i) for i in np.linspace(0, n - 1, samples)})


def check_cluster_conditions(
    B: np.ndarray, config: GuardConfig, report: GuardReport | None = None
) -> float:
    """Condition-growth guard over a sample of clustered blocks.

    ``B`` is the ``(b, N, N)`` block array of the CLS-reduced matrix.
    Raises when the worst sampled estimate exceeds
    ``config.condition_limit``; returns the worst estimate.
    """
    worst = 0.0
    for i in sample_indices(B.shape[0], config.condition_samples):
        worst = max(worst, estimate_condition(B[i]))
    if report is not None:
        report.checks_run += 1
        report.worst_condition = max(report.worst_condition, worst)
        report.details["cluster_condition"] = worst
    _observe(
        "repro_guard_cluster_condition",
        "1-norm condition estimates of sampled CLS clustered blocks",
        worst,
    )
    tripped = worst > config.condition_limit
    _count("condition", tripped)
    if tripped:
        if report is not None:
            report.tripped = "condition@cls"
        raise NumericalHealthError(
            f"clustered block condition estimate {worst:.3e} exceeds"
            f" limit {config.condition_limit:.3e}",
            check="condition", site="cls", value=worst,
            limit=config.condition_limit,
        )
    return worst


def check_seed_residual(
    B: np.ndarray,
    seeds: np.ndarray,
    config: GuardConfig,
    report: GuardReport | None = None,
) -> float:
    """Sampled identity residual of the BSOFI inverse.

    ``B`` holds the reduced blocks ``B~_i`` (``(b, N, N)``); ``seeds``
    is the BSOFI inverse ``G~`` (``(b, b, N, N)``).  For sampled rows
    ``k`` the reduced p-cyclic structure gives

        ``(M~ G~)_{k,l} = G~_{k,l} - B~_k G~_{k-1,l}``  (``k >= 2``)
        ``(M~ G~)_{1,l} = G~_{1,l} + B~_1 G~_{b,l}``

    which must equal ``delta_{kl} I``.  Each sample costs one gemm.
    Raises when the worst relative residual exceeds
    ``config.residual_limit``; returns the worst residual.
    """
    b, N = B.shape[0], B.shape[1]
    worst = 0.0
    eye = np.eye(N, dtype=seeds.dtype)
    for k0 in sample_indices(b, config.residual_samples):
        l0 = k0  # diagonal entries see both the I and the product term
        if b == 1:
            # Degenerate M~ = I + B~_1: residual of (I + B)G - I.
            prod = B[0] @ seeds[0, 0]
            R = seeds[0, 0] + prod - eye
        elif k0 == 0:
            prod = B[0] @ seeds[b - 1, l0]
            R = seeds[0, l0] + prod - (eye if l0 == 0 else 0.0)
        else:
            prod = B[k0] @ seeds[k0 - 1, l0]
            R = seeds[k0, l0] - prod - (eye if l0 == k0 else 0.0)
        scale = max(
            1.0,
            float(np.linalg.norm(seeds[k0, l0])) + float(np.linalg.norm(prod)),
        )
        with np.errstate(invalid="ignore"):
            resid = float(np.linalg.norm(R)) / scale
        if not np.isfinite(resid):
            resid = float("inf")
        worst = max(worst, resid)
    if report is not None:
        report.checks_run += 1
        report.worst_residual = max(report.worst_residual, worst)
        report.details["seed_residual"] = worst
    _observe(
        "repro_guard_seed_residual",
        "Sampled relative identity residuals of the BSOFI seed inverse",
        worst,
    )
    tripped = worst > config.residual_limit
    _count("residual", tripped)
    if tripped:
        if report is not None:
            report.tripped = "residual@bsofi"
        raise NumericalHealthError(
            f"seed identity residual {worst:.3e} exceeds limit"
            f" {config.residual_limit:.3e}",
            check="residual", site="bsofi", value=worst,
            limit=config.residual_limit,
        )
    return worst
