"""repro.resilience — numerical health guards, fault injection, service health.

Three legs of one robustness layer:

* :mod:`guards` — cheap numerical-health checks wrapped around the FSI
  pipeline (NaN/Inf screening, cluster condition-growth monitoring, a
  sampled seed-residual check) that trip a typed
  :class:`~repro.resilience.guards.NumericalHealthError` instead of
  letting a silently corrupted Green's function escape;
* :mod:`chaos` — deterministic, seeded fault injection
  (:class:`~repro.resilience.chaos.FaultPlan`) for worker crashes,
  hangs, NaN/Inf corruption and artificially ill-conditioned inputs at
  named sites, so the failure paths above are *testable*;
* :mod:`health` — a :class:`~repro.resilience.health.CircuitBreaker`
  and the HEALTHY/DEGRADED/FAILED service states the scheduler exports
  through telemetry gauges and the ``/healthz`` endpoint.

The consuming layers are :func:`repro.core.fsi.fsi_resilient` (the
adaptive ``c -> c/2 -> ... -> 1 -> UDT`` fallback ladder) and
:class:`repro.service.scheduler.GreensService` (admission validation,
result screening, degradation).  See ``docs/robustness.md``.
"""

from .chaos import FaultKind, FaultPlan, FaultRule
from .guards import (
    GuardConfig,
    GuardReport,
    NumericalHealthError,
    estimate_condition,
    guarded_inv,
    guarded_solve,
    screen_finite,
)
from .health import BreakerState, CircuitBreaker, ServiceState

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "GuardConfig",
    "GuardReport",
    "NumericalHealthError",
    "ServiceState",
    "estimate_condition",
    "guarded_inv",
    "guarded_solve",
    "screen_finite",
]
