"""The paper's primary contribution: fast selected inversion (FSI).

Public surface:

* :class:`~repro.core.pcyclic.BlockPCyclic` — the matrix container;
* :func:`~repro.core.fsi.fsi` — Alg. 1 (CLS -> BSOFI -> WRP);
* :class:`~repro.core.patterns.Pattern` /
  :class:`~repro.core.patterns.Selection` — the S1-S4 shapes;
* stage entry points (:func:`~repro.core.cls.cls`,
  :func:`~repro.core.bsofi.bsofi`, :func:`~repro.core.wrap.wrap`) for
  callers composing their own pipelines;
* baselines and the closed-form complexity tables.
"""

from .adjacency import AdjacencyOps
from .baselines import full_lu_flops, full_lu_inverse, lu_selected_inversion
from .bsofi import StructuredQR, bsofi, bsofi_flops, bsofi_qr
from .cls import cls, cls_flops, cluster_product
from .custom_wrap import nearest_seed, torus_distance, wrap_blocks
from .flops import (
    ComplexityRow,
    complexity_table,
    explicit_form_flops,
    fsi_table_flops,
    pattern_count_table,
)
from .fsi import FSIResult, fsi, fsi_flops
from .greens_explicit import (
    equal_time_greens,
    explicit_full_inverse,
    explicit_selected_columns,
    greens_block,
    w_matrix,
    z_matrix,
)
from .patterns import Pattern, SelectedInversion, Selection, seed_indices
from .pcyclic import BlockPCyclic, pcyclic_from_general, random_pcyclic, torus_index
from .pdiv import PDIVReport, PDIVResult, fsi_distributed, partition_bounds
from .smw import (
    DeltaReport,
    FactorPairs,
    PCyclicWoodbury,
    RankOneFlip,
    diag_flips,
    transpose_pcyclic,
)
from .solve import PCyclicSolver, determinant
from .stability import fsi_accuracy_sweep, recommend_c
from .validate import ValidationReport, validate_selected
from .wrap import wrap, wrap_flops

__all__ = [
    "AdjacencyOps",
    "BlockPCyclic",
    "ComplexityRow",
    "DeltaReport",
    "FactorPairs",
    "PCyclicSolver",
    "PCyclicWoodbury",
    "RankOneFlip",
    "determinant",
    "diag_flips",
    "transpose_pcyclic",
    "FSIResult",
    "Pattern",
    "SelectedInversion",
    "Selection",
    "StructuredQR",
    "bsofi",
    "bsofi_flops",
    "bsofi_qr",
    "cls",
    "cls_flops",
    "cluster_product",
    "complexity_table",
    "equal_time_greens",
    "explicit_form_flops",
    "explicit_full_inverse",
    "explicit_selected_columns",
    "PDIVReport",
    "PDIVResult",
    "fsi",
    "fsi_accuracy_sweep",
    "fsi_distributed",
    "partition_bounds",
    "fsi_flops",
    "fsi_table_flops",
    "full_lu_flops",
    "full_lu_inverse",
    "greens_block",
    "lu_selected_inversion",
    "pattern_count_table",
    "pcyclic_from_general",
    "random_pcyclic",
    "recommend_c",
    "seed_indices",
    "torus_index",
    "ValidationReport",
    "validate_selected",
    "w_matrix",
    "wrap",
    "wrap_blocks",
    "wrap_flops",
    "nearest_seed",
    "torus_distance",
    "z_matrix",
]
