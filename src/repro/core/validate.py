"""Selected-inversion validation — the Sec. V-A check as a library call.

The paper validates FSI by comparing every selected block against a
dense DGETRF/DGETRI inverse and thresholding the mean blockwise
relative Frobenius error at ``1e-10``.  This module packages that
procedure (plus a cheaper explicit-formula oracle for large problems
where the dense inverse is infeasible) so the CLI, the benchmarks and
downstream users all validate the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .baselines import dense_block, full_lu_inverse
from .greens_explicit import greens_block
from .patterns import SelectedInversion
from .pcyclic import BlockPCyclic

__all__ = ["ValidationReport", "validate_selected"]

#: The paper's acceptance threshold (Sec. V-A).
PAPER_THRESHOLD = 1e-10


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one validation run."""

    mean_relative_error: float
    max_relative_error: float
    blocks_checked: int
    oracle: str
    threshold: float = PAPER_THRESHOLD

    @property
    def passed(self) -> bool:
        """The paper's criterion: mean blockwise error below threshold."""
        return self.mean_relative_error < self.threshold

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status}: mean rel err {self.mean_relative_error:.3e},"
            f" max {self.max_relative_error:.3e}"
            f" over {self.blocks_checked} blocks ({self.oracle} oracle,"
            f" threshold {self.threshold:g})"
        )


def validate_selected(
    pc: BlockPCyclic,
    selected: SelectedInversion,
    oracle: str = "dense",
    sample: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> ValidationReport:
    """Compare a selected inversion against an oracle.

    Parameters
    ----------
    pc:
        The matrix the selection was computed from.
    selected:
        The selected inversion to check.
    oracle:
        ``"dense"`` — one dense LU inverse, every block checked against
        it (the paper's procedure; ``O((NL)^3)`` once).
        ``"explicit"`` — per-block Eq. (3) evaluation (``O(L N^3)`` per
        block; total cost scales with the number of *checked* blocks,
        so combine with ``sample`` at large ``L``).
    sample:
        Check only this many randomly chosen blocks (``None`` = all).
    rng:
        Randomness for the sample draw.

    Returns
    -------
    ValidationReport
    """
    keys = list(selected)
    if sample is not None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        gen = np.random.default_rng(rng)
        if sample < len(keys):
            idx = gen.choice(len(keys), size=sample, replace=False)
            keys = [keys[i] for i in idx]
    if oracle == "dense":
        G = full_lu_inverse(pc)

        def reference(k: int, l: int) -> np.ndarray:
            return dense_block(G, k, l, pc.N)

    elif oracle == "explicit":

        def reference(k: int, l: int) -> np.ndarray:
            return greens_block(pc, k, l)

    else:
        raise ValueError(f"unknown oracle {oracle!r} (use dense|explicit)")

    errors = []
    for k, l in keys:
        ref = reference(k, l)
        denom = np.linalg.norm(ref)
        errors.append(
            float(np.linalg.norm(selected[(k, l)] - ref) / (denom or 1.0))
        )
    return ValidationReport(
        mean_relative_error=float(np.mean(errors)),
        max_relative_error=float(np.max(errors)),
        blocks_checked=len(keys),
        oracle=oracle,
    )
