"""Sherman–Morrison/Woodbury delta updates of selected inversions.

Sweep-shaped DQMC traffic rarely asks for independent Green's
functions: consecutive Hubbard–Stratonovich configurations differ by a
handful of single-site flips.  A flip at time slice ``l``, site ``i``
rescales column ``i`` of the block ``B_l`` by ``d = e^{s nu (h' - h)}``
— an *exact* rank-1 perturbation of ``B_l`` and hence of the block
p-cyclic matrix ``M``.  Batching ``r`` flips gives

    ``M' = M + U V^T``            (``U, V`` of shape ``(L N, r)``),

and the Woodbury identity updates any block of ``G' = M'^{-1}`` from
the corresponding block of ``G = M^{-1}``:

    ``G' = G - X C^{-1} Y^T``,  ``X = M^{-1} U``,  ``Y = M^{-T} V``,
    ``C = I_r + V^T X``.

``X`` and ``Y`` cost ``O(L N^2)`` per right-hand side through the
structured QR factorisation of :class:`~repro.core.solve.PCyclicSolver`
(backward stable — never an unstabilised ``L``-fold product), so a
cached selected block is refreshed for ``O(r N^2)`` flops instead of a
full ``O(b L N^3)`` FSI solve.  Per Bauer ("Fast and stable determinant
QMC"), long chains of low-rank updates accumulate error; callers should
bound the chain depth and re-solve from scratch when
:attr:`DeltaReport.solve_residual` or the capacitance conditioning
trips (the service's rank/depth budgets and residual guard do exactly
this — see ``docs/incremental.md``).

The module also hosts :class:`FactorPairs`, the generic rank-``k``
factor-pair accumulator (``A_current = A + U W^T``) generalised out of
the delayed DQMC updates of :mod:`repro.dqmc.delayed`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
import numpy.typing as npt

from ..perf.tracer import record_flops
from . import _kernels as kr
from .pcyclic import BlockPCyclic, torus_index
from .solve import PCyclicSolver

__all__ = [
    "FactorPairs",
    "RankOneFlip",
    "diag_flips",
    "transpose_pcyclic",
    "DeltaReport",
    "PCyclicWoodbury",
]


class FactorPairs:
    """Accumulated rank-1 factor pairs: ``A_current = A + U W^T``.

    The delayed-update primitive of production DQMC codes (QUEST),
    factored out so both the Metropolis sweep
    (:class:`~repro.dqmc.delayed.DelayedGreens`) and the Woodbury
    serving path share one implementation: pairs are appended one at a
    time, entries of the *current* (pending-included) matrix are
    reconstructed in ``O(n k)``, and :meth:`flush_into` folds the whole
    batch into the dense matrix with a single BLAS-3 gemm.
    """

    def __init__(self, n: int, capacity: int,
                 dtype: npt.DTypeLike = np.float64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.n = n
        self.capacity = capacity
        self._U = np.empty((n, capacity), dtype=dtype)
        self._W = np.empty((n, capacity), dtype=dtype)
        self._k = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of accumulated, unflushed rank-1 pairs."""
        return self._k

    @property
    def is_full(self) -> bool:
        return self._k == self.capacity

    def append(self, u: np.ndarray, w: np.ndarray) -> None:
        """Record one rank-1 pair ``u w^T``."""
        if self.is_full:
            raise ValueError(f"factor-pair buffer full (capacity {self.capacity})")
        self._U[:, self._k] = u
        self._W[:, self._k] = w
        self._k += 1

    # -- O(n k) reconstruction of current entries -----------------------
    def diag_correction(self, i: int) -> float:
        """Pending correction to entry ``(i, i)``."""
        if not self._k:
            return 0.0
        return float(self._U[i, : self._k] @ self._W[i, : self._k])

    def col_correction(self, i: int) -> np.ndarray | float:
        """Pending correction to column ``i`` (``U W[i, :]^T``)."""
        if not self._k:
            return 0.0
        record_flops(2.0 * self.n * self._k)
        return self._U[:, : self._k] @ self._W[i, : self._k]

    def row_correction(self, i: int) -> np.ndarray | float:
        """Pending correction to row ``i`` (``W U[i, :]^T``)."""
        if not self._k:
            return 0.0
        record_flops(2.0 * self.n * self._k)
        return self._W[:, : self._k] @ self._U[i, : self._k]

    # ------------------------------------------------------------------
    def flush_into(self, A: np.ndarray) -> None:
        """``A += U W^T`` as one gemm, then reset the buffers."""
        if self._k == 0:
            return
        k = self._k
        A += kr.gemm(
            np.ascontiguousarray(self._U[:, :k]),
            np.ascontiguousarray(self._W[:, :k].T),
        )
        self._k = 0

    def reset(self) -> None:
        self._k = 0


# ----------------------------------------------------------------------
# rank-1 structure of an HS-field flip
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RankOneFlip:
    """One column rescaling ``B_l[:, i] <- d * B_l[:, i]`` of a block.

    ``slice_index`` is 1-based (matching :meth:`BlockPCyclic.block`);
    ``site`` is the 0-based column.  For a Hubbard HS flip the scale is
    ``d = e^{s nu (h' - h)}`` — the potential factor is diagonal, so
    the perturbation ``(d - 1) B_l[:, i] e_i^T`` is exact, not a
    linearisation.
    """

    slice_index: int
    site: int
    scale: float


def diag_flips(
    h_base: np.ndarray, h_new: np.ndarray, coupling: float
) -> list[RankOneFlip]:
    """The exact rank-1 flip list between two ``(L, N)`` Ising fields.

    ``coupling`` is the exponent prefactor ``s * nu`` of the potential
    ``e^{s nu h(l, i)}`` (any slice-constant diagonal shift, e.g.
    ``e^{dtau mu}``, cancels in the ratio).  Entries must be ``+-1``;
    each differing entry contributes one :class:`RankOneFlip` with
    ``d = e^{coupling * (h_new - h_base)}``.
    """
    h_base = np.asarray(h_base)
    h_new = np.asarray(h_new)
    if h_base.shape != h_new.shape or h_base.ndim != 2:
        raise ValueError(
            f"field shapes must match and be (L, N):"
            f" {h_base.shape!r} vs {h_new.shape!r}"
        )
    rows, cols = np.nonzero(h_base != h_new)
    return [
        RankOneFlip(
            slice_index=int(l) + 1,
            site=int(i),
            scale=float(
                np.exp(coupling * (float(h_new[l, i]) - float(h_base[l, i])))
            ),
        )
        for l, i in zip(rows, cols)
    ]


def transpose_pcyclic(pc: BlockPCyclic) -> BlockPCyclic:
    """The reversal-similarity image of ``M^T`` as a :class:`BlockPCyclic`.

    ``M^T`` has identity diagonal, *super*-diagonal blocks
    ``-B_{i+1}^T`` and corner ``(M^T)_{L1} = B_1^T`` — not directly
    representable.  Conjugating with the block-order reversal ``P``
    restores the normal form: ``P M^T P`` is block p-cyclic with

        ``B'_1 = B_1^T``,  ``B'_i = B_{L+2-i}^T``  (``i = 2..L``),

    so ``M^T y = v  <=>  (P M^T P)(P y) = P v`` — one extra structured
    QR factorisation buys stable transpose solves.
    """
    L = pc.L
    Bt = np.empty_like(pc.B)
    Bt[0] = pc.B[0].T
    for i in range(2, L + 1):
        Bt[i - 1] = pc.block(L + 2 - i).T
    return BlockPCyclic(Bt)


# ----------------------------------------------------------------------
# the Woodbury updater
# ----------------------------------------------------------------------

@dataclass
class DeltaReport:
    """Diagnostics of one Woodbury application (the delta-path guards).

    ``solve_residual`` is the worst relative residual of the two
    structured solves (``max(|M X - U|, |M^T Y - V|) / |rhs|``) —
    backward-stable solves keep it near machine epsilon, so anything
    large means the base matrix is too ill-conditioned for the update
    and the caller should fall back to a fresh solve.
    ``capacitance_cond`` is the 2-norm condition number of the ``r x r``
    capacitance ``C = I + V^T X``; a near-singular ``C`` means the flip
    batch nearly annihilates ``M'`` (Metropolis would reject such a
    move, but a *served* result must never be built on it).
    """

    rank: int
    solve_residual: float
    capacitance_cond: float

    def healthy(self, residual_tol: float, cond_limit: float) -> bool:
        return (
            np.isfinite(self.solve_residual)
            and np.isfinite(self.capacitance_cond)
            and self.solve_residual <= residual_tol
            and self.capacitance_cond <= cond_limit
        )


class PCyclicWoodbury:
    """Factor-once rank-``k`` updater for one base matrix ``M``.

    Holds the two structured QR factorisations (``M`` and the reversed
    transpose) so that every subsequent flip batch against the same
    base costs ``O(L N^2 r)`` — the serving layer keeps a small LRU of
    these per cached base fingerprint.
    """

    def __init__(self, pc: BlockPCyclic) -> None:
        self.pc = pc
        self.L = pc.L
        self.N = pc.N
        self._forward = PCyclicSolver(pc)
        self._pc_t = transpose_pcyclic(pc)
        self._adjoint = PCyclicSolver(self._pc_t)

    # ------------------------------------------------------------------
    def _factors(self, flips: Sequence[RankOneFlip]) -> tuple[np.ndarray, np.ndarray]:
        """Assemble ``U, V`` with ``M' - M = U V^T`` (shape ``(L, N, r)``)."""
        L, N = self.L, self.N
        r = len(flips)
        U = np.zeros((L, N, r), dtype=self.pc.dtype)
        V = np.zeros((L, N, r), dtype=self.pc.dtype)
        for j, flip in enumerate(flips):
            l = torus_index(flip.slice_index, L)
            if not 0 <= flip.site < N:
                raise ValueError(f"site {flip.site} outside [0, {N})")
            delta = flip.scale - 1.0
            column = self.pc.block(l)[:, flip.site]
            # M holds -B_l at block (l, l-1) for l >= 2 and +B_1 at
            # (1, L): the sign of the perturbation follows the slot.
            sign = 1.0 if l == 1 else -1.0
            U[l - 1, :, j] = sign * delta * column
            V[torus_index(l - 1, L) - 1, flip.site, j] = 1.0
        return U, V

    def solve(self, rhs_blocks: np.ndarray) -> np.ndarray:
        """``M X = rhs`` for ``rhs`` of shape ``(L, N, r)``."""
        L, N = self.L, self.N
        flat = rhs_blocks.reshape(L * N, -1)
        return self._forward.solve(flat).reshape(L, N, -1)

    def solve_transpose(self, rhs_blocks: np.ndarray) -> np.ndarray:
        """``M^T Y = rhs`` via the reversed-transpose factorisation."""
        L, N = self.L, self.N
        reversed_rhs = rhs_blocks[::-1].reshape(L * N, -1)
        y = self._adjoint.solve(np.ascontiguousarray(reversed_rhs))
        return y.reshape(L, N, -1)[::-1]

    # ------------------------------------------------------------------
    def update_blocks(
        self,
        blocks: Mapping[tuple[int, int], np.ndarray],
        flips: Sequence[RankOneFlip],
    ) -> tuple[dict[tuple[int, int], np.ndarray], DeltaReport]:
        """Woodbury-update cached blocks of ``G`` to blocks of ``G'``.

        ``blocks`` maps 1-based ``(k, l)`` to the *base* block
        ``G_kl``; the return value maps the same keys to ``G'_kl``
        for the perturbed matrix, plus the :class:`DeltaReport` the
        caller's guards consume.  An empty flip list returns copies.

        Flip positions ``(slice, site)`` must be distinct: repeated
        rescalings of one column compose multiplicatively, not
        additively (:func:`diag_flips` produces one flip per differing
        entry, which satisfies this by construction).
        """
        L = self.L
        r = len(flips)
        if r == 0:
            return (
                {kl: np.array(blk, copy=True) for kl, blk in blocks.items()},
                DeltaReport(rank=0, solve_residual=0.0, capacitance_cond=1.0),
            )
        U, V = self._factors(flips)
        X = self.solve(U)
        Y = self.solve_transpose(V)

        # Residuals of both structured solves, via matvec (O(L N^2 r)).
        flat = lambda A: A.reshape(L * self.N, -1)  # noqa: E731
        res_fwd = np.linalg.norm(self.pc.matvec(flat(X)) - flat(U))
        res_adj = np.linalg.norm(
            self._pc_t.matvec(np.ascontiguousarray(flat(Y[::-1])))
            - flat(V[::-1])
        )
        scale = max(np.linalg.norm(flat(U)), np.linalg.norm(flat(V)), 1e-300)
        residual = float(max(res_fwd, res_adj) / scale)

        # Capacitance C = I + V^T X: V's columns are unit vectors, so
        # V^T X just gathers rows of X.
        C = np.eye(r, dtype=X.dtype)
        for j, flip in enumerate(flips):
            m = torus_index(flip.slice_index - 1, L) - 1
            C[j, :] += X[m, flip.site, :]
        with np.errstate(all="ignore"):
            cond = float(np.linalg.cond(C)) if np.all(np.isfinite(C)) else np.inf
        report = DeltaReport(
            rank=r, solve_residual=residual, capacitance_cond=cond,
        )
        if not np.isfinite(cond):
            return {kl: np.array(b, copy=True) for kl, b in blocks.items()}, report

        # T_l = C^{-1} Y_l^T, shared across every row of block column l:
        # one LAPACK solve for all L block columns, then one batched
        # matmul for every cached block — no per-block Python kernels.
        Cf = kr.lu_factor(C)
        T = Cf.solve(np.ascontiguousarray(Y.reshape(L * self.N, r).T))
        T = np.ascontiguousarray(T.reshape(r, L, self.N).transpose(1, 0, 2))
        keys = list(blocks.keys())
        n = len(keys)
        karr = np.fromiter((k - 1 for k, _ in keys), dtype=np.intp, count=n)
        larr = np.fromiter((l - 1 for _, l in keys), dtype=np.intp, count=n)
        deltas = np.matmul(X[karr], T[larr])
        record_flops(2.0 * n * self.N * self.N * r)
        out = {kl: blocks[kl] - deltas[j] for j, kl in enumerate(keys)}
        return out, report
