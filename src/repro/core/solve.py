"""Structured linear solves with block p-cyclic matrices.

BSOFI's structured QR factorisation is also the right tool for solving
``M x = rhs`` *without* forming any part of the inverse: apply the
``2N x 2N`` panel reflections to the right-hand side and back-
substitute through the bidiagonal-plus-last-column ``R``.  Cost per
solve after factorisation: ``O(L N^2)`` per right-hand side — versus
``O((NL)^2)`` for a dense factor.

This is the natural companion API to selected inversion: applications
that only need ``G @ v`` for a few vectors (e.g. the Hutchinson trace
estimators of :mod:`repro.apps.trace`) should solve rather than invert.

:class:`PCyclicSolver` factors once and solves many times; the module
also provides :func:`determinant` — the sign/log-magnitude of
``det(M)``, which for DQMC is the Boltzmann weight of a configuration
(``det M = det(I + B_L ... B_1)``).
"""

from __future__ import annotations

import numpy as np

from . import _kernels as kr
from .bsofi import StructuredQR, bsofi_qr
from .pcyclic import BlockPCyclic

__all__ = ["PCyclicSolver", "determinant"]


class PCyclicSolver:
    """Factor-once / solve-many interface for ``M x = rhs``.

    Parameters
    ----------
    pc:
        The block p-cyclic matrix.  Factorisation costs ``O(L N^3)``
        (structured QR; never forms the ``(NL)^2`` matrix).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.pcyclic import random_pcyclic
    >>> from repro.core.solve import PCyclicSolver
    >>> pc = random_pcyclic(6, 4, np.random.default_rng(0), scale=0.6)
    >>> solver = PCyclicSolver(pc)
    >>> rhs = np.ones(24)
    >>> x = solver.solve(rhs)
    >>> bool(np.allclose(pc.matvec(x), rhs))
    True
    """

    def __init__(self, pc: BlockPCyclic):
        self.pc = pc
        self.L = pc.L
        self.N = pc.N
        if pc.L == 1:
            A = np.array(pc.block(1), copy=True)
            kr.add_identity(A)
            self._single = kr.lu_factor(A)
            self._qr: StructuredQR | None = None
        else:
            self._single = None
            self._qr = bsofi_qr(pc)

    # ------------------------------------------------------------------
    def _apply_qt(self, y: np.ndarray) -> np.ndarray:
        """``y <- Q^T y`` blockwise (y has shape ``(L, N, k)``)."""
        f = self._qr
        assert f is not None
        n, N = f.b, f.N
        for i in range(n - 1):
            stacked = np.concatenate((y[i], y[i + 1]), axis=0)  # (2N, k)
            stacked = kr.gemm(f.Q[i].conj().T, stacked)
            y[i] = stacked[:N]
            y[i + 1] = stacked[N:]
        y[n - 1] = kr.gemm(f.Qf.conj().T, y[n - 1])
        return y

    def _back_substitute(self, y: np.ndarray) -> np.ndarray:
        """Solve ``R x = y`` blockwise in place (y shape ``(L, N, k)``)."""
        import scipy.linalg as sla

        f = self._qr
        assert f is not None
        n, N = f.b, f.N
        x = y
        x[n - 1] = sla.solve_triangular(
            f.Rd[n - 1], y[n - 1], lower=False, check_finite=False
        )
        for i in range(n - 2, -1, -1):
            acc = y[i] - kr.gemm(f.Ru[i], x[i + 1])
            if i < n - 2:
                acc -= kr.gemm(f.Rc[i], x[n - 1])
            x[i] = sla.solve_triangular(
                f.Rd[i], acc, lower=False, check_finite=False
            )
        return x

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``M x = rhs`` for one vector or a block of vectors.

        ``rhs`` has shape ``(N*L,)`` or ``(N*L, k)``; the result matches.
        """
        rhs = np.asarray(rhs)
        if not np.issubdtype(rhs.dtype, np.inexact):
            rhs = rhs.astype(float)
        rhs = rhs.astype(np.result_type(rhs.dtype, self.pc.dtype))
        orig_shape = rhs.shape
        if rhs.shape[0] != self.N * self.L:
            raise ValueError(
                f"rhs leading dimension {rhs.shape[0]} != N*L = {self.N * self.L}"
            )
        y = rhs.reshape(self.L, self.N, -1).copy()
        if self._single is not None:
            return self._single.solve(y[0]).reshape(orig_shape)
        self._apply_qt(y)
        self._back_substitute(y)
        return y.reshape(orig_shape)

    # ------------------------------------------------------------------
    def slogdet(self) -> tuple[float | complex, float]:
        """Sign/phase and log|det(M)| from the structured factors.

        ``det(M) = det(Q) * det(R)``; each panel ``Q_i`` contributes a
        unit-modulus determinant (+-1 real; a phase for complex
        matrices), ``R`` the product of its diagonal entries.  The
        first return value is a real sign for real matrices and a
        unit-modulus complex phase for complex ones.
        """

        def unit(x) -> complex:
            return x / abs(x)

        if self._single is not None:
            lu = self._single.lu
            piv = self._single.piv
            diag = np.diag(lu)
            sign = np.prod([unit(d) for d in diag])
            # Each row interchange flips the sign.
            sign *= -1.0 if (piv != np.arange(len(piv))).sum() % 2 else 1.0
            logabs = float(np.sum(np.log(np.abs(diag))))
        else:
            f = self._qr
            assert f is not None
            sign = complex(1.0)
            for i in range(f.b - 1):
                sign *= unit(np.linalg.det(f.Q[i]))
            sign *= unit(np.linalg.det(f.Qf))
            logabs = 0.0
            for i in range(f.b):
                d = np.diag(f.Rd[i])
                sign *= np.prod([unit(x) for x in d])
                logabs += float(np.sum(np.log(np.abs(d))))
        if abs(complex(sign).imag) < 1e-12:
            return float(complex(sign).real), logabs
        return complex(sign), logabs


def determinant(pc: BlockPCyclic) -> tuple[float | complex, float]:
    """``(sign-or-phase, log|det M|)`` of a block p-cyclic matrix.

    In DQMC this is the configuration weight: ``det M_sigma(h)``.
    Prefer this over densifying — it never forms the ``(NL)^2`` matrix.
    """
    return PCyclicSolver(pc).slogdet()
