"""Explicit block formulas for the Green's function (Eq. (3)).

For the normalized block p-cyclic matrix ``M`` with blocks ``B_i``, the
inverse ``G = M^{-1}`` has blocks ``G_kl = W_k^{-1} Z_kl`` where

* ``W_k = I + B_k B_{k-1} ... B_1 B_L ... B_{k+1}`` (the full cyclic
  product started at ``k`` going *down*; for ``k = L`` this is
  ``I + B_L ... B_1``), and
* ``Z_kl`` is::

      Z_kl = -B_k B_{k-1} ... B_1 B_L B_{L-1} ... B_{l+1}   k < l < L
      Z_kl = -B_k B_{k-1} ... B_1                           k < l = L
      Z_kl = I                                              k = l
      Z_kl = B_k B_{k-1} ... B_{l+1}                        k > l

This module serves two roles:

1. a *correctness oracle* for every other algorithm (tests compare FSI
   and BSOFI output against these formulas and against dense LU);
2. the *explicit-form baseline* of the complexity table in Sec. II-C —
   computing a selected inversion directly from Eq. (3), whose flop
   count FSI beats by the factors reported in the paper.

The diagonal block ``G_kk = W_k^{-1}`` is the *equal-time* Green's
function of DQMC at time slice ``k``.
"""

from __future__ import annotations

import numpy as np

from . import _kernels as kr
from .pcyclic import BlockPCyclic, torus_index

__all__ = [
    "cyclic_down_product",
    "chain_product",
    "w_matrix",
    "z_matrix",
    "greens_block",
    "equal_time_greens",
    "explicit_selected_columns",
    "explicit_full_inverse",
]


def chain_product(pc: BlockPCyclic, k: int, l: int) -> np.ndarray:
    """The descending chain ``B_k B_{k-1} ... B_{l+1}`` (torus indices).

    Requires ``k != l`` modulo ``L`` in the usual case; the degenerate
    call with ``k == l`` returns the identity (empty product).  The
    chain always steps *down* from ``k`` and wraps through ``L`` when
    ``k < l``.
    """
    L, N = pc.L, pc.N
    k = torus_index(k, L)
    l = torus_index(l, L)
    steps = (k - l) % L
    P = np.eye(N, dtype=pc.dtype)
    j = k
    for _ in range(steps):
        P = kr.gemm(P, pc.block(j))
        j = torus_index(j - 1, L)
    return P


def cyclic_down_product(pc: BlockPCyclic, k: int) -> np.ndarray:
    """Full cyclic product ``B_k B_{k-1} ... B_1 B_L ... B_{k+1}``.

    This is the ``L``-term product entering ``W_k``; for ``k = L`` it is
    simply ``B_L B_{L-1} ... B_1``.
    """
    L, N = pc.L, pc.N
    k = torus_index(k, L)
    P = np.eye(N, dtype=pc.dtype)
    j = k
    for _ in range(L):
        P = kr.gemm(P, pc.block(j))
        j = torus_index(j - 1, L)
    return P


def w_matrix(pc: BlockPCyclic, k: int) -> np.ndarray:
    """``W_k = I + (cyclic product started at k)``."""
    W = cyclic_down_product(pc, k)
    kr.add_identity(W)
    return W


def z_matrix(pc: BlockPCyclic, k: int, l: int) -> np.ndarray:
    """``Z_kl`` per Eq. (3) (see module docstring for the four cases)."""
    L, N = pc.L, pc.N
    k = torus_index(k, L)
    l = torus_index(l, L)
    if k == l:
        return np.eye(N, dtype=pc.dtype)
    if k > l:
        return chain_product(pc, k, l)
    # k < l: wraps through B_1 -> B_L, carries a minus sign.
    return -chain_product(pc, k, l)


def greens_block(pc: BlockPCyclic, k: int, l: int) -> np.ndarray:
    """One block ``G_kl = W_k^{-1} Z_kl`` straight from Eq. (3)."""
    return kr.solve(w_matrix(pc, k), z_matrix(pc, k, l))


def equal_time_greens(pc: BlockPCyclic, k: int) -> np.ndarray:
    """The equal-time Green's function ``G_kk = W_k^{-1}``."""
    W = w_matrix(pc, k)
    return kr.solve(W, np.eye(pc.N, dtype=pc.dtype))


def explicit_selected_columns(
    pc: BlockPCyclic, columns: list[int]
) -> dict[tuple[int, int], np.ndarray]:
    """Selected block columns via the explicit form — the paper's baseline.

    For each requested column ``l`` computes ``G_kl`` for every ``k``.
    ``W_k`` is factored once per row and cached across columns, and the
    chain products within a column are accumulated incrementally rather
    than recomputed per block — this is a *favourable* implementation of
    the explicit form, yet it still costs ``O(b L^2 N^3)`` flops against
    FSI's ``O(b L N^3)``.
    """
    L, N = pc.L, pc.N
    eye = np.eye(N, dtype=pc.dtype)
    w_factors: dict[int, kr.LUFactors] = {}

    def w_factor(k: int) -> kr.LUFactors:
        f = w_factors.get(k)
        if f is None:
            f = w_factors[k] = kr.lu_factor(w_matrix(pc, k))
        return f

    out: dict[tuple[int, int], np.ndarray] = {}
    for l in columns:
        l = torus_index(l, L)
        # Walk k downward from l so Z grows by one gemm per row:
        # k = l, l-1, ..., wrapping the torus; sign flips past the wrap.
        Z = eye.copy()
        out[(l, l)] = w_factor(l).solve(Z)
        k = l
        for _ in range(L - 1):
            k_next = torus_index(k + 1, L)
            # Z_{k+1, l} = B_{k+1} Z_{k, l}, with a sign change when the
            # walk crosses row 1 (the corner block carries -B_1).
            Z = kr.gemm(pc.block(k_next), Z)
            if k_next == 1:
                Z = -Z
            out[(k_next, l)] = w_factor(k_next).solve(Z)
            k = k_next
    return out


def explicit_full_inverse(pc: BlockPCyclic) -> np.ndarray:
    """Full ``G`` as an ``(L, L, N, N)`` array of blocks, from Eq. (3).

    Oracle-grade only — costs ``O(L^3 N^3)`` the naive way; use for
    small problems in tests.
    """
    L, N = pc.L, pc.N
    G = np.empty((L, L, N, N), dtype=pc.dtype)
    for k in range(1, L + 1):
        Wf = kr.lu_factor(w_matrix(pc, k))
        for l in range(1, L + 1):
            G[k - 1, l - 1] = Wf.solve(z_matrix(pc, k, l))
    return G
