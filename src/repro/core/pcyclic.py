"""Block p-cyclic matrices in DQMC normal form.

The paper works with two closely related objects:

* the *general* block p-cyclic matrix ``A`` (Eq. (1)) with nonsingular
  diagonal blocks ``A_{ii}`` and one nonzero sub-diagonal block per row
  plus a corner block ``A_{1L}``;
* its *normalized* form ``M = D^{-1} A`` where ``D = diag(A_11, ...,
  A_LL)``, which has identity diagonal blocks, sub-diagonal blocks
  ``-B_i`` and a corner block ``+B_1``::

      M = [  I              B_1 ]
          [ -B_2   I            ]
          [       -B_3  I       ]
          [             ...     ]
          [            -B_L   I ]

  with ``B_1 = A_11^{-1} A_1L`` and ``B_i = -A_ii^{-1} A_{i,i-1}`` for
  ``i >= 2``.

The Green's function of a DQMC simulation is ``G = M^{-1}``; the inverse
of the general matrix follows as ``A^{-1} = G D^{-1}``.

This module provides :class:`BlockPCyclic`, the container used by every
algorithm in :mod:`repro.core` (CLS, BSOFI, WRP, FSI, baselines).
Blocks are stored as one contiguous ``(L, N, N)`` array so that each
``B_i`` is a contiguous view — all downstream kernels are gemm-rich and
benefit from contiguous operands.

Block indices in the public API are **1-based** (``1 <= i <= L``) to
match the paper; a *torus* convention maps ``0 -> L`` and ``L+1 -> 1``
(see :func:`torus_index`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "BlockPCyclic",
    "torus_index",
    "random_pcyclic",
    "pcyclic_from_general",
]


def torus_index(k: int, L: int) -> int:
    """Map an out-of-range 1-based block index onto the torus ``{1..L}``.

    The paper's convention: ``k = 0`` means ``L`` and ``k = L + 1`` means
    ``1``.  Arbitrary integers are reduced modulo ``L``.

    >>> torus_index(0, 8)
    8
    >>> torus_index(9, 8)
    1
    >>> torus_index(5, 8)
    5
    """
    if L <= 0:
        raise ValueError(f"L must be positive, got {L}")
    return (k - 1) % L + 1


@dataclass(frozen=True)
class BlockPCyclic:
    """A block p-cyclic matrix in normalized (DQMC) form.

    Parameters
    ----------
    B:
        Array of shape ``(L, N, N)``; ``B[i - 1]`` holds the block
        ``B_i`` of the normalized matrix ``M`` above.  The array is the
        *only* state; the identity diagonal is implicit.

    Notes
    -----
    Instances are immutable containers; algorithms never mutate ``B``
    in place.  Use :meth:`block` for 1-based access.
    """

    B: np.ndarray

    def __post_init__(self) -> None:
        B = np.asarray(self.B)
        if B.ndim != 3 or B.shape[1] != B.shape[2]:
            raise ValueError(
                f"B must have shape (L, N, N), got {B.shape!r}"
            )
        if B.shape[0] < 1:
            raise ValueError("need at least one block (L >= 1)")
        if not np.issubdtype(B.dtype, np.floating) and not np.issubdtype(
            B.dtype, np.complexfloating
        ):
            B = B.astype(np.float64)
        object.__setattr__(self, "B", np.ascontiguousarray(B))

    # ------------------------------------------------------------------
    # shape / access
    # ------------------------------------------------------------------
    @property
    def L(self) -> int:
        """Number of block rows/columns (time slices in DQMC)."""
        return self.B.shape[0]

    @property
    def N(self) -> int:
        """Block dimension (number of lattice sites in DQMC)."""
        return self.B.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the dense matrix: ``(N*L, N*L)``."""
        n = self.N * self.L
        return (n, n)

    @property
    def dtype(self) -> np.dtype:
        return self.B.dtype

    def block(self, i: int) -> np.ndarray:
        """Return ``B_i`` (1-based, torus-wrapped) as a contiguous view."""
        return self.B[torus_index(i, self.L) - 1]

    def blocks(self, indices: Iterable[int]) -> list[np.ndarray]:
        """Return ``[B_i for i in indices]`` with torus wrapping."""
        return [self.block(i) for i in indices]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise the normalized matrix ``M`` densely.

        Intended for oracles and small problems: the result is
        ``(N*L) x (N*L)``.
        """
        L, N = self.L, self.N
        M = np.zeros((N * L, N * L), dtype=self.dtype)
        eye = np.eye(N, dtype=self.dtype)
        for i in range(L):
            M[i * N : (i + 1) * N, i * N : (i + 1) * N] = eye
        if L == 1:
            # Degenerate single-block case: M = I + B_1.
            M[:N, :N] += self.B[0]
            return M
        M[:N, (L - 1) * N :] = self.B[0]
        for i in range(2, L + 1):
            r = (i - 1) * N
            c = (i - 2) * N
            M[r : r + N, c : c + N] = -self.B[i - 1]
        return M

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply ``M`` to a vector or block of vectors without forming ``M``.

        ``x`` has shape ``(N*L,)`` or ``(N*L, k)``.
        """
        L, N = self.L, self.N
        x = np.asarray(x)
        xb = x.reshape(L, N, -1)
        y = np.empty_like(xb)
        if L == 1:
            y[0] = xb[0] + self.B[0] @ xb[0]
        else:
            y[0] = xb[0] + self.B[0] @ xb[L - 1]
            for i in range(1, L):
                y[i] = xb[i] - self.B[i] @ xb[i - 1]
        return y.reshape(x.shape)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def norm_blocks(self) -> np.ndarray:
        """Frobenius norm of each block, shape ``(L,)``."""
        return np.linalg.norm(self.B, axis=(1, 2))

    def memory_bytes(self) -> int:
        """Bytes held by the block storage."""
        return self.B.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockPCyclic(L={self.L}, N={self.N}, dtype={self.dtype},"
            f" {self.memory_bytes() / 2**20:.1f} MiB)"
        )


def pcyclic_from_general(
    diag: Sequence[np.ndarray],
    sub: Sequence[np.ndarray],
    corner: np.ndarray,
) -> tuple[BlockPCyclic, np.ndarray]:
    """Normalize a general block p-cyclic matrix ``A`` (Eq. (1)).

    Parameters
    ----------
    diag:
        The diagonal blocks ``A_11, ..., A_LL`` (each nonsingular).
    sub:
        The sub-diagonal blocks ``A_21, A_32, ..., A_{L,L-1}``
        (length ``L - 1``).
    corner:
        The corner block ``A_{1L}``.

    Returns
    -------
    (M, D):
        ``M`` is the normalized :class:`BlockPCyclic` with
        ``B_1 = A_11^{-1} A_1L`` and ``B_i = -A_ii^{-1} A_{i,i-1}``;
        ``D`` is the stacked diagonal ``(L, N, N)`` so that the inverse
        of the original matrix is ``A^{-1} = M^{-1} D^{-1}`` (apply
        ``D^{-1}`` blockwise on the right: column block ``j`` of
        ``A^{-1}`` is ``G[:, j] @ inv(A_jj)``).
    """
    import scipy.linalg as sla

    L = len(diag)
    if len(sub) != L - 1:
        raise ValueError(f"expected {L - 1} sub-diagonal blocks, got {len(sub)}")
    N = diag[0].shape[0]
    B = np.empty((L, N, N), dtype=np.result_type(diag[0], corner))
    B[0] = sla.solve(diag[0], corner)
    for i in range(2, L + 1):
        B[i - 1] = -sla.solve(diag[i - 1], sub[i - 2])
    D = np.ascontiguousarray(np.stack([np.asarray(d) for d in diag]))
    return BlockPCyclic(B), D


def random_pcyclic(
    L: int,
    N: int,
    rng: np.random.Generator | None = None,
    scale: float = 1.0,
    dtype: np.dtype | type = np.float64,
) -> BlockPCyclic:
    """A random, well-conditioned block p-cyclic matrix for tests.

    Blocks are Gaussian with entries of standard deviation
    ``scale / sqrt(N)`` so that ``||B_i||_2`` stays O(scale) as ``N``
    grows and ``M`` remains comfortably invertible for ``scale < 1``.
    """
    rng = np.random.default_rng(rng)
    B = rng.standard_normal((L, N, N)) * (scale / np.sqrt(N))
    return BlockPCyclic(B.astype(dtype, copy=False))
