"""PDIV — divide-and-conquer distributed selected inversion.

PSelInv-style parallelism for the block p-cyclic chain: split the ``L``
time slices into ``P`` contiguous partitions, invert each partition
*locally* with the existing structured-QR machinery, and stitch the
partition boundaries with a small Woodbury capacitance system — the
same SMW identity the delta-update path uses (:mod:`repro.core.smw`),
here applied to the ``P`` bridge couplings instead of to HS flips.

The splitting
-------------
Slicing the stacked blocks ``B[lo_p-1:hi_p]`` of the global matrix
directly yields a *local* block p-cyclic matrix ``M~_p`` whose corner
block is ``+B_{lo_p}``.  The global ``M`` differs from
``blockdiag(M~_1..M~_P)`` by one rank-``N`` correction per partition::

    M = M~ + U V^T,
    U_p   = e_{lo_p} (x) B_{lo_p},
    V_p^T = s_p (e_{hi_{p-1}}^T (x) I) - (e_{hi_p}^T (x) I),

with ``s_1 = +1`` (the true corner ``+B_1``) and ``s_p = -1`` for
``p >= 2`` (the severed sub-diagonal coupling ``-B_{lo_p}``); the
second term cancels the spurious local corner.  Woodbury then gives

    G = G~ - X C^{-1} Y^T,   X = M~^{-1} U,   Y^T = V^T G~,
    C = I_{PN} + V^T X,

where every factor is *partition-local*: block column ``p`` of ``X``
is one structured solve on ``M~_p``; block row ``p`` of ``Y^T`` needs
only the last block row ``R_p`` of each local inverse (one transpose
solve via the reversal trick of :func:`~repro.core.smw.
transpose_pcyclic`); and ``C`` is a ``PN x PN`` block-cyclic
capacitance assembled from the last slice of each ``X_p``.  With
``P = 1`` the correction vanishes identically and PDIV degenerates to
a plain structured solve.

Distribution
------------
:func:`fsi_distributed` partitions the chain across the ranks of a
:mod:`repro.transport` world (any backend): the root scatters the
``B`` slices, each rank factors and solves its partitions locally, the
small pieces (``X_p``, ``R_p``, and the requested in-partition blocks)
are gathered back, and the root solves the capacitance system and
applies the bridge corrections.  Only ``O(L N^2 / P)`` data per rank
crosses the wire — never a dense inverse.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..perf.tracer import current_tracers, record_flops
from ..telemetry import runtime as _telemetry
from ..transport import CommStats, create_world
from . import _kernels as kr
from .patterns import Pattern, SelectedInversion, Selection
from .pcyclic import BlockPCyclic
from .smw import transpose_pcyclic
from .solve import PCyclicSolver

__all__ = [
    "PDIVReport",
    "PDIVResult",
    "fsi_distributed",
    "partition_bounds",
]


def partition_bounds(L: int, partitions: int) -> list[tuple[int, int]]:
    """Near-equal contiguous 1-based inclusive ``[lo, hi]`` chunks."""
    if not 1 <= partitions <= L:
        raise ValueError(
            f"partitions={partitions} must lie in [1, L={L}]"
        )
    base, rem = divmod(L, partitions)
    bounds = []
    lo = 1
    for p in range(partitions):
        hi = lo + base + (1 if p < rem else 0) - 1
        bounds.append((lo, hi))
        lo = hi + 1
    return bounds


@dataclass
class PDIVReport:
    """Accounting of one distributed selected inversion."""

    bounds: list[tuple[int, int]]
    backend: str
    ranks: int
    capacitance_cond: float
    comm: CommStats | None = None

    @property
    def partitions(self) -> int:
        return len(self.bounds)


@dataclass
class PDIVResult:
    """Selected blocks of ``G`` plus the PDIV accounting."""

    selected: SelectedInversion
    selection: Selection
    report: PDIVReport = field(compare=False, default=None)  # type: ignore[assignment]


@dataclass
class _PartitionPieces:
    """What one partition contributes to the stitch (all small)."""

    lo: int
    hi: int
    X: np.ndarray                      # (L_p, N, N) bridge column M~^{-1} U_p
    R: np.ndarray                      # (L_p, N, N) last block row of G~_p
    cols: dict[int, np.ndarray]        # local col index -> (L_p, N, N)
    rows: dict[int, np.ndarray]        # local row index -> (L_p, N, N)


def _partition_work(
    B_slice: np.ndarray,
    need_cols: Sequence[int],
    need_rows: Sequence[int],
    lo: int,
    hi: int,
) -> _PartitionPieces:
    """Factor one partition and produce its stitch pieces.

    All right-hand sides go through two structured QR factorisations
    (forward and reversed-transpose), batched into single multi-RHS
    solves — ``O(L_p N^3)`` to factor, ``O(L_p N^2)`` per RHS.
    """
    local = BlockPCyclic(np.ascontiguousarray(B_slice))
    Lp, N = local.L, local.N
    dtype = local.dtype
    eye = np.eye(N, dtype=dtype)
    solver = PCyclicSolver(local)
    tsolver = PCyclicSolver(transpose_pcyclic(local))

    def t_solve(rhs_blocks: np.ndarray) -> np.ndarray:
        """``M~^T Y = rhs`` via the reversal similarity (smw idiom)."""
        reversed_rhs = rhs_blocks[::-1].reshape(Lp * N, -1)
        y = tsolver.solve(np.ascontiguousarray(reversed_rhs))
        return y.reshape(Lp, N, -1)[::-1]

    # Bridge column X_p = M~^{-1} (e_1 (x) B_lo).
    rhs = np.zeros((Lp * N, N), dtype=dtype)
    rhs[:N] = B_slice[0]
    X = solver.solve(rhs).reshape(Lp, N, N)

    # Last block row R_p[j] = (G~_p)_{L_p, j} via one transpose solve.
    rhs_t = np.zeros((Lp, N, N), dtype=dtype)
    rhs_t[Lp - 1] = eye
    Y = t_solve(rhs_t)
    R = np.ascontiguousarray(np.swapaxes(Y, 1, 2))

    cols: dict[int, np.ndarray] = {}
    if need_cols:
        idx = sorted(set(need_cols))
        many = np.zeros((Lp * N, len(idx) * N), dtype=dtype)
        for j, l_loc in enumerate(idx):
            many[(l_loc - 1) * N : l_loc * N, j * N : (j + 1) * N] = eye
        sol = solver.solve(many).reshape(Lp, N, len(idx), N)
        cols = {
            l_loc: np.ascontiguousarray(sol[:, :, j, :])
            for j, l_loc in enumerate(idx)
        }

    rows: dict[int, np.ndarray] = {}
    if need_rows:
        idx = sorted(set(need_rows))
        many_t = np.zeros((Lp, N, len(idx) * N), dtype=dtype)
        for j, k_loc in enumerate(idx):
            many_t[k_loc - 1, :, j * N : (j + 1) * N] = eye
        sol = t_solve(many_t).reshape(Lp, N, len(idx), N)
        rows = {
            k_loc: np.ascontiguousarray(np.swapaxes(sol[:, :, j, :], 1, 2))
            for j, k_loc in enumerate(idx)
        }

    nrhs = N * (2 + len(cols) + len(rows))
    record_flops(2 * (13 / 3) * Lp * N**3 + 8.0 * Lp * N * N * nrhs)
    return _PartitionPieces(lo=lo, hi=hi, X=X, R=R, cols=cols, rows=rows)


def _rank_partitions(P: int, size: int, rank: int) -> range:
    """Blockwise assignment of partitions to ranks."""
    base, rem = divmod(P, size)
    lo = rank * base + min(rank, rem)
    return range(lo, lo + base + (1 if rank < rem else 0))


def _pdiv_rank_work(comm, pc, bounds, needs):
    """Rank body: scatter B slices, solve local partitions, gather."""
    P = len(bounds)
    if comm.rank == 0:
        batches = []
        for r in range(comm.size):
            batch = []
            for p in _rank_partitions(P, comm.size, r):
                lo, hi = bounds[p]
                batch.append(
                    (p, np.ascontiguousarray(pc.B[lo - 1 : hi]), needs[p])
                )
            batches.append(batch)
    else:
        batches = None
    mine = comm.scatter(batches, root=0)

    out = []
    for p, B_slice, (need_cols, need_rows) in mine:
        lo, hi = bounds[p]
        with _telemetry.span("pdiv.partition", p=p, lo=lo, hi=hi):
            out.append((p, _partition_work(B_slice, need_cols, need_rows, lo, hi)))
    gathered = comm.gather(out, root=0)
    if comm.rank != 0:
        return None
    return {p: piece for rank_out in gathered for p, piece in rank_out}


def _locate(bounds: list[tuple[int, int]]) -> dict[int, tuple[int, int]]:
    """Global slice -> (partition index 0-based, 1-based local index)."""
    where = {}
    for p, (lo, hi) in enumerate(bounds):
        for g in range(lo, hi + 1):
            where[g] = (p, g - lo + 1)
    return where


def fsi_distributed(
    pc: BlockPCyclic,
    c: int,
    pattern: Pattern = Pattern.COLUMNS,
    q: int | None = None,
    rng: np.random.Generator | int | None = None,
    partitions: int | None = None,
    ranks: int | None = None,
    transport: str | None = None,
    timeout: float | None = 300.0,
) -> PDIVResult:
    """Distributed selected inversion of a block p-cyclic matrix.

    Agrees with :func:`~repro.core.fsi.fsi` on every selected block to
    solver precision (both paths are backward-stable structured
    solves; the conformance tolerance is 1e-10).

    Parameters
    ----------
    pc, c, pattern, q, rng:
        As for :func:`~repro.core.fsi.fsi` (``c``/``q`` fix the seed
        set of the selection; PDIV's partitioning is independent of
        ``c``).
    partitions:
        Number of contiguous chain partitions ``P`` (default: 4,
        clamped to ``L``).  ``P = 1`` is the exact degenerate case.
    ranks:
        Transport world size (default: one rank per partition).
        ``ranks = 1`` computes all partitions inline without spawning
        a world.
    transport:
        Backend name for :func:`repro.transport.create_world`
        (default: the ``REPRO_TRANSPORT`` environment variable).
    """
    L, N = pc.L, pc.N
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    if q is None:
        q = int(np.random.default_rng(rng).integers(0, c))
    selection = Selection(pattern, L=L, c=c, q=q)

    P = min(partitions if partitions is not None else 4, L)
    bounds = partition_bounds(L, P)
    where = _locate(bounds)
    n_ranks = max(1, min(ranks if ranks is not None else P, P))

    # Which in-partition entries of the local inverses the selection
    # needs: ROWS wants whole block rows (one transpose solve each);
    # everything else is cheapest by block columns.
    wanted = selection.block_indices()
    needs: list[tuple[list[int], list[int]]] = [([], []) for _ in range(P)]
    row_mode = pattern is Pattern.ROWS
    for k, l in wanted:
        (p_k, k_loc), (p_l, l_loc) = where[k], where[l]
        if p_k != p_l:
            continue
        if row_mode:
            needs[p_k][1].append(k_loc)
        else:
            needs[p_l][0].append(l_loc)

    tracers = current_tracers()
    tracer = tracers[-1] if tracers else None
    staged = (
        tracer.stage("pdiv") if tracer is not None else contextlib.nullcontext()
    )

    with _telemetry.span(
        "pdiv", L=L, N=N, partitions=P, ranks=n_ranks, pattern=pattern.name
    ), staged:
        world = None
        if n_ranks == 1:
            parts = {}
            for p, (lo, hi) in enumerate(bounds):
                with _telemetry.span("pdiv.partition", p=p, lo=lo, hi=hi):
                    parts[p] = _partition_work(
                        pc.B[lo - 1 : hi], needs[p][0], needs[p][1], lo, hi
                    )
        else:
            world = create_world(n_ranks, backend=transport)
            results = world.run(
                _pdiv_rank_work, pc, bounds, needs, timeout=timeout
            )
            parts = results[0]
            assert parts is not None

        with _telemetry.span("pdiv.stitch", partitions=P):
            blocks, cond = _stitch(pc, bounds, where, parts, wanted, row_mode)

    selected = SelectedInversion(selection, blocks, N)
    report = PDIVReport(
        bounds=bounds,
        backend=world.name if world is not None else "inline",
        ranks=n_ranks,
        capacitance_cond=cond,
        comm=world.stats if world is not None else None,
    )
    return PDIVResult(selected=selected, selection=selection, report=report)


def _stitch(
    pc: BlockPCyclic,
    bounds: list[tuple[int, int]],
    where: dict[int, tuple[int, int]],
    parts: dict[int, _PartitionPieces],
    wanted: list[tuple[int, int]],
    row_mode: bool,
) -> tuple[dict[tuple[int, int], np.ndarray], float]:
    """Solve the capacitance system and apply the bridge corrections."""
    N = pc.N
    P = len(bounds)
    dtype = pc.dtype
    eye = np.eye(N, dtype=dtype)

    # C = I + V^T X, assembled from the last local slice of each X_p:
    # diagonal blocks I - Xl_p; sub-diagonal (p, p-1) gets -Xl_{p-1};
    # the corner (1, P) gets +Xl_P (the s_1 = +1 true-corner coupling).
    C = np.zeros((P * N, P * N), dtype=dtype)
    for p in range(P):
        Xl = parts[p].X[-1]
        C[p * N : (p + 1) * N, p * N : (p + 1) * N] = eye - Xl
        nxt = (p + 1) % P
        sign = 1.0 if nxt == 0 else -1.0
        if nxt != p:  # P == 1: the two couplings cancel exactly
            C[nxt * N : (nxt + 1) * N, p * N : (p + 1) * N] += sign * Xl
    cond = float(np.linalg.cond(C)) if P > 1 else 1.0
    clu = kr.lu_factor(C)

    # One capacitance solve per distinct selected column l: the only
    # nonzero block rows of Y^T e_l come from R_{p_l} (rows p_l and its
    # cyclic successor), so S_l = C^{-1} Y^T e_l costs O((PN)^2 N).
    S: dict[int, np.ndarray] = {}
    for l in sorted({l for _, l in wanted}):
        p_l, l_loc = where[l]
        Rl = parts[p_l].R[l_loc - 1]
        ycol = np.zeros((P * N, N), dtype=dtype)
        ycol[p_l * N : (p_l + 1) * N] -= Rl
        nxt = (p_l + 1) % P
        sign = 1.0 if nxt == 0 else -1.0
        ycol[nxt * N : (nxt + 1) * N] += sign * Rl
        S[l] = clu.solve(ycol).reshape(P, N, N)
        record_flops(2.0 * (P * N) ** 2 * N)

    blocks: dict[tuple[int, int], np.ndarray] = {}
    for k, l in wanted:
        (p_k, k_loc), (p_l, l_loc) = where[k], where[l]
        corr = kr.gemm(parts[p_k].X[k_loc - 1], S[l][p_k])
        if p_k == p_l:
            piece = parts[p_k]
            base = (
                piece.rows[k_loc][l_loc - 1]
                if row_mode
                else piece.cols[l_loc][k_loc - 1]
            )
            blocks[(k, l)] = base - corr
        else:
            blocks[(k, l)] = -corr
    return blocks, cond
