"""Adjacency relations between neighbouring blocks of ``G`` (Eqs. (4)-(7)).

The central observation of the paper (Fig. 1): once one block ``G_kl``
of the Green's function is known, its four neighbours follow from a
single gemm or triangular solve with one ``B`` block:

* **up** (Eq. (4)):    ``G_{k-1,l} = B_k^{-1} G_kl``            (solve)
* **down** (Eq. (5)):  ``G_{k+1,l} = B_{k+1} G_kl``             (gemm)
* **left** (Eq. (6)):  ``G_{k,l-1} = G_kl B_l``                 (gemm)
* **right** (Eq. (7)): ``G_{k,l+1} = G_kl B_{l+1}^{-1}``        (solve)

with boundary corrections (identity shifts and sign flips) whenever the
move starts or lands on the block diagonal or crosses the torus seam
between rows/columns ``L`` and ``1``.  All four relations derive from
``M G = I`` (rows) and ``G M = I`` (columns); this module owns every
boundary case so the wrapping stage and the DQMC engine can move blocks
around without re-deriving them.

:class:`AdjacencyOps` caches one LU factorisation per ``B`` block so a
column sweep pays the factorisation once.
"""

from __future__ import annotations

import numpy as np

from . import _kernels as kr
from .pcyclic import BlockPCyclic, torus_index

__all__ = ["AdjacencyOps"]


class AdjacencyOps:
    """Boundary-aware neighbour moves on blocks of ``G = M^{-1}``.

    Parameters
    ----------
    pc:
        The block p-cyclic matrix whose inverse is being navigated.

    Notes
    -----
    ``up``/``right`` require solves with a ``B`` block; LU factors are
    cached per block index (and shared across threads — the cache is
    filled under a plain dict set, which is atomic in CPython; a
    redundant factorisation in a race is harmless).
    """

    def __init__(self, pc: BlockPCyclic):
        self.pc = pc
        self._lu: dict[int, kr.LUFactors] = {}
        self._lu_t: dict[int, kr.LUFactors] = {}

    # -- factor caches ---------------------------------------------------
    def _factor(self, i: int) -> kr.LUFactors:
        i = torus_index(i, self.pc.L)
        f = self._lu.get(i)
        if f is None:
            f = self._lu[i] = kr.lu_factor(self.pc.block(i))
        return f

    def _factor_t(self, i: int) -> kr.LUFactors:
        """LU of ``B_i^T`` for right-solves ``X B_i^{-1}``."""
        i = torus_index(i, self.pc.L)
        f = self._lu_t.get(i)
        if f is None:
            f = self._lu_t[i] = kr.lu_factor(
                np.ascontiguousarray(self.pc.block(i).T)
            )
        return f

    # -- the four moves ---------------------------------------------------
    def up(self, G_kl: np.ndarray, k: int, l: int) -> np.ndarray:
        """``G_{k-1,l}`` from ``G_kl`` (Eq. (4) with boundary cases).

        General: ``B_k^{-1} G_kl``; subtract ``I`` first when ``k == l``
        (move starts on the diagonal); negate when ``k == 1`` (the move
        crosses the torus seam through the corner block ``B_1``).
        """
        L = self.pc.L
        k = torus_index(k, L)
        l = torus_index(l, L)
        S = G_kl
        if k == l:
            S = S.copy()
            kr.add_identity(S, -1.0)
        out = self._factor(k).solve(S)
        return -out if k == 1 else out

    def down(self, G_kl: np.ndarray, k: int, l: int) -> np.ndarray:
        """``G_{k+1,l}`` from ``G_kl`` (Eq. (5) with boundary cases).

        General: ``B_{k+1} G_kl``; negate when the move lands on row 1
        (seam); add ``I`` when it lands on the diagonal (``k+1 == l``).
        """
        L = self.pc.L
        k = torus_index(k, L)
        l = torus_index(l, L)
        kp = torus_index(k + 1, L)
        out = kr.gemm(self.pc.block(kp), G_kl)
        if kp == 1:
            out = -out
        if kp == l:
            kr.add_identity(out)
        return out

    def left(self, G_kl: np.ndarray, k: int, l: int) -> np.ndarray:
        """``G_{k,l-1}`` from ``G_kl`` (Eq. (6) with boundary cases).

        General: ``G_kl B_l``; negate when the move crosses the seam
        (``l == 1`` so the target column is ``L``); add ``I`` when it
        lands on the diagonal (``k == l-1``).
        """
        L = self.pc.L
        k = torus_index(k, L)
        l = torus_index(l, L)
        lm = torus_index(l - 1, L)
        out = kr.gemm(G_kl, self.pc.block(l))
        if l == 1:
            out = -out
        if k == lm:
            kr.add_identity(out)
        return out

    def right(self, G_kl: np.ndarray, k: int, l: int) -> np.ndarray:
        """``G_{k,l+1}`` from ``G_kl`` (Eq. (7) with boundary cases).

        General: ``G_kl B_{l+1}^{-1}``; subtract ``I`` first when the
        move starts on the diagonal (``k == l``); negate when it crosses
        the seam (target column 1).
        """
        L = self.pc.L
        k = torus_index(k, L)
        l = torus_index(l, L)
        lp = torus_index(l + 1, L)
        S = G_kl
        if k == l:
            S = S.copy()
            kr.add_identity(S, -1.0)
        # X B^{-1}  ==  solve(B^T, X^T)^T
        out = self._factor_t(lp).solve(np.ascontiguousarray(S.T)).T
        return -out if lp == 1 else out

    # -- composed diagonal moves -------------------------------------------
    def down_right(self, G_kl: np.ndarray, k: int, l: int) -> np.ndarray:
        """``G_{k+1,l+1}`` (used to walk the diagonal downward)."""
        kp = torus_index(k + 1, self.pc.L)
        return self.right(self.down(G_kl, k, l), kp, l)

    def up_left(self, G_kl: np.ndarray, k: int, l: int) -> np.ndarray:
        """``G_{k-1,l-1}`` (used to walk the diagonal upward)."""
        km = torus_index(k - 1, self.pc.L)
        return self.left(self.up(G_kl, k, l), km, l)
