"""Instrumented dense linear-algebra kernels.

All core algorithms (CLS, BSOFI, WRP, baselines) perform their matrix
arithmetic through these wrappers so that

* flop counts flow into the active :class:`repro.perf.tracer.FlopTracer`
  (the evaluation section reports per-stage flop rates), and
* the flop-counting conventions are defined in exactly one place.

Conventions (the standard dense counts the paper uses):

* gemm ``C = A @ B`` with ``A (m, k)``, ``B (k, n)``: ``2 m k n`` flops;
* LU factorisation of ``n x n``: ``2/3 n^3``;
* triangular solve with ``m`` right-hand sides: ``m n^2`` per triangle
  (LU solve with both triangles: ``2 m n^2``);
* Householder QR of ``m x n`` (``m >= n``): ``2 n^2 (m - n/3)``;
* forming the full ``m x m`` Q: ``4/3 m^3`` (loose, adequate for rates).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..perf.tracer import record_flops

__all__ = [
    "gemm",
    "gemm_into",
    "batched_gemm",
    "add_identity",
    "lu_factor",
    "lu_solve",
    "solve",
    "solve_right",
    "qr_full",
    "triangular_inverse",
    "LUFactors",
]


def gemm(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``A @ B`` with flop accounting."""
    m, k = A.shape
    n = B.shape[1]
    record_flops(2.0 * m * k * n, (A.nbytes + B.nbytes) + 8.0 * m * n)
    return A @ B


def gemm_into(out: np.ndarray, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``out[:] = A @ B`` without allocating a result array."""
    m, k = A.shape
    n = B.shape[1]
    record_flops(2.0 * m * k * n, (A.nbytes + B.nbytes) + 8.0 * m * n)
    np.matmul(A, B, out=out)
    return out


def batched_gemm(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Broadcasted ``A @ B`` over leading batch dimensions, counted."""
    out = np.matmul(A, B)
    m, n = out.shape[-2], out.shape[-1]
    k = A.shape[-1]
    batch = int(np.prod(out.shape[:-2], dtype=np.int64)) if out.ndim > 2 else 1
    record_flops(2.0 * batch * m * k * n, A.nbytes + B.nbytes + out.nbytes)
    return out


def add_identity(A: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """In-place ``A += alpha * I`` (cheap; O(n) flops, not counted)."""
    idx = np.arange(min(A.shape))
    A[idx, idx] += alpha
    return A


class LUFactors:
    """Pivoted LU factors of a square matrix, reusable for many solves."""

    __slots__ = ("lu", "piv", "n")

    def __init__(self, A: np.ndarray):
        self.n = A.shape[0]
        record_flops(2.0 / 3.0 * self.n**3, A.nbytes)
        self.lu, self.piv = sla.lu_factor(A, check_finite=False)

    def solve(self, B: np.ndarray, trans: int = 0) -> np.ndarray:
        """Solve ``A X = B`` (or ``A^T X = B`` when ``trans=1``)."""
        nrhs = 1 if B.ndim == 1 else B.shape[1]
        record_flops(2.0 * nrhs * self.n**2, B.nbytes)
        return sla.lu_solve((self.lu, self.piv), B, trans=trans, check_finite=False)


def lu_factor(A: np.ndarray) -> LUFactors:
    """Factor ``A`` once; solve many times via :meth:`LUFactors.solve`."""
    return LUFactors(A)


def lu_solve(factors: LUFactors, B: np.ndarray) -> np.ndarray:
    return factors.solve(B)


def solve(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """One-shot ``A^{-1} B`` (factor + solve, both counted)."""
    return LUFactors(A).solve(B)


def solve_right(B: np.ndarray, A: np.ndarray) -> np.ndarray:
    """One-shot ``B A^{-1}`` = ``(A^{-T} B^T)^T``."""
    return LUFactors(np.ascontiguousarray(A.T)).solve(B.T).T


def qr_full(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Householder QR with explicit full ``Q`` (used by BSOFI panels)."""
    m, n = A.shape
    record_flops(2.0 * n * n * (m - n / 3.0) + 4.0 / 3.0 * m**3, A.nbytes)
    return sla.qr(A, mode="full", check_finite=False)


def triangular_inverse(R: np.ndarray, lower: bool = False) -> np.ndarray:
    """Inverse of a triangular matrix (``n^3 / 3`` flops)."""
    n = R.shape[0]
    record_flops(n**3 / 3.0, R.nbytes)
    eye = np.eye(n, dtype=R.dtype)
    return sla.solve_triangular(R, eye, lower=lower, check_finite=False)
