"""BSOFI — block structured orthogonal factorisation inversion.

The second stage of FSI computes the *full* inverse ``G~ = M~^{-1}`` of
the reduced ``b``-block p-cyclic matrix by the structured QR method of
Gogolenko, Bai & Scalettar (Euro-Par 2014, the paper's ref. [27]),
reimplemented here from the structure:

1. **Structured QR** ``M~ = Q R``: for ``i = 1 .. b-1`` a Householder
   QR of the stacked ``2N x N`` panel ``[X_i; -B_{i+1}]`` annihilates
   the sub-diagonal block; applying ``Q_i^T`` to the two remaining
   nonzero columns in rows ``(i, i+1)`` creates the super-diagonal block
   ``R_{i,i+1}``, propagates fill down the last block column (the corner
   block ``B_1`` smears into ``R_{i,b}``), and produces the next active
   diagonal ``X_{i+1}``.  A final ``N x N`` QR triangularises ``X_b``.
   Only ``2N x N`` panels are ever factorised — never the ``(bN)^2``
   matrix — which is the point of the method.
(For complex matrices every ``Q^T`` below is the conjugate transpose
``Q^H`` — the implementation is dtype-generic.)

2. **Structured back-substitution** for ``R^{-1}``: row ``i`` of ``R``
   has nonzeros only at ``(i,i)``, ``(i,i+1)`` and ``(i,b)``, so the
   full upper-triangular ``R^{-1}`` costs one triangular inversion plus
   at most two gemms per block.
3. **Apply** ``Q^T`` from the right: ``G~ = R^{-1} Q_b^T Q_{b-1}^T ...
   Q_1^T``, each factor a ``2N``-column block rotation.

Orthogonal transforms keep the factorisation backward stable even for
the ill-conditioned products that CLS produces at low temperature —
this is why the paper pairs CLS with BSOFI instead of an LU inversion
(see ``benchmarks/exp_a2_bsofi_stability.py``).

Total cost is ``~7 b^2 N^3`` flops (:func:`bsofi_flops`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..telemetry import runtime as _telemetry
from . import _kernels as kr
from .pcyclic import BlockPCyclic

__all__ = ["bsofi", "bsofi_qr", "StructuredQR", "bsofi_flops"]


@dataclass
class StructuredQR:
    """The structured factors ``M~ = Q R``.

    Attributes
    ----------
    Rd:
        Diagonal blocks ``R_ii`` (upper triangular), shape ``(b, N, N)``.
    Ru:
        Super-diagonal blocks ``R_{i,i+1}``, shape ``(b-1, N, N)``.
    Rc:
        Last-column fill ``R_{i,b}`` for ``i <= b-3`` (0-based rows
        ``0 .. b-3``), shape ``(max(b-2, 0), N, N)``.  For row ``b-2``
        the super-diagonal *is* the last column and lives in ``Ru``.
    Q:
        Panel factors ``Q_i`` (each ``2N x 2N``), shape ``(b-1, 2N, 2N)``.
    Qf:
        Final ``N x N`` factor triangularising the last diagonal.
    """

    Rd: np.ndarray
    Ru: np.ndarray
    Rc: np.ndarray
    Q: np.ndarray
    Qf: np.ndarray

    @property
    def b(self) -> int:
        return self.Rd.shape[0]

    @property
    def N(self) -> int:
        return self.Rd.shape[1]

    def to_dense_r(self) -> np.ndarray:
        """Materialise ``R`` densely (tests/diagnostics)."""
        b, N = self.b, self.N
        R = np.zeros((b * N, b * N))
        for i in range(b):
            R[i * N : (i + 1) * N, i * N : (i + 1) * N] = self.Rd[i]
        for i in range(b - 1):
            R[i * N : (i + 1) * N, (i + 1) * N : (i + 2) * N] = self.Ru[i]
        for i in range(max(b - 2, 0)):
            R[i * N : (i + 1) * N, (b - 1) * N :] = self.Rc[i]
        return R

    def to_dense_q(self) -> np.ndarray:
        """Materialise ``Q = Q_1 Q_2 ... Q_{b-1} Q_b`` densely (tests)."""
        b, N = self.b, self.N
        Qfull = np.eye(b * N)
        for i in range(b - 1):
            E = np.eye(b * N)
            E[i * N : (i + 2) * N, i * N : (i + 2) * N] = self.Q[i]
            Qfull = Qfull @ E
        E = np.eye(b * N)
        E[(b - 1) * N :, (b - 1) * N :] = self.Qf
        return Qfull @ E


def bsofi_qr(pc: BlockPCyclic) -> StructuredQR:
    """Structured QR factorisation of a block p-cyclic matrix.

    ``pc`` is typically the CLS-reduced matrix (``b`` blocks); the
    factorisation never forms the dense matrix.
    """
    b, N = pc.L, pc.N
    if b < 2:
        raise ValueError("bsofi_qr needs at least 2 block rows; use bsofi()")
    dtype = pc.dtype
    Rd = np.empty((b, N, N), dtype=dtype)
    Ru = np.empty((b - 1, N, N), dtype=dtype)
    Rc = np.empty((max(b - 2, 0), N, N), dtype=dtype)
    Q = np.empty((b - 1, 2 * N, 2 * N), dtype=dtype)

    X = np.eye(N, dtype=dtype)          # active diagonal block
    C = np.array(pc.block(1), copy=True)  # last-column fill (starts as B_1)
    panel = np.empty((2 * N, N), dtype=dtype)
    for i in range(b - 1):
        panel[:N] = X
        np.negative(pc.block(i + 2), out=panel[N:])  # -B_{i+2} (1-based)
        Qi, Rfull = kr.qr_full(panel)
        Q[i] = Qi
        Rd[i] = Rfull[:N]
        QiT = Qi.conj().T
        if i < b - 2:
            # Trailing columns: (i+1) holding [0; I] and the last column
            # holding [C; 0].
            T1 = QiT[:, N:]  # == Qi^T @ [0; I]
            Ru[i] = T1[:N]
            X = np.ascontiguousarray(T1[N:])
            T2 = kr.gemm(QiT[:, :N], C)  # == Qi^T @ [C; 0]
            Rc[i] = T2[:N]
            C = T2[N:]
        else:
            # i == b-2: the trailing column *is* the last column, holding
            # [C; I] (fill above, diagonal below).
            T = kr.gemm(QiT[:, :N], C)
            T[:N] += QiT[:N, N:]
            T[N:] += QiT[N:, N:]
            Ru[i] = T[:N]
            X = np.ascontiguousarray(T[N:])
    Qf, Rlast = kr.qr_full(X)
    Rd[b - 1] = Rlast
    return StructuredQR(Rd=Rd, Ru=Ru, Rc=Rc, Q=Q, Qf=Qf)


def _r_inverse(f: StructuredQR) -> np.ndarray:
    """``R^{-1}`` as a ``(b, b, N, N)`` block array (upper triangular fill)."""
    b, N = f.b, f.N
    X = np.zeros((b, b, N, N), dtype=f.Rd.dtype)
    Tinv = [kr.triangular_inverse(f.Rd[i]) for i in range(b)]
    for j in range(b):
        X[j, j] = Tinv[j]
    # Last column, bottom-up: rows i <= b-3 see both Ru and Rc fill.
    for i in range(b - 2, -1, -1):
        acc = kr.gemm(f.Ru[i], X[i + 1, b - 1])
        if i < b - 2:
            acc += kr.gemm(f.Rc[i], X[b - 1, b - 1])
        X[i, b - 1] = -kr.gemm(Tinv[i], acc)
    # Interior columns: only the super-diagonal couples rows.
    for j in range(b - 2, 0, -1):
        for i in range(j - 1, -1, -1):
            X[i, j] = -kr.gemm(Tinv[i], kr.gemm(f.Ru[i], X[i + 1, j]))
    return X


def _apply_qt(G: np.ndarray, f: StructuredQR) -> np.ndarray:
    """``G @ Q^T`` in place of the block array ``G`` (``(b, b, N, N)``)."""
    b, N = f.b, f.N
    # Final factor first: G[:, b-1] <- G[:, b-1] @ Qf^H.
    G[:, b - 1] = kr.batched_gemm(G[:, b - 1], f.Qf.conj().T)
    # Then the panel factors in reverse: columns (i, i+1) rotate together.
    for i in range(b - 2, -1, -1):
        W = np.concatenate((G[:, i], G[:, i + 1]), axis=2)  # (b, N, 2N)
        W = kr.batched_gemm(W, f.Q[i].conj().T)
        G[:, i] = W[:, :, :N]
        G[:, i + 1] = W[:, :, N:]
    return G


def bsofi(pc: BlockPCyclic) -> np.ndarray:
    """Full inverse of a block p-cyclic matrix via structured QR.

    Returns the blocks of ``G~ = M~^{-1}`` as a ``(b, b, N, N)`` array
    (``G[k0-1, l0-1]`` is the 1-based block ``G~_{k0, l0}``).
    """
    if pc.L == 1:
        # Degenerate single-block matrix: M = I + B_1.
        A = np.array(pc.block(1), copy=True)
        kr.add_identity(A)
        G = kr.solve(A, np.eye(pc.N, dtype=pc.dtype))
        return G[None, None]
    with _telemetry.span("bsofi.qr", b=pc.L, N=pc.N):
        f = bsofi_qr(pc)
    with _telemetry.span("bsofi.rinv"):
        G = _r_inverse(f)
    with _telemetry.span("bsofi.applyqt"):
        return _apply_qt(G, f)


def bsofi_flops(b: int, N: int) -> float:
    """Closed-form BSOFI cost ``7 b^2 N^3`` (Sec. II-C)."""
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    return 7.0 * b * b * N**3
