"""Wrapping arbitrary block sets — beyond the four canonical patterns.

Applications sometimes need a handful of specific blocks of ``G``
(e.g. the ``(k, l)`` pairs of one temporal distance, or a scattered
query set) rather than whole rows/columns.  The FSI machinery supports
this directly: every requested block is grown from the **nearest seed**
of the ``b x b`` grid by a shortest walk of adjacency moves —
vertical moves first (Eq. (4)/(5)), then horizontal (Eq. (6)/(7)) —
at one gemm-or-solve per step, at most ``~c`` steps total.

:func:`wrap_blocks` returns a plain dict (the requested set need not
match a :class:`~repro.core.patterns.Selection` shape).  Walks from the
same seed share their vertical prefix via memoisation, so requesting a
dense cluster of blocks costs little more than its bounding segment.
"""

from __future__ import annotations

import numpy as np

from .adjacency import AdjacencyOps
from .patterns import seed_indices
from .pcyclic import BlockPCyclic, torus_index

__all__ = ["wrap_blocks", "nearest_seed", "torus_distance"]


def torus_distance(a: int, b: int, L: int) -> int:
    """Signed shortest displacement ``b -> a`` on the 1-based torus.

    Returns ``d`` with ``-L/2 < d <= L/2`` and
    ``a == torus_index(b + d, L)``; a tie (distance exactly ``L/2``)
    resolves to the positive direction.
    """
    d = (a - b) % L
    if d > L - d:
        d -= L
    return d


def nearest_seed(k: int, l: int, L: int, c: int, q: int) -> tuple[int, int]:
    """The seed-grid index ``(k0, l0)`` (1-based) nearest to block ``(k, l)``.

    Nearness is the walk length ``|dk| + |dl|`` on the torus from the
    seed ``(c k0 - q, c l0 - q)``.
    """
    seeds = seed_indices(L, c, q)

    def best(x: int) -> int:
        return min(
            range(1, len(seeds) + 1),
            key=lambda i0: abs(torus_distance(x, seeds[i0 - 1], L)),
        )

    return best(k), best(l)


def wrap_blocks(
    pc: BlockPCyclic,
    G_seeds: np.ndarray,
    c: int,
    q: int,
    blocks: list[tuple[int, int]],
    ops: AdjacencyOps | None = None,
) -> dict[tuple[int, int], np.ndarray]:
    """Compute an arbitrary set of blocks of ``G`` from the seed grid.

    Parameters
    ----------
    pc:
        The original (un-reduced) block p-cyclic matrix.
    G_seeds:
        The ``(b, b, N, N)`` reduced inverse (e.g. ``FSIResult.seeds``).
    c, q:
        The geometry the seeds were produced with.
    blocks:
        Requested 1-based ``(k, l)`` positions (torus-wrapped).
    ops:
        Optional shared :class:`AdjacencyOps` (reuses LU caches).

    Returns
    -------
    dict
        ``{(k, l): G_kl}`` for every requested position.
    """
    L, N = pc.L, pc.N
    b = L // c
    if G_seeds.shape != (b, b, N, N):
        raise ValueError(
            f"seed grid shape {G_seeds.shape} != expected {(b, b, N, N)}"
        )
    seeds = seed_indices(L, c, q)
    if ops is None:
        ops = AdjacencyOps(pc)

    # Memoised walk state: known blocks by (k, l).
    known: dict[tuple[int, int], np.ndarray] = {}
    for k0 in range(1, b + 1):
        for l0 in range(1, b + 1):
            known[(seeds[k0 - 1], seeds[l0 - 1])] = G_seeds[k0 - 1, l0 - 1]

    out: dict[tuple[int, int], np.ndarray] = {}
    for k_raw, l_raw in blocks:
        k = torus_index(k_raw, L)
        l = torus_index(l_raw, L)
        if (k, l) in known:
            out[(k, l)] = known[(k, l)]
            continue
        k0, l0 = nearest_seed(k, l, L, c, q)
        sk, sl = seeds[k0 - 1], seeds[l0 - 1]
        dk = torus_distance(k, sk, L)
        dl = torus_distance(l, sl, L)
        # Vertical leg first (memoised: shared by all blocks in the
        # same column cluster), then horizontal.
        ck, cl = sk, sl
        g = known[(ck, cl)]
        for _ in range(abs(dk)):
            nxt_k = torus_index(ck + (1 if dk > 0 else -1), L)
            if (nxt_k, cl) in known:
                g = known[(nxt_k, cl)]
            else:
                g = ops.down(g, ck, cl) if dk > 0 else ops.up(g, ck, cl)
                known[(nxt_k, cl)] = g
            ck = nxt_k
        for _ in range(abs(dl)):
            nxt_l = torus_index(cl + (1 if dl > 0 else -1), L)
            if (ck, nxt_l) in known:
                g = known[(ck, nxt_l)]
            else:
                g = ops.right(g, ck, cl) if dl > 0 else ops.left(g, ck, cl)
                known[(ck, nxt_l)] = g
            cl = nxt_l
        out[(k, l)] = g
    return out
