"""Baselines the paper compares FSI against.

* :func:`full_lu_inverse` — the "MKL" baseline of Sec. V-A/V-B: form
  the dense ``(NL) x (NL)`` matrix and invert it with LAPACK
  (``DGETRF`` + ``DGETRI``).  Exact, but ``O((NL)^3)`` flops and
  ``O((NL)^2)`` memory — the memory wall is what motivates selected
  inversion in the first place.
* :func:`lu_selected_inversion` — the same baseline restricted to a
  selection (invert fully, keep the selected blocks), which is how a
  plain-LAPACK DQMC code obtains off-diagonal blocks.
* The *explicit form* baseline (compute the selection directly from
  Eq. (3)) lives in :func:`repro.core.greens_explicit.explicit_selected_columns`.

All baselines route through the instrumented kernels so their flop
counts land on the active tracer under the stage label ``"lu"``.
"""

from __future__ import annotations

import numpy as np

from ..perf.tracer import current_tracers
from . import _kernels as kr
from .patterns import SelectedInversion, Selection
from .pcyclic import BlockPCyclic

__all__ = [
    "full_lu_inverse",
    "lu_selected_inversion",
    "dense_block",
    "full_lu_flops",
]


def _staged(name: str):
    tracers = current_tracers()
    if tracers:
        return tracers[-1].stage(name)
    import contextlib

    return contextlib.nullcontext()


def full_lu_inverse(pc: BlockPCyclic) -> np.ndarray:
    """Dense ``G = M^{-1}`` via pivoted LU (the DGETRF/DGETRI baseline)."""
    with _staged("lu"):
        M = pc.to_dense()
        n = M.shape[0]
        f = kr.lu_factor(M)
        # DGETRI cost dominates; kernels count the n^2-rhs solve.
        G = f.solve(np.eye(n, dtype=pc.dtype))
    return G


def dense_block(G: np.ndarray, k: int, l: int, N: int) -> np.ndarray:
    """Extract 1-based block ``(k, l)`` from a dense block matrix."""
    return G[(k - 1) * N : k * N, (l - 1) * N : l * N]


def lu_selected_inversion(
    pc: BlockPCyclic, selection: Selection
) -> SelectedInversion:
    """Selected inversion by full dense LU then extraction.

    Matches FSI output bit-for-bit in *shape*; used as the oracle in the
    correctness validation (Sec. V-A) and as the memory-hungry baseline
    in the benchmarks.
    """
    G = full_lu_inverse(pc)
    N = pc.N
    blocks = {
        (k, l): np.ascontiguousarray(dense_block(G, k, l, N))
        for (k, l) in selection.block_indices()
    }
    return SelectedInversion(selection, blocks, N)


def full_lu_flops(L: int, N: int) -> float:
    """``DGETRF + DGETRI`` cost ``~2 (NL)^3`` flops."""
    n = N * L
    return 2.0 * float(n) ** 3
