"""Numerical-stability analysis for the cluster size ``c``.

The paper (Sec. II-C, citing Bai et al. [26]) notes that the cluster
size trades reduction against precision: each clustered block is a
product of ``c`` slice matrices whose singular-value spread grows
exponentially with ``c`` (for Hubbard matrices, like ``e^{~c dtau U}``
and worse at low temperature), so a large ``c`` loses digits in CLS.
The recommendation is ``c ~ sqrt(L)``.

This module quantifies that trade-off for a given matrix:

* :func:`cluster_condition_growth` — the conditioning of the clustered
  blocks as a function of ``c``;
* :func:`fsi_accuracy_sweep` — end-to-end selected-inversion error
  versus ``c`` against a dense-LU oracle;
* :func:`recommend_c` — the largest divisor of ``L`` not exceeding
  ``round(sqrt(L))`` (the paper's usual choice, e.g. ``c = 10`` for
  ``L = 100``).

``benchmarks/exp_a1_cluster_size.py`` turns these into the ablation
table promised in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .baselines import full_lu_inverse
from .cls import cls
from .fsi import fsi
from .patterns import Pattern
from .pcyclic import BlockPCyclic

__all__ = [
    "divisors",
    "recommend_c",
    "cluster_condition_growth",
    "fsi_accuracy_sweep",
    "AccuracyPoint",
]


def divisors(L: int) -> list[int]:
    """All positive divisors of ``L``, ascending."""
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    small, large = [], []
    d = 1
    while d * d <= L:
        if L % d == 0:
            small.append(d)
            if d != L // d:
                large.append(L // d)
        d += 1
    return small + large[::-1]


def recommend_c(L: int) -> int:
    """The paper's rule of thumb: largest divisor of ``L`` with ``c <= sqrt(L)``.

    (For ``L = 100`` this gives ``c = 10``, matching every experiment in
    Sec. V.)
    """
    best = 1
    for d in divisors(L):
        if d * d <= L:
            best = d
    return best


def cluster_condition_growth(
    pc: BlockPCyclic, c_values: list[int] | None = None
) -> dict[int, float]:
    """Worst 2-norm condition number of the clustered blocks, per ``c``.

    Uses ``q = 0`` throughout (the offset permutes which slices land in
    which cluster but not the growth rate).
    """
    if c_values is None:
        c_values = [c for c in divisors(pc.L) if c < pc.L]
    out: dict[int, float] = {}
    for c in c_values:
        if pc.L % c != 0:
            raise ValueError(f"c={c} does not divide L={pc.L}")
        red = cls(pc, c, q=0, num_threads=1)
        out[c] = float(max(np.linalg.cond(red.B[i]) for i in range(red.L)))
    return out


@dataclass(frozen=True)
class AccuracyPoint:
    """One point of the accuracy-vs-``c`` sweep."""

    c: int
    b: int
    max_rel_error: float
    worst_cluster_cond: float
    fsi_flops: float


def fsi_accuracy_sweep(
    pc: BlockPCyclic,
    c_values: list[int] | None = None,
    pattern: Pattern = Pattern.COLUMNS,
    q: int = 0,
) -> list[AccuracyPoint]:
    """End-to-end FSI error vs. cluster size against a dense-LU oracle.

    The oracle is computed once; each ``c`` runs the full
    CLS -> BSOFI -> WRP pipeline.  Suitable for moderate sizes (the
    oracle is dense).
    """
    from .flops import fsi_table_flops

    if c_values is None:
        c_values = [c for c in divisors(pc.L) if 1 < c < pc.L]
    G_dense = full_lu_inverse(pc)
    cond = cluster_condition_growth(pc, c_values)
    points = []
    for c in c_values:
        res = fsi(pc, c, pattern=pattern, q=min(q, c - 1), num_threads=1)
        points.append(
            AccuracyPoint(
                c=c,
                b=pc.L // c,
                max_rel_error=res.selected.max_relative_error(G_dense),
                worst_cluster_cond=cond[c],
                fsi_flops=fsi_table_flops(pc.L, pc.N, c, pattern),
            )
        )
    return points
