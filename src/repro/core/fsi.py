"""The FSI driver (Alg. 1): ``CLS -> BSOFI -> WRP``.

:func:`fsi` is the library's headline entry point — it computes a
selected inversion of a block p-cyclic matrix in
``O((2(c-1) + 7b) b N^3)`` to ``O(3 b L N^3)`` flops depending on the
pattern, versus ``O(b L^2 N^3)`` for the explicit form and
``O((NL)^3)`` for a full dense inversion.

Stages are tagged ``"cls"``, ``"bsofi"`` and ``"wrp"`` on the active
:class:`~repro.perf.tracer.FlopTracer` so per-stage rates (Fig. 8 top)
can be reconstructed from real runs.

:func:`fsi_resilient` wraps :func:`fsi` with the numerical health
guards of :mod:`repro.resilience.guards` and an adaptive fallback
ladder: a guard trip retries with a halved cluster factor
``c -> c/2 -> ... -> 1`` (pure BSOFI; each rung better conditioned,
each slower) and, last, the UDT-stabilized path from
:mod:`repro.dqmc.stabilize`.  The rung that served the result is
recorded on :attr:`FSIResult.rung` and the
``repro_fsi_fallback_total`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perf.tracer import current_tracers
from ..resilience import chaos as _chaos
from ..resilience import guards as _guards
from ..resilience.guards import GuardConfig, GuardReport, NumericalHealthError
from ..telemetry import runtime as _telemetry
from .adjacency import AdjacencyOps
from .bsofi import bsofi, bsofi_flops
from .cls import cls, cls_flops
from .patterns import Pattern, SelectedInversion, Selection
from .pcyclic import BlockPCyclic
from .wrap import wrap, wrap_flops

__all__ = ["fsi", "fsi_resilient", "fsi_flops", "FSIResult", "fallback_rungs"]


@dataclass
class FSIResult:
    """Selected inversion plus the intermediates some callers reuse.

    Attributes
    ----------
    selected:
        The requested :class:`SelectedInversion`.
    seeds:
        The ``(b, b, N, N)`` inverse of the reduced matrix (every block
        an exact block of ``G``) — DQMC measurement code often wants
        these *in addition* to the wrapped pattern.
    selection:
        Pattern + geometry actually used (includes the drawn ``q``).
    ops:
        The adjacency operator with its LU caches, reusable for further
        wrapping on the same matrix.
    rung:
        Which solve path produced the result: ``"direct"`` for the
        requested cluster factor, ``"c=<n>"`` for a fallback rung of
        the ladder, ``"udt"`` for the stabilized last resort (which
        produces no seeds).
    health:
        Guard observations for the serving attempt (``None`` when the
        guards were off).
    """

    selected: SelectedInversion
    seeds: np.ndarray
    selection: Selection
    ops: AdjacencyOps
    rung: str = "direct"
    health: GuardReport | None = field(default=None, compare=False)


def fsi(
    pc: BlockPCyclic,
    c: int,
    pattern: Pattern = Pattern.COLUMNS,
    q: int | None = None,
    rng: np.random.Generator | int | None = None,
    num_threads: int | None = None,
    guards: GuardConfig | None = None,
) -> FSIResult:
    """Fast selected inversion of a block p-cyclic matrix (Alg. 1).

    Parameters
    ----------
    pc:
        The normalized block p-cyclic matrix ``M`` (e.g. a Hubbard
        matrix from :mod:`repro.hubbard`).
    c:
        Cluster size (must divide ``L``).  The paper recommends
        ``c ~ sqrt(L)``; larger ``c`` reduces more but loses precision.
    pattern:
        Which blocks of ``G = M^{-1}`` to produce (S1-S4 or
        FULL_DIAGONAL).
    q:
        Offset in ``{0..c-1}``; drawn uniformly when ``None`` (the
        paper randomises ``q`` per Green's function so measurements
        sample block offsets uniformly).
    rng:
        Source of randomness for ``q``.
    num_threads:
        OpenMP-style team size for the CLS and WRP loops.
    guards:
        When given, run the :mod:`repro.resilience.guards` battery on
        inputs and stage outputs; a trip raises
        :class:`~repro.resilience.guards.NumericalHealthError` (use
        :func:`fsi_resilient` to retry down the fallback ladder
        instead).

    Returns
    -------
    FSIResult
    """
    L = pc.L
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    if q is None:
        q = int(np.random.default_rng(rng).integers(0, c))
    selection = Selection(pattern, L=L, c=c, q=q)
    report = GuardReport() if guards is not None else None

    tracers = current_tracers()
    tracer = tracers[-1] if tracers else None

    def staged(name: str):
        if tracer is not None:
            return tracer.stage(name)
        import contextlib

        return contextlib.nullcontext()

    if guards is not None and guards.screen_input:
        _guards.screen_finite("input", pc.B, report=report)

    with _telemetry.span(
        "fsi", L=L, N=pc.N, c=c, q=q, pattern=pattern.name
    ):
        with _telemetry.span("cls"), staged("cls"):
            reduced = cls(pc, c, q, num_threads=num_threads)
        if _chaos.is_active():
            corrupted = _chaos.corrupt_array("cls.output", reduced.B)
            if corrupted is not None:
                reduced = BlockPCyclic(corrupted)
        if guards is not None:
            if guards.screen_stages:
                _guards.screen_finite("cls", reduced.B, report=report)
            if guards.condition_samples:
                _guards.check_cluster_conditions(reduced.B, guards, report)
        with _telemetry.span("bsofi"), staged("bsofi"):
            seeds = bsofi(reduced)
        if guards is not None:
            if guards.screen_stages:
                _guards.screen_finite("bsofi", seeds, report=report)
            if guards.residual_samples:
                _guards.check_seed_residual(reduced.B, seeds, guards, report)
        ops = AdjacencyOps(pc)
        with _telemetry.span("wrp", pattern=pattern.name), staged("wrp"):
            selected = wrap(
                pc, seeds, selection, num_threads=num_threads, ops=ops
            )
        if guards is not None and guards.screen_stages:
            blocks = [selected[kl] for kl in selected]
            picked = _guards.sample_indices(
                len(blocks), guards.result_screen_samples
            )
            _guards.screen_finite(
                "result", *(blocks[i] for i in picked), report=report
            )
    return FSIResult(
        selected=selected, seeds=seeds, selection=selection, ops=ops,
        health=report,
    )


def fallback_rungs(c: int) -> list[int]:
    """The ladder ``c -> c/2 -> ... -> 1`` restricted to divisors of ``c``.

    Each rung is the largest divisor of ``c`` no bigger than half the
    previous rung, ending at 1 (pure BSOFI).  Rungs divide ``c`` (hence
    ``L``), which keeps ``q % rung`` in the same residue class: the
    finer selection is a superset of the requested one for every
    pattern, so fallback results can be filtered down exactly.
    """
    if c < 1:
        raise ValueError(f"c={c} must be positive")
    rungs = [c]
    cur = c
    while cur > 1:
        cur = max(d for d in range(1, cur // 2 + 1) if c % d == 0)
        rungs.append(cur)
    return rungs


def _count_rung(rung: str) -> None:
    _telemetry.registry().counter(
        "repro_fsi_fallback_total",
        "FSI solves by serving rung (direct / fallback c / udt)",
        labels=("rung",),
    ).labels(rung=rung).inc()


def fsi_resilient(
    pc: BlockPCyclic,
    c: int,
    pattern: Pattern = Pattern.COLUMNS,
    q: int | None = None,
    rng: np.random.Generator | int | None = None,
    num_threads: int | None = None,
    guards: GuardConfig | None = None,
) -> FSIResult:
    """:func:`fsi` with guards and the adaptive fallback ladder.

    Runs the guarded solve at the requested cluster factor; on a
    :class:`~repro.resilience.guards.NumericalHealthError` retries down
    the ladder ``c -> c/2 -> ... -> 1`` (smaller clustered products are
    exponentially better conditioned, Sec. II-A) and finally — for the
    diagonal patterns — the UDT-stabilized equal-time path from
    :mod:`repro.dqmc.stabilize`.  Every rung serves the *requested*
    selection: finer-rung results are filtered down to it.

    The serving rung lands on :attr:`FSIResult.rung` and the
    ``repro_fsi_fallback_total{rung=...}`` counter; if every rung
    trips, the last :class:`NumericalHealthError` propagates.
    """
    if guards is None:
        guards = GuardConfig()
    L = pc.L
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    if q is None:
        q = int(np.random.default_rng(rng).integers(0, c))
    requested = Selection(pattern, L=L, c=c, q=q)

    last_err: NumericalHealthError | None = None
    for cur in fallback_rungs(c):
        rung = "direct" if cur == c else f"c={cur}"
        try:
            result = fsi(
                pc, cur, pattern, q=q % cur, num_threads=num_threads,
                guards=guards,
            )
        except NumericalHealthError as err:
            last_err = err
            continue
        if cur != c:
            blocks = {
                kl: result.selected[kl] for kl in requested.block_indices()
            }
            # The finer rung produced a (b', b', N, N) seed grid over
            # its own index set I' ⊃ I; served seeds must be indexed by
            # the *served* selection, so slice the grid down to the
            # rows/columns of the requested seed set.
            finer = result.selection.seeds
            pos = [finer.index(s) for s in requested.seeds]
            result = FSIResult(
                selected=SelectedInversion(requested, blocks, pc.N),
                seeds=np.ascontiguousarray(result.seeds[np.ix_(pos, pos)]),
                selection=requested,
                ops=result.ops,
                health=result.health,
            )
        result.rung = rung
        _count_rung(rung)
        return result

    # Last resort: the UDT-stabilized equal-time path.  It only knows
    # how to build diagonal blocks, so other patterns re-raise.
    assert last_err is not None
    if pattern not in (Pattern.DIAGONAL, Pattern.FULL_DIAGONAL):
        raise last_err
    from ..dqmc.stabilize import stable_equal_time

    report = GuardReport()
    with _telemetry.span("fsi_udt", L=L, N=pc.N, pattern=pattern.name):
        blocks = {
            (k, l): stable_equal_time(pc, k)
            for k, l in requested.block_indices()
        }
    _guards.screen_finite("udt", *blocks.values(), report=report)
    result = FSIResult(
        selected=SelectedInversion(requested, blocks, pc.N),
        seeds=np.empty((0, 0, pc.N, pc.N), dtype=pc.B.dtype),
        selection=requested,
        ops=AdjacencyOps(pc),
        rung="udt",
        health=report,
    )
    _count_rung("udt")
    return result


def fsi_flops(L: int, N: int, c: int, pattern: Pattern) -> float:
    """Closed-form FSI cost for a pattern (the Sec. II-C table).

    ``CLS + BSOFI + WRP``:

    * S1 diagonals:      ``[2(c-1) + 7b] b N^3``
    * S2 sub-diagonals:  ``[2c + 7b] b N^3`` (one extra move per seed)
    * S3/S4 cols/rows:   ``2b(c-1)N^3 + 7b^2 N^3 + 3(bL - b^2) N^3``
      (the paper's table keeps only the dominant ``3 b^2 c N^3`` term)
    """
    base = cls_flops(L, N, c) + bsofi_flops(L // c, N)
    return base + wrap_flops(L, N, c, pattern)
