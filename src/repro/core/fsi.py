"""The FSI driver (Alg. 1): ``CLS -> BSOFI -> WRP``.

:func:`fsi` is the library's headline entry point — it computes a
selected inversion of a block p-cyclic matrix in
``O((2(c-1) + 7b) b N^3)`` to ``O(3 b L N^3)`` flops depending on the
pattern, versus ``O(b L^2 N^3)`` for the explicit form and
``O((NL)^3)`` for a full dense inversion.

Stages are tagged ``"cls"``, ``"bsofi"`` and ``"wrp"`` on the active
:class:`~repro.perf.tracer.FlopTracer` so per-stage rates (Fig. 8 top)
can be reconstructed from real runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.tracer import current_tracers
from ..telemetry import runtime as _telemetry
from .adjacency import AdjacencyOps
from .bsofi import bsofi, bsofi_flops
from .cls import cls, cls_flops
from .patterns import Pattern, SelectedInversion, Selection
from .pcyclic import BlockPCyclic
from .wrap import wrap, wrap_flops

__all__ = ["fsi", "fsi_flops", "FSIResult"]


@dataclass
class FSIResult:
    """Selected inversion plus the intermediates some callers reuse.

    Attributes
    ----------
    selected:
        The requested :class:`SelectedInversion`.
    seeds:
        The ``(b, b, N, N)`` inverse of the reduced matrix (every block
        an exact block of ``G``) — DQMC measurement code often wants
        these *in addition* to the wrapped pattern.
    selection:
        Pattern + geometry actually used (includes the drawn ``q``).
    ops:
        The adjacency operator with its LU caches, reusable for further
        wrapping on the same matrix.
    """

    selected: SelectedInversion
    seeds: np.ndarray
    selection: Selection
    ops: AdjacencyOps


def fsi(
    pc: BlockPCyclic,
    c: int,
    pattern: Pattern = Pattern.COLUMNS,
    q: int | None = None,
    rng: np.random.Generator | int | None = None,
    num_threads: int | None = None,
) -> FSIResult:
    """Fast selected inversion of a block p-cyclic matrix (Alg. 1).

    Parameters
    ----------
    pc:
        The normalized block p-cyclic matrix ``M`` (e.g. a Hubbard
        matrix from :mod:`repro.hubbard`).
    c:
        Cluster size (must divide ``L``).  The paper recommends
        ``c ~ sqrt(L)``; larger ``c`` reduces more but loses precision.
    pattern:
        Which blocks of ``G = M^{-1}`` to produce (S1-S4 or
        FULL_DIAGONAL).
    q:
        Offset in ``{0..c-1}``; drawn uniformly when ``None`` (the
        paper randomises ``q`` per Green's function so measurements
        sample block offsets uniformly).
    rng:
        Source of randomness for ``q``.
    num_threads:
        OpenMP-style team size for the CLS and WRP loops.

    Returns
    -------
    FSIResult
    """
    L = pc.L
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    if q is None:
        q = int(np.random.default_rng(rng).integers(0, c))
    selection = Selection(pattern, L=L, c=c, q=q)

    tracers = current_tracers()
    tracer = tracers[-1] if tracers else None

    def staged(name: str):
        if tracer is not None:
            return tracer.stage(name)
        import contextlib

        return contextlib.nullcontext()

    with _telemetry.span(
        "fsi", L=L, N=pc.N, c=c, q=q, pattern=pattern.name
    ):
        with _telemetry.span("cls"), staged("cls"):
            reduced = cls(pc, c, q, num_threads=num_threads)
        with _telemetry.span("bsofi"), staged("bsofi"):
            seeds = bsofi(reduced)
        ops = AdjacencyOps(pc)
        with _telemetry.span("wrp", pattern=pattern.name), staged("wrp"):
            selected = wrap(
                pc, seeds, selection, num_threads=num_threads, ops=ops
            )
    return FSIResult(selected=selected, seeds=seeds, selection=selection, ops=ops)


def fsi_flops(L: int, N: int, c: int, pattern: Pattern) -> float:
    """Closed-form FSI cost for a pattern (the Sec. II-C table).

    ``CLS + BSOFI + WRP``:

    * S1 diagonals:      ``[2(c-1) + 7b] b N^3``
    * S2 sub-diagonals:  ``[2c + 7b] b N^3`` (one extra move per seed)
    * S3/S4 cols/rows:   ``2b(c-1)N^3 + 7b^2 N^3 + 3(bL - b^2) N^3``
      (the paper's table keeps only the dominant ``3 b^2 c N^3`` term)
    """
    base = cls_flops(L, N, c) + bsofi_flops(L // c, N)
    return base + wrap_flops(L, N, c, pattern)
