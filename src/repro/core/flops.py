"""Closed-form complexity accounting (the two tables of Sec. II).

Two tables are reproduced verbatim:

* **Sec. II-B** — number of selected blocks per pattern and the memory
  reduction factor versus storing the full ``L x L`` block inverse;
* **Sec. II-C** — flop counts of the explicit form (Eq. (3)) versus FSI
  for the four patterns::

      pattern          explicit        FSI
      b diagonals      2 b^2 c N^3     [2(c-1) + 7b] b N^3
      b-1 sub-diag.    4 b^2 c N^3     [2c + 7b] b N^3
      b cols/rows      b^3 c^2 N^3     3 b^2 c N^3

These formulas drive the modeled experiments and are cross-checked
against measured kernel flop counts in the tests (the measured counts
include lower-order factorisation terms the paper drops, so agreement
is asserted up to those terms).
"""

from __future__ import annotations

from dataclasses import dataclass

from .patterns import Pattern, Selection

__all__ = [
    "explicit_form_flops",
    "fsi_table_flops",
    "ComplexityRow",
    "complexity_table",
    "pattern_count_table",
]


def explicit_form_flops(L: int, N: int, c: int, pattern: Pattern) -> float:
    """Explicit-form (Eq. (3)) cost per the Sec. II-C table."""
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    b = L // c
    n3 = float(N) ** 3
    if pattern in (Pattern.DIAGONAL,):
        return 2.0 * b * b * c * n3
    if pattern is Pattern.SUBDIAGONAL:
        return 4.0 * b * b * c * n3
    if pattern in (Pattern.COLUMNS, Pattern.ROWS):
        return float(b) ** 3 * c * c * n3
    if pattern is Pattern.FULL_DIAGONAL:
        # One W_k product + solve per slice: ~2 L^2 N^3.
        return 2.0 * L * L * n3
    raise ValueError(f"unhandled pattern {pattern}")


def fsi_table_flops(L: int, N: int, c: int, pattern: Pattern) -> float:
    """FSI cost per the Sec. II-C table (leading terms only)."""
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    b = L // c
    n3 = float(N) ** 3
    if pattern is Pattern.DIAGONAL:
        return (2.0 * (c - 1) + 7.0 * b) * b * n3
    if pattern is Pattern.SUBDIAGONAL:
        return (2.0 * c + 7.0 * b) * b * n3
    if pattern in (Pattern.COLUMNS, Pattern.ROWS):
        return 3.0 * b * b * c * n3
    if pattern is Pattern.FULL_DIAGONAL:
        return (2.0 * (c - 1) + 7.0 * b) * b * n3 + 6.0 * (L - b) * n3
    raise ValueError(f"unhandled pattern {pattern}")


@dataclass(frozen=True)
class ComplexityRow:
    """One row of the Sec. II-C comparison table."""

    pattern: Pattern
    explicit_flops: float
    fsi_flops: float

    @property
    def speedup(self) -> float:
        """Flop-count ratio explicit / FSI (e.g. ``bc/3`` for columns)."""
        return self.explicit_flops / self.fsi_flops


def complexity_table(L: int, N: int, c: int) -> list[ComplexityRow]:
    """The full Sec. II-C table for a given geometry."""
    return [
        ComplexityRow(
            p,
            explicit_form_flops(L, N, c, p),
            fsi_table_flops(L, N, c, p),
        )
        for p in (
            Pattern.DIAGONAL,
            Pattern.SUBDIAGONAL,
            Pattern.COLUMNS,
            Pattern.ROWS,
        )
    ]


def pattern_count_table(L: int, c: int, q: int = 1) -> list[dict[str, object]]:
    """The Sec. II-B table: blocks selected + reduction factor per pattern."""
    rows = []
    for p in (
        Pattern.DIAGONAL,
        Pattern.SUBDIAGONAL,
        Pattern.COLUMNS,
        Pattern.ROWS,
    ):
        sel = Selection(p, L=L, c=c, q=q)
        rows.append(
            {
                "pattern": p.value,
                "blocks": sel.count(),
                "reduction": sel.reduction_factor(),
            }
        )
    return rows
