"""CLS — factor-of-``c`` block cyclic reduction (clustering).

The first stage of FSI (Alg. 1): replace the ``L`` blocks ``B_j`` of
``M`` by ``b = L/c`` clustered products

    ``B~_i = B_{j0} B_{j0-1} ... B_{j0-c+1}``,   ``j0 = c*i - q``

(indices wrapped onto the torus, ``j <= 0  ->  j + L``), producing the
*reduced* block p-cyclic matrix ``M~`` whose inverse blocks are exact
blocks of the original Green's function:

    ``G~_{k0,l0} = G_{c*k0-q, c*l0-q}``    (Eq. (8)).

Cost: ``c - 1`` gemms per cluster, i.e. ``2 b (c-1) N^3`` flops total.
Clusters are data-independent — the paper assigns one OpenMP thread per
cluster; :func:`cls` does the same through
:func:`repro.parallel.openmp.parallel_for`.

The cluster size trades reduction against accuracy: products of many
``B`` blocks lose precision (the blocks' singular values spread
exponentially with ``c`` for low-temperature Hubbard matrices), so the
paper recommends ``c ~ sqrt(L)``.  :mod:`repro.core.stability` measures
this trade-off.
"""

from __future__ import annotations

import numpy as np

from ..parallel.openmp import parallel_for
from ..telemetry import runtime as _telemetry
from . import _kernels as kr
from .pcyclic import BlockPCyclic, torus_index

__all__ = ["cls", "cluster_product", "cls_flops"]


def cluster_product(pc: BlockPCyclic, i: int, c: int, q: int) -> np.ndarray:
    """One clustered block ``B~_i = B_{j0} B_{j0-1} ... B_{j0-c+1}``.

    ``i`` is the 1-based cluster index, ``j0 = c*i - q``; factors are
    accumulated left-to-right (``((B_{j0} B_{j0-1}) B_{j0-2}) ...``)
    which keeps each partial product a single gemm with a fresh block.
    """
    j0 = c * i - q
    P = np.array(pc.block(j0), copy=True)
    for step in range(1, c):
        P = kr.gemm(P, pc.block(torus_index(j0 - step, pc.L)))
    return P


def cls(
    pc: BlockPCyclic,
    c: int,
    q: int,
    num_threads: int | None = None,
) -> BlockPCyclic:
    """Factor-of-``c`` block cyclic reduction of ``pc``.

    Parameters
    ----------
    pc:
        The normalized block p-cyclic matrix ``M`` (``L`` blocks).
    c:
        Cluster size; must divide ``L``.  ``c = 1`` returns a copy-free
        view (``q`` must then be 0).
    q:
        Offset in ``{0, ..., c-1}`` selecting which blocks of ``G`` the
        reduced inverse will expose (Eq. (8)); randomised by the FSI
        driver per Green's function.
    num_threads:
        OpenMP-style team size for the cluster loop (``None`` = default
        team; ``1`` = serial).

    Returns
    -------
    BlockPCyclic
        The reduced matrix ``M~`` with ``b = L/c`` blocks.
    """
    L, N = pc.L, pc.N
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    if not 0 <= q <= c - 1:
        raise ValueError(f"q={q} must lie in [0, {c - 1}]")
    if c == 1:
        return pc
    b = L // c
    out = np.empty((b, N, N), dtype=pc.dtype)

    def body(i0: int) -> None:
        out[i0] = cluster_product(pc, i0 + 1, c, q)

    with _telemetry.span("cls.reduce", b=b, c=c, q=q):
        parallel_for(body, b, num_threads=num_threads)
    return BlockPCyclic(out)


def cls_flops(L: int, N: int, c: int) -> float:
    """Closed-form CLS cost ``2 b (c-1) N^3`` (Sec. II-C)."""
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    b = L // c
    return 2.0 * b * (c - 1) * N**3
