"""Selection patterns S1-S4 and the selected-inversion container.

Sec. II-B defines four patterns over the block index set

    ``I = {c - q, 2c - q, ..., bc - q}``,  ``b = L / c``,
    ``q`` uniform in ``{0, ..., c-1}``

(``q`` randomised per Green's function so that, across a Monte Carlo
run, every block offset is sampled uniformly):

* **S1** — ``b`` diagonal blocks ``{G_kk : k in I}``;
* **S2** — sub-diagonal blocks ``{G_{k,k+1} : k in I - {L}}``
  (``b`` blocks when ``q != 0``, else ``b - 1``);
* **S3** — ``b`` block columns ``{G_kl : 1 <= k <= L, l in I}``;
* **S4** — ``b`` block rows ``{G_kl : k in I, 1 <= l <= L}``.

We additionally provide **FULL_DIAGONAL** (every ``G_kk``), which the
DQMC equal-time measurements consume (Sec. V-C computes "all diagonal
blocks, b block rows and b block columns").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Mapping

import numpy as np

from .pcyclic import torus_index

__all__ = ["Pattern", "Selection", "SelectedInversion", "seed_indices"]


class Pattern(Enum):
    """The selected-inversion shapes of Sec. II-B."""

    DIAGONAL = "diagonal"          # S1
    SUBDIAGONAL = "subdiagonal"    # S2
    COLUMNS = "columns"            # S3
    ROWS = "rows"                  # S4
    FULL_DIAGONAL = "full_diagonal"  # every diagonal block (DQMC equal-time)


def seed_indices(L: int, c: int, q: int) -> list[int]:
    """The index set ``I = {c-q, 2c-q, ..., bc-q}`` (1-based, ascending).

    ``c`` must divide ``L`` and ``0 <= q <= c-1``.
    """
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    if not 0 <= q <= c - 1:
        raise ValueError(f"q={q} must lie in [0, {c - 1}]")
    b = L // c
    return [c * i - q for i in range(1, b + 1)]


@dataclass(frozen=True)
class Selection:
    """A fully specified selection: pattern + geometry ``(L, c, q)``."""

    pattern: Pattern
    L: int
    c: int
    q: int

    def __post_init__(self) -> None:
        seed_indices(self.L, self.c, self.q)  # validates L, c, q

    @property
    def b(self) -> int:
        return self.L // self.c

    @property
    def seeds(self) -> list[int]:
        """The index set ``I``."""
        return seed_indices(self.L, self.c, self.q)

    # ------------------------------------------------------------------
    def block_indices(self) -> list[tuple[int, int]]:
        """All ``(k, l)`` block positions in this selection (1-based)."""
        I = self.seeds
        L = self.L
        p = self.pattern
        if p is Pattern.DIAGONAL:
            return [(k, k) for k in I]
        if p is Pattern.SUBDIAGONAL:
            return [(k, k + 1) for k in I if k != L]
        if p is Pattern.COLUMNS:
            return [(k, l) for l in I for k in range(1, L + 1)]
        if p is Pattern.ROWS:
            return [(k, l) for k in I for l in range(1, L + 1)]
        if p is Pattern.FULL_DIAGONAL:
            return [(k, k) for k in range(1, L + 1)]
        raise AssertionError(f"unhandled pattern {p}")  # pragma: no cover

    def count(self) -> int:
        """Number of selected blocks (the Sec. II-B table)."""
        b, L = self.b, self.L
        p = self.pattern
        if p is Pattern.DIAGONAL:
            return b
        if p is Pattern.SUBDIAGONAL:
            return b if self.q != 0 else b - 1
        if p in (Pattern.COLUMNS, Pattern.ROWS):
            return b * L
        if p is Pattern.FULL_DIAGONAL:
            return L
        raise AssertionError(f"unhandled pattern {p}")  # pragma: no cover

    def reduction_factor(self) -> float:
        """Memory reduction vs. storing all ``L^2`` blocks of ``G``.

        Matches the Sec. II-B table: ``cL`` for S1/S2, ``c`` for S3/S4.
        """
        return self.L**2 / self.count()


class SelectedInversion:
    """Computed selected blocks of ``G``, keyed by 1-based ``(k, l)``.

    A thin mapping with pattern-aware accessors; blocks are the arrays
    produced by the solver (not copies).
    """

    def __init__(
        self,
        selection: Selection,
        blocks: Mapping[tuple[int, int], np.ndarray],
        N: int,
    ):
        self.selection = selection
        self.N = N
        expected = set(selection.block_indices())
        got = set(blocks)
        if got != expected:
            missing = sorted(expected - got)[:5]
            extra = sorted(got - expected)[:5]
            raise ValueError(
                f"block set does not match pattern: missing {missing},"
                f" unexpected {extra}"
            )
        self._blocks = dict(blocks)

    # -- mapping interface --------------------------------------------
    def __getitem__(self, kl: tuple[int, int]) -> np.ndarray:
        k, l = kl
        L = self.selection.L
        return self._blocks[(torus_index(k, L), torus_index(l, L))]

    def __contains__(self, kl: tuple[int, int]) -> bool:
        k, l = kl
        L = self.selection.L
        return (torus_index(k, L), torus_index(l, L)) in self._blocks

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def items(self):
        return self._blocks.items()

    # -- structured accessors -------------------------------------------
    def column(self, l: int) -> np.ndarray:
        """Stacked block column ``l`` as ``(L, N, N)`` (COLUMNS pattern)."""
        L = self.selection.L
        l = torus_index(l, L)
        return np.stack([self._blocks[(k, l)] for k in range(1, L + 1)])

    def row(self, k: int) -> np.ndarray:
        """Stacked block row ``k`` as ``(L, N, N)`` (ROWS pattern)."""
        L = self.selection.L
        k = torus_index(k, L)
        return np.stack([self._blocks[(k, l)] for l in range(1, L + 1)])

    def diagonal_blocks(self) -> dict[int, np.ndarray]:
        """All selected diagonal blocks ``{k: G_kk}``."""
        return {k: v for (k, l), v in self._blocks.items() if k == l}

    def memory_bytes(self) -> int:
        return sum(v.nbytes for v in self._blocks.values())

    # -- verification ------------------------------------------------------
    def max_relative_error(self, G_dense: np.ndarray) -> float:
        """Worst blockwise relative Frobenius error vs. a dense oracle.

        ``G_dense`` is the full ``(N*L, N*L)`` inverse; mirrors the
        validation metric of Sec. V-A.
        """
        N = self.N
        worst = 0.0
        for (k, l), blk in self._blocks.items():
            ref = G_dense[(k - 1) * N : k * N, (l - 1) * N : l * N]
            denom = np.linalg.norm(ref)
            err = np.linalg.norm(blk - ref) / (denom if denom > 0 else 1.0)
            worst = max(worst, float(err))
        return worst

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.selection
        return (
            f"SelectedInversion({s.pattern.value}, L={s.L}, c={s.c}, q={s.q},"
            f" blocks={len(self)})"
        )

    # -- persistence -------------------------------------------------------
    def save(self, path) -> None:
        """Serialise to a single ``.npz`` (pattern, geometry, blocks).

        Measurement pipelines often compute selected inversions on one
        allocation and analyse them on another; this is the wire format.
        """
        keys = sorted(self._blocks)
        stacked = np.stack([self._blocks[kl] for kl in keys])
        np.savez_compressed(
            path,
            pattern=np.frombuffer(
                self.selection.pattern.value.encode(), dtype=np.uint8
            ),
            geometry=np.array(
                [self.selection.L, self.selection.c, self.selection.q, self.N]
            ),
            keys=np.array(keys, dtype=np.int64),
            blocks=stacked,
        )

    @classmethod
    def load(cls, path) -> "SelectedInversion":
        """Rebuild a :meth:`save`d selected inversion."""
        data = np.load(path)
        pattern = Pattern(bytes(data["pattern"]).decode())
        L, c, q, N = (int(v) for v in data["geometry"])
        selection = Selection(pattern, L=L, c=c, q=q)
        keys = [tuple(int(v) for v in row) for row in data["keys"]]
        blocks = {kl: blk for kl, blk in zip(keys, data["blocks"])}
        return cls(selection, blocks, N)
