"""WRP — the wrapping stage of FSI (Alg. 2).

CLS + BSOFI leave us with the ``b x b`` seed grid
``G~_{k0,l0} = G_{c*k0-q, c*l0-q}`` (Eq. (8)).  Wrapping grows each seed
into its ``c - 1`` missing neighbours with the adjacency relations of
Eqs. (4)-(7) until the requested selection pattern is covered:

* **COLUMNS** (S3): each seed expands *vertically*; following Alg. 2 the
  walk is split into an upward half (``ceil((c-1)/2)`` solves, Eq. (4))
  and a downward half (``floor((c-1)/2)`` gemms, Eq. (5)) so that no
  block is more than ``~c/2`` relation-applications away from an exact
  seed — this bounds the accumulated floating-point error, which is the
  stated reason the paper splits the loop.
* **ROWS** (S4): the transpose walk — leftward gemms (Eq. (6)) and
  rightward solves (Eq. (7)).
* **DIAGONAL** (S1) / **SUBDIAGONAL** (S2): the seeds *are* the
  diagonal selection; the sub-diagonal follows with one rightward move
  per seed.
* **FULL_DIAGONAL**: every ``G_kk``; each diagonal seed walks along the
  diagonal (composed moves, Sec. II-A last paragraph:
  ``G_{k+1,l+1} = B_{k+1} G_kl B_{l+1}^{-1}``), again split up/down.

Note on loop bounds: Alg. 2 as printed walks ``ceil((c-1)/2)`` up and
``ceil(c/2)`` down, which for even ``c`` recomputes one block that the
next seed also produces.  We use ``ceil((c-1)/2)`` up / ``floor((c-1)/2)``
down — the same error radius, exact tiling, no duplicates.

The ``b^2`` seed walks are data-independent; like the paper we hand one
walk per OpenMP-style task (``parallel_for`` over seeds).
"""

from __future__ import annotations

import numpy as np

from ..parallel.openmp import parallel_for
from ..telemetry import runtime as _telemetry
from .adjacency import AdjacencyOps
from .patterns import Pattern, SelectedInversion, Selection
from .pcyclic import BlockPCyclic, torus_index

__all__ = ["wrap", "wrap_flops"]


def _up_down_steps(c: int) -> tuple[int, int]:
    """Split the ``c - 1`` neighbour moves into (up, down) halves."""
    up = (c - 1 + 1) // 2  # ceil((c-1)/2)
    return up, (c - 1) - up


def wrap(
    pc: BlockPCyclic,
    G_seeds: np.ndarray,
    selection: Selection,
    num_threads: int | None = None,
    ops: AdjacencyOps | None = None,
) -> SelectedInversion:
    """Grow the seed grid into the requested selected inversion.

    Parameters
    ----------
    pc:
        The *original* (un-reduced) block p-cyclic matrix; wrapping
        moves use its ``B`` blocks.
    G_seeds:
        The ``(b, b, N, N)`` output of :func:`repro.core.bsofi.bsofi`
        on the CLS-reduced matrix.
    selection:
        Pattern + ``(L, c, q)`` geometry.  Must be consistent with the
        seed grid shape (``b = L / c``).
    num_threads:
        Team size for the seed loop.
    ops:
        Optional pre-built :class:`AdjacencyOps` (shares LU caches
        across calls for the same matrix).

    Returns
    -------
    SelectedInversion
    """
    L, N = pc.L, pc.N
    c, q = selection.c, selection.q
    b = L // c
    if selection.L != L:
        raise ValueError(f"selection L={selection.L} != matrix L={L}")
    if G_seeds.shape != (b, b, N, N):
        raise ValueError(
            f"seed grid shape {G_seeds.shape} != expected {(b, b, N, N)}"
        )
    if ops is None:
        ops = AdjacencyOps(pc)
    out: dict[tuple[int, int], np.ndarray] = {}
    seeds = selection.seeds  # [c-q, 2c-q, ..., bc-q]

    pattern = selection.pattern
    if pattern is Pattern.DIAGONAL:
        for k0, k in enumerate(seeds, start=1):
            out[(k, k)] = np.array(G_seeds[k0 - 1, k0 - 1], copy=True)
        return SelectedInversion(selection, out, N)

    if pattern is Pattern.SUBDIAGONAL:
        # One rightward move from each diagonal seed (skip k = L, whose
        # "sub-diagonal" would be the corner).
        results: list[tuple[int, np.ndarray] | None] = [None] * b
        todo = [
            (k0, k) for k0, k in enumerate(seeds, start=1) if k != L
        ]

        def sub_body(idx: int) -> None:
            k0, k = todo[idx]
            g = ops.right(G_seeds[k0 - 1, k0 - 1], k, k)
            results[idx] = (k, g)

        with _telemetry.span("wrp.subdiagonal", seeds=len(todo)):
            parallel_for(sub_body, len(todo), num_threads=num_threads)
        for item in results[: len(todo)]:
            assert item is not None
            k, g = item
            out[(k, torus_index(k + 1, L))] = g
        return SelectedInversion(selection, out, N)

    up_steps, down_steps = _up_down_steps(c)

    if pattern in (Pattern.COLUMNS, Pattern.ROWS):
        # b^2 independent seed walks, each producing c-1 blocks.
        tasks = [
            (k0, l0) for k0 in range(1, b + 1) for l0 in range(1, b + 1)
        ]
        chunks: list[dict[tuple[int, int], np.ndarray]] = [
            {} for _ in tasks
        ]

        def walk_body(idx: int) -> None:
            k0, l0 = tasks[idx]
            local = chunks[idx]
            k, l = c * k0 - q, c * l0 - q
            seed = G_seeds[k0 - 1, l0 - 1]
            local[(k, l)] = np.array(seed, copy=True)
            if pattern is Pattern.COLUMNS:
                g, kk = seed, k
                for _ in range(up_steps):  # Eq. (4), solves
                    g = ops.up(g, kk, l)
                    kk = torus_index(kk - 1, L)
                    local[(kk, l)] = g
                g, kk = seed, k
                for _ in range(down_steps):  # Eq. (5), gemms
                    g = ops.down(g, kk, l)
                    kk = torus_index(kk + 1, L)
                    local[(kk, l)] = g
            else:  # ROWS: expand horizontally
                g, ll = seed, l
                for _ in range(up_steps):  # Eq. (6), gemms (leftward)
                    g = ops.left(g, k, ll)
                    ll = torus_index(ll - 1, L)
                    local[(k, ll)] = g
                g, ll = seed, l
                for _ in range(down_steps):  # Eq. (7), solves (rightward)
                    g = ops.right(g, k, ll)
                    ll = torus_index(ll + 1, L)
                    local[(k, ll)] = g

        with _telemetry.span(
            "wrp.walks", seeds=len(tasks), pattern=pattern.name
        ):
            parallel_for(walk_body, len(tasks), num_threads=num_threads)
        for local in chunks:
            out.update(local)
        return SelectedInversion(selection, out, N)

    if pattern is Pattern.FULL_DIAGONAL:
        chunks = [{} for _ in range(b)]

        def diag_body(i0: int) -> None:
            k0 = i0 + 1
            local = chunks[i0]
            k = c * k0 - q
            seed = G_seeds[k0 - 1, k0 - 1]
            local[(k, k)] = np.array(seed, copy=True)
            g, kk = seed, k
            for _ in range(up_steps):
                g = ops.up_left(g, kk, kk)
                kk = torus_index(kk - 1, L)
                local[(kk, kk)] = g
            g, kk = seed, k
            for _ in range(down_steps):
                g = ops.down_right(g, kk, kk)
                kk = torus_index(kk + 1, L)
                local[(kk, kk)] = g

        with _telemetry.span("wrp.full_diagonal", seeds=b):
            parallel_for(diag_body, b, num_threads=num_threads)
        for local in chunks:
            out.update(local)
        return SelectedInversion(selection, out, N)

    raise AssertionError(f"unhandled pattern {pattern}")  # pragma: no cover


def wrap_flops(L: int, N: int, c: int, pattern: Pattern) -> float:
    """Closed-form wrapping cost (Sec. II-C).

    ``b`` block columns/rows need ``bL - b^2`` new blocks at ~``3 N^3``
    each (one gemm or one LU solve per block); the diagonal patterns
    need at most one move per seed.
    """
    if c < 1 or L % c != 0:
        raise ValueError(f"c={c} must be a positive divisor of L={L}")
    b = L // c
    if pattern is Pattern.DIAGONAL:
        return 0.0
    if pattern is Pattern.SUBDIAGONAL:
        return 3.0 * b * N**3
    if pattern in (Pattern.COLUMNS, Pattern.ROWS):
        return 3.0 * (b * L - b * b) * N**3
    if pattern is Pattern.FULL_DIAGONAL:
        return 2.0 * 3.0 * (L - b) * N**3  # two moves per new diagonal block
    raise ValueError(f"unhandled pattern {pattern}")
