"""Hierarchical spans: the tracing half of :mod:`repro.telemetry`.

A :class:`Span` is one timed region of one thread of one process —
"this rank ran CLS from t0 to t1 with these attributes".  Spans form a
tree through parent ids and share a trace id, so one service request
stitches into a single trace even though its spans are recorded by the
scheduler thread, the dispatcher thread, a worker process and several
SimMPI rank threads.

Finished spans become plain-dict *records* (picklable, JSON-able) and
land in a :class:`TraceCollector`; the exporters
(:mod:`repro.telemetry.exporters`) consume records, never live spans.
Wall-clock times are ``time.time()`` epoch seconds — the only clock
that is meaningful across process boundaries.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from .context import SpanContext, current_context, new_span_id, new_trace_id, use_context

__all__ = ["Span", "Tracer", "TraceCollector", "NULL_SPAN"]


class Span:
    """One timed, attributed region of execution.

    Create through :class:`Tracer` (never directly); end exactly once.
    ``set_attribute`` may be called from any thread until the span ends.
    """

    __slots__ = (
        "name",
        "context",
        "parent_id",
        "start_time",
        "end_time",
        "attributes",
        "pid",
        "tid",
        "thread_name",
        "_collector",
    )

    def __init__(
        self,
        name: str,
        context: SpanContext,
        parent_id: str | None,
        collector: "TraceCollector | None",
        attributes: dict[str, Any],
    ):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.start_time = time.time()
        self.end_time: float | None = None
        self.attributes = attributes
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.thread_name = threading.current_thread().name
        self._collector = collector

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def end(self) -> None:
        """Finish the span; idempotent.  Sampled spans are collected."""
        if self.end_time is not None:
            return
        self.end_time = time.time()
        if self.context.sampled and self._collector is not None:
            self._collector.add(self.record())

    def record(self) -> dict:
        """The span as a flat, picklable record."""
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "pid": self.pid,
            "tid": self.tid,
            "thread_name": self.thread_name,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end_time is None else "ended"
        return (
            f"Span({self.name!r}, trace={self.context.trace_id[:8]},"
            f" id={self.context.span_id}, {state})"
        )


class _NullSpan:
    """Shared no-op span: the entire cost of tracing when disabled.

    Usable everywhere a :class:`Span` is — as a context manager, as a
    ``set_attribute``/``end`` target — so instrumented code never
    branches on whether telemetry is on.
    """

    __slots__ = ()
    context = None
    parent_id = None
    name = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def end(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class TraceCollector:
    """Bounded, thread-safe buffer of finished span records.

    The global collector receives spans from every thread of the
    process plus the re-parented records shipped back from worker
    processes; exporters read it via :meth:`snapshot` or :meth:`drain`.
    """

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._records: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    def add(self, record: dict) -> None:
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(record)

    def add_many(self, records: list[dict]) -> None:
        with self._lock:
            for record in records:
                if len(self._records) == self._records.maxlen:
                    self.dropped += 1
                self._records.append(record)

    def snapshot(self) -> list[dict]:
        """A copy of everything collected so far (oldest first)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> list[dict]:
        """Remove and return everything collected so far."""
        with self._lock:
            out = list(self._records)
            self._records.clear()
            return out

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def traces(self) -> dict[str, list[dict]]:
        """Records grouped by trace id (each group in arrival order)."""
        out: dict[str, list[dict]] = {}
        for record in self.snapshot():
            out.setdefault(record["trace_id"], []).append(record)
        return out


#: Sentinel distinguishing "use the ambient context" from an explicit
#: ``parent=None`` (which forces a new trace root).
_AMBIENT = object()


class Tracer:
    """Creates spans and applies the head-based sampling decision.

    ``sample_rate`` is the probability that a *new trace* (a span with
    no parent) is recorded.  Child spans never re-draw: they inherit
    the root's decision through the propagated context, so traces are
    all-or-nothing.
    """

    def __init__(
        self,
        collector: TraceCollector,
        sample_rate: float = 1.0,
        seed: int | None = None,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.collector = collector
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)

    def _sample_root(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    def start_span(
        self,
        name: str,
        parent: Any = _AMBIENT,
        **attributes: Any,
    ) -> Span:
        """Create (and start) a span without making it ambient.

        ``parent`` may be a :class:`SpanContext`, ``None`` (force a new
        trace root), or omitted (parent to the calling thread's ambient
        context).  The caller owns the span and must call
        :meth:`Span.end`.
        """
        if parent is _AMBIENT:
            parent_ctx = current_context()
        else:
            parent_ctx = parent
        if parent_ctx is None:
            ctx = SpanContext(new_trace_id(), new_span_id(), self._sample_root())
            parent_id = None
        else:
            ctx = SpanContext(
                parent_ctx.trace_id, new_span_id(), parent_ctx.sampled
            )
            parent_id = parent_ctx.span_id
        return Span(name, ctx, parent_id, self.collector, attributes)

    @contextmanager
    def span(
        self,
        name: str,
        parent: Any = _AMBIENT,
        **attributes: Any,
    ) -> Iterator[Span]:
        """Context-managed span that is ambient inside its block."""
        sp = self.start_span(name, parent=parent, **attributes)
        with use_context(sp.context):
            try:
                yield sp
            finally:
                sp.end()
