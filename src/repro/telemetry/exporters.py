"""Exporters: Chrome trace-event JSON, Prometheus text, JSONL spans.

Three consumers, three formats:

* **Chrome trace events** — load the file in ``chrome://tracing`` or
  https://ui.perfetto.dev to see a request's lifetime as nested bars
  per process/thread (scheduler thread, worker process, SimMPI rank
  threads each get a lane);
* **Prometheus text exposition** — the ``serve`` CLI serves it over
  HTTP (``--metrics-port``) or writes it to a file
  (``--metrics-file``); histograms are rendered as summaries
  (quantiles + ``_sum``/``_count``);
* **JSONL** — one JSON object per finished span, with trace/span ids,
  for structured-log pipelines.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Callable, Iterable

from .metrics import MetricRegistry
from .spans import TraceCollector

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_to_jsonl",
    "write_jsonl",
    "prometheus_text",
    "MetricsServer",
]


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------

def chrome_trace_events(records: Iterable[dict]) -> list[dict]:
    """Convert span records to Chrome trace-event dicts (``ph: "X"``).

    Timestamps become microseconds since the earliest span so traces
    open at t=0; per-(pid, tid) metadata events name the lanes after
    the recording threads.
    """
    records = list(records)
    if not records:
        return []
    t0 = min(r["start_time"] for r in records)
    events: list[dict] = []
    seen_threads: set[tuple[int, int]] = set()
    for r in records:
        end = r.get("end_time") or r["start_time"]
        args = {
            "trace_id": r["trace_id"],
            "span_id": r["span_id"],
            "parent_id": r.get("parent_id"),
        }
        args.update(r.get("attributes") or {})
        events.append(
            {
                "name": r["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (r["start_time"] - t0) * 1e6,
                "dur": max(0.0, (end - r["start_time"]) * 1e6),
                "pid": r["pid"],
                "tid": r["tid"],
                "args": args,
            }
        )
        key = (r["pid"], r["tid"])
        if key not in seen_threads:
            seen_threads.add(key)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": r["pid"],
                    "tid": r["tid"],
                    "args": {"name": r.get("thread_name") or f"tid-{r['tid']}"},
                }
            )
    return events


def to_chrome_trace(records: Iterable[dict]) -> dict:
    """The complete Chrome trace JSON object for ``records``."""
    return {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    path: str, records: Iterable[dict] | TraceCollector
) -> int:
    """Write a Chrome trace file; returns the number of spans written."""
    if isinstance(records, TraceCollector):
        records = records.snapshot()
    records = list(records)
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(records), fh)
    return len(records)


# ----------------------------------------------------------------------
# JSONL structured span logs
# ----------------------------------------------------------------------

def spans_to_jsonl(records: Iterable[dict]) -> str:
    """One JSON object per line per span record."""
    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)


def write_jsonl(
    path_or_file: str | IO[str], records: Iterable[dict] | TraceCollector
) -> int:
    """Append span records as JSONL; returns the number written."""
    if isinstance(records, TraceCollector):
        records = records.snapshot()
    records = list(records)
    text = spans_to_jsonl(records)
    if isinstance(path_or_file, str):
        with open(path_or_file, "a") as fh:
            fh.write(text)
    else:
        path_or_file.write(text)
    return len(records)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: tuple[str, ...], values: tuple[str, ...],
               extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    ] + [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(v: float) -> str:
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def prometheus_text(*registries: MetricRegistry) -> str:
    """Render registries in the Prometheus text exposition format.

    Counters and gauges render directly; histograms render as
    summaries (``{quantile="..."}`` series plus ``_sum``/``_count``).
    Later registries win on duplicate family names (the merge case:
    a service registry layered over the process-global one).
    """
    families: dict[str, object] = {}
    for registry in registries:
        for family in registry.families():
            families[family.name] = family

    lines: list[str] = []
    for family in families.values():
        kind = family.kind  # type: ignore[attr-defined]
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "summary"}[kind]
        if family.help:  # type: ignore[attr-defined]
            lines.append(f"# HELP {family.name} {family.help}")  # type: ignore[attr-defined]
        lines.append(f"# TYPE {family.name} {prom_type}")  # type: ignore[attr-defined]
        label_names = family.label_names  # type: ignore[attr-defined]
        sampled = list(family.samples())  # type: ignore[attr-defined]
        if not sampled and not label_names:
            # Materialise the default child so declared-but-untouched
            # metrics still expose a zero sample.
            family.labels()  # type: ignore[attr-defined]
            sampled = list(family.samples())  # type: ignore[attr-defined]
        for values, child in sampled:
            base = _label_str(label_names, values)
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{family.name}{base} {_format_value(child.value)}"  # type: ignore[attr-defined]
                )
            else:  # histogram -> summary
                for q, p in (("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)):
                    qlabels = _label_str(
                        label_names, values, extra=(("quantile", q),)
                    )
                    lines.append(
                        f"{family.name}{qlabels}"  # type: ignore[attr-defined]
                        f" {_format_value(child.percentile(p))}"
                    )
                lines.append(
                    f"{family.name}_sum{base} {_format_value(child.total)}"  # type: ignore[attr-defined]
                )
                lines.append(
                    f"{family.name}_count{base} {_format_value(child.count)}"  # type: ignore[attr-defined]
                )
    return "\n".join(lines) + "\n" if lines else ""


class MetricsServer:
    """A tiny ``/metrics`` (+ optional ``/healthz``) HTTP endpoint.

    Serves the Prometheus text rendering of one or more registries —
    what the ``serve`` CLI binds with ``--metrics-port``.  Pass
    ``port=0`` to bind an ephemeral port (returned by :meth:`start`).

    ``health`` is an optional zero-argument callable returning a
    JSON-serialisable dict with a ``"state"`` key (e.g.
    ``GreensService.health``); when given, ``/healthz`` serves it with
    status 200 for ``healthy``/``degraded`` and 503 for anything else,
    so load balancers can stop routing to a dead service while
    monitoring still scrapes a degraded one.  Telemetry stays ignorant
    of the service layer — it only ever sees the callable.
    """

    def __init__(
        self,
        registries: Iterable[MetricRegistry],
        port: int = 0,
        host: str = "127.0.0.1",
        health: Callable[[], dict] | None = None,
    ):
        self._registries = tuple(registries)
        self._host = host
        self._port = port
        self._health = health
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        registries = self._registries
        health = self._health

        class Handler(BaseHTTPRequestHandler):
            def _reply(self, status: int, body: bytes, ctype: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.rstrip("/")
                if path == "/healthz" and health is not None:
                    payload = health()
                    status = (
                        200 if payload.get("state") in ("healthy", "degraded")
                        else 503
                    )
                    self._reply(
                        status,
                        json.dumps(payload, sort_keys=True).encode(),
                        "application/json",
                    )
                    return
                if path not in ("", "/metrics"):
                    self.send_error(404)
                    return
                self._reply(
                    200,
                    prometheus_text(*registries).encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )

            def log_message(self, *args: object) -> None:  # silence stderr
                pass

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self._httpd.server_address[1]

    @property
    def port(self) -> int | None:
        return self._httpd.server_address[1] if self._httpd else None

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
