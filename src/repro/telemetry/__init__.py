"""Unified tracing & metrics for the FSI reproduction.

The subsystem has three halves:

* **spans** — hierarchical, context-propagated trace spans that survive
  thread fan-out (``parallel_for``), SimMPI rank loops and the service's
  worker processes, so one request is one stitched trace from scheduler
  to CLS/BSOFI/WRP stages;
* **metrics** — a registry of counters/gauges/histograms with labels
  that :class:`repro.service.metrics.ServiceMetrics`,
  :class:`repro.parallel.simmpi.CommStats` and the flop tracer
  re-register into;
* **exporters** — Chrome trace-event JSON, Prometheus text exposition
  (HTTP or file) and JSONL span logs.

Telemetry is **off by default**; instrumented hot paths then cost one
attribute check (see :mod:`benchmarks.bench_telemetry`, which gates
this).  Turn it on with :func:`configure`::

    from repro import telemetry

    telemetry.configure(sample_rate=1.0)
    with telemetry.span("my.phase", n=64):
        ...
    telemetry.collector().snapshot()   # finished span records

See ``docs/telemetry.md`` for the full tour.
"""

from .context import (
    SpanContext,
    current_context,
    new_span_id,
    new_trace_id,
    use_context,
)
from .exporters import (
    MetricsServer,
    chrome_trace_events,
    prometheus_text,
    spans_to_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .flops import FlopTracer, current_tracers, record_flops
from .metrics import Counter, Gauge, Histogram, MetricFamily, MetricRegistry
from .runtime import (
    activate_remote,
    collector,
    configure,
    disable,
    enabled,
    get_tracer,
    inject,
    null_span,
    registry,
    reset,
    span,
    start_span,
)
from .spans import NULL_SPAN, Span, TraceCollector, Tracer

__all__ = [
    # context
    "SpanContext",
    "current_context",
    "use_context",
    "new_trace_id",
    "new_span_id",
    # spans
    "Span",
    "Tracer",
    "TraceCollector",
    "NULL_SPAN",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    # runtime
    "configure",
    "disable",
    "reset",
    "enabled",
    "span",
    "start_span",
    "inject",
    "activate_remote",
    "collector",
    "registry",
    "get_tracer",
    "null_span",
    # exporters
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_to_jsonl",
    "write_jsonl",
    "prometheus_text",
    "MetricsServer",
    # flop accounting
    "FlopTracer",
    "current_tracers",
    "record_flops",
]
