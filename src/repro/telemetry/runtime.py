"""Process-global telemetry state and the instrumentation entry points.

Instrumented code throughout the repo calls the module-level helpers —
:func:`span`, :func:`start_span`, :func:`inject` — which consult one
process-global :class:`_State`.  When telemetry is disabled (the
default) every helper short-circuits on a single attribute check and
returns the shared no-op span, so hot paths pay essentially nothing;
:mod:`benchmarks.bench_telemetry` measures and gates exactly this.

Cross-process flow (the service's worker pool):

1. the scheduler calls :func:`inject` on its dispatch span and ships
   the resulting dict alongside the batch;
2. the worker process wraps execution in :func:`activate_remote`,
   which temporarily enables telemetry into a private collector with
   the shipped context as ambient parent;
3. the worker returns the drained records inside its results and the
   scheduler feeds them into the global collector — one stitched trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .context import SpanContext, current_context, use_context
from .metrics import MetricRegistry
from .spans import NULL_SPAN, Span, TraceCollector, Tracer, _AMBIENT

__all__ = [
    "configure",
    "disable",
    "reset",
    "enabled",
    "span",
    "start_span",
    "inject",
    "activate_remote",
    "collector",
    "registry",
    "get_tracer",
]


class _State:
    __slots__ = ("enabled", "tracer", "collector", "registry")

    def __init__(self) -> None:
        self.enabled = False
        self.collector = TraceCollector()
        self.tracer = Tracer(self.collector)
        self.registry = MetricRegistry()


_state = _State()


def configure(
    enabled: bool = True,
    sample_rate: float = 1.0,
    collector: TraceCollector | None = None,
    registry: MetricRegistry | None = None,
    seed: int | None = None,
) -> None:
    """Turn telemetry on (or re-tune it).

    ``sample_rate`` is the head-based probability that a new trace is
    recorded; ``collector``/``registry`` replace the process-global
    instances when given (tests use this for isolation).
    """
    if collector is not None:
        _state.collector = collector
    if registry is not None:
        _state.registry = registry
    _state.tracer = Tracer(_state.collector, sample_rate=sample_rate, seed=seed)
    _state.enabled = enabled


def disable() -> None:
    """Stop recording; already-collected spans/metrics are kept."""
    _state.enabled = False


def reset() -> None:
    """Fresh disabled state: new collector, registry and tracer."""
    _state.enabled = False
    _state.collector = TraceCollector()
    _state.tracer = Tracer(_state.collector)
    _state.registry = MetricRegistry()


def enabled() -> bool:
    return _state.enabled


def collector() -> TraceCollector:
    return _state.collector


def registry() -> MetricRegistry:
    return _state.registry


def get_tracer() -> Tracer:
    return _state.tracer


def span(name: str, **attributes: Any):
    """Context manager for an ambient span (no-op when disabled).

    The disabled path is the hot-path contract: one attribute check,
    then the shared null span — no allocation, no id generation.
    """
    if not _state.enabled:
        return NULL_SPAN
    return _state.tracer.span(name, **attributes)


def start_span(name: str, parent: Any = _AMBIENT, **attributes: Any):
    """Manually-ended span (no-op when disabled); caller calls ``end``.

    Unlike :func:`span` this never touches the ambient stack — it is
    for spans whose lifetime crosses threads, like a service request
    span that is started at submit and ended at ticket resolution.
    """
    if not _state.enabled:
        return NULL_SPAN
    return _state.tracer.start_span(name, parent=parent, **attributes)


def inject(ctx: SpanContext | None = None) -> dict | None:
    """Serialize a context (default: the ambient one) for dispatch.

    Returns ``None`` when telemetry is disabled or there is nothing to
    propagate, which receivers treat as "do not record".
    """
    if not _state.enabled:
        return None
    if ctx is None:
        ctx = current_context()
    return ctx.to_dict() if ctx is not None else None


@contextmanager
def activate_remote(carrier: dict | None) -> Iterator[TraceCollector | None]:
    """Worker-process side of cross-process propagation.

    Re-activates a shipped span context: telemetry is temporarily
    enabled into a *private* collector with the carrier as ambient
    parent, so every span the worker records lands in one place the
    caller can drain and ship back.  Yields that collector, or ``None``
    when the carrier is absent/unsampled (record nothing).  The
    previous global state is restored on exit — worker processes are
    recycled, so leaking state across batches would cross-wire traces.
    """
    if not carrier or not carrier.get("sampled", True):
        yield None
        return
    ctx = SpanContext.from_dict(carrier)
    local = TraceCollector()
    prev_enabled = _state.enabled
    prev_collector = _state.collector
    prev_tracer = _state.tracer
    _state.collector = local
    _state.tracer = Tracer(local, sample_rate=1.0)
    _state.enabled = True
    try:
        with use_context(ctx):
            yield local
    finally:
        _state.enabled = prev_enabled
        _state.collector = prev_collector
        _state.tracer = prev_tracer


def null_span() -> Span:
    """The shared no-op span (exposed for benchmarks/tests)."""
    return NULL_SPAN  # type: ignore[return-value]
