"""The metric registry: counters, gauges and histograms with labels.

One :class:`MetricRegistry` owns a namespace of metric *families*; a
family is ``(name, kind, help, label names)`` and holds one child
primitive per label-value combination (Prometheus's data model).
Families are get-or-create — asking twice for the same name returns the
same family, which is how independent components (``ServiceMetrics``,
``CommStats``, the flop tracer) re-register into one shared namespace
instead of owning private primitives.

A family declared without labels *is* its single child: ``inc`` /
``set`` / ``observe`` / ``value`` / ``snapshot`` delegate to the
default child, so label-less families are drop-in replacements for the
bare primitives the service layer historically used.

All primitives are thread-safe.  :class:`Histogram` keeps a bounded
reservoir for percentiles and computes its whole :meth:`Histogram.
snapshot` — count, mean, min, max *and* the sorted percentiles — under
a single lock acquisition, so concurrent ``observe`` calls can never
produce a torn (mutually inconsistent) snapshot.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
]


class Counter:
    """A thread-safe monotonic counter (int or float increments)."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got increment {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self._value})"


class Gauge:
    """A thread-safe settable value, optionally backed by a callback.

    Callback gauges read their value at collection time — the idiom for
    "current queue depth" style metrics where the source of truth lives
    elsewhere and polling it is cheap.
    """

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._value = 0.0
        self._callback = callback
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise RuntimeError("cannot set a callback-backed gauge")
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        if self._callback is not None:
            raise RuntimeError("cannot inc a callback-backed gauge")
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.value})"


class Histogram:
    """Sliding-reservoir histogram with exact percentiles over the tail.

    Keeps the most recent ``capacity`` observations (enough for stable
    p99 at service scale without unbounded memory) plus exact running
    count/sum/min/max over *all* observations.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._values: list[float] = []
        self._next = 0  # ring-buffer write position once full
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if len(self._values) < self._capacity:
                self._values.append(value)
            else:
                self._values[self._next] = value
                self._next = (self._next + 1) % self._capacity

    @staticmethod
    def _percentile_of(ordered: list[float], p: float) -> float:
        """Exact percentile of an already-sorted reservoir (0 if empty)."""
        if not ordered:
            return 0.0
        rank = (len(ordered) - 1) * p / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def percentile(self, p: float) -> float:
        """Exact percentile of the retained reservoir (0 when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            return self._percentile_of(sorted(self._values), p)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        """count/mean/min/max plus the standard latency percentiles.

        The entire snapshot — including the sorted percentiles — is
        computed under one lock acquisition, so every field reflects
        the same instant even while other threads keep observing.
        """
        with self._lock:
            ordered = sorted(self._values)
            empty = not ordered
            return {
                "count": float(self.count),
                "mean": self.total / self.count if self.count else 0.0,
                "min": 0.0 if empty else self.min,
                "max": 0.0 if empty else self.max,
                "p50": self._percentile_of(ordered, 50.0),
                "p95": self._percentile_of(ordered, 95.0),
                "p99": self._percentile_of(ordered, 99.0),
            }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with zero or more label dimensions.

    ``labels(**kv)`` get-or-creates the child primitive for one label
    combination.  For label-less families the primitive methods
    delegate to the single default child, so the family itself can be
    used exactly like a bare :class:`Counter`/:class:`Gauge`/
    :class:`Histogram`.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        callback: Callable[[], float] | None = None,
        histogram_capacity: int = 4096,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if callback is not None and kind != "gauge":
            raise ValueError("callbacks are only supported on gauges")
        if callback is not None and label_names:
            raise ValueError("callback gauges cannot have labels")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._callback = callback
        self._histogram_capacity = histogram_capacity
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Any:
        if self.kind == "gauge":
            return Gauge(callback=self._callback)
        if self.kind == "histogram":
            return Histogram(capacity=self._histogram_capacity)
        return Counter()

    def labels(self, **kv: str) -> Any:
        """The child primitive for one label-value combination."""
        if set(kv) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names},"
                f" got {tuple(kv)}"
            )
        key = tuple(str(kv[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def samples(self) -> Iterator[tuple[tuple[str, ...], Any]]:
        """Every ``(label values, child)`` pair, creation order."""
        with self._lock:
            items = list(self._children.items())
        return iter(items)

    # -- label-less convenience (delegate to the default child) --------
    def _default(self) -> Any:
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names};"
                " use .labels(...)"
            )
        return self.labels()

    def inc(self, n: int | float = 1) -> None:
        self._default().inc(n)

    def set(self, value: float) -> None:
        self._default().set(value)

    def dec(self, n: float = 1.0) -> None:
        self._default().dec(n)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> int | float:
        return self._default().value

    @property
    def mean(self) -> float:
        return self._default().mean

    @property
    def count(self) -> int:
        return self._default().count

    def percentile(self, p: float) -> float:
        return self._default().percentile(p)

    def snapshot(self) -> dict[str, float]:
        return self._default().snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricFamily({self.name!r}, {self.kind}, labels={self.label_names})"


class MetricRegistry:
    """A namespace of metric families (get-or-create, thread-safe)."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
        **kwargs: Any,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help=help, label_names=tuple(labels), **kwargs
                )
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind},"
                f" requested {kind}"
            )
        if family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered with labels"
                f" {family.label_names}, requested {tuple(labels)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, "counter", help, tuple(labels))

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        callback: Callable[[], float] | None = None,
    ) -> MetricFamily:
        return self._get_or_create(
            name, "gauge", help, tuple(labels), callback=callback
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        capacity: int = 4096,
    ) -> MetricFamily:
        return self._get_or_create(
            name, "histogram", help, tuple(labels), histogram_capacity=capacity
        )

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families
