"""Trace context: ids, the ambient context stack, cross-process carriers.

A :class:`SpanContext` is the portable identity of a span — ``(trace_id,
span_id, sampled)`` — and the *only* thing that ever crosses a thread,
rank or process boundary.  Everything else about a span (timings,
attributes) stays in the process that recorded it and is stitched back
together by trace id at export time.

The *ambient* context is a per-thread stack: :func:`current_context`
returns the innermost entry, and new spans parent themselves to it by
default.  Fan-out layers propagate it explicitly:

* ``parallel_for`` workers enter :func:`use_context` with the forking
  thread's context (:mod:`repro.parallel.openmp`);
* SimMPI rank threads do the same (:mod:`repro.parallel.simmpi`);
* process workers receive a :meth:`SpanContext.to_dict` carrier inside
  the batch dispatch and re-activate it with
  :func:`repro.telemetry.runtime.activate_remote`.
"""

from __future__ import annotations

import secrets
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "SpanContext",
    "current_context",
    "use_context",
    "new_trace_id",
    "new_span_id",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex), unique across processes."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 64-bit span id (hex)."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of a span.

    ``sampled`` implements head-based sampling: the decision is made
    once at the trace root and every descendant — across threads, ranks
    and processes — inherits it, so a trace is always recorded either
    completely or not at all.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_dict(self) -> dict:
        """Picklable/JSON-able carrier for cross-process propagation."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            sampled=bool(data.get("sampled", True)),
        )


_tls = threading.local()


def _stack() -> list[SpanContext]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_context() -> SpanContext | None:
    """The calling thread's innermost active span context (or ``None``)."""
    stack = getattr(_tls, "stack", None)
    if not stack:
        return None
    return stack[-1]


@contextmanager
def use_context(ctx: SpanContext | None) -> Iterator[SpanContext | None]:
    """Make ``ctx`` the ambient context for the calling thread.

    Used by fan-out layers to hand a parent context to worker threads.
    ``use_context(None)`` is a no-op, so callers can pass through an
    absent context without branching.
    """
    if ctx is None:
        yield None
        return
    stack = _stack()
    stack.append(ctx)
    try:
        yield ctx
    finally:
        if stack and stack[-1] is ctx:
            stack.pop()
        else:  # pragma: no cover - defensive
            stack.remove(ctx)
