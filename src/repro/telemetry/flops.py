"""Flop/byte accounting for algorithm stages (registry-backed).

This is the implementation behind :mod:`repro.perf.tracer` (which
re-exports it unchanged, so ``FlopTracer`` keeps its historical import
path and public API).  Two things distinguish it from the original:

* the active *stage label* is **thread-local**: a stage entered on the
  main thread cannot race with stages on ``attach_thread`` workers, so
  concurrent instrumentation can no longer misattribute flops.  Worker
  threads inherit the forking thread's stage through
  ``attach_thread(stage=...)`` (the OpenMP-style layer passes it), so
  flops performed inside ``parallel_for`` bodies still land in the
  enclosing stage;
* on exit, per-stage totals are flushed into the telemetry metric
  registry (``repro_stage_flops_total{stage=...}`` and friends) when
  telemetry is enabled, so Prometheus exposition sees the same numbers
  the tracer reports — without adding any per-kernel overhead.

Every linear-algebra kernel in :mod:`repro.core._kernels` reports its
flop count to the innermost active :class:`FlopTracer`, tagged with the
current stage.  Tracers nest; each tracer sees everything executed
inside its ``with`` block.

Usage::

    with FlopTracer() as tr:
        with tr.stage("cls"):
            ...
        with tr.stage("bsofi"):
            ...
    tr.flops("cls"), tr.total_flops, tr.elapsed("cls")
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["FlopTracer", "current_tracers", "record_flops"]

_local = threading.local()

#: Stage label used when no ``stage()`` block is active on the thread.
_DEFAULT_STAGE = "default"


def _stack() -> list["FlopTracer"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def current_tracers() -> tuple["FlopTracer", ...]:
    """The active tracer stack of the calling thread (innermost last)."""
    return tuple(_stack())


def record_flops(flops: float, mem_bytes: float = 0.0) -> None:
    """Report an operation to every active tracer on this thread.

    Called by the instrumented kernels; a no-op when no tracer is
    active, so production code pays only an attribute lookup.
    """
    for tracer in _stack():
        tracer._record(flops, mem_bytes)


@dataclass
class _StageStats:
    flops: float = 0.0
    mem_bytes: float = 0.0
    seconds: float = 0.0
    calls: int = 0


class FlopTracer:
    """Accumulates flops, bytes and wall time per named stage.

    Thread-aware: a tracer entered on one thread can adopt worker
    threads via :meth:`attach_thread` (used by the OpenMP-style layer so
    that flops performed inside ``parallel_for`` bodies are credited to
    the enclosing tracer).  The active stage label is per-thread, so
    stages on different threads never interfere.
    """

    def __init__(self) -> None:
        self._stages: dict[str, _StageStats] = {}
        self._stage_tls = threading.local()
        self._lock = threading.Lock()
        self._entered_at: float | None = None
        self._flushed_flops: dict[str, float] = {}
        self.total_seconds: float = 0.0

    # -- context management -------------------------------------------
    def __enter__(self) -> "FlopTracer":
        _stack().append(self)
        self._entered_at = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._entered_at is not None:
            self.total_seconds += time.perf_counter() - self._entered_at
            self._entered_at = None
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - defensive
            stack.remove(self)
        self._flush_to_registry()

    @contextmanager
    def attach_thread(self, stage: str | None = None) -> Iterator[None]:
        """Make this tracer active on the *current* (worker) thread.

        ``stage`` seeds the worker thread's stage label — fan-out
        layers pass the forking thread's active stage so work done by
        the team is attributed to the stage that spawned it.
        """
        _stack().append(self)
        had_stage = hasattr(self._stage_tls, "name")
        prev = getattr(self._stage_tls, "name", None)
        if stage is not None:
            self._stage_tls.name = stage
        try:
            yield
        finally:
            if stage is not None:
                if had_stage:
                    self._stage_tls.name = prev
                else:
                    del self._stage_tls.name
            stack = _stack()
            if stack and stack[-1] is self:
                stack.pop()
            else:  # pragma: no cover - defensive
                stack.remove(self)

    @property
    def current_stage(self) -> str:
        """The calling thread's active stage label."""
        return getattr(self._stage_tls, "name", _DEFAULT_STAGE)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Attribute everything inside the block to stage ``name``.

        Stage labels do not nest semantically: the innermost label wins.
        Wall time of the block is added to the stage.  The label is
        thread-local — it applies to the calling thread (and to worker
        threads that inherit it via ``attach_thread(stage=...)``),
        never to unrelated threads recording concurrently.
        """
        had_stage = hasattr(self._stage_tls, "name")
        prev = getattr(self._stage_tls, "name", None)
        self._stage_tls.name = name
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            with self._lock:
                self._stats(name).seconds += dt
            if had_stage:
                self._stage_tls.name = prev
            else:
                del self._stage_tls.name

    # -- recording ------------------------------------------------------
    def _stats(self, name: str) -> _StageStats:
        st = self._stages.get(name)
        if st is None:
            st = self._stages[name] = _StageStats()
        return st

    def _record(self, flops: float, mem_bytes: float) -> None:
        name = self.current_stage
        with self._lock:
            st = self._stats(name)
            st.flops += flops
            st.mem_bytes += mem_bytes
            st.calls += 1

    def _flush_to_registry(self) -> None:
        """Fold per-stage totals into the telemetry metric registry.

        Runs on tracer exit (never per kernel call) and only when
        telemetry is enabled; flushes deltas so re-entering the same
        tracer never double-counts.
        """
        from . import runtime

        if not runtime.enabled():
            return
        registry = runtime.registry()
        flop_family = registry.counter(
            "repro_stage_flops_total",
            "Floating-point operations per algorithm stage",
            labels=("stage",),
        )
        seconds_family = registry.counter(
            "repro_stage_seconds_total",
            "Wall seconds per algorithm stage",
            labels=("stage",),
        )
        with self._lock:
            deltas = []
            for name, st in self._stages.items():
                done_flops = self._flushed_flops.get(name, 0.0)
                if st.flops > done_flops:
                    deltas.append((name, st.flops - done_flops, st.seconds))
                    self._flushed_flops[name] = st.flops
        for name, flops, seconds in deltas:
            flop_family.labels(stage=name).inc(flops)
            seconds_family.labels(stage=name).inc(seconds)

    # -- queries ----------------------------------------------------------
    @property
    def stages(self) -> tuple[str, ...]:
        return tuple(self._stages)

    def flops(self, stage: str | None = None) -> float:
        """Flops recorded for ``stage`` (or everything when ``None``)."""
        if stage is None:
            return self.total_flops
        st = self._stages.get(stage)
        return st.flops if st else 0.0

    def mem_bytes(self, stage: str | None = None) -> float:
        if stage is None:
            return sum(s.mem_bytes for s in self._stages.values())
        st = self._stages.get(stage)
        return st.mem_bytes if st else 0.0

    def elapsed(self, stage: str) -> float:
        """Wall seconds spent inside ``stage`` blocks."""
        st = self._stages.get(stage)
        return st.seconds if st else 0.0

    def calls(self, stage: str) -> int:
        st = self._stages.get(stage)
        return st.calls if st else 0

    @property
    def total_flops(self) -> float:
        return sum(s.flops for s in self._stages.values())

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-stage dict of flops / bytes / seconds / calls."""
        return {
            name: {
                "flops": st.flops,
                "mem_bytes": st.mem_bytes,
                "seconds": st.seconds,
                "calls": float(st.calls),
            }
            for name, st in self._stages.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{name}={st.flops:.3g}f/{st.seconds:.3g}s"
            for name, st in self._stages.items()
        )
        return f"FlopTracer({parts})"
