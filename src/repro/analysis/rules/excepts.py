"""RPR008 — no silent ``except Exception`` in service/ or transport/.

The failure paths of the serving and transport layers are load-bearing:
a swallowed exception there turns a diagnosable fault (a crashed rank,
a poisoned pipe, a numerically sick stage) into a silent wrong answer
or a hung caller.  A broad handler (bare ``except``, ``Exception``,
``BaseException``, or a tuple containing one) is allowed only if it
visibly does one of three things:

* **re-raises** (``raise`` / ``raise Typed(...) from exc``),
* **converts** — constructs a typed ``*Error``/``*Exception`` value
  (wrapping into the repro error hierarchy, even when the value is
  returned rather than raised, as the process transport does when
  shipping child failures), or
* **records** — calls a telemetry-ish method (``inc``, ``observe``,
  ``record``, ``set_attribute``, ``exception``, ``warning``, …) so the
  swallow is at least counted.

Handlers narrowed to concrete exception types are out of scope: naming
the type is already a statement about what can happen.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..engine import FileContext, Rule
from ._shared import terminal_name

__all__ = ["NoSilentExcept"]

_BROAD = {"Exception", "BaseException"}
_TELEMETRY_ATTRS = {
    "inc",
    "observe",
    "record",
    "set_attribute",
    "add",
    "add_many",
    "exception",
    "warning",
    "error",
    "critical",
    "log",
}
_TYPED_ERROR_RE = re.compile(r"(Error|Exception)$")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    exprs = t.elts if isinstance(t, ast.Tuple) else [t]
    return any(terminal_name(e) in _BROAD for e in exprs)


def _handles_visibly(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            ctor = terminal_name(func)
            if _TYPED_ERROR_RE.search(ctor):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _TELEMETRY_ATTRS:
                return True
    return False


class NoSilentExcept(Rule):
    id = "RPR008"
    title = "broad except in service/transport must re-raise, convert, or record"
    invariant = (
        "except Exception in service/ and transport/ must re-raise,"
        " wrap into a typed repro error, or record to telemetry —"
        " silent swallows hide rank crashes and poisoned pipes"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir("service", "transport")

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _handles_visibly(node):
                continue
            shown = (
                "bare except" if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            yield (
                node.lineno,
                node.col_offset + 1,
                f"{shown} swallows silently: re-raise, convert to a"
                " typed repro error, or record to telemetry (or narrow"
                " the except to the concrete types this code expects)",
            )
