"""Shared AST helpers for the rule catalogue."""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import call_name

__all__ = [
    "call_name",
    "enclosing_map",
    "iter_with_qualname",
    "terminal_name",
    "walk_scope",
]


def terminal_name(node: ast.expr) -> str:
    """Final identifier of a Name/Attribute chain (``self._lock`` → ``_lock``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def iter_with_qualname(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, qualname)`` pairs, qualname being the dotted
    class/function path enclosing the node ('' at module level)."""

    def visit(node: ast.AST, stack: tuple[str, ...]) -> Iterator[tuple[ast.AST, str]]:
        yield node, ".".join(stack)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack = stack + (node.name,)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, stack)

    for top in ast.iter_child_nodes(tree):
        yield from visit(top, ())


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a statement body without descending into nested functions —
    code in a nested ``def`` runs later, outside the lexical region."""
    for child in ast.iter_child_nodes(node):
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield from walk_scope(child)


def enclosing_map(tree: ast.Module) -> dict[ast.AST, ast.AST | None]:
    """Map each node to its nearest enclosing function (or None)."""
    out: dict[ast.AST, ast.AST | None] = {}

    def visit(node: ast.AST, func: ast.AST | None) -> None:
        out[node] = func
        inner = node if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) else func
        for child in ast.iter_child_nodes(node):
            visit(child, inner)

    visit(tree, None)
    return out
