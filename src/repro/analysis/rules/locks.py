"""RPR003 — no blocking call while lexically holding a lock.

The transport and scheduler layers are thread-heavy; a blocking call
(``recv``, ``accept``, ``join``, ``sleep``, queue ``get``, future
``result``) executed inside a held ``threading.Lock``/``RLock``
``with``-block stalls every other thread contending for that lock —
the classic distributed-deadlock shape PSelInv warns about for
communication code.  The rule is lexical: it flags blocking calls
written inside the ``with lock:`` body (nested ``def``\\ s are skipped
— they run later, outside the region).

``Condition.wait`` is deliberately *not* matched: a condition variable
releases its lock while waiting, and lock detection keys on receiver
names containing "lock", which condition variables (``cv``, ``cond``)
do not use.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Rule, call_name
from ._shared import terminal_name, walk_scope

__all__ = ["NoBlockingUnderLock"]

_BLOCKING = {"recv", "Recv", "accept", "join", "sleep", "get", "result"}
_QUEUEISH = ("queue", "mailbox", "inbox", "outbox", "q")
_LOCK_CTORS = {"Lock", "RLock"}


def _is_lock_expr(expr: ast.expr) -> bool:
    """Does this with-item expression acquire a lock?

    Either a direct ``threading.Lock()``/``RLock()`` construction or a
    name/attribute whose terminal identifier contains "lock".
    """
    if isinstance(expr, ast.Call):
        return terminal_name(expr.func) in _LOCK_CTORS or call_name(
            expr.func
        ) in ("threading.Lock", "threading.RLock")
    return "lock" in terminal_name(expr).lower()


def _receiver(func: ast.expr) -> ast.expr | None:
    return func.value if isinstance(func, ast.Attribute) else None


def _flaggable(node: ast.Call) -> str | None:
    """Return the blocking-call name if this call should be flagged."""
    func = node.func
    name = terminal_name(func) if isinstance(func, (ast.Attribute, ast.Name)) else ""
    if name not in _BLOCKING:
        return None
    recv = _receiver(func)
    if name == "join":
        # " ".join(parts) and os.path.join are string/path joins.
        if isinstance(recv, ast.Constant) and isinstance(recv.value, str):
            return None
        if recv is not None and terminal_name(recv) in ("path", "posixpath", "ntpath"):
            return None
    if name == "get":
        # dict.get is everywhere; only a queue-ish receiver or an
        # explicit timeout kwarg marks a *blocking* get.
        has_timeout = any(kw.arg == "timeout" for kw in node.keywords)
        queueish = recv is not None and any(
            part in terminal_name(recv).lower() for part in _QUEUEISH
        )
        if not (has_timeout or queueish):
            return None
    return name


class NoBlockingUnderLock(Rule):
    id = "RPR003"
    title = "no blocking call inside a held Lock/RLock with-block"
    invariant = (
        "recv/accept/join/sleep/get/result must not run while lexically"
        " holding a threading.Lock/RLock: every contending thread stalls"
        " (transport/scheduler deadlock detector)"
    )

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            lock_items = [
                item for item in node.items
                if _is_lock_expr(item.context_expr)
            ]
            if not lock_items:
                continue
            for stmt in node.body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue  # deferred code runs outside the region
                for sub in [stmt, *walk_scope(stmt)]:
                    if not isinstance(sub, ast.Call):
                        continue
                    name = _flaggable(sub)
                    if name is None:
                        continue
                    yield (
                        sub.lineno,
                        sub.col_offset + 1,
                        f"blocking call `{name}` inside a held lock"
                        f" (acquired line {node.lineno}): release the"
                        " lock first or move the wait outside the"
                        " with-block",
                    )
