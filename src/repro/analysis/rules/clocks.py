"""RPR002 — durations use monotonic clocks, never ``time.time()``.

PR 6's fix: wall clocks jump (NTP slews, suspend/resume), so any
duration or uptime computed from ``time.time()`` differences can go
negative or explode.  ``time.perf_counter()`` / ``time.monotonic()``
are the only clocks valid for intervals.  ``time.time()`` survives in
exactly two allowlisted places where an *epoch timestamp* is the
point: span start/end times in ``telemetry/spans.py`` (the only clock
meaningful across process boundaries) and the service start-time
report in ``ServiceMetrics.__init__`` (uptime itself is monotonic).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Rule, call_name
from ._shared import iter_with_qualname

__all__ = ["MonotonicClocks"]

#: ``(path suffix, qualname or None)`` — None allowlists the whole file.
_ALLOWLIST: tuple[tuple[str, str | None], ...] = (
    ("telemetry/spans.py", None),
    ("service/metrics.py", "ServiceMetrics.__init__"),
)


class MonotonicClocks(Rule):
    id = "RPR002"
    title = "no time.time() outside allowlisted epoch-timestamp sites"
    invariant = (
        "durations/uptime must use time.monotonic()/time.perf_counter();"
        " time.time() is allowlisted only for epoch timestamps in"
        " telemetry/spans.py and ServiceMetrics.__init__ (PR 6)"
    )

    def _allowed(self, ctx: FileContext, qualname: str) -> bool:
        for suffix, allowed_qualname in _ALLOWLIST:
            if ctx.path.endswith(suffix):
                if allowed_qualname is None or qualname == allowed_qualname:
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        bare_time = "from time import time" in ctx.source
        for node, qualname in iter_with_qualname(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node.func)
            if name != "time.time" and not (bare_time and name == "time"):
                continue
            if self._allowed(ctx, qualname):
                continue
            yield (
                node.lineno,
                node.col_offset + 1,
                "time.time() is a wall clock: use time.monotonic() or"
                " time.perf_counter() for durations, or add the site to"
                " the RPR002 allowlist if this is a genuine epoch"
                " timestamp",
            )
