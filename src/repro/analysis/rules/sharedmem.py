"""RPR007 — every created SharedMemory segment has a teardown path.

A ``SharedMemory(create=True)`` segment is a kernel object: leak it
and it outlives the process (and trips the resource tracker's noisy
warnings at interpreter exit).  The mp-shm transport's
``send_buffer_frame`` is the exemplar — create, then ``close()`` in a
``finally`` (the consumer ``unlink``\\ s after decoding).  The rule
requires that any function creating a segment also contains a
``finally`` block (or ``with`` suite) calling ``close``/``unlink``.

Lexical containment, not data flow: the teardown must live in the
*same function* so the reader can see the pairing.  Factories that
intentionally hand ownership to a caller should suppress with a
reason.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Rule
from ._shared import enclosing_map, terminal_name

__all__ = ["SharedMemoryLifecycle"]


def _creates_segment(node: ast.Call) -> bool:
    if terminal_name(node.func) != "SharedMemory":
        return False
    for kw in node.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _has_teardown(scope: ast.AST) -> bool:
    """Any finally-block or with-statement in ``scope`` calling
    close()/unlink(), or a SharedMemory used directly as a context
    manager."""
    for node in ast.walk(scope):
        bodies: list[list[ast.stmt]] = []
        if isinstance(node, ast.Try) and node.finalbody:
            bodies.append(node.finalbody)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(
                isinstance(item.context_expr, ast.Call)
                and _creates_segment(item.context_expr)
                for item in node.items
            ):
                return True
        for body in bodies:
            for stmt in body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) and terminal_name(
                        sub.func
                    ) in ("close", "unlink"):
                        return True
    return False


class SharedMemoryLifecycle(Rule):
    id = "RPR007"
    title = "SharedMemory(create=True) needs close/unlink on a finally path"
    invariant = (
        "every SharedMemory(create=True) is paired, in the same"
        " function, with close()/unlink() on a finally/context-manager"
        " path — leaked segments outlive the process"
    )

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        enclosing = enclosing_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _creates_segment(node)):
                continue
            scope = enclosing.get(node) or ctx.tree
            if _has_teardown(scope):
                continue
            yield (
                node.lineno,
                node.col_offset + 1,
                "SharedMemory(create=True) with no close()/unlink() on"
                " a finally/context-manager path in this function: the"
                " segment leaks past process exit",
            )
