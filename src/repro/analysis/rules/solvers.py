"""RPR004 — dense inversions route through the guarded solvers.

Bauer's stabilized-DQMC point: numerical discipline has to be applied
*everywhere*, not just in the core kernels.  ``repro.resilience.guards``
wraps dense solves with finiteness screens and condition estimates and
converts LinAlgError into the typed ``NumericalHealthError`` the
service layer knows how to degrade on.  A raw ``np.linalg.inv``/
``np.linalg.solve`` anywhere outside ``core/`` (the stage kernels
themselves) and ``resilience/`` (the guard implementations) bypasses
that battery, so ill-conditioned inputs surface as unexplained NaNs
instead of typed, telemetry-counted failures.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Rule, call_name

__all__ = ["GuardedSolversOnly"]

_RAW = ("linalg.inv", "linalg.solve")


class GuardedSolversOnly(Rule):
    id = "RPR004"
    title = "no raw np.linalg.inv/solve outside core/"
    invariant = (
        "code outside core/ and resilience/ must call"
        " resilience.guards.guarded_inv/guarded_solve so dense solves"
        " pass the finiteness + condition battery and fail as typed"
        " NumericalHealthError"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.in_dir("core", "resilience")

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node.func)
            if not name.endswith(_RAW):
                continue
            short = name.split(".")[-1]
            yield (
                node.lineno,
                node.col_offset + 1,
                f"raw linalg.{short}() outside core/: use"
                f" repro.resilience.guards.guarded_{short}() so the"
                " solve is screened and fails as a typed"
                " NumericalHealthError",
            )
