"""RPR006 — spawned threads/processes must propagate trace context.

PR 2's telemetry runtime gives every unit of work a span; a worker
thread or child process that runs traced code without carrying the
parent context produces orphan spans that cannot be stitched into a
trace.  The propagation vocabulary is ``inject()`` (serialise the
context into a carrier before the spawn) paired with
``activate_remote()``/``use_context()``/``trace_ctx`` on the far side.

The check is module-granular by design: if a module in ``transport/``,
``parallel/``, or ``service/`` creates a ``Thread`` or ``Process`` but
*never mentions* any propagation primitive, no spawn in it can be
propagating — a finding on each spawn site.  A module that does use
the vocabulary is trusted (flow-sensitive matching of carrier to spawn
would be guesswork at AST level).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..engine import FileContext, Rule, call_name
from ._shared import terminal_name

__all__ = ["SpanPropagation"]

_SPAWN_NAMES = {"Thread", "Process"}
_PROPAGATION_RE = re.compile(
    r"\b(inject|activate_remote|use_context|trace_ctx|carrier)\b"
)


def _is_spawn(node: ast.Call) -> bool:
    name = terminal_name(node.func)
    if name not in _SPAWN_NAMES:
        return False
    dotted = call_name(node.func)
    # `threading.Thread(...)`, `ctx.Process(...)`, bare `Thread(...)` —
    # but not e.g. `SomeClass.Process` used as a namespaced constant.
    return dotted.count(".") <= 1


class SpanPropagation(Rule):
    id = "RPR006"
    title = "thread/process spawns propagate telemetry spans"
    invariant = (
        "modules in transport/, parallel/, service/ that spawn"
        " Thread/Process must carry trace context via inject() +"
        " activate_remote()/use_context()/trace_ctx (PR 2)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir("transport", "parallel", "service")

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        if _PROPAGATION_RE.search(ctx.source):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_spawn(node):
                yield (
                    node.lineno,
                    node.col_offset + 1,
                    f"{terminal_name(node.func)} spawn in a module with"
                    " no span propagation: inject() a carrier before"
                    " the spawn and activate_remote()/use_context() in"
                    " the target, or spans from this worker will be"
                    " orphaned",
                )
