"""RPR001 — exceptions crossing process transports must pickle.

PR 7's ``RankError`` regression: the default exception ``__reduce__``
replays ``str(exc)`` into ``__init__``, which explodes for any
exception whose ``__init__`` takes more than one argument.  Such an
exception raised inside a process-backed transport dies *in the
pickler*, and the caller sees an opaque transport failure instead of
the typed error.  Any exception class defined in ``transport/``,
``parallel/``, or ``service/workers.py`` whose ``__init__`` takes
extra arguments must therefore define ``__reduce__`` (the
``FleetMatrixError`` / ``RankError`` pattern).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import FileContext, Rule

__all__ = ["PicklableExceptions"]

_EXC_SUFFIXES = ("Error", "Exception", "Warning")


def _looks_like_exception(node: ast.ClassDef) -> bool:
    if node.name.endswith(_EXC_SUFFIXES):
        return True
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name.endswith(_EXC_SUFFIXES) or name in ("BaseException",):
            return True
    return False


def _extra_init_args(init: ast.FunctionDef) -> int:
    """Number of parameters beyond ``self`` (incl. keyword-only)."""
    a = init.args
    n = len(a.posonlyargs) + len(a.args) + len(a.kwonlyargs)
    return max(0, n - 1) + (1 if a.vararg else 0)


class PicklableExceptions(Rule):
    id = "RPR001"
    title = "transported exceptions must survive pickling"
    invariant = (
        "exception classes defined in transport/, parallel/, or"
        " service/workers.py with a multi-argument __init__ must define"
        " __reduce__ (PR 7: RankError/FleetMatrixError regression)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dir("transport", "parallel") or ctx.ends_with(
            "service/workers.py"
        )

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _looks_like_exception(node):
                continue
            init = None
            has_reduce = False
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if item.name == "__init__":
                        init = item
                    elif item.name in ("__reduce__", "__reduce_ex__"):
                        has_reduce = True
            if init is None or has_reduce:
                continue
            if isinstance(init, ast.FunctionDef) and _extra_init_args(init) > 1:
                yield (
                    node.lineno,
                    node.col_offset + 1,
                    f"exception {node.name} takes"
                    f" {_extra_init_args(init)} __init__ arguments but"
                    " defines no __reduce__: it will not survive the"
                    " pickle round-trip across process transports",
                )
