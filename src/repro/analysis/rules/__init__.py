"""The rule catalogue — one module per invariant.

``ALL_RULES`` is the ordered registry the CLI instantiates; adding a
rule means writing a module with a :class:`~repro.analysis.engine.Rule`
subclass and appending its class here (see ``docs/static-analysis.md``
for the how-to).
"""

from __future__ import annotations

from ..engine import Rule
from .clocks import MonotonicClocks
from .excepts import NoSilentExcept
from .locks import NoBlockingUnderLock
from .metric_names import MetricNameContract
from .picklable import PicklableExceptions
from .sharedmem import SharedMemoryLifecycle
from .solvers import GuardedSolversOnly
from .spans import SpanPropagation

__all__ = [
    "ALL_RULES",
    "GuardedSolversOnly",
    "MetricNameContract",
    "MonotonicClocks",
    "NoBlockingUnderLock",
    "NoSilentExcept",
    "PicklableExceptions",
    "SharedMemoryLifecycle",
    "SpanPropagation",
    "default_rules",
    "rule_classes",
]

ALL_RULES: tuple[type[Rule], ...] = (
    PicklableExceptions,   # RPR001
    MonotonicClocks,       # RPR002
    NoBlockingUnderLock,   # RPR003
    GuardedSolversOnly,    # RPR004
    MetricNameContract,    # RPR005
    SpanPropagation,       # RPR006
    SharedMemoryLifecycle, # RPR007
    NoSilentExcept,        # RPR008
)


def rule_classes() -> dict[str, type[Rule]]:
    return {cls.id: cls for cls in ALL_RULES}


def default_rules() -> list[Rule]:
    return [cls() for cls in ALL_RULES]
