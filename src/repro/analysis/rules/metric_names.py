"""RPR005 — metric naming and the register-once contract.

PR 7's sharded-cache lesson: cache hit/miss metrics double-counted the
moment two layers each incremented them, so the contract became
"count once, at the routing layer" — and the structural half of that
contract is that each metric *family* is registered at exactly one
call site per module, under a ``repro_``-prefixed snake_case name the
dashboards can rely on.  The rule checks every
``registry.counter/gauge/histogram("literal", ...)`` call: the literal
must match ``repro_[a-z_]+`` and must not be registered at two
distinct call sites in the same module.

Dynamic names (non-literal first argument, e.g. the helpers in
``resilience/guards.py``) are out of scope — so are unrelated calls
like ``np.histogram(data, bins)``, whose first argument is not a
string literal.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..engine import FileContext, Rule

__all__ = ["MetricNameContract"]

_REGISTER_ATTRS = {"counter", "gauge", "histogram"}
_NAME_RE = re.compile(r"^repro_[a-z_]+$")


class MetricNameContract(Rule):
    id = "RPR005"
    title = "metric families: repro_ snake_case, registered once per module"
    invariant = (
        "metric names match repro_[a-z_]+ and each family has exactly"
        " one registration call site per module (PR 7 count-once"
        " contract)"
    )

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        seen: dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _REGISTER_ATTRS
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            if not _NAME_RE.match(name):
                yield (
                    node.lineno,
                    node.col_offset + 1,
                    f"metric name {name!r} must match repro_[a-z_]+"
                    " (repro_ prefix, lowercase snake_case)",
                )
            if name in seen:
                yield (
                    node.lineno,
                    node.col_offset + 1,
                    f"metric family {name!r} already registered at line"
                    f" {seen[name]} in this module: register once and"
                    " share the handle (count-once contract)",
                )
            else:
                seen[name] = node.lineno
