"""Committed baseline of grandfathered findings.

A baseline lets the linter land with the tree *as it is*: every
pre-existing finding that is deliberately not being fixed yet is
recorded once, reviewed in the PR that writes it, and fails the build
the moment a *new* instance appears.  The repo's goal is an empty (or
near-empty, reason-annotated) baseline — see ``analysis-baseline.json``
at the repo root.

Entries are keyed by ``(rule, path, content-hash)`` where the hash
covers the *stripped source line*, so a baselined finding survives
edits elsewhere in the file but expires when its own line changes —
the natural moment to fix it.  Matching is multiset matching: two
identical lines in one file need two entries.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence

from .engine import Finding

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "Baseline",
    "BaselineEntry",
    "finding_key",
]

DEFAULT_BASELINE_NAME = "analysis-baseline.json"
_VERSION = 1


def _content_hash(rule: str, path: str, snippet: str) -> str:
    digest = hashlib.sha256(
        "\x1f".join((rule, path, snippet)).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def finding_key(finding: Finding) -> tuple[str, str, str]:
    """The baseline identity of a finding (line numbers excluded)."""
    return (
        finding.rule,
        finding.path,
        _content_hash(finding.rule, finding.path, finding.snippet),
    )


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    hash: str
    note: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.hash)


class Baseline:
    """In-memory view of the baseline file."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()):
        self.entries = list(entries)

    # -- construction ------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline format in {path}:"
                f" expected {{'version': {_VERSION}, ...}}"
            )
        entries = [
            BaselineEntry(
                rule=str(e["rule"]),
                path=str(e["path"]),
                hash=str(e["hash"]),
                note=str(e.get("note", "")),
            )
            for e in raw.get("entries", [])
        ]
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], note: str = ""
    ) -> "Baseline":
        """Build a baseline grandfathering every *active* finding."""
        entries = [
            BaselineEntry(*finding_key(f), note=note)
            for f in findings
            if f.active
        ]
        entries.sort(key=lambda e: e.key)
        return cls(entries)

    # -- persistence -------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "hash": e.hash,
                    "note": e.note,
                }
                for e in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    # -- application -------------------------------------------------
    def apply(self, findings: Sequence[Finding]) -> tuple[list[Finding], list[BaselineEntry]]:
        """Mark baselined findings; also return stale (unmatched) entries.

        Multiset semantics: an entry covers at most one finding, so a
        second identical violation in the same file is *new* and fails
        the run.  Stale entries — grandfathered findings that no longer
        exist — are returned so reporters can nag for their removal
        without failing the build.
        """
        budget = Counter(e.key for e in self.entries)
        out: list[Finding] = []
        for f in findings:
            key = finding_key(f)
            if f.active and budget.get(key, 0) > 0:
                budget[key] -= 1
                out.append(replace(f, baselined=True))
            else:
                out.append(f)
        stale = []
        remaining = Counter(budget)
        for e in self.entries:
            if remaining.get(e.key, 0) > 0:
                remaining[e.key] -= 1
                stale.append(e)
        return out, stale

    def __len__(self) -> int:
        return len(self.entries)
