"""repro.analysis — the codebase's invariant linter.

An AST-based static-analysis framework that mechanically enforces the
numerical, concurrency, and telemetry contracts PRs 1–7 established as
reviewer folklore.  Entry points:

* ``repro lint [paths] [--rule ID] [--baseline] [--format ...]`` — the
  CLI (see :mod:`repro.analysis.cli`);
* :func:`analyze_paths` + :data:`~repro.analysis.rules.ALL_RULES` —
  the library API the fixture tests drive.

See ``docs/static-analysis.md`` for the rule catalogue and the
suppression / baseline workflow.
"""

from .baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineEntry, finding_key
from .engine import (
    ENGINE_RULE_ID,
    FileContext,
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
)
from .reporters import REPORTERS
from .rules import ALL_RULES, default_rules, rule_classes

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "ENGINE_RULE_ID",
    "FileContext",
    "Finding",
    "REPORTERS",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "default_rules",
    "finding_key",
    "rule_classes",
]
