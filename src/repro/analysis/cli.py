"""The ``repro lint`` subcommand.

Exit codes: 0 — clean (no active findings), 1 — active findings,
2 — usage error (unknown rule, unreadable baseline).  ``--check`` is
an explicit alias of the default behaviour for CI readability.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import Finding
from .reporters import REPORTERS
from .rules import default_rules, rule_classes

__all__ = ["add_lint_parser", "run_lint", "main"]


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "lint",
        help="run the repro.analysis invariant linter",
        description=(
            "Statically check the repo's numerical/concurrency/telemetry"
            " invariants (rules RPR001..RPR008). Exit 1 on any active"
            " finding; see docs/static-analysis.md."
        ),
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only this rule (repeatable, e.g. --rule RPR004)",
    )
    p.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE_NAME,
        default=None, metavar="PATH",
        help=(
            "apply the committed baseline of grandfathered findings"
            f" (default path: {DEFAULT_BASELINE_NAME})"
        ),
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file to cover all current findings",
    )
    p.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="parallel analysis workers (default: one per CPU)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="fail on active findings (the default; explicit for CI)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return p


def _list_rules(stream: IO[str]) -> int:
    for cls in rule_classes().values():
        stream.write(f"{cls.id}  {cls.title}\n")
        stream.write(f"       {cls.invariant}\n")
    return 0


def run_lint(ns: argparse.Namespace, stream: IO[str] | None = None) -> int:
    from .engine import analyze_paths  # local: keeps --list-rules instant

    out = stream if stream is not None else sys.stdout
    if ns.list_rules:
        return _list_rules(out)

    rules = default_rules()
    if ns.rule:
        wanted = {r.upper() for r in ns.rule}
        known = set(rule_classes())
        unknown = wanted - known
        if unknown:
            print(
                f"repro lint: unknown rule(s): {', '.join(sorted(unknown))};"
                f" known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        rules = [r for r in rules if r.id in wanted]

    findings: list[Finding] = analyze_paths(
        ns.paths,
        rules,
        jobs=ns.jobs or None,
        # A suppression for an unselected rule is not "unused".
        check_unused_suppressions=not ns.rule,
    )

    if ns.write_baseline:
        path = ns.baseline or DEFAULT_BASELINE_NAME
        Baseline.from_findings(findings).save(path)
        print(f"wrote {path} covering "
              f"{sum(1 for f in findings if f.active)} finding(s)", file=out)
        return 0

    stale = []
    if ns.baseline is not None:
        try:
            baseline = Baseline.load(ns.baseline)
        except FileNotFoundError:
            print(
                f"repro lint: baseline file not found: {ns.baseline}"
                " (create it with --write-baseline)",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        findings, stale = baseline.apply(findings)

    REPORTERS[ns.format](findings, stale, out)
    return 1 if any(f.active for f in findings) else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(prog="repro-lint")
    sub = parser.add_subparsers(dest="cmd", required=False)
    add_lint_parser(sub)
    args = list(argv) if argv is not None else sys.argv[1:]
    if not args or args[0] != "lint":
        args = ["lint", *args]
    ns = parser.parse_args(args)
    return run_lint(ns)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
