"""The analysis engine: rule plugins, suppressions, parallel file runs.

A :class:`Rule` is one mechanically checkable invariant of this
codebase (see :mod:`repro.analysis.rules` for the catalogue).  The
engine owns everything rules share:

* parsing each file once into an ``ast`` tree and handing rules a
  :class:`FileContext` (path, source, tree, split lines);
* per-file parallelism — files are independent, so a thread pool maps
  :func:`analyze_file` over the worklist;
* inline suppressions — ``# repro: ignore[RPR003]: reason`` disables
  named rules for the line it sits on (or, on its own line, for the
  next code line).  A suppression **must carry a reason**; a bare
  ``ignore[...]`` and an unused suppression are themselves findings
  (rule ``RPR000``), so suppressions cannot rot silently;
* engine-level findings (``RPR000``): unparseable files, malformed or
  unused suppressions.

Findings are plain frozen dataclasses; the baseline layer
(:mod:`repro.analysis.baseline`) and the reporters
(:mod:`repro.analysis.reporters`) consume them without ever touching
the AST.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path, PurePosixPath
from typing import Callable, ClassVar, Iterable, Sequence

__all__ = [
    "ENGINE_RULE_ID",
    "FileContext",
    "Finding",
    "Rule",
    "Suppression",
    "analyze_file",
    "analyze_paths",
    "call_name",
    "collect_files",
    "iter_findings",
]

#: Rule id of the engine's own findings (parse errors, bad suppressions).
ENGINE_RULE_ID = "RPR000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line — the content-addressed
    part of the baseline key, so a finding survives unrelated edits
    that merely shift line numbers.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = False
    baselined: bool = False

    @property
    def active(self) -> bool:
        """Does this finding fail the run?"""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment."""

    line: int            # line the comment sits on (1-based)
    target_line: int     # line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)


@dataclass
class FileContext:
    """Everything a rule may inspect about one file (parsed once)."""

    path: str                    # as reported in findings (posix, relative)
    source: str
    tree: ast.Module
    lines: list[str]

    @property
    def posix(self) -> PurePosixPath:
        return PurePosixPath(self.path)

    @property
    def parts(self) -> tuple[str, ...]:
        return self.posix.parts

    def in_dir(self, *names: str) -> bool:
        """Is the file under a directory with one of these names?"""
        return any(name in self.parts[:-1] for name in names)

    def ends_with(self, *suffixes: str) -> bool:
        return any(self.path.endswith(suffix) for suffix in suffixes)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class of the plugin API.

    Subclasses set ``id``/``title``/``invariant`` and implement
    :meth:`check`, yielding ``(line, col, message)`` triples.  The
    engine turns those into :class:`Finding`\\ s, attaches snippets and
    applies suppressions.  ``invariant`` documents *which PR's folklore*
    the rule mechanises — it is what ``repro lint --list-rules`` prints.
    """

    id: ClassVar[str] = "RPR999"
    title: ClassVar[str] = ""
    invariant: ClassVar[str] = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope hook: return ``False`` to skip this file entirely."""
        return True

    def check(self, ctx: FileContext) -> Iterable[tuple[int, int, str]]:
        raise NotImplementedError


def call_name(func: ast.expr) -> str:
    """Dotted name of a call target (``np.linalg.solve``), '' if dynamic."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _parse_suppressions(source: str, path: str) -> tuple[list[Suppression], list[Finding]]:
    """Extract suppression comments; malformed ones become findings."""
    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    lines = source.splitlines()
    try:
        readline = iter(line + "\n" for line in lines).__next__
        tokens = list(tokenize.generate_tokens(readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []  # the parse-error finding covers this file already
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _SUPPRESS_RE.search(tok.string)
        if m is None:
            continue
        lineno = tok.start[0]
        rules = tuple(
            r.strip().upper() for r in m.group(1).split(",") if r.strip()
        )
        reason = m.group(2).strip().lstrip(":-—– ").strip()
        own_line = lines[lineno - 1].strip().startswith("#")
        target = lineno
        if own_line:
            # A standalone comment governs the next code line.
            for later in range(lineno + 1, len(lines) + 1):
                text = lines[later - 1].strip()
                if text and not text.startswith("#"):
                    target = later
                    break
        if not rules:
            problems.append(Finding(
                ENGINE_RULE_ID, path, lineno, 1,
                "suppression names no rules: use"
                " `# repro: ignore[RPRnnn]: reason`",
                snippet=lines[lineno - 1].strip(),
            ))
            continue
        if not reason:
            problems.append(Finding(
                ENGINE_RULE_ID, path, lineno, 1,
                f"suppression of {', '.join(rules)} must carry a reason:"
                " `# repro: ignore[RPRnnn]: why this is safe`",
                snippet=lines[lineno - 1].strip(),
            ))
            continue
        suppressions.append(Suppression(lineno, target, rules, reason))
    return suppressions, problems


def analyze_file(
    path: str | os.PathLike[str],
    rules: Sequence[Rule],
    display_path: str | None = None,
    check_unused_suppressions: bool = True,
) -> list[Finding]:
    """Run every applicable rule over one file.

    ``display_path`` overrides the path recorded in findings (the
    normalised repo-relative path); ``check_unused_suppressions`` is
    turned off when a ``--rule`` filter is active, since a suppression
    for an unselected rule is not "unused".
    """
    fs_path = Path(path)
    shown = display_path if display_path is not None else fs_path.as_posix()
    try:
        source = fs_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(ENGINE_RULE_ID, shown, 1, 1, f"unreadable file: {exc}")]
    try:
        tree = ast.parse(source, filename=str(fs_path))
    except SyntaxError as exc:
        return [Finding(
            ENGINE_RULE_ID, shown, exc.lineno or 1, exc.offset or 1,
            f"syntax error: {exc.msg}",
        )]
    ctx = FileContext(
        path=shown, source=source, tree=tree, lines=source.splitlines()
    )
    suppressions, findings = _parse_suppressions(source, shown)
    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.target_line, []).append(sup)

    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for line, col, message in rule.check(ctx):
            suppressed = False
            for sup in by_line.get(line, ()):
                if rule.id in sup.rules:
                    sup.used = True
                    suppressed = True
            findings.append(Finding(
                rule.id, shown, line, col, message,
                snippet=ctx.snippet(line), suppressed=suppressed,
            ))
    if check_unused_suppressions:
        for sup in suppressions:
            if not sup.used:
                findings.append(Finding(
                    ENGINE_RULE_ID, shown, sup.line, 1,
                    f"unused suppression of {', '.join(sup.rules)}"
                    " (no matching finding on its line): remove it",
                    snippet=ctx.snippet(sup.line),
                ))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def collect_files(paths: Sequence[str | os.PathLike[str]]) -> list[Path]:
    """Expand files/directories into the sorted ``*.py`` worklist."""
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
                and not any(part.endswith(".egg-info") for part in f.parts)
            )
        elif p.suffix == ".py":
            out.append(p)
    # De-duplicate while preserving order (a file named twice on the
    # command line must not double its findings).
    seen: set[Path] = set()
    unique = []
    for f in out:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def _display_path(f: Path) -> str:
    """Repo-relative posix path when possible (stable baseline keys)."""
    try:
        rel = os.path.relpath(f)
    except ValueError:  # pragma: no cover - different drive (windows)
        rel = str(f)
    if rel.startswith(".."):
        return f.as_posix()
    return Path(rel).as_posix()


def analyze_paths(
    paths: Sequence[str | os.PathLike[str]],
    rules: Sequence[Rule],
    jobs: int | None = None,
    check_unused_suppressions: bool = True,
    progress: Callable[[str], None] | None = None,
) -> list[Finding]:
    """Analyze every ``*.py`` under ``paths`` (files run in parallel)."""
    files = collect_files(paths)
    if not files:
        return []
    workers = jobs if jobs and jobs > 0 else min(32, (os.cpu_count() or 2))

    def work(f: Path) -> list[Finding]:
        if progress is not None:
            progress(str(f))
        return analyze_file(
            f, rules, display_path=_display_path(f),
            check_unused_suppressions=check_unused_suppressions,
        )

    if workers == 1 or len(files) == 1:
        batches = [work(f) for f in files]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            batches = list(pool.map(work, files))
    findings = [f for batch in batches for f in batch]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_findings(
    findings: Iterable[Finding],
    mark_baselined: Callable[[Finding], bool] | None = None,
) -> list[Finding]:
    """Apply a baseline predicate, returning re-marked findings."""
    if mark_baselined is None:
        return list(findings)
    return [
        replace(f, baselined=True) if (f.active and mark_baselined(f)) else f
        for f in findings
    ]
