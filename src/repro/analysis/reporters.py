"""Finding reporters: human text, machine JSON, GitHub annotations.

Each reporter is a function ``(findings, stale_entries, stream) ->
None``; the CLI selects one by ``--format``.  All three agree on what
*fails* a run — :attr:`Finding.active` — so CI and local output can
never disagree about the exit code.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, Sequence

from .baseline import BaselineEntry
from .engine import Finding

__all__ = ["REPORTERS", "report_text", "report_json", "report_github"]


def _summary_line(findings: Sequence[Finding], stale: Sequence[BaselineEntry]) -> str:
    active = [f for f in findings if f.active]
    suppressed = sum(1 for f in findings if f.suppressed)
    baselined = sum(1 for f in findings if f.baselined)
    by_rule = Counter(f.rule for f in active)
    parts = [f"{len(active)} finding{'s' if len(active) != 1 else ''}"]
    if by_rule:
        parts.append(
            "(" + ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items())) + ")"
        )
    if baselined:
        parts.append(f"{baselined} baselined")
    if suppressed:
        parts.append(f"{suppressed} suppressed")
    if stale:
        parts.append(f"{len(stale)} stale baseline entr{'ies' if len(stale) != 1 else 'y'}")
    return ", ".join(parts)


def report_text(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    stream: IO[str],
) -> None:
    for f in findings:
        if f.suppressed:
            continue
        tag = " [baselined]" if f.baselined else ""
        stream.write(f"{f.location()}: {f.rule} {f.message}{tag}\n")
        if f.snippet:
            stream.write(f"    {f.snippet}\n")
    for e in stale:
        stream.write(
            f"stale baseline entry: {e.rule} {e.path} ({e.hash})"
            " — the finding is gone; remove the entry\n"
        )
    stream.write(_summary_line(findings, stale) + "\n")


def report_json(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    stream: IO[str],
) -> None:
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "snippet": f.snippet,
                "suppressed": f.suppressed,
                "baselined": f.baselined,
                "active": f.active,
            }
            for f in findings
        ],
        "stale_baseline_entries": [
            {"rule": e.rule, "path": e.path, "hash": e.hash, "note": e.note}
            for e in stale
        ],
        "active_count": sum(1 for f in findings if f.active),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def _escape_annotation(text: str) -> str:
    # GitHub workflow-command escaping for message payloads.
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def report_github(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    stream: IO[str],
) -> None:
    """Emit ``::error``/``::notice`` workflow commands for annotations."""
    for f in findings:
        if f.suppressed:
            continue
        level = "notice" if f.baselined else "error"
        stream.write(
            f"::{level} file={f.path},line={f.line},col={f.col},"
            f"title={f.rule}::{_escape_annotation(f.message)}\n"
        )
    for e in stale:
        stream.write(
            f"::notice title=stale-baseline::{_escape_annotation(f'{e.rule} {e.path} ({e.hash}) no longer fires; remove the baseline entry')}\n"
        )
    stream.write(_summary_line(findings, stale) + "\n")


REPORTERS = {
    "text": report_text,
    "json": report_json,
    "github": report_github,
}
