"""Parallel DQMC: independent Markov chains over SimMPI ranks.

The paper's conclusion lists "the hybrid massive parallelization of the
full DQMC simulation" as future work.  The coarsest (and in practice
most effective) layer of that parallelisation is *chain parallelism*:
run ``R`` statistically independent Markov chains — different seeds,
same physics — one per MPI rank, and pool their measurement bins.
Error bars shrink like ``1/sqrt(R)`` with zero communication during
sampling, and disagreement *between* chains is itself the standard
convergence diagnostic (Gelman–Rubin ``R-hat``).

:func:`run_parallel_chains` executes this on the SimMPI runtime
(threads inside each rank still accelerate the per-chain FSI and
measurements — the full hybrid stack), gathers the per-chain bin means
to the root, and returns pooled estimates plus per-observable ``R-hat``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hubbard.matrix import HubbardModel
from ..parallel.simmpi import Communicator, SimMPI
from .engine import DQMC, DQMCConfig
from .stats import jackknife, jackknife_ratio

__all__ = ["ChainResult", "run_parallel_chains", "gelman_rubin"]


def gelman_rubin(chain_means: np.ndarray) -> float:
    """The Gelman–Rubin ``R-hat`` over per-chain sample arrays.

    ``chain_means`` has shape ``(R, n)`` — ``n`` bin means from each of
    ``R`` chains.  Values near 1 indicate the chains sample the same
    distribution; ``> ~1.1`` flags unconverged warmup.
    """
    chain_means = np.asarray(chain_means, dtype=float)
    R, n = chain_means.shape
    if R < 2 or n < 2:
        raise ValueError("need at least 2 chains with 2 bins each")
    per_chain_mean = chain_means.mean(axis=1)
    grand = per_chain_mean.mean()
    B = n * np.sum((per_chain_mean - grand) ** 2) / (R - 1)
    W = np.mean(np.var(chain_means, axis=1, ddof=1))
    if W == 0.0:
        return 1.0
    var_plus = (n - 1) / n * W + B / n
    return float(np.sqrt(var_plus / W))


@dataclass
class ChainResult:
    """Pooled estimates from ``R`` independent chains."""

    estimates: dict[str, tuple[np.ndarray, np.ndarray]]
    r_hat: dict[str, float]
    n_chains: int
    bins_per_chain: int
    acceptance_rates: list[float]

    def observable(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        return self.estimates[name]


def _chain_body(
    comm: Communicator, model: HubbardModel, base_config: DQMCConfig
) -> dict:
    """One rank: run a chain with a rank-derived seed, return bin means."""
    cfg_dict = {**base_config.__dict__}
    base_seed = cfg_dict.pop("seed") or 0
    cfg = DQMCConfig(**cfg_dict, seed=base_seed + 7919 * comm.rank)
    sim = DQMC(model, cfg)
    # Re-run the engine's measurement loop but keep the raw bins: use
    # the public API — run() — and recover bins from a local analysis.
    from .stats import BinningAnalysis

    analysis = BinningAnalysis(bin_size=cfg.bin_size)
    for _ in range(cfg.warmup_sweeps):
        sim.sweep()
    for it in range(cfg.measurement_sweeps):
        sim.sweep()
        greens = sim.compute_greens()
        if it % cfg.sign_resync_every == 0:
            sim.resync_sign()
        s = sim.config_sign if sim.config_sign is not None else 1.0
        sample = sim.measure(greens)
        weighted = {
            k: np.asarray(v, dtype=float) * s for k, v in sample.items()
        }
        weighted["sign"] = s
        analysis.add(weighted)
    bins = {
        name: series.bin_means(include_partial=True)
        for name, series in analysis._series.items()
    }
    payload = {
        "bins": bins,
        "acceptance": sim.stats.acceptance_rate,
    }
    gathered = comm.gather(payload, root=0)
    return gathered if comm.rank == 0 else payload


def run_parallel_chains(
    model: HubbardModel,
    config: DQMCConfig,
    n_chains: int,
) -> ChainResult:
    """Run ``n_chains`` independent DQMC chains on SimMPI ranks.

    Each rank derives its seed from ``config.seed`` plus its rank, runs
    warmup + measurement locally (with ``config.num_threads`` OpenMP-
    style threads inside the rank), and the root pools the bins:
    jackknife over the union for the estimates, Gelman–Rubin across
    chains for convergence.
    """
    if n_chains < 2:
        raise ValueError(f"need >= 2 chains, got {n_chains}")
    world = SimMPI(n_chains)
    results = world.run(_chain_body, model, config)
    gathered = results[0]
    names = sorted(gathered[0]["bins"])
    estimates: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    r_hat: dict[str, float] = {}
    bins_per_chain = min(len(g["bins"][names[0]]) for g in gathered)
    sign_pooled = np.concatenate(
        [np.asarray(g["bins"]["sign"][:bins_per_chain]) for g in gathered]
    )
    for name in names:
        stacked = np.stack(
            [np.asarray(g["bins"][name][:bins_per_chain]) for g in gathered]
        )
        pooled = stacked.reshape(-1, *stacked.shape[2:])
        if name == "sign":
            estimates[name] = jackknife(pooled)
        else:
            # Sign-reweighted ratio estimator, pooled across chains
            # (reduces to the plain mean when the sign is uniformly 1).
            estimates[name] = jackknife_ratio(pooled, sign_pooled)
        if stacked.ndim == 2 and bins_per_chain >= 2:
            r_hat[name] = gelman_rubin(stacked)
    return ChainResult(
        estimates=estimates,
        r_hat=r_hat,
        n_chains=n_chains,
        bins_per_chain=bins_per_chain,
        acceptance_rates=[g["acceptance"] for g in gathered],
    )
