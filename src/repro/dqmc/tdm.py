"""Time-displaced measurements beyond SPXX.

SPXX (Sec. IV) is one instance of a general pattern: observables built
from off-diagonal blocks ``G_kl`` grouped by the temporal-distance map
``T(k, l)`` and the spatial-distance map ``D(i, j)``.  This module
factors that pattern into :class:`BlockPairAccumulator` and implements
two more members of the family the paper's measurement catalogue
implies:

* :func:`local_greens_tau` — the local imaginary-time Green's function
  ``G_loc(tau) = (1/N) sum_i <c_i(tau) c_i^dag(0)>``, the raw material
  of spectral analysis (analytic continuation);
* :func:`szz_tau` — the time-displaced *longitudinal* spin correlation
  ``<S_i^z(tau) S_j^z(0)>`` resolved by distance class, companion to
  the transverse SPXX.

Wick input per HS configuration (spins independent):

* ``<c_i(tau_k) c_j^dag(tau_l)>      = G_kl(i, j)``
* ``<c_i^dag(tau_k) c_j(tau_l)>      = delta_kl delta_ij - G_lk(j, i)``
* densities use the diagonal blocks: ``<n_i(tau_k)> = 1 - G_kk(i, i)``.

The ``tau = 0`` bin keeps the equal-time contact term, so it reproduces
the equal-time formulas of :mod:`repro.dqmc.measurements` exactly —
asserted in the tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.patterns import SelectedInversion
from ..hubbard.lattice import RectangularLattice
from ..parallel.openmp import thread_local_reduce
from .spxx import spxx_pairs

__all__ = ["BlockPairAccumulator", "local_greens_tau", "szz_tau", "pairing_tau"]


class BlockPairAccumulator:
    """Threaded accumulation over block pairs ``(k, l)`` grouped by ``tau``.

    ``kernel(k, l) -> (N, N)`` produces the per-pair entry matrix;
    entries are distance-binned and *plain-averaged* over the ``C(tau)``
    contributing pairs and the class sizes.  (SPXX keeps the paper's
    literal ``2 / C(tau)`` prefactor in :mod:`repro.dqmc.spxx`; the
    correlators here are normalised so that ``tau = 0`` reproduces the
    equal-time formulas exactly.)
    """

    def __init__(self, lattice: RectangularLattice, L: int, seeds: list[int]):
        self.lattice = lattice
        self.L = L
        self.pairs = spxx_pairs(seeds, L)
        D, radii = lattice.distance_classes
        self._flatD = D.ravel()
        self.radii = radii
        self.c_tau = np.zeros(L, dtype=np.int64)
        for _, _, tau in self.pairs:
            self.c_tau[tau] += 1
        self._class_counts = np.bincount(
            self._flatD, minlength=len(radii)
        ).astype(float)

    def accumulate(
        self,
        kernel: Callable[[int, int], np.ndarray],
        num_threads: int | None = None,
    ) -> np.ndarray:
        """Return the normalised ``(L, d_max)`` correlation matrix."""
        L, d_max = self.L, len(self.radii)

        def body(idx: int, local: np.ndarray) -> None:
            k, l, tau = self.pairs[idx]
            e = kernel(k, l)
            local[tau] += np.bincount(
                self._flatD, weights=e.ravel(), minlength=d_max
            )

        total = thread_local_reduce(
            body,
            len(self.pairs),
            lambda: np.zeros((L, d_max)),
            lambda a, b: a + b,
            num_threads=num_threads,
        )
        if total is None:
            total = np.zeros((L, d_max))
        norm = np.where(self.c_tau > 0, 1.0 / np.maximum(self.c_tau, 1), 0.0)
        return total * norm[:, None] / self._class_counts[None, :]

    def accumulate_scalar(
        self, kernel: Callable[[int, int], float]
    ) -> np.ndarray:
        """Per-``tau`` scalar average (no distance binning)."""
        sums = np.zeros(self.L)
        for k, l, tau in self.pairs:
            sums[tau] += kernel(k, l)
        with np.errstate(invalid="ignore"):
            return np.where(self.c_tau > 0, sums / np.maximum(self.c_tau, 1), 0.0)


def local_greens_tau(
    rows_up: SelectedInversion,
    rows_dn: SelectedInversion,
    lattice: RectangularLattice,
) -> np.ndarray:
    """``G_loc(tau)``, spin-averaged, shape ``(L,)``.

    ``G_loc(0) = 1 - n/2`` per spin at equal time; for ``tau > 0`` it
    decays toward the smallest single-particle gap — the quantity fed
    to analytic continuation in production studies.

    Pairs with ``k < l`` wrap around the imaginary-time torus; the
    Green's function is *antiperiodic* (``G(tau - beta) = -G(tau)``),
    so those blocks enter with a minus sign.  (Two-block correlators
    like SPXX/szz are insensitive to this — both factors flip.)
    """
    sel = rows_up.selection
    acc = BlockPairAccumulator(lattice, sel.L, sel.seeds)

    def kernel(k: int, l: int) -> float:
        sign = 1.0 if k >= l else -1.0
        g_up = float(np.trace(rows_up[(k, l)]))
        g_dn = float(np.trace(rows_dn[(k, l)]))
        return sign * 0.5 * (g_up + g_dn) / lattice.nsites

    return acc.accumulate_scalar(kernel)


def szz_tau(
    rows_up: SelectedInversion,
    cols_up: SelectedInversion,
    rows_dn: SelectedInversion,
    cols_dn: SelectedInversion,
    diag_up: SelectedInversion,
    diag_dn: SelectedInversion,
    lattice: RectangularLattice,
    num_threads: int | None = None,
) -> np.ndarray:
    """Time-displaced ``<S_i^z(tau) S_j^z(0)>`` by distance class.

    ``S^z = (n_up - n_dn) / 2``; per configuration

    ``<n_i^s(tau_k) n_j^s(tau_l)> = nbar_k^s(i) nbar_l^s(j)
                                    - G^s_lk(j,i) G^s_kl(i,j)``  (k != l)

    and cross-spin terms factorise; the connected same-spin piece uses
    the row/column blocks, the density piece the diagonal blocks.
    """
    sel = rows_up.selection
    for other in (cols_up, rows_dn, cols_dn):
        o = other.selection
        if (o.L, o.c, o.q) != (sel.L, sel.c, sel.q):
            raise ValueError("selection geometries differ")
    L = sel.L
    acc = BlockPairAccumulator(lattice, L, sel.seeds)
    nbar = {
        +1: {k: 1.0 - np.diag(diag_up[(k, k)]) for k in range(1, L + 1)},
        -1: {k: 1.0 - np.diag(diag_dn[(k, k)]) for k in range(1, L + 1)},
    }
    rows = {+1: rows_up, -1: rows_dn}
    cols = {+1: cols_up, -1: cols_dn}

    def kernel(k: int, l: int) -> np.ndarray:
        out = np.zeros((lattice.nsites, lattice.nsites))
        for s in (+1, -1):
            for sp in (+1, -1):
                dens = np.multiply.outer(nbar[s][k], nbar[sp][l])
                term = dens.copy()
                if s == sp:
                    if k == l:
                        # Equal-time same-spin contraction keeps the
                        # contact term: (delta - G(j,i)) G(i,j).
                        G = rows[s][(k, k)]
                        term += (np.eye(lattice.nsites) - G.T) * G
                    else:
                        term -= cols[s][(l, k)].T * rows[s][(k, l)]
                out += (s * sp) * term
        return 0.25 * out

    return acc.accumulate(kernel, num_threads=num_threads)


def pairing_tau(
    rows_up: SelectedInversion,
    rows_dn: SelectedInversion,
    lattice: RectangularLattice,
    num_threads: int | None = None,
) -> np.ndarray:
    """Time-displaced s-wave pair correlation ``<Delta_i(tau) Delta_j^dag(0)>``.

    ``Delta_i = c_{i,dn} c_{i,up}``; per HS configuration the two spin
    sectors contract independently:

    ``<Delta_i(tau_k) Delta_j^dag(tau_l)> = G^up_kl(i,j) G^dn_kl(i,j)``

    — a product of two *same-direction* blocks, so only the row pattern
    is needed (and the antiperiodic wrap signs cancel pairwise).
    Shape ``(L, d_max)``.
    """
    sel = rows_up.selection
    o = rows_dn.selection
    if (o.L, o.c, o.q) != (sel.L, sel.c, sel.q):
        raise ValueError("selection geometries differ")
    acc = BlockPairAccumulator(lattice, sel.L, sel.seeds)

    def kernel(k: int, l: int) -> np.ndarray:
        return rows_up[(k, l)] * rows_dn[(k, l)]

    return acc.accumulate(kernel, num_threads=num_threads)
