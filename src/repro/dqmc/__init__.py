"""DQMC simulation substrate: sweeps, stabilisation, measurements."""

from .autocorr import (
    autocorrelation_function,
    binning_scan,
    effective_sample_size,
    geweke_z,
    integrated_autocorrelation_time,
)
from .correlations import (
    afm_structure_factor,
    charge_correlation,
    density_density,
    pairing_correlation,
    structure_factor,
)
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .delayed import DelayedGreens
from .ed import ExactDiagonalization
from .fourier import from_distance_classes, lattice_momenta, structure_factor_grid
from .engine import DQMC, DQMCConfig, DQMCResult, GreensBundle
from .parallel_chains import ChainResult, gelman_rubin, run_parallel_chains
from .measurements import (
    EqualTimeAccumulator,
    EqualTimeMeasurement,
    density_profile,
    measure_slice,
    moment_profile,
)
from .spxx import SPXXResult, spxx, spxx_pairs, temporal_distance
from .stabilize import UDT, stable_equal_time, stable_inverse_plus, udt_chain
from .stats import BinnedSeries, BinningAnalysis, jackknife, jackknife_ratio
from .tdm import BlockPairAccumulator, local_greens_tau, pairing_tau, szz_tau
from .trotter import ExtrapolationResult, extrapolate, richardson
from .updates import (
    UpdateStats,
    advance_slice,
    apply_flip,
    gamma_factor,
    init_wrapped,
    metropolis_ratio,
)

__all__ = [
    "DQMC",
    "DelayedGreens",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "ChainResult",
    "gelman_rubin",
    "run_parallel_chains",
    "ExactDiagonalization",
    "BlockPairAccumulator",
    "local_greens_tau",
    "szz_tau",
    "pairing_tau",
    "jackknife_ratio",
    "ExtrapolationResult",
    "extrapolate",
    "richardson",
    "from_distance_classes",
    "lattice_momenta",
    "structure_factor_grid",
    "geweke_z",
    "afm_structure_factor",
    "autocorrelation_function",
    "binning_scan",
    "charge_correlation",
    "density_density",
    "effective_sample_size",
    "integrated_autocorrelation_time",
    "pairing_correlation",
    "structure_factor",
    "DQMCConfig",
    "DQMCResult",
    "GreensBundle",
    "EqualTimeAccumulator",
    "EqualTimeMeasurement",
    "measure_slice",
    "density_profile",
    "moment_profile",
    "SPXXResult",
    "spxx",
    "spxx_pairs",
    "temporal_distance",
    "UDT",
    "stable_equal_time",
    "stable_inverse_plus",
    "udt_chain",
    "BinnedSeries",
    "BinningAnalysis",
    "jackknife",
    "UpdateStats",
    "advance_slice",
    "apply_flip",
    "gamma_factor",
    "init_wrapped",
    "metropolis_ratio",
]
