"""Single-site Metropolis updates of the DQMC sweep (Alg. 4, inner loop).

The sweep visits every site ``i`` of every time slice ``l`` and
proposes flipping the HS spin ``h(l, i)``.  With the paper's block
convention ``B_l = e^{t dtau K} e^{sigma nu V_l}`` the algebra is done
on the *half-wrapped* Green's function

    ``Gw_l = (I + P_l B_{l-1} ... B_{l+1} K_f)^{-1} = K_f^{-1} G_ll K_f``

(``K_f = e^{t dtau K}``, ``P_l = e^{sigma nu V_l}``), because a flip
multiplies this cyclic rotation *from the left* by the rank-1 kick
``Delta = I + gamma e_i e_i^T``:

* flip factor:      ``gamma_sigma = e^{-2 sigma nu h(l,i)} - 1``
* Metropolis ratio: ``r_sigma = 1 + gamma_sigma (1 - Gw_sigma[i, i])``
  (the determinant ratio ``det M_sigma(h') / det M_sigma(h)`` of
  Alg. 4 step (2) — cyclic rotations preserve the determinant)
* accepted update (Sherman–Morrison, O(N^2)):
  ``Gw <- Gw - (gamma/r) Gw[:, i] (e_i - Gw[i, :])``
* slice advance:
  ``Gw_{l+1} = P_{l+1} K_f Gw_l K_f^{-1} P_{l+1}^{-1}`` (two gemms and
  two diagonal scalings).

These identities are exercised directly against dense determinants and
inverses in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import _kernels as kr
from ..hubbard.hs_field import HSField
from ..hubbard.matrix import HubbardModel

__all__ = [
    "gamma_factor",
    "metropolis_ratio",
    "apply_flip",
    "advance_slice",
    "init_wrapped",
    "UpdateStats",
]


def gamma_factor(model: HubbardModel, h_li: int, sigma: int) -> float:
    """``gamma = exp(-2 s nu h(l,i)) - 1`` for a proposed flip.

    ``s = sigma`` for the repulsive spin channel; ``s = +1`` for the
    attractive charge channel (both spins share the field).
    """
    s = model.spin_factor(sigma)
    return float(np.expm1(-2.0 * s * model.nu * h_li))


def metropolis_ratio(Gw: np.ndarray, i: int, gamma: float) -> float:
    """``r_sigma = 1 + gamma (1 - Gw[i, i])`` (one spin's det ratio)."""
    return float(1.0 + gamma * (1.0 - Gw[i, i]))


def apply_flip(Gw: np.ndarray, i: int, gamma: float, r: float) -> None:
    """Rank-1 in-place update of ``Gw`` after an accepted flip at site ``i``."""
    col = Gw[:, i].copy()
    row = -Gw[i, :]
    row[i] += 1.0  # e_i - Gw[i, :]
    # Gw -= (gamma/r) * outer(col, row); O(N^2).
    Gw -= (gamma / r) * np.multiply.outer(col, row)


def advance_slice(
    Gw: np.ndarray,
    model: HubbardModel,
    field: HSField,
    l_next: int,
    sigma: int,
) -> np.ndarray:
    """Move the wrapped Green's function from slice ``l`` to ``l_next``.

    ``l_next`` is 0-based.  Cost: two N^3 gemms; the potential factors
    are diagonal scalings.
    """
    Kf = model.kinetic.forward
    Kb = model.kinetic.backward
    s = model.spin_factor(sigma)
    p = np.exp(
        s * model.nu * field.slice(l_next).astype(np.float64)
        + model.dtau * model.mu
    )
    out = kr.gemm(kr.gemm(Kf, Gw), Kb)
    out *= p[:, None]
    out *= (1.0 / p)[None, :]
    return out


def init_wrapped(G_ll: np.ndarray, model: HubbardModel) -> np.ndarray:
    """``Gw_l = K_f^{-1} G_ll K_f`` from an equal-time Green's function."""
    Kf = model.kinetic.forward
    Kb = model.kinetic.backward
    return kr.gemm(kr.gemm(Kb, G_ll), Kf)


@dataclass
class UpdateStats:
    """Bookkeeping for a sweep: proposals, acceptances, sign tallies."""

    proposed: int = 0
    accepted: int = 0
    negative_ratios: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0

    def merge(self, other: "UpdateStats") -> "UpdateStats":
        return UpdateStats(
            self.proposed + other.proposed,
            self.accepted + other.accepted,
            self.negative_ratios + other.negative_ratios,
        )
