"""Trotter-error extrapolation ``dtau -> 0``.

DQMC observables carry a systematic ``O(dtau^2)`` bias from the
Suzuki–Trotter splitting of the Boltzmann factor (the asymmetric
``e^{-dtau K} e^{-dtau V}`` used here).  Production studies therefore
run several ``L`` at fixed ``beta`` and extrapolate.  This module does
the fit:

* :func:`extrapolate` — weighted least squares of
  ``O(dtau) = O_0 + a dtau^2`` (optionally higher orders), returning
  the ``dtau -> 0`` value with its standard error;
* :func:`richardson` — the two-point Richardson shortcut.

The ED cross-validation (``tests/test_trotter.py``) shows the
extrapolated DQMC double occupancy landing closer to the exact value
than any single-``dtau`` run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..resilience.guards import guarded_inv, guarded_solve

__all__ = ["ExtrapolationResult", "extrapolate", "richardson"]


@dataclass(frozen=True)
class ExtrapolationResult:
    """Outcome of a ``dtau -> 0`` fit."""

    value: float
    error: float
    coefficients: np.ndarray
    residual: float

    def within(self, reference: float, n_sigma: float = 3.0) -> bool:
        """Is ``reference`` within ``n_sigma`` of the extrapolated value?"""
        return abs(self.value - reference) <= n_sigma * max(self.error, 1e-300)


def extrapolate(
    dtaus: np.ndarray,
    values: np.ndarray,
    errors: np.ndarray | None = None,
    order: int = 1,
) -> ExtrapolationResult:
    """Fit ``O(dtau) = O_0 + a_1 dtau^2 + ... + a_order dtau^{2 order}``.

    Parameters
    ----------
    dtaus, values:
        The measured points (at least ``order + 1`` of them).
    errors:
        Optional 1-sigma statistical errors (weights ``1/err^2``);
        uniform weights when omitted.
    order:
        Number of even powers beyond the constant (1 = pure ``dtau^2``).

    Returns
    -------
    ExtrapolationResult
        ``value``/``error`` are the ``dtau -> 0`` intercept and its
        standard error from the weighted normal equations.
    """
    dtaus = np.asarray(dtaus, dtype=float)
    values = np.asarray(values, dtype=float)
    n = len(dtaus)
    if n != len(values):
        raise ValueError("dtaus and values must have equal length")
    if n < order + 1:
        raise ValueError(
            f"need at least {order + 1} points for order {order}, got {n}"
        )
    if errors is None:
        w = np.ones(n)
    else:
        errors = np.asarray(errors, dtype=float)
        if np.any(errors <= 0):
            raise ValueError("errors must be positive")
        w = 1.0 / errors**2
    # Design matrix in dtau^2 powers.
    X = np.stack([dtaus ** (2 * p) for p in range(order + 1)], axis=1)
    WX = X * w[:, None]
    A = X.T @ WX
    b = WX.T @ values
    # The normal equations go singular when dtau points repeat (or
    # nearly so): the guarded solvers trip a typed NumericalHealthError
    # with the condition estimate instead of a raw LinAlgError or a
    # silently garbage covariance.
    coef = guarded_solve(A, b, site="trotter.extrapolate")
    cov = guarded_inv(A, site="trotter.extrapolate")
    resid = values - X @ coef
    # Scale covariance by reduced chi^2 when fitting unweighted data
    # with dof left; with supplied errors report the propagated error.
    dof = n - (order + 1)
    if errors is None and dof > 0:
        scale = float(resid @ resid) / dof
        cov = cov * scale
    return ExtrapolationResult(
        value=float(coef[0]),
        error=float(np.sqrt(max(cov[0, 0], 0.0))),
        coefficients=coef,
        residual=float(np.sqrt(np.mean(resid**2))),
    )


def richardson(
    dtau_coarse: float,
    value_coarse: float,
    dtau_fine: float,
    value_fine: float,
) -> float:
    """Two-point ``O(dtau^2)`` Richardson extrapolation.

    ``O_0 = (r^2 O_fine - O_coarse) / (r^2 - 1)``, ``r = coarse/fine``.
    """
    if dtau_fine >= dtau_coarse:
        raise ValueError("dtau_fine must be smaller than dtau_coarse")
    r2 = (dtau_coarse / dtau_fine) ** 2
    return float((r2 * value_fine - value_coarse) / (r2 - 1.0))
