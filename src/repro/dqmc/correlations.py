"""Extended equal-time correlation functions and structure factors.

Beyond the core observables of :mod:`repro.dqmc.measurements`, the
"correlation functions for magnetic, charge, superconducting order and
phase transitions" the paper lists (Sec. IV) include:

* **density-density** ``<n_i n_j>`` and the charge structure factor;
* **s-wave pairing** ``<Delta_i Delta_j^dag>`` with
  ``Delta_i = c_{i,dn} c_{i,up}`` (superconducting order);
* **momentum-resolved structure factors** ``S(q)`` — lattice Fourier
  transforms of the distance-resolved correlations, with the
  antiferromagnetic point ``q = (pi, pi)`` the classic diagnostic of
  the half-filled Hubbard model.

All Wick contractions are per HS configuration (spin sectors
independent); every formula is exercised against brute-force
contractions and free-fermion limits in ``tests/test_correlations.py``.
"""

from __future__ import annotations

import numpy as np

from ..hubbard.lattice import RectangularLattice

__all__ = [
    "density_density",
    "charge_correlation",
    "pairing_correlation",
    "structure_factor",
    "afm_structure_factor",
]


def density_density(G_up: np.ndarray, G_dn: np.ndarray) -> np.ndarray:
    """Pairwise ``<n_i n_j>`` (all spin channels summed), shape ``(N, N)``.

    Wick per configuration:
    ``<n_i^s n_j^s>  = n_i^s n_j^s + (delta_ij - G_s(j,i)) G_s(i,j)``,
    ``<n_i^s n_j^s'> = n_i^s n_j^s'`` for opposite spins.
    """
    N = G_up.shape[0]
    eye = np.eye(N)
    n_up = 1.0 - np.diag(G_up)
    n_dn = 1.0 - np.diag(G_dn)
    same_up = np.multiply.outer(n_up, n_up) + (eye - G_up.T) * G_up
    same_dn = np.multiply.outer(n_dn, n_dn) + (eye - G_dn.T) * G_dn
    cross = np.multiply.outer(n_up, n_dn)
    return same_up + same_dn + cross + cross.T


def charge_correlation(
    G_up: np.ndarray, G_dn: np.ndarray, lattice: RectangularLattice
) -> np.ndarray:
    """Connected charge correlation ``<n_i n_j> - <n_i><n_j>`` by distance class."""
    nn = density_density(G_up, G_dn)
    n_i = (1.0 - np.diag(G_up)) + (1.0 - np.diag(G_dn))
    connected = nn - np.multiply.outer(n_i, n_i)
    D, radii = lattice.distance_classes
    counts = np.bincount(D.ravel(), minlength=len(radii)).astype(float)
    sums = np.bincount(D.ravel(), weights=connected.ravel(), minlength=len(radii))
    return sums / counts


def pairing_correlation(
    G_up: np.ndarray, G_dn: np.ndarray, lattice: RectangularLattice
) -> np.ndarray:
    """Equal-time s-wave pair correlation ``<Delta_i Delta_j^dag>`` by distance.

    ``Delta_i = c_{i,dn} c_{i,up}``; per configuration
    ``<Delta_i Delta_j^dag> = G_up(i,j) G_dn(i,j)``.
    """
    pair = G_up * G_dn
    D, radii = lattice.distance_classes
    counts = np.bincount(D.ravel(), minlength=len(radii)).astype(float)
    sums = np.bincount(D.ravel(), weights=pair.ravel(), minlength=len(radii))
    return sums / counts


def structure_factor(
    pair_values: np.ndarray, lattice: RectangularLattice, q: tuple[float, float]
) -> float:
    """``S(q) = (1/N) sum_ij e^{i q . (r_i - r_j)} C(i, j)``.

    ``pair_values`` is the full pairwise correlation matrix ``C``
    (``(N, N)``); returns the real part (C symmetric under ``i <-> j``
    for all correlators here).
    """
    disp = lattice.displacement_table.astype(float)
    phase = np.exp(1j * (q[0] * disp[..., 0] + q[1] * disp[..., 1]))
    return float(np.real(np.sum(phase * pair_values)) / lattice.nsites)


def afm_structure_factor(
    G_up: np.ndarray, G_dn: np.ndarray, lattice: RectangularLattice
) -> float:
    """The antiferromagnetic spin structure factor ``S(pi, pi)``.

    Uses the full pairwise ``<S_i^z S_j^z>`` (same contraction as
    :func:`repro.dqmc.measurements.measure_slice` before distance
    binning).  Grows with the AFM correlation length as the half-filled
    model is cooled — the classic Hubbard-model diagnostic.
    """
    N = G_up.shape[0]
    eye = np.eye(N)
    n_up = 1.0 - np.diag(G_up)
    n_dn = 1.0 - np.diag(G_dn)
    same_up = np.multiply.outer(n_up, n_up) + (eye - G_up.T) * G_up
    same_dn = np.multiply.outer(n_dn, n_dn) + (eye - G_dn.T) * G_dn
    cross = np.multiply.outer(n_up, n_dn)
    szz_pair = 0.25 * (same_up + same_dn - cross - cross.T)
    return structure_factor(szz_pair, lattice, (np.pi, np.pi))
