"""SPXX — the time-dependent XY spin-spin correlation (Sec. IV).

SPXX is the paper's worked example of a *time-dependent* measurement:
an ``L x d_max`` matrix indexed by the temporal distance ``tau`` and
the spatial distance class ``d``, accumulated from *off-diagonal*
blocks of the Green's functions of both spins — which is precisely why
the selected inversion must produce block rows *and* block columns
("for entries in ``G_kl`` and ``G_lk`` simultaneously").

Structure, exactly as the paper defines it:

* the temporal-distance map ``T(k, l) = k - l`` if ``k > l`` else
  ``k - l + L`` assigns every ordered block pair to a ``tau``;
* the contributing set is ``T(tau) = {(k, l) : T(k, l) = tau}``
  restricted to pairs the selected inversion actually holds, i.e.
  ``k in I`` (row pattern) with the mirror ``(l, k)`` supplied by the
  column pattern;
* ``C(tau)`` counts the contributing block pairs; entries with
  ``C(tau) = 0`` are zero;
* the spatial-distance map ``D(i, j)`` groups matrix entries into
  distance classes (see :meth:`repro.hubbard.lattice.RectangularLattice.distance_classes`).

The Wick contraction: with ``S_i^+ = c_i_up^dag c_i_dn`` and spin
sectors independent per HS configuration,

    ``<S_i^x(tau_k) S_j^x(tau_l)> ~ 1/2 [ G_up_kl(i,j) G_dn_lk(j,i)
                                        + G_dn_kl(i,j) G_up_lk(j,i) ]``

(per-sigma contributions ``SPXX(G^sigma)`` in the paper's notation;
the printed equation in the scanned source is partially illegible, so
the contraction is re-derived — the *computational shape* (which blocks
and entries are touched, the ``C(tau)`` normalisation, element-wise
level-1 work) matches the paper exactly, which is what the Fig. 10
profile experiment measures).

The inner element-wise sums are vectorised per block pair into one
Hadamard product plus a ``bincount`` over distance classes — and block
pairs are distributed over OpenMP-style threads with per-thread
accumulators, mirroring Alg. 3.
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import SelectedInversion
from ..hubbard.lattice import RectangularLattice
from ..parallel.openmp import thread_local_reduce

__all__ = ["temporal_distance", "spxx_pairs", "spxx", "SPXXResult"]


def temporal_distance(k: int, l: int, L: int) -> int:
    """``T(k, l) = k - l`` (mod ``L``, in ``{0, ..., L-1}``) per Sec. IV."""
    return (k - l) % L


def spxx_pairs(seeds: list[int], L: int) -> list[tuple[int, int, int]]:
    """Contributing block pairs ``(k, l, tau)`` with ``k`` in the seed set.

    The row pattern holds ``G_kl`` for ``k in I``; the matching column
    pattern holds ``G_lk`` for ``l`` ranging over all slices (its
    selected columns are also ``I``, and ``G_lk`` has its *column*
    index in ``I``) — so every ordered pair ``(k, l)`` with ``k in I``
    contributes.
    """
    return [
        (k, l, temporal_distance(k, l, L))
        for k in seeds
        for l in range(1, L + 1)
    ]


class SPXXResult:
    """An ``L x d_max`` SPXX matrix plus its contribution counts."""

    def __init__(self, values: np.ndarray, c_tau: np.ndarray, radii: np.ndarray):
        self.values = values
        self.c_tau = c_tau
        self.radii = radii

    @property
    def L(self) -> int:
        return self.values.shape[0]

    @property
    def d_max(self) -> int:
        return self.values.shape[1]

    def structure_factor(self) -> np.ndarray:
        """Sum over distance classes per ``tau`` (a crude q=0 transform)."""
        return self.values.sum(axis=1)


def spxx(
    rows_up: SelectedInversion,
    cols_up: SelectedInversion,
    rows_dn: SelectedInversion,
    cols_dn: SelectedInversion,
    lattice: RectangularLattice,
    num_threads: int | None = None,
) -> SPXXResult:
    """Accumulate SPXX from row+column selected inversions of both spins.

    All four selections must share the same geometry ``(L, c, q)`` —
    the engine guarantees this by wrapping all patterns from one FSI
    seed grid per spin.
    """
    sel = rows_up.selection
    for other in (cols_up, rows_dn, cols_dn):
        o = other.selection
        if (o.L, o.c, o.q) != (sel.L, sel.c, sel.q):
            raise ValueError(
                f"selection geometries differ: {(o.L, o.c, o.q)} vs"
                f" {(sel.L, sel.c, sel.q)}"
            )
    L = sel.L
    D, radii = lattice.distance_classes
    d_max = len(radii)
    flatD = D.ravel()
    pairs = spxx_pairs(sel.seeds, L)

    c_tau = np.zeros(L, dtype=np.int64)
    for _, _, tau in pairs:
        c_tau[tau] += 1

    counts = np.bincount(flatD, minlength=d_max).astype(float)

    # Per-thread local accumulators (Alg. 3: thread-local measurement
    # buffers avoid concurrent writes; merged after the join).
    def body(idx: int, acc: np.ndarray) -> None:
        k, l, tau = pairs[idx]
        # G_kl(i, j) * G_lk(j, i): Hadamard with the transpose.
        g1 = rows_up[(k, l)] * cols_dn[(l, k)].T
        g2 = rows_dn[(k, l)] * cols_up[(l, k)].T
        e = 0.5 * (g1 + g2)
        acc[tau] += np.bincount(flatD, weights=e.ravel(), minlength=d_max)

    total = thread_local_reduce(
        body,
        len(pairs),
        lambda: np.zeros((L, d_max)),
        lambda a, b: a + b,
        num_threads=num_threads,
    )
    if total is None:
        total = np.zeros((L, d_max))
    # Normalise: 2 / C(tau) over block pairs (paper), then average the
    # element-wise sums over pair multiplicity per distance class.
    with np.errstate(divide="ignore", invalid="ignore"):
        norm = np.where(c_tau > 0, 2.0 / np.maximum(c_tau, 1), 0.0)
    values = total * norm[:, None] / counts[None, :]
    return SPXXResult(values=values, c_tau=c_tau, radii=radii)
