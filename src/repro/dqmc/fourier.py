"""Momentum-space analysis of lattice correlation functions.

Physical studies quote correlations in momentum space: the structure
factor ``S(q)`` over the discrete Brillouin zone of the periodic
lattice.  This module provides

* :func:`lattice_momenta` — the ``N`` allowed momenta
  ``q = 2 pi (m/nx, n/ny)``;
* :func:`momentum_transform` — the quadratic-form lattice Fourier
  transform ``V(q) = (1/N) phi_q^H C phi_q`` for one or a stack of
  pairwise matrices; the single verified transform path shared by the
  structure factors below and the momentum-resolved spectral functions
  (:func:`repro.spectral.functions.momentum_spectral_function`);
* :func:`structure_factor_grid` — ``S(q)`` for a full pairwise
  correlation matrix at every allowed momentum, via the lattice Fourier
  transform;
* :func:`from_distance_classes` — lift a distance-class-resolved
  correlation (what the measurement layer produces) back to the full
  pairwise matrix under lattice symmetry, so binned observables can be
  Fourier-analysed too.

Identities asserted in the tests: Parseval
(``sum_q S(q) = sum_i C(i, i) * N / N``), reality of ``S(q)`` for
symmetric correlations, and agreement of the ``(pi, pi)`` grid point
with :func:`repro.dqmc.correlations.afm_structure_factor`.
"""

from __future__ import annotations

import numpy as np

from ..hubbard.lattice import RectangularLattice

__all__ = [
    "lattice_momenta",
    "momentum_transform",
    "structure_factor_grid",
    "from_distance_classes",
]


def lattice_momenta(lattice: RectangularLattice) -> np.ndarray:
    """All allowed momenta of the periodic lattice, shape ``(N, 2)``.

    ``q = 2 pi (m / nx, n / ny)`` for ``0 <= m < nx``, ``0 <= n < ny``,
    ordered like the site indexing (``m`` fastest).
    """
    m = np.arange(lattice.nx)
    n = np.arange(lattice.ny)
    qx = 2.0 * np.pi * m / lattice.nx
    qy = 2.0 * np.pi * n / lattice.ny
    grid = np.stack(
        [np.repeat(qx[None, :], lattice.ny, axis=0).ravel(),
         np.repeat(qy[:, None], lattice.nx, axis=1).ravel()],
        axis=1,
    )
    return grid


def momentum_transform(
    C: np.ndarray, lattice: RectangularLattice
) -> tuple[np.ndarray, np.ndarray]:
    """``V(q) = (1/N) phi_q^H C phi_q`` at every allowed momentum.

    The quadratic-form lattice Fourier transform with plane-wave
    vectors ``(phi_q)_i = e^{i q . r_i}``, batched over any leading
    dimensions of ``C`` (shape ``(..., N, N)`` over sites).  Callers
    interpret the complex output: symmetric real ``C`` gives real
    structure factors, Hermitian PSD ``C`` (a spectral function) gives
    real non-negative ``A(q)`` — both identities are asserted in the
    tests, and Parseval (``sum_q V(q) = tr C``) holds exactly.

    Returns ``(momenta, values)``: ``(N, 2)`` and ``(..., N)`` complex.
    """
    C = np.asarray(C)
    N = lattice.nsites
    if C.ndim < 2 or C.shape[-2:] != (N, N):
        raise ValueError(f"C must be (..., {N}, {N}), got {C.shape!r}")
    momenta = lattice_momenta(lattice)
    coords = lattice.coords.astype(float)
    phases = np.exp(1j * coords @ momenta.T)  # (N sites, N momenta)
    values = (
        np.einsum(
            "iq,...ij,jq->...q",
            phases.conj(),
            C.astype(complex, copy=False),
            phases,
        )
        / N
    )
    return momenta, values


def structure_factor_grid(
    C: np.ndarray, lattice: RectangularLattice
) -> tuple[np.ndarray, np.ndarray]:
    """``S(q) = (1/N) sum_ij e^{i q . (r_i - r_j)} C_ij`` on the full grid.

    Returns ``(momenta, S)`` with ``momenta`` of shape ``(N, 2)`` and
    ``S`` of shape ``(N,)`` (real part; imaginary parts vanish for
    ``C = C^T`` and are asserted small).
    """
    N = lattice.nsites
    if C.shape != (N, N):
        raise ValueError(f"C must be ({N}, {N}), got {C.shape!r}")
    momenta, S = momentum_transform(C, lattice)
    if np.abs(S.imag).max() > 1e-8 * max(np.abs(S.real).max(), 1.0):
        raise ValueError("structure factor has a large imaginary part; "
                         "is the correlation matrix symmetric?")
    return momenta, S.real


def from_distance_classes(
    values: np.ndarray, lattice: RectangularLattice
) -> np.ndarray:
    """Expand class-resolved correlations to the full pairwise matrix.

    The measurement layer bins ``C_ij`` by the distance class
    ``D(i, j)``; under the lattice's translation symmetry the binned
    average is the best estimate for every pair in the class, so the
    expansion ``C_ij = values[D(i, j)]`` is exact for translation-
    invariant ensemble averages.
    """
    D, radii = lattice.distance_classes
    values = np.asarray(values, dtype=float)
    if values.shape != (len(radii),):
        raise ValueError(
            f"expected {len(radii)} class values, got {values.shape!r}"
        )
    return values[D]
