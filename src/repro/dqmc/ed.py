"""Exact diagonalisation (ED) of small Hubbard clusters — the oracle.

Sec. I: model Hamiltonians "can be solved exactly on very small
clusters of N ~ 10 sites by explicitly enumerating all the states of
the quantum system, and diagonalizing a matrix whose dimension grows
exponentially with N".  This module implements exactly that, giving
the reproduction an *independent physics oracle*: DQMC estimates on a
small cluster must agree with ED thermal expectation values within
their statistical error bars (up to the ``O(dtau^2)`` Trotter bias).

The Hamiltonian (grand canonical, the convention of
:class:`repro.hubbard.matrix.HubbardModel`):

    ``H = -t sum_<ij>,s (c_is^dag c_js + h.c.)
          + U sum_i (n_iu - 1/2)(n_id - 1/2) - mu sum_i (n_iu + n_id)``

(the particle-hole symmetric interaction form, under which ``mu = 0``
is half filling — matching the HS transformation used by the DQMC
engine).

States are occupation bitmasks per spin; the full Hilbert space has
``4^N`` states, fine up to ``N ~ 6-8`` sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..hubbard.matrix import HubbardModel

__all__ = ["ExactDiagonalization"]


def _bit(state: int, site: int) -> int:
    return (state >> site) & 1


def _fermion_sign(state: int, site: int) -> float:
    """Sign from commuting ``c_site`` past the occupied lower sites."""
    return -1.0 if bin(state & ((1 << site) - 1)).count("1") % 2 else 1.0


@dataclass
class ExactDiagonalization:
    """Full-spectrum ED of a Hubbard model on its lattice.

    Only the model's geometry, ``t``, ``U`` and ``mu`` matter; ``L`` /
    ``beta`` enter at evaluation time so one spectrum serves every
    temperature.
    """

    model: HubbardModel

    def __post_init__(self) -> None:
        if self.model.N > 8:
            raise ValueError(
                f"ED Hilbert space 4^{self.model.N} is too large (N <= 8)"
            )

    @property
    def n_sites(self) -> int:
        return self.model.N

    @property
    def dim(self) -> int:
        return 4**self.n_sites

    # ------------------------------------------------------------------
    @cached_property
    def _spectrum(self) -> tuple[np.ndarray, np.ndarray]:
        """Eigenvalues and eigenvectors of ``H`` over the full Fock space.

        A state index encodes ``(up_mask, dn_mask)`` as
        ``idx = up + 2^N * dn``.
        """
        N = self.n_sites
        dim_spin = 1 << N
        model = self.model
        K = model.lattice.adjacency
        H = np.zeros((self.dim, self.dim))
        bonds = [
            (i, j)
            for i in range(N)
            for j in range(i + 1, N)
            if K[i, j] != 0.0
        ]
        mu = np.broadcast_to(np.asarray(model.mu, dtype=float), (N,))
        for up in range(dim_spin):
            n_up = [_bit(up, i) for i in range(N)]
            for dn in range(dim_spin):
                idx = up + dim_spin * dn
                n_dn = [_bit(dn, i) for i in range(N)]
                # Diagonal: interaction + chemical potential (possibly
                # site-dependent: the disordered model).
                diag = 0.0
                for i in range(N):
                    diag += model.U * (n_up[i] - 0.5) * (n_dn[i] - 0.5)
                    diag -= mu[i] * (n_up[i] + n_dn[i])
                H[idx, idx] += diag
                # Hopping, spin up: c_i^dag c_j moves a fermion j -> i.
                for i, j in bonds:
                    for a, b in ((i, j), (j, i)):
                        if n_up[b] and not n_up[a]:
                            new_up = up ^ (1 << b) ^ (1 << a)
                            sign = _fermion_sign(up, b) * _fermion_sign(
                                up ^ (1 << b), a
                            )
                            H[new_up + dim_spin * dn, idx] += -model.t * sign
                        if n_dn[b] and not n_dn[a]:
                            new_dn = dn ^ (1 << b) ^ (1 << a)
                            sign = _fermion_sign(dn, b) * _fermion_sign(
                                dn ^ (1 << b), a
                            )
                            H[up + dim_spin * new_dn, idx] += -model.t * sign
        if not np.allclose(H, H.T, atol=1e-12):  # pragma: no cover
            raise AssertionError("H must be symmetric")
        w, V = np.linalg.eigh(H)
        return w, V

    # ------------------------------------------------------------------
    def thermal_expectation(self, operator_diag: np.ndarray, beta: float) -> float:
        """``<O>`` for an operator diagonal in the occupation basis."""
        w, V = self._spectrum
        weights = np.exp(-beta * (w - w.min()))
        Z = weights.sum()
        # <n|O|n> for eigenstate n: sum_s |V[s, n]|^2 O_ss.
        O_eig = np.einsum("sn,s,sn->n", V, operator_diag, V)
        return float((weights * O_eig).sum() / Z)

    def _occupation_diagonals(self) -> tuple[np.ndarray, np.ndarray]:
        N = self.n_sites
        dim_spin = 1 << N
        up_counts = np.array([bin(s).count("1") for s in range(dim_spin)])
        n_up = np.repeat(up_counts[None, :], dim_spin, axis=0).T.reshape(-1)
        n_dn = np.repeat(up_counts[None, :], dim_spin, axis=0).reshape(-1)
        return n_up.astype(float), n_dn.astype(float)

    def density(self, beta: float) -> float:
        """``<n> = <n_up + n_dn>`` per site."""
        n_up, n_dn = self._occupation_diagonals()
        return self.thermal_expectation(n_up + n_dn, beta) / self.n_sites

    def double_occupancy(self, beta: float) -> float:
        """``<n_up n_dn>`` per site."""
        N = self.n_sites
        dim_spin = 1 << N
        docc = np.zeros(self.dim)
        for up in range(dim_spin):
            for dn in range(dim_spin):
                docc[up + dim_spin * dn] = bin(up & dn).count("1")
        return self.thermal_expectation(docc, beta) / N

    def local_moment(self, beta: float) -> float:
        """``<(n_up - n_dn)^2>`` per site."""
        return self.density(beta) - 2.0 * self.double_occupancy(beta)

    def energy(self, beta: float) -> float:
        """Total thermal energy ``<H>``."""
        w, _ = self._spectrum
        weights = np.exp(-beta * (w - w.min()))
        return float((weights * w).sum() / weights.sum())
