"""Equal-time physical measurements (Sec. IV, "equal-time" category).

Equal-time observables need only the *diagonal* blocks ``G_ll`` of the
Green's functions (pattern ``FULL_DIAGONAL``), for both spin species.
Per HS configuration the two spin sectors are independent, so every
expectation value Wick-factorises into products of single-particle
propagators:

* ``<c_i(sigma)^dag c_j(sigma)> = delta_ij - G_sigma(j, i)``
* density       ``<n_i> = 2 - G_up(i,i) - G_dn(i,i)``
* double occ.   ``<n_i_up n_i_dn> = (1 - G_up(i,i)) (1 - G_dn(i,i))``
* kinetic       ``-t sum_<ij> <c_i^dag c_j + h.c.>``
* local moment  ``<m_z^2> = <n> - 2 <n_up n_dn>``
* equal-time spin correlation ``<S_i^z S_j^z>`` resolved by the
  lattice distance classes ``D(i, j)``.

Everything is averaged over the ``L`` time slices (translation
invariance in imaginary time) and vectorised; the per-slice loop is the
unit handed to OpenMP-style threads by the engine, with per-thread
accumulators exactly as Alg. 3 prescribes ("the reason to create local
measurements for each thread is to overcome the concurrent writing
issue").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hubbard.lattice import RectangularLattice
from ..hubbard.matrix import HubbardModel

__all__ = ["EqualTimeMeasurement", "measure_slice", "EqualTimeAccumulator", "density_profile", "moment_profile"]


@dataclass(frozen=True)
class EqualTimeMeasurement:
    """Scalar + distance-resolved observables from one time slice."""

    density: float
    double_occupancy: float
    kinetic_energy: float
    local_moment: float
    szz: np.ndarray  # per distance class, shape (d_max,)

    def as_dict(self) -> dict[str, float | np.ndarray]:
        return {
            "density": self.density,
            "double_occupancy": self.double_occupancy,
            "kinetic_energy": self.kinetic_energy,
            "local_moment": self.local_moment,
            "szz": self.szz,
        }


def measure_slice(
    G_up: np.ndarray,
    G_dn: np.ndarray,
    model: HubbardModel,
) -> EqualTimeMeasurement:
    """All equal-time observables from one slice's ``(G_up, G_dn)``.

    ``G_sigma`` are the equal-time Green's functions ``G_ll`` for the
    two spins (``N x N``).
    """
    lat: RectangularLattice = model.lattice
    N = model.N
    n_up = 1.0 - np.diag(G_up)          # <n_i_up>
    n_dn = 1.0 - np.diag(G_dn)
    density = float(np.mean(n_up + n_dn))
    docc = float(np.mean(n_up * n_dn))
    # Kinetic: -t sum_{ij} K_ij <c_i^dag c_j> per site, both spins.
    K = lat.adjacency
    # <c_i^dag c_j> = delta_ij - G(j, i); K has no diagonal.
    kin = -model.t * float(np.sum(K * (-(G_up.T) - (G_dn.T)))) / N
    moment = density - 2.0 * docc

    # <S_i^z S_j^z> with S^z = (n_up - n_dn)/2; per HS configuration the
    # spin sectors factorise, so
    #   <n_i^s n_j^s>   = n_i^s n_j^s + (delta_ij - G_s(j,i)) G_s(i,j)
    #   <n_i^s n_j^s'>  = n_i^s n_j^s'                (s != s')
    D, radii = lat.distance_classes
    eye = np.eye(N)
    same_up = np.multiply.outer(n_up, n_up) + (eye - G_up.T) * G_up
    same_dn = np.multiply.outer(n_dn, n_dn) + (eye - G_dn.T) * G_dn
    cross = np.multiply.outer(n_up, n_dn)
    szz_pair = 0.25 * (same_up + same_dn - cross - cross.T)
    counts = np.bincount(D.ravel(), minlength=len(radii)).astype(float)
    sums = np.bincount(D.ravel(), weights=szz_pair.ravel(), minlength=len(radii))
    szz = sums / counts
    return EqualTimeMeasurement(
        density=density,
        double_occupancy=docc,
        kinetic_energy=kin,
        local_moment=moment,
        szz=szz,
    )


@dataclass
class EqualTimeAccumulator:
    """Per-thread accumulator for equal-time observables.

    Add one :class:`EqualTimeMeasurement` per slice; :meth:`mean`
    averages over everything accumulated; :meth:`merge` combines the
    thread-local accumulators at the join point.
    """

    count: int = 0
    _density: float = 0.0
    _docc: float = 0.0
    _kin: float = 0.0
    _moment: float = 0.0
    _szz: np.ndarray | None = field(default=None)

    def add(self, m: EqualTimeMeasurement) -> None:
        self.count += 1
        self._density += m.density
        self._docc += m.double_occupancy
        self._kin += m.kinetic_energy
        self._moment += m.local_moment
        if self._szz is None:
            self._szz = m.szz.astype(float).copy()
        else:
            self._szz += m.szz

    def merge(self, other: "EqualTimeAccumulator") -> None:
        self.count += other.count
        self._density += other._density
        self._docc += other._docc
        self._kin += other._kin
        self._moment += other._moment
        if other._szz is not None:
            if self._szz is None:
                self._szz = other._szz.copy()
            else:
                self._szz += other._szz

    def mean(self) -> dict[str, float | np.ndarray]:
        if self.count == 0:
            raise ValueError("no measurements accumulated")
        c = float(self.count)
        assert self._szz is not None
        return {
            "density": self._density / c,
            "double_occupancy": self._docc / c,
            "kinetic_energy": self._kin / c,
            "local_moment": self._moment / c,
            "szz": self._szz / c,
        }


def density_profile(G_up: np.ndarray, G_dn: np.ndarray) -> np.ndarray:
    """Site-resolved density ``<n_i> = 2 - G_up(i,i) - G_dn(i,i)``.

    Uniform at half filling on clean lattices; the observable of
    interest for *disordered* models (site-dependent ``mu_i``), where
    the profile tracks the local potential.
    """
    return (1.0 - np.diag(G_up)) + (1.0 - np.diag(G_dn))


def moment_profile(G_up: np.ndarray, G_dn: np.ndarray) -> np.ndarray:
    """Site-resolved local moment ``<m_z^2>_i = <n_i> - 2 <n_up n_dn>_i``."""
    n_up = 1.0 - np.diag(G_up)
    n_dn = 1.0 - np.diag(G_dn)
    return n_up + n_dn - 2.0 * n_up * n_dn
