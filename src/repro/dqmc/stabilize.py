"""Numerically stable equal-time Green's functions (UDT stratification).

Long products ``B_l B_{l-1} ... B_{l+1}`` of DQMC slice matrices have
singular values spreading like ``e^{beta U}`` — forming them naively
and inverting ``I + product`` loses all precision at low temperature.
The classic cure (Hirsch's stable algorithm, the paper's ref. [25], as
implemented in QUEST) is to accumulate the product in *graded* form

    ``A = U diag(d) T``

with ``U`` orthogonal, ``d`` positive and sorted by magnitude inside a
triangular-ish ``T``, re-gradating with a QR factorisation every few
multiplications, and then to evaluate

    ``G = (I + U diag(d) T)^{-1} = T^{-1} (U^T T^{-1} + diag(d))^{-1} U^T``

whose inner matrix mixes the large and small scales additively instead
of multiplicatively.

The DQMC engine rebuilds its wrapped Green's function from this module
every ``nwrap`` slices; the drift between the wrapped and rebuilt
matrices is the standard stability diagnostic (exposed by the engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.linalg as sla

from ..core import _kernels as kr
from ..core.pcyclic import BlockPCyclic, torus_index

__all__ = ["UDT", "udt_chain", "stable_inverse_plus", "stable_equal_time"]


@dataclass
class UDT:
    """Graded decomposition ``A = U diag(d) T``."""

    U: np.ndarray
    d: np.ndarray
    T: np.ndarray

    @classmethod
    def identity(cls, N: int) -> "UDT":
        return cls(np.eye(N), np.ones(N), np.eye(N))

    @classmethod
    def from_matrix(cls, A: np.ndarray) -> "UDT":
        """Initial gradation via column-pivoted QR."""
        Q, R, piv = sla.qr(A, mode="economic", pivoting=True, check_finite=False)
        d = np.abs(np.diag(R))
        d[d == 0.0] = 1.0
        Tp = R / d[:, None]
        T = np.empty_like(Tp)
        T[:, piv] = Tp
        return cls(Q, d, T)

    def left_multiply(self, B: np.ndarray) -> "UDT":
        """Graded update ``A <- B A`` (one QR re-gradation)."""
        # (B U) D is the ill-conditioned part; re-gradate it.
        C = kr.gemm(B, self.U) * self.d[None, :]
        Q, R, piv = sla.qr(C, mode="economic", pivoting=True, check_finite=False)
        d = np.abs(np.diag(R))
        d[d == 0.0] = 1.0
        Tp = R / d[:, None]
        Tnew = np.empty_like(Tp)
        Tnew[:, piv] = Tp
        return UDT(Q, d, kr.gemm(Tnew, self.T))

    def to_matrix(self) -> np.ndarray:
        """Materialise ``U diag(d) T`` (diagnostics only)."""
        return (self.U * self.d[None, :]) @ self.T


def udt_chain(
    blocks: Sequence[np.ndarray] | Callable[[int], np.ndarray],
    order: Sequence[int],
    stride: int = 1,
) -> UDT:
    """Graded product ``B_{order[-1]} ... B_{order[1]} B_{order[0]}``.

    Parameters
    ----------
    blocks:
        Either an indexable of matrices or a callable ``i -> B_i``
        (0-based indices).
    order:
        Indices applied *right to left*: the first entry is the
        rightmost factor.
    stride:
        Re-gradate after every ``stride`` plain multiplications
        (``stride = 1`` re-gradates every step — safest; larger strides
        trade stability for speed, as QUEST does with its ``north``
        parameter).
    """
    get = blocks if callable(blocks) else (lambda i: blocks[i])
    if len(order) == 0:
        raise ValueError("empty product")
    acc: np.ndarray | None = None
    count = 0
    result: UDT | None = None
    for idx in order:
        B = get(idx)
        acc = np.array(B, copy=True) if acc is None else kr.gemm(B, acc)
        count += 1
        if count == stride:
            result = (
                UDT.from_matrix(acc)
                if result is None
                else result.left_multiply(acc)
            )
            acc, count = None, 0
    if acc is not None:
        result = (
            UDT.from_matrix(acc) if result is None else result.left_multiply(acc)
        )
    assert result is not None
    return result


def stable_inverse_plus(udt: UDT) -> np.ndarray:
    """``(I + U diag(d) T)^{-1}`` evaluated stably (see module docstring)."""
    # inner = U^T T^{-1} + D ; G = T^{-1} inner^{-1} U^T
    N = udt.U.shape[0]
    Tinv = kr.solve(udt.T, np.eye(N))
    inner = kr.gemm(udt.U.T, Tinv)
    idx = np.arange(N)
    inner[idx, idx] += udt.d
    return kr.gemm(Tinv, kr.solve(inner, udt.U.T))


def stable_equal_time(pc: BlockPCyclic, l: int, stride: int = 1) -> np.ndarray:
    """Stable ``G_ll = (I + B_l B_{l-1} ... B_{l+1})^{-1}``.

    ``l`` is 1-based (torus-wrapped).  Equivalent to
    :func:`repro.core.greens_explicit.equal_time_greens` but safe for
    low-temperature (large ``beta U``) Hubbard matrices.
    """
    L = pc.L
    l = torus_index(l, L)
    # Rightmost factor is B_{l+1}, applied first; leftmost is B_l.
    order = [torus_index(l + 1 + s, L) - 1 for s in range(L)]
    udt = udt_chain(lambda i: pc.B[i], order, stride=stride)
    return stable_inverse_plus(udt)
