"""The DQMC simulation driver (Alg. 4) with FSI-powered measurements.

A full simulation (Fig. 7) is::

    initialise HS field h = (+/-1)
    warmup:       w sweeps
    measurement:  m sweeps, each followed by
                  M_sigma(h) -> FSI -> selected G blocks -> physical
                  measurements

One *sweep* visits every site of every imaginary-time slice, proposing
single HS-spin flips with the Metropolis rule of
:mod:`repro.dqmc.updates`; the wrapped equal-time Green's functions of
both spins are carried along and periodically rebuilt from scratch
(:mod:`repro.dqmc.stabilize`) to bound error accumulation.

The measurement stage is where FSI earns its keep: equal-time
observables need every diagonal block (pattern ``FULL_DIAGONAL``) and
time-dependent SPXX needs ``b`` block rows *and* ``b`` block columns —
all three patterns are wrapped from a *single* CLS+BSOFI seed grid per
spin, so the expensive stages run once per Green's function.

Timings for the Green's-function computation and for the measurement
accumulation are recorded separately, mirroring the runtime profile of
Fig. 10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.fsi import fsi
from ..core.patterns import Pattern, SelectedInversion, Selection
from ..core.stability import recommend_c
from ..core.wrap import wrap
from ..hubbard.hs_field import HSField
from ..hubbard.matrix import HubbardModel
from ..telemetry import runtime as _telemetry
from .delayed import DelayedGreens
from .measurements import EqualTimeAccumulator, measure_slice
from .spxx import SPXXResult, spxx
from .stabilize import stable_equal_time
from .stats import BinningAnalysis, jackknife, jackknife_ratio
from .updates import (
    UpdateStats,
    advance_slice,
    apply_flip,
    gamma_factor,
    init_wrapped,
    metropolis_ratio,
)

__all__ = ["DQMCConfig", "DQMCResult", "DQMC", "GreensBundle"]


@dataclass(frozen=True)
class DQMCConfig:
    """Run-control parameters of a DQMC simulation.

    Parameters
    ----------
    warmup_sweeps, measurement_sweeps:
        ``w`` and ``m`` of Alg. 4 (the paper's headline run uses
        ``(w, m) = (100, 200)``).
    c:
        FSI cluster size for the measurement Green's functions
        (``None`` = the ``c ~ sqrt(L)`` rule).
    nwrap:
        Rebuild the wrapped Green's function from scratch every
        ``nwrap`` slices during a sweep (stability control).
    bin_size:
        Measurement bin size for the jackknife analysis.
    num_threads:
        OpenMP-style team size for FSI and measurement loops.
    measure_time_dependent:
        Compute SPXX (needs rows+columns) in addition to equal-time
        observables.
    seed:
        RNG seed for the HS field initialisation and Metropolis draws.
    delay:
        Delayed-update block size (:mod:`repro.dqmc.delayed`): accepted
        rank-1 Green's-function kicks are accumulated and flushed as
        one gemm every ``delay`` acceptances.  ``1`` = eager updates.
        Mathematically equivalent for any value; larger blocks trade
        BLAS-2 for BLAS-3 work, as production DQMC codes do.
    sign_resync_every:
        Recompute the configuration sign exactly (structured
        determinants) every this many measurement iterations, guarding
        the multiplicative sign tracking against numerical drift.  Only
        matters away from half filling, where ``det M_up det M_dn`` can
        go negative (the fermion sign problem).
    measure_extended:
        Additionally record the extended correlators: connected charge
        correlation, s-wave pairing, the AFM structure factor
        ``S(pi, pi)``, the local imaginary-time Green's function
        ``G_loc(tau)`` and the time-displaced ``szz(tau, d)`` (the last
        two require ``measure_time_dependent``).
    """

    warmup_sweeps: int = 10
    measurement_sweeps: int = 20
    c: int | None = None
    nwrap: int = 8
    bin_size: int = 5
    num_threads: int | None = None
    measure_time_dependent: bool = True
    seed: int | None = None
    delay: int = 1
    sign_resync_every: int = 25
    measure_extended: bool = False

    def __post_init__(self) -> None:
        if self.warmup_sweeps < 0 or self.measurement_sweeps < 0:
            raise ValueError("sweep counts must be non-negative")
        if self.nwrap < 1:
            raise ValueError(f"nwrap must be >= 1, got {self.nwrap}")
        if self.delay < 1:
            raise ValueError(f"delay must be >= 1, got {self.delay}")
        if self.sign_resync_every < 1:
            raise ValueError(
                f"sign_resync_every must be >= 1, got {self.sign_resync_every}"
            )


@dataclass
class GreensBundle:
    """All selected Green's-function pieces for one spin."""

    full_diagonal: SelectedInversion
    rows: SelectedInversion | None
    cols: SelectedInversion | None


@dataclass
class DQMCResult:
    """Output of :meth:`DQMC.run`."""

    estimates: dict[str, tuple[np.ndarray, np.ndarray]]
    spxx_mean: np.ndarray | None
    spxx_error: np.ndarray | None
    acceptance_rate: float
    average_sign: float
    greens_seconds: float
    measurement_seconds: float
    sweep_seconds: float
    max_wrap_drift: float
    sweeps: int

    def observable(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(mean, error)`` of one observable."""
        return self.estimates[name]


class DQMC:
    """Determinant Quantum Monte Carlo for the Hubbard model.

    >>> from repro.hubbard import HubbardModel, RectangularLattice
    >>> model = HubbardModel(RectangularLattice(4, 4), L=8, U=4.0, beta=2.0)
    >>> sim = DQMC(model, DQMCConfig(warmup_sweeps=2, measurement_sweeps=4,
    ...                              seed=0))
    >>> result = sim.run()            # doctest: +SKIP
    """

    def __init__(self, model: HubbardModel, config: DQMCConfig | None = None):
        self.model = model
        self.config = config or DQMCConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.field = HSField.random(model.L, model.N, self.rng)
        self.c = self.config.c if self.config.c is not None else recommend_c(model.L)
        if model.L % self.c != 0:
            raise ValueError(
                f"cluster size c={self.c} must divide L={model.L}"
            )
        self.stats = UpdateStats()
        self.max_wrap_drift = 0.0
        #: multiplicatively tracked sign of det M_up(h) det M_dn(h);
        #: initialised exactly on first use, resynced periodically.
        self.config_sign: float | None = None

    # ------------------------------------------------------------------
    # sweeping
    # ------------------------------------------------------------------
    def _rebuild(self, l: int, sigma: int) -> np.ndarray:
        """Stable wrapped Green's function at 1-based slice ``l``."""
        pc = self.model.build_matrix(self.field, sigma)
        return init_wrapped(stable_equal_time(pc, l), self.model)

    def _exact_sign(self) -> float:
        """Sign of the configuration weight via structured determinants.

        Repulsive: ``sign(det M_up det M_dn)``.  Attractive: the weight
        ``e^{-nu sum h} (det M)^2`` is non-negative by construction.
        """
        from ..core.solve import determinant

        if self.model.is_attractive:
            return 1.0
        sign = 1.0
        for sigma in (+1, -1):
            s, _ = determinant(self.model.build_matrix(self.field, sigma))
            sign *= s
        return sign

    def resync_sign(self) -> float:
        """Recompute the configuration sign exactly and adopt it.

        Returns the drift (0.0 if the tracked sign was already right).
        """
        exact = self._exact_sign()
        drift = 0.0 if self.config_sign in (None, exact) else 2.0
        self.config_sign = exact
        return drift

    def sweep(self) -> None:
        """One full space-time Metropolis sweep over the HS field.

        For the attractive model both spins share one Green's function
        and the Metropolis ratio carries the bare HS factor:
        ``r = e^{2 nu h_old} r_B^2`` — manifestly non-negative (no sign
        problem), with a single rank-1 update per acceptance.
        """
        model, field, cfg = self.model, self.field, self.config
        L, N = model.L, model.N
        if self.config_sign is None:
            self.config_sign = self._exact_sign()
        if model.is_attractive:
            self._sweep_attractive()
            return
        Gw = {+1: self._rebuild(1, +1), -1: self._rebuild(1, -1)}
        for l in range(1, L + 1):
            if l > 1:
                rebuild = (l - 1) % cfg.nwrap == 0
                for sigma in (+1, -1):
                    Gw[sigma] = advance_slice(
                        Gw[sigma], model, field, l - 1, sigma
                    )
                    if rebuild:
                        fresh = self._rebuild(l, sigma)
                        drift = float(np.abs(fresh - Gw[sigma]).max())
                        self.max_wrap_drift = max(self.max_wrap_drift, drift)
                        Gw[sigma] = fresh
            uniform = self.rng.random(N)
            if cfg.delay > 1:
                dg = {
                    sigma: DelayedGreens(Gw[sigma], delay=cfg.delay)
                    for sigma in (+1, -1)
                }
                for i in range(N):
                    h_li = int(field.h[l - 1, i])
                    g_up = gamma_factor(model, h_li, +1)
                    g_dn = gamma_factor(model, h_li, -1)
                    r_up = dg[+1].ratio(i, g_up)
                    r_dn = dg[-1].ratio(i, g_dn)
                    r = r_up * r_dn
                    self.stats.proposed += 1
                    if r < 0:
                        self.stats.negative_ratios += 1
                    if uniform[i] < min(1.0, abs(r)):
                        dg[+1].accept(i, g_up, r_up)
                        dg[-1].accept(i, g_dn, r_dn)
                        field.flip(l - 1, i)
                        self.stats.accepted += 1
                        if r < 0:
                            self.config_sign = -self.config_sign
                for sigma in (+1, -1):
                    Gw[sigma] = dg[sigma].matrix
            else:
                for i in range(N):
                    h_li = int(field.h[l - 1, i])
                    g_up = gamma_factor(model, h_li, +1)
                    g_dn = gamma_factor(model, h_li, -1)
                    r_up = metropolis_ratio(Gw[+1], i, g_up)
                    r_dn = metropolis_ratio(Gw[-1], i, g_dn)
                    r = r_up * r_dn
                    self.stats.proposed += 1
                    if r < 0:
                        self.stats.negative_ratios += 1
                    if uniform[i] < min(1.0, abs(r)):
                        apply_flip(Gw[+1], i, g_up, r_up)
                        apply_flip(Gw[-1], i, g_dn, r_dn)
                        field.flip(l - 1, i)
                        self.stats.accepted += 1
                        if r < 0:
                            self.config_sign = -self.config_sign

    def _sweep_attractive(self) -> None:
        """Charge-channel sweep: one shared Green's function."""
        model, field, cfg = self.model, self.field, self.config
        L, N = model.L, model.N
        nu = model.nu
        Gw = self._rebuild(1, +1)
        for l in range(1, L + 1):
            if l > 1:
                Gw = advance_slice(Gw, model, field, l - 1, +1)
                if (l - 1) % cfg.nwrap == 0:
                    fresh = self._rebuild(l, +1)
                    drift = float(np.abs(fresh - Gw).max())
                    self.max_wrap_drift = max(self.max_wrap_drift, drift)
                    Gw = fresh
            uniform = self.rng.random(N)
            for i in range(N):
                h_li = int(field.h[l - 1, i])
                g = gamma_factor(model, h_li, +1)
                r_b = metropolis_ratio(Gw, i, g)
                # Bare HS factor from e^{-nu sum h}: flipping h -> -h
                # multiplies the weight by e^{2 nu h_old}.
                r = float(np.exp(2.0 * nu * h_li)) * r_b * r_b
                self.stats.proposed += 1
                if uniform[i] < min(1.0, r):
                    apply_flip(Gw, i, g, r_b)
                    field.flip(l - 1, i)
                    self.stats.accepted += 1

    # ------------------------------------------------------------------
    # measurement Green's functions (FSI)
    # ------------------------------------------------------------------
    def compute_greens(self, q: int | None = None) -> dict[int, GreensBundle]:
        """Selected Green's functions of both spins from the current field.

        One ``CLS -> BSOFI`` per spin; ``FULL_DIAGONAL`` (always) plus
        ``ROWS`` and ``COLUMNS`` (when time-dependent measurements are
        on) are wrapped from the same seed grid.  ``q`` is drawn
        uniformly when ``None`` and *shared* between the spins so that
        SPXX sees matching block index sets.
        """
        cfg = self.config
        if q is None:
            q = int(self.rng.integers(0, self.c))
        out: dict[int, GreensBundle] = {}
        if self.model.is_attractive:
            # Both spins share one matrix; compute once, alias the bundle.
            sigmas: tuple[int, ...] = (+1,)
        else:
            sigmas = (+1, -1)
        for sigma in sigmas:
            pc = self.model.build_matrix(self.field, sigma)
            res = fsi(
                pc,
                self.c,
                pattern=Pattern.FULL_DIAGONAL,
                q=q,
                num_threads=cfg.num_threads,
            )
            rows = cols = None
            if cfg.measure_time_dependent:
                L = pc.L
                rows = wrap(
                    pc,
                    res.seeds,
                    Selection(Pattern.ROWS, L=L, c=self.c, q=q),
                    num_threads=cfg.num_threads,
                    ops=res.ops,
                )
                cols = wrap(
                    pc,
                    res.seeds,
                    Selection(Pattern.COLUMNS, L=L, c=self.c, q=q),
                    num_threads=cfg.num_threads,
                    ops=res.ops,
                )
            out[sigma] = GreensBundle(
                full_diagonal=res.selected, rows=rows, cols=cols
            )
        if self.model.is_attractive:
            out[-1] = out[+1]
        return out

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def measure(self, greens: dict[int, GreensBundle]) -> dict[str, np.ndarray | float]:
        """All physical measurements from one set of Green's functions.

        The per-slice equal-time loop runs on the OpenMP-style team with
        *thread-local* accumulators merged at the join — the concurrent-
        write workaround Alg. 3 prescribes for measurement quantities.
        """
        from ..parallel.openmp import thread_local_reduce

        model = self.model
        L = model.L
        diag_up = greens[+1].full_diagonal
        diag_dn = greens[-1].full_diagonal

        def body(l0: int, local: EqualTimeAccumulator) -> None:
            l = l0 + 1
            local.add(measure_slice(diag_up[(l, l)], diag_dn[(l, l)], model))

        def merge(a: EqualTimeAccumulator, b: EqualTimeAccumulator):
            a.merge(b)
            return a

        acc = thread_local_reduce(
            body, L, EqualTimeAccumulator, merge,
            num_threads=self.config.num_threads,
        )
        assert acc is not None
        sample: dict[str, np.ndarray | float] = dict(acc.mean())
        if self.config.measure_extended:
            from .correlations import (
                afm_structure_factor,
                charge_correlation,
                pairing_correlation,
            )

            L_slices = model.L
            charge = np.zeros(model.lattice.d_max)
            pairing = np.zeros(model.lattice.d_max)
            safm = 0.0
            for l in range(1, L_slices + 1):
                gu = diag_up[(l, l)]
                gd = diag_dn[(l, l)]
                charge += charge_correlation(gu, gd, model.lattice)
                pairing += pairing_correlation(gu, gd, model.lattice)
                safm += afm_structure_factor(gu, gd, model.lattice)
            sample["charge_corr"] = charge / L_slices
            sample["pairing_corr"] = pairing / L_slices
            sample["s_afm"] = safm / L_slices
        if self.config.measure_time_dependent:
            gu, gd = greens[+1], greens[-1]
            assert gu.rows is not None and gu.cols is not None
            assert gd.rows is not None and gd.cols is not None
            result: SPXXResult = spxx(
                gu.rows,
                gu.cols,
                gd.rows,
                gd.cols,
                model.lattice,
                num_threads=self.config.num_threads,
            )
            sample["spxx"] = result.values
            if self.config.measure_extended:
                from .tdm import local_greens_tau, szz_tau

                sample["g_loc_tau"] = local_greens_tau(
                    gu.rows, gd.rows, model.lattice
                )
                sample["szz_tau"] = szz_tau(
                    gu.rows,
                    gu.cols,
                    gd.rows,
                    gd.cols,
                    gu.full_diagonal,
                    gd.full_diagonal,
                    model.lattice,
                    num_threads=self.config.num_threads,
                )
        return sample

    # ------------------------------------------------------------------
    # the full simulation
    # ------------------------------------------------------------------
    def run(self) -> DQMCResult:
        """Alg. 4: warmup sweeps, then measurement sweeps with FSI.

        Observables are sign-reweighted: each sample enters the binned
        analysis multiplied by the configuration sign, and the final
        estimates are jackknifed ratios ``<O s> / <s>``.  At half
        filling (``mu = 0``, no sign problem) this reduces exactly to
        the plain estimator.
        """
        cfg = self.config
        analysis = BinningAnalysis(bin_size=cfg.bin_size)
        t_sweep = t_greens = t_measure = 0.0
        for _ in range(cfg.warmup_sweeps):
            t0 = time.perf_counter()
            with _telemetry.span("dqmc.sweep", phase="warmup"):
                self.sweep()
            t_sweep += time.perf_counter() - t0
        for it in range(cfg.measurement_sweeps):
            t0 = time.perf_counter()
            with _telemetry.span("dqmc.sweep", phase="measurement", it=it):
                self.sweep()
            t_sweep += time.perf_counter() - t0
            t0 = time.perf_counter()
            with _telemetry.span("dqmc.greens", it=it):
                greens = self.compute_greens()
            t_greens += time.perf_counter() - t0
            t0 = time.perf_counter()
            if it % cfg.sign_resync_every == 0:
                self.resync_sign()
            s = self.config_sign if self.config_sign is not None else 1.0
            with _telemetry.span("dqmc.measure", it=it):
                sample = self.measure(greens)
            weighted: dict[str, np.ndarray | float] = {
                name: np.asarray(value, dtype=float) * s
                for name, value in sample.items()
            }
            weighted["sign"] = s
            analysis.add(weighted)
            t_measure += time.perf_counter() - t0
        estimates: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        average_sign = 1.0
        if cfg.measurement_sweeps > 0:
            sign_bins = analysis._series["sign"].bin_means(include_partial=True)
            average_sign = float(sign_bins.mean())
            for name, series in analysis._series.items():
                if name == "sign":
                    continue
                estimates[name] = jackknife_ratio(
                    series.bin_means(include_partial=True), sign_bins
                )
            estimates["sign"] = jackknife(sign_bins)
        spxx_mean = spxx_err = None
        if "spxx" in estimates:
            spxx_mean, spxx_err = estimates.pop("spxx")
        return DQMCResult(
            estimates=estimates,
            spxx_mean=spxx_mean,
            spxx_error=spxx_err,
            acceptance_rate=self.stats.acceptance_rate,
            average_sign=average_sign,
            greens_seconds=t_greens,
            measurement_seconds=t_measure,
            sweep_seconds=t_sweep,
            max_wrap_drift=self.max_wrap_drift,
            sweeps=cfg.warmup_sweeps + cfg.measurement_sweeps,
        )
