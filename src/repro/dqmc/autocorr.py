"""Autocorrelation analysis for Markov-chain observables.

Binned jackknife (:mod:`repro.dqmc.stats`) is only honest when the bin
size exceeds the chain's integrated autocorrelation time ``tau_int``.
This module estimates ``tau_int`` (Sokal's self-consistent windowing)
and provides a binning-convergence scan so a simulation can *verify*
its error bars instead of hoping.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "autocorrelation_function",
    "integrated_autocorrelation_time",
    "effective_sample_size",
    "binning_scan",
    "geweke_z",
]


def autocorrelation_function(x: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalised autocorrelation ``rho(t)`` of a scalar series.

    ``rho(0) = 1``; computed directly (O(n * max_lag), fine for MC
    series lengths).
    """
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n < 2:
        raise ValueError("need at least 2 samples")
    if max_lag is None:
        max_lag = n - 1
    max_lag = min(max_lag, n - 1)
    xc = x - x.mean()
    var = float(xc @ xc) / n
    if var == 0.0:
        # Constant series: define rho(0)=1, rho(t>0)=0.
        rho = np.zeros(max_lag + 1)
        rho[0] = 1.0
        return rho
    rho = np.empty(max_lag + 1)
    rho[0] = 1.0
    for t in range(1, max_lag + 1):
        rho[t] = float(xc[:-t] @ xc[t:]) / n / var
    return rho


def integrated_autocorrelation_time(
    x: np.ndarray, window_factor: float = 5.0
) -> float:
    """Sokal's self-consistent estimate of ``tau_int``.

    ``tau_int = 1/2 + sum_{t>=1} rho(t)``, truncated at the smallest
    window ``W`` with ``W >= window_factor * tau_int(W)``.  Returns at
    least ``0.5`` (uncorrelated series).
    """
    rho = autocorrelation_function(x)
    tau = 0.5
    for W in range(1, len(rho)):
        tau = 0.5 + float(np.sum(rho[1 : W + 1]))
        if W >= window_factor * tau:
            break
    return max(tau, 0.5)


def effective_sample_size(x: np.ndarray) -> float:
    """``n_eff = n / (2 tau_int)``."""
    return len(x) / (2.0 * integrated_autocorrelation_time(x))


def binning_scan(
    x: np.ndarray, max_bin: int | None = None
) -> list[tuple[int, float]]:
    """Naive standard error of the mean vs bin size.

    The error estimate should *plateau* once bins exceed ``2 tau_int``;
    the scan returns ``(bin_size, error)`` pairs for doubling bin sizes.
    """
    x = np.asarray(x, dtype=float)
    n = len(x)
    if max_bin is None:
        max_bin = n // 4
    out = []
    size = 1
    while size <= max(max_bin, 1) and n // size >= 2:
        nb = n // size
        bins = x[: nb * size].reshape(nb, size).mean(axis=1)
        err = float(np.std(bins, ddof=1) / np.sqrt(nb))
        out.append((size, err))
        size *= 2
    return out


def geweke_z(
    x: np.ndarray, first: float = 0.1, last: float = 0.5
) -> float:
    """Geweke equilibration diagnostic.

    Compares the mean of the first ``first`` fraction of the chain
    against the last ``last`` fraction; the z-score uses
    autocorrelation-corrected variances (``sigma^2 * 2 tau_int / n``).
    |z| <~ 2 is consistent with an equilibrated chain — use it to judge
    whether the warmup stage was long enough.
    """
    x = np.asarray(x, dtype=float)
    n = len(x)
    if not 0 < first < 1 or not 0 < last < 1 or first + last > 1:
        raise ValueError("need 0 < first, last and first + last <= 1")
    a = x[: max(int(first * n), 2)]
    b = x[n - max(int(last * n), 2):]

    def corrected_var(seg: np.ndarray) -> float:
        tau = integrated_autocorrelation_time(seg)
        return float(np.var(seg, ddof=1)) * 2.0 * tau / len(seg)

    va, vb = corrected_var(a), corrected_var(b)
    denom = np.sqrt(va + vb)
    if denom == 0.0:
        return 0.0
    return float((a.mean() - b.mean()) / denom)
