"""Checkpoint / restart for DQMC simulations.

Production DQMC runs are long; batch systems preempt them.  A
checkpoint must capture *everything* that determines the remaining
trajectory:

* the HS field configuration,
* the Metropolis RNG state (NumPy bit-generator state),
* the tracked configuration sign,
* accumulated sweep statistics and the wrap-drift high-water mark.

Restoring and continuing then reproduces the uninterrupted run's
trajectory **exactly** — asserted bit-for-bit in
``tests/test_checkpoint.py``.  Measurement bins are *not* part of the
engine state (the caller owns the analysis across segments); the
typical pattern is one analysis object fed by several run segments.

Format: a single ``.npz`` (portable, versioned).  Saves are
**crash-safe**: the archive is written to a temporary file in the
target directory, fsynced, and atomically :func:`os.replace`\\ d into
place — a preemption mid-save leaves the previous checkpoint intact
(asserted in ``tests/test_checkpoint_failures.py``).  Unreadable or
truncated checkpoints load as a typed :class:`CheckpointError` (a
``ValueError`` subclass), never a raw ``zipfile`` traceback.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from .engine import DQMC
from .updates import UpdateStats

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointError",
    "CHECKPOINT_VERSION",
]

CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is unreadable, truncated, or incompatible."""


def save_checkpoint(sim: DQMC, path: str | Path) -> Path:
    """Write the engine's resumable state to ``path`` (``.npz``).

    Returns the path actually written: ``path`` itself when it already
    ends in ``.npz``, else ``path`` with ``.npz`` appended (matching
    what :func:`np.savez` would have produced).  The write is atomic —
    either the new checkpoint fully replaces the old one or the old one
    survives untouched.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    rng_state = json.dumps(_encode_rng(sim.rng))
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            # Passing the *file object* (not a name) stops np.savez from
            # appending its own .npz suffix to the temp file.
            np.savez(
                fh,
                version=np.array(CHECKPOINT_VERSION),
                field=sim.field.h,
                rng_state=np.frombuffer(rng_state.encode(), dtype=np.uint8),
                config_sign=np.array(
                    0.0 if sim.config_sign is None else sim.config_sign
                ),
                has_sign=np.array(sim.config_sign is not None),
                stats=np.array(
                    [
                        sim.stats.proposed,
                        sim.stats.accepted,
                        sim.stats.negative_ratios,
                    ]
                ),
                max_wrap_drift=np.array(sim.max_wrap_drift),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def _read(data: np.lib.npyio.NpzFile, key: str, path: Path) -> np.ndarray:
    """One member read with typed errors for missing/truncated entries."""
    try:
        return data[key]
    except KeyError:
        raise CheckpointError(
            f"checkpoint {path} is missing entry {key!r}"
            " (truncated or not a DQMC checkpoint)"
        ) from None
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} entry {key!r} is unreadable"
            f" (corrupted archive): {exc}"
        ) from exc


def load_checkpoint(sim: DQMC, path: str | Path) -> DQMC:
    """Restore a checkpoint into ``sim`` (same model/config) in place.

    The caller constructs the engine with the *same* model and
    configuration used originally (those are code, not state); the
    checkpoint replays the mutable state on top.

    Raises :class:`CheckpointError` (a ``ValueError``) for unreadable
    or truncated files, unsupported versions, and field/model shape
    mismatches.
    """
    path = Path(path)
    try:
        data = np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable (corrupted or truncated"
            f" archive): {exc}"
        ) from exc
    with data:
        version = int(_read(data, "version", path))
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version} not supported"
                f" (expected {CHECKPOINT_VERSION})"
            )
        field = _read(data, "field", path)
        if field.shape != (sim.model.L, sim.model.N):
            raise CheckpointError(
                f"checkpoint field shape {field.shape} does not match the"
                f" model ({sim.model.L}, {sim.model.N})"
            )
        try:
            rng_state = json.loads(bytes(_read(data, "rng_state", path)).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path} RNG state is corrupted: {exc}"
            ) from exc
        sim.field.h[...] = field
        _decode_rng(sim.rng, rng_state)
        sim.config_sign = (
            float(_read(data, "config_sign", path))
            if bool(_read(data, "has_sign", path))
            else None
        )
        proposed, accepted, negative = (
            int(v) for v in _read(data, "stats", path)
        )
        sim.stats = UpdateStats(
            proposed=proposed, accepted=accepted, negative_ratios=negative
        )
        sim.max_wrap_drift = float(_read(data, "max_wrap_drift", path))
    return sim


def _encode_rng(rng: np.random.Generator) -> dict:
    state = rng.bit_generator.state
    return json.loads(json.dumps(state, default=_json_fallback))


def _decode_rng(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = state


def _json_fallback(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    raise TypeError(f"cannot serialise {type(obj)!r}")  # pragma: no cover
