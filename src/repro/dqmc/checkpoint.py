"""Checkpoint / restart for DQMC simulations.

Production DQMC runs are long; batch systems preempt them.  A
checkpoint must capture *everything* that determines the remaining
trajectory:

* the HS field configuration,
* the Metropolis RNG state (NumPy bit-generator state),
* the tracked configuration sign,
* accumulated sweep statistics and the wrap-drift high-water mark.

Restoring and continuing then reproduces the uninterrupted run's
trajectory **exactly** — asserted bit-for-bit in
``tests/test_checkpoint.py``.  Measurement bins are *not* part of the
engine state (the caller owns the analysis across segments); the
typical pattern is one analysis object fed by several run segments.

Format: a single ``.npz`` (portable, versioned).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .engine import DQMC
from .updates import UpdateStats

__all__ = ["save_checkpoint", "load_checkpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


def save_checkpoint(sim: DQMC, path: str | Path) -> Path:
    """Write the engine's resumable state to ``path`` (``.npz``)."""
    path = Path(path)
    rng_state = json.dumps(_encode_rng(sim.rng))
    np.savez(
        path,
        version=np.array(CHECKPOINT_VERSION),
        field=sim.field.h,
        rng_state=np.frombuffer(rng_state.encode(), dtype=np.uint8),
        config_sign=np.array(
            0.0 if sim.config_sign is None else sim.config_sign
        ),
        has_sign=np.array(sim.config_sign is not None),
        stats=np.array(
            [sim.stats.proposed, sim.stats.accepted, sim.stats.negative_ratios]
        ),
        max_wrap_drift=np.array(sim.max_wrap_drift),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(sim: DQMC, path: str | Path) -> DQMC:
    """Restore a checkpoint into ``sim`` (same model/config) in place.

    The caller constructs the engine with the *same* model and
    configuration used originally (those are code, not state); the
    checkpoint replays the mutable state on top.
    """
    data = np.load(Path(path))
    version = int(data["version"])
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {version} not supported"
            f" (expected {CHECKPOINT_VERSION})"
        )
    field = data["field"]
    if field.shape != (sim.model.L, sim.model.N):
        raise ValueError(
            f"checkpoint field shape {field.shape} does not match the model"
            f" ({sim.model.L}, {sim.model.N})"
        )
    sim.field.h[...] = field
    _decode_rng(sim.rng, json.loads(bytes(data["rng_state"]).decode()))
    sim.config_sign = (
        float(data["config_sign"]) if bool(data["has_sign"]) else None
    )
    proposed, accepted, negative = (int(v) for v in data["stats"])
    sim.stats = UpdateStats(
        proposed=proposed, accepted=accepted, negative_ratios=negative
    )
    sim.max_wrap_drift = float(data["max_wrap_drift"])
    return sim


def _encode_rng(rng: np.random.Generator) -> dict:
    state = rng.bit_generator.state
    return json.loads(json.dumps(state, default=_json_fallback))


def _decode_rng(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = state


def _json_fallback(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    raise TypeError(f"cannot serialise {type(obj)!r}")  # pragma: no cover
