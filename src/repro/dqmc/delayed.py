"""Delayed (blocked) Green's-function updates for the DQMC sweep.

The plain Metropolis sweep applies a rank-1 outer-product update to the
wrapped Green's function after *every* accepted flip — a DGER-like,
memory-bandwidth-bound operation.  Production DQMC codes (QUEST, and
the paper's performance model implicitly) *delay* the updates: the
rank-1 corrections are accumulated as factor pairs ``(U, W)`` with
``Gw_current = Gw + U W^T``, and flushed into ``Gw`` as one gemm every
``k`` acceptances.  The arithmetic moves from BLAS-2 to BLAS-3 at the
cost of ``O(k N)`` extra work per proposal to reconstruct the entries
the Metropolis step needs.

Mathematically identical to the eager updates (same trajectories given
the same RNG stream) — asserted in ``tests/test_delayed.py``.

Algorithm (per slice):

* ``diag(i)``, ``col(i)``, ``row(i)`` reconstruct current entries:
  ``Gw[i, i] + U[i, :] . W[i, :]`` etc.;
* an accepted flip at site ``i`` with factor ``gamma`` and ratio ``r``
  appends one factor pair — with the sign convention of
  :mod:`repro.dqmc.updates` (``Gw <- Gw - (gamma/r) col(i) (e_i -
  row(i))^T``) that is ``U[:, k] = -(gamma/r) col(i)`` and
  ``W[:, k] = e_i - row(i)``, both evaluated in the *current* (pending-
  included) state;
* ``flush()`` performs ``Gw += U W^T`` and resets the buffers.  Always
  flush before wrapping to the next slice.
"""

from __future__ import annotations

import numpy as np

from ..core.smw import FactorPairs

__all__ = ["DelayedGreens"]


class DelayedGreens:
    """A wrapped Green's function with delayed rank-1 updates.

    The factor-pair accumulation itself lives in
    :class:`repro.core.smw.FactorPairs` (shared with the Woodbury
    delta-serving path); this class adds the Metropolis-specific sign
    conventions and the auto-flush policy.

    Parameters
    ----------
    Gw:
        The ``N x N`` wrapped equal-time Green's function (owned; the
        engine should hand over its array and use :attr:`matrix`
        afterwards).
    delay:
        Flush after this many accepted updates (``k`` in the QUEST
        literature; 16-64 is typical at production sizes).
    """

    def __init__(self, Gw: np.ndarray, delay: int = 16):
        if delay < 1:
            raise ValueError(f"delay must be >= 1, got {delay}")
        self.G = np.ascontiguousarray(Gw)
        self.N = Gw.shape[0]
        self.delay = delay
        self._pairs = FactorPairs(self.N, delay, dtype=self.G.dtype)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of accumulated, unflushed rank-1 updates."""
        return self._pairs.pending

    def diag(self, i: int) -> float:
        """Current ``Gw[i, i]`` including pending updates."""
        return float(self.G[i, i] + self._pairs.diag_correction(i))

    def col(self, i: int) -> np.ndarray:
        """Current column ``Gw[:, i]``."""
        return self.G[:, i] + self._pairs.col_correction(i)

    def row(self, i: int) -> np.ndarray:
        """Current row ``Gw[i, :]``."""
        return self.G[i, :] + self._pairs.row_correction(i)

    # ------------------------------------------------------------------
    def ratio(self, i: int, gamma: float) -> float:
        """Metropolis ratio ``1 + gamma (1 - Gw[i, i])`` (current state)."""
        return 1.0 + gamma * (1.0 - self.diag(i))

    def accept(self, i: int, gamma: float, r: float) -> None:
        """Record an accepted flip at site ``i`` (delayed form).

        Equivalent to ``Gw -= (gamma/r) col(i) (e_i - row(i))^T``.
        """
        u = self.col(i)
        w = -self.row(i)
        w[i] += 1.0
        self._pairs.append((-gamma / r) * u, w)
        if self._pairs.is_full:
            self.flush()

    def flush(self) -> None:
        """Fold pending updates into ``G`` with one gemm."""
        self._pairs.flush_into(self.G)

    @property
    def matrix(self) -> np.ndarray:
        """The fully updated Green's function (flushes first)."""
        self.flush()
        return self.G
